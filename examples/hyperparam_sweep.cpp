// Hyperparameter sweep: grid over learning rate x hidden width for
// DQN-Docking on the scaled task, writing one CSV row per cell — how the
// paper's "set empirically" Table 1 values (target-network cadence,
// hidden sizes, ...) would actually be selected.
//
//   ./hyperparam_sweep [--episodes=25] [--csv=sweep.csv]

#include <cstdio>

#include "src/common/cli.hpp"
#include "src/common/csv.hpp"
#include "src/common/stopwatch.hpp"
#include "src/core/dqn_docking.hpp"

using namespace dqndock;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto episodes = static_cast<std::size_t>(args.getInt("episodes", 25));
  const std::string csvPath = args.getString("csv", "");

  const double learningRates[] = {0.00025, 0.001, 0.005};
  const std::size_t hiddenWidths[] = {32, 64, 128};

  ThreadPool pool;
  std::unique_ptr<CsvWriter> csv;
  if (!csvPath.empty()) {
    const std::vector<std::string> header{"learning_rate", "hidden",      "late_q",
                                          "best_score",    "greedy_best", "seconds"};
    csv = std::make_unique<CsvWriter>(csvPath, header);
  }

  std::printf("# lr x hidden sweep, %zu episodes per cell\n", episodes);
  std::printf("%-10s %-8s %12s %12s %12s %8s\n", "lr", "hidden", "lateQ", "bestScore",
              "greedyBest", "sec");
  for (const double lr : learningRates) {
    for (const std::size_t width : hiddenWidths) {
      core::DqnDockingConfig cfg = core::DqnDockingConfig::scaled();
      cfg.trainer.episodes = episodes;
      cfg.agent.learningRate = lr;
      cfg.agent.hiddenSizes = {width, width};

      Stopwatch clock;
      core::DqnDocking system(cfg, &pool);
      system.train();
      const rl::MetricsLog& log = system.metrics();
      const std::size_t n = log.size();
      const double lateQ = log.meanAvgMaxQ(3 * n / 4, n);
      const rl::EpisodeRecord greedy = system.evaluateGreedy();
      const double secs = clock.seconds();
      std::printf("%-10g %-8zu %12.4f %12.2f %12.2f %8.1f\n", lr, width, lateQ,
                  log.bestScoreOverall(), greedy.bestScore, secs);
      if (csv) {
        csv->row({lr, static_cast<double>(width), lateQ, log.bestScoreOverall(),
                  greedy.bestScore, secs});
      }
    }
  }
  if (csv) std::printf("# sweep written to %s\n", csvPath.c_str());
  return 0;
}
