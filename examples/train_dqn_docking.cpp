// Full DQN-Docking training run (paper Algorithm 2) with progress
// reporting, CSV export of the Figure 4 series, and a final greedy
// evaluation of the learned policy.
//
//   ./train_dqn_docking                          # scaled preset
//   ./train_dqn_docking --episodes=200 --csv=run.csv
//   ./train_dqn_docking --paper-scale            # Table 1 verbatim (slow)
//   ./train_dqn_docking --variant=double --dueling --compact-replay
//   ./train_dqn_docking --state-mode=full-with-bonds
//   ./train_dqn_docking --vector-envs=8               # lockstep vectorized trainer
//   ./train_dqn_docking --config=run.ini --dump-config=run-used.ini

#include <cstdio>

#include "src/common/cli.hpp"
#include "src/common/logging.hpp"
#include "src/core/config_io.hpp"
#include "src/core/dqn_docking.hpp"

using namespace dqndock;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  core::DqnDockingConfig cfg = args.getBool("paper-scale", false)
                                   ? core::DqnDockingConfig::paper2bsm()
                                   : core::DqnDockingConfig::scaled();
  // An INI file overrides the preset; explicit CLI flags override both.
  const std::string configPath = args.getString("config", "");
  if (!configPath.empty()) cfg = core::readConfigFile(configPath, cfg);
  cfg.trainer.episodes =
      static_cast<std::size_t>(args.getInt("episodes", static_cast<long>(cfg.trainer.episodes)));
  cfg.trainer.seed = static_cast<std::uint64_t>(args.getInt("seed", 2018));
  cfg.trainer.logEveryEpisodes =
      static_cast<std::size_t>(args.getInt("log-every", static_cast<long>(
          std::max<std::size_t>(1, cfg.trainer.episodes / 20))));
  if (args.has("state-mode")) {
    cfg.stateMode = core::stateModeFromName(args.getString("state-mode", ""));
  }
  if (args.getString("variant", "dqn") == "double") cfg.agent.variant = rl::DqnVariant::kDouble;
  cfg.agent.dueling = args.getBool("dueling", cfg.agent.dueling);
  cfg.compactReplay = args.getBool("compact-replay", cfg.compactReplay);
  cfg.env.flexibleLigand = args.getBool("flexible", cfg.env.flexibleLigand);
  cfg.vectorEnvs =
      static_cast<std::size_t>(args.getInt("vector-envs", static_cast<long>(cfg.vectorEnvs)));
  // The vectorized trainer needs raw-state replay; presets that default
  // to compact storage (scaled) switch over unless the user forced it.
  if (cfg.vectorEnvs >= 1 && !args.has("compact-replay")) cfg.compactReplay = false;

  ThreadPool pool;
  core::DqnDocking system(cfg, &pool);
  logInfo() << "DQN-Docking: state=" << system.stateDim() << " actions=" << system.actionCount()
            << " params=" << system.agent().online().parameterCountTotal()
            << " replay=" << (cfg.compactReplay ? "compact-pose" : "raw-state")
            << " variant=" << rl::dqnVariantName(cfg.agent.variant)
            << (cfg.agent.dueling ? "+dueling" : "")
            << (cfg.vectorEnvs >= 1 ? " vector-envs=" + std::to_string(cfg.vectorEnvs) : "");

  system.train();

  const rl::MetricsLog& log = system.metrics();
  const std::size_t n = log.size();
  std::printf("\ntraining summary (%zu episodes, %zu env steps):\n", n,
              system.trainer().globalStep());
  std::printf("  avgMaxQ quartiles: early=%.4f mid=%.4f late=%.4f\n", log.meanAvgMaxQ(0, n / 4),
              log.meanAvgMaxQ(n / 4, 3 * n / 4), log.meanAvgMaxQ(3 * n / 4, n));
  std::printf("  best docking score seen: %.2f (crystal pose scores %.2f)\n",
              log.bestScoreOverall(), system.env().crystalScore());
  std::printf("  replay memory: %.2f MiB\n",
              static_cast<double>(system.replayMemoryBytes()) / (1024.0 * 1024.0));

  const rl::EpisodeRecord greedy = system.evaluateGreedy();
  std::printf("  greedy policy: steps=%zu bestScore=%.2f finalRmsd=%.2f A\n", greedy.steps,
              greedy.bestScore, system.trainingEnv().rmsdToCrystal());

  const std::string csv = args.getString("csv", "");
  if (!csv.empty()) {
    log.writeCsv(csv);
    std::printf("  Figure 4 series written to %s\n", csv.c_str());
  }
  const std::string dumpPath = args.getString("dump-config", "");
  if (!dumpPath.empty()) {
    core::writeConfigFile(dumpPath, cfg);
    std::printf("  resolved configuration written to %s\n", dumpPath.c_str());
  }
  return 0;
}
