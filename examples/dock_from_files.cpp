// End-to-end file-based docking tool: reads a receptor (PDB) and a ligand
// (MOL2 / XYZ / PDB) from disk, runs a metaheuristic search followed by
// gradient minimization, clusters the resulting binding modes, and writes
// the top poses back out as PDB files.
//
// When invoked without --receptor/--ligand it first *generates* a demo
// pair (a residue-level synthetic protein and a drug-like ligand), writes
// them to disk, and then runs the exact same file pipeline — so the
// example is runnable out of the box yet exercises every I/O path a user
// with real structures would hit.
//
//   ./dock_from_files [--receptor=r.pdb --ligand=l.mol2]
//                     [--method=genetic] [--budget=6000] [--out-prefix=/tmp/pose]

#include <cstdio>
#include <filesystem>

#include "src/chem/mol2_io.hpp"
#include "src/chem/pdb_io.hpp"
#include "src/chem/protein.hpp"
#include "src/chem/synthetic.hpp"
#include "src/chem/topology.hpp"
#include "src/chem/xyz_io.hpp"
#include "src/common/cli.hpp"
#include "src/common/logging.hpp"
#include "src/metadock/forces.hpp"
#include "src/metadock/metaheuristic.hpp"
#include "src/metadock/pose_cluster.hpp"

using namespace dqndock;
namespace fs = std::filesystem;

namespace {

metadock::MetaheuristicParams presetByName(const std::string& name) {
  if (name == "random-search") return metadock::MetaheuristicParams::randomSearch();
  if (name == "local-search") return metadock::MetaheuristicParams::localSearch();
  if (name == "monte-carlo") return metadock::MetaheuristicParams::monteCarlo();
  if (name == "genetic") return metadock::MetaheuristicParams::genetic();
  std::fprintf(stderr, "unknown method '%s'\n", name.c_str());
  std::exit(1);
}

chem::Molecule loadLigand(const std::string& path) {
  const std::string ext = fs::path(path).extension().string();
  if (ext == ".mol2") return chem::readMol2File(path);
  if (ext == ".xyz") return chem::readXyzFile(path);
  chem::PdbReadOptions opts;
  opts.perceiveBonds = true;
  return chem::readPdbFile(path, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  std::string receptorPath = args.getString("receptor", "");
  std::string ligandPath = args.getString("ligand", "");

  // Generate a demo pair when none was supplied.
  if (receptorPath.empty() || ligandPath.empty()) {
    const fs::path dir = fs::temp_directory_path() / "dqndock-demo";
    fs::create_directories(dir);
    chem::ProteinSpec pspec;
    pspec.residues = 60;
    const chem::ProteinChain protein = chem::buildProtein(pspec);
    receptorPath = (dir / "receptor.pdb").string();
    chem::writePdbFile(receptorPath, protein.molecule);

    Rng rng(41);
    chem::Molecule ligand = chem::buildLigand(24, 4, rng);
    ligandPath = (dir / "ligand.mol2").string();
    chem::writeMol2File(ligandPath, ligand);
    std::printf("generated demo structures:\n  receptor: %s (%zu atoms, %zu residues)\n"
                "  ligand:   %s (%zu atoms)\n",
                receptorPath.c_str(), protein.molecule.atomCount(), pspec.residues,
                ligandPath.c_str(), ligand.atomCount());
  }

  // ---- Load from disk (the path real users take). -----------------------
  chem::PdbReadOptions ropts;
  ropts.perceiveBonds = true;
  chem::Molecule receptorMol = chem::readPdbFile(receptorPath, ropts);
  chem::Molecule ligandMol = loadLigand(ligandPath);
  chem::detectRotatableBonds(ligandMol);
  std::printf("loaded receptor %zu atoms / %zu bonds, ligand %zu atoms / %zu bonds\n",
              receptorMol.atomCount(), receptorMol.bondCount(), ligandMol.atomCount(),
              ligandMol.bondCount());

  // ---- Dock. -------------------------------------------------------------
  const double cutoff = 12.0;
  metadock::ReceptorModel receptor(receptorMol, cutoff);
  metadock::LigandModel ligand(ligandMol);
  metadock::ScoringOptions sopts;
  sopts.cutoff = cutoff;
  metadock::ScoringFunction scoring(receptor, ligand, sopts);
  metadock::PoseEvaluator evaluator(scoring, &ThreadPool::global());

  metadock::MetaheuristicParams params = presetByName(args.getString("method", "genetic"));
  params.maxEvaluations = static_cast<std::size_t>(args.getInt("budget", 6000));
  metadock::MetaheuristicEngine engine(evaluator, params);
  Rng rng(static_cast<std::uint64_t>(args.getInt("seed", 17)));
  const metadock::MetaheuristicResult result = engine.run(rng);
  std::printf("%s search: best score %.2f after %zu evaluations\n", params.name.c_str(),
              result.best.score, result.evaluations);

  // ---- Gradient refinement of the best pose. -----------------------------
  metadock::ScoringGradient gradient(receptor, ligand, sopts);
  const metadock::MinimizeResult refined =
      metadock::minimizePose(scoring, gradient, result.best.pose);
  std::printf("gradient refinement: %.2f -> %.2f in %d iterations%s\n", refined.initialScore,
              refined.finalScore, refined.iterations, refined.converged ? " (converged)" : "");

  // ---- Cluster the final population into binding modes. ------------------
  std::vector<metadock::Candidate> finals;
  finals.push_back({refined.pose, refined.finalScore});
  // Re-sample the engine a few more times for mode diversity.
  for (int i = 0; i < 4; ++i) {
    const auto extra = engine.run(rng);
    finals.push_back(extra.best);
  }
  metadock::ClusterOptions copts;
  copts.rmsdThreshold = 2.0;
  const auto clusters = metadock::clusterPoses(ligand, finals, copts);
  std::printf("binding modes (RMSD threshold %.1f A): %zu clusters\n", copts.rmsdThreshold,
              clusters.size());

  // ---- Write the representative poses. ------------------------------------
  const std::string prefix = args.getString("out-prefix",
                                            (fs::temp_directory_path() / "dqndock-pose").string());
  std::vector<Vec3> coords;
  for (std::size_t k = 0; k < clusters.size() && k < 3; ++k) {
    ligand.applyPose(clusters[k].representative.pose, coords);
    chem::Molecule posed = ligandMol;
    for (std::size_t i = 0; i < coords.size(); ++i) posed.setPosition(i, coords[i]);
    const std::string path = prefix + "-" + std::to_string(k) + ".pdb";
    chem::writePdbFile(path, posed);
    std::printf("  mode %zu: score %.2f, %zu members -> %s\n", k,
                clusters[k].representative.score, clusters[k].members.size(), path.c_str());
  }
  return 0;
}
