// HTTP/JSON gateway: one REST front-end hosting MANY registered
// networks. Every --models name gets its own DockingService worker pool
// backed by a versioned, hot-swappable ModelRegistry; requests route by
// model name (POST /v1/models/<name>/dock). The custom length-prefixed
// TCP framing stays as the INTERNAL transport — pass --tcp-port to also
// expose the first model over it for ./docking_client and the screen
// tools. Runs until SIGINT/SIGTERM.
//
//   ./gateway_server [--port=0] [--models=alpha,beta] [--scenario=tiny|paper]
//                    [--workers=2] [--queue=64] [--batch=32] [--flush-us=200]
//                    [--hidden=64,64] [--seed=2018] [--tcp-port=PORT]
//
// Quickstart against a running gateway (or see scripts/gateway_curl.sh):
//   curl -s localhost:PORT/v1/models
//   curl -s -X POST localhost:PORT/v1/models/alpha/dock \
//        -d '{"max_steps": 50, "seed": 7}'
//   curl -s localhost:PORT/v1/stats

#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/chem/synthetic.hpp"
#include "src/common/cli.hpp"
#include "src/gateway/gateway.hpp"
#include "src/serve/tcp.hpp"

using namespace dqndock;

namespace {

void printUsage() {
  std::fprintf(stderr,
               "usage: gateway_server [--port=0] [--models=alpha,beta]\n"
               "                      [--scenario=tiny|paper] [--workers=2] [--queue=64]\n"
               "                      [--batch=32] [--flush-us=200] [--hidden=64,64]\n"
               "                      [--seed=2018] [--tcp-port=PORT]\n");
}

std::vector<std::string> splitNames(const std::string& spec) {
  std::vector<std::string> names;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > pos) names.push_back(spec.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return names;
}

int run(const CliArgs& args) {
  const std::string scenarioName = args.getString("scenario", "tiny");
  const chem::ScenarioSpec spec =
      scenarioName == "paper" ? chem::ScenarioSpec::paper2bsm() : chem::ScenarioSpec::tiny();
  const chem::Scenario scenario = chem::buildScenario(spec);

  serve::ServiceOptions opts;
  opts.workers = static_cast<std::size_t>(args.getInt("workers", 2));
  opts.queueCapacity = static_cast<std::size_t>(args.getInt("queue", 64));
  opts.batcher.maxBatch = static_cast<std::size_t>(args.getInt("batch", 32));
  opts.batcher.flushDeadline = std::chrono::microseconds(args.getInt("flush-us", 200));

  const std::vector<std::string> names = splitNames(args.getString("models", "alpha,beta"));
  if (names.empty()) {
    std::fprintf(stderr, "gateway_server: --models needs at least one name\n");
    printUsage();
    return 1;
  }
  const std::vector<std::size_t> hidden =
      parseSizeList(args.getString("hidden", "64,64"), "hidden");
  const long seed = args.getInt("seed", 2018);

  const core::StateEncoder probe(scenario, opts.stateMode, opts.normalizeStates);
  metadock::DockingEnv probeEnv(scenario, opts.env);

  // Route SIGINT/SIGTERM through a sigwait() thread instead of a signal
  // handler: requestStop() takes locks, which a handler must not. The
  // mask must be in place BEFORE any worker thread spawns — threads
  // inherit it, and a process-directed signal delivered to a thread with
  // the default mask would kill the process.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  // One pool per registered model: distinct weights (per-model seed), a
  // private worker pool + queue, one shared scenario.
  std::vector<std::unique_ptr<serve::ModelRegistry>> registries;
  std::vector<std::unique_ptr<serve::DockingService>> services;
  serve::TenantDirectory directory;
  for (std::size_t i = 0; i < names.size(); ++i) {
    Rng rng(static_cast<std::uint64_t>(seed) + i);
    auto net = std::make_unique<rl::MlpQNetwork>(probe.dim(), hidden,
                                                 probeEnv.actionCount(), rng);
    registries.push_back(
        std::make_unique<serve::ModelRegistry>(std::move(net), names[i] + "-init"));
    services.push_back(std::make_unique<serve::DockingService>(scenario, *registries.back(),
                                                               opts, &ThreadPool::global()));
    directory.add(names[i], *services.back(), *registries.back());
  }

  gateway::HttpGateway gw(directory, static_cast<std::uint16_t>(args.getUint16("port", 0)));

  // Internal transport rides along untouched: the wire protocol server
  // fronts the FIRST model for length-prefixed clients.
  std::unique_ptr<serve::TcpServer> tcpServer;
  if (args.has("tcp-port")) {
    tcpServer = std::make_unique<serve::TcpServer>(
        *services.front(), *registries.front(),
        static_cast<std::uint16_t>(args.getUint16("tcp-port", 0)));
  }

  std::thread signalThread([&] {
    int sig = 0;
    sigwait(&signals, &sig);
    gw.requestStop();
  });

  std::printf("gateway on http://127.0.0.1:%u — scenario=%s state_dim=%zu actions=%d\n",
              gw.port(), scenarioName.c_str(), probe.dim(), probeEnv.actionCount());
  std::printf("  %zu model(s):", names.size());
  for (const auto& name : names) std::printf(" %s", name.c_str());
  std::printf("  (%zu workers, queue %zu each)\n", opts.workers, opts.queueCapacity);
  if (tcpServer) {
    std::printf("  internal wire transport for '%s' on 127.0.0.1:%u\n", names.front().c_str(),
                tcpServer->port());
  }
  std::printf("try: curl -s 127.0.0.1:%u/v1/models\n", gw.port());
  std::printf("     curl -s -X POST 127.0.0.1:%u/v1/models/%s/dock -d '{\"max_steps\":50}'\n",
              gw.port(), names.front().c_str());

  gw.waitUntilStopped();
  std::printf("stop requested, draining...\n");
  ::kill(::getpid(), SIGTERM);  // unblock the sigwait thread
  signalThread.join();
  gw.stop();
  if (tcpServer) tcpServer->stop();
  for (auto& service : services) service->shutdown();

  const gateway::GatewayStats stats = gw.stats();
  std::printf("gateway served %llu requests on %llu connections "
              "(%llu parse errors, %llu peer hangups)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.parseErrors),
              static_cast<unsigned long long>(stats.peerHangups));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Malformed flag values print usage and exit 1, never abort.
  try {
    return run(CliArgs(argc, argv));
  } catch (const CliError& e) {
    std::fprintf(stderr, "gateway_server: %s\n", e.what());
    printUsage();
    return 1;
  } catch (const std::exception& e) {
    // Startup failures (e.g. the port is already in use) exit with a
    // message instead of SIGABRT from an uncaught exception.
    std::fprintf(stderr, "gateway_server: fatal: %s\n", e.what());
    return 1;
  }
}
