// Flexible-ligand docking (paper Section 5, limitation 3): enable the
// torsional action space (12 + K actions), train DQN-Docking, and show
// how torsions change the reachable conformations.
//
//   ./flexible_docking [--episodes=40]

#include <cstdio>

#include "src/common/cli.hpp"
#include "src/core/dqn_docking.hpp"

using namespace dqndock;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  core::DqnDockingConfig cfg = core::DqnDockingConfig::scaled();
  cfg.env.flexibleLigand = true;
  cfg.trainer.episodes = static_cast<std::size_t>(args.getInt("episodes", 40));
  cfg.trainer.seed = static_cast<std::uint64_t>(args.getInt("seed", 11));

  ThreadPool pool;
  core::DqnDocking system(cfg, &pool);

  int rotatable = 0;
  for (const auto& b : system.scenario().ligand.bonds()) rotatable += b.rotatable;
  std::printf("flexible ligand: %d rotatable bonds -> %d actions (12 rigid + %d torsion)\n",
              rotatable, system.actionCount(), rotatable);

  // Show what a torsion action does before training.
  metadock::DockingEnv& env = system.env();
  env.reset();
  const double before = env.score();
  env.step(12);  // twist the first rotatable bond
  std::printf("one torsion twist: score %.2f -> %.2f (conformation changed, pose kept)\n",
              before, env.score());
  env.reset();

  system.train();
  const rl::MetricsLog& log = system.metrics();
  const std::size_t n = log.size();
  std::printf("\ntrained %zu episodes: lateQ=%.4f bestScore=%.2f\n", n,
              log.meanAvgMaxQ(3 * n / 4, n), log.bestScoreOverall());

  const rl::EpisodeRecord greedy = system.evaluateGreedy();
  std::printf("greedy rollout: steps=%zu bestScore=%.2f\n", greedy.steps, greedy.bestScore);

  // Inspect the learned pose's torsion angles.
  const metadock::Pose& pose = system.env().pose();
  std::printf("final torsion angles (rad):");
  for (double t : pose.torsions) std::printf(" %+.3f", t);
  std::printf("\n");
  return 0;
}
