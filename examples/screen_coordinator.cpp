// Distributed virtual-screening coordinator. Shards a ligand library,
// leases shards to screen_worker processes over TCP, journals completed
// shards for checkpoint-resume, re-leases shards whose worker dies, and
// merges per-shard top-K hits into one deterministic report.
//
//   ./screen_coordinator --library=lib.smi [--port=0]
//       [--journal=screen.journal] [--resume]
//       [--scenario=tiny|paper2bsm] [--scenario-seed=2018] [--receptor=file]
//       [--method=monte-carlo] [--budget=400] [--refine] [--cluster]
//       [--hit-threshold=0] [--seed=2020] [--topk=32]
//       [--shard-size=64] [--chunk=8] [--lease-timeout=10]
//       [--halt-after-shards=0] [--timeout=0]
//       [--csv=out.csv] [--stats-json=stats.json]
//
// Exits 0 when the whole library is screened, 2 on a simulated halt
// (--halt-after-shards) or timeout — in both cases the journal allows a
// later --resume to pick up where it stopped.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "src/common/cli.hpp"
#include "src/screen/coordinator.hpp"

using namespace dqndock;

namespace {

void printUsage() {
  std::fprintf(stderr, "usage: screen_coordinator --library=<lib.smi|lib.mol2> ...\n");
}

int run(const CliArgs& args) {
  screen::ScreenJobConfig config;
  config.libraryPath = args.getString("library", "");
  if (config.libraryPath.empty()) {
    printUsage();
    return 1;
  }
  config.scenario = args.getString("scenario", "tiny");
  config.scenarioSeed = static_cast<std::uint64_t>(args.getInt("scenario-seed", 2018));
  config.receptorFile = args.getString("receptor", "");
  config.searchPreset = args.getString("method", "monte-carlo");
  config.evaluationsPerLigand = static_cast<std::size_t>(args.getInt("budget", 400));
  config.refineWithGradient = args.getBool("refine", false);
  config.clusterModes = args.getBool("cluster", false);
  config.hitThreshold = args.getDouble("hit-threshold", 0.0);
  config.seed = static_cast<std::uint64_t>(args.getInt("seed", 2020));
  config.topK = static_cast<std::size_t>(args.getInt("topk", 32));
  config.shardSize = static_cast<std::size_t>(args.getInt("shard-size", 64));
  config.chunkSize = static_cast<std::size_t>(args.getInt("chunk", 8));
  config.leaseTimeoutSeconds = args.getDouble("lease-timeout", 10.0);

  screen::CoordinatorOptions options;
  options.port = static_cast<std::uint16_t>(args.getUint16("port", 0));
  options.journalPath = args.getString("journal", "");
  options.resume = args.getBool("resume", false);
  options.haltAfterShards = static_cast<std::size_t>(args.getInt("halt-after-shards", 0));

  screen::ScreenCoordinator coordinator(config, options);
  std::printf("screen_coordinator: listening on 127.0.0.1:%u (library %s, %zu ligands)\n",
              coordinator.port(), config.libraryPath.c_str(),
              coordinator.config().librarySize);
  std::fflush(stdout);

  const bool done = coordinator.waitUntilDone(args.getDouble("timeout", 0.0));
  if (done) {
    // Linger one polling interval so workers pick up FINISHED instead of
    // a dropped connection when we tear the listener down.
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
  }

  const metadock::ScreeningReport report = coordinator.report();
  const screen::CoordinatorStats stats = coordinator.stats();
  std::printf("screened %zu/%zu ligands in %.1f s — %zu shards done, %zu resumed, "
              "%zu stolen, %zu lease(s) expired, %zu stale result(s), %zu worker(s)\n",
              stats.ligandsDone, coordinator.config().librarySize, report.totalSeconds,
              stats.shardsDone, stats.shardsResumed, stats.shardsStolen,
              stats.leasesExpired, stats.resultsStale, stats.workersSeen);
  std::printf("%-4s %-16s %6s %12s %12s\n", "rank", "ligand", "atoms", "search", "refined");
  for (std::size_t i = 0; i < report.ranked.size(); ++i) {
    const auto& hit = report.ranked[i];
    std::printf("%-4zu %-16s %6zu %12.2f %12.2f\n", i + 1, hit.ligandName.c_str(),
                hit.atoms, hit.bestScore, hit.refinedScore);
  }

  const std::string csv = args.getString("csv", "");
  if (done && !csv.empty()) {
    metadock::writeScreeningCsv(csv, report);
    std::printf("report written to %s\n", csv.c_str());
  }

  const std::string statsJson = args.getString("stats-json", "");
  if (!statsJson.empty()) {
    std::ofstream out(statsJson);
    out << "{\n"
        << "  \"done\": " << (done ? "true" : "false") << ",\n"
        << "  \"library_size\": " << coordinator.config().librarySize << ",\n"
        << "  \"ligands_done\": " << stats.ligandsDone << ",\n"
        << "  \"shards_total\": " << stats.shardsTotal << ",\n"
        << "  \"shards_done\": " << stats.shardsDone << ",\n"
        << "  \"shards_resumed\": " << stats.shardsResumed << ",\n"
        << "  \"shards_stolen\": " << stats.shardsStolen << ",\n"
        << "  \"leases_expired\": " << stats.leasesExpired << ",\n"
        << "  \"results_stale\": " << stats.resultsStale << ",\n"
        << "  \"workers_seen\": " << stats.workersSeen << ",\n"
        << "  \"hit_count\": " << report.hitCount << ",\n"
        << "  \"total_evaluations\": " << report.totalEvaluations << ",\n"
        << "  \"elapsed_seconds\": " << report.totalSeconds << ",\n"
        << "  \"ligands_per_second\": "
        << (report.totalSeconds > 0.0 ? stats.ligandsDone / report.totalSeconds : 0.0)
        << "\n}\n";
    std::printf("stats written to %s\n", statsJson.c_str());
  }

  coordinator.stop();
  return done ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Malformed numeric flags print usage and exit 1, never abort.
  try {
    return run(CliArgs(argc, argv));
  } catch (const CliError& e) {
    std::fprintf(stderr, "screen_coordinator: %s\n", e.what());
    printUsage();
    return 1;
  } catch (const std::exception& e) {
    // Startup failures (e.g. the port is already in use) exit with a
    // message instead of SIGABRT from an uncaught exception.
    std::fprintf(stderr, "screen_coordinator: fatal: %s\n", e.what());
    return 1;
  }
}
