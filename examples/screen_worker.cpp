// Distributed virtual-screening worker: connects to a screen_coordinator,
// pulls shard leases, screens granted windows of the shared library, and
// submits per-shard top-K results. Run any number of these — locally or
// across machines sharing the library file — and kill them freely; the
// coordinator's lease timeout re-queues anything they were holding.
//
//   ./screen_worker --port=P [--host=127.0.0.1] [--id=w0] [--threads=0]
//                   [--max-shards=0] [--abort-after-chunks=0]
//
// Exits 0 after FINISHED (library fully screened), 1 on error.

#include <cstdio>

#include "src/common/cli.hpp"
#include "src/common/thread_pool.hpp"
#include "src/screen/worker.hpp"

using namespace dqndock;

namespace {

void printUsage() {
  std::fprintf(stderr, "usage: screen_worker --port=<coordinator port> ...\n");
}

int run(const CliArgs& args) {
  const auto port = static_cast<std::uint16_t>(args.getUint16("port", 0));
  if (port == 0) {
    printUsage();
    return 1;
  }

  screen::WorkerOptions options;
  options.id = args.getString("id", "worker");
  options.maxShards = static_cast<std::size_t>(args.getInt("max-shards", 0));
  options.abortAfterChunks =
      static_cast<std::size_t>(args.getInt("abort-after-chunks", 0));
  ThreadPool pool(static_cast<std::size_t>(args.getInt("threads", 0)));
  options.pool = &pool;

  screen::ScreenWorker worker(port, options, args.getString("host", "127.0.0.1"));
  const screen::WorkerStats stats = worker.run();

  std::printf("%s: %zu shard(s) completed, %zu ligand(s) in %zu chunk(s), "
              "%zu abandoned, %zu stale%s%s\n",
              options.id.c_str(), stats.shardsCompleted, stats.ligandsScreened,
              stats.chunksScreened, stats.abandoned, stats.staleResults,
              stats.finished ? ", finished" : "", stats.aborted ? ", aborted" : "");
  if (!stats.error.empty()) {
    std::fprintf(stderr, "%s: error: %s\n", options.id.c_str(), stats.error.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Malformed numeric flags print usage and exit 1, never abort.
  try {
    return run(CliArgs(argc, argv));
  } catch (const CliError& e) {
    std::fprintf(stderr, "screen_worker: %s\n", e.what());
    printUsage();
    return 1;
  } catch (const std::exception& e) {
    // Startup failures (e.g. the port is already in use) exit with a
    // message instead of SIGABRT from an uncaught exception.
    std::fprintf(stderr, "screen_worker: fatal: %s\n", e.what());
    return 1;
  }
}
