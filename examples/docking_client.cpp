// Command-line client for ./docking_server: speaks the length-prefixed
// wire protocol over localhost TCP. One flag per request type; without a
// request flag it sends PING + STATUS.
//
//   ./docking_client --port=PORT [--host=127.0.0.1]
//       --dock   [--max-steps=200] [--epsilon=0] [--seed=1]
//                [--priority=normal] [--timeout-s=0]
//       --screen [--library=4] [--min-atoms=8] [--max-atoms=14] [--evals=400]
//       --publish=path/to/weights.bin
//       --shutdown
//
// Responses print as the raw key=value fields, so the output doubles as
// protocol documentation.

#include <cstdio>

#include "src/common/cli.hpp"
#include "src/serve/tcp.hpp"

using namespace dqndock;

namespace {

void printReply(const char* what, const serve::Message& reply) {
  std::printf("%s -> %s\n", what, reply.type.c_str());
  for (const auto& [key, value] : reply.fields) {
    std::printf("  %s=%s\n", key.c_str(), value.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  long port = 0;
  try {
    port = args.getInt("port", 0);
  } catch (const CliError&) {
    port = 0;  // malformed --port falls through to the usage message
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "usage: %s --port=PORT [--dock|--screen|--publish=FILE|--shutdown]\n",
                 args.program().c_str());
    return 1;
  }

  try {
    serve::TcpClient client(static_cast<std::uint16_t>(port),
                            args.getString("host", "127.0.0.1"));

    bool sentSomething = false;
    if (args.has("dock")) {
      serve::Message dock{"DOCK", {}};
      dock.set("max_steps", args.getInt("max-steps", 200))
          .set("epsilon", args.getDouble("epsilon", 0.0))
          .set("seed", args.getInt("seed", 1))
          .set("priority", args.getString("priority", "normal"))
          .set("timeout_s", args.getDouble("timeout-s", 0.0));
      printReply("DOCK", client.request(dock));
      sentSomething = true;
    }
    if (args.has("screen")) {
      serve::Message screen{"SCREEN", {}};
      screen.set("library_size", args.getInt("library", 4))
          .set("min_atoms", args.getInt("min-atoms", 8))
          .set("max_atoms", args.getInt("max-atoms", 14))
          .set("evals", args.getInt("evals", 400))
          .set("seed", args.getInt("seed", 2020));
      printReply("SCREEN", client.request(screen));
      sentSomething = true;
    }
    const std::string publishPath = args.getString("publish", "");
    if (!publishPath.empty()) {
      serve::Message publish{"PUBLISH", {}};
      publish.set("path", publishPath);
      printReply("PUBLISH", client.request(publish));
      sentSomething = true;
    }
    if (args.has("shutdown")) {
      printReply("SHUTDOWN", client.request(serve::Message{"SHUTDOWN", {}}));
      sentSomething = true;
    }
    if (!sentSomething) {
      printReply("PING", client.request(serve::Message{"PING", {}}));
      printReply("STATUS", client.request(serve::Message{"STATUS", {}}));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
