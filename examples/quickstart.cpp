// Quickstart: build a docking scenario, score poses, take a few
// environment steps, and run a short Monte Carlo docking — the smallest
// end-to-end tour of the public API.
//
//   ./quickstart                 # synthetic tiny scenario
//   ./quickstart --paper-scale   # full 2BSM-sized scenario

#include <cstdio>

#include "src/chem/synthetic.hpp"
#include "src/common/cli.hpp"
#include "src/metadock/docking_env.hpp"
#include "src/metadock/landscape.hpp"
#include "src/metadock/metaheuristic.hpp"

using namespace dqndock;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  // 1. A docking problem: receptor + ligand + known solution pose.
  //    (Real structures load via chem::readPdbFile instead.)
  const auto spec = args.getBool("paper-scale", false) ? chem::ScenarioSpec::paper2bsm()
                                                       : chem::ScenarioSpec::tiny();
  const chem::Scenario scenario = chem::buildScenario(spec);
  std::printf("scenario: receptor %zu atoms / %zu bonds, ligand %zu atoms\n",
              scenario.receptor.atomCount(), scenario.receptor.bondCount(),
              scenario.ligand.atomCount());

  // 2. The METADOCK environment: step the ligand, read score and reward.
  metadock::DockingEnv env(scenario, {});
  std::printf("initial score %.2f, crystal score %.2f, RMSD to crystal %.2f A\n", env.score(),
              env.crystalScore(), env.rmsdToCrystal());

  std::printf("\nstepping toward the receptor (-z):\n");
  for (int i = 0; i < 8 && !env.terminated(); ++i) {
    const metadock::StepResult r = env.step(4);  // -z translation
    std::printf("  step %d: score=%10.2f reward=%+.0f\n", i + 1, r.score, r.reward);
  }

  // 3. Classical docking through the METADOCK metaheuristic schema.
  metadock::ReceptorModel receptor(scenario.receptor, 12.0);
  metadock::LigandModel ligand(scenario.ligand);
  metadock::ScoringFunction scoring(receptor, ligand, {});
  metadock::PoseEvaluator evaluator(scoring, &ThreadPool::global());
  metadock::MetaheuristicParams params = metadock::MetaheuristicParams::monteCarlo();
  params.maxEvaluations = 4000;
  metadock::MetaheuristicEngine engine(evaluator, params);
  Rng rng(7);
  const metadock::MetaheuristicResult result = engine.runFrom(ligand.restPose(), rng);
  std::printf("\nMonte Carlo docking: best score %.2f after %zu evaluations\n",
              result.best.score, result.evaluations);

  std::vector<Vec3> bestPos;
  ligand.applyPose(result.best.pose, bestPos);
  std::printf("best-pose RMSD to crystal: %.2f A\n",
              chem::rmsd(std::span<const Vec3>(bestPos), scenario.crystalPositions));

  // 4. Optional: export the approach-axis score profile for plotting.
  const std::string landscapeCsv = args.getString("landscape-csv", "");
  if (!landscapeCsv.empty()) {
    const auto samples = metadock::profileLine(scoring, Vec3{}, scenario.pocketAxis, 0.0,
                                               scenario.initialComDistance * 1.2, 120);
    metadock::writeLandscapeCsv(landscapeCsv, samples);
    std::printf("approach-axis landscape written to %s\n", landscapeCsv.c_str());
  }
  return 0;
}
