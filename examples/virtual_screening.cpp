// Virtual screening (paper Section 2.1): dock a library of ligands
// against one receptor with the screening pipeline — parallel per-ligand
// docking, optional gradient refinement and binding-mode counting, hit
// ranking and CSV export. This is the workload METADOCK was built for.
//
//   ./virtual_screening [--ligands=12] [--budget=3000] [--method=monte-carlo]
//                       [--csv=screen.csv] [--hit-threshold=200]

#include <cstdio>

#include "src/chem/synthetic.hpp"
#include "src/common/cli.hpp"
#include "src/metadock/vs_pipeline.hpp"

using namespace dqndock;

namespace {

metadock::MetaheuristicParams presetByName(const std::string& name) {
  if (name == "random-search") return metadock::MetaheuristicParams::randomSearch();
  if (name == "local-search") return metadock::MetaheuristicParams::localSearch();
  if (name == "monte-carlo") return metadock::MetaheuristicParams::monteCarlo();
  if (name == "genetic") return metadock::MetaheuristicParams::genetic();
  std::fprintf(stderr, "unknown method '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto ligandCount = static_cast<std::size_t>(args.getInt("ligands", 12));

  // One receptor (with its binding pocket), a library of random ligands.
  // Real pipelines load the library from SMILES/MOL2 files instead
  // (chem::moleculeFromSmiles / chem::readMol2File).
  const chem::Scenario scenario = chem::buildScenario(chem::ScenarioSpec::tiny());
  Rng libraryRng(99);
  const std::vector<chem::Molecule> library =
      chem::buildLigandLibrary(ligandCount, 8, 20, libraryRng);

  metadock::ScreeningOptions opts;
  opts.search = presetByName(args.getString("method", "monte-carlo"));
  opts.evaluationsPerLigand = static_cast<std::size_t>(args.getInt("budget", 3000));
  opts.hitThreshold = args.getDouble("hit-threshold", 200.0);
  opts.refineWithGradient = true;
  opts.clusterModes = true;

  const metadock::ScreeningReport report =
      metadock::screenLibrary(scenario.receptor, library, opts, &ThreadPool::global());

  std::printf("virtual screen: %zu ligands, method=%s, %zu evals/ligand, %.1f s total\n",
              library.size(), opts.search.name.c_str(), opts.evaluationsPerLigand,
              report.totalSeconds);
  std::printf("%-4s %-16s %6s %12s %12s %8s\n", "rank", "ligand", "atoms", "search", "refined",
              "modes");
  for (std::size_t i = 0; i < report.ranked.size(); ++i) {
    const auto& hit = report.ranked[i];
    std::printf("%-4zu %-16s %6zu %12.2f %12.2f %8zu\n", i + 1, hit.ligandName.c_str(),
                hit.atoms, hit.bestScore, hit.refinedScore, hit.bindingModes);
  }
  std::printf("\nhits above %.0f: %zu/%zu (%.0f%%) — the compounds passed on to later\n"
              "drug-discovery stages (paper Section 2.1).\n",
              opts.hitThreshold, report.hitCount, report.ranked.size(),
              100.0 * report.hitRate);

  const std::string csv = args.getString("csv", "");
  if (!csv.empty()) {
    metadock::writeScreeningCsv(csv, report);
    std::printf("report written to %s\n", csv.c_str());
  }
  return 0;
}
