// Virtual screening (paper Section 2.1): dock a library of ligands
// against one receptor with the screening pipeline — parallel per-ligand
// docking, optional gradient refinement and binding-mode counting, hit
// ranking and CSV export. This is the workload METADOCK was built for.
//
// One CLI surface covers single-process and distributed runs: with
// --shards=N (N > 1) the same job executes as an in-process coordinator
// plus --workers pulling worker threads, and produces a bit-identical
// report — per-ligand RNG streams are keyed by global library index, not
// by who screens what.
//
//   ./virtual_screening [--ligands=12] [--budget=3000] [--method=monte-carlo]
//                       [--csv=screen.csv] [--hit-threshold=200] [--seed=2020]
//                       [--topk=0] [--library=lib.smi] [--emit-library=lib.smi]
//                       [--shards=1] [--workers=2] [--chunk=8]
//                       [--journal=screen.journal] [--resume]

#include <cstdio>
#include <thread>
#include <vector>

#include "src/chem/library_io.hpp"
#include "src/chem/synthetic.hpp"
#include "src/common/cli.hpp"
#include "src/metadock/vs_pipeline.hpp"
#include "src/screen/coordinator.hpp"
#include "src/screen/worker.hpp"

using namespace dqndock;

namespace {

void printReport(const metadock::ScreeningReport& report, std::size_t librarySize,
                 const std::string& method, std::size_t budget, double hitThreshold) {
  std::printf("virtual screen: %zu ligands, method=%s, %zu evals/ligand, %.1f s total\n",
              librarySize, method.c_str(), budget, report.totalSeconds);
  std::printf("%-4s %-16s %6s %12s %12s %8s\n", "rank", "ligand", "atoms", "search",
              "refined", "modes");
  for (std::size_t i = 0; i < report.ranked.size(); ++i) {
    const auto& hit = report.ranked[i];
    std::printf("%-4zu %-16s %6zu %12.2f %12.2f %8zu\n", i + 1, hit.ligandName.c_str(),
                hit.atoms, hit.bestScore, hit.refinedScore, hit.bindingModes);
  }
  std::printf("\nhits above %.0f: %zu/%zu (%.0f%%) — the compounds passed on to later\n"
              "drug-discovery stages (paper Section 2.1).\n",
              hitThreshold, report.hitCount, librarySize, 100.0 * report.hitRate);
}

void printUsage() {
  std::fprintf(stderr,
               "usage: virtual_screening [--ligands=12] [--budget=3000] "
               "[--method=monte-carlo]\n"
               "                         [--csv=screen.csv] [--hit-threshold=200] "
               "[--seed=2020]\n"
               "                         [--topk=0] [--library=lib.smi] "
               "[--emit-library=lib.smi]\n"
               "                         [--shards=1] [--workers=2] [--chunk=8]\n"
               "                         [--journal=screen.journal] [--resume]\n");
}

int run(const CliArgs& args) {
  const auto ligandCount = static_cast<std::size_t>(args.getInt("ligands", 12));
  const auto shards = static_cast<std::size_t>(args.getInt("shards", 1));
  const auto workers = static_cast<std::size_t>(args.getInt("workers", 2));

  screen::ScreenJobConfig config;
  config.searchPreset = args.getString("method", "monte-carlo");
  config.evaluationsPerLigand = static_cast<std::size_t>(args.getInt("budget", 3000));
  config.hitThreshold = args.getDouble("hit-threshold", 200.0);
  config.refineWithGradient = true;
  config.clusterModes = true;
  config.seed = static_cast<std::uint64_t>(args.getInt("seed", 2020));
  config.topK = static_cast<std::size_t>(args.getInt("topk", 0));
  config.chunkSize = static_cast<std::size_t>(args.getInt("chunk", 8));

  // The library lives in a file so every process/shard reads the same
  // molecules. --library uses an existing .smi/.mol2; otherwise a
  // synthetic library is written to --emit-library (kept for re-use).
  config.libraryPath = args.getString("library", "");
  if (config.libraryPath.empty()) {
    config.libraryPath = args.getString("emit-library", "vs_library.smi");
    chem::writeSyntheticLibraryFile(config.libraryPath, ligandCount, 8, 20, 99);
    std::printf("synthetic library (%zu ligands) written to %s\n", ligandCount,
                config.libraryPath.c_str());
  }

  const chem::Molecule receptor = screen::loadReceptor(config);
  metadock::ScreeningReport report;

  if (shards <= 1) {
    // Single process, straight through the VsPipeline.
    chem::LigandLibraryReader reader(config.libraryPath);
    config.librarySize = reader.size();
    const std::vector<chem::Molecule> library = reader.readAll();
    report = metadock::screenLibrary(receptor, library, config.screeningOptions(),
                                     &ThreadPool::global());
    if (config.topK > 0 && report.ranked.size() > config.topK) {
      report.ranked.resize(config.topK);
    }
  } else {
    // Distributed in-process: one coordinator, `workers` worker threads,
    // all speaking the same wire protocol the standalone
    // screen_coordinator / screen_worker binaries use.
    {
      chem::LigandLibraryReader reader(config.libraryPath);
      config.shardSize = (reader.size() + shards - 1) / shards;
      if (config.shardSize == 0) config.shardSize = 1;
    }
    screen::CoordinatorOptions coordOptions;
    coordOptions.journalPath = args.getString("journal", "");
    coordOptions.resume = args.getBool("resume", false);
    screen::ScreenCoordinator coordinator(config, coordOptions);
    std::printf("coordinator on 127.0.0.1:%u — %zu shards, %zu worker threads\n",
                coordinator.port(), shards, workers);

    std::vector<std::thread> crew;
    std::vector<screen::WorkerStats> crewStats(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      crew.emplace_back([&, w] {
        screen::WorkerOptions workerOptions;
        workerOptions.id = "worker-" + std::to_string(w);
        crewStats[w] = screen::ScreenWorker(coordinator.port(), workerOptions).run();
      });
    }
    coordinator.waitUntilDone();
    for (auto& t : crew) t.join();
    report = coordinator.report();
    const screen::CoordinatorStats stats = coordinator.stats();
    std::printf("distributed: %zu shards done (%zu resumed, %zu stolen), "
                "%zu lease(s) expired\n",
                stats.shardsDone, stats.shardsResumed, stats.shardsStolen,
                stats.leasesExpired);
    for (std::size_t w = 0; w < workers; ++w) {
      if (!crewStats[w].error.empty()) {
        std::fprintf(stderr, "worker-%zu error: %s\n", w, crewStats[w].error.c_str());
      }
    }
    coordinator.stop();
  }

  chem::LigandLibraryReader reader(config.libraryPath);
  printReport(report, reader.size(), config.searchPreset, config.evaluationsPerLigand,
              config.hitThreshold);

  const std::string csv = args.getString("csv", "");
  if (!csv.empty()) {
    metadock::writeScreeningCsv(csv, report);
    std::printf("report written to %s\n", csv.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Malformed numeric flags print usage and exit 1, never abort.
  try {
    return run(CliArgs(argc, argv));
  } catch (const CliError& e) {
    std::fprintf(stderr, "virtual_screening: %s\n", e.what());
    printUsage();
    return 1;
  }
}
