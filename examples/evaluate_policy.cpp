// Train once, checkpoint, reload, evaluate — the paper's central economic
// argument: "reducing the computational cost once the NN is already
// trained". A trained policy docks with one cheap forward pass per step
// instead of a metaheuristic's thousands of scoring calls.
//
//   ./evaluate_policy [--episodes=60] [--ckpt=/tmp/dqndock.ckpt] [--trajectory=episode.xyz]

#include <cstdio>

#include "src/common/cli.hpp"
#include "src/common/stopwatch.hpp"
#include "src/core/dqn_docking.hpp"
#include "src/metadock/trajectory.hpp"
#include "src/rl/checkpoint.hpp"

using namespace dqndock;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string ckpt = args.getString("ckpt", "/tmp/dqndock-policy.ckpt");

  core::DqnDockingConfig cfg = core::DqnDockingConfig::scaled();
  cfg.trainer.episodes = static_cast<std::size_t>(args.getInt("episodes", 60));
  cfg.trainer.seed = static_cast<std::uint64_t>(args.getInt("seed", 21));

  ThreadPool pool;

  // ---- Phase 1: train and checkpoint. -----------------------------------
  {
    Stopwatch clock;
    core::DqnDocking system(cfg, &pool);
    system.train();
    rl::saveAgent(ckpt, system.agent());
    std::printf("trained %zu episodes in %.1f s; checkpoint -> %s\n", cfg.trainer.episodes,
                clock.seconds(), ckpt.c_str());
  }

  // ---- Phase 2: fresh process-equivalent — rebuild and load weights. ----
  {
    core::DqnDocking system(cfg, &pool);
    rl::loadAgent(ckpt, system.agent());

    Stopwatch clock;
    const rl::EpisodeRecord eval = system.evaluateGreedy();
    std::printf("reloaded policy greedy rollout: steps=%zu bestScore=%.2f (%.3f s, %zu scoring"
                " evaluations)\n",
                eval.steps, eval.bestScore, clock.seconds(), system.env().evaluationCount());

    // Record a full greedy episode as a viewable trajectory.
    const std::string trajPath = args.getString("trajectory", "");
    if (!trajPath.empty()) {
      std::vector<double> state;
      auto traj = metadock::recordEpisode(
          system.env(),
          [&](const metadock::DockingEnv& env) {
            system.encoder().encodeFromPositions(env.ligandPositions(), state);
            return system.agent().greedyAction(state);
          },
          cfg.env.maxSteps);
      traj.writeXyzFile(trajPath);
      std::printf("greedy episode trajectory (%zu frames) -> %s (open in VMD/PyMOL)\n",
                  traj.frameCount(), trajPath.c_str());
      std::printf("best frame %zu scored %.2f\n", traj.bestFrame(),
                  traj.frames()[traj.bestFrame()].score);
    }
  }
  return 0;
}
