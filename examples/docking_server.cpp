// Docking-as-a-service: stand up the serving stack — model registry,
// micro-batched inference, job queue + worker pool, TCP front-end — and
// serve dock/screen requests on localhost until a client sends SHUTDOWN
// (or the process receives SIGINT). Pair with ./docking_client.
//
//   ./docking_server [--port=0] [--workers=2] [--queue=64]
//                    [--batch=32] [--flush-us=200] [--hidden=64,64]
//                    [--weights=policy.bin] [--scenario=tiny|paper]
//
// With --weights the server seeds the registry from a checkpoint trained
// by ./train_dqn_docking or ./evaluate_policy; otherwise it serves a
// randomly-initialized policy (useful for exercising the protocol).

#include <csignal>
#include <cstdio>
#include <thread>

#include <unistd.h>

#include "src/chem/synthetic.hpp"
#include "src/common/cli.hpp"
#include "src/rl/checkpoint.hpp"
#include "src/serve/tcp.hpp"

using namespace dqndock;

namespace {

void printUsage() {
  std::fprintf(stderr,
               "usage: docking_server [--port=0] [--workers=2] [--queue=64]\n"
               "                      [--batch=32] [--flush-us=200] [--hidden=64,64]\n"
               "                      [--weights=policy.bin] [--scenario=tiny|paper]\n");
}

int run(const CliArgs& args) {
  const std::string scenarioName = args.getString("scenario", "tiny");
  const chem::ScenarioSpec spec =
      scenarioName == "paper" ? chem::ScenarioSpec::paper2bsm() : chem::ScenarioSpec::tiny();
  const chem::Scenario scenario = chem::buildScenario(spec);

  serve::ServiceOptions opts;
  opts.workers = static_cast<std::size_t>(args.getInt("workers", 2));
  opts.queueCapacity = static_cast<std::size_t>(args.getInt("queue", 64));
  opts.batcher.maxBatch = static_cast<std::size_t>(args.getInt("batch", 32));
  opts.batcher.flushDeadline = std::chrono::microseconds(args.getInt("flush-us", 200));

  // The network must match the encoder dim and action count the service
  // derives from the scenario.
  const core::StateEncoder probe(scenario, opts.stateMode, opts.normalizeStates);
  metadock::DockingEnv probeEnv(scenario, opts.env);
  Rng rng(2018);
  auto net = std::make_unique<rl::MlpQNetwork>(
      probe.dim(), parseSizeList(args.getString("hidden", "64,64"), "hidden"),
      probeEnv.actionCount(), rng);

  const std::string weights = args.getString("weights", "");
  std::string tag = "random-init";
  if (!weights.empty()) {
    rl::loadWeightsFile(weights, *net);
    tag = weights;
  }
  serve::ModelRegistry registry(std::move(net), tag);

  // Route SIGINT/SIGTERM through a sigwait() thread instead of a signal
  // handler: requestStop() takes locks, which a handler must not.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  serve::DockingService service(scenario, registry, opts, &ThreadPool::global());
  serve::TcpServer server(service, registry,
                          static_cast<std::uint16_t>(args.getUint16("port", 0)));
  std::thread signalThread([&] {
    int sig = 0;
    sigwait(&signals, &sig);
    server.requestStop();
  });

  std::printf("docking server on 127.0.0.1:%u — scenario=%s state_dim=%zu actions=%d\n",
              server.port(), scenarioName.c_str(), probe.dim(), probeEnv.actionCount());
  std::printf("  %zu workers, queue capacity %zu, batch<=%zu (flush %lld us), model %s\n",
              opts.workers, opts.queueCapacity, opts.batcher.maxBatch,
              static_cast<long long>(opts.batcher.flushDeadline.count()), tag.c_str());
  std::printf("try: ./docking_client --port=%u --dock --max-steps=50\n", server.port());

  server.waitUntilStopped();
  std::printf("stop requested, draining...\n");
  // Unblock the sigwait thread when SHUTDOWN came over TCP instead of a
  // signal (process-directed so any sigwait-er consumes it).
  ::kill(::getpid(), SIGTERM);
  signalThread.join();
  server.stop();
  service.shutdown();

  const serve::ServiceStats stats = service.stats();
  std::printf("served %llu jobs (%llu failed, %llu cancelled, %llu timed out), "
              "%llu batches of mean %.2f rows\n",
              static_cast<unsigned long long>(stats.done),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(stats.timedOut),
              static_cast<unsigned long long>(stats.batcher.batches),
              stats.batcher.meanBatchRows());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Malformed flag values ("--hidden=128,abc", "--port=80x") print usage
  // and exit 1 — never an uncaught-exception abort.
  try {
    return run(CliArgs(argc, argv));
  } catch (const CliError& e) {
    std::fprintf(stderr, "docking_server: %s\n", e.what());
    printUsage();
    return 1;
  } catch (const std::exception& e) {
    // Startup failures (e.g. the port is already in use) exit with a
    // message instead of SIGABRT from an uncaught exception.
    std::fprintf(stderr, "docking_server: fatal: %s\n", e.what());
    return 1;
  }
}
