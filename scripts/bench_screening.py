#!/usr/bin/env python3
"""Benchmark the distributed virtual-screening service and emit BENCH_screening.json.

Runs the same synthetic-library screen twice:

  1. single-process reference: virtual_screening --shards=1
  2. distributed: screen_coordinator + N screen_worker processes, with one
     worker SIGKILLed mid-run (the coordinator's lease timeout must
     reclaim its shard)

and verifies the two CSV reports are byte-identical — the acceptance bar
for the whole subsystem. The JSON carries throughput (ligands/second)
for both modes plus the coordinator's shard/fault counters.

Stdlib only. Usage:

    python3 scripts/bench_screening.py [--build-dir build] [--out BENCH_screening.json]
                                       [--ligands 1000] [--budget 150]
                                       [--shard-size 64] [--chunk 8] [--workers 2]
                                       [--kill-after 2.0] [--lease-timeout 2.0]
"""

import argparse
import json
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

METHOD = "monte-carlo"
SEED = 2020
HIT_THRESHOLD = 200.0


def wait_for_port(proc: subprocess.Popen) -> int:
    """Parse the coordinator's 'listening on 127.0.0.1:PORT' banner."""
    assert proc.stdout is not None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit("coordinator exited before announcing its port")
        match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if match:
            return int(match.group(1))
    raise SystemExit("timed out waiting for the coordinator port banner")


def run_single_process(vs_bin: Path, library: Path, csv: Path, args) -> float:
    start = time.monotonic()
    subprocess.run(
        [str(vs_bin), f"--library={library}", "--shards=1",
         f"--budget={args.budget}", f"--method={METHOD}", f"--seed={SEED}",
         f"--hit-threshold={HIT_THRESHOLD}", "--topk=0", f"--csv={csv}"],
        check=True, stdout=subprocess.DEVNULL)
    return time.monotonic() - start


def run_distributed(coord_bin: Path, worker_bin: Path, library: Path, csv: Path,
                    stats_json: Path, args) -> tuple[float, dict, bool]:
    start = time.monotonic()
    coordinator = subprocess.Popen(
        [str(coord_bin), f"--library={library}",
         f"--budget={args.budget}", f"--method={METHOD}", f"--seed={SEED}",
         f"--hit-threshold={HIT_THRESHOLD}",
         # virtual_screening hard-wires refinement + mode clustering on;
         # the distributed run must screen under the same options to
         # produce the same bits.
         "--refine=true", "--cluster=true", "--topk=0",
         f"--shard-size={args.shard_size}", f"--chunk={args.chunk}",
         f"--lease-timeout={args.lease_timeout}",
         f"--csv={csv}", f"--stats-json={stats_json}"],
        stdout=subprocess.PIPE, text=True)
    try:
        port = wait_for_port(coordinator)
        workers = [
            subprocess.Popen([str(worker_bin), f"--port={port}", f"--id=bench-w{i}"],
                             stdout=subprocess.DEVNULL)
            for i in range(args.workers)
        ]

        # Fault injection: SIGKILL one worker mid-run. The screen must
        # still finish, bit-identically, via lease-timeout reclamation.
        time.sleep(args.kill_after)
        killed_mid_run = workers[0].poll() is None
        workers[0].send_signal(signal.SIGKILL)
        if not killed_mid_run:
            sys.stderr.write("note: worker 0 finished before --kill-after; "
                             "raise --ligands/--budget for a longer run\n")

        rc = coordinator.wait(timeout=1800)
        elapsed = time.monotonic() - start
        for w in workers[1:]:
            w.wait(timeout=120)
        workers[0].wait(timeout=120)
        if rc != 0:
            raise SystemExit(f"coordinator exited {rc}")
    finally:
        if coordinator.poll() is None:
            coordinator.kill()

    stats = json.loads(stats_json.read_text())
    return elapsed, stats, killed_mid_run


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build", type=Path)
    ap.add_argument("--out", default="BENCH_screening.json", type=Path)
    ap.add_argument("--ligands", default=1000, type=int)
    ap.add_argument("--budget", default=150, type=int,
                    help="search evaluations per ligand")
    ap.add_argument("--shard-size", default=64, type=int)
    ap.add_argument("--chunk", default=8, type=int)
    ap.add_argument("--workers", default=2, type=int)
    ap.add_argument("--kill-after", default=2.0, type=float,
                    help="seconds before SIGKILLing worker 0")
    ap.add_argument("--lease-timeout", default=2.0, type=float)
    args = ap.parse_args()

    ex = args.build_dir / "examples"
    vs_bin, coord_bin, worker_bin = (ex / "virtual_screening",
                                     ex / "screen_coordinator", ex / "screen_worker")
    for binary in (vs_bin, coord_bin, worker_bin):
        if not binary.exists():
            raise SystemExit(f"{binary} not found - build the examples first")

    with tempfile.TemporaryDirectory(prefix="dqndock_bench_screen_") as tmp:
        tmpdir = Path(tmp)
        library = tmpdir / "library.smi"
        single_csv, dist_csv = tmpdir / "single.csv", tmpdir / "dist.csv"
        stats_json = tmpdir / "stats.json"

        # Emit the synthetic library once (the --shards=1 run both writes
        # it and produces the single-process reference report).
        single_seconds = None
        start = time.monotonic()
        subprocess.run(
            [str(vs_bin), f"--ligands={args.ligands}", f"--emit-library={library}",
             "--shards=1", f"--budget={args.budget}", f"--method={METHOD}",
             f"--seed={SEED}", f"--hit-threshold={HIT_THRESHOLD}", "--topk=0",
             f"--csv={single_csv}"],
            check=True, stdout=subprocess.DEVNULL)
        single_seconds = time.monotonic() - start

        dist_seconds, stats, killed_mid_run = run_distributed(
            coord_bin, worker_bin, library, dist_csv, stats_json, args)

        bit_identical = single_csv.read_bytes() == dist_csv.read_bytes()

    report = {
        "benchmark": "bench_screening",
        "scenario": (f"synthetic .smi library, {args.ligands} ligands, "
                     f"{METHOD} x {args.budget} evals/ligand, tiny receptor"),
        "metric": "ligands_per_second",
        "library_size": args.ligands,
        "workers": args.workers,
        "worker_killed_mid_run": killed_mid_run,
        "shard_size": args.shard_size,
        "chunk_size": args.chunk,
        "lease_timeout_seconds": args.lease_timeout,
        "single_process": {
            "seconds": round(single_seconds, 3),
            "ligands_per_second": round(args.ligands / single_seconds, 2),
        },
        "distributed": {
            "seconds": round(dist_seconds, 3),
            "ligands_per_second": round(args.ligands / dist_seconds, 2),
            "shards_total": stats["shards_total"],
            "shards_done": stats["shards_done"],
            "shards_stolen": stats["shards_stolen"],
            "leases_expired": stats["leases_expired"],
            "results_stale": stats["results_stale"],
            "workers_seen": stats["workers_seen"],
        },
        "acceptance": {
            "required_bit_identical_to_single_process": True,
            "measured_bit_identical": bit_identical,
            "required_all_shards_completed": True,
            "measured_all_shards_completed":
                stats["ligands_done"] == stats["library_size"] == args.ligands,
        },
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(f"  single-process : {report['single_process']['ligands_per_second']:8.2f} ligands/s"
          f"  ({single_seconds:.1f} s)")
    print(f"  distributed    : {report['distributed']['ligands_per_second']:8.2f} ligands/s"
          f"  ({dist_seconds:.1f} s, {args.workers} workers, 1 killed)")
    print(f"  shards: {stats['shards_done']}/{stats['shards_total']} done, "
          f"{stats['shards_stolen']} stolen, {stats['leases_expired']} lease(s) expired")
    print(f"  bit-identical  : {bit_identical}")

    if not bit_identical:
        raise SystemExit("FAIL: distributed report differs from single-process run")
    if not report["acceptance"]["measured_all_shards_completed"]:
        raise SystemExit("FAIL: not every ligand was screened")


if __name__ == "__main__":
    main()
