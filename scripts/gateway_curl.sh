#!/usr/bin/env bash
# Curl quickstart for the HTTP/JSON gateway. Start a gateway first:
#
#   ./build/examples/gateway_server --port=8080 --models=alpha,beta
#
# then run:  scripts/gateway_curl.sh 8080
set -euo pipefail

PORT="${1:-8080}"
BASE="http://127.0.0.1:${PORT}"

echo "== liveness =="
curl -sf "${BASE}/v1/healthz"; echo

echo "== registered models =="
curl -sf "${BASE}/v1/models"; echo

echo "== dock on model 'alpha' (deterministic: epsilon=0) =="
curl -sf -X POST "${BASE}/v1/models/alpha/dock" \
     -H 'Content-Type: application/json' \
     -d '{"max_steps": 50, "epsilon": 0, "seed": 7, "priority": "high"}'; echo

echo "== screen a small generated library on model 'beta' =="
curl -sf -X POST "${BASE}/v1/models/beta/screen" \
     -d '{"library_size": 4, "min_atoms": 8, "max_atoms": 12, "evals": 200}'; echo

echo "== per-model queue depth + latency percentiles =="
curl -sf "${BASE}/v1/stats"; echo
