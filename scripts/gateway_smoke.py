#!/usr/bin/env python3
"""End-to-end smoke test for the HTTP/JSON gateway (CI e2e-gateway job).

Starts ./gateway_server with TWO registered models, then drives the full
REST surface with the standard library's http.client — no third-party
dependency, the same bytes curl would send:

  * GET  /v1/healthz            -> {"status": "ok", "models": 2}
  * GET  /v1/models             -> both names, schema-checked
  * POST /v1/models/<n>/dock    -> routed per model; schema-checked;
                                   deterministic repeat must be
                                   BIT-identical (same JSON number text)
  * POST /v1/models/<n>/screen  -> routed; schema-checked
  * GET  /v1/stats              -> per-model counters reflect exactly the
                                   traffic each model received
  * error contract              -> 404 unknown model, 400 bad JSON

Exits non-zero on the first violation, printing what failed.

Usage: gateway_smoke.py /path/to/gateway_server
"""

import http.client
import json
import subprocess
import sys
import time

MODELS = ["alpha", "beta"]


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect(condition, message):
    if not condition:
        fail(message)


def request(port, method, path, body=None):
    """One HTTP exchange; returns (status, raw_body_text)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"} if body else {})
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


def expect_keys(obj, keys, context):
    for key in keys:
        expect(key in obj, f"{context}: missing key {key!r} in {obj}")


def main():
    if len(sys.argv) != 2:
        fail("usage: gateway_smoke.py /path/to/gateway_server")
    server = subprocess.Popen(
        [sys.argv[1], "--port=18490", "--models=" + ",".join(MODELS), "--workers=2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    port = 18490
    try:
        # Wait for the listener.
        for _ in range(100):
            try:
                status, _ = request(port, "GET", "/v1/healthz")
                if status == 200:
                    break
            except OSError:
                time.sleep(0.1)
        else:
            fail("gateway never came up on port 18490")

        # healthz
        status, text = request(port, "GET", "/v1/healthz")
        health = json.loads(text)
        expect(health["status"] == "ok", f"healthz status: {text}")
        expect(health["models"] == len(MODELS), f"healthz model count: {text}")

        # discovery
        status, text = request(port, "GET", "/v1/models")
        expect(status == 200, f"/v1/models -> {status}")
        listing = json.loads(text)["models"]
        expect([m["name"] for m in listing] == sorted(MODELS),
               f"model listing mismatch: {text}")
        for entry in listing:
            expect_keys(entry, ["name", "model_version", "state_dim", "actions",
                                "workers", "queue_capacity", "fold_active"], "/v1/models")

        # dock on each model, with a bit-identical deterministic repeat
        dock_body = json.dumps({"max_steps": 12, "epsilon": 0, "seed": 11})
        for name in MODELS:
            path = f"/v1/models/{name}/dock"
            status, first = request(port, "POST", path, dock_body)
            expect(status == 200, f"{path} -> {status}: {first}")
            result = json.loads(first)
            expect_keys(result, ["model", "job_id", "status", "initial_score",
                                 "best_score", "final_score", "best_rmsd", "steps",
                                 "termination", "model_version", "seconds"], path)
            expect(result["model"] == name, f"{path} routed to {result['model']}")
            expect(result["status"] == "done", f"{path} status {result['status']}")

            status, second = request(port, "POST", path, dock_body)
            a, b = json.loads(first), json.loads(second)
            for field in ("initial_score", "best_score", "final_score", "best_rmsd"):
                # Compare the raw repr: %.17g round-trips doubles exactly,
                # so a deterministic rollout must serialize identically.
                expect(repr(a[field]) == repr(b[field]),
                       f"{path} {field} not bit-stable: {a[field]!r} vs {b[field]!r}")

        # screen on one model only (alpha) — the stats check below pins
        # per-model attribution.
        status, text = request(port, "POST", "/v1/models/alpha/screen",
                               json.dumps({"library_size": 2, "min_atoms": 6,
                                           "max_atoms": 8, "evals": 30}))
        expect(status == 200, f"screen -> {status}: {text}")
        screen = json.loads(text)
        expect_keys(screen, ["model", "job_id", "status", "ligands", "hit_count",
                             "best_score", "best_ligand", "evaluations", "seconds"],
                    "screen")
        expect(screen["ligands"] == 2, f"screen ligand count: {text}")

        # error contract
        status, _ = request(port, "GET", "/v1/nope")
        expect(status == 404, f"unknown route -> {status}")
        status, _ = request(port, "POST", "/v1/models/gamma/dock", "{}")
        expect(status == 404, f"unknown model -> {status}")
        status, _ = request(port, "POST", "/v1/models/alpha/dock", "{broken")
        expect(status == 400, f"bad JSON -> {status}")
        status, _ = request(port, "POST", "/v1/models/alpha/dock",
                            json.dumps({"max_steps": "lots"}))
        expect(status == 400, f"mistyped field -> {status}")

        # stats: per-model routing must be visible in the counters
        status, text = request(port, "GET", "/v1/stats")
        expect(status == 200, f"/v1/stats -> {status}")
        stats = json.loads(text)
        expect_keys(stats, ["gateway", "models"], "/v1/stats")
        expect_keys(stats["gateway"], ["connections", "requests", "parse_errors",
                                       "peer_hangups"], "/v1/stats gateway")
        by_name = {entry["name"]: entry for entry in stats["models"]}
        expect(set(by_name) == set(MODELS), f"stats models: {text}")
        for name in MODELS:
            expect_keys(by_name[name], ["queue_depth", "queue_capacity", "workers",
                                        "dock", "screen", "jobs", "batches",
                                        "mean_batch_rows"], f"stats[{name}]")
            expect_keys(by_name[name]["dock"], ["requests", "errors", "latency_samples",
                                                "latency_ms"], f"stats[{name}].dock")
            expect_keys(by_name[name]["dock"]["latency_ms"], ["p50", "p90", "p99"],
                        f"stats[{name}].dock.latency_ms")
            expect(by_name[name]["dock"]["requests"] == 2,
                   f"{name} dock request count: {by_name[name]['dock']}")
        expect(by_name["alpha"]["screen"]["requests"] == 1,
               f"alpha screen count: {by_name['alpha']['screen']}")
        expect(by_name["beta"]["screen"]["requests"] == 0,
               f"beta screen count: {by_name['beta']['screen']}")
        expect(by_name["alpha"]["dock"]["latency_ms"]["p50"] > 0,
               "alpha dock p50 should be positive after traffic")

        print("gateway smoke: all checks passed")
    finally:
        server.terminate()
        try:
            output = server.communicate(timeout=15)[0]
        except subprocess.TimeoutExpired:
            server.kill()
            output = server.communicate()[0]
        print(output or "", end="")
    if server.returncode not in (0, -15):
        fail(f"gateway_server exited {server.returncode}")


if __name__ == "__main__":
    main()
