#!/usr/bin/env python3
"""Run the Q-network benchmarks and emit BENCH_nn.json.

Covers the paper architecture (Table 1: 16,599 -> 135 -> 135 -> 12,
minibatch 32) forward and train-step throughput across thread counts,
the scaled preset, and single-state inference. Refuses to publish
numbers measured from a debug harness build unless --allow-debug is
passed, and refuses output that does not stamp the GEMM kernel tier
(generic or avx512) the runs dispatched to.

Stdlib only. Usage:

    python3 scripts/bench_nn.py [--build-dir build] [--out BENCH_nn.json]
                                [--min-time 0.5] [--allow-debug]

Expects the bench harness at <build-dir>/bench/bench_nn (built with
-DDQNDOCK_BUILD_BENCH=ON, the default; use a Release build dir).
items_per_second is states per second (batch rows x iterations / time).
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

# benchmark name -> (section, key). Thread-sweep benchmarks carry the
# google-benchmark /Arg and /real_time suffixes.
BENCH_MAP = {
    "BM_PaperNetForward/0/real_time": ("paper_forward", "threads_0"),
    "BM_PaperNetForward/2/real_time": ("paper_forward", "threads_2"),
    "BM_PaperNetForward/4/real_time": ("paper_forward", "threads_4"),
    "BM_PaperNetForward/8/real_time": ("paper_forward", "threads_8"),
    "BM_PaperNetTrainStep/0/real_time": ("paper_train_step", "threads_0"),
    "BM_PaperNetTrainStep/2/real_time": ("paper_train_step", "threads_2"),
    "BM_PaperNetTrainStep/4/real_time": ("paper_train_step", "threads_4"),
    "BM_PaperNetTrainStep/8/real_time": ("paper_train_step", "threads_8"),
    "BM_ScaledNetForward": ("scaled_net", "forward"),
    "BM_ScaledNetTrainStep": ("scaled_net", "train_step"),
    "BM_PaperNetSingleInference": ("paper_single_inference", "states_per_second"),
}

DEBUG_BUILD_TYPES = {"", "debug"}


def run_bench(binary: Path, min_time: float) -> dict:
    cmd = [
        str(binary),
        "--benchmark_filter=BM_",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
    return json.loads(proc.stdout)


def check_build_type(ctx: dict, allow_debug: bool) -> str:
    """Refuse debug harness OR debug benchmark-library builds."""
    harness = ctx.get("dqndock_bench_build_type", "")
    if harness.lower() in DEBUG_BUILD_TYPES or ctx.get("dqndock_bench_asserts") == "on":
        msg = (f"refusing to publish: bench harness build type is "
               f"{harness or 'unknown'!r} (asserts "
               f"{ctx.get('dqndock_bench_asserts', 'unknown')}); "
               f"rebuild with -DCMAKE_BUILD_TYPE=Release")
        if not allow_debug:
            raise SystemExit(msg)
        sys.stderr.write(f"WARNING (--allow-debug): {msg}\n")
    library = ctx.get("library_build_type", "")
    if library.lower() != "release":
        msg = (f"refusing to publish: benchmark library build type is "
               f"{library or 'unknown'!r}; rebuild the bench tree instead of "
               f"linking a debug libbenchmark")
        if not allow_debug:
            raise SystemExit(msg)
        sys.stderr.write(f"WARNING (--allow-debug): {msg}\n")
    return harness


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build", type=Path)
    ap.add_argument("--out", default="BENCH_nn.json", type=Path)
    ap.add_argument("--min-time", default=0.5, type=float,
                    help="seconds per benchmark (google-benchmark min time)")
    ap.add_argument("--allow-debug", action="store_true",
                    help="emit JSON even from a debug harness build (flagged, for smoke tests)")
    args = ap.parse_args()

    binary = args.build_dir / "bench" / "bench_nn"
    if not binary.exists():
        raise SystemExit(f"{binary} not found - build with -DDQNDOCK_BUILD_BENCH=ON first")

    raw = run_bench(binary, args.min_time)
    ctx = raw.get("context", {})
    harness_build_type = check_build_type(ctx, args.allow_debug)

    # Schema gate: rows without the dispatched GEMM tier are meaningless
    # for cross-tier comparison.
    gemm_tier = ctx.get("dqndock_gemm_kernel_tier")
    if gemm_tier not in ("generic", "avx512"):
        raise SystemExit(f"refusing to publish: bench_nn reported GEMM kernel "
                         f"tier {gemm_tier!r} (expected 'generic' or 'avx512'); "
                         f"rebuild the bench tree")

    sections: dict = {}
    for bench in raw.get("benchmarks", []):
        mapping = BENCH_MAP.get(bench.get("name", ""))
        if mapping is None:
            continue
        section, key = mapping
        sections.setdefault(section, {})[key] = bench["items_per_second"]

    missing = [f"{s}.{k}" for s, k in BENCH_MAP.values()
               if k not in sections.get(s, {})]
    if missing:
        raise SystemExit(f"incomplete benchmark output: {sorted(missing)}")

    report = {
        "benchmark": "bench_nn",
        "architecture": "paper Table 1 (16599 -> 135 -> 135 -> 12, batch 32)",
        "metric": "states_per_second",
        "date": ctx.get("date"),
        "num_cpus": ctx.get("num_cpus"),
        "cpu_scaling_enabled": ctx.get("cpu_scaling_enabled"),
        "harness_build_type": harness_build_type,
        "benchmark_library_build_type": ctx.get("library_build_type"),
        # GEMM tier the runs dispatched to at runtime (CPUID probe or the
        # DQNDOCK_FORCE_KERNEL override): "avx512" or "generic".
        "gemm_kernel_tier": gemm_tier,
        "paper_net": {
            "forward": sections["paper_forward"],
            "train_step": sections["paper_train_step"],
            "single_inference": sections["paper_single_inference"]["states_per_second"],
        },
        "scaled_net": sections["scaled_net"],
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    fwd = sections["paper_forward"]["threads_0"]
    train = sections["paper_train_step"]["threads_0"]
    print(f"  paper net (tier {gemm_tier}): forward {fwd:8.1f} states/s  "
          f"train-step {train:8.1f} states/s  (serial)")


if __name__ == "__main__":
    main()
