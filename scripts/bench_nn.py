#!/usr/bin/env python3
"""Run the Q-network benchmarks and emit BENCH_nn.json.

Covers the paper architecture (Table 1: 16,599 -> 135 -> 135 -> 12,
minibatch 32) forward and train-step throughput across thread counts,
the scaled preset, and single-state inference. Refuses to publish
numbers measured from a debug harness build unless --allow-debug is
passed, and refuses output that does not stamp the GEMM kernel tier
(generic or avx512) the runs dispatched to.

Stdlib only. Usage:

    python3 scripts/bench_nn.py [--build-dir build] [--out BENCH_nn.json]
                                [--min-time 0.5] [--allow-debug]

Expects the bench harness at <build-dir>/bench/bench_nn (built with
-DDQNDOCK_BUILD_BENCH=ON, the default; use a Release build dir).
items_per_second is states per second (batch rows x iterations / time).
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

# benchmark name -> (section, key). Thread-sweep benchmarks carry the
# google-benchmark /Arg and /real_time suffixes.
BENCH_MAP = {
    "BM_PaperNetForward/0/real_time": ("paper_forward", "threads_0"),
    "BM_PaperNetForward/2/real_time": ("paper_forward", "threads_2"),
    "BM_PaperNetForward/4/real_time": ("paper_forward", "threads_4"),
    "BM_PaperNetForward/8/real_time": ("paper_forward", "threads_8"),
    "BM_PaperNetTrainStep/0/real_time": ("paper_train_step", "threads_0"),
    "BM_PaperNetTrainStep/2/real_time": ("paper_train_step", "threads_2"),
    "BM_PaperNetTrainStep/4/real_time": ("paper_train_step", "threads_4"),
    "BM_PaperNetTrainStep/8/real_time": ("paper_train_step", "threads_8"),
    "BM_ScaledNetForward": ("scaled_net", "forward"),
    "BM_ScaledNetTrainStep": ("scaled_net", "train_step"),
    "BM_PaperNetSingleInference": ("paper_single_inference", "states_per_second"),
    "BM_PaperNetForwardFolded/0/real_time": ("fold_forward", "threads_0"),
    "BM_PaperNetForwardFolded/2/real_time": ("fold_forward", "threads_2"),
    "BM_PaperNetForwardFolded/4/real_time": ("fold_forward", "threads_4"),
    "BM_PaperNetForwardFolded/8/real_time": ("fold_forward", "threads_8"),
    "BM_PaperNetTrainStepFolded/0/real_time": ("fold_train_step", "threads_0"),
    "BM_PaperNetTrainStepFolded/2/real_time": ("fold_train_step", "threads_2"),
    "BM_PaperNetTrainStepFolded/4/real_time": ("fold_train_step", "threads_4"),
    "BM_PaperNetTrainStepFolded/8/real_time": ("fold_train_step", "threads_8"),
    "BM_PaperNetSingleInferenceFolded": ("fold_single_inference", "states_per_second"),
}

# Threaded GEMMs must never run slower than serial (the per-worker
# work floor in src/nn/gemm.cpp keeps paper-shape products serial); the
# factor absorbs measurement noise, not regressions.
THREAD_SCALING_SECTIONS = ("paper_forward", "paper_train_step", "fold_forward",
                           "fold_train_step")
THREAD_SCALING_TOLERANCE = 0.85

DEBUG_BUILD_TYPES = {"", "debug"}


def run_bench(binary: Path, min_time: float, bench_filter: str = "BM_") -> dict:
    cmd = [
        str(binary),
        f"--benchmark_filter={bench_filter}",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
    return json.loads(proc.stdout)


def check_build_type(ctx: dict, allow_debug: bool) -> str:
    """Refuse debug harness OR debug benchmark-library builds."""
    harness = ctx.get("dqndock_bench_build_type", "")
    if harness.lower() in DEBUG_BUILD_TYPES or ctx.get("dqndock_bench_asserts") == "on":
        msg = (f"refusing to publish: bench harness build type is "
               f"{harness or 'unknown'!r} (asserts "
               f"{ctx.get('dqndock_bench_asserts', 'unknown')}); "
               f"rebuild with -DCMAKE_BUILD_TYPE=Release")
        if not allow_debug:
            raise SystemExit(msg)
        sys.stderr.write(f"WARNING (--allow-debug): {msg}\n")
    library = ctx.get("library_build_type", "")
    if library.lower() != "release":
        msg = (f"refusing to publish: benchmark library build type is "
               f"{library or 'unknown'!r}; rebuild the bench tree instead of "
               f"linking a debug libbenchmark")
        if not allow_debug:
            raise SystemExit(msg)
        sys.stderr.write(f"WARNING (--allow-debug): {msg}\n")
    return harness


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build", type=Path)
    ap.add_argument("--out", default="BENCH_nn.json", type=Path)
    ap.add_argument("--min-time", default=0.5, type=float,
                    help="seconds per benchmark (google-benchmark min time)")
    ap.add_argument("--allow-debug", action="store_true",
                    help="emit JSON even from a debug harness build (flagged, for smoke tests)")
    ap.add_argument("--skip-scaling-check", action="store_true",
                    help="skip the threads>=serial gate (noisy shared machines)")
    ap.add_argument("--scaling-retries", default=2, type=int,
                    help="re-measure rows that fail the threads>=serial gate this "
                         "many times before failing; a real regression reproduces, "
                         "a throttled-host transient does not")
    args = ap.parse_args()

    binary = args.build_dir / "bench" / "bench_nn"
    if not binary.exists():
        raise SystemExit(f"{binary} not found - build with -DDQNDOCK_BUILD_BENCH=ON first")

    raw = run_bench(binary, args.min_time)
    ctx = raw.get("context", {})
    harness_build_type = check_build_type(ctx, args.allow_debug)

    # Schema gate: rows without the dispatched GEMM tier are meaningless
    # for cross-tier comparison.
    gemm_tier = ctx.get("dqndock_gemm_kernel_tier")
    if gemm_tier not in ("generic", "avx512"):
        raise SystemExit(f"refusing to publish: bench_nn reported GEMM kernel "
                         f"tier {gemm_tier!r} (expected 'generic' or 'avx512'); "
                         f"rebuild the bench tree")

    sections: dict = {}
    for bench in raw.get("benchmarks", []):
        mapping = BENCH_MAP.get(bench.get("name", ""))
        if mapping is None:
            continue
        section, key = mapping
        sections.setdefault(section, {})[key] = bench["items_per_second"]

    missing = [f"{s}.{k}" for s, k in BENCH_MAP.values()
               if k not in sections.get(s, {})]
    if missing:
        raise SystemExit(f"incomplete benchmark output: {sorted(missing)}")

    # Schema gate for the fold stamp: rows must say what the
    # DQNDOCK_FOLD_STATIC gate resolved to when they were measured.
    fold_static = ctx.get("dqndock_fold_static")
    if fold_static not in ("on", "off"):
        raise SystemExit(f"refusing to publish: bench_nn reported fold_static "
                         f"{fold_static!r} (expected 'on' or 'off'); rebuild the "
                         f"bench tree")

    # Negative-thread-scaling gate: giving a GEMM a pool must never cost
    # throughput at any thread count. Failing rows are re-measured (max
    # over runs, serial row included so an inflated baseline re-settles
    # too): a regressed partition cap fails every run, host throttling
    # does not.
    if not args.skip_scaling_check:
        name_of = {v: k for k, v in BENCH_MAP.items()}
        for attempt in range(args.scaling_retries + 1):
            failures = []
            for section in THREAD_SCALING_SECTIONS:
                rows = sections[section]
                serial = rows["threads_0"]
                for key, rate in sorted(rows.items()):
                    if key != "threads_0" and rate < THREAD_SCALING_TOLERANCE * serial:
                        failures.append((section, key, rate, serial))
            if not failures:
                break
            if attempt == args.scaling_retries:
                section, key, rate, serial = failures[0]
                raise SystemExit(
                    f"negative thread scaling in {section}: {key} ran at "
                    f"{rate:.1f} states/s vs {serial:.1f} serial "
                    f"(floor {THREAD_SCALING_TOLERANCE:.2f}x) across "
                    f"{args.scaling_retries + 1} runs; the GEMM partition "
                    f"cap regressed")
            names = {name_of[(s, k)] for s, k, _, _ in failures}
            names |= {name_of[(s, "threads_0")] for s, _, _, _ in failures}
            # the harness filters on the pre-report name (no /real_time suffix)
            bench_filter = ("^(" +
                            "|".join(sorted(n.replace("/real_time", "") for n in names)) +
                            ")$")
            sys.stderr.write(f"scaling gate: re-measuring {sorted(names)} "
                             f"(attempt {attempt + 1}/{args.scaling_retries})\n")
            for bench in run_bench(binary, args.min_time, bench_filter).get("benchmarks", []):
                mapping = BENCH_MAP.get(bench.get("name", ""))
                if mapping is None:
                    continue
                section, key = mapping
                rows = sections[section]
                rows[key] = max(rows[key], bench["items_per_second"])

    report = {
        "benchmark": "bench_nn",
        "architecture": "paper Table 1 (16599 -> 135 -> 135 -> 12, batch 32)",
        "metric": "states_per_second",
        "date": ctx.get("date"),
        "num_cpus": ctx.get("num_cpus"),
        "cpu_scaling_enabled": ctx.get("cpu_scaling_enabled"),
        "harness_build_type": harness_build_type,
        "benchmark_library_build_type": ctx.get("library_build_type"),
        # GEMM tier the runs dispatched to at runtime (CPUID probe or the
        # DQNDOCK_FORCE_KERNEL override): "avx512" or "generic".
        "gemm_kernel_tier": gemm_tier,
        # What the DQNDOCK_FOLD_STATIC gate resolved to in the bench env
        # (the folded rows below configure the fold explicitly).
        "fold_static": fold_static,
        "paper_net": {
            "forward": sections["paper_forward"],
            "train_step": sections["paper_train_step"],
            "single_inference": sections["paper_single_inference"]["states_per_second"],
        },
        "fold_static_paper_net": {
            "forward": sections["fold_forward"],
            "train_step": sections["fold_train_step"],
            "single_inference": sections["fold_single_inference"]["states_per_second"],
        },
        "scaled_net": sections["scaled_net"],
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    fwd = sections["paper_forward"]["threads_0"]
    train = sections["paper_train_step"]["threads_0"]
    print(f"  paper net (tier {gemm_tier}): forward {fwd:8.1f} states/s  "
          f"train-step {train:8.1f} states/s  (serial)")
    ffwd = sections["fold_forward"]["threads_0"]
    ftrain = sections["fold_train_step"]["threads_0"]
    fsingle = sections["fold_single_inference"]["states_per_second"]
    print(f"  folded        (tier {gemm_tier}): forward {ffwd:8.1f} states/s  "
          f"train-step {ftrain:8.1f} states/s  single {fsingle:8.1f} states/s")


if __name__ == "__main__":
    main()
