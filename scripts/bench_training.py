#!/usr/bin/env python3
"""Benchmark the vectorized training loop and emit BENCH_training.json.

Runs bench_training (paper-2BSM task): sequential one-env baseline vs
V in {1, 8, 32} lockstep envs feeding the pose-batched scoring kernel and
one tiled Q-forward per step. The binary reports collect-phase and
learning-phase transitions/second (one candidate pose is scored per
transition, so steps/s == pose-evals/s) plus a built-in sequential-vs-V=1
bit-identity check.

Gates (mirroring bench_scoring.py): refuses a debug harness build,
refuses if the V=1 schedule is not bit-identical to the sequential
baseline, and enforces the acceptance floor of a 2x collect-phase
speedup at V=32.

Stdlib only. Usage:

    python3 scripts/bench_training.py [--build-dir build] [--out BENCH_training.json]
                                      [--episodes 8] [--max-steps 50]
                                      [--learn-max-steps 10] [--replay 512]
                                      [--seed 2018] [--skip-identity] [--allow-debug]
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

DEBUG_BUILD_TYPES = {"", "debug"}
REQUIRED_SPEEDUP_V32 = 2.0
# With the static-prefix fold on (the default), the per-step Q-forward
# that V-lockstep amortizes is ~50x cheaper, so the collect phase is
# dominated by the scoring kernel and the reachable V=32 speedup drops
# (Amdahl). The fold's own acceptance is the learn-phase floor below;
# the unfolded 2x collect floor still applies when the fold is off.
REQUIRED_SPEEDUP_V32_FOLDED = 1.5
# PR-6 learn-sequential rate on the reference host (scalar ikj GEMM,
# Release, avx512 scoring tier) — the baseline the SIMD GEMM tier's
# >= 2x learn-phase acceptance is measured against.
SCALAR_GEMM_LEARN_BASELINE = 9.9
# PR-7 learn-sequential rate on the reference host (SIMD GEMM tier,
# full-width input layer) — the baseline the static-prefix fold's
# >= 2x learn-phase acceptance is measured against.
UNFOLDED_LEARN_BASELINE = 26.5
REQUIRED_FOLD_LEARN_SPEEDUP = 2.0


def run_bench(binary: Path, args) -> dict:
    cmd = [
        str(binary),
        f"--episodes={args.episodes}",
        f"--max-steps={args.max_steps}",
        f"--learn-max-steps={args.learn_max_steps}",
        f"--replay={args.replay}",
        f"--seed={args.seed}",
    ]
    if args.skip_identity:
        cmd.append("--skip-identity")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # Exit code 1 signals a failed bit-identity check; the JSON still
    # carries the flag, so parse first and fail on the flag below.
    if proc.returncode not in (0, 1):
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
    sys.stderr.write(proc.stderr)
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        raise SystemExit(f"bench_training emitted unparseable JSON: {err}")


def check_build_type(raw: dict, allow_debug: bool) -> str:
    """Refuse debug harness builds: their numbers are meaningless."""
    harness = raw.get("dqndock_bench_build_type", "")
    if harness.lower() in DEBUG_BUILD_TYPES or raw.get("dqndock_bench_asserts") == "on":
        msg = (f"refusing to publish: bench harness build type is "
               f"{harness or 'unknown'!r} (asserts "
               f"{raw.get('dqndock_bench_asserts', 'unknown')}); "
               f"rebuild with -DCMAKE_BUILD_TYPE=Release")
        if not allow_debug:
            raise SystemExit(msg)
        sys.stderr.write(f"WARNING (--allow-debug): {msg}\n")
    return harness


def rate(rows: list, label: str) -> float:
    for row in rows:
        if row["label"] == label:
            return row["steps_per_second"]
    raise SystemExit(f"bench_training JSON is missing the {label!r} row")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build", type=Path)
    ap.add_argument("--out", default="BENCH_training.json", type=Path)
    ap.add_argument("--episodes", default=8, type=int)
    ap.add_argument("--max-steps", default=50, type=int,
                    help="episode length for the collect-phase rows")
    ap.add_argument("--learn-max-steps", default=10, type=int,
                    help="episode length for the learning-phase rows")
    ap.add_argument("--replay", default=512, type=int)
    ap.add_argument("--seed", default=2018, type=int)
    ap.add_argument("--skip-identity", action="store_true",
                    help="skip the built-in sequential-vs-V=1 bit-identity run")
    ap.add_argument("--min-speedup", default=None, type=float,
                    help="acceptance floor for the V=32 collect speedup "
                         f"(default {REQUIRED_SPEEDUP_V32} unfolded, "
                         f"{REQUIRED_SPEEDUP_V32_FOLDED} with the static-prefix "
                         "fold on); CI smoke runs pass a lower bar (tiny configs "
                         "on shared runners measure schema and bit-identity, not "
                         "throughput)")
    ap.add_argument("--learn-baseline", default=SCALAR_GEMM_LEARN_BASELINE, type=float,
                    help="scalar-GEMM learn-sequential steps/s to compute the "
                         "learn-phase speedup against (PR-6 reference-host rate)")
    ap.add_argument("--min-learn-speedup", default=0.0, type=float,
                    help="acceptance floor for learn-sequential vs the scalar-GEMM "
                         "baseline; 0 records the ratio without gating (the "
                         "baseline rate is host-specific, so only the reference "
                         "host enforces the 2x floor)")
    ap.add_argument("--fold-learn-baseline", default=UNFOLDED_LEARN_BASELINE, type=float,
                    help="unfolded (PR-7) learn-sequential steps/s to compute the "
                         "static-prefix-fold speedup against (reference-host rate)")
    ap.add_argument("--min-fold-learn-speedup", default=REQUIRED_FOLD_LEARN_SPEEDUP,
                    type=float,
                    help="acceptance floor for learn-sequential vs the unfolded "
                         "baseline when the fold is on; pass 0 to record the ratio "
                         "without gating (e.g. on hosts slower than the reference)")
    ap.add_argument("--allow-debug", action="store_true",
                    help="emit JSON even from a debug harness build (flagged, for smoke tests)")
    args = ap.parse_args()

    binary = args.build_dir / "bench" / "bench_training"
    if not binary.exists():
        raise SystemExit(f"{binary} not found - build with -DDQNDOCK_BUILD_BENCH=ON first")

    raw = run_bench(binary, args)
    harness = check_build_type(raw, args.allow_debug)

    if raw.get("v1_bit_identity_checked") and not raw.get("v1_bit_identical"):
        raise SystemExit("refusing to publish: V=1 vectorized training is NOT "
                         "bit-identical to the sequential baseline")

    # Schema gate: the harness must report which GEMM tier the learn
    # phase dispatched to — a row without it cannot be compared against
    # the scalar baseline or across tiers.
    gemm_tier = raw.get("dqndock_gemm_kernel_tier")
    if gemm_tier not in ("generic", "avx512"):
        raise SystemExit(f"refusing to publish: bench_training reported GEMM "
                         f"kernel tier {gemm_tier!r} (expected 'generic' or "
                         f"'avx512'); rebuild the bench tree")

    # Schema gate: the harness must also report how the static-prefix
    # fold gate (DQNDOCK_FOLD_STATIC) resolved — a learn-phase row that
    # does not say whether the input layer was folded cannot be compared
    # against either baseline.
    fold_static = raw.get("dqndock_fold_static")
    if fold_static not in ("on", "off"):
        raise SystemExit(f"refusing to publish: bench_training reported "
                         f"fold_static {fold_static!r} (expected 'on' or 'off'); "
                         f"rebuild the bench tree")
    if args.min_speedup is None:
        args.min_speedup = (REQUIRED_SPEEDUP_V32_FOLDED if fold_static == "on"
                            else REQUIRED_SPEEDUP_V32)

    sequential = rate(raw["collect_phase"], "sequential")
    v32 = rate(raw["collect_phase"], "V=32")
    speedup_v32 = v32 / sequential
    speedup_v8 = rate(raw["collect_phase"], "V=8") / sequential
    ratio_v1 = rate(raw["collect_phase"], "V=1") / sequential
    learn_seq = rate(raw["learn_phase"], "learn-sequential")
    learn_v32 = rate(raw["learn_phase"], "learn-V=32")

    doc = {
        "benchmark": "bench_training",
        "scenario": raw.get("scenario", ""),
        "metric": "training_transitions_per_second",
        "harness_build_type": harness,
        "kernel_tier": raw.get("dqndock_kernel_tier", ""),
        "gemm_kernel_tier": gemm_tier,
        "fold_static": fold_static,
        "episodes": args.episodes,
        "max_steps": raw.get("max_steps"),
        "v1_bit_identity_checked": raw.get("v1_bit_identity_checked", False),
        "v1_bit_identical": raw.get("v1_bit_identical", False),
        "collect_phase": raw["collect_phase"],
        "learn_phase": raw["learn_phase"],
        "acceptance": {
            "required_speedup_collect_v32": args.min_speedup,
            "measured_speedup_collect_v32": round(speedup_v32, 2),
            "measured_speedup_collect_v8": round(speedup_v8, 2),
            "v1_over_sequential": round(ratio_v1, 2),
            "learn_phase_speedup_v32": round(learn_v32 / learn_seq, 2),
            "scalar_gemm_learn_baseline_steps_per_sec": args.learn_baseline,
            "learn_phase_speedup_vs_scalar_baseline":
                round(learn_seq / args.learn_baseline, 2),
            "unfolded_learn_baseline_steps_per_sec": args.fold_learn_baseline,
            "learn_phase_speedup_vs_unfolded_baseline":
                round(learn_seq / args.fold_learn_baseline, 2),
        },
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(f"  collect: sequential {sequential:.0f} steps/s | "
          f"V=8 {speedup_v8:.2f}x | V=32 {speedup_v32:.2f}x")
    print(f"  learn:   sequential {learn_seq:.1f} steps/s "
          f"({learn_seq / args.learn_baseline:.2f}x scalar-GEMM baseline, "
          f"{learn_seq / args.fold_learn_baseline:.2f}x unfolded baseline, "
          f"tier {gemm_tier}, fold {fold_static}) | "
          f"V=32 {learn_v32 / learn_seq:.2f}x")
    if speedup_v32 < args.min_speedup:
        raise SystemExit(f"acceptance FAILED: V=32 collect speedup {speedup_v32:.2f}x "
                         f"< required {args.min_speedup}x")
    if args.min_learn_speedup > 0 and learn_seq / args.learn_baseline < args.min_learn_speedup:
        raise SystemExit(f"acceptance FAILED: learn-phase speedup "
                         f"{learn_seq / args.learn_baseline:.2f}x vs scalar-GEMM "
                         f"baseline < required {args.min_learn_speedup}x")
    # Fold acceptance floor: only meaningful when the fold actually ran
    # (an off run measures the escape hatch, not the optimisation).
    if (fold_static == "on" and args.min_fold_learn_speedup > 0
            and learn_seq / args.fold_learn_baseline < args.min_fold_learn_speedup):
        raise SystemExit(f"acceptance FAILED: folded learn-phase speedup "
                         f"{learn_seq / args.fold_learn_baseline:.2f}x vs unfolded "
                         f"baseline < required {args.min_fold_learn_speedup}x")
    print(f"  acceptance OK: {speedup_v32:.2f}x >= {args.min_speedup}x"
          + ("" if raw.get("v1_bit_identity_checked") else "  (identity check skipped)"))


if __name__ == "__main__":
    main()
