#!/usr/bin/env python3
"""Run the Eq. 1 scoring benchmark A/B (packed SoA kernel vs scalar
fallback) and emit BENCH_scoring.json with pairs/second per path.

Stdlib only. Usage:

    python3 scripts/bench_scoring.py [--build-dir build] [--out BENCH_scoring.json]
                                     [--min-time 0.5]

Expects the bench harness at <build-dir>/bench/bench_scoring (built with
-DDQNDOCK_BUILD_BENCH=ON, the default). The three measured paths map to
the benchmark pairs:

    brute_force_no_cutoff : BM_ScoreBruteForceNoCutoff[Scalar]
    cutoff_no_grid        : BM_ScoreCutoffNoGrid[Scalar]
    cutoff_with_grid      : BM_ScoreCutoffWithGrid[Scalar]

items_per_second is receptor_atoms * ligand_atoms * iterations / time,
i.e. scored pairs per second on the paper-2BSM surrogate.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

# benchmark name -> (path key, kernel key)
BENCH_MAP = {
    "BM_ScoreBruteForceNoCutoff": ("brute_force_no_cutoff", "packed"),
    "BM_ScoreBruteForceNoCutoffScalar": ("brute_force_no_cutoff", "scalar"),
    "BM_ScoreCutoffNoGrid": ("cutoff_no_grid", "packed"),
    "BM_ScoreCutoffNoGridScalar": ("cutoff_no_grid", "scalar"),
    "BM_ScoreCutoffWithGrid": ("cutoff_with_grid", "packed"),
    "BM_ScoreCutoffWithGridScalar": ("cutoff_with_grid", "scalar"),
}


def run_bench(binary: Path, min_time: float) -> dict:
    cmd = [
        str(binary),
        "--benchmark_filter=BM_Score",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
    return json.loads(proc.stdout)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build", type=Path)
    ap.add_argument("--out", default="BENCH_scoring.json", type=Path)
    ap.add_argument("--min-time", default=0.5, type=float,
                    help="seconds per benchmark (google-benchmark min time)")
    args = ap.parse_args()

    binary = args.build_dir / "bench" / "bench_scoring"
    if not binary.exists():
        raise SystemExit(f"{binary} not found - build with -DDQNDOCK_BUILD_BENCH=ON first")

    raw = run_bench(binary, args.min_time)

    paths: dict = {}
    for bench in raw.get("benchmarks", []):
        mapping = BENCH_MAP.get(bench.get("name", "").split("/")[0])
        if mapping is None:
            continue
        path_key, kernel = mapping
        paths.setdefault(path_key, {})[kernel] = bench["items_per_second"]

    missing = [k for k in {p for p, _ in BENCH_MAP.values()}
               if len(paths.get(k, {})) != 2]
    if missing:
        raise SystemExit(f"incomplete benchmark output for paths: {sorted(missing)}")

    for stats in paths.values():
        stats["packed_over_scalar"] = stats["packed"] / stats["scalar"]

    ctx = raw.get("context", {})
    report = {
        "benchmark": "bench_scoring",
        "scenario": "paper-2BSM surrogate (3264 receptor atoms x 45-atom ligand)",
        "metric": "pairs_per_second",
        "date": ctx.get("date"),
        "num_cpus": ctx.get("num_cpus"),
        "cpu_scaling_enabled": ctx.get("cpu_scaling_enabled"),
        "benchmark_library_build_type": ctx.get("library_build_type"),
        "paths": paths,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for path_key in sorted(paths):
        s = paths[path_key]
        print(f"  {path_key:22s} packed {s['packed'] / 1e6:8.1f} M pairs/s  "
              f"scalar {s['scalar'] / 1e6:8.1f} M pairs/s  "
              f"({s['packed_over_scalar']:.2f}x)")


if __name__ == "__main__":
    main()
