#!/usr/bin/env python3
"""Run the Eq. 1 scoring benchmarks and emit BENCH_scoring.json.

Covers the packed-vs-scalar A/B per execution path plus the pose-batched
kernel (pairs/second at several batch sizes). Refuses to publish numbers
measured from a debug harness build unless --allow-debug is passed.

Stdlib only. Usage:

    python3 scripts/bench_scoring.py [--build-dir build] [--out BENCH_scoring.json]
                                     [--min-time 0.5] [--allow-debug]

Expects the bench harness at <build-dir>/bench/bench_scoring (built with
-DDQNDOCK_BUILD_BENCH=ON, the default; use a Release build dir). The
measured paths map to the benchmark pairs:

    brute_force_no_cutoff : BM_ScoreBruteForceNoCutoff[Scalar]
    cutoff_no_grid        : BM_ScoreCutoffNoGrid[Scalar]
    cutoff_with_grid      : BM_ScoreCutoffWithGrid[Scalar]
    pose_batched          : BM_ScorePoseBatched/{1,8,32}, BM_ScorePoseBatchedSpread/32

items_per_second is poses * receptor_atoms * ligand_atoms * iterations /
time, i.e. scored (pose, pair) combinations per second on the paper-2BSM
surrogate — so pair pruning the batched kernel earns counts toward its
throughput.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

# benchmark name -> (path key, kernel key)
BENCH_MAP = {
    "BM_ScoreBruteForceNoCutoff": ("brute_force_no_cutoff", "packed"),
    "BM_ScoreBruteForceNoCutoffScalar": ("brute_force_no_cutoff", "scalar"),
    "BM_ScoreCutoffNoGrid": ("cutoff_no_grid", "packed"),
    "BM_ScoreCutoffNoGridScalar": ("cutoff_no_grid", "scalar"),
    "BM_ScoreCutoffWithGrid": ("cutoff_with_grid", "packed"),
    "BM_ScoreCutoffWithGridScalar": ("cutoff_with_grid", "scalar"),
}

# pose-batched benchmark name (with google-benchmark /Arg suffix) -> key
BATCHED_MAP = {
    "BM_ScorePoseBatched/1": "batch_1",
    "BM_ScorePoseBatched/8": "batch_8",
    "BM_ScorePoseBatched/32": "batch_32",
    "BM_ScorePoseBatchedSpread/32": "spread_batch_32",
}

DEBUG_BUILD_TYPES = {"", "debug"}


def run_bench(binary: Path, min_time: float) -> dict:
    cmd = [
        str(binary),
        "--benchmark_filter=BM_Score",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
    return json.loads(proc.stdout)


def check_build_type(ctx: dict, allow_debug: bool) -> str:
    """Refuse debug harness OR debug benchmark-library builds.

    The harness build type covers the code under test; the benchmark
    library build type covers the timing loop itself. Either one being a
    debug build (or unknown) makes the published numbers untrustworthy,
    so both gates hard-fail unless --allow-debug.
    """
    harness = ctx.get("dqndock_bench_build_type", "")
    if harness.lower() in DEBUG_BUILD_TYPES or ctx.get("dqndock_bench_asserts") == "on":
        msg = (f"refusing to publish: bench harness build type is "
               f"{harness or 'unknown'!r} (asserts "
               f"{ctx.get('dqndock_bench_asserts', 'unknown')}); "
               f"rebuild with -DCMAKE_BUILD_TYPE=Release")
        if not allow_debug:
            raise SystemExit(msg)
        sys.stderr.write(f"WARNING (--allow-debug): {msg}\n")
    library = ctx.get("library_build_type", "")
    if library.lower() != "release":
        msg = (f"refusing to publish: benchmark library build type is "
               f"{library or 'unknown'!r}; the in-tree benchkit library is "
               f"forced -O3/NDEBUG (bench/CMakeLists.txt) - rebuild the "
               f"bench tree instead of linking a debug libbenchmark")
        if not allow_debug:
            raise SystemExit(msg)
        sys.stderr.write(f"WARNING (--allow-debug): {msg}\n")
    return harness


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build", type=Path)
    ap.add_argument("--out", default="BENCH_scoring.json", type=Path)
    ap.add_argument("--min-time", default=0.5, type=float,
                    help="seconds per benchmark (google-benchmark min time)")
    ap.add_argument("--allow-debug", action="store_true",
                    help="emit JSON even from a debug harness build (flagged, for smoke tests)")
    args = ap.parse_args()

    binary = args.build_dir / "bench" / "bench_scoring"
    if not binary.exists():
        raise SystemExit(f"{binary} not found - build with -DDQNDOCK_BUILD_BENCH=ON first")

    raw = run_bench(binary, args.min_time)
    ctx = raw.get("context", {})
    harness_build_type = check_build_type(ctx, args.allow_debug)

    paths: dict = {}
    batched: dict = {}
    for bench in raw.get("benchmarks", []):
        name = bench.get("name", "")
        if name in BATCHED_MAP:
            batched[BATCHED_MAP[name]] = bench["items_per_second"]
            continue
        mapping = BENCH_MAP.get(name.split("/")[0])
        if mapping is None:
            continue
        path_key, kernel = mapping
        paths.setdefault(path_key, {})[kernel] = bench["items_per_second"]

    missing = [k for k in {p for p, _ in BENCH_MAP.values()}
               if len(paths.get(k, {})) != 2]
    missing += [k for k in BATCHED_MAP.values() if k not in batched]
    if missing:
        raise SystemExit(f"incomplete benchmark output: {sorted(missing)}")

    for stats in paths.values():
        stats["packed_over_scalar"] = stats["packed"] / stats["scalar"]
    per_pose = paths["cutoff_with_grid"]["packed"]
    batched["batched_over_per_pose_b32"] = batched["batch_32"] / per_pose

    report = {
        "benchmark": "bench_scoring",
        "scenario": "paper-2BSM surrogate (3264 receptor atoms x 45-atom ligand)",
        "metric": "pairs_per_second",
        "date": ctx.get("date"),
        "num_cpus": ctx.get("num_cpus"),
        "cpu_scaling_enabled": ctx.get("cpu_scaling_enabled"),
        "harness_build_type": harness_build_type,
        "benchmark_library_build_type": ctx.get("library_build_type"),
        # Eq. 1 sweep tier the harness dispatched to at runtime (CPUID
        # probe or DQNDOCK_FORCE_KERNEL): "avx512" or "generic".
        "kernel_tier": ctx.get("dqndock_kernel_tier"),
        "paths": paths,
        "pose_batched": batched,
        "acceptance": {
            "required_speedup_pose_batched_b32": 2.0,
            "measured_speedup_pose_batched_b32":
                round(batched["batched_over_per_pose_b32"], 2),
        },
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for path_key in sorted(paths):
        s = paths[path_key]
        print(f"  {path_key:22s} packed {s['packed'] / 1e6:8.1f} M pairs/s  "
              f"scalar {s['scalar'] / 1e6:8.1f} M pairs/s  "
              f"({s['packed_over_scalar']:.2f}x)")
    print(f"  {'pose_batched B=32':22s} batched {batched['batch_32'] / 1e6:7.1f} M pairs/s  "
          f"({batched['batched_over_per_pose_b32']:.2f}x per-pose grid)")


if __name__ == "__main__":
    main()
