// Integration tests for the DQN-Docking facade: full (scaled) training
// runs through the real METADOCK environment.

#include <gtest/gtest.h>

#include "src/core/dqn_docking.hpp"

namespace dqndock::core {
namespace {

DqnDockingConfig fastConfig() {
  DqnDockingConfig cfg = DqnDockingConfig::scaled();
  cfg.trainer.episodes = 8;
  cfg.env.maxSteps = 40;
  cfg.trainer.learningStart = 60;
  cfg.agent.hiddenSizes = {24, 24};
  return cfg;
}

TEST(ConfigTest, Paper2bsmMatchesTable1) {
  const DqnDockingConfig cfg = DqnDockingConfig::paper2bsm();
  EXPECT_EQ(cfg.trainer.episodes, 1800u);
  EXPECT_EQ(cfg.env.maxSteps, 1000);
  EXPECT_DOUBLE_EQ(cfg.env.shiftStep, 1.0);
  EXPECT_DOUBLE_EQ(cfg.env.rotateStepDeg, 0.5);
  EXPECT_DOUBLE_EQ(cfg.trainer.epsilon.start(), 1.0);
  EXPECT_DOUBLE_EQ(cfg.trainer.epsilon.end(), 0.05);
  EXPECT_EQ(cfg.trainer.epsilon.pureExplorationSteps(), 20000u);
  EXPECT_EQ(cfg.trainer.learningStart, 10000u);
  EXPECT_EQ(cfg.replayCapacity, 400000u);
  EXPECT_EQ(cfg.agent.targetSyncInterval, 1000u);
  EXPECT_DOUBLE_EQ(cfg.agent.gamma, 0.99);
  EXPECT_DOUBLE_EQ(cfg.agent.learningRate, 0.00025);
  EXPECT_EQ(cfg.agent.batchSize, 32u);
  EXPECT_EQ(cfg.agent.optimizer, "rmsprop");
  ASSERT_EQ(cfg.agent.hiddenSizes.size(), 2u);
  EXPECT_EQ(cfg.agent.hiddenSizes[0], 135u);
  EXPECT_DOUBLE_EQ(cfg.env.scoreFloor, -100000.0);
  EXPECT_EQ(cfg.env.floorPatience, 20);
}

TEST(DqnDockingTest, BuildsWithScaledConfig) {
  DqnDocking system(fastConfig());
  EXPECT_EQ(system.actionCount(), 12);
  EXPECT_EQ(system.stateDim(), 3 * system.scenario().ligand.atomCount());
  EXPECT_GT(system.replayMemoryBytes(), 0u);
}

TEST(DqnDockingTest, TrainingProducesMetrics) {
  DqnDocking system(fastConfig());
  const rl::MetricsLog& log = system.train();
  ASSERT_EQ(log.size(), 8u);
  for (const auto& r : log.records()) {
    EXPECT_GT(r.steps, 0u);
    EXPECT_LE(r.steps, 40u);
  }
}

TEST(DqnDockingTest, IncrementalEpisodesAppend) {
  DqnDocking system(fastConfig());
  system.trainEpisode();
  system.trainEpisode();
  EXPECT_EQ(system.metrics().size(), 2u);
}

TEST(DqnDockingTest, GreedyEvaluationRunsWithoutLearning) {
  DqnDocking system(fastConfig());
  system.trainEpisode();
  const std::size_t stepsBefore = system.trainer().globalStep();
  const rl::EpisodeRecord eval = system.evaluateGreedy();
  EXPECT_GT(eval.steps, 0u);
  EXPECT_DOUBLE_EQ(eval.epsilon, 0.0);
  EXPECT_EQ(system.trainer().globalStep(), stepsBefore);  // no training steps
  EXPECT_EQ(system.metrics().size(), 1u);                 // not recorded
}

TEST(DqnDockingTest, DeterministicAcrossRuns) {
  DqnDockingConfig cfg = fastConfig();
  cfg.trainer.episodes = 3;
  DqnDocking a(cfg);
  DqnDocking b(cfg);
  const auto& logA = a.train();
  const auto& logB = b.train();
  ASSERT_EQ(logA.size(), logB.size());
  for (std::size_t i = 0; i < logA.size(); ++i) {
    EXPECT_EQ(logA.records()[i].steps, logB.records()[i].steps);
    EXPECT_DOUBLE_EQ(logA.records()[i].totalReward, logB.records()[i].totalReward);
    EXPECT_DOUBLE_EQ(logA.records()[i].avgMaxQ, logB.records()[i].avgMaxQ);
  }
}

TEST(DqnDockingTest, RawAndCompactReplayBothTrain) {
  for (bool compact : {false, true}) {
    DqnDockingConfig cfg = fastConfig();
    cfg.compactReplay = compact;
    cfg.trainer.episodes = 3;
    DqnDocking system(cfg);
    EXPECT_NO_THROW(system.train()) << "compact=" << compact;
    EXPECT_EQ(system.metrics().size(), 3u);
  }
}

TEST(DqnDockingTest, CompactReplayUsesLessMemoryAtScale) {
  DqnDockingConfig raw = fastConfig();
  raw.compactReplay = false;
  raw.replayCapacity = 5000;
  DqnDockingConfig compact = raw;
  compact.compactReplay = true;
  DqnDocking a(raw);
  DqnDocking b(compact);
  EXPECT_GT(a.replayMemoryBytes(), b.replayMemoryBytes());
}

TEST(DqnDockingTest, FlexibleLigandActionSpace) {
  DqnDockingConfig cfg = fastConfig();
  cfg.env.flexibleLigand = true;
  DqnDocking system(cfg);
  int rotatable = 0;
  for (const auto& bond : system.scenario().ligand.bonds()) rotatable += bond.rotatable;
  EXPECT_EQ(system.actionCount(), 12 + rotatable);
  cfg.trainer.episodes = 2;
  EXPECT_NO_THROW(system.trainEpisode());
}

TEST(DqnDockingTest, PrioritizedReplayTrains) {
  DqnDockingConfig cfg = fastConfig();
  cfg.compactReplay = false;
  cfg.prioritizedReplay = true;
  cfg.trainer.episodes = 3;
  DqnDocking system(cfg);
  EXPECT_NO_THROW(system.train());
  EXPECT_EQ(system.metrics().size(), 3u);
}

TEST(DqnDockingTest, NStepReturnsTrain) {
  DqnDockingConfig cfg = fastConfig();
  cfg.compactReplay = false;
  cfg.nStep = 3;
  cfg.trainer.episodes = 3;
  DqnDocking system(cfg);
  EXPECT_NO_THROW(system.train());
  EXPECT_EQ(system.agent().config().nStep, 3);
}

TEST(DqnDockingTest, InvalidReplayCombinationsRejected) {
  DqnDockingConfig both = fastConfig();
  both.compactReplay = true;
  both.prioritizedReplay = true;
  EXPECT_THROW(DqnDocking{both}, std::invalid_argument);

  DqnDockingConfig badN = fastConfig();
  badN.nStep = 0;
  EXPECT_THROW(DqnDocking{badN}, std::invalid_argument);

  DqnDockingConfig compactN = fastConfig();
  compactN.compactReplay = true;
  compactN.nStep = 2;
  EXPECT_THROW(DqnDocking{compactN}, std::invalid_argument);
}

TEST(DqnDockingTest, CallerProvidedScenario) {
  DqnDockingConfig cfg = fastConfig();
  chem::Scenario scenario = chem::buildScenario(chem::ScenarioSpec::tiny());
  DqnDocking system(cfg, std::move(scenario));
  EXPECT_EQ(system.actionCount(), 12);
  EXPECT_NO_THROW(system.trainEpisode());
}

TEST(DqnDockingTest, VariantsTrainOnDockingTask) {
  for (auto variant : {rl::DqnVariant::kVanilla, rl::DqnVariant::kDouble}) {
    DqnDockingConfig cfg = fastConfig();
    cfg.agent.variant = variant;
    cfg.trainer.episodes = 2;
    DqnDocking system(cfg);
    EXPECT_NO_THROW(system.train()) << rl::dqnVariantName(variant);
  }
  DqnDockingConfig cfg = fastConfig();
  cfg.agent.dueling = true;
  cfg.trainer.episodes = 2;
  DqnDocking system(cfg);
  EXPECT_NO_THROW(system.train());
}

}  // namespace
}  // namespace dqndock::core
