// Corridor MDP mechanics plus the end-to-end learning test: a DQN agent
// trained through the Trainer must learn to walk right.

#include <gtest/gtest.h>

#include "src/rl/corridor_env.hpp"
#include "src/rl/trainer.hpp"

namespace dqndock::rl {
namespace {

TEST(CorridorEnvTest, Validation) {
  EXPECT_THROW(CorridorEnv(1), std::invalid_argument);
  CorridorEnv env(5);
  EXPECT_EQ(env.stateDim(), 5u);
  EXPECT_EQ(env.actionCount(), 2);
}

TEST(CorridorEnvTest, ResetEncodesStart) {
  CorridorEnv env(4);
  std::vector<double> s;
  env.reset(s);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1] + s[2] + s[3], 0.0);
}

TEST(CorridorEnvTest, WalkRightReachesGoal) {
  CorridorEnv env(4);
  std::vector<double> s;
  env.reset(s);
  EnvStep r = env.step(1, s);
  EXPECT_FALSE(r.terminal);
  EXPECT_DOUBLE_EQ(r.reward, -0.01);
  r = env.step(1, s);
  EXPECT_FALSE(r.terminal);
  r = env.step(1, s);
  EXPECT_TRUE(r.terminal);
  EXPECT_DOUBLE_EQ(r.reward, 1.0);
}

TEST(CorridorEnvTest, SteppingOffLeftEdgeFails) {
  CorridorEnv env(4);
  std::vector<double> s;
  env.reset(s);
  const EnvStep r = env.step(0, s);
  EXPECT_TRUE(r.terminal);
  EXPECT_DOUBLE_EQ(r.reward, -1.0);
}

TEST(CorridorEnvTest, TimeLimitTerminates) {
  CorridorEnv env(8, 6);
  std::vector<double> s;
  env.reset(s);
  EnvStep r;
  // Oscillate without reaching either end.
  for (int i = 0; i < 6; ++i) r = env.step(i % 2 ? 0 : 1, s);
  EXPECT_TRUE(r.terminal);
}

TEST(CorridorEnvTest, BadActionThrows) {
  CorridorEnv env(4);
  std::vector<double> s;
  env.reset(s);
  EXPECT_THROW(env.step(2, s), std::out_of_range);
}

TEST(CorridorIntegrationTest, DqnLearnsToWalkRight) {
  CorridorEnv env(6, 40);
  Rng rng(123);
  DqnConfig agentCfg;
  agentCfg.hiddenSizes = {24, 24};
  agentCfg.batchSize = 16;
  agentCfg.targetSyncInterval = 50;
  agentCfg.optimizer = "adam";
  agentCfg.learningRate = 0.003;
  agentCfg.gamma = 0.95;
  DqnAgent agent(env.stateDim(), env.actionCount(), agentCfg, rng);

  ReplayBuffer replay(5000, env.stateDim());
  TrainerConfig trainCfg;
  trainCfg.episodes = 220;
  trainCfg.learningStart = 200;
  trainCfg.epsilon = EpsilonSchedule(1.0, 0.05, 2e-3, 200);
  trainCfg.seed = 7;
  Trainer trainer(env, agent, replay, replay, trainCfg);
  trainer.run();

  // The greedy policy must reach the right end (total reward close to
  // 1 - 0.01 * steps) on repeated evaluations.
  int successes = 0;
  for (int i = 0; i < 5; ++i) {
    const EpisodeRecord eval = trainer.evaluateGreedy();
    if (eval.totalReward > 0.5) ++successes;
  }
  EXPECT_GE(successes, 4);
}

TEST(CorridorIntegrationTest, MetricsPopulatedDuringTraining) {
  CorridorEnv env(5, 20);
  Rng rng(9);
  DqnConfig agentCfg;
  agentCfg.hiddenSizes = {8};
  agentCfg.batchSize = 4;
  DqnAgent agent(env.stateDim(), env.actionCount(), agentCfg, rng);
  ReplayBuffer replay(500, env.stateDim());
  TrainerConfig trainCfg;
  trainCfg.episodes = 10;
  trainCfg.learningStart = 20;
  trainCfg.seed = 5;
  Trainer trainer(env, agent, replay, replay, trainCfg);
  int callbacks = 0;
  trainer.setEpisodeCallback([&callbacks](const EpisodeRecord&) { ++callbacks; });
  const MetricsLog& log = trainer.run();
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(callbacks, 10);
  EXPECT_GT(trainer.globalStep(), 0u);
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log.records()[i].episode, i);
    EXPECT_GT(log.records()[i].steps, 0u);
  }
}

}  // namespace
}  // namespace dqndock::rl
