// Gateway JSON tests: encode/parse round-trips (including %.17g double
// fidelity, the property that lets dock scores cross the HTTP surface
// bit-identically), strict-parser rejection of malformed text, escape
// handling, and the nesting-depth cap.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "src/gateway/json.hpp"

namespace dqndock::gateway {
namespace {

TEST(GatewayJsonTest, EncodesScalars) {
  EXPECT_EQ(jsonEncode(JsonValue::null()), "null");
  EXPECT_EQ(jsonEncode(JsonValue::boolean(true)), "true");
  EXPECT_EQ(jsonEncode(JsonValue::boolean(false)), "false");
  EXPECT_EQ(jsonEncode(JsonValue::number(42.0)), "42");
  EXPECT_EQ(jsonEncode(JsonValue::string("hi")), "\"hi\"");
}

TEST(GatewayJsonTest, ObjectKeepsInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zebra", 1.0).set("alpha", 2.0).set("mid", "x");
  EXPECT_EQ(jsonEncode(obj), "{\"zebra\":1,\"alpha\":2,\"mid\":\"x\"}");
  obj.set("zebra", 9.0);  // overwrite keeps the slot, not re-appended
  EXPECT_EQ(jsonEncode(obj), "{\"zebra\":9,\"alpha\":2,\"mid\":\"x\"}");
}

TEST(GatewayJsonTest, StringEscapingRoundTrips) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01 done";
  const std::string encoded = jsonEncode(JsonValue::string(nasty));
  EXPECT_EQ(jsonParse(encoded).asString(), nasty);
}

TEST(GatewayJsonTest, DoublesRoundTripBitIdentically) {
  // The acceptance criterion hinges on this: a score that went through
  // jsonEncode + jsonParse must compare equal to the double the docking
  // service produced.
  const double awkward[] = {0.1 + 0.2, -137.03599908, 1.0 / 3.0,
                            std::numeric_limits<double>::denorm_min(),
                            -0.0, 1e308, 6.02214076e23};
  for (const double value : awkward) {
    JsonValue obj = JsonValue::object();
    obj.set("score", value);
    const JsonValue back = jsonParse(jsonEncode(obj));
    const double reparsed = back.find("score")->asNumber();
    EXPECT_EQ(std::memcmp(&reparsed, &value, sizeof value), 0)
        << "value " << value << " did not survive the round trip";
  }
}

TEST(GatewayJsonTest, NonFiniteNumbersRefuseToEncode) {
  EXPECT_THROW(jsonEncode(JsonValue::number(std::nan(""))), JsonError);
  EXPECT_THROW(jsonEncode(JsonValue::number(std::numeric_limits<double>::infinity())),
               JsonError);
}

TEST(GatewayJsonTest, ParsesNestedDocument) {
  const JsonValue doc = jsonParse(
      R"({"models":[{"name":"alpha","v":1.5},{"name":"beta","v":-2e3}],"ok":true,"n":null})");
  ASSERT_TRUE(doc.isObject());
  const JsonValue* models = doc.find("models");
  ASSERT_NE(models, nullptr);
  ASSERT_TRUE(models->isArray());
  ASSERT_EQ(models->items().size(), 2u);
  EXPECT_EQ(models->items()[0].find("name")->asString(), "alpha");
  EXPECT_EQ(models->items()[1].find("v")->asNumber(), -2000.0);
  EXPECT_TRUE(doc.find("ok")->asBool());
  EXPECT_TRUE(doc.find("n")->isNull());
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(GatewayJsonTest, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(jsonParse(R"("A\u00e9")").asString(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 (grinning face) -> 4-byte UTF-8.
  EXPECT_EQ(jsonParse(R"("\ud83d\ude00")").asString(), "\xf0\x9f\x98\x80");
  // A lone high surrogate is malformed.
  EXPECT_THROW(jsonParse(R"("\ud83d oops")"), JsonError);
}

TEST(GatewayJsonTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",                    // empty input
      "{",                   // unterminated object
      "[1,2",                // unterminated array
      "{\"a\":}",            // missing value
      "{\"a\" 1}",           // missing colon
      "{'a':1}",             // single quotes
      "[1,]",                // trailing comma
      "{\"a\":1,}",          // trailing comma in object
      "01",                  // leading zero
      "+1",                  // explicit plus
      "1.",                  // dangling fraction dot
      ".5",                  // missing integer part
      "1e",                  // dangling exponent
      "nul",                 // truncated keyword
      "\"unterminated",      // unterminated string
      "\"bad\\qescape\"",    // unknown escape
      "\"ctrl\x01char\"",    // raw control char in string
      "{\"a\":1}trailing",   // trailing garbage
      "[1] [2]",             // two documents
  };
  for (const char* text : bad) {
    EXPECT_THROW(jsonParse(text), JsonError) << "accepted: " << text;
  }
}

TEST(GatewayJsonTest, DepthCapStopsHostileNesting) {
  // kMaxJsonDepth nested arrays parse; one more throws instead of
  // exhausting the stack.
  std::string atLimit(kMaxJsonDepth, '[');
  atLimit += std::string(kMaxJsonDepth, ']');
  EXPECT_NO_THROW(jsonParse(atLimit));
  const std::string tooDeep = "[" + atLimit + "]";
  EXPECT_THROW(jsonParse(tooDeep), JsonError);
  // Ditto for the degenerate unterminated flood.
  EXPECT_THROW(jsonParse(std::string(10000, '[')), JsonError);
}

TEST(GatewayJsonTest, TypedAccessorsThrowOnMismatch) {
  const JsonValue doc = jsonParse(R"({"s":"text","n":3})");
  EXPECT_THROW(doc.find("s")->asNumber(), JsonError);
  EXPECT_THROW(doc.find("n")->asString(), JsonError);
  EXPECT_THROW(doc.find("n")->asBool(), JsonError);
  EXPECT_THROW(doc.items(), JsonError);             // object, not array
  EXPECT_THROW(JsonValue::null().members(), JsonError);
}

TEST(GatewayJsonTest, NumberOrDistinguishesAbsentFromMistyped) {
  const JsonValue doc = jsonParse(R"({"max_steps":25,"priority":"high"})");
  EXPECT_EQ(doc.numberOr("max_steps", 7.0), 25.0);
  EXPECT_EQ(doc.numberOr("absent", 7.0), 7.0);            // absent -> fallback
  EXPECT_THROW(doc.numberOr("priority", 7.0), JsonError);  // mistyped -> 400 path
  EXPECT_EQ(doc.stringOr("priority", "normal"), "high");
  EXPECT_EQ(doc.stringOr("absent", "normal"), "normal");
  EXPECT_THROW(doc.stringOr("max_steps", "x"), JsonError);
}

TEST(GatewayJsonTest, WhitespaceToleratedBetweenTokens) {
  const JsonValue doc = jsonParse(" \t\r\n{ \"a\" :\n[ 1 ,\t2 ] }\r\n ");
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.find("a")->items().size(), 2u);
}

}  // namespace
}  // namespace dqndock::gateway
