// Tests for the RL extensions: Boltzmann exploration, Polyak target
// updates, the observation-noise decorator and policy evaluation.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/evaluation.hpp"
#include "src/rl/corridor_env.hpp"
#include "src/rl/noisy_env.hpp"

namespace dqndock {
namespace {

using rl::CorridorEnv;
using rl::DqnAgent;
using rl::DqnConfig;
using rl::EnvStep;
using rl::NoisyObservationEnv;

DqnConfig tinyAgent() {
  DqnConfig cfg;
  cfg.hiddenSizes = {12};
  cfg.batchSize = 4;
  return cfg;
}

TEST(SoftmaxExplorationTest, ZeroTemperatureIsGreedy) {
  Rng rng(1);
  DqnAgent agent(3, 4, tinyAgent(), rng);
  const std::vector<double> s{1.0, -1.0, 0.5};
  const int greedy = agent.greedyAction(s);
  Rng actRng(2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(agent.selectActionSoftmax(s, 0.0, actRng), greedy);
  }
}

TEST(SoftmaxExplorationTest, HighTemperatureApproachesUniform) {
  Rng rng(3);
  DqnAgent agent(3, 4, tinyAgent(), rng);
  const std::vector<double> s{1.0, -1.0, 0.5};
  Rng actRng(4);
  std::vector<int> hits(4, 0);
  const int n = 8000;
  for (int i = 0; i < n; ++i) ++hits[static_cast<std::size_t>(agent.selectActionSoftmax(s, 1e6, actRng))];
  for (int a = 0; a < 4; ++a) {
    EXPECT_NEAR(hits[static_cast<std::size_t>(a)] / static_cast<double>(n), 0.25, 0.03);
  }
}

TEST(SoftmaxExplorationTest, ModerateTemperatureFavoursHighQ) {
  Rng rng(5);
  DqnAgent agent(3, 4, tinyAgent(), rng);
  const std::vector<double> s{1.0, -1.0, 0.5};
  const int greedy = agent.greedyAction(s);
  Rng actRng(6);
  int greedyHits = 0;
  const int n = 4000;
  // Use a temperature comparable to the Q spread so ordering matters.
  const auto q = agent.qValues(s);
  const double spread = *std::max_element(q.begin(), q.end()) -
                        *std::min_element(q.begin(), q.end());
  for (int i = 0; i < n; ++i) {
    if (agent.selectActionSoftmax(s, std::max(1e-6, spread / 4), actRng) == greedy) ++greedyHits;
  }
  EXPECT_GT(greedyHits, n / 4);  // strictly above uniform share
}

TEST(PolyakTest, SoftUpdatesTrackOnline) {
  Rng rng(7);
  DqnConfig cfg = tinyAgent();
  cfg.polyakTau = 0.5;
  cfg.batchSize = 2;
  cfg.optimizer = "sgd";
  cfg.learningRate = 0.05;
  DqnAgent agent(2, 2, cfg, rng);
  rl::ReplayBuffer rb(16, 2);
  const std::vector<double> s{1.0, 0.0};
  for (int i = 0; i < 8; ++i) rb.push(s, 0, 1.0, s, true);

  nn::Tensor x(1, 2);
  x(0, 0) = 1.0;
  nn::Tensor qOnline, qTarget;
  for (int i = 0; i < 30; ++i) agent.learn(rb, rng);
  agent.online().predict(x, qOnline);
  agent.target().predict(x, qTarget);
  // With tau = 0.5 per step the target lags but stays near the online
  // network; with hard C-sync disabled they would only match at syncs.
  for (std::size_t i = 0; i < qOnline.size(); ++i) {
    EXPECT_NEAR(qTarget.flat()[i], qOnline.flat()[i], 0.2);
  }
}

TEST(NoisyEnvTest, ZeroStddevIsTransparent) {
  CorridorEnv inner(5);
  NoisyObservationEnv noisy(inner, 0.0);
  std::vector<double> a, b;
  noisy.reset(a);
  CorridorEnv reference(5);
  reference.reset(b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(noisy.stateDim(), inner.stateDim());
  EXPECT_EQ(noisy.actionCount(), inner.actionCount());
}

TEST(NoisyEnvTest, NoisePerturbsObservationsNotDynamics) {
  CorridorEnv inner(5);
  NoisyObservationEnv noisy(inner, 0.1, /*seed=*/9);
  std::vector<double> state;
  noisy.reset(state);
  // Observation is corrupted...
  double deviation = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    const double clean = (i == 0) ? 1.0 : 0.0;
    deviation += std::fabs(state[i] - clean);
  }
  EXPECT_GT(deviation, 1e-6);
  // ...but the underlying dynamics are intact: walking right still
  // terminates with +1 after length-1 steps.
  EnvStep r{};
  for (int i = 0; i < 4; ++i) r = noisy.step(1, state);
  EXPECT_TRUE(r.terminal);
  EXPECT_DOUBLE_EQ(r.reward, 1.0);
}

TEST(NoisyEnvTest, DeterministicInSeed) {
  CorridorEnv innerA(5), innerB(5);
  NoisyObservationEnv a(innerA, 0.2, 42), b(innerB, 0.2, 42);
  std::vector<double> sa, sb;
  a.reset(sa);
  b.reset(sb);
  EXPECT_EQ(sa, sb);
}

TEST(EvaluationTest, ReportsCoherentMetrics) {
  core::DqnDockingConfig cfg = core::DqnDockingConfig::scaled();
  cfg.trainer.episodes = 2;
  cfg.env.maxSteps = 30;
  core::DqnDocking system(cfg);
  system.train();

  core::EvaluationOptions opts;
  opts.episodes = 3;
  const core::EvaluationReport report = core::evaluatePolicy(system, opts);
  EXPECT_EQ(report.episodes, 3u);
  EXPECT_LE(report.successes, report.episodes);
  EXPECT_DOUBLE_EQ(report.successRate,
                   static_cast<double>(report.successes) / report.episodes);
  EXPECT_GT(report.scoringEvaluations, 0u);
  EXPECT_GE(report.bestScore, report.meanEpisodeScore - 1e-9);
  EXPECT_GE(report.bestRmsd, 0.0);
}

TEST(EvaluationTest, GenerousSuccessRadiusAlwaysSucceeds) {
  core::DqnDockingConfig cfg = core::DqnDockingConfig::scaled();
  cfg.trainer.episodes = 1;
  cfg.env.maxSteps = 10;
  core::DqnDocking system(cfg);
  system.trainEpisode();
  core::EvaluationOptions opts;
  opts.episodes = 2;
  opts.successRmsd = 1e6;  // everything counts
  const auto report = core::evaluatePolicy(system, opts);
  EXPECT_EQ(report.successes, 2u);
  EXPECT_DOUBLE_EQ(report.successRate, 1.0);
}

}  // namespace
}  // namespace dqndock
