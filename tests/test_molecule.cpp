// Tests for the SoA molecule container.

#include <gtest/gtest.h>

#include <cmath>

#include "src/chem/molecule.hpp"

namespace dqndock::chem {
namespace {

Molecule water() {
  Molecule m("water");
  m.addAtom(Element::O, Vec3{0, 0, 0}, -0.8, HBondRole::kAcceptor);
  m.addAtom(Element::H, Vec3{0.96, 0, 0}, 0.4, HBondRole::kDonorHydrogen);
  m.addAtom(Element::H, Vec3{-0.24, 0.93, 0}, 0.4, HBondRole::kDonorHydrogen);
  m.addBond(0, 1);
  m.addBond(0, 2);
  return m;
}

TEST(MoleculeTest, AddAtomsAndBonds) {
  const Molecule m = water();
  EXPECT_EQ(m.atomCount(), 3u);
  EXPECT_EQ(m.bondCount(), 2u);
  EXPECT_EQ(m.element(0), Element::O);
  EXPECT_DOUBLE_EQ(m.charge(1), 0.4);
  EXPECT_EQ(m.hbondRole(0), HBondRole::kAcceptor);
  EXPECT_FALSE(m.empty());
}

TEST(MoleculeTest, DefaultChargeFromForceField) {
  Molecule m;
  m.addAtom(Element::O, Vec3{});
  EXPECT_DOUBLE_EQ(m.charge(0), ForceField::standard().defaultCharge(Element::O));
}

TEST(MoleculeTest, BondIndexValidation) {
  Molecule m = water();
  EXPECT_THROW(m.addBond(0, 3), std::invalid_argument);
  EXPECT_THROW(m.addBond(-1, 0), std::invalid_argument);
  EXPECT_THROW(m.addBond(1, 1), std::invalid_argument);
}

TEST(MoleculeTest, TotalCharge) {
  EXPECT_NEAR(water().totalCharge(), 0.0, 1e-12);
}

TEST(MoleculeTest, CentroidAndCom) {
  Molecule m;
  m.addAtom(Element::H, Vec3{0, 0, 0}, 0);
  m.addAtom(Element::H, Vec3{2, 0, 0}, 0);
  EXPECT_EQ(m.centroid(), (Vec3{1, 0, 0}));
  EXPECT_NEAR(distance(m.centerOfMass(), Vec3{1, 0, 0}), 0.0, 1e-12);
  // Unequal masses pull the COM toward the heavy atom.
  Molecule m2;
  m2.addAtom(Element::H, Vec3{0, 0, 0}, 0);
  m2.addAtom(Element::C, Vec3{2, 0, 0}, 0);
  EXPECT_GT(m2.centerOfMass().x, 1.0);
}

TEST(MoleculeTest, BoundingBox) {
  const auto [lo, hi] = water().boundingBox();
  EXPECT_DOUBLE_EQ(lo.x, -0.24);
  EXPECT_DOUBLE_EQ(hi.x, 0.96);
  EXPECT_DOUBLE_EQ(lo.y, 0.0);
  EXPECT_DOUBLE_EQ(hi.y, 0.93);
}

TEST(MoleculeTest, EmptyMoleculeEdgeCases) {
  Molecule m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.centroid(), Vec3{});
  EXPECT_EQ(m.centerOfMass(), Vec3{});
  const auto [lo, hi] = m.boundingBox();
  EXPECT_EQ(lo, Vec3{});
  EXPECT_EQ(hi, Vec3{});
  EXPECT_NO_THROW(m.validate());
}

TEST(MoleculeTest, TranslatePreservesShape) {
  Molecule m = water();
  const double d01 = distance(m.position(0), m.position(1));
  m.translate(Vec3{5, -3, 2});
  EXPECT_NEAR(distance(m.position(0), m.position(1)), d01, 1e-12);
  EXPECT_NEAR(m.position(0).x, 5.0, 1e-12);
}

TEST(MoleculeTest, RotatePreservesInternalDistances) {
  Molecule m = water();
  const double d12 = distance(m.position(1), m.position(2));
  m.rotateAbout(m.centroid(), Mat3::rotationAboutAxis(Vec3{1, 1, 0}, 1.1));
  EXPECT_NEAR(distance(m.position(1), m.position(2)), d12, 1e-12);
}

TEST(MoleculeTest, ValidateDetectsNonFinitePositions) {
  Molecule m = water();
  m.setPosition(1, Vec3{std::nan(""), 0, 0});
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(MoleculeTest, ValidateDetectsNonFiniteCharge) {
  Molecule m = water();
  m.setCharge(0, std::numeric_limits<double>::infinity());
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(MoleculeTest, RmsdBetweenConformations) {
  const Molecule a = water();
  Molecule b = water();
  EXPECT_DOUBLE_EQ(rmsd(a, b), 0.0);
  b.translate(Vec3{1, 0, 0});
  EXPECT_NEAR(rmsd(a, b), 1.0, 1e-12);
}

TEST(MoleculeTest, RmsdSizeMismatchThrows) {
  Molecule a = water();
  Molecule b;
  b.addAtom(Element::C, Vec3{});
  EXPECT_THROW(rmsd(a, b), std::invalid_argument);
}

TEST(MoleculeTest, RmsdEmptyIsZero) {
  EXPECT_DOUBLE_EQ(rmsd(Molecule{}, Molecule{}), 0.0);
}

}  // namespace
}  // namespace dqndock::chem
