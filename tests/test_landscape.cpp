// Tests for the scoring-landscape profiler.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "src/chem/synthetic.hpp"
#include "src/metadock/landscape.hpp"

namespace dqndock::metadock {
namespace {

class LandscapeFixture : public ::testing::Test {
 protected:
  LandscapeFixture()
      : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())),
        receptor_(scenario_.receptor, 12.0),
        ligand_(scenario_.ligand),
        scoring_(receptor_, ligand_, {}) {}

  chem::Scenario scenario_;
  ReceptorModel receptor_;
  LigandModel ligand_;
  ScoringFunction scoring_;
};

TEST_F(LandscapeFixture, LineProfileValidation) {
  EXPECT_THROW(profileLine(scoring_, Vec3{}, Vec3{0, 0, 1}, 0, 1, 1), std::invalid_argument);
  EXPECT_THROW(profileLine(scoring_, Vec3{}, Vec3{}, 0, 1, 5), std::invalid_argument);
}

TEST_F(LandscapeFixture, LineProfileCoversRangeInOrder) {
  const auto samples = profileLine(scoring_, Vec3{}, Vec3{0, 0, 1}, 5.0, 25.0, 11);
  ASSERT_EQ(samples.size(), 11u);
  EXPECT_DOUBLE_EQ(samples.front().t, 5.0);
  EXPECT_DOUBLE_EQ(samples.back().t, 25.0);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].t, samples[i - 1].t);
    EXPECT_NEAR(samples[i].position.z - samples[i - 1].position.z, 2.0, 1e-9);
  }
}

TEST_F(LandscapeFixture, ApproachProfileHasThePaperShape) {
  // Along the pocket axis: catastrophic near the core, a positive basin
  // near the pocket, decaying to ~0 far away (paper Figures 1/3 logic).
  const auto samples = profileLine(scoring_, Vec3{}, scenario_.pocketAxis, 0.0, 40.0, 81);
  const double coreScore = samples.front().score;
  double bestBasin = -1e300;
  for (const auto& s : samples) bestBasin = std::max(bestBasin, s.score);
  const double farScore = samples.back().score;
  EXPECT_LT(coreScore, -1e5);
  EXPECT_GT(bestBasin, 10.0);
  EXPECT_NEAR(farScore, 0.0, 1.0);
}

TEST_F(LandscapeFixture, PlaneProfileGridShape) {
  const auto samples = profilePlane(scoring_, scenario_.pocketCenter, Vec3{1, 0, 0},
                                    Vec3{0, 1, 0}, 4.0, 2.0, 5, 3);
  ASSERT_EQ(samples.size(), 15u);
  // Corners hit the extents.
  EXPECT_DOUBLE_EQ(samples.front().t, -4.0);
  EXPECT_DOUBLE_EQ(samples.front().u, -2.0);
  EXPECT_DOUBLE_EQ(samples.back().t, 4.0);
  EXPECT_DOUBLE_EQ(samples.back().u, 2.0);
  EXPECT_THROW(profilePlane(scoring_, Vec3{}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, 1, 1, 1, 3),
               std::invalid_argument);
}

TEST_F(LandscapeFixture, CsvExport) {
  const auto samples = profileLine(scoring_, Vec3{}, Vec3{0, 0, 1}, 0.0, 10.0, 3);
  const auto path = std::filesystem::temp_directory_path() / "dqndock_landscape.csv";
  writeLandscapeCsv(path.string(), samples);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "t,u,x,y,z,score");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dqndock::metadock
