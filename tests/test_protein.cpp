// Tests for the residue-level synthetic protein builder.

#include <gtest/gtest.h>

#include <set>

#include "src/chem/protein.hpp"
#include "src/chem/topology.hpp"

namespace dqndock::chem {
namespace {

TEST(AminoAcidTest, CodeRoundTrip) {
  for (int i = 0; i < kAminoAcidCount; ++i) {
    const auto aa = static_cast<AminoAcid>(i);
    EXPECT_EQ(aminoAcidFromCode(aminoAcidCode(aa)), aa);
  }
}

TEST(AminoAcidTest, CaseInsensitiveParsing) {
  EXPECT_EQ(aminoAcidFromCode("ala"), AminoAcid::Ala);
  EXPECT_EQ(aminoAcidFromCode(" Trp "), AminoAcid::Trp);
  EXPECT_THROW(aminoAcidFromCode("XYZ"), std::invalid_argument);
}

TEST(AminoAcidTest, ChargesAndSizes) {
  EXPECT_EQ(residueCharge(AminoAcid::Asp), -1);
  EXPECT_EQ(residueCharge(AminoAcid::Glu), -1);
  EXPECT_EQ(residueCharge(AminoAcid::Lys), +1);
  EXPECT_EQ(residueCharge(AminoAcid::Arg), +1);
  EXPECT_EQ(residueCharge(AminoAcid::Ala), 0);
  EXPECT_EQ(sideChainSize(AminoAcid::Gly), 0u);
  EXPECT_GT(sideChainSize(AminoAcid::Trp), sideChainSize(AminoAcid::Ala));
}

TEST(ProteinBuilderTest, ValidationAndDeterminism) {
  ProteinSpec spec;
  spec.residues = 30;
  const ProteinChain a = buildProtein(spec);
  const ProteinChain b = buildProtein(spec);
  EXPECT_NO_THROW(a.molecule.validate());
  ASSERT_EQ(a.molecule.atomCount(), b.molecule.atomCount());
  for (std::size_t i = 0; i < a.molecule.atomCount(); ++i) {
    EXPECT_EQ(a.molecule.position(i), b.molecule.position(i));
  }
  EXPECT_THROW(buildProtein(ProteinSpec{.residues = 0}), std::invalid_argument);
}

TEST(ProteinBuilderTest, BackboneStructure) {
  ProteinSpec spec;
  spec.residues = 25;
  const ProteinChain chain = buildProtein(spec);
  ASSERT_EQ(chain.sequence.size(), 25u);
  ASSERT_EQ(chain.caIndex.size(), 25u);
  // Every residue contributes at least the 4 backbone atoms.
  EXPECT_GE(chain.molecule.atomCount(), 4 * 25u);
  EXPECT_EQ(chain.residueOfAtom.size(), chain.molecule.atomCount());
  // C-alpha spacing close to the spec.
  for (std::size_t r = 1; r < 25; ++r) {
    const double d = distance(chain.molecule.position(chain.caIndex[r]),
                              chain.molecule.position(chain.caIndex[r - 1]));
    EXPECT_NEAR(d, spec.caSpacing, 1.0) << "residue " << r;
  }
}

TEST(ProteinBuilderTest, SingleConnectedComponent) {
  ProteinSpec spec;
  spec.residues = 20;
  const ProteinChain chain = buildProtein(spec);
  Topology topo(chain.molecule);
  int count = 0;
  topo.connectedComponents(&count);
  EXPECT_EQ(count, 1);
}

TEST(ProteinBuilderTest, CompactnessControlsRadius) {
  ProteinSpec loose;
  loose.residues = 60;
  loose.compactness = 0.0;
  loose.seed = 3;
  ProteinSpec tight = loose;
  tight.compactness = 0.6;

  auto radius = [](const Molecule& m) {
    const Vec3 c = m.centroid();
    double acc = 0.0;
    for (const auto& p : m.positions()) acc += distance2(p, c);
    return std::sqrt(acc / static_cast<double>(m.atomCount()));
  };
  EXPECT_LT(radius(buildProtein(tight).molecule), radius(buildProtein(loose).molecule));
}

TEST(ProteinBuilderTest, ChargedResiduesCarryFormalCharge) {
  // Build until the sequence contains a charged residue, then check the
  // terminal side-chain atom's charge magnitude.
  ProteinSpec spec;
  spec.residues = 60;
  spec.seed = 11;
  const ProteinChain chain = buildProtein(spec);
  bool sawCharged = false;
  for (std::size_t r = 0; r < chain.sequence.size(); ++r) {
    if (residueCharge(chain.sequence[r]) == 0) continue;
    sawCharged = true;
    // Find the residue's atoms and check one carries ~ +/-0.8.
    double maxAbsCharge = 0.0;
    for (std::size_t i = 0; i < chain.molecule.atomCount(); ++i) {
      if (chain.residueOfAtom[i] == static_cast<int>(r)) {
        maxAbsCharge = std::max(maxAbsCharge, std::fabs(chain.molecule.charge(i)));
      }
    }
    EXPECT_NEAR(maxAbsCharge, 0.8, 1e-9) << "residue " << r;
  }
  EXPECT_TRUE(sawCharged) << "60-residue random sequence had no charged residue";
}

TEST(ProteinBuilderTest, RandomSequenceCoversAlphabet) {
  Rng rng(13);
  const auto seq = randomSequence(2000, rng);
  std::set<AminoAcid> seen(seq.begin(), seq.end());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kAminoAcidCount));
}

}  // namespace
}  // namespace dqndock::chem
