// Tests for SGD / RMSprop / Adam: each must descend a quadratic bowl and
// fit a small regression through the MLP.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/nn/mlp.hpp"
#include "src/nn/optimizer.hpp"

namespace dqndock::nn {
namespace {

/// Minimize f(w) = 0.5 * |w - target|^2 (gradient = w - target).
double descendQuadratic(Optimizer& opt, int iterations) {
  Tensor w(1, 4, 0.0);
  Tensor target(1, 4);
  target(0, 0) = 1.0;
  target(0, 1) = -2.0;
  target(0, 2) = 0.5;
  target(0, 3) = 3.0;
  Tensor grad(1, 4);
  for (int it = 0; it < iterations; ++it) {
    for (std::size_t i = 0; i < 4; ++i) grad.flat()[i] = w.flat()[i] - target.flat()[i];
    opt.step({&w}, {&grad});
  }
  double err = 0.0;
  for (std::size_t i = 0; i < 4; ++i) err += std::fabs(w.flat()[i] - target.flat()[i]);
  return err;
}

TEST(OptimizerTest, SgdDescendsQuadratic) {
  Sgd opt(0.1);
  EXPECT_LT(descendQuadratic(opt, 200), 1e-6);
}

TEST(OptimizerTest, SgdMomentumDescends) {
  Sgd opt(0.05, 0.9);
  EXPECT_LT(descendQuadratic(opt, 300), 1e-4);
}

TEST(OptimizerTest, RmsPropDescendsQuadratic) {
  RmsProp opt(0.05);
  EXPECT_LT(descendQuadratic(opt, 2000), 1e-2);
}

TEST(OptimizerTest, AdamDescendsQuadratic) {
  Adam opt(0.05);
  EXPECT_LT(descendQuadratic(opt, 2000), 1e-4);
}

TEST(OptimizerTest, FactoryByName) {
  EXPECT_EQ(makeOptimizer("sgd", 0.1)->name(), "sgd");
  EXPECT_EQ(makeOptimizer("rmsprop", 0.1)->name(), "rmsprop");
  EXPECT_EQ(makeOptimizer("adam", 0.1)->name(), "adam");
  EXPECT_THROW(makeOptimizer("nadam", 0.1), std::invalid_argument);
}

TEST(OptimizerTest, MismatchedListsThrow) {
  Sgd opt(0.1);
  Tensor w(1, 2), g(1, 2), g2(2, 2);
  EXPECT_THROW(opt.step({&w}, {}), std::invalid_argument);
  EXPECT_THROW(opt.step({&w}, {&g2}), std::invalid_argument);
  EXPECT_NO_THROW(opt.step({&w}, {&g}));
}

TEST(OptimizerTest, LearningRateAccessors) {
  Adam opt(0.01);
  EXPECT_DOUBLE_EQ(opt.learningRate(), 0.01);
  opt.setLearningRate(0.02);
  EXPECT_DOUBLE_EQ(opt.learningRate(), 0.02);
}

/// Full pipeline regression: train an MLP to fit y = [sum(x), -x0] on
/// random data; the loss must drop by >90%.
class RegressionFitTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RegressionFitTest, MlpFitsLinearFunction) {
  Rng rng(42);
  Mlp net({3, 16, 2}, rng);
  auto opt = makeOptimizer(GetParam(), GetParam() == std::string("sgd") ? 0.01 : 0.003);

  auto makeBatch = [&rng](Tensor& x, Tensor& y) {
    x.resize(16, 3);
    y.resize(16, 2);
    for (std::size_t r = 0; r < 16; ++r) {
      double sum = 0.0;
      for (std::size_t c = 0; c < 3; ++c) {
        x(r, c) = rng.uniform(-1, 1);
        sum += x(r, c);
      }
      y(r, 0) = sum;
      y(r, 1) = -x(r, 0);
    }
  };

  auto lossOn = [&](const Tensor& x, const Tensor& y, Tensor* dOut) {
    const Tensor& out = net.forward(x);
    double loss = 0.0;
    if (dOut) dOut->resize(out.rows(), out.cols());
    const double inv = 1.0 / static_cast<double>(out.rows());
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double err = out.flat()[i] - y.flat()[i];
      loss += 0.5 * err * err * inv;
      if (dOut) dOut->flat()[i] = err * inv;
    }
    return loss;
  };

  Tensor x, y, dOut;
  makeBatch(x, y);
  const double initialLoss = lossOn(x, y, nullptr);
  for (int it = 0; it < 800; ++it) {
    makeBatch(x, y);
    net.zeroGrad();
    lossOn(x, y, &dOut);
    net.backward(dOut);
    opt->step(net.parameters(), net.gradients());
  }
  makeBatch(x, y);
  const double finalLoss = lossOn(x, y, nullptr);
  EXPECT_LT(finalLoss, 0.1 * initialLoss) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Optimizers, RegressionFitTest,
                         ::testing::Values("sgd", "rmsprop", "adam"));

}  // namespace
}  // namespace dqndock::nn
