// Tests for TcpClient connect/request retry: capped exponential backoff
// under an overall deadline, with every retry on a FRESH connection — a
// desynchronized stream is never reused.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/serve/tcp.hpp"
#include "src/serve/wire.hpp"

namespace dqndock::serve {
namespace {

class RawListener {
 public:
  RawListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    EXPECT_EQ(::listen(fd_, 4), 0);
    socklen_t len = sizeof addr;
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
  ~RawListener() { closeListener(); }
  void closeListener() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  std::uint16_t port() const { return port_; }
  int acceptOne() { return ::accept(fd_, nullptr, nullptr); }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

TEST(TcpClientRetryTest, DefaultPolicyFailsFast) {
  RawListener probe;
  const std::uint16_t port = probe.port();
  probe.closeListener();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(TcpClient(port, "127.0.0.1", RetryPolicy{}), std::runtime_error);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(2));  // one attempt, no backoff
}

TEST(TcpClientRetryTest, ConnectRetriesUntilServerAppears) {
  RawListener probe;
  const std::uint16_t port = probe.port();
  probe.closeListener();  // nothing listening yet

  std::atomic<bool> served{false};
  std::thread lateServer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    // Rebind the same port and answer one request.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    ASSERT_EQ(::listen(fd, 1), 0);
    const int conn = ::accept(fd, nullptr, nullptr);
    ASSERT_GE(conn, 0);
    Message request;
    ASSERT_TRUE(recvMessage(conn, request));
    sendMessage(conn, Message::ok());
    served = true;
    ::close(conn);
    ::close(fd);
  });

  RetryPolicy retry;
  retry.maxAttempts = 10;
  retry.initialBackoff = std::chrono::milliseconds(50);
  retry.deadline = std::chrono::seconds(10);
  TcpClient client(port, "127.0.0.1", retry);
  const Message reply = client.request(Message{"PING", {}});
  EXPECT_EQ(reply.type, "OK");
  lateServer.join();
  EXPECT_TRUE(served);
}

TEST(TcpClientRetryTest, DeadlineBoundsTotalWait) {
  RawListener probe;
  const std::uint16_t port = probe.port();
  probe.closeListener();

  RetryPolicy retry;
  retry.maxAttempts = 1000;  // attempts alone would retry for a long time
  retry.initialBackoff = std::chrono::milliseconds(50);
  retry.maxBackoff = std::chrono::milliseconds(100);
  retry.deadline = std::chrono::milliseconds(300);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(TcpClient(port, "127.0.0.1", retry), std::runtime_error);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(3));
}

TEST(TcpClientRetryTest, RequestRetryUsesFreshConnection) {
  // First connection: the server reads the request and hangs up without
  // replying — the client's stream is now desynchronized. The retrying
  // request() must NOT reuse it: it reconnects and resends, and the
  // server answers on the second, fresh connection.
  RawListener listener;
  std::atomic<int> connections{0};
  std::thread server([&] {
    const int first = listener.acceptOne();
    ASSERT_GE(first, 0);
    ++connections;
    char buf[4096];
    ASSERT_GT(::read(first, buf, sizeof buf), 0);
    ::close(first);  // no reply: failed exchange

    const int second = listener.acceptOne();
    ASSERT_GE(second, 0);
    ++connections;
    Message request;
    ASSERT_TRUE(recvMessage(second, request));
    EXPECT_EQ(request.type, "PING");
    Message reply = Message::ok();
    reply.set("attempt", static_cast<long>(2));
    sendMessage(second, reply);
    ::close(second);
  });

  TcpClient client(listener.port());
  RetryPolicy retry;
  retry.maxAttempts = 4;
  retry.initialBackoff = std::chrono::milliseconds(20);
  const Message reply = client.request(Message{"PING", {}}, retry);
  EXPECT_EQ(reply.type, "OK");
  EXPECT_EQ(reply.getInt("attempt", 0), 2);
  EXPECT_EQ(connections.load(), 2);
  server.join();
}

TEST(TcpClientRetryTest, RetryExhaustionThrowsLastError) {
  RawListener listener;
  std::thread server([&] {
    for (int i = 0; i < 3; ++i) {
      const int fd = listener.acceptOne();
      if (fd < 0) return;
      char buf[4096];
      (void)!::read(fd, buf, sizeof buf);
      ::close(fd);  // never reply
    }
  });

  TcpClient client(listener.port());
  RetryPolicy retry;
  retry.maxAttempts = 3;
  retry.initialBackoff = std::chrono::milliseconds(10);
  EXPECT_THROW(client.request(Message{"PING", {}}, retry), std::runtime_error);
  server.join();
}

TEST(TcpClientRetryTest, PatientPolicyHasSaneShape) {
  const RetryPolicy p = RetryPolicy::patient();
  EXPECT_GT(p.maxAttempts, 1);
  EXPECT_GT(p.deadline.count(), 0);
  EXPECT_GE(p.maxBackoff, p.initialBackoff);
}

}  // namespace
}  // namespace dqndock::serve
