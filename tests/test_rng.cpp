// Tests for the deterministic splittable RNG.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.hpp"
#include "src/common/vec3.hpp"

namespace dqndock {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sumSq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumSq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.split();
  // Child continues differently from parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UnitVectorIsUnit) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NEAR(rng.unitVector<Vec3>().norm(), 1.0, 1e-12);
  }
}

TEST(RngTest, UnitVectorCoversBothHemispheres) {
  Rng rng(31);
  int positiveZ = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.unitVector<Vec3>().z > 0) ++positiveZ;
  }
  EXPECT_NEAR(static_cast<double>(positiveZ) / n, 0.5, 0.03);
}

class UniformIntBoundsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformIntBoundsTest, StaysInRange) {
  Rng rng(GetParam() + 100);
  const std::uint64_t n = GetParam();
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.uniformInt(n), n);
  }
}

TEST_P(UniformIntBoundsTest, CoversAllValuesForSmallN) {
  const std::uint64_t n = GetParam();
  if (n > 16) GTEST_SKIP() << "coverage check only for small ranges";
  Rng rng(GetParam());
  std::vector<int> seen(n, 0);
  for (std::uint64_t i = 0; i < 200 * n; ++i) ++seen[rng.uniformInt(n)];
  for (std::uint64_t v = 0; v < n; ++v) EXPECT_GT(seen[v], 0) << "value " << v << " never drawn";
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformIntBoundsTest,
                         ::testing::Values(1, 2, 3, 7, 12, 16, 1000, 1u << 20));

TEST(RngTest, SignedUniformIntInclusiveBounds) {
  Rng rng(37);
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

}  // namespace
}  // namespace dqndock
