// Tests for the n-step return accumulator.

#include <gtest/gtest.h>

#include <cmath>

#include "src/rl/nstep.hpp"

namespace dqndock::rl {
namespace {

/// Sink that records everything pushed into it.
class RecordingSink final : public ExperienceSink {
 public:
  struct Item {
    std::vector<double> state, next;
    int action;
    double reward;
    bool terminal;
  };
  void push(std::span<const double> state, int action, double reward,
            std::span<const double> nextState, bool terminal) override {
    items.push_back(Item{std::vector<double>(state.begin(), state.end()),
                         std::vector<double>(nextState.begin(), nextState.end()), action, reward,
                         terminal});
  }
  std::vector<Item> items;
};

std::vector<double> s(double v) { return {v}; }

TEST(NStepTest, ValidationErrors) {
  RecordingSink sink;
  EXPECT_THROW(NStepSink(sink, 0, 0.9), std::invalid_argument);
  EXPECT_THROW(NStepSink(sink, 2, 1.5), std::invalid_argument);
}

TEST(NStepTest, NEqualsOneIsPassThrough) {
  RecordingSink sink;
  NStepSink n1(sink, 1, 0.9);
  n1.push(s(0), 2, 0.5, s(1), false);
  ASSERT_EQ(sink.items.size(), 1u);
  EXPECT_EQ(sink.items[0].action, 2);
  EXPECT_DOUBLE_EQ(sink.items[0].reward, 0.5);
  EXPECT_DOUBLE_EQ(sink.items[0].next[0], 1.0);
  EXPECT_FALSE(sink.items[0].terminal);
}

TEST(NStepTest, ThreeStepReturnAggregates) {
  const double gamma = 0.9;
  RecordingSink sink;
  NStepSink n3(sink, 3, gamma);
  n3.push(s(0), 10, 1.0, s(1), false);
  n3.push(s(1), 11, 2.0, s(2), false);
  EXPECT_TRUE(sink.items.empty());  // not enough steps yet
  n3.push(s(2), 12, 4.0, s(3), false);
  ASSERT_EQ(sink.items.size(), 1u);
  const auto& item = sink.items[0];
  EXPECT_DOUBLE_EQ(item.state[0], 0.0);
  EXPECT_EQ(item.action, 10);
  EXPECT_DOUBLE_EQ(item.reward, 1.0 + gamma * 2.0 + gamma * gamma * 4.0);
  EXPECT_DOUBLE_EQ(item.next[0], 3.0);  // state after 3 steps
  EXPECT_FALSE(item.terminal);
}

TEST(NStepTest, SlidingWindowEmitsPerStepAfterWarmup) {
  RecordingSink sink;
  NStepSink n2(sink, 2, 1.0);
  for (int t = 0; t < 5; ++t) n2.push(s(t), t, 1.0, s(t + 1), false);
  // After the first warm-up step, one emission per push: 4 total.
  ASSERT_EQ(sink.items.size(), 4u);
  for (std::size_t i = 0; i < sink.items.size(); ++i) {
    EXPECT_DOUBLE_EQ(sink.items[i].state[0], static_cast<double>(i));
    EXPECT_DOUBLE_EQ(sink.items[i].reward, 2.0);  // two undiscounted rewards
    EXPECT_DOUBLE_EQ(sink.items[i].next[0], static_cast<double>(i + 2));
  }
}

TEST(NStepTest, TerminalFlushesAllPendingAsTerminal) {
  const double gamma = 0.5;
  RecordingSink sink;
  NStepSink n3(sink, 3, gamma);
  n3.push(s(0), 0, 1.0, s(1), false);
  n3.push(s(1), 1, 1.0, s(2), true);  // episode ends after 2 steps
  ASSERT_EQ(sink.items.size(), 2u);
  // First pending transition saw both rewards.
  EXPECT_DOUBLE_EQ(sink.items[0].reward, 1.0 + gamma * 1.0);
  EXPECT_TRUE(sink.items[0].terminal);
  EXPECT_DOUBLE_EQ(sink.items[0].next[0], 2.0);
  // Second saw only the final reward.
  EXPECT_DOUBLE_EQ(sink.items[1].reward, 1.0);
  EXPECT_TRUE(sink.items[1].terminal);
  EXPECT_EQ(n3.pendingCount(), 0u);
}

TEST(NStepTest, ManualFlushEmitsTruncatedReturns) {
  RecordingSink sink;
  NStepSink n3(sink, 3, 1.0);
  n3.push(s(0), 0, 1.0, s(1), false);
  n3.push(s(1), 1, 1.0, s(2), false);
  EXPECT_EQ(n3.pendingCount(), 2u);
  n3.flush();
  EXPECT_EQ(n3.pendingCount(), 0u);
  ASSERT_EQ(sink.items.size(), 2u);
  EXPECT_TRUE(sink.items[0].terminal);
}

TEST(NStepTest, WorksInFrontOfRealReplayBuffer) {
  ReplayBuffer rb(64, 1);
  NStepSink n2(rb, 2, 0.99);
  for (int t = 0; t < 10; ++t) n2.push(s(t), 0, 1.0, s(t + 1), t == 9);
  // 8 sliding-window emissions + 2 terminal flush emissions.
  EXPECT_EQ(rb.size(), 10u);
}

}  // namespace
}  // namespace dqndock::rl
