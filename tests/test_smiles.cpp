// Tests for the SMILES parser / writer and its 3-D embedding.

#include <gtest/gtest.h>

#include <array>

#include "src/chem/smiles.hpp"
#include "src/chem/topology.hpp"

namespace dqndock::chem {
namespace {

TEST(SmilesTest, LinearChain) {
  const Molecule m = moleculeFromSmiles("CCO");
  ASSERT_EQ(m.atomCount(), 3u);
  EXPECT_EQ(m.element(0), Element::C);
  EXPECT_EQ(m.element(1), Element::C);
  EXPECT_EQ(m.element(2), Element::O);
  ASSERT_EQ(m.bondCount(), 2u);
  EXPECT_EQ(m.bonds()[0].a, 0);
  EXPECT_EQ(m.bonds()[0].b, 1);
}

TEST(SmilesTest, TwoLetterElements) {
  const Molecule m = moleculeFromSmiles("CClBrI");
  ASSERT_EQ(m.atomCount(), 4u);
  EXPECT_EQ(m.element(1), Element::Cl);
  EXPECT_EQ(m.element(2), Element::Br);
  EXPECT_EQ(m.element(3), Element::I);
}

TEST(SmilesTest, AromaticLowercaseMapped) {
  const Molecule m = moleculeFromSmiles("cnos");
  ASSERT_EQ(m.atomCount(), 4u);
  EXPECT_EQ(m.element(0), Element::C);
  EXPECT_EQ(m.element(1), Element::N);
  EXPECT_EQ(m.element(2), Element::O);
  EXPECT_EQ(m.element(3), Element::S);
}

TEST(SmilesTest, BranchesAttachCorrectly) {
  // Isobutane-like: central carbon with three substituents.
  const Molecule m = moleculeFromSmiles("CC(C)(C)O");
  ASSERT_EQ(m.atomCount(), 5u);
  Topology topo(m);
  EXPECT_EQ(topo.degree(1), 4);  // the branching carbon
  EXPECT_EQ(topo.degree(0), 1);
  EXPECT_EQ(topo.degree(4), 1);
}

TEST(SmilesTest, RingClosure) {
  const Molecule m = moleculeFromSmiles("C1CCCCC1");  // cyclohexane
  ASSERT_EQ(m.atomCount(), 6u);
  EXPECT_EQ(m.bondCount(), 6u);  // chain of 5 + 1 closure
  Topology topo(m);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(topo.degree(i), 2);
  EXPECT_TRUE(topo.bondInRing(m, 0));
}

TEST(SmilesTest, PercentRingClosure) {
  const Molecule m = moleculeFromSmiles("C%12CCC%12");
  EXPECT_EQ(m.atomCount(), 4u);
  EXPECT_EQ(m.bondCount(), 4u);
}

TEST(SmilesTest, BondSymbolsCollapse) {
  const Molecule m = moleculeFromSmiles("C=C#N");
  EXPECT_EQ(m.atomCount(), 3u);
  EXPECT_EQ(m.bondCount(), 2u);
}

TEST(SmilesTest, BracketAtomsWithChargeAndHydrogens) {
  const Molecule m = moleculeFromSmiles("C[NH3+]");
  // C, N, + 3 explicit hydrogens.
  ASSERT_EQ(m.atomCount(), 5u);
  EXPECT_EQ(m.element(1), Element::N);
  EXPECT_NEAR(m.charge(1), 0.8, 1e-9);  // +1 formal -> 0.8 partial
  int hydrogens = 0, donors = 0;
  for (std::size_t i = 0; i < m.atomCount(); ++i) {
    if (m.element(i) == Element::H) {
      ++hydrogens;
      if (m.hbondRole(i) == HBondRole::kDonorHydrogen) ++donors;
    }
  }
  EXPECT_EQ(hydrogens, 3);
  EXPECT_EQ(donors, 3);
}

TEST(SmilesTest, NegativeCharge) {
  const Molecule m = moleculeFromSmiles("CC(=O)[O-]");
  EXPECT_NEAR(m.charge(3), -0.8, 1e-9);
  EXPECT_EQ(m.hbondRole(3), HBondRole::kAcceptor);
}

TEST(SmilesTest, GeometryIsSelfAvoiding) {
  const Molecule m = moleculeFromSmiles("CCCCCCCCCC");  // decane
  for (std::size_t i = 0; i < m.atomCount(); ++i) {
    for (std::size_t j = i + 1; j < m.atomCount(); ++j) {
      EXPECT_GT(distance(m.position(i), m.position(j)), 1.0);
    }
  }
  // Bonded neighbours at covalent distance.
  for (const auto& b : m.bonds()) {
    EXPECT_NEAR(distance(m.position(static_cast<std::size_t>(b.a)),
                         m.position(static_cast<std::size_t>(b.b))),
                1.5, 1e-9);
  }
}

TEST(SmilesTest, DeterministicInSeed) {
  const Molecule a = moleculeFromSmiles("CC(C)CO", 7);
  const Molecule b = moleculeFromSmiles("CC(C)CO", 7);
  for (std::size_t i = 0; i < a.atomCount(); ++i) {
    EXPECT_EQ(a.position(i), b.position(i));
  }
}

TEST(SmilesTest, MalformedInputsRejectedWithPosition) {
  EXPECT_THROW(moleculeFromSmiles(""), std::runtime_error);
  EXPECT_THROW(moleculeFromSmiles("C(C"), std::runtime_error);     // open branch
  EXPECT_THROW(moleculeFromSmiles("CC)"), std::runtime_error);     // stray ')'
  EXPECT_THROW(moleculeFromSmiles("C1CC"), std::runtime_error);    // unclosed ring
  EXPECT_THROW(moleculeFromSmiles("C[Zz]"), std::runtime_error);   // unknown element
  EXPECT_THROW(moleculeFromSmiles("C[N"), std::runtime_error);     // unterminated bracket
  EXPECT_THROW(moleculeFromSmiles("C@C"), std::runtime_error);     // unsupported char
  EXPECT_THROW(moleculeFromSmiles("(C)"), std::runtime_error);     // branch before atom
  try {
    moleculeFromSmiles("CC@");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("position 2"), std::string::npos);
  }
}

TEST(SmilesTest, WriterRoundTripsTopology) {
  for (const char* smiles : {"CCO", "CC(C)(C)O", "C1CCCCC1", "CC(=O)[O-]", "CCN(CC)CC"}) {
    const Molecule original = moleculeFromSmiles(smiles);
    const std::string emitted = smilesFromMolecule(original);
    const Molecule reparsed = moleculeFromSmiles(emitted);
    EXPECT_EQ(reparsed.atomCount(), original.atomCount()) << smiles << " -> " << emitted;
    EXPECT_EQ(reparsed.bondCount(), original.bondCount()) << smiles << " -> " << emitted;
    // Element multiset must match.
    std::array<int, kElementCount> histA{}, histB{};
    for (std::size_t i = 0; i < original.atomCount(); ++i) {
      ++histA[static_cast<std::size_t>(original.element(i))];
      ++histB[static_cast<std::size_t>(reparsed.element(i))];
    }
    EXPECT_EQ(histA, histB) << smiles;
  }
}

TEST(SmilesTest, ParsedLigandIsDockable) {
  // A drug-like SMILES must flow straight into the docking machinery.
  Molecule lig = moleculeFromSmiles("CC(C)CC(N)C(=O)O");  // leucine-like
  detectRotatableBonds(lig);
  std::size_t rotatable = 0;
  for (const auto& b : lig.bonds()) rotatable += b.rotatable;
  EXPECT_GT(rotatable, 0u);
  EXPECT_NO_THROW(lig.validate());
}

}  // namespace
}  // namespace dqndock::chem
