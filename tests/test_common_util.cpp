// Tests for RunningStats, CsvWriter, CliArgs, Stopwatch and logging.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/cli.hpp"
#include "src/common/csv.hpp"
#include "src/common/logging.hpp"
#include "src/common/running_stats.hpp"
#include "src/common/stopwatch.hpp"

namespace dqndock {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37 - 3.0;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const auto path = std::filesystem::temp_directory_path() / "dqndock_test.csv";
  {
    CsvWriter csv(path.string(), {"a", "b"});
    csv.row({1.5, 2.5});
    csv.rowStrings({"x,y", "plain"});
    csv.flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",plain");
  std::filesystem::remove(path);
}

TEST(CsvWriterTest, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}), std::runtime_error);
}

TEST(CliArgsTest, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--alpha=0.5", "--name=test"};
  CliArgs args(3, argv);
  EXPECT_DOUBLE_EQ(args.getDouble("alpha", 0), 0.5);
  EXPECT_EQ(args.getString("name", ""), "test");
}

TEST(CliArgsTest, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--count", "42"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.getInt("count", 0), 42);
}

TEST(CliArgsTest, BareSwitchIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  CliArgs args(2, argv);
  EXPECT_TRUE(args.getBool("verbose", false));
  EXPECT_FALSE(args.getBool("quiet", false));
}

TEST(CliArgsTest, PositionalCollected) {
  const char* argv[] = {"prog", "input.pdb", "--x=1", "output.pdb"};
  CliArgs args(4, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.pdb");
  EXPECT_EQ(args.positional()[1], "output.pdb");
}

TEST(CliArgsTest, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.getInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.getDouble("x", 1.5), 1.5);
  EXPECT_EQ(args.getString("s", "dflt"), "dflt");
}

TEST(CliArgsTest, MalformedNumericValuesThrowCliError) {
  // The satellite bug: "--layers 128,abc" used to reach std::stoul and
  // abort. Present-but-malformed now throws CliError (a catchable,
  // usage-printing path) instead of silently using the fallback.
  const char* argv[] = {"prog", "--count=12abc", "--rate=fast", "--port=70000"};
  CliArgs args(4, argv);
  EXPECT_THROW(args.getInt("count", 0), CliError);
  EXPECT_THROW(args.getDouble("rate", 0.0), CliError);
  EXPECT_THROW(args.getUint16("port", 0), CliError);  // out of [0, 65535]
  // Absent flags still take the fallback, no throw.
  EXPECT_EQ(args.getInt("absent", 3), 3);
}

TEST(CliArgsTest, CheckedParseHelpers) {
  EXPECT_EQ(tryParseLong("-42").value(), -42);
  EXPECT_EQ(tryParseLong(" 42 "), std::nullopt);      // whole-token strict
  EXPECT_EQ(tryParseLong("42x"), std::nullopt);
  EXPECT_EQ(tryParseLong(""), std::nullopt);
  EXPECT_EQ(tryParseLong("999999999999999999999"), std::nullopt);  // overflow
  EXPECT_EQ(tryParseUnsigned("7").value(), 7ul);
  EXPECT_EQ(tryParseUnsigned("-7"), std::nullopt);    // negatives rejected
  EXPECT_DOUBLE_EQ(tryParseDouble("2.5e-3").value(), 2.5e-3);
  EXPECT_EQ(tryParseDouble("2.5.3"), std::nullopt);
}

TEST(CliArgsTest, SizeListParsing) {
  const auto sizes = tryParseSizeList("128,64,32");
  ASSERT_TRUE(sizes.has_value());
  EXPECT_EQ(*sizes, (std::vector<std::size_t>{128, 64, 32}));
  EXPECT_EQ(tryParseSizeList("128,abc"), std::nullopt);  // the docking_server crash
  EXPECT_EQ(tryParseSizeList("128,-4"), std::nullopt);
  EXPECT_EQ(tryParseSizeList("0"), std::nullopt);        // zero-width layer
  EXPECT_THROW(parseSizeList("128,abc", "hidden"), CliError);
  EXPECT_EQ(parseSizeList("16,8", "hidden"), (std::vector<std::size_t>{16, 8}));
}

// Streaming this type records whether operator<< ever ran.
struct FormatProbe {
  bool* formatted;
};
std::ostream& operator<<(std::ostream& os, const FormatProbe& p) {
  *p.formatted = true;
  return os << "probe";
}

TEST(LoggingTest, DisabledLevelSkipsFormatting) {
  const LogLevel saved = logLevel();
  setLogLevel(LogLevel::kWarn);
  bool formatted = false;
  logDebug() << FormatProbe{&formatted};
  logInfo() << FormatProbe{&formatted};
  EXPECT_FALSE(formatted);
  setLogLevel(saved);
}

TEST(LoggingTest, EnabledLevelFormats) {
  const LogLevel saved = logLevel();
  setLogLevel(LogLevel::kOff);  // destructor still must not print
  bool formatted = false;
  {
    detail::LogLine line(LogLevel::kError);
    // kError < kOff: gated at construction.
    line << FormatProbe{&formatted};
  }
  EXPECT_FALSE(formatted);
  setLogLevel(LogLevel::kDebug);
  bool formattedNow = false;
  logDebug() << FormatProbe{&formattedNow};
  EXPECT_TRUE(formattedNow);
  setLogLevel(saved);
}

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  const double t1 = sw.seconds();
  const double t2 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
  EXPECT_NEAR(sw.millis(), sw.seconds() * 1000.0, 1.0);
}

}  // namespace
}  // namespace dqndock
