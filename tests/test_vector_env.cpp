// Vectorized training guards: the V=1 lockstep run must reproduce the
// sequential Trainer bit-for-bit (episode records, replay contents,
// final network weights), and V>1 runs must be deterministic across
// repeat runs and across thread counts. Also pins down the ownership
// split between the lockstep VectorEnv path and ParallelCollector.

#include <gtest/gtest.h>

#include "src/core/dqn_docking.hpp"
#include "src/core/docking_vector_env.hpp"
#include "src/rl/corridor_env.hpp"
#include "src/rl/trainer.hpp"
#include "src/rl/vector_env.hpp"

namespace dqndock {
namespace {

core::DqnDockingConfig fastRawConfig() {
  core::DqnDockingConfig cfg = core::DqnDockingConfig::scaled();
  cfg.compactReplay = false;  // vectorized path needs raw state storage
  cfg.trainer.episodes = 6;
  cfg.env.maxSteps = 40;
  cfg.trainer.learningStart = 50;
  cfg.agent.hiddenSizes = {24, 24};
  cfg.agent.targetSyncInterval = 7;
  cfg.replayCapacity = 4000;
  return cfg;
}

void expectRecordsIdentical(const rl::MetricsLog& a, const rl::MetricsLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const rl::EpisodeRecord& ra = a.records()[i];
    const rl::EpisodeRecord& rb = b.records()[i];
    EXPECT_EQ(ra.episode, rb.episode);
    EXPECT_EQ(ra.steps, rb.steps) << "episode " << i;
    EXPECT_EQ(ra.totalReward, rb.totalReward) << "episode " << i;
    EXPECT_EQ(ra.avgMaxQ, rb.avgMaxQ) << "episode " << i;
    EXPECT_EQ(ra.finalScore, rb.finalScore) << "episode " << i;
    EXPECT_EQ(ra.bestScore, rb.bestScore) << "episode " << i;
    EXPECT_EQ(ra.epsilon, rb.epsilon) << "episode " << i;
  }
}

void expectWeightsIdentical(rl::DqnAgent& a, rl::DqnAgent& b) {
  const auto pa = a.online().parameters();
  const auto pb = b.online().parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t t = 0; t < pa.size(); ++t) {
    const auto fa = pa[t]->flat();
    const auto fb = pb[t]->flat();
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t j = 0; j < fa.size(); ++j) {
      ASSERT_EQ(fa[j], fb[j]) << "tensor " << t << " element " << j;
    }
  }
}

void expectReplayIdentical(const rl::ExperienceSource& a, const rl::ExperienceSource& b,
                           std::uint64_t sampleSeed) {
  ASSERT_EQ(a.size(), b.size());
  // Same-seeded sampling reads the same slots; bitwise-equal contents
  // therefore produce bitwise-equal minibatches.
  Rng rngA(sampleSeed);
  Rng rngB(sampleSeed);
  const std::size_t batch = std::min<std::size_t>(64, a.size());
  const rl::Minibatch ma = a.sample(batch, rngA);
  const rl::Minibatch mb = b.sample(batch, rngB);
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t i = 0; i < ma.size(); ++i) {
    EXPECT_EQ(ma.actions[i], mb.actions[i]);
    EXPECT_EQ(ma.rewards[i], mb.rewards[i]);
    EXPECT_EQ(ma.terminals[i], mb.terminals[i]);
  }
  const auto sa = ma.states.flat();
  const auto sb = mb.states.flat();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) ASSERT_EQ(sa[i], sb[i]);
  const auto na = ma.nextStates.flat();
  const auto nb = mb.nextStates.flat();
  ASSERT_EQ(na.size(), nb.size());
  for (std::size_t i = 0; i < na.size(); ++i) ASSERT_EQ(na[i], nb[i]);
}

// --- V=1 bit-identity guard (the ISSUE's headline equivalence test) ----

TEST(VectorEnvEquivalence, V1BitIdenticalToSequentialTrainer) {
  core::DqnDockingConfig seqCfg = fastRawConfig();
  core::DqnDockingConfig vecCfg = seqCfg;
  vecCfg.vectorEnvs = 1;

  core::DqnDocking seq(seqCfg);
  core::DqnDocking vec(vecCfg);
  ASSERT_FALSE(seq.trainer().vectorized());
  ASSERT_TRUE(vec.trainer().vectorized());

  const rl::MetricsLog& seqLog = seq.train();
  const rl::MetricsLog& vecLog = vec.train();

  expectRecordsIdentical(seqLog, vecLog);
  expectWeightsIdentical(seq.agent(), vec.agent());
  expectReplayIdentical(seq.rawReplay(), vec.rawReplay(), /*sampleSeed=*/12345);

  // V=1 batches nothing: it must take the scalar scoring path.
  EXPECT_EQ(vec.vectorEnv()->batchedSteps(), 0u);
}

TEST(VectorEnvEquivalence, V1GreedyEvaluationMatchesSequential) {
  core::DqnDockingConfig seqCfg = fastRawConfig();
  seqCfg.trainer.episodes = 3;
  core::DqnDockingConfig vecCfg = seqCfg;
  vecCfg.vectorEnvs = 1;
  core::DqnDocking seq(seqCfg);
  core::DqnDocking vec(vecCfg);
  seq.train();
  vec.train();
  const rl::EpisodeRecord a = seq.evaluateGreedy();
  const rl::EpisodeRecord b = vec.evaluateGreedy();
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.totalReward, b.totalReward);
  EXPECT_EQ(a.finalScore, b.finalScore);
  EXPECT_EQ(a.bestScore, b.bestScore);
}

// --- V=8 determinism: same seed => identical runs, any thread count ----

TEST(VectorEnvDeterminism, V8IdenticalAcrossRunsAndThreadCounts) {
  core::DqnDockingConfig cfg = fastRawConfig();
  cfg.vectorEnvs = 8;
  cfg.trainer.episodes = 10;

  core::DqnDocking serial(cfg);            // no pool: serial batched scoring
  const rl::MetricsLog& logSerial = serial.train();

  ThreadPool pool(4);
  core::DqnDocking pooled(cfg, &pool);     // 4 workers sweep the pose batch
  const rl::MetricsLog& logPooled = pooled.train();

  core::DqnDocking repeat(cfg, &pool);     // same seed, second run
  const rl::MetricsLog& logRepeat = repeat.train();

  expectRecordsIdentical(logSerial, logPooled);
  expectRecordsIdentical(logSerial, logRepeat);
  expectWeightsIdentical(serial.agent(), pooled.agent());
  expectWeightsIdentical(serial.agent(), repeat.agent());
  expectReplayIdentical(serial.rawReplay(), pooled.rawReplay(), /*sampleSeed=*/99);

  EXPECT_GT(serial.vectorEnv()->batchedSteps(), 0u);
  EXPECT_EQ(serial.vectorEnv()->batchedSteps(), pooled.vectorEnv()->batchedSteps());
}

TEST(VectorEnvDeterminism, PerEnvStreamsAreSeedIndexKeyed) {
  // The stream is a pure function of (seed, index), like
  // ligandScreenStream: independent draws per env, reproducible.
  Rng a0 = rl::trainerEnvStream(7, 0);
  Rng a0again = rl::trainerEnvStream(7, 0);
  Rng a1 = rl::trainerEnvStream(7, 1);
  const double d0 = a0.uniform();
  EXPECT_EQ(d0, a0again.uniform());
  EXPECT_NE(d0, a1.uniform());
}

// --- Vectorized schedule semantics -------------------------------------

TEST(VectorEnvSchedule, EpisodeQuotaAndTransitionCounting) {
  core::DqnDockingConfig cfg = fastRawConfig();
  cfg.vectorEnvs = 4;
  cfg.trainer.episodes = 5;
  core::DqnDocking system(cfg);
  const rl::MetricsLog& log = system.train();
  EXPECT_EQ(log.size(), 5u);  // completion-order records, quota respected
  // Every lockstep pass commits V transitions.
  EXPECT_EQ(system.trainer().globalStep() % cfg.vectorEnvs, 0u);
  EXPECT_EQ(system.trainer().globalStep(),
            system.vectorEnv()->batchedSteps() * cfg.vectorEnvs);
}

TEST(VectorEnvSchedule, RunEpisodeThrowsInVectorizedMode) {
  core::DqnDockingConfig cfg = fastRawConfig();
  cfg.vectorEnvs = 2;
  core::DqnDocking system(cfg);
  EXPECT_THROW(system.trainEpisode(), std::logic_error);
}

TEST(VectorEnvSchedule, GreedyEvaluationDoesNotTrain) {
  core::DqnDockingConfig cfg = fastRawConfig();
  cfg.vectorEnvs = 3;
  cfg.trainer.episodes = 3;
  core::DqnDocking system(cfg);
  system.train();
  const std::size_t stepsBefore = system.trainer().globalStep();
  const rl::EpisodeRecord eval = system.evaluateGreedy();
  EXPECT_GT(eval.steps, 0u);
  EXPECT_DOUBLE_EQ(eval.epsilon, 0.0);
  EXPECT_EQ(system.trainer().globalStep(), stepsBefore);
  EXPECT_EQ(system.metrics().size(), 3u);
}

TEST(VectorEnvSchedule, InvalidCombinationsRejected) {
  core::DqnDockingConfig compact = fastRawConfig();
  compact.vectorEnvs = 2;
  compact.compactReplay = true;
  EXPECT_THROW(core::DqnDocking{compact}, std::invalid_argument);

  core::DqnDockingConfig nstep = fastRawConfig();
  nstep.vectorEnvs = 2;
  nstep.nStep = 3;
  EXPECT_THROW(core::DqnDocking{nstep}, std::invalid_argument);

  // V=1 with n-step is a single stream and stays legal.
  core::DqnDockingConfig ok = fastRawConfig();
  ok.vectorEnvs = 1;
  ok.nStep = 2;
  ok.trainer.episodes = 2;
  EXPECT_NO_THROW(core::DqnDocking{ok});
}

// --- DockingVectorEnv unit behaviour -----------------------------------

TEST(DockingVectorEnvTest, BatchedStepMatchesScalarScoresClosely) {
  const chem::Scenario scenario = chem::buildScenario(chem::ScenarioSpec::tiny());
  metadock::EnvConfig envCfg;
  envCfg.maxSteps = 50;
  const core::StateEncoder encoder(scenario, core::StateMode::kLigandPositions);

  const std::size_t v = 5;
  core::DockingVectorEnv venv(scenario, envCfg, encoder, v);
  metadock::DockingEnv scalar(scenario, envCfg);

  nn::Tensor states(v, encoder.dim());
  nn::Tensor nextStates(v, encoder.dim());
  for (std::size_t i = 0; i < v; ++i) venv.reset(i, states.row(i));

  std::vector<int> actions(v);
  std::vector<rl::EnvStep> results(v);
  for (std::size_t i = 0; i < v; ++i) actions[i] = static_cast<int>(i % 12);
  venv.step(actions, nextStates, results);
  EXPECT_EQ(venv.batchedSteps(), 1u);

  // Each env's committed score agrees with an independent scalar env
  // taking the same action (batched kernel tolerance).
  for (std::size_t i = 0; i < v; ++i) {
    scalar.reset();
    const metadock::StepResult r = scalar.step(actions[i]);
    EXPECT_NEAR(venv.env(i).score(), r.score, 1e-9 * std::max(1.0, std::abs(r.score)));
    EXPECT_EQ(results[i].terminal, r.terminal);
  }
}

TEST(DockingVectorEnvTest, ShapeValidation) {
  const chem::Scenario scenario = chem::buildScenario(chem::ScenarioSpec::tiny());
  const core::StateEncoder encoder(scenario, core::StateMode::kLigandPositions);
  core::DockingVectorEnv venv(scenario, {}, encoder, 2);
  nn::Tensor states(2, encoder.dim());
  venv.reset(0, states.row(0));
  venv.reset(1, states.row(1));

  std::vector<int> wrongActions(3, 0);
  std::vector<rl::EnvStep> results(2);
  nn::Tensor next(2, encoder.dim());
  EXPECT_THROW(venv.step(wrongActions, next, results), std::invalid_argument);
  nn::Tensor badShape(3, encoder.dim());
  std::vector<int> actions(2, 0);
  EXPECT_THROW(venv.step(actions, badShape, results), std::invalid_argument);
  EXPECT_THROW(core::DockingVectorEnv(scenario, {}, encoder, 0), std::invalid_argument);
}

// --- LockstepVectorEnv over scalar Environments ------------------------

TEST(LockstepVectorEnvTest, SequentialSemanticsAndNoBatching) {
  std::vector<std::unique_ptr<rl::Environment>> envs;
  for (int i = 0; i < 3; ++i) envs.push_back(std::make_unique<rl::CorridorEnv>(6, 32));
  rl::LockstepVectorEnv venv(std::move(envs));
  EXPECT_EQ(venv.size(), 3u);
  EXPECT_EQ(venv.stateDim(), 6u);
  EXPECT_EQ(venv.actionCount(), 2);

  nn::Tensor states(3, 6);
  nn::Tensor next(3, 6);
  for (std::size_t i = 0; i < 3; ++i) venv.reset(i, states.row(i));
  std::vector<int> actions = {1, 1, 0};
  std::vector<rl::EnvStep> results(3);
  venv.step(actions, next, results);
  EXPECT_EQ(venv.batchedSteps(), 0u);  // per-env stepping, nothing batched
  EXPECT_EQ(venv.score(0), 1.0);           // walked right
  EXPECT_EQ(results[2].reward, -1.0);      // stepped off the left edge
  EXPECT_TRUE(results[2].terminal);
}

TEST(LockstepVectorEnvTest, VectorizedTrainerLearnsCorridor) {
  // The full vectorized schedule over a generic (non-docking) VectorEnv.
  std::vector<std::unique_ptr<rl::Environment>> envs;
  for (int i = 0; i < 4; ++i) envs.push_back(std::make_unique<rl::CorridorEnv>(5, 40));
  rl::LockstepVectorEnv venv(std::move(envs));

  rl::DqnConfig agentCfg;
  agentCfg.hiddenSizes = {16};
  agentCfg.targetSyncInterval = 50;
  Rng initRng(3);
  rl::DqnAgent agent(venv.stateDim(), venv.actionCount(), agentCfg, initRng);
  rl::ReplayBuffer replay(2000, venv.stateDim());
  rl::TrainerConfig trainCfg;
  trainCfg.episodes = 120;
  trainCfg.learningStart = 100;
  trainCfg.epsilon = rl::EpsilonSchedule(1.0, 0.05, 1e-3, 100);
  trainCfg.seed = 3;
  rl::Trainer trainer(venv, agent, replay, replay, trainCfg);
  trainer.run();
  ASSERT_EQ(trainer.metrics().size(), 120u);

  // Greedy policy should have learned to walk right to the goal.
  const rl::EpisodeRecord greedy = trainer.evaluateGreedy();
  EXPECT_GT(greedy.totalReward, 0.0);
}

}  // namespace
}  // namespace dqndock
