// Cross-module property sweeps: randomized invariants spanning the I/O,
// geometry and scoring layers, parameterized over seeds (TEST_P).

#include <gtest/gtest.h>

#include <sstream>

#include "src/chem/kabsch.hpp"
#include "src/chem/mol2_io.hpp"
#include "src/chem/pdb_io.hpp"
#include "src/chem/smiles.hpp"
#include "src/chem/synthetic.hpp"
#include "src/chem/xyz_io.hpp"
#include "src/metadock/scoring.hpp"

namespace dqndock {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, XyzRoundTripsRandomLigandExactly) {
  Rng rng(GetParam());
  const chem::Molecule original = chem::buildLigand(10 + rng.uniformInt(30), 3, rng);
  std::stringstream ss;
  chem::writeXyz(ss, original, "sweep");
  const chem::Molecule parsed = chem::readXyz(ss);
  ASSERT_EQ(parsed.atomCount(), original.atomCount());
  for (std::size_t i = 0; i < original.atomCount(); ++i) {
    EXPECT_EQ(parsed.element(i), original.element(i));
    EXPECT_NEAR(distance(parsed.position(i), original.position(i)), 0.0, 1e-8);
    EXPECT_NEAR(parsed.charge(i), original.charge(i), 1e-8);
  }
}

TEST_P(SeedSweep, Mol2RoundTripsRandomLigandTopology) {
  Rng rng(GetParam() + 100);
  const chem::Molecule original = chem::buildLigand(10 + rng.uniformInt(25), 2, rng);
  std::stringstream ss;
  chem::writeMol2(ss, original);
  const chem::Molecule parsed = chem::readMol2(ss);
  ASSERT_EQ(parsed.atomCount(), original.atomCount());
  ASSERT_EQ(parsed.bondCount(), original.bondCount());
  for (std::size_t b = 0; b < original.bondCount(); ++b) {
    EXPECT_EQ(parsed.bonds()[b].a, original.bonds()[b].a);
    EXPECT_EQ(parsed.bonds()[b].b, original.bonds()[b].b);
  }
}

TEST_P(SeedSweep, PdbRoundTripsRandomLigandToCoordinatePrecision) {
  Rng rng(GetParam() + 200);
  const chem::Molecule original = chem::buildLigand(8 + rng.uniformInt(20), 2, rng);
  std::stringstream ss;
  chem::writePdb(ss, original);
  const chem::Molecule parsed = chem::readPdb(ss);
  ASSERT_EQ(parsed.atomCount(), original.atomCount());
  ASSERT_EQ(parsed.bondCount(), original.bondCount());
  for (std::size_t i = 0; i < original.atomCount(); ++i) {
    // PDB writes %8.3f coordinates.
    EXPECT_NEAR(distance(parsed.position(i), original.position(i)), 0.0, 2e-3);
  }
}

TEST_P(SeedSweep, KabschRealignsRandomLigandConformations) {
  Rng rng(GetParam() + 300);
  const chem::Molecule lig = chem::buildLigand(15, 2, rng);
  std::vector<Vec3> mobile(lig.positions().begin(), lig.positions().end());
  const Mat3 rot = Quat::fromAxisAngle(rng.unitVector<Vec3>(), rng.uniform(-3, 3)).toMatrix();
  const Vec3 shift{rng.gaussian(0, 20), rng.gaussian(0, 20), rng.gaussian(0, 20)};
  std::vector<Vec3> target;
  for (const auto& p : mobile) target.push_back(rot * p + shift);
  EXPECT_NEAR(chem::alignedRmsd(mobile, target), 0.0, 1e-7);
}

TEST_P(SeedSweep, ScoringInvariantUnderRigidMotionOfComplex) {
  Rng rng(GetParam() + 400);
  chem::ScenarioSpec spec = chem::ScenarioSpec::tiny();
  spec.seed = GetParam() + 1;
  const chem::Scenario base = chem::buildScenario(spec);

  const Mat3 rot = Quat::fromAxisAngle(rng.unitVector<Vec3>(), rng.uniform(-2, 2)).toMatrix();
  const Vec3 shift{rng.gaussian(0, 8), rng.gaussian(0, 8), rng.gaussian(0, 8)};

  chem::Molecule movedReceptor = base.receptor;
  movedReceptor.rotateAbout(Vec3{}, rot);
  movedReceptor.translate(shift);
  chem::Molecule movedLigand = base.ligand;
  movedLigand.rotateAbout(Vec3{}, rot);
  movedLigand.translate(shift);

  metadock::ScoringOptions opts;
  opts.cutoff = 0.0;
  opts.useGrid = false;

  metadock::ReceptorModel r1(base.receptor, 0.0);
  metadock::LigandModel l1(base.ligand);
  metadock::ScoringFunction s1(r1, l1, opts);
  metadock::ReceptorModel r2(movedReceptor, 0.0);
  metadock::LigandModel l2(movedLigand);
  metadock::ScoringFunction s2(r2, l2, opts);

  const double a = s1.scorePose(l1.restPose());
  const double b = s2.scorePose(l2.restPose());
  EXPECT_NEAR(a, b, std::max(1e-7, std::fabs(a) * 1e-9));
}

TEST_P(SeedSweep, SmilesEmbeddingAlwaysValidates) {
  // Random tree-shaped SMILES built from a tiny grammar.
  Rng rng(GetParam() + 500);
  std::string smiles = "C";
  const char* atoms[] = {"C", "N", "O", "C", "C"};
  int open = 0;
  for (int i = 0; i < 12; ++i) {
    const double u = rng.uniform();
    if (u < 0.2 && open < 3) {
      smiles += "(";
      ++open;
    } else if (u < 0.3 && open > 0) {
      smiles += ")";
      --open;
    }
    if (smiles.back() == ')') continue;  // next must be an atom or branch
    smiles += atoms[rng.uniformInt(5)];
  }
  while (open-- > 0) smiles += ")";
  // Closing parens may leave a trailing "()"; sanitize.
  std::string clean;
  for (std::size_t i = 0; i < smiles.size(); ++i) {
    if (smiles[i] == '(' && i + 1 < smiles.size() && smiles[i + 1] == ')') {
      ++i;
      continue;
    }
    clean += smiles[i];
  }
  const chem::Molecule mol = chem::moleculeFromSmiles(clean, GetParam());
  EXPECT_NO_THROW(mol.validate());
  EXPECT_GE(mol.atomCount(), 1u);
  EXPECT_EQ(mol.bondCount(), mol.atomCount() - 1);  // tree
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace dqndock
