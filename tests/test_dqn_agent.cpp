// Tests for the DQN agent: action selection, learning updates, target
// synchronization and the Double-DQN / dueling variants.

#include <gtest/gtest.h>

#include <cmath>

#include "src/rl/dqn_agent.hpp"

namespace dqndock::rl {
namespace {

DqnConfig smallConfig() {
  DqnConfig cfg;
  cfg.hiddenSizes = {16, 16};
  cfg.batchSize = 8;
  cfg.targetSyncInterval = 10;
  cfg.optimizer = "adam";
  cfg.learningRate = 0.005;
  return cfg;
}

/// A tiny fixed experience source: one state, action 0 always yields
/// reward 1 into a terminal state, action 1 yields 0.
class FixedSource final : public ExperienceSource {
 public:
  explicit FixedSource(std::size_t dim) : dim_(dim) {}
  std::size_t size() const override { return 1000; }
  Minibatch sample(std::size_t batch, Rng& rng) const override {
    Minibatch mb;
    mb.states.resize(batch, dim_);
    mb.nextStates.resize(batch, dim_);
    mb.actions.resize(batch);
    mb.rewards.resize(batch);
    mb.terminals.resize(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      mb.states(b, 0) = 1.0;
      mb.nextStates(b, 0) = 1.0;
      const bool good = rng.bernoulli(0.5);
      mb.actions[b] = good ? 0 : 1;
      mb.rewards[b] = good ? 1.0 : 0.0;
      mb.terminals[b] = 1;  // terminal: target is the raw reward
    }
    return mb;
  }

 private:
  std::size_t dim_;
};

TEST(DqnAgentTest, ConstructionValidation) {
  Rng rng(1);
  EXPECT_THROW(DqnAgent(4, 0, smallConfig(), rng), std::invalid_argument);
  DqnAgent agent(4, 3, smallConfig(), rng);
  EXPECT_EQ(agent.stateDim(), 4u);
  EXPECT_EQ(agent.actionCount(), 3);
}

TEST(DqnAgentTest, StateDimMismatchThrows) {
  Rng rng(2);
  DqnAgent agent(4, 3, smallConfig(), rng);
  std::vector<double> wrong(5, 0.0);
  EXPECT_THROW(agent.qValues(wrong), std::invalid_argument);
}

TEST(DqnAgentTest, GreedyPicksArgmax) {
  Rng rng(3);
  DqnAgent agent(4, 3, smallConfig(), rng);
  const std::vector<double> s{0.5, -0.5, 1.0, 0.0};
  const auto q = agent.qValues(s);
  const int greedy = agent.greedyAction(s);
  for (double v : q) EXPECT_LE(v, q[static_cast<std::size_t>(greedy)]);
  EXPECT_DOUBLE_EQ(agent.maxQ(s), q[static_cast<std::size_t>(greedy)]);
}

TEST(DqnAgentTest, EpsilonZeroIsGreedyEpsilonOneIsRandom) {
  Rng rng(4);
  DqnAgent agent(4, 4, smallConfig(), rng);
  const std::vector<double> s{1, 2, 3, 4};
  const int greedy = agent.greedyAction(s);
  Rng actRng(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(agent.selectAction(s, 0.0, actRng), greedy);
  }
  // With epsilon 1, all actions appear.
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 400; ++i) ++seen[static_cast<std::size_t>(agent.selectAction(s, 1.0, actRng))];
  for (int a = 0; a < 4; ++a) EXPECT_GT(seen[static_cast<std::size_t>(a)], 0);
}

TEST(DqnAgentTest, LearnNoopWhenSourceTooSmall) {
  Rng rng(6);
  DqnAgent agent(2, 2, smallConfig(), rng);
  ReplayBuffer rb(100, 2);
  const std::vector<double> zero{0.0, 0.0};
  rb.push(zero, 0, 0, zero, false);  // 1 < batchSize
  EXPECT_DOUBLE_EQ(agent.learn(rb, rng), 0.0);
  EXPECT_EQ(agent.learnSteps(), 0u);
}

TEST(DqnAgentTest, LearningDrivesQTowardTargets) {
  Rng rng(7);
  DqnConfig cfg = smallConfig();
  cfg.gamma = 0.9;
  DqnAgent agent(2, 2, cfg, rng);
  FixedSource source(2);
  const std::vector<double> s{1.0, 0.0};
  for (int i = 0; i < 600; ++i) agent.learn(source, rng);
  const auto q = agent.qValues(s);
  // Terminal targets: Q(s, 0) -> 1, Q(s, 1) -> 0.
  EXPECT_NEAR(q[0], 1.0, 0.15);
  EXPECT_NEAR(q[1], 0.0, 0.15);
  EXPECT_EQ(agent.greedyAction(s), 0);
}

TEST(DqnAgentTest, TargetSyncHappensEveryC) {
  Rng rng(8);
  DqnConfig cfg = smallConfig();
  cfg.targetSyncInterval = 5;
  DqnAgent agent(2, 2, cfg, rng);
  FixedSource source(2);
  nn::Tensor x(1, 2);
  x(0, 0) = 1.0;
  // After 4 learn steps, target still differs from online (online moved).
  for (int i = 0; i < 4; ++i) agent.learn(source, rng);
  nn::Tensor qOnline, qTarget;
  agent.online().predict(x, qOnline);
  agent.target().predict(x, qTarget);
  const double diffBefore = std::fabs(qOnline(0, 0) - qTarget(0, 0)) +
                            std::fabs(qOnline(0, 1) - qTarget(0, 1));
  EXPECT_GT(diffBefore, 1e-9);
  // The 5th step triggers the sync.
  agent.learn(source, rng);
  agent.online().predict(x, qOnline);
  agent.target().predict(x, qTarget);
  for (std::size_t i = 0; i < qOnline.size(); ++i) {
    EXPECT_DOUBLE_EQ(qOnline.flat()[i], qTarget.flat()[i]);
  }
}

TEST(DqnAgentTest, ManualSyncTarget) {
  Rng rng(9);
  DqnAgent agent(2, 2, smallConfig(), rng);
  FixedSource source(2);
  agent.learn(source, rng);
  agent.syncTarget();
  nn::Tensor x(1, 2, 0.5), qOnline, qTarget;
  agent.online().predict(x, qOnline);
  agent.target().predict(x, qTarget);
  for (std::size_t i = 0; i < qOnline.size(); ++i) {
    EXPECT_DOUBLE_EQ(qOnline.flat()[i], qTarget.flat()[i]);
  }
}

class VariantTest : public ::testing::TestWithParam<std::tuple<DqnVariant, bool>> {};

TEST_P(VariantTest, AllVariantsLearnTheFixedProblem) {
  const auto [variant, dueling] = GetParam();
  Rng rng(10);
  DqnConfig cfg = smallConfig();
  cfg.variant = variant;
  cfg.dueling = dueling;
  DqnAgent agent(2, 2, cfg, rng);
  FixedSource source(2);
  const std::vector<double> s{1.0, 0.0};
  for (int i = 0; i < 600; ++i) agent.learn(source, rng);
  EXPECT_EQ(agent.greedyAction(s), 0)
      << dqnVariantName(variant) << (dueling ? "+dueling" : "");
}

INSTANTIATE_TEST_SUITE_P(
    Variants, VariantTest,
    ::testing::Values(std::tuple{DqnVariant::kVanilla, false},
                      std::tuple{DqnVariant::kDouble, false},
                      std::tuple{DqnVariant::kVanilla, true},
                      std::tuple{DqnVariant::kDouble, true}));

TEST(DqnAgentTest, VariantNames) {
  EXPECT_STREQ(dqnVariantName(DqnVariant::kVanilla), "dqn");
  EXPECT_STREQ(dqnVariantName(DqnVariant::kDouble), "double-dqn");
}

}  // namespace
}  // namespace dqndock::rl
