// Tests for connectivity analysis: components, rings, rotatable bonds,
// torsion partitioning and geometric bond perception.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/chem/topology.hpp"

namespace dqndock::chem {
namespace {

/// Butane-like chain: C0-C1-C2-C3 (the C1-C2 bond is the only rotatable
/// one once hydrogens are ignored... here all terminal bonds excluded).
Molecule chain4() {
  Molecule m;
  for (int i = 0; i < 4; ++i) m.addAtom(Element::C, Vec3{1.5 * i, 0, 0}, 0);
  m.addBond(0, 1);
  m.addBond(1, 2);
  m.addBond(2, 3);
  return m;
}

/// Cyclobutane-like ring of 4 atoms plus one tail atom.
Molecule ringWithTail() {
  Molecule m;
  m.addAtom(Element::C, Vec3{0, 0, 0}, 0);
  m.addAtom(Element::C, Vec3{1.5, 0, 0}, 0);
  m.addAtom(Element::C, Vec3{1.5, 1.5, 0}, 0);
  m.addAtom(Element::C, Vec3{0, 1.5, 0}, 0);
  m.addAtom(Element::C, Vec3{-1.5, 0, 0}, 0);  // tail
  m.addAtom(Element::C, Vec3{-3.0, 0, 0}, 0);  // tail end
  m.addBond(0, 1);
  m.addBond(1, 2);
  m.addBond(2, 3);
  m.addBond(3, 0);
  m.addBond(0, 4);
  m.addBond(4, 5);
  return m;
}

TEST(TopologyTest, DegreesAndNeighbors) {
  const Molecule m = chain4();
  Topology t(m);
  EXPECT_EQ(t.degree(0), 1);
  EXPECT_EQ(t.degree(1), 2);
  EXPECT_EQ(t.degree(2), 2);
  EXPECT_EQ(t.degree(3), 1);
  EXPECT_EQ(t.neighbors(1).size(), 2u);
}

TEST(TopologyTest, SingleConnectedComponent) {
  Topology t(chain4());
  int count = 0;
  const auto comp = t.connectedComponents(&count);
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(std::all_of(comp.begin(), comp.end(), [](int c) { return c == 0; }));
}

TEST(TopologyTest, DisconnectedComponents) {
  Molecule m;
  m.addAtom(Element::C, Vec3{0, 0, 0}, 0);
  m.addAtom(Element::C, Vec3{1.5, 0, 0}, 0);
  m.addAtom(Element::O, Vec3{10, 0, 0}, 0);
  m.addBond(0, 1);
  Topology t(m);
  int count = 0;
  const auto comp = t.connectedComponents(&count);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(TopologyTest, RingDetection) {
  const Molecule m = ringWithTail();
  Topology t(m);
  // Bonds 0..3 form the ring; bonds 4, 5 are the tail.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(t.bondInRing(m, i)) << "bond " << i;
  EXPECT_FALSE(t.bondInRing(m, 4));
  EXPECT_FALSE(t.bondInRing(m, 5));
}

TEST(TopologyTest, ChainHasNoRings) {
  const Molecule m = chain4();
  Topology t(m);
  for (std::size_t i = 0; i < m.bondCount(); ++i) EXPECT_FALSE(t.bondInRing(m, i));
}

TEST(TopologyTest, RotatableBondsInChain) {
  Molecule m = chain4();
  const auto rot = detectRotatableBonds(m);
  // Only the middle bond (1-2): bonds touching degree-1 atoms are terminal.
  ASSERT_EQ(rot.size(), 1u);
  EXPECT_EQ(rot[0], 1u);
  EXPECT_TRUE(m.bonds()[1].rotatable);
  EXPECT_FALSE(m.bonds()[0].rotatable);
}

TEST(TopologyTest, RingBondsNeverRotatable) {
  Molecule m = ringWithTail();
  const auto rot = detectRotatableBonds(m);
  for (auto idx : rot) {
    Topology t(m);
    EXPECT_FALSE(t.bondInRing(m, idx));
  }
  // The 0-4 bond is rotatable (degree(0)=3, degree(4)=2, not in ring).
  EXPECT_TRUE(m.bonds()[4].rotatable);
  // The 4-5 bond is terminal.
  EXPECT_FALSE(m.bonds()[5].rotatable);
}

TEST(TopologyTest, TorsionSidePartition) {
  const Molecule m = chain4();
  const auto moved = atomsMovedByTorsion(m, m.bonds()[1]);  // bond 1-2
  // Rotating about 1-2 moves atoms {2, 3}.
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_TRUE(std::find(moved.begin(), moved.end(), 2) != moved.end());
  EXPECT_TRUE(std::find(moved.begin(), moved.end(), 3) != moved.end());
}

TEST(TopologyTest, TorsionOnRingBondThrows) {
  const Molecule m = ringWithTail();
  EXPECT_THROW(atomsMovedByTorsion(m, m.bonds()[0]), std::invalid_argument);
}

TEST(TopologyTest, PerceiveBondsFromGeometry) {
  Molecule m;
  m.addAtom(Element::C, Vec3{0, 0, 0}, 0);
  m.addAtom(Element::C, Vec3{1.5, 0, 0}, 0);   // bonded (C-C ~1.54)
  m.addAtom(Element::C, Vec3{5.0, 0, 0}, 0);   // too far
  const std::size_t n = perceiveBonds(m);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(m.bonds()[0].a, 0);
  EXPECT_EQ(m.bonds()[0].b, 1);
}

TEST(TopologyTest, PerceiveBondsReplacesExisting) {
  Molecule m;
  m.addAtom(Element::C, Vec3{0, 0, 0}, 0);
  m.addAtom(Element::C, Vec3{10, 0, 0}, 0);
  m.addBond(0, 1);
  EXPECT_EQ(perceiveBonds(m), 0u);
  EXPECT_EQ(m.bondCount(), 0u);
}

TEST(TopologyTest, HydrogenAnchors) {
  Molecule m;
  m.addAtom(Element::O, Vec3{0, 0, 0}, -0.8);
  m.addAtom(Element::H, Vec3{0.96, 0, 0}, 0.4);
  m.addAtom(Element::H, Vec3{50, 0, 0}, 0.4);  // unbonded hydrogen
  m.addBond(0, 1);
  Topology t(m);
  const auto anchors = t.hydrogenAnchors(m);
  EXPECT_EQ(anchors[0], -1);  // not a hydrogen
  EXPECT_EQ(anchors[1], 0);
  EXPECT_EQ(anchors[2], -1);  // no bond
}

}  // namespace
}  // namespace dqndock::chem
