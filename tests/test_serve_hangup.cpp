// SIGPIPE regression tests (ISSUE satellite): a client that hangs up
// after sending a request — FIN or RST — must never kill the server.
// Before the fix, the server's reply write could raise SIGPIPE
// (default action: process death) on the ::write fallback path, and
// EPIPE surfaced as a generic transport error instead of the clean
// peer-hangup path. These tests run under the ASan/UBSan CI matrix.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>

#include "src/chem/synthetic.hpp"
#include "src/common/rng.hpp"
#include "src/serve/tcp.hpp"
#include "src/serve/wire.hpp"

namespace dqndock::serve {
namespace {

int connectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

void abortiveClose(int fd) {
  // SO_LINGER {on, 0}: close() sends RST, so the server's pending reply
  // write fails with EPIPE/ECONNRESET instead of buffering into a void.
  linger hard{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
  ::close(fd);
}

TEST(SigpipeHardeningTest, WriteToClosedPipeThrowsPeerClosedError) {
  // The pipe path takes the ::write fallback inside writeSome — exactly
  // where an unignored SIGPIPE would kill the process.
  ignoreSigpipe();
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);  // reader gone
  EXPECT_THROW(writeFrame(fds[1], "doomed payload"), PeerClosedError);
  ::close(fds[1]);
}

TEST(SigpipeHardeningTest, WriteToResetSocketThrowsPeerClosedError) {
  ignoreSigpipe();
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  ::close(pair[0]);
  // The first write may succeed into the buffer; EPIPE lands by the
  // second at the latest.
  try {
    writeFrame(pair[1], "first");
    writeFrame(pair[1], "second");
    FAIL() << "expected PeerClosedError writing to a closed socketpair";
  } catch (const PeerClosedError&) {
  }
  ::close(pair[1]);
}

/// Serving stack on loopback, mirroring test_serve_wire's fixture.
class HangupFixture : public ::testing::Test {
 protected:
  HangupFixture() : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())) {
    Rng rng(2024);
    const std::size_t dim = scenario_.ligand.atomCount() * 3;
    registry_ = std::make_unique<ModelRegistry>(
        std::make_unique<rl::MlpQNetwork>(dim, std::vector<std::size_t>{16}, 12, rng));
    ServiceOptions opts;
    opts.workers = 2;
    opts.queueCapacity = 8;
    opts.batcher.flushDeadline = std::chrono::microseconds(50);
    service_ = std::make_unique<DockingService>(scenario_, *registry_, opts);
    server_ = std::make_unique<TcpServer>(*service_, *registry_);
  }

  ~HangupFixture() override {
    server_->stop();
    service_->shutdown();
  }

  bool waitForHangupStat() const {
    for (int i = 0; i < 400 && server_->stats().peerHangups == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return server_->stats().peerHangups > 0;
  }

  chem::Scenario scenario_;
  std::unique_ptr<ModelRegistry> registry_;
  std::unique_ptr<DockingService> service_;
  std::unique_ptr<TcpServer> server_;
};

TEST_F(HangupFixture, ClientRstAfterDockRequestDoesNotKillServer) {
  // The regression scenario: send a DOCK (long enough that the reply is
  // still pending when the RST arrives), then vanish. The server's
  // sendMessage hits EPIPE/ECONNRESET; it must count a peer hangup and
  // keep serving — not die of SIGPIPE, not log a protocol error.
  {
    const int fd = connectLoopback(server_->port());
    Message dock{"DOCK", {}};
    dock.set("max_steps", 60L).set("seed", 9L);
    sendMessage(fd, dock);
    abortiveClose(fd);
  }
  EXPECT_TRUE(waitForHangupStat());
  EXPECT_EQ(server_->stats().peerHangups, 1u);

  // The follow-up exchange proves the listener and workers survived.
  TcpClient client(server_->port());
  EXPECT_EQ(client.request(Message{"PING", {}}).type, "OK");
  Message dock{"DOCK", {}};
  dock.set("max_steps", 3L);
  EXPECT_EQ(client.request(dock).type, "OK");
}

TEST_F(HangupFixture, FinAfterRequestIsAHangupNotAProtocolError) {
  // Orderly FIN (plain close) right after the request: by the time the
  // reply is computed the peer may be gone. Depending on timing the
  // write either succeeds into the kernel buffer or fails with EPIPE —
  // both must leave the server healthy, and a failure must not count
  // as malformed-peer "protocol error".
  {
    const int fd = connectLoopback(server_->port());
    Message dock{"DOCK", {}};
    dock.set("max_steps", 40L).set("seed", 4L);
    sendMessage(fd, dock);
    ::close(fd);
  }
  // Give the handler time to finish the dock and attempt the reply.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(server_->stats().protocolErrors, 0u);

  TcpClient client(server_->port());
  EXPECT_EQ(client.request(Message{"PING", {}}).type, "OK");
}

TEST_F(HangupFixture, ManyAbortingClientsLeaveServerServing) {
  // A small storm of rude clients: every reply write races an RST.
  for (int round = 0; round < 8; ++round) {
    const int fd = connectLoopback(server_->port());
    Message dock{"DOCK", {}};
    dock.set("max_steps", 25L).set("seed", static_cast<long>(round));
    sendMessage(fd, dock);
    abortiveClose(fd);
  }
  TcpClient client(server_->port());
  EXPECT_EQ(client.request(Message{"PING", {}}).type, "OK");
  const Message status = client.request(Message{"STATUS", {}});
  ASSERT_EQ(status.type, "OK");
}

}  // namespace
}  // namespace dqndock::serve
