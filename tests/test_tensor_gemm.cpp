// Tests for the tensor container and the three GEMM kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "src/common/rng.hpp"
#include "src/nn/gemm.hpp"
#include "src/nn/tensor.hpp"

namespace dqndock::nn {
namespace {

TEST(TensorTest, ConstructionAndIndexing) {
  Tensor t(2, 3, 1.5);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_DOUBLE_EQ(t(1, 2), 1.5);
  t(1, 2) = -4.0;
  EXPECT_DOUBLE_EQ(t(1, 2), -4.0);
}

TEST(TensorTest, RowSpan) {
  Tensor t(2, 3);
  t(1, 0) = 7;
  auto row = t.row(1);
  EXPECT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 7);
}

TEST(TensorTest, FillAndResize) {
  Tensor t(2, 2, 9.0);
  t.fill(0.5);
  for (double v : t.flat()) EXPECT_DOUBLE_EQ(v, 0.5);
  t.resize(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  for (double v : t.flat()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(TensorTest, ResizeOverwriteSkipsZeroFill) {
  Tensor t(2, 2, 9.0);
  // Same element count, new shape: contents are unspecified but the
  // dims must update and the storage stays valid to write through.
  t.resizeOverwrite(1, 4);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 4u);
  ASSERT_EQ(t.size(), 4u);
  for (std::size_t i = 0; i < t.size(); ++i) t.flat()[i] = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(t(0, 3), 3.0);
  // Growing still yields a well-formed buffer of the new size.
  t.resizeOverwrite(3, 5);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_EQ(t.size(), 15u);
  t.fill(1.25);
  for (double v : t.flat()) EXPECT_DOUBLE_EQ(v, 1.25);
}

// The zero-skip contract documented in gemm.hpp: an A element that is
// exactly 0.0 skips its whole B row, so non-finite values sitting
// behind zeroed (ReLU-dead) activations never reach the output as
// 0 x Inf = NaN.
TEST(GemmTest, ZeroSkipShieldsNonFiniteB) {
  Tensor a(1, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 3.0;
  Tensor b(2, 3, 1.0);
  b(0, 0) = std::numeric_limits<double>::infinity();
  b(0, 1) = std::numeric_limits<double>::quiet_NaN();
  Tensor c;
  gemmAB(a, b, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(c(0, 2), 3.0);

  Tensor at(2, 2);
  at(0, 1) = 1.0;  // column 0 of A is all zero
  at(1, 1) = 2.0;
  Tensor ct(2, 3, 0.0);
  gemmAtBAccum(at, b, ct);
  EXPECT_DOUBLE_EQ(ct(0, 0), 0.0);  // skipped: no NaN leak
  EXPECT_TRUE(std::isinf(ct(1, 0)));
}

TEST(TensorTest, Norms) {
  Tensor t(1, 2);
  t(0, 0) = 3;
  t(0, 1) = -4;
  EXPECT_DOUBLE_EQ(maxAbs(t), 4.0);
  EXPECT_DOUBLE_EQ(l2Norm(t), 5.0);
}

// Reference implementations for the property sweeps.
Tensor naiveABt(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.rows(); ++j)
      for (std::size_t k = 0; k < a.cols(); ++k) c(i, j) += a(i, k) * b(j, k);
  return c;
}

Tensor naiveAB(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j)
      for (std::size_t k = 0; k < a.cols(); ++k) c(i, j) += a(i, k) * b(k, j);
  return c;
}

Tensor randomTensor(std::size_t r, std::size_t c, Rng& rng) {
  Tensor t(r, c);
  for (double& v : t.flat()) v = rng.gaussian();
  return t;
}

void expectNear(const Tensor& a, const Tensor& b, double tol = 1e-10) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.flat()[i], b.flat()[i], tol);
  }
}

using Shape = std::tuple<int, int, int>;  // m, k, n

class GemmShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmShapeTest, ABtMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(1);
  const Tensor a = randomTensor(m, k, rng);
  const Tensor b = randomTensor(n, k, rng);
  Tensor c;
  gemmABt(a, b, c);
  expectNear(c, naiveABt(a, b));
}

TEST_P(GemmShapeTest, ABMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(2);
  const Tensor a = randomTensor(m, k, rng);
  const Tensor b = randomTensor(k, n, rng);
  Tensor c;
  gemmAB(a, b, c);
  expectNear(c, naiveAB(a, b));
}

TEST_P(GemmShapeTest, AtBAccumAccumulates) {
  const auto [m, k, n] = GetParam();
  Rng rng(3);
  const Tensor a = randomTensor(k, m, rng);
  const Tensor b = randomTensor(k, n, rng);
  Tensor c(m, n, 1.0);  // pre-filled: result must be 1 + A^T B
  gemmAtBAccum(a, b, c);
  Tensor at(m, k);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j) at(i, j) = a(j, i);
  Tensor expected = naiveAB(at, b);
  for (double& v : expected.flat()) v += 1.0;
  expectNear(c, expected);
}

TEST_P(GemmShapeTest, ParallelMatchesSerial) {
  const auto [m, k, n] = GetParam();
  ThreadPool pool(4);
  Rng rng(4);
  const Tensor a = randomTensor(m, k, rng);
  const Tensor b = randomTensor(n, k, rng);
  Tensor serial, parallel;
  gemmABt(a, b, serial, nullptr);
  gemmABt(a, b, parallel, &pool);
  expectNear(serial, parallel, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapeTest,
                         ::testing::Values(Shape{1, 1, 1}, Shape{2, 3, 4}, Shape{7, 5, 3},
                                           Shape{32, 135, 12}, Shape{64, 64, 64},
                                           Shape{1, 100, 1}));

TEST(GemmTest, DimensionMismatchThrows) {
  Tensor a(2, 3), b(2, 4), c;
  EXPECT_THROW(gemmABt(a, b, c), std::invalid_argument);
  EXPECT_THROW(gemmAB(a, b, c), std::invalid_argument);
  Tensor bad(1, 1);
  EXPECT_THROW(gemmAtBAccum(a, b, bad), std::invalid_argument);
}

}  // namespace
}  // namespace dqndock::nn
