// Tests for the categorical (C51) distributional DQN agent.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/rl/c51_agent.hpp"
#include "src/rl/corridor_env.hpp"
#include "src/rl/schedule.hpp"

namespace dqndock::rl {
namespace {

C51Config smallConfig() {
  C51Config cfg;
  cfg.hiddenSizes = {24};
  cfg.batchSize = 8;
  cfg.atoms = 21;
  cfg.vMin = -2.0;
  cfg.vMax = 2.0;
  cfg.optimizer = "adam";
  cfg.learningRate = 0.005;
  cfg.targetSyncInterval = 25;
  return cfg;
}

TEST(C51AgentTest, ConstructionValidation) {
  Rng rng(1);
  EXPECT_THROW(C51Agent(2, 0, smallConfig(), rng), std::invalid_argument);
  C51Config badAtoms = smallConfig();
  badAtoms.atoms = 1;
  EXPECT_THROW(C51Agent(2, 2, badAtoms, rng), std::invalid_argument);
  C51Config badRange = smallConfig();
  badRange.vMax = badRange.vMin;
  EXPECT_THROW(C51Agent(2, 2, badRange, rng), std::invalid_argument);
}

TEST(C51AgentTest, SupportSpansRangeUniformly) {
  Rng rng(2);
  C51Agent agent(2, 2, smallConfig(), rng);
  const auto& z = agent.support();
  ASSERT_EQ(z.size(), 21u);
  EXPECT_DOUBLE_EQ(z.front(), -2.0);
  EXPECT_DOUBLE_EQ(z.back(), 2.0);
  for (std::size_t i = 1; i < z.size(); ++i) {
    EXPECT_NEAR(z[i] - z[i - 1], 0.2, 1e-12);
  }
}

TEST(C51AgentTest, DistributionsAreNormalized) {
  Rng rng(3);
  C51Agent agent(3, 4, smallConfig(), rng);
  const std::vector<double> s{0.5, -0.5, 1.0};
  for (int a = 0; a < 4; ++a) {
    const auto dist = agent.distribution(s, a);
    ASSERT_EQ(dist.size(), 21u);
    const double sum = std::accumulate(dist.begin(), dist.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (double p : dist) EXPECT_GE(p, 0.0);
  }
  EXPECT_THROW(agent.distribution(s, 4), std::out_of_range);
}

TEST(C51AgentTest, ExpectedQWithinSupportBounds) {
  Rng rng(4);
  C51Agent agent(3, 4, smallConfig(), rng);
  const std::vector<double> s{1.0, 2.0, -1.0};
  const auto q = agent.expectedQ(s);
  for (double v : q) {
    EXPECT_GE(v, -2.0);
    EXPECT_LE(v, 2.0);
  }
  EXPECT_DOUBLE_EQ(agent.maxQ(s), *std::max_element(q.begin(), q.end()));
}

TEST(C51AgentTest, LearnsTerminalRewardDistribution) {
  // Fixed problem: action 0 always pays +1 terminally, action 1 pays 0.
  Rng rng(5);
  C51Agent agent(2, 2, smallConfig(), rng);
  ReplayBuffer rb(512, 2);
  const std::vector<double> s{1.0, 0.0};
  for (int i = 0; i < 256; ++i) {
    const bool good = i % 2 == 0;
    rb.push(s, good ? 0 : 1, good ? 1.0 : 0.0, s, true);
  }
  for (int i = 0; i < 800; ++i) agent.learn(rb, rng);

  const auto q = agent.expectedQ(s);
  EXPECT_NEAR(q[0], 1.0, 0.25);
  EXPECT_NEAR(q[1], 0.0, 0.25);
  EXPECT_EQ(agent.greedyAction(s), 0);

  // The learned distribution for action 0 must concentrate near +1.
  const auto dist = agent.distribution(s, 0);
  const auto& z = agent.support();
  double massNearOne = 0.0;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    if (std::fabs(z[i] - 1.0) < 0.35) massNearOne += dist[i];
  }
  EXPECT_GT(massNearOne, 0.5);
}

TEST(C51AgentTest, TargetSyncCadence) {
  Rng rng(6);
  C51Config cfg = smallConfig();
  cfg.targetSyncInterval = 5;
  C51Agent agent(2, 2, cfg, rng);
  ReplayBuffer rb(64, 2);
  const std::vector<double> s{1.0, 0.0};
  for (int i = 0; i < 32; ++i) rb.push(s, 0, 1.0, s, true);
  for (int i = 0; i < 12; ++i) agent.learn(rb, rng);
  EXPECT_EQ(agent.learnSteps(), 12u);
}

TEST(C51AgentTest, SolvesCorridor) {
  CorridorEnv env(6, 40);
  Rng rng(7);
  C51Config cfg = smallConfig();
  cfg.gamma = 0.95;
  C51Agent agent(env.stateDim(), env.actionCount(), cfg, rng);
  ReplayBuffer replay(5000, env.stateDim());
  EpsilonSchedule eps(1.0, 0.05, 2e-3, 200);

  std::vector<double> state, next;
  std::size_t step = 0;
  for (int episode = 0; episode < 250; ++episode) {
    env.reset(state);
    bool terminal = false;
    while (!terminal) {
      const int action = agent.selectAction(state, eps.value(step), rng);
      const EnvStep r = env.step(action, next);
      replay.push(state, action, r.reward, next, r.terminal);
      state = next;
      terminal = r.terminal;
      ++step;
      if (step > 200) agent.learn(replay, rng);
    }
  }

  // Greedy policy reaches the goal.
  int successes = 0;
  for (int trial = 0; trial < 5; ++trial) {
    env.reset(state);
    double total = 0.0;
    for (int t = 0; t < 40; ++t) {
      const EnvStep r = env.step(agent.greedyAction(state), next);
      total += r.reward;
      state = next;
      if (r.terminal) break;
    }
    if (total > 0.5) ++successes;
  }
  EXPECT_GE(successes, 4);
}

}  // namespace
}  // namespace dqndock::rl
