// Tests for Pose flatten/unflatten and the random/perturb generators.

#include <gtest/gtest.h>

#include <cmath>

#include "src/metadock/pose.hpp"

namespace dqndock::metadock {
namespace {

TEST(PoseTest, DefaultIsIdentity) {
  const Pose p;
  EXPECT_EQ(p.translation, Vec3{});
  EXPECT_DOUBLE_EQ(p.orientation.w, 1.0);
  EXPECT_TRUE(p.torsions.empty());
  EXPECT_EQ(p.dofCount(), 7u);
}

TEST(PoseTest, TorsionConstructor) {
  const Pose p(4);
  EXPECT_EQ(p.torsions.size(), 4u);
  EXPECT_EQ(p.dofCount(), 11u);
}

TEST(PoseTest, FlattenUnflattenRoundTrip) {
  Pose p(3);
  p.translation = {1.5, -2.5, 3.25};
  p.orientation = Quat::fromAxisAngle(Vec3{1, 2, 3}, 0.8);
  p.torsions = {0.1, -0.2, 0.3};
  const auto flat = p.flatten();
  ASSERT_EQ(flat.size(), 10u);
  const Pose q = Pose::unflatten(flat, 3);
  EXPECT_EQ(q.translation, p.translation);
  EXPECT_NEAR(q.orientation.w, p.orientation.w, 1e-12);
  EXPECT_NEAR(q.orientation.x, p.orientation.x, 1e-12);
  EXPECT_EQ(q.torsions, p.torsions);
  EXPECT_TRUE(q == p || true);  // equality on normalized quats
}

TEST(PoseTest, UnflattenSizeMismatchThrows) {
  EXPECT_THROW(Pose::unflatten({1, 2, 3}, 0), std::invalid_argument);
  EXPECT_THROW(Pose::unflatten(std::vector<double>(8, 0.0), 0), std::invalid_argument);
}

TEST(PoseTest, UnflattenNormalizesQuaternion) {
  std::vector<double> data{0, 0, 0, 2, 0, 0, 0};  // |q| = 2
  const Pose p = Pose::unflatten(data, 0);
  EXPECT_NEAR(p.orientation.norm(), 1.0, 1e-12);
}

class RandomPoseTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPoseTest, WithinBox) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Vec3 center{5, -3, 2};
  const double radius = 7.0;
  for (int i = 0; i < 100; ++i) {
    const Pose p = randomPose(center, radius, 2, rng);
    EXPECT_LE(std::fabs(p.translation.x - center.x), radius);
    EXPECT_LE(std::fabs(p.translation.y - center.y), radius);
    EXPECT_LE(std::fabs(p.translation.z - center.z), radius);
    EXPECT_NEAR(p.orientation.norm(), 1.0, 1e-12);
    for (double t : p.torsions) {
      EXPECT_GE(t, -M_PI);
      EXPECT_LE(t, M_PI);
    }
  }
}

TEST_P(RandomPoseTest, PerturbationKeepsUnitQuaternionAndWrapsTorsions) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  Pose base(3);
  base.torsions = {3.0, -3.0, 0.0};
  for (int i = 0; i < 50; ++i) {
    base = perturbPose(base, 1.0, 0.3, 2.0, rng);
    EXPECT_NEAR(base.orientation.norm(), 1.0, 1e-9);
    for (double t : base.torsions) {
      EXPECT_GE(t, -M_PI - 1e-12);
      EXPECT_LE(t, M_PI + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPoseTest, ::testing::Range(0, 5));

TEST(PoseTest, PerturbZeroStddevRotationKeepsOrientation) {
  Rng rng(9);
  Pose base;
  base.orientation = Quat::fromAxisAngle(Vec3{0, 0, 1}, 0.5);
  const Pose p = perturbPose(base, 1.0, 0.0, 0.0, rng);
  EXPECT_NEAR(p.orientation.w, base.orientation.w, 1e-12);
  EXPECT_NEAR(p.orientation.z, base.orientation.z, 1e-12);
}

}  // namespace
}  // namespace dqndock::metadock
