// Tests for parallel tempering (replica exchange) docking.

#include <gtest/gtest.h>

#include "src/chem/synthetic.hpp"
#include "src/metadock/tempering.hpp"

namespace dqndock::metadock {
namespace {

class TemperingFixture : public ::testing::Test {
 protected:
  TemperingFixture()
      : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())),
        receptor_(scenario_.receptor, 12.0),
        ligand_(scenario_.ligand),
        scoring_(receptor_, ligand_, {}),
        evaluator_(scoring_, nullptr) {}

  chem::Scenario scenario_;
  ReceptorModel receptor_;
  LigandModel ligand_;
  ScoringFunction scoring_;
  PoseEvaluator evaluator_;
};

TEST_F(TemperingFixture, ConstructionValidation) {
  TemperingParams bad;
  bad.replicas = 1;
  EXPECT_THROW(ParallelTempering(evaluator_, bad), std::invalid_argument);
  TemperingParams badT;
  badT.temperatureMax = badT.temperatureMin;
  EXPECT_THROW(ParallelTempering(evaluator_, badT), std::invalid_argument);
}

TEST_F(TemperingFixture, LadderIsGeometricAndOrdered) {
  TemperingParams params;
  params.replicas = 5;
  params.temperatureMin = 2.0;
  params.temperatureMax = 32.0;
  ParallelTempering pt(evaluator_, params);
  const auto& ladder = pt.ladder();
  ASSERT_EQ(ladder.size(), 5u);
  EXPECT_DOUBLE_EQ(ladder.front(), 2.0);
  EXPECT_NEAR(ladder.back(), 32.0, 1e-9);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_NEAR(ladder[i] / ladder[i - 1], 2.0, 1e-9);  // geometric ratio
  }
}

TEST_F(TemperingFixture, HistoryMonotoneAndBudgetRespected) {
  TemperingParams params;
  params.maxEvaluations = 1500;
  ParallelTempering pt(evaluator_, params);
  Rng rng(3);
  const TemperingResult result = pt.run(rng);
  ASSERT_FALSE(result.history.empty());
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i], result.history[i - 1]);
  }
  EXPECT_GE(result.evaluations, 1500u);
  EXPECT_LT(result.evaluations, 3000u);  // bounded overshoot (one round)
  EXPECT_EQ(result.history.back(), result.best.score);
}

TEST_F(TemperingFixture, SwapsHappen) {
  TemperingParams params;
  params.maxEvaluations = 2000;
  ParallelTempering pt(evaluator_, params);
  Rng rng(5);
  const TemperingResult result = pt.run(rng);
  EXPECT_GT(result.swapsProposed, 0u);
  EXPECT_GT(result.swapsAccepted, 0u);
  EXPECT_LE(result.swapsAccepted, result.swapsProposed);
}

TEST_F(TemperingFixture, DeterministicInSeed) {
  TemperingParams params;
  params.maxEvaluations = 1000;
  ParallelTempering a(evaluator_, params);
  Rng rngA(7);
  const auto ra = a.run(rngA);
  ParallelTempering b(evaluator_, params);
  Rng rngB(7);
  const auto rb = b.run(rngB);
  EXPECT_DOUBLE_EQ(ra.best.score, rb.best.score);
  EXPECT_EQ(ra.swapsAccepted, rb.swapsAccepted);
}

TEST_F(TemperingFixture, ImprovesOverTheRestPose) {
  TemperingParams params;
  params.maxEvaluations = 3000;
  ParallelTempering pt(evaluator_, params);
  Rng rng(9);
  const double restScore = scoring_.scorePose(ligand_.restPose());
  const TemperingResult result = pt.runFrom(ligand_.restPose(), rng);
  EXPECT_GT(result.best.score, restScore);
}

}  // namespace
}  // namespace dqndock::metadock
