// Static-prefix factorization suite: folded forward/backward must stay
// within 1e-12 relative of the unfolded network, be bit-deterministic
// across thread pools and runs, and the fold cache must be invalidated
// by every weight-mutation path in the codebase (optimizer step, target
// sync, copyWeightsFrom, checkpoint restore, registry hot-swap). The
// DQNDOCK_FOLD_STATIC gate grammar is pinned here too.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/nn/mlp.hpp"
#include "src/nn/optimizer.hpp"
#include "src/rl/checkpoint.hpp"
#include "src/rl/dqn_agent.hpp"
#include "src/rl/qnetwork.hpp"
#include "src/rl/replay_buffer.hpp"
#include "src/serve/model_registry.hpp"

namespace dqndock {
namespace {

constexpr double kTol = 1e-12;

double maxRelDiff(const nn::Tensor& a, const nn::Tensor& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double denom = std::max({std::abs(a.data()[i]), std::abs(b.data()[i]), 1.0});
    worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]) / denom);
  }
  return worst;
}

std::vector<double> makePrefix(std::size_t s, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> prefix(s);
  for (double& v : prefix) v = rng.uniform() * 2.0 - 1.0;
  return prefix;
}

/// Batch whose leading prefix.size() columns hold the configured static
/// values — the contract every folded caller upholds.
nn::Tensor makeStates(std::size_t batch, std::size_t dim, const std::vector<double>& prefix,
                      std::uint64_t seed) {
  Rng rng(seed);
  nn::Tensor x(batch, dim);
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      x(r, c) = c < prefix.size() ? prefix[c] : rng.uniform() * 2.0 - 1.0;
    }
  }
  return x;
}

nn::Tensor dynamicSuffix(const nn::Tensor& x, std::size_t s) {
  nn::Tensor xd(x.rows(), x.cols() - s);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = s; c < x.cols(); ++c) xd(r, c - s) = x(r, c);
  }
  return xd;
}

/// Identically-initialised pair: twin(0) folded, twin(1) plain.
struct MlpTwins {
  MlpTwins(std::vector<std::size_t> dims, const std::vector<double>& prefix,
           ThreadPool* pool = nullptr)
      : folded(makeNet(dims, pool)), plain(makeNet(dims, pool)) {
    EXPECT_TRUE(folded.configureStaticPrefix(prefix));
  }
  static nn::Mlp makeNet(const std::vector<std::size_t>& dims, ThreadPool* pool) {
    Rng rng(2024);
    return nn::Mlp(dims, rng, pool);
  }
  nn::Mlp folded;
  nn::Mlp plain;
};

TEST(FoldStaticGate, ParsesEnvValues) {
  const char* old = std::getenv("DQNDOCK_FOLD_STATIC");
  const std::string saved = old != nullptr ? old : "";
  const bool hadOld = old != nullptr;

  ::unsetenv("DQNDOCK_FOLD_STATIC");
  EXPECT_TRUE(nn::foldStaticEnabled());  // default on
  for (const char* on : {"", "on", "1", "true"}) {
    ::setenv("DQNDOCK_FOLD_STATIC", on, 1);
    EXPECT_TRUE(nn::foldStaticEnabled()) << "value: '" << on << "'";
  }
  for (const char* off : {"off", "0", "false"}) {
    ::setenv("DQNDOCK_FOLD_STATIC", off, 1);
    EXPECT_FALSE(nn::foldStaticEnabled()) << "value: '" << off << "'";
  }
  ::setenv("DQNDOCK_FOLD_STATIC", "sideways", 1);
  EXPECT_THROW(nn::foldStaticEnabled(), std::invalid_argument);

  if (hadOld) {
    ::setenv("DQNDOCK_FOLD_STATIC", saved.c_str(), 1);
  } else {
    ::unsetenv("DQNDOCK_FOLD_STATIC");
  }
}

TEST(FoldStatic, RejectsDegeneratePrefixes) {
  Rng rng(5);
  nn::Mlp net({10, 8, 3}, rng);
  EXPECT_FALSE(net.configureStaticPrefix({}));
  EXPECT_FALSE(net.configureStaticPrefix(std::vector<double>(10, 0.5)));  // whole input
  EXPECT_FALSE(net.configureStaticPrefix(std::vector<double>(11, 0.5)));
  EXPECT_FALSE(net.foldActive());
  EXPECT_TRUE(net.configureStaticPrefix(std::vector<double>(6, 0.5)));
  EXPECT_TRUE(net.foldActive());
  EXPECT_EQ(net.dynamicInputDim(), 4u);
}

TEST(FoldStatic, FoldedRejectsWrongInputWidth) {
  const auto prefix = makePrefix(28, 11);
  MlpTwins twins({40, 16, 16, 5}, prefix);
  nn::Tensor bad(2, 33);  // neither inputDim nor dynamicInputDim
  nn::Tensor y;
  EXPECT_THROW(twins.folded.predict(bad, y), std::invalid_argument);
  EXPECT_THROW(twins.folded.forward(bad), std::invalid_argument);
}

TEST(FoldStatic, FoldedMatchesUnfoldedWithinTolerance) {
  const auto prefix = makePrefix(28, 11);
  MlpTwins twins({40, 16, 16, 5}, prefix);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{32}}) {
    const nn::Tensor x = makeStates(batch, 40, prefix, 100 + batch);
    nn::Tensor yFolded, yPlain;
    twins.folded.predict(x, yFolded);
    twins.plain.predict(x, yPlain);
    EXPECT_LE(maxRelDiff(yFolded, yPlain), kTol) << "batch " << batch;

    // Dynamic-width input takes the identical GEMM on the identical
    // packed rows -> bitwise equal to the full-width call.
    const nn::Tensor xd = dynamicSuffix(x, prefix.size());
    nn::Tensor yDyn;
    twins.folded.predict(xd, yDyn);
    ASSERT_EQ(yDyn.size(), yFolded.size());
    for (std::size_t i = 0; i < yDyn.size(); ++i) {
      EXPECT_EQ(yDyn.data()[i], yFolded.data()[i]);
    }
  }
}

TEST(FoldStatic, FoldedMatchesUnfoldedAtPaperDims) {
  // Table 1: 16,599 inputs of which 16,332 are the frozen receptor block.
  const std::size_t kIn = 16599, kStatic = 16332;
  const auto prefix = makePrefix(kStatic, 3);
  MlpTwins twins({kIn, 135, 135, 7}, prefix);
  const nn::Tensor x = makeStates(32, kIn, prefix, 17);
  nn::Tensor yFolded, yPlain;
  twins.folded.predict(x, yFolded);
  twins.plain.predict(x, yPlain);
  EXPECT_LE(maxRelDiff(yFolded, yPlain), kTol);
}

TEST(FoldStatic, FoldedPredictBitDeterministicAcrossPoolsAndRuns) {
  const std::size_t kIn = 600, kStatic = 480;
  const auto prefix = makePrefix(kStatic, 23);
  const nn::Tensor x = makeStates(16, kIn, prefix, 29);

  std::vector<double> reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    Rng rng(2024);
    nn::Mlp net({kIn, 64, 64, 6}, rng, &pool);
    ASSERT_TRUE(net.configureStaticPrefix(prefix));
    for (int run = 0; run < 2; ++run) {
      nn::Tensor y;
      net.predict(x, y);
      if (reference.empty()) {
        reference.assign(y.data(), y.data() + y.size());
        continue;
      }
      ASSERT_EQ(y.size(), reference.size());
      for (std::size_t i = 0; i < y.size(); ++i) {
        EXPECT_EQ(y.data()[i], reference[i]) << "threads " << threads << " run " << run;
      }
    }
  }
}

// --- Cache invalidation ---------------------------------------------------

TEST(FoldStaticInvalidation, DirectWeightWritesRefoldExactlyOncePerVersion) {
  const auto prefix = makePrefix(28, 11);
  MlpTwins twins({40, 16, 5}, prefix);
  const nn::Tensor x = makeStates(4, 40, prefix, 41);
  nn::Tensor yFolded, yPlain;

  twins.folded.predict(x, yFolded);
  const std::uint64_t foldsAfterFirst = twins.folded.inputLayer().foldCount();
  EXPECT_EQ(foldsAfterFirst, 1u);
  twins.folded.predict(x, yFolded);
  EXPECT_EQ(twins.folded.inputLayer().foldCount(), 1u) << "refolded without a weight change";

  // Stale-cache canary: mutate a STATIC column (only reachable through
  // the folded bias), a dynamic column, and the bias, each through the
  // non-const accessors every mutation path in the codebase uses.
  const std::uint64_t versionBefore = twins.folded.inputLayer().weightVersion();
  twins.folded.layers()[0].weights()(3, 5) += 0.25;    // static column
  twins.folded.layers()[0].weights()(2, 35) -= 0.125;  // dynamic column
  twins.folded.layers()[0].bias()(0, 1) += 0.5;
  EXPECT_GT(twins.folded.inputLayer().weightVersion(), versionBefore);
  twins.plain.layers()[0].weights()(3, 5) += 0.25;
  twins.plain.layers()[0].weights()(2, 35) -= 0.125;
  twins.plain.layers()[0].bias()(0, 1) += 0.5;

  twins.folded.predict(x, yFolded);
  twins.plain.predict(x, yPlain);
  EXPECT_LE(maxRelDiff(yFolded, yPlain), kTol) << "fold cache served stale weights";
  EXPECT_EQ(twins.folded.inputLayer().foldCount(), 2u);
}

TEST(FoldStaticInvalidation, CopyWeightsFromRefolds) {
  const auto prefix = makePrefix(28, 11);
  ThreadPool pool(2);
  Rng rngA(1), rngB(2);
  nn::Mlp a({40, 16, 5}, rngA, &pool);
  nn::Mlp b({40, 16, 5}, rngB, &pool);
  ASSERT_TRUE(a.configureStaticPrefix(prefix));
  ASSERT_TRUE(b.configureStaticPrefix(prefix));

  const nn::Tensor x = makeStates(4, 40, prefix, 43);
  nn::Tensor ya, yb;
  b.predict(x, yb);  // prime b's fold cache with its own weights
  a.predict(x, ya);
  ASSERT_GT(maxRelDiff(ya, yb), kTol) << "nets started identical; test is vacuous";

  b.copyWeightsFrom(a);  // the target-sync path
  b.predict(x, yb);
  // Same weights + same fold configuration -> the refold reproduces a's
  // folded bias bitwise.
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya.data()[i], yb.data()[i]);
}

TEST(FoldStaticInvalidation, OptimizerStepMatchesDenseUpdate) {
  const auto prefix = makePrefix(28, 11);
  const nn::Tensor x = makeStates(8, 40, prefix, 47);

  for (const std::string kind : {"sgd", "rmsprop", "adam"}) {
    MlpTwins twins({40, 16, 5}, prefix);
    auto optFolded = nn::makeOptimizer(kind, 0.01);
    auto optPlain = nn::makeOptimizer(kind, 0.01);

    for (int step = 0; step < 3; ++step) {
      // dLoss/dY = Y (pulls every output toward zero; arbitrary but
      // shared, so both twins see gradients from their own forward).
      const nn::Tensor& yf = twins.folded.forward(x);
      nn::Tensor dy = yf;
      twins.folded.zeroGrad();
      twins.folded.backward(dy);
      nn::FactoredPrefixGrad factored;
      factored.paramIndex = 0;
      factored.staticPrefix = twins.folded.inputLayer().staticPrefix();
      factored.coeff = &twins.folded.inputLayer().biasGrad();
      optFolded->step(twins.folded.parameters(), twins.folded.gradients(), &factored);

      const nn::Tensor& yp = twins.plain.forward(x);
      nn::Tensor dyp = yp;
      twins.plain.zeroGrad();
      twins.plain.backward(dyp);
      optPlain->step(twins.plain.parameters(), twins.plain.gradients());
    }
    auto pf = twins.folded.parameters();
    auto pp = twins.plain.parameters();
    ASSERT_EQ(pf.size(), pp.size());
    for (std::size_t i = 0; i < pf.size(); ++i) {
      EXPECT_LE(maxRelDiff(*pf[i], *pp[i]), kTol) << kind << " param " << i;
    }
    // The folded twin keeps predicting with its post-step weights.
    const nn::Tensor probe = makeStates(4, 40, prefix, 53);
    nn::Tensor qf, qp;
    twins.folded.predict(probe, qf);
    twins.plain.predict(probe, qp);
    EXPECT_LE(maxRelDiff(qf, qp), kTol) << kind;
  }
}

TEST(FoldStaticInvalidation, DqnAgentLearnAndTargetSyncTrackUnfolded) {
  const std::size_t kDim = 40, kStatic = 28;
  const auto prefix = makePrefix(kStatic, 11);

  rl::DqnConfig config;
  config.batchSize = 16;
  config.targetSyncInterval = 2;  // exercise hard target syncs mid-run
  config.hiddenSizes = {16, 16};

  Rng rngA(7), rngB(7);
  rl::DqnAgent folded(kDim, 4, config, rngA);
  rl::DqnAgent plain(kDim, 4, config, rngB);
  ASSERT_TRUE(folded.enableStaticPrefixFold(prefix));
  EXPECT_TRUE(folded.foldActive());
  EXPECT_EQ(folded.dynamicStateDim(), kDim - kStatic);
  EXPECT_FALSE(plain.foldActive());

  rl::ReplayBuffer replay(128, kDim);
  Rng fill(99);
  std::vector<double> s(kDim), s2(kDim);
  for (int i = 0; i < 64; ++i) {
    for (std::size_t c = 0; c < kDim; ++c) {
      s[c] = c < kStatic ? prefix[c] : fill.uniform();
      s2[c] = c < kStatic ? prefix[c] : fill.uniform();
    }
    replay.push(s, static_cast<int>(fill.uniformInt(4)), fill.uniform(), s2, (i % 9) == 0);
  }

  Rng learnA(13), learnB(13);
  for (int step = 0; step < 6; ++step) {
    const double lossF = folded.learn(replay, learnA);
    const double lossP = plain.learn(replay, learnB);
    // Per-step rounding (≤1e-12) feeds back through the weights, so the
    // loss gap grows with the step count; the tight bound is the weight
    // comparison below.
    EXPECT_NEAR(lossF, lossP, 1e-7) << "step " << step;
  }
  // Weight trajectories agree through learn + the interleaved syncs.
  auto pf = folded.online().parameters();
  auto pp = plain.online().parameters();
  ASSERT_EQ(pf.size(), pp.size());
  for (std::size_t i = 0; i < pf.size(); ++i) {
    EXPECT_LE(maxRelDiff(*pf[i], *pp[i]), 1e-10) << "param " << i;
  }
  // And a folded agent answers single-state queries in both widths.
  const std::vector<double> qFull = folded.qValues(s);
  const std::vector<double> qDyn =
      folded.qValues(std::span<const double>(s).subspan(kStatic));
  ASSERT_EQ(qFull.size(), qDyn.size());
  for (std::size_t i = 0; i < qFull.size(); ++i) EXPECT_EQ(qFull[i], qDyn[i]);
}

TEST(FoldStaticInvalidation, CheckpointRoundTripRefolds) {
  const auto prefix = makePrefix(28, 11);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("dqndock_fold_ckpt_" + std::to_string(::getpid()) + ".bin"))
          .string();

  Rng rngA(1), rngB(2), rngC(2);
  rl::MlpQNetwork a(40, {16, 16}, 4, rngA);
  rl::MlpQNetwork b(40, {16, 16}, 4, rngB);  // different weights than a
  rl::MlpQNetwork plain(40, {16, 16}, 4, rngC);
  ASSERT_TRUE(a.configureStaticPrefix(prefix));
  ASSERT_TRUE(b.configureStaticPrefix(prefix));

  const nn::Tensor x = makeStates(4, 40, prefix, 59);
  nn::Tensor ya, yb, yp;
  b.predict(x, yb);  // prime b's cache so the restore must invalidate it
  a.predict(x, ya);

  rl::saveWeightsFile(path, a);
  rl::loadWeightsFile(path, b);
  rl::loadWeightsFile(path, plain);
  std::filesystem::remove(path);

  b.predict(x, yb);
  plain.predict(x, yp);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya.data()[i], yb.data()[i]);
  EXPECT_LE(maxRelDiff(yb, yp), kTol);
}

TEST(FoldStaticInvalidation, ModelRegistryHotSwapFoldsEachVersionOnce) {
  const auto prefix = makePrefix(28, 11);
  Rng rngA(1), rngB(2), rngC(2);
  auto seed = std::make_unique<rl::MlpQNetwork>(40, std::vector<std::size_t>{16, 16}, 4, rngA);
  auto next = std::make_unique<rl::MlpQNetwork>(40, std::vector<std::size_t>{16, 16}, 4, rngB);
  rl::MlpQNetwork plainTwin(40, {16, 16}, 4, rngC);  // same weights as `next`

  serve::ModelRegistry registry(std::move(seed));
  ASSERT_TRUE(registry.enableStaticPrefixFold(prefix));
  EXPECT_TRUE(registry.foldActive());
  EXPECT_EQ(registry.dynamicInputDim(), 12u);

  const nn::Tensor x = makeStates(3, 40, prefix, 61);
  const nn::Tensor xd = dynamicSuffix(x, prefix.size());
  nn::Tensor y;
  registry.current()->net->predict(xd, y);  // serve path: dynamic width

  // Hot-swap: the incoming network was built unfolded; publish must
  // propagate the fold so the batcher's narrow rows keep working.
  registry.publish(std::move(next), "swap");
  const auto current = registry.current();
  ASSERT_TRUE(current->net->foldActive());

  nn::Tensor ySwap, ySwapFull, yPlain;
  current->net->predict(xd, ySwap);
  current->net->predict(x, ySwapFull);
  plainTwin.predict(x, yPlain);
  EXPECT_LE(maxRelDiff(ySwap, yPlain), kTol);
  for (std::size_t i = 0; i < ySwap.size(); ++i) {
    EXPECT_EQ(ySwap.data()[i], ySwapFull.data()[i]);
  }

  // Lazy refold ran exactly once for this version despite two predicts.
  const auto& mlpNet = dynamic_cast<const rl::MlpQNetwork&>(*current->net);
  EXPECT_EQ(mlpNet.net().inputLayer().foldCount(), 1u);
}

}  // namespace
}  // namespace dqndock
