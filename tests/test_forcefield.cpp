// Tests for the force-field parameter tables and combining rules.

#include <gtest/gtest.h>

#include <cmath>

#include "src/chem/forcefield.hpp"

namespace dqndock::chem {
namespace {

TEST(ForceFieldTest, SingletonStable) {
  EXPECT_EQ(&ForceField::standard(), &ForceField::standard());
}

TEST(ForceFieldTest, LjParametersPositive) {
  const ForceField& ff = ForceField::standard();
  for (int i = 0; i < kElementCount; ++i) {
    const LjParams p = ff.lj(static_cast<Element>(i));
    EXPECT_GT(p.sigma, 1.0);
    EXPECT_LT(p.sigma, 5.0);
    EXPECT_GT(p.epsilon, 0.0);
    EXPECT_LT(p.epsilon, 1.0);
  }
}

TEST(ForceFieldTest, LorentzBerthelotCombining) {
  const ForceField& ff = ForceField::standard();
  const LjParams c = ff.lj(Element::C);
  const LjParams o = ff.lj(Element::O);
  const LjParams co = ff.ljPair(Element::C, Element::O);
  EXPECT_DOUBLE_EQ(co.sigma, 0.5 * (c.sigma + o.sigma));
  EXPECT_DOUBLE_EQ(co.epsilon, std::sqrt(c.epsilon * o.epsilon));
}

TEST(ForceFieldTest, CombiningIsSymmetric) {
  const ForceField& ff = ForceField::standard();
  for (int a = 0; a < kElementCount; ++a) {
    for (int b = 0; b < kElementCount; ++b) {
      const LjParams ab = ff.ljPair(static_cast<Element>(a), static_cast<Element>(b));
      const LjParams ba = ff.ljPair(static_cast<Element>(b), static_cast<Element>(a));
      EXPECT_DOUBLE_EQ(ab.sigma, ba.sigma);
      EXPECT_DOUBLE_EQ(ab.epsilon, ba.epsilon);
    }
  }
}

TEST(ForceFieldTest, SelfCombiningIsIdentity) {
  const ForceField& ff = ForceField::standard();
  const LjParams n = ff.lj(Element::N);
  const LjParams nn = ff.ljPair(Element::N, Element::N);
  EXPECT_DOUBLE_EQ(nn.sigma, n.sigma);
  EXPECT_NEAR(nn.epsilon, n.epsilon, 1e-15);
}

TEST(ForceFieldTest, HBondWellMinimumAtCalibratedDistance) {
  // E(r) = C/r^12 - D/r^10 must have its minimum at r0 = 1.9 A with
  // depth 0.5 kcal/mol (the calibration in forcefield.cpp).
  const HBondParams hb = ForceField::standard().hbond();
  auto energy = [&hb](double r) {
    return hb.c12 / std::pow(r, 12) - hb.d10 / std::pow(r, 10);
  };
  const double e0 = energy(1.9);
  EXPECT_NEAR(e0, -0.5, 1e-9);
  // Minimum: nearby points are higher.
  EXPECT_GT(energy(1.8), e0);
  EXPECT_GT(energy(2.0), e0);
  // Strongly repulsive at short range, vanishing at long range.
  EXPECT_GT(energy(1.0), 10.0);
  EXPECT_NEAR(energy(8.0), 0.0, 1e-3);
}

TEST(ForceFieldTest, DefaultChargesSigned) {
  const ForceField& ff = ForceField::standard();
  EXPECT_GT(ff.defaultCharge(Element::H), 0.0);
  EXPECT_LT(ff.defaultCharge(Element::O), 0.0);
  EXPECT_LT(ff.defaultCharge(Element::N), 0.0);
}

}  // namespace
}  // namespace dqndock::chem
