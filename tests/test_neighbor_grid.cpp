// Tests for the uniform spatial hash: the 27-cell neighbourhood must be a
// superset of all points within cellSize of the query.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/rng.hpp"
#include "src/metadock/neighbor_grid.hpp"

namespace dqndock::metadock {
namespace {

TEST(NeighborGridTest, InvalidCellSizeThrows) {
  std::vector<Vec3> pts{{0, 0, 0}};
  EXPECT_THROW(NeighborGrid(pts, 0.0), std::invalid_argument);
  EXPECT_THROW(NeighborGrid(pts, -1.0), std::invalid_argument);
}

TEST(NeighborGridTest, EmptyPointSet) {
  std::vector<Vec3> pts;
  NeighborGrid grid(pts, 1.0);
  EXPECT_EQ(grid.pointCount(), 0u);
  EXPECT_TRUE(grid.near(Vec3{0, 0, 0}).empty());
}

TEST(NeighborGridTest, SinglePointFound) {
  std::vector<Vec3> pts{{1, 2, 3}};
  NeighborGrid grid(pts, 2.0);
  const auto near = grid.near(Vec3{1.5, 2.5, 3.5});
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0], 0u);
}

TEST(NeighborGridTest, FarPointNotReturned) {
  std::vector<Vec3> pts{{0, 0, 0}, {100, 100, 100}};
  NeighborGrid grid(pts, 2.0);
  const auto near = grid.near(Vec3{0.5, 0.5, 0.5});
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0], 0u);
}

TEST(NeighborGridTest, EachPointAppearsExactlyOnceInItsOwnNeighbourhood) {
  Rng rng(5);
  std::vector<Vec3> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10)});
  }
  NeighborGrid grid(pts, 3.0);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto near = grid.near(pts[i]);
    EXPECT_EQ(std::count(near.begin(), near.end(), i), 1);
  }
}

class GridCoverageTest : public ::testing::TestWithParam<double> {};

TEST_P(GridCoverageTest, NeighbourhoodCoversCutoffSphere) {
  const double cell = GetParam();
  Rng rng(static_cast<std::uint64_t>(cell * 100));
  std::vector<Vec3> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-20, 20)});
  }
  NeighborGrid grid(pts, cell);
  for (int q = 0; q < 50; ++q) {
    const Vec3 query{rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-20, 20)};
    const auto near = grid.near(query);
    const std::set<std::size_t> nearSet(near.begin(), near.end());
    // Every point within `cell` of the query must be in the result.
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (distance(pts[i], query) <= cell) {
        EXPECT_TRUE(nearSet.count(i)) << "missed point " << i << " at cell=" << cell;
      }
    }
    // And every returned point is within the 3x3x3 cell block (loose bound
    // of 2 * cell * sqrt(3)).
    for (std::size_t i : near) {
      EXPECT_LE(distance(pts[i], query), 2.0 * cell * 1.7320508 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, GridCoverageTest, ::testing::Values(1.0, 2.5, 6.0, 12.0));

TEST(NeighborGridTest, NegativeCoordinatesHandled) {
  std::vector<Vec3> pts{{-5.1, -5.1, -5.1}, {-4.9, -4.9, -4.9}};
  NeighborGrid grid(pts, 1.0);
  const auto near = grid.near(Vec3{-5.0, -5.0, -5.0});
  EXPECT_EQ(near.size(), 2u);
}

TEST(NeighborGridTest, ForEachNearMatchesNear) {
  Rng rng(11);
  std::vector<Vec3> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 10)});
  }
  NeighborGrid grid(pts, 2.0);
  const Vec3 q{5, 5, 5};
  std::vector<std::size_t> collected;
  grid.forEachNear(q, [&collected](std::size_t i) { collected.push_back(i); });
  auto near = grid.near(q);
  std::sort(collected.begin(), collected.end());
  std::sort(near.begin(), near.end());
  EXPECT_EQ(collected, near);
}

TEST(NeighborGridTest, CellOrderIsPermutationGroupedByCell) {
  Rng rng(21);
  std::vector<Vec3> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.uniform(-15, 15), rng.uniform(-15, 15), rng.uniform(-15, 15)});
  }
  NeighborGrid grid(pts, 4.0);
  const auto& order = grid.cellOrder();
  ASSERT_EQ(order.size(), pts.size());

  // A permutation: every index appears exactly once.
  std::vector<std::uint32_t> sorted(order.begin(), order.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);

  // Grouped by cell: the dense cell index is non-decreasing along the
  // packed order (counting sort is stable by cell).
  auto denseCell = [&](const Vec3& p) {
    const auto cx = static_cast<long>(std::floor((p.x - grid.origin().x) / grid.cellSize()));
    const auto cy = static_cast<long>(std::floor((p.y - grid.origin().y) / grid.cellSize()));
    const auto cz = static_cast<long>(std::floor((p.z - grid.origin().z) / grid.cellSize()));
    return (cz * grid.ny() + cy) * grid.nx() + cx;
  };
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(denseCell(pts[order[i - 1]]), denseCell(pts[order[i]])) << "at " << i;
  }
}

TEST(NeighborGridTest, QueryRangesCoverSamePointsAsNear) {
  Rng rng(31);
  std::vector<Vec3> pts;
  for (int i = 0; i < 250; ++i) {
    pts.push_back({rng.uniform(-12, 12), rng.uniform(-12, 12), rng.uniform(-12, 12)});
  }
  NeighborGrid grid(pts, 3.0);
  for (int q = 0; q < 40; ++q) {
    // Mix of in-box, edge, and out-of-box queries.
    const double span = q % 3 == 0 ? 30.0 : 12.0;
    const Vec3 query{rng.uniform(-span, span), rng.uniform(-span, span),
                     rng.uniform(-span, span)};
    NeighborGrid::Range ranges[NeighborGrid::kMaxQueryRanges];
    const int n = grid.queryRanges(query, ranges);
    ASSERT_LE(n, NeighborGrid::kMaxQueryRanges);
    std::vector<std::size_t> fromRanges;
    for (int k = 0; k < n; ++k) {
      for (std::uint32_t i = ranges[k].first; i < ranges[k].first + ranges[k].count; ++i) {
        fromRanges.push_back(grid.cellOrder()[i]);
      }
    }
    auto expected = grid.near(query);
    std::sort(fromRanges.begin(), fromRanges.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(fromRanges, expected) << "query " << q;
  }
}

TEST(NeighborGridTest, FarOutsideQueriesYieldNoRanges) {
  std::vector<Vec3> pts{{0, 0, 0}, {1, 1, 1}, {2, 0, 1}};
  NeighborGrid grid(pts, 2.0);
  NeighborGrid::Range ranges[NeighborGrid::kMaxQueryRanges];
  // More than one cell beyond the box on any axis: nothing can be within
  // cellSize, so the query returns zero ranges (and must not overflow on
  // astronomically distant coordinates).
  EXPECT_EQ(grid.queryRanges(Vec3{100, 0, 0}, ranges), 0);
  EXPECT_EQ(grid.queryRanges(Vec3{0, -100, 0}, ranges), 0);
  EXPECT_EQ(grid.queryRanges(Vec3{1e18, -1e18, 1e18}, ranges), 0);
  EXPECT_TRUE(grid.near(Vec3{1e18, -1e18, 1e18}).empty());
  // Just outside the box (within one cell) still sees the boundary cells.
  EXPECT_GT(grid.queryRanges(Vec3{-1.5, 0.5, 0.5}, ranges), 0);
}

}  // namespace
}  // namespace dqndock::metadock
