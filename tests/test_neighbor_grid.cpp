// Tests for the uniform spatial hash: the 27-cell neighbourhood must be a
// superset of all points within cellSize of the query.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/rng.hpp"
#include "src/metadock/neighbor_grid.hpp"

namespace dqndock::metadock {
namespace {

TEST(NeighborGridTest, InvalidCellSizeThrows) {
  std::vector<Vec3> pts{{0, 0, 0}};
  EXPECT_THROW(NeighborGrid(pts, 0.0), std::invalid_argument);
  EXPECT_THROW(NeighborGrid(pts, -1.0), std::invalid_argument);
}

TEST(NeighborGridTest, EmptyPointSet) {
  std::vector<Vec3> pts;
  NeighborGrid grid(pts, 1.0);
  EXPECT_EQ(grid.pointCount(), 0u);
  EXPECT_TRUE(grid.near(Vec3{0, 0, 0}).empty());
}

TEST(NeighborGridTest, SinglePointFound) {
  std::vector<Vec3> pts{{1, 2, 3}};
  NeighborGrid grid(pts, 2.0);
  const auto near = grid.near(Vec3{1.5, 2.5, 3.5});
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0], 0u);
}

TEST(NeighborGridTest, FarPointNotReturned) {
  std::vector<Vec3> pts{{0, 0, 0}, {100, 100, 100}};
  NeighborGrid grid(pts, 2.0);
  const auto near = grid.near(Vec3{0.5, 0.5, 0.5});
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0], 0u);
}

TEST(NeighborGridTest, EachPointAppearsExactlyOnceInItsOwnNeighbourhood) {
  Rng rng(5);
  std::vector<Vec3> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10)});
  }
  NeighborGrid grid(pts, 3.0);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto near = grid.near(pts[i]);
    EXPECT_EQ(std::count(near.begin(), near.end(), i), 1);
  }
}

class GridCoverageTest : public ::testing::TestWithParam<double> {};

TEST_P(GridCoverageTest, NeighbourhoodCoversCutoffSphere) {
  const double cell = GetParam();
  Rng rng(static_cast<std::uint64_t>(cell * 100));
  std::vector<Vec3> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-20, 20)});
  }
  NeighborGrid grid(pts, cell);
  for (int q = 0; q < 50; ++q) {
    const Vec3 query{rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-20, 20)};
    const auto near = grid.near(query);
    const std::set<std::size_t> nearSet(near.begin(), near.end());
    // Every point within `cell` of the query must be in the result.
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (distance(pts[i], query) <= cell) {
        EXPECT_TRUE(nearSet.count(i)) << "missed point " << i << " at cell=" << cell;
      }
    }
    // And every returned point is within the 3x3x3 cell block (loose bound
    // of 2 * cell * sqrt(3)).
    for (std::size_t i : near) {
      EXPECT_LE(distance(pts[i], query), 2.0 * cell * 1.7320508 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, GridCoverageTest, ::testing::Values(1.0, 2.5, 6.0, 12.0));

TEST(NeighborGridTest, NegativeCoordinatesHandled) {
  std::vector<Vec3> pts{{-5.1, -5.1, -5.1}, {-4.9, -4.9, -4.9}};
  NeighborGrid grid(pts, 1.0);
  const auto near = grid.near(Vec3{-5.0, -5.0, -5.0});
  EXPECT_EQ(near.size(), 2u);
}

TEST(NeighborGridTest, ForEachNearMatchesNear) {
  Rng rng(11);
  std::vector<Vec3> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 10)});
  }
  NeighborGrid grid(pts, 2.0);
  const Vec3 q{5, 5, 5};
  std::vector<std::size_t> collected;
  grid.forEachNear(q, [&collected](std::size_t i) { collected.push_back(i); });
  auto near = grid.near(q);
  std::sort(collected.begin(), collected.end());
  std::sort(near.begin(), near.end());
  EXPECT_EQ(collected, near);
}

}  // namespace
}  // namespace dqndock::metadock
