// Tests for the raw experience replay buffer.

#include <gtest/gtest.h>

#include <vector>

#include "src/rl/replay_buffer.hpp"

namespace dqndock::rl {
namespace {

std::vector<double> stateOf(double v, std::size_t dim = 4) {
  return std::vector<double>(dim, v);
}

TEST(ReplayBufferTest, ConstructionValidation) {
  EXPECT_THROW(ReplayBuffer(0, 4), std::invalid_argument);
  EXPECT_THROW(ReplayBuffer(4, 0), std::invalid_argument);
  ReplayBuffer rb(10, 4);
  EXPECT_EQ(rb.capacity(), 10u);
  EXPECT_EQ(rb.stateDim(), 4u);
  EXPECT_EQ(rb.size(), 0u);
}

TEST(ReplayBufferTest, PushGrowsUntilCapacity) {
  ReplayBuffer rb(3, 4);
  for (int i = 0; i < 5; ++i) {
    rb.push(stateOf(i), i, 0.5, stateOf(i + 1), false);
    EXPECT_EQ(rb.size(), std::min<std::size_t>(i + 1, 3));
  }
}

TEST(ReplayBufferTest, RingOverwritesOldest) {
  ReplayBuffer rb(2, 1);
  rb.push(stateOf(1.0, 1), 1, 0, stateOf(1.5, 1), false);
  rb.push(stateOf(2.0, 1), 2, 0, stateOf(2.5, 1), false);
  rb.push(stateOf(3.0, 1), 3, 0, stateOf(3.5, 1), false);  // overwrites the "1.0" slot
  Rng rng(1);
  bool sawOld = false;
  for (int i = 0; i < 200; ++i) {
    const Minibatch mb = rb.sample(1, rng);
    if (mb.actions[0] == 1) sawOld = true;
  }
  EXPECT_FALSE(sawOld);
}

TEST(ReplayBufferTest, DimMismatchThrows) {
  ReplayBuffer rb(4, 4);
  EXPECT_THROW(rb.push(stateOf(0, 3), 0, 0, stateOf(0, 4), false), std::invalid_argument);
  EXPECT_THROW(rb.push(stateOf(0, 4), 0, 0, stateOf(0, 5), false), std::invalid_argument);
}

TEST(ReplayBufferTest, SampleFromEmptyThrows) {
  ReplayBuffer rb(4, 4);
  Rng rng(2);
  EXPECT_THROW(rb.sample(2, rng), std::logic_error);
}

TEST(ReplayBufferTest, SampledContentsMatchPushed) {
  ReplayBuffer rb(8, 2);
  const std::vector<double> s1{1.0, 2.0}, s2{4.0, 5.0};
  rb.push(s1, 3, -1.0, s2, true);
  Rng rng(3);
  const Minibatch mb = rb.sample(4, rng);
  ASSERT_EQ(mb.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_DOUBLE_EQ(mb.states(b, 0), 1.0);
    EXPECT_DOUBLE_EQ(mb.states(b, 1), 2.0);
    EXPECT_DOUBLE_EQ(mb.nextStates(b, 0), 4.0);
    EXPECT_EQ(mb.actions[b], 3);
    EXPECT_DOUBLE_EQ(mb.rewards[b], -1.0);
    EXPECT_EQ(mb.terminals[b], 1);
  }
}

TEST(ReplayBufferTest, SamplingIsApproximatelyUniform) {
  const std::size_t n = 10;
  ReplayBuffer rb(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    rb.push(stateOf(static_cast<double>(i), 1), static_cast<int>(i), 0, stateOf(0.0, 1), false);
  }
  Rng rng(4);
  std::vector<int> hits(n, 0);
  const int draws = 20000;
  for (int d = 0; d < draws / 4; ++d) {
    const Minibatch mb = rb.sample(4, rng);
    for (int a : mb.actions) ++hits[static_cast<std::size_t>(a)];
  }
  const double expected = static_cast<double>(draws) / n;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(hits[i], expected, expected * 0.15) << "slot " << i;
  }
}

TEST(ReplayBufferTest, MemoryFootprintScalesWithCapacityAndDim) {
  ReplayBuffer small(100, 10);
  ReplayBuffer large(1000, 10);
  ReplayBuffer wide(100, 100);
  EXPECT_GT(large.memoryBytes(), small.memoryBytes());
  EXPECT_GT(wide.memoryBytes(), small.memoryBytes());
  // Two float arrays dominate: capacity * dim * 4 bytes each.
  EXPECT_GE(small.memoryBytes(), 100u * 10 * 4 * 2);
}

}  // namespace
}  // namespace dqndock::rl
