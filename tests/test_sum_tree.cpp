// Tests for the sum tree backing prioritized replay.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.hpp"
#include "src/rl/sum_tree.hpp"

namespace dqndock::rl {
namespace {

TEST(SumTreeTest, ConstructionValidation) {
  EXPECT_THROW(SumTree(0), std::invalid_argument);
  SumTree t(5);
  EXPECT_EQ(t.capacity(), 5u);
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST(SumTreeTest, UpdateMaintainsTotal) {
  SumTree t(4);
  t.update(0, 1.0);
  t.update(1, 2.0);
  t.update(2, 3.0);
  EXPECT_DOUBLE_EQ(t.total(), 6.0);
  t.update(1, 5.0);  // replace, not add
  EXPECT_DOUBLE_EQ(t.total(), 9.0);
  EXPECT_DOUBLE_EQ(t.priority(1), 5.0);
}

TEST(SumTreeTest, NegativePriorityRejected) {
  SumTree t(4);
  EXPECT_THROW(t.update(0, -1.0), std::invalid_argument);
}

TEST(SumTreeTest, IndexOutOfRangeRejected) {
  SumTree t(4);
  EXPECT_THROW(t.update(4, 1.0), std::out_of_range);
  EXPECT_THROW(t.priority(7), std::out_of_range);
}

TEST(SumTreeTest, FindOnEmptyThrows) {
  SumTree t(4);
  EXPECT_THROW(t.find(0.0), std::logic_error);
}

TEST(SumTreeTest, FindLocatesCorrectIntervals) {
  SumTree t(4);
  t.update(0, 1.0);  // [0, 1)
  t.update(1, 2.0);  // [1, 3)
  t.update(2, 3.0);  // [3, 6)
  t.update(3, 4.0);  // [6, 10)
  EXPECT_EQ(t.find(0.5), 0u);
  EXPECT_EQ(t.find(1.0), 1u);
  EXPECT_EQ(t.find(2.9), 1u);
  EXPECT_EQ(t.find(3.0), 2u);
  EXPECT_EQ(t.find(5.999), 2u);
  EXPECT_EQ(t.find(6.0), 3u);
  EXPECT_EQ(t.find(9.999), 3u);
  // Out-of-range masses clamp.
  EXPECT_EQ(t.find(-5.0), 0u);
  EXPECT_EQ(t.find(1e9), 3u);
}

TEST(SumTreeTest, NonPowerOfTwoCapacity) {
  SumTree t(5);
  for (std::size_t i = 0; i < 5; ++i) t.update(i, 1.0);
  EXPECT_DOUBLE_EQ(t.total(), 5.0);
  EXPECT_EQ(t.find(4.5), 4u);
}

TEST(SumTreeTest, SamplingFrequencyProportionalToPriority) {
  SumTree t(3);
  t.update(0, 1.0);
  t.update(1, 2.0);
  t.update(2, 7.0);
  Rng rng(9);
  std::vector<int> hits(3, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++hits[t.find(rng.uniform() * t.total())];
  EXPECT_NEAR(hits[0] / static_cast<double>(draws), 0.1, 0.01);
  EXPECT_NEAR(hits[1] / static_cast<double>(draws), 0.2, 0.01);
  EXPECT_NEAR(hits[2] / static_cast<double>(draws), 0.7, 0.01);
}

TEST(SumTreeTest, ZeroPrioritySlotNeverSampled) {
  SumTree t(3);
  t.update(0, 1.0);
  t.update(1, 0.0);
  t.update(2, 1.0);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(t.find(rng.uniform() * t.total()), 1u);
  }
}

}  // namespace
}  // namespace dqndock::rl
