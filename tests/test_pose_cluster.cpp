// Tests for RMSD-based pose clustering.

#include <gtest/gtest.h>

#include "src/chem/synthetic.hpp"
#include "src/metadock/pose_cluster.hpp"

namespace dqndock::metadock {
namespace {

class PoseClusterFixture : public ::testing::Test {
 protected:
  PoseClusterFixture()
      : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())), ligand_(scenario_.ligand) {}

  Candidate candidateAt(const Vec3& translation, double score) const {
    Candidate c;
    c.pose = Pose(ligand_.torsionCount());
    c.pose.translation = translation;
    c.score = score;
    return c;
  }

  chem::Scenario scenario_;
  LigandModel ligand_;
};

TEST_F(PoseClusterFixture, EmptyInputGivesNoClusters) {
  EXPECT_TRUE(clusterPoses(ligand_, {}).empty());
}

TEST_F(PoseClusterFixture, NearbyPosesMerge) {
  std::vector<Candidate> cands{
      candidateAt({0, 0, 0}, 10.0),
      candidateAt({0.5, 0, 0}, 8.0),     // within 2 A of the first
      candidateAt({20, 0, 0}, 5.0),      // far away
  };
  const auto clusters = clusterPoses(ligand_, cands);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_DOUBLE_EQ(clusters[0].representative.score, 10.0);
  EXPECT_EQ(clusters[0].members.size(), 2u);
  EXPECT_DOUBLE_EQ(clusters[1].representative.score, 5.0);
}

TEST_F(PoseClusterFixture, RepresentativeIsBestScoring) {
  std::vector<Candidate> cands{
      candidateAt({0.4, 0, 0}, 3.0),
      candidateAt({0, 0, 0}, 99.0),  // best must lead its cluster
  };
  const auto clusters = clusterPoses(ligand_, cands);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_DOUBLE_EQ(clusters[0].representative.score, 99.0);
}

TEST_F(PoseClusterFixture, ClustersOrderedByRepresentativeScore) {
  std::vector<Candidate> cands{
      candidateAt({0, 0, 0}, 1.0),
      candidateAt({50, 0, 0}, 7.0),
      candidateAt({0, 50, 0}, 4.0),
  };
  const auto clusters = clusterPoses(ligand_, cands);
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_GE(clusters[0].representative.score, clusters[1].representative.score);
  EXPECT_GE(clusters[1].representative.score, clusters[2].representative.score);
}

TEST_F(PoseClusterFixture, ThresholdControlsGranularity) {
  std::vector<Candidate> cands{
      candidateAt({0, 0, 0}, 3.0),
      candidateAt({3, 0, 0}, 2.0),
      candidateAt({6, 0, 0}, 1.0),
  };
  ClusterOptions tight;
  tight.rmsdThreshold = 1.0;
  EXPECT_EQ(clusterPoses(ligand_, cands, tight).size(), 3u);
  ClusterOptions loose;
  loose.rmsdThreshold = 10.0;
  // Greedy leader: the middle pose joins the first cluster (RMSD 3 < 10),
  // and the third joins it too (RMSD 6 < 10).
  EXPECT_EQ(clusterPoses(ligand_, cands, loose).size(), 1u);
}

TEST_F(PoseClusterFixture, AlignedModeMergesRotatedCopies) {
  // Same placement but ligand spun 180 degrees about its centroid: direct
  // RMSD is large, aligned RMSD ~ 0 (same binding mode).
  Candidate a = candidateAt({0, 0, 0}, 5.0);
  Candidate b = candidateAt({0, 0, 0}, 4.0);
  b.pose.orientation = Quat::fromAxisAngle(Vec3{0, 0, 1}, M_PI);

  ClusterOptions direct;
  direct.rmsdThreshold = 1.0;
  direct.aligned = false;
  ClusterOptions aligned = direct;
  aligned.aligned = true;

  std::vector<Candidate> cands{a, b};
  EXPECT_EQ(clusterPoses(ligand_, cands, direct).size(), 2u);
  EXPECT_EQ(clusterPoses(ligand_, cands, aligned).size(), 1u);
}

TEST_F(PoseClusterFixture, PoseRmsdHelpers) {
  const Pose p0(ligand_.torsionCount());
  Pose shifted = p0;
  shifted.translation = {1, 0, 0};
  EXPECT_NEAR(poseRmsd(ligand_, p0, shifted), 1.0, 1e-9);
  Pose rotated = p0;
  rotated.orientation = Quat::fromAxisAngle(Vec3{0, 0, 1}, 1.0);
  EXPECT_GT(poseRmsd(ligand_, p0, rotated), 0.1);
  EXPECT_NEAR(poseRmsd(ligand_, p0, rotated, /*aligned=*/true), 0.0, 1e-7);
}

}  // namespace
}  // namespace dqndock::metadock
