// Tests for the three state encodings, including the paper's
// 16,599-dimensional full-with-bonds mode.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/state_encoder.hpp"

namespace dqndock::core {
namespace {

class StateEncoderFixture : public ::testing::Test {
 protected:
  StateEncoderFixture() : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())) {}

  chem::Scenario scenario_;
};

TEST_F(StateEncoderFixture, ModeNamesRoundTrip) {
  for (auto mode : {StateMode::kLigandPositions, StateMode::kFullPositions,
                    StateMode::kFullWithBonds}) {
    EXPECT_EQ(stateModeFromName(stateModeName(mode)), mode);
  }
  EXPECT_THROW(stateModeFromName("bogus"), std::invalid_argument);
}

TEST_F(StateEncoderFixture, DimensionsPerMode) {
  const auto& sc = scenario_;
  StateEncoder lig(sc, StateMode::kLigandPositions);
  StateEncoder full(sc, StateMode::kFullPositions);
  StateEncoder bonds(sc, StateMode::kFullWithBonds);
  EXPECT_EQ(lig.dim(), 3 * sc.ligand.atomCount());
  EXPECT_EQ(full.dim(), 3 * (sc.ligand.atomCount() + sc.receptor.atomCount()));
  EXPECT_EQ(bonds.dim(), 3 * (sc.ligand.atomCount() + sc.receptor.atomCount() +
                              sc.ligand.bondCount() + sc.receptor.bondCount()));
}

TEST(StateEncoderPaperTest, Paper2bsmStateIs16599) {
  const auto sc = chem::buildScenario(chem::ScenarioSpec::paper2bsm());
  StateEncoder enc(sc, StateMode::kFullWithBonds);
  EXPECT_EQ(enc.dim(), 16599u);  // paper Table 1: state space
}

TEST_F(StateEncoderFixture, EncodeMatchesEnvironmentPositions) {
  metadock::DockingEnv env(scenario_, {});
  StateEncoder enc(scenario_, StateMode::kLigandPositions, /*normalize=*/false);
  std::vector<double> state;
  enc.encode(env, state);
  ASSERT_EQ(state.size(), enc.dim());
  const auto positions = env.ligandPositions();
  const Vec3 origin = scenario_.receptor.centerOfMass();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    EXPECT_DOUBLE_EQ(state[3 * i + 0], positions[i].x - origin.x);
    EXPECT_DOUBLE_EQ(state[3 * i + 1], positions[i].y - origin.y);
    EXPECT_DOUBLE_EQ(state[3 * i + 2], positions[i].z - origin.z);
  }
}

TEST_F(StateEncoderFixture, NormalizedStatesAreOrderOne)  {
  metadock::DockingEnv env(scenario_, {});
  StateEncoder enc(scenario_, StateMode::kFullWithBonds, /*normalize=*/true);
  std::vector<double> state;
  enc.encode(env, state);
  for (double v : state) {
    EXPECT_LT(std::fabs(v), 10.0);
  }
}

TEST_F(StateEncoderFixture, OnlyLigandBlockChangesAcrossSteps) {
  metadock::DockingEnv env(scenario_, {});
  StateEncoder enc(scenario_, StateMode::kFullWithBonds);
  std::vector<double> before, after;
  enc.encode(env, before);
  env.step(1);
  enc.encode(env, after);
  // Receptor prefix (positions + bond dirs precomputed) must be bit-equal.
  const std::size_t receptorBlock =
      3 * (scenario_.receptor.atomCount() + scenario_.receptor.bondCount());
  for (std::size_t i = 0; i < receptorBlock; ++i) {
    EXPECT_DOUBLE_EQ(before[i], after[i]) << "receptor feature " << i << " changed";
  }
  // Something in the ligand block must have changed.
  bool changed = false;
  for (std::size_t i = receptorBlock; i < before.size() && !changed; ++i) {
    changed = before[i] != after[i];
  }
  EXPECT_TRUE(changed);
}

TEST_F(StateEncoderFixture, PureTranslationKeepsBondDirections) {
  metadock::DockingEnv env(scenario_, {});
  StateEncoder enc(scenario_, StateMode::kFullWithBonds);
  std::vector<double> before, after;
  enc.encode(env, before);
  env.step(1);  // +x translation: bond directions are translation-invariant
  enc.encode(env, after);
  const std::size_t receptorBlock =
      3 * (scenario_.receptor.atomCount() + scenario_.receptor.bondCount());
  const std::size_t ligandPosBlock = 3 * scenario_.ligand.atomCount();
  for (std::size_t i = receptorBlock + ligandPosBlock; i < before.size(); ++i) {
    EXPECT_NEAR(before[i], after[i], 1e-12) << "ligand bond dir " << i;
  }
}

TEST_F(StateEncoderFixture, EncodeFromPositionsAgreesWithEncode) {
  metadock::DockingEnv env(scenario_, {});
  env.step(4);
  env.step(7);
  StateEncoder enc(scenario_, StateMode::kFullWithBonds);
  std::vector<double> a, b;
  enc.encode(env, a);
  enc.encodeFromPositions(env.ligandPositions(), b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST_F(StateEncoderFixture, WrongPositionCountThrows) {
  StateEncoder enc(scenario_, StateMode::kLigandPositions);
  std::vector<Vec3> wrong(3);
  std::vector<double> out;
  EXPECT_THROW(enc.encodeFromPositions(wrong, out), std::invalid_argument);
}

}  // namespace
}  // namespace dqndock::core
