// Tests for the compiled ligand and pose application (rigid + torsions).

#include <gtest/gtest.h>

#include <cmath>

#include "src/chem/synthetic.hpp"
#include "src/chem/topology.hpp"
#include "src/metadock/ligand_model.hpp"

namespace dqndock::metadock {
namespace {

using chem::Element;
using chem::Molecule;

/// 5-atom chain with the middle bond rotatable:
/// 0 -(x)- 1 -(x)- 2 -(x)- 3 -(x)- 4, bond (1,2) rotatable.
Molecule chain5() {
  Molecule m;
  for (int i = 0; i < 5; ++i) m.addAtom(Element::C, Vec3{1.5 * i, 0, 0}, 0);
  m.addBond(0, 1);
  m.addBond(1, 2, /*rotatable=*/true);
  m.addBond(2, 3);
  m.addBond(3, 4);
  return m;
}

/// Bent chain so torsion actually moves atoms off the axis.
Molecule bentChain() {
  Molecule m;
  m.addAtom(Element::C, Vec3{0, 0, 0}, 0);
  m.addAtom(Element::C, Vec3{1.5, 0, 0}, 0);
  m.addAtom(Element::C, Vec3{3.0, 0, 0}, 0);
  m.addAtom(Element::C, Vec3{3.0, 1.5, 0}, 0);  // off-axis
  m.addBond(0, 1);
  m.addBond(1, 2, true);
  m.addBond(2, 3);
  return m;
}

TEST(LigandModelTest, TemplateIsCentered) {
  Molecule m = chain5();
  m.translate(Vec3{10, 20, 30});
  LigandModel model(m);
  Vec3 centroid;
  for (const auto& p : model.templatePositions()) centroid += p;
  centroid /= static_cast<double>(model.atomCount());
  EXPECT_NEAR(centroid.norm(), 0.0, 1e-12);
}

TEST(LigandModelTest, RestPoseReproducesOriginalCoordinates) {
  Molecule m = chain5();
  m.translate(Vec3{10, 20, 30});
  LigandModel model(m);
  std::vector<Vec3> out;
  model.applyPose(model.restPose(), out);
  ASSERT_EQ(out.size(), m.atomCount());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(distance(out[i], m.position(i)), 0.0, 1e-12);
  }
}

TEST(LigandModelTest, TorsionCountMatchesRotatableBonds) {
  LigandModel model(chain5());
  EXPECT_EQ(model.torsionCount(), 1u);
  EXPECT_EQ(model.torsions()[0].axisA, 1);
  EXPECT_EQ(model.torsions()[0].axisB, 2);
}

TEST(LigandModelTest, TranslationMovesAllAtoms) {
  LigandModel model(chain5());
  Pose p = model.restPose();
  std::vector<Vec3> before, after;
  model.applyPose(p, before);
  p.translation += Vec3{1, 2, 3};
  model.applyPose(p, after);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(distance(after[i], before[i] + Vec3{1, 2, 3}), 0.0, 1e-12);
  }
}

TEST(LigandModelTest, RigidRotationPreservesInternalDistances) {
  LigandModel model(chain5());
  Pose p = model.restPose();
  p.orientation = Quat::fromAxisAngle(Vec3{1, 1, 0}, 0.9);
  std::vector<Vec3> rest, rotated;
  model.applyPose(model.restPose(), rest);
  model.applyPose(p, rotated);
  for (std::size_t i = 0; i < rest.size(); ++i) {
    for (std::size_t j = i + 1; j < rest.size(); ++j) {
      EXPECT_NEAR(distance(rotated[i], rotated[j]), distance(rest[i], rest[j]), 1e-10);
    }
  }
}

TEST(LigandModelTest, TorsionMovesOnlyDownstreamAtoms) {
  LigandModel model(bentChain());
  Pose p = model.restPose();
  std::vector<Vec3> before, after;
  model.applyPose(p, before);
  p.torsions[0] = M_PI / 2;
  model.applyPose(p, after);
  // Atoms 0, 1, 2 are fixed/on-axis; atom 3 moves.
  EXPECT_NEAR(distance(before[0], after[0]), 0.0, 1e-10);
  EXPECT_NEAR(distance(before[1], after[1]), 0.0, 1e-10);
  EXPECT_NEAR(distance(before[2], after[2]), 0.0, 1e-10);
  EXPECT_GT(distance(before[3], after[3]), 0.5);
}

TEST(LigandModelTest, TorsionPreservesBondLengths) {
  const Molecule m = bentChain();
  LigandModel model(m);
  Pose p = model.restPose();
  p.torsions[0] = 1.1;
  std::vector<Vec3> out;
  model.applyPose(p, out);
  for (const auto& b : m.bonds()) {
    const double orig = distance(m.position(static_cast<std::size_t>(b.a)),
                                 m.position(static_cast<std::size_t>(b.b)));
    const double now = distance(out[static_cast<std::size_t>(b.a)],
                                out[static_cast<std::size_t>(b.b)]);
    EXPECT_NEAR(now, orig, 1e-10);
  }
}

TEST(LigandModelTest, FullTorsionTurnIsIdentity) {
  LigandModel model(bentChain());
  Pose p = model.restPose();
  std::vector<Vec3> before, after;
  model.applyPose(p, before);
  p.torsions[0] = 2.0 * M_PI;
  model.applyPose(p, after);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(distance(before[i], after[i]), 0.0, 1e-9);
  }
}

TEST(LigandModelTest, SyntheticLigandTorsionsIndependent) {
  Rng rng(17);
  const Molecule lig = chem::buildLigand(30, 4, rng);
  LigandModel model(lig);
  ASSERT_EQ(model.torsionCount(), 4u);
  // Twisting one torsion must not move atoms outside its moved set.
  for (std::size_t k = 0; k < model.torsionCount(); ++k) {
    Pose p = model.restPose();
    std::vector<Vec3> before, after;
    model.applyPose(p, before);
    p.torsions[k] = 0.7;
    model.applyPose(p, after);
    std::vector<char> inMoved(model.atomCount(), 0);
    for (int idx : model.torsions()[k].movedAtoms) inMoved[static_cast<std::size_t>(idx)] = 1;
    for (std::size_t i = 0; i < before.size(); ++i) {
      if (!inMoved[i]) {
        EXPECT_NEAR(distance(before[i], after[i]), 0.0, 1e-9)
            << "atom " << i << " moved by torsion " << k;
      }
    }
  }
}

TEST(LigandModelTest, ExtraPoseTorsionsIgnored) {
  LigandModel model(chain5());
  Pose p(5);  // more torsions than the model has
  p.translation = model.restPose().translation;
  std::vector<Vec3> out;
  EXPECT_NO_THROW(model.applyPose(p, out));
  EXPECT_EQ(out.size(), model.atomCount());
}

TEST(LigandModelTest, DonorAnchorsOnlyForDonorHydrogens) {
  chem::Molecule m;
  m.addAtom(Element::O, Vec3{0, 0, 0}, -0.8, chem::HBondRole::kAcceptor);
  m.addAtom(Element::H, Vec3{0.96, 0, 0}, 0.4, chem::HBondRole::kDonorHydrogen);
  m.addAtom(Element::H, Vec3{-0.96, 0, 0}, 0.1, chem::HBondRole::kNone);
  m.addBond(0, 1);
  m.addBond(0, 2);
  LigandModel model(m);
  EXPECT_EQ(model.hydrogenAnchors()[0], -1);
  EXPECT_EQ(model.hydrogenAnchors()[1], 0);
  EXPECT_EQ(model.hydrogenAnchors()[2], -1);
}

}  // namespace
}  // namespace dqndock::metadock
