// Tests for the MLP: shapes, ReLU semantics, finite-difference gradient
// verification, weight copying and binary serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "src/nn/mlp.hpp"
#include "src/nn/serialize.hpp"

namespace dqndock::nn {
namespace {

Tensor randomTensor(std::size_t r, std::size_t c, Rng& rng) {
  Tensor t(r, c);
  for (double& v : t.flat()) v = rng.gaussian();
  return t;
}

TEST(DenseLayerTest, ForwardShapeAndBias) {
  Rng rng(1);
  DenseLayer layer(3, 2);
  layer.initHe(rng);
  layer.bias()(0, 0) = 10.0;
  layer.bias()(0, 1) = -5.0;
  Tensor x(4, 3, 0.0);  // zero input -> output equals bias
  Tensor y;
  layer.forward(x, y, nullptr);
  ASSERT_EQ(y.rows(), 4u);
  ASSERT_EQ(y.cols(), 2u);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(y(r, 0), 10.0);
    EXPECT_DOUBLE_EQ(y(r, 1), -5.0);
  }
}

TEST(DenseLayerTest, ForwardDimMismatchThrows) {
  Rng rng(2);
  DenseLayer layer(3, 2);
  layer.initHe(rng);
  Tensor x(1, 5);
  Tensor y;
  EXPECT_THROW(layer.forward(x, y, nullptr), std::invalid_argument);
}

TEST(ReluTest, ForwardZeroesNegativesAndMasks) {
  Tensor x(1, 4);
  x(0, 0) = -1;
  x(0, 1) = 2;
  x(0, 2) = 0;
  x(0, 3) = 0.5;
  Tensor mask;
  reluForward(x, mask);
  EXPECT_DOUBLE_EQ(x(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(x(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(x(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(x(0, 3), 0.5);
  EXPECT_DOUBLE_EQ(mask(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(mask(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(mask(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(mask(0, 3), 1.0);
}

TEST(ReluTest, BackwardAppliesMask) {
  Tensor grad(1, 2, 3.0);
  Tensor mask(1, 2);
  mask(0, 0) = 0.0;
  mask(0, 1) = 1.0;
  reluBackward(grad, mask);
  EXPECT_DOUBLE_EQ(grad(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grad(0, 1), 3.0);
}

TEST(MlpTest, ConstructionValidation) {
  Rng rng(3);
  EXPECT_THROW(Mlp({5}, rng), std::invalid_argument);
  EXPECT_THROW(Mlp({5, 0, 2}, rng), std::invalid_argument);
  Mlp net({5, 7, 3}, rng);
  EXPECT_EQ(net.inputDim(), 5u);
  EXPECT_EQ(net.outputDim(), 3u);
  EXPECT_EQ(net.parameterCount(), 5u * 7 + 7 + 7u * 3 + 3);
}

TEST(MlpTest, ForwardAndPredictAgree) {
  Rng rng(4);
  Mlp net({6, 8, 8, 4}, rng);
  const Tensor x = randomTensor(5, 6, rng);
  const Tensor& yTrain = net.forward(x);
  Tensor yPredict;
  net.predict(x, yPredict);
  ASSERT_EQ(yTrain.rows(), yPredict.rows());
  for (std::size_t i = 0; i < yTrain.size(); ++i) {
    EXPECT_NEAR(yTrain.flat()[i], yPredict.flat()[i], 1e-12);
  }
}

/// Finite-difference gradient check on a scalar loss L = sum(Y * G) with a
/// fixed cotangent G, so dL/dY = G exactly.
TEST(MlpTest, GradientsMatchFiniteDifferences) {
  Rng rng(5);
  Mlp net({4, 6, 5, 3}, rng);
  const Tensor x = randomTensor(3, 4, rng);
  const Tensor g = randomTensor(3, 3, rng);  // cotangent

  net.zeroGrad();
  net.forward(x);
  net.backward(g);

  auto loss = [&]() {
    Tensor y;
    net.predict(x, y);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) acc += y.flat()[i] * g.flat()[i];
    return acc;
  };

  const double eps = 1e-6;
  auto params = net.parameters();
  auto grads = net.gradients();
  int checked = 0;
  for (std::size_t p = 0; p < params.size(); ++p) {
    // Spot-check a handful of coordinates per parameter tensor.
    for (std::size_t i = 0; i < params[p]->size(); i += std::max<std::size_t>(1, params[p]->size() / 5)) {
      double& w = params[p]->flat()[i];
      const double orig = w;
      w = orig + eps;
      const double up = loss();
      w = orig - eps;
      const double down = loss();
      w = orig;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(grads[p]->flat()[i], numeric, 1e-5)
          << "param tensor " << p << " index " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(MlpTest, BackwardAccumulatesUntilZeroGrad) {
  Rng rng(6);
  Mlp net({3, 4, 2}, rng);
  const Tensor x = randomTensor(2, 3, rng);
  const Tensor g = randomTensor(2, 2, rng);
  net.zeroGrad();
  net.forward(x);
  net.backward(g);
  const double once = maxAbs(*net.gradients()[0]);
  net.forward(x);
  net.backward(g);
  const double twice = maxAbs(*net.gradients()[0]);
  EXPECT_NEAR(twice, 2 * once, 1e-9);
  net.zeroGrad();
  EXPECT_DOUBLE_EQ(maxAbs(*net.gradients()[0]), 0.0);
}

TEST(MlpTest, CopyWeightsMakesNetworksIdentical) {
  Rng rngA(7), rngB(8);
  Mlp a({4, 5, 3}, rngA);
  Mlp b({4, 5, 3}, rngB);
  const Tensor x = randomTensor(2, 4, rngA);
  Tensor ya, yb;
  a.predict(x, ya);
  b.predict(x, yb);
  EXPECT_GT(maxAbs(ya) + maxAbs(yb), 0.0);
  b.copyWeightsFrom(a);
  b.predict(x, yb);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_DOUBLE_EQ(ya.flat()[i], yb.flat()[i]);
}

TEST(MlpTest, CopyWeightsShapeMismatchThrows) {
  Rng rng(9);
  Mlp a({4, 5, 3}, rng);
  Mlp b({4, 6, 3}, rng);
  Mlp c({4, 3}, rng);
  EXPECT_THROW(b.copyWeightsFrom(a), std::invalid_argument);
  EXPECT_THROW(c.copyWeightsFrom(a), std::invalid_argument);
}

TEST(SerializeTest, RoundTripPreservesPredictions) {
  Rng rng(10);
  Mlp net({5, 9, 4}, rng);
  std::stringstream ss;
  saveMlp(ss, net);
  Mlp loaded = loadMlp(ss);
  EXPECT_EQ(loaded.dims(), net.dims());
  const Tensor x = randomTensor(3, 5, rng);
  Tensor y1, y2;
  net.predict(x, y1);
  loaded.predict(x, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_DOUBLE_EQ(y1.flat()[i], y2.flat()[i]);
}

TEST(SerializeTest, BadMagicRejected) {
  std::stringstream ss;
  ss << "not a checkpoint";
  EXPECT_THROW(loadMlp(ss), std::runtime_error);
}

TEST(SerializeTest, TruncatedStreamRejected) {
  Rng rng(11);
  Mlp net({5, 9, 4}, rng);
  std::stringstream ss;
  saveMlp(ss, net);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(loadMlp(truncated), std::runtime_error);
}

TEST(SerializeTest, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "dqndock_mlp_test.bin";
  Rng rng(12);
  Mlp net({3, 4, 2}, rng);
  saveMlpFile(path.string(), net);
  const Mlp loaded = loadMlpFile(path.string());
  EXPECT_EQ(loaded.dims(), net.dims());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dqndock::nn
