// Tests for the batched pose evaluator.

#include <gtest/gtest.h>

#include <cmath>

#include "src/chem/synthetic.hpp"
#include "src/metadock/evaluator.hpp"

namespace dqndock::metadock {
namespace {

class EvaluatorFixture : public ::testing::Test {
 protected:
  EvaluatorFixture()
      : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())),
        receptor_(scenario_.receptor, 12.0),
        ligand_(scenario_.ligand),
        scoring_(receptor_, ligand_, {}) {}

  chem::Scenario scenario_;
  ReceptorModel receptor_;
  LigandModel ligand_;
  ScoringFunction scoring_;
};

TEST_F(EvaluatorFixture, SingleEvaluationMatchesScoringFunction) {
  PoseEvaluator eval(scoring_, nullptr);
  const Pose pose = ligand_.restPose();
  EXPECT_DOUBLE_EQ(eval.evaluate(pose), scoring_.scorePose(pose));
}

TEST_F(EvaluatorFixture, BatchMatchesIndividual) {
  PoseEvaluator eval(scoring_, nullptr);
  Rng rng(7);
  std::vector<Pose> poses;
  for (int i = 0; i < 16; ++i) {
    poses.push_back(randomPose(receptor_.centerOfMass(), 15.0, ligand_.torsionCount(), rng));
  }
  const auto batch = eval.evaluateBatch(poses);
  ASSERT_EQ(batch.size(), poses.size());
  for (std::size_t i = 0; i < poses.size(); ++i) {
    // evaluateBatch runs the pose-batched kernel, whose lane accumulation
    // order differs from the per-pose kernel: agreement is ~1e-9
    // relative, not bitwise (test_scoring_batched pins the batched path's
    // own bit-determinism guarantees).
    const double ref = scoring_.scorePose(poses[i]);
    EXPECT_NEAR(batch[i], ref, std::max(1e-9, std::fabs(ref) * 1e-9)) << "pose " << i;
  }
}

TEST_F(EvaluatorFixture, ParallelBatchMatchesSerial) {
  ThreadPool pool(4);
  PoseEvaluator serial(scoring_, nullptr);
  PoseEvaluator parallel(scoring_, &pool);
  Rng rng(9);
  std::vector<Pose> poses;
  for (int i = 0; i < 32; ++i) {
    poses.push_back(randomPose(receptor_.centerOfMass(), 15.0, ligand_.torsionCount(), rng));
  }
  const auto a = serial.evaluateBatch(poses);
  const auto b = parallel.evaluateBatch(poses);
  for (std::size_t i = 0; i < poses.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST_F(EvaluatorFixture, EvaluationCounterTracksCalls) {
  PoseEvaluator eval(scoring_, nullptr);
  EXPECT_EQ(eval.evaluationCount(), 0u);
  eval.evaluate(ligand_.restPose());
  EXPECT_EQ(eval.evaluationCount(), 1u);
  std::vector<Pose> poses(5, ligand_.restPose());
  eval.evaluateBatch(poses);
  EXPECT_EQ(eval.evaluationCount(), 6u);
  eval.resetEvaluationCount();
  EXPECT_EQ(eval.evaluationCount(), 0u);
}

TEST_F(EvaluatorFixture, EmptyBatch) {
  PoseEvaluator eval(scoring_, nullptr);
  const auto scores = eval.evaluateBatch({});
  EXPECT_TRUE(scores.empty());
  EXPECT_EQ(eval.evaluationCount(), 0u);
}

}  // namespace
}  // namespace dqndock::metadock
