// Tests for the compact pose-based replay buffer: sampled minibatches
// must decode to exactly the states the raw buffer would have stored.

#include <gtest/gtest.h>

#include "src/core/pose_replay.hpp"

namespace dqndock::core {
namespace {

class PoseReplayFixture : public ::testing::Test {
 protected:
  PoseReplayFixture()
      : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())),
        env_(scenario_, {}),
        encoder_(scenario_, StateMode::kLigandPositions),
        task_(env_, encoder_) {}

  chem::Scenario scenario_;
  metadock::DockingEnv env_;
  StateEncoder encoder_;
  DockingTask task_;
};

TEST_F(PoseReplayFixture, ZeroCapacityThrows) {
  EXPECT_THROW(PoseReplayBuffer(0, task_), std::invalid_argument);
}

TEST_F(PoseReplayFixture, SampleEmptyThrows) {
  PoseReplayBuffer rb(8, task_);
  Rng rng(1);
  EXPECT_THROW(rb.sample(2, rng), std::logic_error);
}

TEST_F(PoseReplayFixture, PushViaTaskAndDecodeMatchesRawStates) {
  PoseReplayBuffer poseRb(64, task_);
  rl::ReplayBuffer rawRb(64, encoder_.dim());

  std::vector<double> state, next;
  task_.reset(state);
  Rng actRng(2);
  for (int i = 0; i < 30; ++i) {
    const int action = static_cast<int>(actRng.uniformInt(12));
    const rl::EnvStep r = task_.step(action, next);
    poseRb.push(state, action, r.reward, next, r.terminal);
    rawRb.push(state, action, r.reward, next, r.terminal);
    state = next;
    if (r.terminal) task_.reset(state);
  }
  ASSERT_EQ(poseRb.size(), rawRb.size());

  // Identical RNG -> identical indices -> decoded states must match the
  // raw float32 stores within float precision.
  Rng rngA(77), rngB(77);
  const rl::Minibatch a = poseRb.sample(16, rngA);
  const rl::Minibatch b = rawRb.sample(16, rngB);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t row = 0; row < a.size(); ++row) {
    EXPECT_EQ(a.actions[row], b.actions[row]);
    EXPECT_FLOAT_EQ(static_cast<float>(a.rewards[row]), static_cast<float>(b.rewards[row]));
    EXPECT_EQ(a.terminals[row], b.terminals[row]);
    for (std::size_t c = 0; c < encoder_.dim(); ++c) {
      EXPECT_NEAR(a.states(row, c), b.states(row, c), 1e-5);
      EXPECT_NEAR(a.nextStates(row, c), b.nextStates(row, c), 1e-5);
    }
  }
}

TEST_F(PoseReplayFixture, RingOverwrites) {
  PoseReplayBuffer rb(4, task_);
  metadock::Pose p(env_.ligand().torsionCount());
  for (int i = 0; i < 10; ++i) {
    rb.pushPose(p, i, 0.0, p, false);
    EXPECT_LE(rb.size(), 4u);
  }
  EXPECT_EQ(rb.size(), 4u);
  Rng rng(3);
  const rl::Minibatch mb = rb.sample(32, rng);
  for (int a : mb.actions) EXPECT_GE(a, 6);  // only the last 4 pushes survive
}

TEST_F(PoseReplayFixture, CompactBufferIsMuchSmallerThanRaw) {
  const std::size_t capacity = 1000;
  PoseReplayBuffer poseRb(capacity, task_);
  rl::ReplayBuffer rawRb(capacity, encoder_.dim());
  metadock::Pose p(env_.ligand().torsionCount());
  std::vector<double> s(encoder_.dim(), 0.0);
  for (std::size_t i = 0; i < capacity; ++i) {
    poseRb.pushPose(p, 0, 0.0, p, false);
    rawRb.push(s, 0, 0.0, s, false);
  }
  // Ligand-positions mode: 12 atoms -> 36 doubles raw vs ~9-double poses.
  EXPECT_LT(poseRb.memoryBytes(), rawRb.memoryBytes());
}

}  // namespace
}  // namespace dqndock::core
