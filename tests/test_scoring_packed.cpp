// Golden-equivalence suite for the packed (SoA, cell-sorted) Eq. 1
// kernel against the original scalar AoS fallback, plus the
// thread-determinism regression test: scores must be bit-identical
// across serial evaluation and every thread-pool size.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/chem/synthetic.hpp"
#include "src/metadock/evaluator.hpp"
#include "src/metadock/scoring.hpp"

namespace dqndock::metadock {
namespace {

using chem::Element;
using chem::HBondRole;

/// Relative tolerance for packed-vs-scalar comparisons. The two kernels
/// reassociate the pair sum differently (lane-blocked vs sequential), so
/// exact equality is not expected; 1e-9 relative is the ISSUE bar.
double tol(double ref) { return std::max(1e-9, std::fabs(ref) * 1e-9); }

/// Asserts packed and scalar kernels agree per term on every pose.
void expectPackedMatchesScalar(const ReceptorModel& receptor, const LigandModel& ligand,
                               const ScoringOptions& base, std::span<const Pose> poses,
                               const char* what) {
  ScoringOptions packedOpts = base;
  packedOpts.packed = true;
  ScoringOptions scalarOpts = base;
  scalarOpts.packed = false;
  ScoringFunction packed(receptor, ligand, packedOpts);
  ScoringFunction scalar(receptor, ligand, scalarOpts);

  std::vector<Vec3> pos;
  for (std::size_t i = 0; i < poses.size(); ++i) {
    ligand.applyPose(poses[i], pos);
    const ScoreTerms a = packed.energy(pos);
    const ScoreTerms b = scalar.energy(pos);
    EXPECT_NEAR(a.electrostatic, b.electrostatic, tol(b.electrostatic))
        << what << " pose " << i << " (electrostatic)";
    EXPECT_NEAR(a.vdw, b.vdw, tol(b.vdw)) << what << " pose " << i << " (vdw)";
    EXPECT_NEAR(a.hbond, b.hbond, tol(b.hbond)) << what << " pose " << i << " (hbond)";
    EXPECT_NEAR(a.total(), b.total(), tol(b.total())) << what << " pose " << i << " (total)";
  }
}

/// The three execution paths both kernels support.
std::vector<std::pair<const char*, ScoringOptions>> pathConfigs() {
  ScoringOptions grid;  // defaults: cutoff 12, grid on
  ScoringOptions cutoffOnly;
  cutoffOnly.useGrid = false;
  ScoringOptions brute;
  brute.cutoff = 0.0;
  brute.useGrid = false;
  return {{"cutoff+grid", grid}, {"cutoff", cutoffOnly}, {"brute", brute}};
}

std::vector<Pose> randomPoses(const ReceptorModel& receptor, const LigandModel& ligand,
                              int count, double radius, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Pose> poses;
  for (int i = 0; i < count; ++i) {
    poses.push_back(randomPose(receptor.centerOfMass(), radius, ligand.torsionCount(), rng));
  }
  return poses;
}

TEST(PackedEquivalenceTest, MatchesScalarOnPaper2BSM) {
  // The paper's full-size scenario: 3,264 receptor atoms, 45-atom ligand.
  const chem::Scenario sc = chem::buildScenario(chem::ScenarioSpec::paper2bsm());
  ReceptorModel receptor(sc.receptor, 12.0);
  LigandModel ligand(sc.ligand);
  const auto poses = randomPoses(receptor, ligand, 8, 30.0, 11);
  for (const auto& [name, opts] : pathConfigs()) {
    expectPackedMatchesScalar(receptor, ligand, opts, poses, name);
  }
}

TEST(PackedEquivalenceTest, MatchesScalarOnRandomizedScenarios) {
  // Sweep randomized synthetic scenarios: different sizes, seeds, and
  // rotatable-bond counts, each scored at random poses that range from
  // deep clashes to far-field placements.
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    chem::ScenarioSpec spec = chem::ScenarioSpec::tiny();
    spec.receptorAtoms = 180 + 60 * static_cast<std::size_t>(seed % 7);
    spec.ligandAtoms = 9 + static_cast<std::size_t>(seed % 11);
    spec.ligandRotatableBonds = 1 + seed % 4;
    spec.seed = seed;
    const chem::Scenario sc = chem::buildScenario(spec);
    ReceptorModel receptor(sc.receptor, 12.0);
    LigandModel ligand(sc.ligand);
    const auto poses = randomPoses(receptor, ligand, 12, 20.0, seed + 1);
    for (const auto& [name, opts] : pathConfigs()) {
      expectPackedMatchesScalar(receptor, ligand, opts, poses, name);
    }
  }
}

TEST(PackedEquivalenceTest, MatchesScalarOnHBondRichComplex) {
  // Hand-built complex where most atoms participate in hydrogen bonds,
  // so the packed kernel's sparse second pass carries real weight: a slab
  // of hydroxyl-like O-H pairs (donor hydrogens + acceptor oxygens)
  // facing a small ligand that is itself all donors/acceptors.
  chem::Molecule receptor("hbond-wall");
  Rng rng(77);
  for (int gx = 0; gx < 6; ++gx) {
    for (int gy = 0; gy < 6; ++gy) {
      const Vec3 o{gx * 3.0, gy * 3.0, 0.0};
      const int oi = receptor.addAtom(Element::O, o, -0.4, HBondRole::kAcceptor);
      const int hi = receptor.addAtom(Element::H, o + Vec3{0.3, 0.1, 0.95}, 0.4,
                                      HBondRole::kDonorHydrogen);
      receptor.addBond(oi, hi);  // anchors the donor direction
    }
  }

  chem::Molecule ligand("hbond-probe");
  const int n0 = ligand.addAtom(Element::N, {0, 0, 0}, -0.3, HBondRole::kAcceptor);
  const int h0 = ligand.addAtom(Element::H, {0.0, 0.0, 1.0}, 0.3, HBondRole::kDonorHydrogen);
  const int o1 = ligand.addAtom(Element::O, {1.4, 0.0, 0.0}, -0.35, HBondRole::kAcceptor);
  const int h1 = ligand.addAtom(Element::H, {1.4, 0.95, 0.2}, 0.35, HBondRole::kDonorHydrogen);
  const int c0 = ligand.addAtom(Element::C, {2.2, -1.1, 0.0}, 0.0);
  ligand.addBond(n0, h0);
  ligand.addBond(n0, o1);
  ligand.addBond(o1, h1);
  ligand.addBond(o1, c0);

  ReceptorModel model(receptor, 8.0);
  LigandModel lig(ligand);
  ASSERT_GT(model.donorHydrogenSites().size() + model.acceptorSites().size(), 0u);

  // Poses hovering above the slab at H-bonding distances plus random ones.
  std::vector<Pose> poses;
  for (double z : {1.9, 2.8, 5.0}) {
    Pose p(lig.torsionCount());
    p.translation = Vec3{7.5, 7.5, z};
    poses.push_back(p);
  }
  for (const Pose& p : randomPoses(model, lig, 10, 12.0, 78)) poses.push_back(p);

  ScoringOptions grid;
  grid.cutoff = 8.0;
  ScoringOptions cutoffOnly;
  cutoffOnly.cutoff = 8.0;
  cutoffOnly.useGrid = false;
  ScoringOptions brute;
  brute.cutoff = 0.0;
  brute.useGrid = false;
  expectPackedMatchesScalar(model, lig, grid, poses, "hbond cutoff+grid");
  expectPackedMatchesScalar(model, lig, cutoffOnly, poses, "hbond cutoff");
  expectPackedMatchesScalar(model, lig, brute, poses, "hbond brute");
}

TEST(PackedEquivalenceTest, MatchesScalarOutsideGridBoundingBox) {
  // Ligand atoms far outside the receptor bounding box exercise the
  // grid's out-of-box query path (and, far enough out, the empty query).
  const chem::Scenario sc = chem::buildScenario(chem::ScenarioSpec::tiny());
  ReceptorModel receptor(sc.receptor, 12.0);
  LigandModel ligand(sc.ligand);

  std::vector<Pose> poses;
  for (const Vec3& offset :
       {Vec3{40, 0, 0}, Vec3{0, -40, 0}, Vec3{25, 25, 25}, Vec3{-18, 30, -11},
        Vec3{500, 500, 500}, Vec3{-1e6, 0, 0}}) {
    Pose p(ligand.torsionCount());
    p.translation = receptor.centerOfMass() + offset;
    poses.push_back(p);
  }
  for (const auto& [name, opts] : pathConfigs()) {
    expectPackedMatchesScalar(receptor, ligand, opts, poses, name);
  }

  // A pose beyond cutoff reach of every receptor atom scores exactly zero
  // on the grid path (no ranges) and on the scalar path (cutoff skip).
  ScoringFunction sf(receptor, ligand, {});
  Pose far(ligand.torsionCount());
  far.translation = receptor.centerOfMass() + Vec3{500, 500, 500};
  EXPECT_EQ(sf.scorePose(far), 0.0);
}

TEST(PackedDeterminismTest, ScoresBitIdenticalAcrossThreadCounts) {
  // Regression for multithreaded nondeterminism: the ordered
  // per-ligand-atom reduction must make serial and 1/2/8-thread pools
  // agree to the last bit, for both kernels.
  const chem::Scenario sc = chem::buildScenario(chem::ScenarioSpec::tiny());
  ReceptorModel receptor(sc.receptor, 12.0);
  LigandModel ligand(sc.ligand);
  const auto poses = randomPoses(receptor, ligand, 6, 18.0, 5);

  for (bool packed : {true, false}) {
    ScoringOptions serialOpts;
    serialOpts.packed = packed;
    ScoringFunction serial(receptor, ligand, serialOpts);

    std::vector<double> reference;
    std::vector<Vec3> scratch;
    for (const Pose& p : poses) reference.push_back(serial.scorePose(p, scratch));

    for (std::size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      ScoringOptions opts = serialOpts;
      opts.pool = &pool;
      ScoringFunction sf(receptor, ligand, opts);
      for (std::size_t i = 0; i < poses.size(); ++i) {
        // EXPECT_EQ, not NEAR: bit-identical is the contract.
        EXPECT_EQ(sf.scorePose(poses[i], scratch), reference[i])
            << (packed ? "packed" : "scalar") << " kernel, " << threads
            << " threads, pose " << i;
      }
    }
  }
}

TEST(PackedDeterminismTest, BatchEvaluatorMatchesSerialAndIsDeterministic) {
  // evaluateBatch runs the pose-batched kernel: scores agree with
  // one-at-a-time serial evaluation to ~1e-9 relative (the pair terms are
  // identical, only the lane accumulation order differs), and the batched
  // results themselves are bit-identical across repeated batches and
  // thread counts (buffer reuse must not leak state, chunking must not
  // change tiling-visible results).
  const chem::Scenario sc = chem::buildScenario(chem::ScenarioSpec::tiny());
  ReceptorModel receptor(sc.receptor, 12.0);
  LigandModel ligand(sc.ligand);
  ScoringFunction sf(receptor, ligand, {});
  const auto poses = randomPoses(receptor, ligand, 64, 18.0, 9);

  PoseEvaluator serial(sf, nullptr);
  std::vector<double> reference;
  for (const Pose& p : poses) reference.push_back(serial.evaluate(p));

  ThreadPool pool(4);
  PoseEvaluator batched(sf, &pool);
  const std::vector<double> first = batched.evaluateBatch(poses);
  const std::vector<double> second = batched.evaluateBatch(poses);
  ASSERT_EQ(first.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(first[i], reference[i], tol(reference[i])) << "pose " << i;
    EXPECT_EQ(second[i], first[i]) << "pose " << i << " (second batch)";
  }

  ThreadPool pool1(1);
  PoseEvaluator oneThread(sf, &pool1);
  const std::vector<double> single = oneThread.evaluateBatch(poses);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(single[i], first[i]) << "pose " << i << " (1 vs 4 threads)";
  }
}

}  // namespace
}  // namespace dqndock::metadock
