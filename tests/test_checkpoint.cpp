// Tests for Q-network / agent weight checkpointing.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "src/rl/checkpoint.hpp"

namespace dqndock::rl {
namespace {

namespace fs = std::filesystem;

nn::Tensor probe() {
  nn::Tensor x(2, 4);
  double v = 0.1;
  for (double& e : x.flat()) e = (v += 0.3);
  return x;
}

TEST(CheckpointTest, MlpRoundTrip) {
  Rng rngA(1), rngB(2);
  MlpQNetwork a(4, {8, 8}, 3, rngA);
  MlpQNetwork b(4, {8, 8}, 3, rngB);

  std::stringstream ss;
  saveWeights(ss, a);
  loadWeights(ss, b);

  const nn::Tensor x = probe();
  nn::Tensor ya, yb;
  a.predict(x, ya);
  b.predict(x, yb);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_DOUBLE_EQ(ya.flat()[i], yb.flat()[i]);
}

TEST(CheckpointTest, DuelingRoundTrip) {
  Rng rngA(3), rngB(4);
  DuelingQNetwork a(4, {8}, 3, rngA);
  DuelingQNetwork b(4, {8}, 3, rngB);
  std::stringstream ss;
  saveWeights(ss, a);
  loadWeights(ss, b);
  const nn::Tensor x = probe();
  nn::Tensor ya, yb;
  a.predict(x, ya);
  b.predict(x, yb);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_DOUBLE_EQ(ya.flat()[i], yb.flat()[i]);
}

TEST(CheckpointTest, ShapeMismatchRejected) {
  Rng rng(5);
  MlpQNetwork a(4, {8}, 3, rng);
  MlpQNetwork wider(4, {16}, 3, rng);
  MlpQNetwork deeper(4, {8, 8}, 3, rng);
  std::stringstream ss;
  saveWeights(ss, a);
  EXPECT_THROW(loadWeights(ss, wider), std::runtime_error);
  std::stringstream ss2;
  saveWeights(ss2, a);
  EXPECT_THROW(loadWeights(ss2, deeper), std::runtime_error);
}

TEST(CheckpointTest, BadMagicAndTruncationRejected) {
  Rng rng(6);
  MlpQNetwork net(4, {8}, 3, rng);
  std::stringstream bad;
  bad << "garbage bytes here";
  EXPECT_THROW(loadWeights(bad, net), std::runtime_error);

  std::stringstream ss;
  saveWeights(ss, net);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 3));
  EXPECT_THROW(loadWeights(truncated, net), std::runtime_error);
}

TEST(CheckpointTest, AgentSaveLoadRestoresPolicyAndTarget) {
  Rng rng(7);
  DqnConfig cfg;
  cfg.hiddenSizes = {12};
  DqnAgent trained(3, 4, cfg, rng);
  DqnAgent fresh(3, 4, cfg, rng);

  const auto path = fs::temp_directory_path() / "dqndock_agent_ckpt.bin";
  saveAgent(path.string(), trained);
  loadAgent(path.string(), fresh);

  const std::vector<double> s{0.5, -1.0, 2.0};
  EXPECT_EQ(fresh.greedyAction(s), trained.greedyAction(s));
  const auto qa = trained.qValues(s);
  const auto qb = fresh.qValues(s);
  for (std::size_t i = 0; i < qa.size(); ++i) EXPECT_DOUBLE_EQ(qa[i], qb[i]);

  // Target was re-synced to the loaded online weights.
  nn::Tensor x(1, 3);
  x(0, 0) = 0.5;
  x(0, 1) = -1.0;
  x(0, 2) = 2.0;
  nn::Tensor qOnline, qTarget;
  fresh.online().predict(x, qOnline);
  fresh.target().predict(x, qTarget);
  for (std::size_t i = 0; i < qOnline.size(); ++i) {
    EXPECT_DOUBLE_EQ(qOnline.flat()[i], qTarget.flat()[i]);
  }
  fs::remove(path);
}

TEST(CheckpointTest, MissingFileThrows) {
  Rng rng(8);
  DqnConfig cfg;
  DqnAgent agent(2, 2, cfg, rng);
  EXPECT_THROW(loadAgent("/nonexistent/ckpt.bin", agent), std::runtime_error);
}

}  // namespace
}  // namespace dqndock::rl
