// Tests for the periodic-table subset.

#include <gtest/gtest.h>

#include "src/chem/element.hpp"

namespace dqndock::chem {
namespace {

TEST(ElementTest, SymbolRoundTrip) {
  for (int i = 0; i < kElementCount; ++i) {
    const auto e = static_cast<Element>(i);
    if (e == Element::Unknown) continue;
    EXPECT_EQ(elementFromSymbol(elementSymbol(e)), e);
  }
}

TEST(ElementTest, CaseInsensitiveParsing) {
  EXPECT_EQ(elementFromSymbol("c"), Element::C);
  EXPECT_EQ(elementFromSymbol("CL"), Element::Cl);
  EXPECT_EQ(elementFromSymbol("cl"), Element::Cl);
  EXPECT_EQ(elementFromSymbol("BR"), Element::Br);
}

TEST(ElementTest, WhitespaceTolerated) {
  EXPECT_EQ(elementFromSymbol(" N "), Element::N);
  EXPECT_EQ(elementFromSymbol("\tO"), Element::O);
}

TEST(ElementTest, UnknownSymbols) {
  EXPECT_EQ(elementFromSymbol("Zz"), Element::Unknown);
  EXPECT_EQ(elementFromSymbol(""), Element::Unknown);
  EXPECT_EQ(elementFromSymbol("  "), Element::Unknown);
}

TEST(ElementTest, MassesOrdered) {
  EXPECT_LT(elementMass(Element::H), elementMass(Element::C));
  EXPECT_LT(elementMass(Element::C), elementMass(Element::N));
  EXPECT_LT(elementMass(Element::N), elementMass(Element::O));
  EXPECT_LT(elementMass(Element::O), elementMass(Element::S));
  EXPECT_NEAR(elementMass(Element::H), 1.008, 1e-3);
  EXPECT_NEAR(elementMass(Element::C), 12.011, 1e-3);
}

TEST(ElementTest, CovalentRadiiPlausible) {
  for (int i = 0; i < kElementCount; ++i) {
    const double r = covalentRadius(static_cast<Element>(i));
    EXPECT_GT(r, 0.2);
    EXPECT_LT(r, 2.0);
  }
  EXPECT_LT(covalentRadius(Element::H), covalentRadius(Element::C));
}

}  // namespace
}  // namespace dqndock::chem
