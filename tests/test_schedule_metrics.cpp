// Tests for the epsilon schedule and the metrics log.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/rl/metrics.hpp"
#include "src/rl/schedule.hpp"

namespace dqndock::rl {
namespace {

TEST(EpsilonScheduleTest, PaperValues) {
  // Table 1: start 1.0, end 0.05, decay 4.5e-5, 20k pure exploration.
  EpsilonSchedule eps;
  EXPECT_DOUBLE_EQ(eps.value(0), 1.0);
  EXPECT_DOUBLE_EQ(eps.value(19999), 1.0);  // pure exploration window
  EXPECT_DOUBLE_EQ(eps.value(20000), 1.0);  // decay starts here
  EXPECT_NEAR(eps.value(30000), 1.0 - 4.5e-5 * 10000, 1e-12);
  // Fully decayed: (1 - 0.05) / 4.5e-5 ~ 21111 steps after the window.
  EXPECT_DOUBLE_EQ(eps.value(20000 + 30000), 0.05);
  EXPECT_DOUBLE_EQ(eps.value(10000000), 0.05);
}

TEST(EpsilonScheduleTest, MonotoneNonIncreasing) {
  EpsilonSchedule eps(1.0, 0.1, 1e-3, 100);
  double prev = 2.0;
  for (std::size_t t = 0; t < 2000; t += 10) {
    const double v = eps.value(t);
    EXPECT_LE(v, prev);
    EXPECT_GE(v, 0.1);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

TEST(EpsilonScheduleTest, NoPureExplorationWindow) {
  EpsilonSchedule eps(0.8, 0.2, 0.1, 0);
  EXPECT_DOUBLE_EQ(eps.value(0), 0.8);
  EXPECT_NEAR(eps.value(3), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(eps.value(100), 0.2);
}

EpisodeRecord record(std::size_t ep, double q, double best) {
  EpisodeRecord r;
  r.episode = ep;
  r.avgMaxQ = q;
  r.bestScore = best;
  return r;
}

TEST(MetricsLogTest, AddAndAccess) {
  MetricsLog log;
  EXPECT_TRUE(log.empty());
  log.add(record(0, 1.0, 5.0));
  log.add(record(1, 2.0, 3.0));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log.records()[1].avgMaxQ, 2.0);
}

TEST(MetricsLogTest, MeanAvgMaxQRanges) {
  MetricsLog log;
  for (int i = 0; i < 10; ++i) log.add(record(i, i, 0));
  EXPECT_DOUBLE_EQ(log.meanAvgMaxQ(0, 10), 4.5);
  EXPECT_DOUBLE_EQ(log.meanAvgMaxQ(0, 5), 2.0);
  EXPECT_DOUBLE_EQ(log.meanAvgMaxQ(5, 10), 7.0);
  EXPECT_DOUBLE_EQ(log.meanAvgMaxQ(5, 100), 7.0);  // clamped
  EXPECT_DOUBLE_EQ(log.meanAvgMaxQ(5, 5), 0.0);    // empty range
}

TEST(MetricsLogTest, SmoothingWindow) {
  MetricsLog log;
  for (double v : {0.0, 2.0, 4.0, 6.0}) log.add(record(0, v, 0));
  const auto sm = log.smoothedAvgMaxQ(2);
  ASSERT_EQ(sm.size(), 4u);
  EXPECT_DOUBLE_EQ(sm[0], 0.0);
  EXPECT_DOUBLE_EQ(sm[1], 1.0);
  EXPECT_DOUBLE_EQ(sm[2], 3.0);
  EXPECT_DOUBLE_EQ(sm[3], 5.0);
  EXPECT_TRUE(log.smoothedAvgMaxQ(0).empty());
}

TEST(MetricsLogTest, BestScoreOverall) {
  MetricsLog log;
  log.add(record(0, 0, -5.0));
  log.add(record(1, 0, 12.0));
  log.add(record(2, 0, 3.0));
  EXPECT_DOUBLE_EQ(log.bestScoreOverall(), 12.0);
}

TEST(MetricsLogTest, CsvExport) {
  MetricsLog log;
  log.add(record(0, 1.5, 2.5));
  const auto path = std::filesystem::temp_directory_path() / "dqndock_metrics_test.csv";
  log.writeCsv(path.string());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "episode,steps,total_reward,avg_max_q,final_score,best_score,epsilon,termination");
  std::string row;
  std::getline(in, row);
  EXPECT_FALSE(row.empty());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dqndock::rl
