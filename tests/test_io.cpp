// Tests for the PDB and XYZ readers/writers, including failure injection
// on malformed inputs.

#include <gtest/gtest.h>

#include <sstream>

#include "src/chem/pdb_io.hpp"
#include "src/chem/xyz_io.hpp"

namespace dqndock::chem {
namespace {

Molecule sample() {
  Molecule m("sample");
  m.addAtom(Element::C, Vec3{1.0, 2.0, 3.0}, -0.1);
  m.addAtom(Element::N, Vec3{-4.5, 0.25, 6.125}, -0.4);
  m.addAtom(Element::H, Vec3{0.0, 0.0, 0.0}, 0.3);
  m.addBond(0, 1);
  m.addBond(0, 2);
  return m;
}

TEST(PdbIoTest, WriteReadRoundTrip) {
  const Molecule original = sample();
  std::stringstream ss;
  writePdb(ss, original);
  const Molecule parsed = readPdb(ss);
  ASSERT_EQ(parsed.atomCount(), original.atomCount());
  ASSERT_EQ(parsed.bondCount(), original.bondCount());
  for (std::size_t i = 0; i < original.atomCount(); ++i) {
    EXPECT_EQ(parsed.element(i), original.element(i));
    // PDB coordinates carry 3 decimals.
    EXPECT_NEAR(distance(parsed.position(i), original.position(i)), 0.0, 1e-3);
  }
}

TEST(PdbIoTest, ChargesSurviveRoundTripViaOccupancyColumn) {
  const Molecule original = sample();
  std::stringstream ss;
  writePdb(ss, original);
  const Molecule parsed = readPdb(ss);
  for (std::size_t i = 0; i < original.atomCount(); ++i) {
    EXPECT_NEAR(parsed.charge(i), original.charge(i), 1e-2);
  }
}

TEST(PdbIoTest, ParsesMinimalAtomRecord) {
  const std::string pdb =
      "ATOM      1  CA  ALA A   1      11.104   6.134  -6.504  1.00  0.00           C\n"
      "END\n";
  std::istringstream in(pdb);
  const Molecule m = readPdb(in);
  ASSERT_EQ(m.atomCount(), 1u);
  EXPECT_EQ(m.element(0), Element::C);
  EXPECT_NEAR(m.position(0).x, 11.104, 1e-6);
  EXPECT_NEAR(m.position(0).z, -6.504, 1e-6);
}

TEST(PdbIoTest, HetatmFilteredWhenDisabled) {
  const std::string pdb =
      "ATOM      1  CA  ALA A   1      11.104   6.134  -6.504  1.00  0.00           C\n"
      "HETATM    2  O   HOH A   2       0.000   0.000   0.000  1.00  0.00           O\n";
  PdbReadOptions opts;
  opts.hetatm = false;
  std::istringstream in(pdb);
  EXPECT_EQ(readPdb(in, opts).atomCount(), 1u);
  std::istringstream in2(pdb);
  EXPECT_EQ(readPdb(in2).atomCount(), 2u);
}

TEST(PdbIoTest, MalformedCoordinateThrowsWithLineNumber) {
  const std::string pdb =
      "ATOM      1  CA  ALA A   1      11.104   garbage  -6.504  1.00  0.00          C\n";
  std::istringstream in(pdb);
  try {
    readPdb(in);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(PdbIoTest, TruncatedRecordThrows) {
  const std::string pdb = "ATOM      1  CA  ALA A   1      11.104\n";
  std::istringstream in(pdb);
  EXPECT_THROW(readPdb(in), std::runtime_error);
}

TEST(PdbIoTest, ConectRecordsBuildBonds) {
  const std::string pdb =
      "ATOM      1  C   LIG A   1       0.000   0.000   0.000  1.00  0.00           C\n"
      "ATOM      2  C   LIG A   1       1.500   0.000   0.000  1.00  0.00           C\n"
      "ATOM      3  O   LIG A   1       3.000   0.000   0.000  1.00  0.00           O\n"
      "CONECT    1    2\n"
      "CONECT    2    3\n"
      "CONECT    2    1\n"  // duplicate, must be deduplicated
      "END\n";
  std::istringstream in(pdb);
  const Molecule m = readPdb(in);
  EXPECT_EQ(m.bondCount(), 2u);
}

TEST(PdbIoTest, BondPerceptionFallback) {
  const std::string pdb =
      "ATOM      1  C   LIG A   1       0.000   0.000   0.000  1.00  0.00           C\n"
      "ATOM      2  C   LIG A   1       1.500   0.000   0.000  1.00  0.00           C\n";
  PdbReadOptions opts;
  opts.perceiveBonds = true;
  std::istringstream in(pdb);
  EXPECT_EQ(readPdb(in, opts).bondCount(), 1u);
}

TEST(PdbIoTest, UnknownRecordsIgnored) {
  const std::string pdb =
      "HEADER    TEST\nREMARK  something\n"
      "ATOM      1  C   LIG A   1       0.000   0.000   0.000  1.00  0.00           C\nTER\n";
  std::istringstream in(pdb);
  EXPECT_EQ(readPdb(in).atomCount(), 1u);
}

TEST(PdbIoTest, MissingFileThrows) {
  EXPECT_THROW(readPdbFile("/nonexistent/file.pdb"), std::runtime_error);
}

TEST(XyzIoTest, RoundTrip) {
  const Molecule original = sample();
  std::stringstream ss;
  writeXyz(ss, original, "comment here");
  const Molecule parsed = readXyz(ss);
  ASSERT_EQ(parsed.atomCount(), original.atomCount());
  EXPECT_EQ(parsed.name(), "comment here");
  for (std::size_t i = 0; i < original.atomCount(); ++i) {
    EXPECT_EQ(parsed.element(i), original.element(i));
    EXPECT_NEAR(distance(parsed.position(i), original.position(i)), 0.0, 1e-9);
    EXPECT_NEAR(parsed.charge(i), original.charge(i), 1e-9);
  }
}

TEST(XyzIoTest, EmptyInputThrows) {
  std::istringstream in("");
  EXPECT_THROW(readXyz(in), std::runtime_error);
}

TEST(XyzIoTest, BadCountThrows) {
  std::istringstream in("abc\ncomment\n");
  EXPECT_THROW(readXyz(in), std::runtime_error);
}

TEST(XyzIoTest, TruncatedAtomsThrow) {
  std::istringstream in("3\ncomment\nC 0 0 0\n");
  EXPECT_THROW(readXyz(in), std::runtime_error);
}

TEST(XyzIoTest, MalformedAtomLineThrows) {
  std::istringstream in("1\ncomment\nC zero zero zero\n");
  EXPECT_THROW(readXyz(in), std::runtime_error);
}

}  // namespace
}  // namespace dqndock::chem
