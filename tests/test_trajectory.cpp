// Tests for episode trajectory recording and multi-frame XYZ export.

#include <gtest/gtest.h>

#include <sstream>

#include "src/chem/synthetic.hpp"
#include "src/chem/xyz_io.hpp"
#include "src/metadock/trajectory.hpp"

namespace dqndock::metadock {
namespace {

class TrajectoryFixture : public ::testing::Test {
 protected:
  TrajectoryFixture()
      : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())), env_(scenario_, {}) {}

  chem::Scenario scenario_;
  DockingEnv env_;
};

TEST_F(TrajectoryFixture, RecordsFrames) {
  Trajectory traj(env_.ligand());
  env_.reset();
  traj.recordFrom(env_);
  env_.step(4);
  traj.recordFrom(env_, 4, 1.0);
  EXPECT_EQ(traj.frameCount(), 2u);
  EXPECT_EQ(traj.frames()[0].action, -1);
  EXPECT_EQ(traj.frames()[1].action, 4);
  EXPECT_DOUBLE_EQ(traj.frames()[1].score, env_.score());
}

TEST_F(TrajectoryFixture, BestFrameFindsMaxScore) {
  Trajectory traj(env_.ligand());
  Pose p(env_.ligand().torsionCount());
  traj.record(p, 1.0);
  traj.record(p, 9.0);
  traj.record(p, 3.0);
  EXPECT_EQ(traj.bestFrame(), 1u);
}

TEST_F(TrajectoryFixture, BestFrameOnEmptyThrows) {
  Trajectory traj(env_.ligand());
  EXPECT_THROW(traj.bestFrame(), std::logic_error);
}

TEST_F(TrajectoryFixture, XyzExportHasOneBlockPerFrame) {
  Trajectory traj(env_.ligand());
  env_.reset();
  traj.recordFrom(env_);
  env_.step(4);
  traj.recordFrom(env_, 4, 1.0);

  std::stringstream ss;
  traj.writeXyz(ss);
  // Each block: natoms line + comment + natoms coordinate rows.
  const std::size_t atoms = env_.ligand().atomCount();
  std::size_t lines = 0;
  std::string line;
  std::size_t headerLines = 0;
  while (std::getline(ss, line)) {
    ++lines;
    if (line == std::to_string(atoms)) ++headerLines;
  }
  EXPECT_EQ(headerLines, 2u);
  EXPECT_EQ(lines, 2 * (atoms + 2));
}

TEST_F(TrajectoryFixture, XyzExportRoundTripsCoordinates) {
  // Record a short rollout, keeping the true ligand positions per frame.
  Trajectory traj(env_.ligand());
  env_.reset();
  std::vector<std::vector<Vec3>> expected;
  traj.recordFrom(env_);
  const auto snapshot = [&] {
    const auto pos = env_.ligandPositions();
    expected.emplace_back(pos.begin(), pos.end());
  };
  snapshot();
  for (int action : {4, 0, 2}) {
    env_.step(action);
    traj.recordFrom(env_, action, 0.0);
    snapshot();
  }

  std::stringstream ss;
  traj.writeXyz(ss);

  // Parse every block back and compare coordinates (file stores 6
  // significant digits, so compare loosely).
  for (std::size_t f = 0; f < expected.size(); ++f) {
    const chem::Molecule frame = chem::readXyz(ss);
    ASSERT_EQ(frame.atomCount(), expected[f].size()) << "frame " << f;
    for (std::size_t a = 0; a < expected[f].size(); ++a) {
      EXPECT_NEAR(frame.positions()[a].x, expected[f][a].x, 1e-3);
      EXPECT_NEAR(frame.positions()[a].y, expected[f][a].y, 1e-3);
      EXPECT_NEAR(frame.positions()[a].z, expected[f][a].z, 1e-3);
    }
  }
  // Nothing left but whitespace: the export contains exactly the frames.
  std::string rest;
  ss >> rest;
  EXPECT_TRUE(rest.empty());
}

TEST_F(TrajectoryFixture, ScoresSeriesMatchesFrames) {
  Trajectory traj(env_.ligand());
  Pose p(env_.ligand().torsionCount());
  traj.record(p, 1.5);
  traj.record(p, -2.5);
  const auto s = traj.scores();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 1.5);
  EXPECT_DOUBLE_EQ(s[1], -2.5);
}

TEST_F(TrajectoryFixture, RecordEpisodeRollsOutPolicy) {
  // Constant policy: always move -z (toward the receptor).
  auto traj = recordEpisode(env_, [](const DockingEnv&) { return 4; }, 25);
  EXPECT_GT(traj.frameCount(), 1u);
  EXPECT_LE(traj.frameCount(), 26u);
  // First frame is the reset frame.
  EXPECT_EQ(traj.frames()[0].action, -1);
  // Approaching the pocket improves the best score beyond the start.
  EXPECT_GE(traj.frames()[traj.bestFrame()].score, traj.frames()[0].score);
}

TEST_F(TrajectoryFixture, ClearResets) {
  Trajectory traj(env_.ligand());
  traj.record(Pose(env_.ligand().torsionCount()), 1.0);
  traj.clear();
  EXPECT_EQ(traj.frameCount(), 0u);
}

}  // namespace
}  // namespace dqndock::metadock
