// Tests for the Kabsch optimal superposition and the Jacobi eigensolver.

#include <gtest/gtest.h>

#include <cmath>

#include "src/chem/kabsch.hpp"
#include "src/chem/molecule.hpp"
#include "src/common/quat.hpp"
#include "src/common/rng.hpp"

namespace dqndock::chem {
namespace {

std::vector<Vec3> randomCloud(std::size_t n, Rng& rng) {
  std::vector<Vec3> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.gaussian(0, 3), rng.gaussian(0, 3), rng.gaussian(0, 3)});
  }
  return pts;
}

std::vector<Vec3> transformed(const std::vector<Vec3>& pts, const Mat3& rot, const Vec3& shift) {
  std::vector<Vec3> out;
  for (const auto& p : pts) out.push_back(rot * p + shift);
  return out;
}

TEST(SymmetricEigenTest, DiagonalMatrix) {
  Mat3 m;
  m(0, 0) = 3;
  m(1, 1) = 1;
  m(2, 2) = 2;
  double values[3];
  Mat3 vectors;
  symmetricEigen3(m, values, vectors);
  EXPECT_NEAR(values[0], 3, 1e-12);
  EXPECT_NEAR(values[1], 2, 1e-12);
  EXPECT_NEAR(values[2], 1, 1e-12);
}

TEST(SymmetricEigenTest, ReconstructsMatrix) {
  Rng rng(1);
  // Random symmetric matrix.
  Mat3 m;
  for (int i = 0; i < 3; ++i)
    for (int j = i; j < 3; ++j) m(i, j) = m(j, i) = rng.gaussian();
  double values[3];
  Mat3 v;
  symmetricEigen3(m, values, v);
  // m == V diag(values) V^T.
  Mat3 diag;
  diag.m.fill(0.0);
  for (int i = 0; i < 3; ++i) diag(i, i) = values[i];
  const Mat3 rebuilt = v * diag * v.transposed();
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_NEAR(rebuilt(i, j), m(i, j), 1e-10);
  // Eigenvalues descend.
  EXPECT_GE(values[0], values[1]);
  EXPECT_GE(values[1], values[2]);
}

TEST(KabschTest, ValidationErrors) {
  std::vector<Vec3> a{{0, 0, 0}}, b;
  EXPECT_THROW(kabsch(a, b), std::invalid_argument);
  EXPECT_THROW(kabsch(b, b), std::invalid_argument);
}

TEST(KabschTest, IdentityOnIdenticalSets) {
  Rng rng(2);
  const auto pts = randomCloud(20, rng);
  const Superposition sp = kabsch(pts, pts);
  EXPECT_NEAR(sp.rmsd, 0.0, 1e-9);
  const auto moved = applySuperposition(sp, pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(distance(moved[i], pts[i]), 0.0, 1e-9);
  }
}

class KabschPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KabschPropertyTest, RecoversRigidTransformExactly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 10);
  const auto mobile = randomCloud(25, rng);
  const Mat3 rot = Quat::fromAxisAngle(rng.unitVector<Vec3>(), rng.uniform(-3, 3)).toMatrix();
  const Vec3 shift{rng.gaussian(0, 10), rng.gaussian(0, 10), rng.gaussian(0, 10)};
  const auto target = transformed(mobile, rot, shift);

  const Superposition sp = kabsch(mobile, target);
  EXPECT_NEAR(sp.rmsd, 0.0, 1e-8);
  const auto aligned = applySuperposition(sp, mobile);
  for (std::size_t i = 0; i < mobile.size(); ++i) {
    EXPECT_NEAR(distance(aligned[i], target[i]), 0.0, 1e-7);
  }
  // The recovered rotation must be proper (det = +1).
  const Mat3& r = sp.rotation;
  const double det = r(0, 0) * (r(1, 1) * r(2, 2) - r(1, 2) * r(2, 1)) -
                     r(0, 1) * (r(1, 0) * r(2, 2) - r(1, 2) * r(2, 0)) +
                     r(0, 2) * (r(1, 0) * r(2, 1) - r(1, 1) * r(2, 0));
  EXPECT_NEAR(det, 1.0, 1e-9);
}

TEST_P(KabschPropertyTest, AlignedRmsdIsInvariantToRigidMotion) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 50);
  const auto a = randomCloud(15, rng);
  auto b = randomCloud(15, rng);  // genuinely different shape
  const double base = alignedRmsd(a, b);
  // Rigidly move b: aligned RMSD must not change.
  const Mat3 rot = Quat::fromAxisAngle(rng.unitVector<Vec3>(), 1.1).toMatrix();
  const auto bMoved = transformed(b, rot, Vec3{5, -2, 9});
  EXPECT_NEAR(alignedRmsd(a, bMoved), base, 1e-7);
}

TEST_P(KabschPropertyTest, AlignedNeverWorseThanDirect) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 90);
  const auto a = randomCloud(12, rng);
  const auto b = randomCloud(12, rng);
  EXPECT_LE(alignedRmsd(a, b), rmsd(std::span<const Vec3>(a), std::span<const Vec3>(b)) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KabschPropertyTest, ::testing::Range(0, 8));

TEST(KabschTest, HandlesPlanarPointSets) {
  // All points in the z = 0 plane (rank-2 covariance).
  std::vector<Vec3> mobile{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}, {2, 1, 0}};
  const Mat3 rot = Quat::fromAxisAngle(Vec3{0, 0, 1}, 0.7).toMatrix();
  const auto target = transformed(mobile, rot, Vec3{3, 4, 5});
  const Superposition sp = kabsch(mobile, target);
  EXPECT_NEAR(sp.rmsd, 0.0, 1e-8);
}

TEST(KabschTest, ReflectionIsNotUsed) {
  // A mirrored tetrahedron cannot be superposed by a proper rotation:
  // RMSD must stay > 0.
  std::vector<Vec3> mobile{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<Vec3> target = mobile;
  for (auto& p : target) p.z = -p.z;  // mirror
  const Superposition sp = kabsch(mobile, target);
  EXPECT_GT(sp.rmsd, 0.1);
}

TEST(KabschTest, SinglePoint) {
  std::vector<Vec3> a{{1, 2, 3}}, b{{4, 5, 6}};
  const Superposition sp = kabsch(a, b);
  EXPECT_NEAR(sp.rmsd, 0.0, 1e-12);
  const auto moved = applySuperposition(sp, a);
  EXPECT_NEAR(distance(moved[0], b[0]), 0.0, 1e-12);
}

}  // namespace
}  // namespace dqndock::chem
