// Tests for METADOCK's parameterised metaheuristic schema and its named
// instantiations (random search / local search / Monte Carlo / genetic).

#include <gtest/gtest.h>

#include <cmath>

#include "src/chem/synthetic.hpp"
#include "src/metadock/metaheuristic.hpp"

namespace dqndock::metadock {
namespace {

class MetaheuristicFixture : public ::testing::Test {
 protected:
  MetaheuristicFixture()
      : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())),
        receptor_(scenario_.receptor, 12.0),
        ligand_(scenario_.ligand),
        scoring_(receptor_, ligand_, {}),
        evaluator_(scoring_, nullptr) {}

  MetaheuristicResult runPreset(MetaheuristicParams params, std::uint64_t seed,
                                std::size_t evals = 1500) {
    params.maxEvaluations = evals;
    MetaheuristicEngine engine(evaluator_, params);
    Rng rng(seed);
    return engine.run(rng);
  }

  chem::Scenario scenario_;
  ReceptorModel receptor_;
  LigandModel ligand_;
  ScoringFunction scoring_;
  PoseEvaluator evaluator_;
};

TEST_F(MetaheuristicFixture, PresetsHaveDistinctNames) {
  EXPECT_EQ(MetaheuristicParams::randomSearch().name, "random-search");
  EXPECT_EQ(MetaheuristicParams::localSearch().name, "local-search");
  EXPECT_EQ(MetaheuristicParams::monteCarlo().name, "monte-carlo");
  EXPECT_EQ(MetaheuristicParams::genetic().name, "genetic");
}

TEST_F(MetaheuristicFixture, HistoryIsMonotoneNonDecreasing) {
  for (const auto& params :
       {MetaheuristicParams::randomSearch(), MetaheuristicParams::localSearch(),
        MetaheuristicParams::monteCarlo(), MetaheuristicParams::genetic()}) {
    const auto result = runPreset(params, 11);
    ASSERT_FALSE(result.history.empty()) << params.name;
    for (std::size_t i = 1; i < result.history.size(); ++i) {
      EXPECT_GE(result.history[i], result.history[i - 1]) << params.name << " step " << i;
    }
    EXPECT_DOUBLE_EQ(result.history.back(), result.best.score) << params.name;
  }
}

TEST_F(MetaheuristicFixture, RespectsEvaluationBudget) {
  for (const auto& params :
       {MetaheuristicParams::randomSearch(), MetaheuristicParams::monteCarlo()}) {
    const auto result = runPreset(params, 13, 800);
    // The loop checks the budget between iterations, so the overshoot is
    // bounded by one iteration's worth of evaluations.
    EXPECT_GE(result.evaluations, 700u);
    EXPECT_LT(result.evaluations, 2500u);
  }
}

TEST_F(MetaheuristicFixture, DeterministicGivenSeed) {
  const auto a = runPreset(MetaheuristicParams::genetic(), 17);
  const auto b = runPreset(MetaheuristicParams::genetic(), 17);
  EXPECT_DOUBLE_EQ(a.best.score, b.best.score);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST_F(MetaheuristicFixture, DifferentSeedsExploreDifferently) {
  const auto a = runPreset(MetaheuristicParams::monteCarlo(), 19);
  const auto b = runPreset(MetaheuristicParams::monteCarlo(), 20);
  EXPECT_NE(a.best.score, b.best.score);
}

TEST_F(MetaheuristicFixture, OptimizersBeatTheInitialPose) {
  // All schema instantiations must find something better than the far-away
  // rest pose (score ~0).
  const double restScore = scoring_.scorePose(ligand_.restPose());
  for (const auto& params :
       {MetaheuristicParams::localSearch(), MetaheuristicParams::monteCarlo(),
        MetaheuristicParams::genetic()}) {
    MetaheuristicEngine engine(evaluator_, params);
    Rng rng(23);
    const auto result = engine.runFrom(ligand_.restPose(), rng);
    EXPECT_GT(result.best.score, restScore) << params.name;
  }
}

TEST_F(MetaheuristicFixture, AnnealingImprovesOverItsInitialSample) {
  // The Monte Carlo chain must make progress beyond whatever its first
  // random sample happened to score — across several seeds.
  int improved = 0;
  for (int t = 0; t < 3; ++t) {
    const auto result = runPreset(MetaheuristicParams::monteCarlo(), 100 + t, 2000);
    EXPECT_GE(result.best.score, result.history.front());
    if (result.best.score > result.history.front()) ++improved;
  }
  EXPECT_GE(improved, 2);
}

TEST_F(MetaheuristicFixture, RunFromSeedsThePopulation) {
  // Seeding with the crystal region should immediately yield a good best.
  Pose nearCrystal(ligand_.torsionCount());
  nearCrystal.translation = scenario_.pocketCenter;
  MetaheuristicParams params = MetaheuristicParams::localSearch();
  params.maxEvaluations = 200;
  MetaheuristicEngine engine(evaluator_, params);
  Rng rng(29);
  const auto result = engine.runFrom(nearCrystal, rng);
  EXPECT_GE(result.best.score, scoring_.scorePose(nearCrystal));
}

TEST(CrossoverTest, ChildMixesParents) {
  Rng rng(31);
  Pose a(2), b(2);
  a.translation = {0, 0, 0};
  b.translation = {10, 10, 10};
  a.torsions = {0.5, -0.5};
  b.torsions = {1.5, -1.5};
  for (int i = 0; i < 20; ++i) {
    const Pose child = crossoverPoses(a, b, rng);
    EXPECT_GE(child.translation.x, 0.0);
    EXPECT_LE(child.translation.x, 10.0);
    EXPECT_NEAR(child.orientation.norm(), 1.0, 1e-12);
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_TRUE(child.torsions[k] == a.torsions[k] || child.torsions[k] == b.torsions[k]);
    }
  }
}

TEST(CrossoverTest, AntipodalQuaternionsBlendSafely) {
  Rng rng(37);
  Pose a, b;
  a.orientation = Quat{1, 0, 0, 0};
  b.orientation = Quat{-1, 0, 0, 0};  // same rotation, opposite sign
  for (int i = 0; i < 10; ++i) {
    const Pose child = crossoverPoses(a, b, rng);
    EXPECT_NEAR(child.orientation.norm(), 1.0, 1e-12);
    // Must represent (nearly) the identity rotation.
    EXPECT_NEAR(child.orientation.angle(), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace dqndock::metadock
