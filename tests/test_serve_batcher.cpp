// Tests for the micro-batching inference scheduler: coalesced batches
// must reproduce per-row predict() results bit-for-bit, deadlines must
// flush partial batches, and shutdown must be clean.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"
#include "src/rl/qnetwork.hpp"
#include "src/serve/inference_batcher.hpp"

namespace dqndock::serve {
namespace {

constexpr std::size_t kDim = 24;
constexpr int kActions = 5;

class BatcherFixture : public ::testing::Test {
 protected:
  BatcherFixture() : rng_(404), net_(kDim, {18, 18}, kActions, rng_) {}

  InferenceBatcher::ForwardFn forward() {
    return [this](const nn::Tensor& states, nn::Tensor& q) { net_.predict(states, q); };
  }

  static std::vector<double> makeState(std::uint64_t seed) {
    Rng r(seed);
    std::vector<double> s(kDim);
    for (double& v : s) v = r.uniform(-2.0, 2.0);
    return s;
  }

  std::vector<double> referenceRow(const std::vector<double>& state) const {
    nn::Tensor in(1, kDim);
    std::copy(state.begin(), state.end(), in.row(0).begin());
    nn::Tensor out;
    net_.predict(in, out);
    return {out.row(0).begin(), out.row(0).end()};
  }

  Rng rng_;
  rl::MlpQNetwork net_;
};

TEST_F(BatcherFixture, CoalescedResultsMatchPerRowBitForBit) {
  BatcherOptions opts;
  opts.maxBatch = 8;
  opts.flushDeadline = std::chrono::microseconds(500);
  InferenceBatcher batcher(forward(), kDim, kActions, opts);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 16;
  std::vector<std::vector<std::vector<double>>> results(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        results[t].push_back(batcher.infer(makeState(t * 1000 + i)));
      }
    });
  }
  for (auto& th : threads) th.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      const std::vector<double> expected = referenceRow(makeState(t * 1000 + i));
      ASSERT_EQ(results[t][i].size(), expected.size());
      for (std::size_t k = 0; k < expected.size(); ++k) {
        // Bit-for-bit: the GEMM accumulates each output element in a
        // fixed k-order independent of batch height.
        EXPECT_EQ(results[t][i][k], expected[k]) << "t=" << t << " i=" << i << " k=" << k;
      }
    }
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  EXPECT_LE(stats.maxBatchRows, opts.maxBatch);
  EXPECT_GE(stats.batches, (kThreads * kPerThread) / opts.maxBatch);
}

TEST_F(BatcherFixture, DeadlineFlushesPartialBatch) {
  BatcherOptions opts;
  opts.maxBatch = 32;
  opts.flushDeadline = std::chrono::microseconds(1000);
  InferenceBatcher batcher(forward(), kDim, kActions, opts);

  const auto q = batcher.infer(makeState(7));  // alone: can only flush by deadline
  EXPECT_EQ(q.size(), static_cast<std::size_t>(kActions));
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.deadlineFlushes, 1u);
  EXPECT_EQ(stats.fullBatches, 0u);
}

TEST_F(BatcherFixture, ConcurrentRequestsCoalesce) {
  BatcherOptions opts;
  opts.maxBatch = 8;
  opts.flushDeadline = std::chrono::milliseconds(500);  // generous: let all 8 arrive
  InferenceBatcher batcher(forward(), kDim, kActions, opts);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] { batcher.infer(makeState(t)); });
  }
  for (auto& th : threads) th.join();
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, 8u);
  // With a 500 ms window the 8 requests land in far fewer than 8 batches.
  EXPECT_LE(stats.batches, 4u);
  EXPECT_GE(stats.maxBatchRows, 2u);
}

TEST_F(BatcherFixture, ZeroDeadlineStillServes) {
  BatcherOptions opts;
  opts.maxBatch = 4;
  opts.flushDeadline = std::chrono::microseconds(0);
  InferenceBatcher batcher(forward(), kDim, kActions, opts);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(batcher.infer(makeState(i)).size(), static_cast<std::size_t>(kActions));
  }
  EXPECT_EQ(batcher.stats().requests, 10u);
}

TEST_F(BatcherFixture, DeadlineAnchoredToEnqueueNotDispatcherWakeup) {
  // Regression: the flush deadline used to be computed as now() +
  // flushDeadline when the DISPATCHER got around to looking at the
  // queue. A request that arrived while the dispatcher was busy in a
  // long forward pass then waited the busy time AND another full
  // deadline. Anchoring to the first queued request's enqueue time means
  // a request whose deadline already expired during the busy period is
  // flushed as soon as the dispatcher frees up.
  using Clock = std::chrono::steady_clock;
  BatcherOptions opts;
  opts.maxBatch = 32;  // never fills: deadline is the only flush trigger
  opts.flushDeadline = std::chrono::milliseconds(300);

  std::atomic<int> batches{0};
  std::atomic<std::int64_t> firstForwardEndNs{0};
  InferenceBatcher batcher(
      [&](const nn::Tensor& states, nn::Tensor& q) {
        if (batches.fetch_add(1) == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(800));
          firstForwardEndNs = Clock::now().time_since_epoch().count();
        }
        net_.predict(states, q);
      },
      kDim, kActions, opts);

  std::thread first([&] { batcher.infer(makeState(1)); });
  // Let request 1's batch flush (at ~300 ms) and enter the slow forward
  // pass, then enqueue request 2 while the dispatcher is busy. Its
  // deadline (enqueue + 300 ms) expires before the forward pass ends at
  // ~1100 ms, so it must be dispatched the moment the dispatcher frees.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  batcher.infer(makeState(2));
  const auto done = Clock::now();
  first.join();

  ASSERT_GT(batches.load(), 0);
  if (batches.load() == 1) {
    // Very slow machine: both requests coalesced into the slow batch and
    // the latency property holds trivially. Nothing left to measure.
    GTEST_SKIP() << "requests coalesced; dispatcher was never busy-with-backlog";
  }
  ASSERT_NE(firstForwardEndNs.load(), 0);
  const auto waitedAfterFree =
      done - Clock::time_point(Clock::duration(firstForwardEndNs.load()));
  // Buggy anchoring waits another full flushDeadline (300 ms) here; the
  // fix dispatches immediately. 150 ms of slack for scheduler noise.
  EXPECT_LT(waitedAfterFree, std::chrono::milliseconds(150));
}

TEST_F(BatcherFixture, StateDimMismatchThrows) {
  InferenceBatcher batcher(forward(), kDim, kActions, {});
  std::vector<double> wrong(kDim + 1, 0.0);
  EXPECT_THROW(batcher.infer(wrong), std::invalid_argument);
}

TEST_F(BatcherFixture, InferAfterShutdownThrows) {
  InferenceBatcher batcher(forward(), kDim, kActions, {});
  batcher.shutdown();
  EXPECT_THROW(batcher.infer(makeState(1)), std::runtime_error);
  batcher.shutdown();  // idempotent
}

TEST_F(BatcherFixture, ForwardErrorsPropagateToCallers) {
  InferenceBatcher batcher(
      [](const nn::Tensor&, nn::Tensor&) { throw std::runtime_error("model exploded"); }, kDim,
      kActions, {});
  EXPECT_THROW(batcher.infer(makeState(1)), std::runtime_error);
  // The batcher survives a failing batch.
  EXPECT_THROW(batcher.infer(makeState(2)), std::runtime_error);
}

TEST_F(BatcherFixture, WrongShapeFromForwardIsAnError) {
  InferenceBatcher batcher(
      [](const nn::Tensor& in, nn::Tensor& out) { out.resize(in.rows(), 1); }, kDim, kActions,
      {});
  EXPECT_THROW(batcher.infer(makeState(1)), std::runtime_error);
}

}  // namespace
}  // namespace dqndock::serve
