// Tests for tabular Q-learning (the paper's Section 2.2 update rule) and
// its comparison against DQN on the same corridor MDP.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/rl/corridor_env.hpp"
#include "src/rl/schedule.hpp"
#include "src/rl/tabular_q.hpp"

namespace dqndock::rl {
namespace {

TEST(TabularQTest, ConstructionValidation) {
  EXPECT_THROW(TabularQAgent(0, 2), std::invalid_argument);
  EXPECT_THROW(TabularQAgent(4, 0), std::invalid_argument);
  TabularQAgent agent(4, 2);
  EXPECT_EQ(agent.stateCount(), 4u);
  EXPECT_EQ(agent.actionCount(), 2);
  EXPECT_DOUBLE_EQ(agent.q(0, 0), 0.0);
}

TEST(TabularQTest, RangeChecks) {
  TabularQAgent agent(4, 2);
  EXPECT_THROW(agent.q(4, 0), std::out_of_range);
  EXPECT_THROW(agent.q(0, 2), std::out_of_range);
  EXPECT_THROW(agent.update(4, 0, 0, 0, false), std::out_of_range);
  EXPECT_THROW(agent.update(0, 0, 0, 4, false), std::out_of_range);
  EXPECT_NO_THROW(agent.update(0, 0, 0, 4, true));  // terminal next ignored
}

TEST(TabularQTest, BellmanUpdateMatchesPaperFormula) {
  TabularQConfig cfg;
  cfg.alpha = 0.5;
  cfg.gamma = 0.9;
  TabularQAgent agent(3, 2, cfg);
  // Seed Q(s', .) so the bootstrap is non-trivial.
  agent.update(1, 0, 10.0, 2, true);  // Q(1,0) = 0 + 0.5*(10 - 0) = 5
  EXPECT_DOUBLE_EQ(agent.q(1, 0), 5.0);
  // Q(0,1) <- 0 + 0.5 * (1 + 0.9 * max_a Q(1,a) - 0) = 0.5 * (1 + 4.5)
  agent.update(0, 1, 1.0, 1, false);
  EXPECT_DOUBLE_EQ(agent.q(0, 1), 0.5 * (1.0 + 0.9 * 5.0));
}

TEST(TabularQTest, GreedyAndEpsilonSelection) {
  TabularQAgent agent(2, 3);
  agent.update(0, 2, 1.0, 0, true);
  EXPECT_EQ(agent.greedyAction(0), 2);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(agent.selectAction(0, 0.0, rng), 2);
  std::vector<int> seen(3, 0);
  for (int i = 0; i < 300; ++i) ++seen[static_cast<std::size_t>(agent.selectAction(0, 1.0, rng))];
  for (int counts : seen) EXPECT_GT(counts, 0);
}

/// Position index from the corridor's one-hot encoding.
std::size_t decode(const std::vector<double>& state) {
  return static_cast<std::size_t>(
      std::max_element(state.begin(), state.end()) - state.begin());
}

TEST(TabularQTest, SolvesCorridorExactly) {
  CorridorEnv env(8, 64);
  TabularQConfig cfg;
  cfg.alpha = 0.2;
  cfg.gamma = 0.95;
  TabularQAgent agent(env.stateDim(), env.actionCount(), cfg);
  EpsilonSchedule eps(1.0, 0.05, 5e-3, 50);
  Rng rng(3);

  std::vector<double> state, next;
  std::size_t step = 0;
  for (int episode = 0; episode < 300; ++episode) {
    env.reset(state);
    bool terminal = false;
    while (!terminal) {
      const std::size_t s = decode(state);
      const int action = agent.selectAction(s, eps.value(step++), rng);
      const EnvStep r = env.step(action, next);
      agent.update(s, action, r.reward, decode(next), r.terminal);
      state = next;
      terminal = r.terminal;
    }
  }

  // The learned greedy policy must walk right from every interior cell.
  for (std::size_t s = 0; s + 1 < env.stateDim(); ++s) {
    EXPECT_EQ(agent.greedyAction(s), 1) << "cell " << s;
  }
  // And the value function must increase toward the goal.
  for (std::size_t s = 1; s + 1 < env.stateDim(); ++s) {
    EXPECT_GT(agent.maxQ(s), agent.maxQ(s - 1)) << "cell " << s;
  }
}

TEST(TabularQTest, InfeasibleAtDockingScale) {
  // The paper's docking state has 16,599 continuous dimensions; even a
  // binary discretisation would need 2^16599 rows. This "test" documents
  // the back-of-envelope reason a function approximator is mandatory:
  // log2(table rows representable in the address space) << state bits.
  const double stateBits = 16599.0;             // one bit per component (!)
  const double addressableRows = 62.0;          // < 2^62 rows in any table
  EXPECT_GT(stateBits, addressableRows * 100);  // off by orders of magnitude
}

}  // namespace
}  // namespace dqndock::rl
