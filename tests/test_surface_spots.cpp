// Tests for the receptor surface-spot decomposition and blind spot
// docking (paper Section 2.1: BINDSURF/METADOCK surface regions).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/chem/synthetic.hpp"
#include "src/metadock/surface_spots.hpp"

namespace dqndock::metadock {
namespace {

class SurfaceSpotFixture : public ::testing::Test {
 protected:
  SurfaceSpotFixture()
      : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())),
        receptor_(scenario_.receptor, 12.0) {}

  chem::Scenario scenario_;
  ReceptorModel receptor_;
};

TEST_F(SurfaceSpotFixture, CoreAtomsAreBuried) {
  const auto exposed = surfaceAtoms(receptor_);
  // The receptor atom closest to the COM must be buried; the farthest
  // must be exposed.
  const Vec3 com = receptor_.centerOfMass();
  std::size_t inner = 0, outer = 0;
  double dInner = 1e300, dOuter = -1.0;
  for (std::size_t i = 0; i < receptor_.atomCount(); ++i) {
    const double d = distance(receptor_.positions()[i], com);
    if (d < dInner) {
      dInner = d;
      inner = i;
    }
    if (d > dOuter) {
      dOuter = d;
      outer = i;
    }
  }
  EXPECT_FALSE(exposed[inner]);
  EXPECT_TRUE(exposed[outer]);
}

TEST_F(SurfaceSpotFixture, SpotsCoverAllExposedAtoms) {
  SurfaceSpotOptions opts;
  opts.minSpotAtoms = 1;  // keep every spot for coverage accounting
  const auto exposed = surfaceAtoms(receptor_, opts);
  const auto spots = findSurfaceSpots(receptor_, opts);
  std::set<std::size_t> covered;
  for (const auto& spot : spots) {
    for (std::size_t idx : spot.atoms) covered.insert(idx);
  }
  std::size_t exposedCount = 0;
  for (std::size_t i = 0; i < exposed.size(); ++i) {
    if (exposed[i]) {
      ++exposedCount;
      EXPECT_TRUE(covered.count(i)) << "exposed atom " << i << " not in any spot";
    }
  }
  EXPECT_EQ(covered.size(), exposedCount);
}

TEST_F(SurfaceSpotFixture, SpotsSortedBySizeAndHaveGeometry) {
  const auto spots = findSurfaceSpots(receptor_);
  ASSERT_GT(spots.size(), 1u);
  for (std::size_t s = 1; s < spots.size(); ++s) {
    EXPECT_GE(spots[s - 1].atoms.size(), spots[s].atoms.size());
  }
  for (const auto& spot : spots) {
    EXPECT_GT(spot.radius, 0.0);
    // The centre must be near its members.
    for (std::size_t idx : spot.atoms) {
      EXPECT_LE(distance(receptor_.positions()[idx], spot.center), spot.radius + 1e-9);
    }
  }
}

TEST_F(SurfaceSpotFixture, MinSpotAtomsFiltersNoise) {
  SurfaceSpotOptions all;
  all.minSpotAtoms = 1;
  SurfaceSpotOptions filtered;
  filtered.minSpotAtoms = 10;
  EXPECT_GE(findSurfaceSpots(receptor_, all).size(),
            findSurfaceSpots(receptor_, filtered).size());
}

TEST_F(SurfaceSpotFixture, BlindSpotDockingFindsThePocketRegion) {
  LigandModel ligand(scenario_.ligand);
  ScoringFunction scoring(receptor_, ligand, {});
  const auto spots = findSurfaceSpots(receptor_);
  ASSERT_GT(spots.size(), 0u);

  MetaheuristicParams params = MetaheuristicParams::monteCarlo();
  params.maxEvaluations = 600;  // per spot
  ThreadPool pool(4);
  const auto results = dockAllSpots(scoring, spots, params, /*seed=*/3, &pool);
  ASSERT_EQ(results.size(), spots.size());

  // Sorted by best score.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].best.score, results[i].best.score);
  }
  // On the tiny surrogate other surface dimples score competitively, so
  // we only demand that the spot nearest the carved pocket is clearly
  // docking-positive (the paper-scale localisation claim is exercised by
  // bench_blind_docking).
  std::size_t nearestRank = 0;
  double nearestDist = 1e300;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double d = distance(results[i].spot.center, scenario_.pocketCenter);
    if (d < nearestDist) {
      nearestDist = d;
      nearestRank = i;
    }
  }
  EXPECT_GT(results[nearestRank].best.score, 0.0)
      << "pocket spot (rank " << nearestRank << ") failed to dock";
}

TEST_F(SurfaceSpotFixture, SpotDockingDeterministicAcrossThreadCounts) {
  LigandModel ligand(scenario_.ligand);
  ScoringFunction scoring(receptor_, ligand, {});
  auto spots = findSurfaceSpots(receptor_);
  spots.resize(std::min<std::size_t>(spots.size(), 4));
  MetaheuristicParams params = MetaheuristicParams::monteCarlo();
  params.maxEvaluations = 300;

  ThreadPool pool1(1), pool4(4);
  const auto a = dockAllSpots(scoring, spots, params, 11, &pool1);
  const auto b = dockAllSpots(scoring, spots, params, 11, &pool4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].best.score, b[i].best.score);
  }
}

}  // namespace
}  // namespace dqndock::metadock
