// End-to-end HTTP gateway tests over real loopback sockets: two
// registered models behind one gateway, JSON dock results bit-identical
// to direct DockingService calls on the routed model (the PR's
// acceptance criterion), the 4xx error contract, stats/discovery
// endpoints, and hostile-peer behaviour — garbage bytes, mid-body
// hangup, and an RST before the reply (the SIGPIPE regression) must
// never take the server down.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "src/chem/synthetic.hpp"
#include "src/common/rng.hpp"
#include "src/gateway/gateway.hpp"

namespace dqndock::gateway {
namespace {

struct HttpResponse {
  int status = 0;
  std::string body;
};

/// Minimal raw HTTP/1.1 client: just enough socket + framing code to
/// exercise the gateway the way curl would, including keep-alive and
/// deliberately rude disconnects.
class HttpConn {
 public:
  explicit HttpConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  }
  ~HttpConn() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// Close with SO_LINGER {on, 0}: the kernel sends RST instead of FIN,
  /// so the server's next send on this connection fails with
  /// EPIPE/ECONNRESET — the exact condition that used to raise SIGPIPE.
  void abortiveClose() {
    linger hard{1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
    close();
  }

  void sendRaw(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t w = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(w, 0);
      off += static_cast<std::size_t>(w);
    }
  }

  void get(const std::string& path) {
    sendRaw("GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
  }

  void post(const std::string& path, const std::string& json) {
    sendRaw("POST " + path + " HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n"
            "Content-Length: " + std::to_string(json.size()) + "\r\n\r\n" + json);
  }

  /// Parse one response off the stream (keep-alive aware: surplus bytes
  /// stay buffered for the next call). Status 0 = connection died first.
  HttpResponse readResponse() {
    HttpResponse out;
    const std::string headerEnd = "\r\n\r\n";
    std::size_t headerLen;
    while ((headerLen = buffer_.find(headerEnd)) == std::string::npos) {
      if (!recvMore()) return out;
    }
    headerLen += headerEnd.size();
    const std::string head = buffer_.substr(0, headerLen);
    out.status = std::atoi(head.c_str() + head.find(' '));

    std::size_t contentLength = 0;
    const std::string marker = "Content-Length: ";
    const std::size_t at = head.find(marker);
    if (at != std::string::npos) {
      contentLength = static_cast<std::size_t>(std::atol(head.c_str() + at + marker.size()));
    }
    while (buffer_.size() < headerLen + contentLength) {
      if (!recvMore()) return HttpResponse{};
    }
    out.body = buffer_.substr(headerLen, contentLength);
    buffer_.erase(0, headerLen + contentLength);
    return out;
  }

 private:
  bool recvMore() {
    char buf[8192];
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r <= 0) return false;
    buffer_.append(buf, static_cast<std::size_t>(r));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// Two models ("alpha", "beta") with DIFFERENT weights behind one
/// gateway — routing correctness is observable as score differences.
class GatewayFixture : public ::testing::Test {
 protected:
  GatewayFixture() : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())) {
    const std::size_t dim = scenario_.ligand.atomCount() * 3;
    serve::ServiceOptions opts;
    opts.workers = 2;
    opts.queueCapacity = 8;
    opts.batcher.flushDeadline = std::chrono::microseconds(50);
    const std::uint64_t seeds[] = {2024, 777};
    const char* names[] = {"alpha", "beta"};
    for (int i = 0; i < 2; ++i) {
      Rng rng(seeds[i]);
      registries_.push_back(std::make_unique<serve::ModelRegistry>(
          std::make_unique<rl::MlpQNetwork>(dim, std::vector<std::size_t>{16}, 12, rng)));
      services_.push_back(
          std::make_unique<serve::DockingService>(scenario_, *registries_.back(), opts));
      directory_.add(names[i], *services_.back(), *registries_.back());
    }
    gateway_ = std::make_unique<HttpGateway>(directory_);
  }

  ~GatewayFixture() override {
    gateway_->stop();
    for (auto& service : services_) service->shutdown();
  }

  std::uint16_t port() const { return gateway_->port(); }

  /// Poll until the gateway has observed `field` (handler threads run
  /// asynchronously relative to the client's view of the socket).
  template <typename Pred>
  bool waitFor(Pred pred) const {
    for (int i = 0; i < 400; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
  }

  chem::Scenario scenario_;
  std::vector<std::unique_ptr<serve::ModelRegistry>> registries_;
  std::vector<std::unique_ptr<serve::DockingService>> services_;
  serve::TenantDirectory directory_;
  std::unique_ptr<HttpGateway> gateway_;
};

TEST_F(GatewayFixture, HealthzAndModelsDiscovery) {
  HttpConn conn(port());
  conn.get("/v1/healthz");
  HttpResponse health = conn.readResponse();
  ASSERT_EQ(health.status, 200);
  const JsonValue healthDoc = jsonParse(health.body);
  EXPECT_EQ(healthDoc.find("status")->asString(), "ok");
  EXPECT_EQ(healthDoc.find("models")->asNumber(), 2.0);

  conn.get("/v1/models");  // keep-alive: same connection
  HttpResponse models = conn.readResponse();
  ASSERT_EQ(models.status, 200);
  const JsonValue doc = jsonParse(models.body);
  const auto& list = doc.find("models")->items();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].find("name")->asString(), "alpha");  // lexicographic
  EXPECT_EQ(list[1].find("name")->asString(), "beta");
  for (const JsonValue& entry : list) {
    EXPECT_EQ(entry.find("model_version")->asNumber(), 1.0);
    EXPECT_EQ(entry.find("state_dim")->asNumber(),
              static_cast<double>(scenario_.ligand.atomCount() * 3));
    EXPECT_EQ(entry.find("actions")->asNumber(), 12.0);
  }
}

TEST_F(GatewayFixture, DockRoutesToNamedModelBitIdentically) {
  // The acceptance criterion: POST /v1/models/<name>/dock must return
  // scores BIT-identical to a direct DockingService call on the routed
  // model. Epsilon 0 makes the rollout deterministic given the weights,
  // so any routing mixup or JSON precision loss shows up as inequality.
  serve::DockRequest direct;
  direct.maxSteps = 8;
  direct.epsilon = 0.0;
  direct.seed = 42;
  const char* names[] = {"alpha", "beta"};
  for (int i = 0; i < 2; ++i) {
    const serve::SubmitResult submitted = services_[i]->submitDock(direct);
    ASSERT_TRUE(submitted.accepted());
    const serve::JobOutcome reference = services_[i]->wait(submitted.jobId);
    ASSERT_EQ(reference.status, serve::JobStatus::kDone);

    HttpConn conn(port());
    conn.post(std::string("/v1/models/") + names[i] + "/dock",
              R"({"max_steps":8,"epsilon":0,"seed":42})");
    const HttpResponse response = conn.readResponse();
    ASSERT_EQ(response.status, 200) << response.body;
    const JsonValue doc = jsonParse(response.body);
    EXPECT_EQ(doc.find("model")->asString(), names[i]);
    EXPECT_EQ(doc.find("status")->asString(), "done");

    const double viaHttp[4] = {
        doc.find("initial_score")->asNumber(), doc.find("best_score")->asNumber(),
        doc.find("final_score")->asNumber(), doc.find("best_rmsd")->asNumber()};
    const double viaDirect[4] = {reference.dock.initialScore, reference.dock.bestScore,
                                 reference.dock.finalScore, reference.dock.bestRmsd};
    EXPECT_EQ(std::memcmp(viaHttp, viaDirect, sizeof viaHttp), 0)
        << names[i] << ": scores did not survive the HTTP surface bit-identically";
    EXPECT_EQ(doc.find("steps")->asNumber(), static_cast<double>(reference.dock.steps));
    EXPECT_EQ(doc.find("termination")->asString(), reference.dock.termination);
  }
  // Routing proof: each model's OWN pool executed exactly two jobs (the
  // direct reference + the routed HTTP dock). A collapsed route table
  // would show 4/0 instead of 2/2.
  EXPECT_EQ(services_[0]->stats().done, 2u);
  EXPECT_EQ(services_[1]->stats().done, 2u);
}

TEST_F(GatewayFixture, ScreenRoutesAndReportsHits) {
  HttpConn conn(port());
  conn.post("/v1/models/beta/screen",
            R"({"library_size":2,"min_atoms":6,"max_atoms":8,"evals":40})");
  const HttpResponse response = conn.readResponse();
  ASSERT_EQ(response.status, 200) << response.body;
  const JsonValue doc = jsonParse(response.body);
  EXPECT_EQ(doc.find("model")->asString(), "beta");
  EXPECT_EQ(doc.find("status")->asString(), "done");
  EXPECT_EQ(doc.find("ligands")->asNumber(), 2.0);
  EXPECT_GT(doc.find("evaluations")->asNumber(), 0.0);
  EXPECT_FALSE(doc.find("best_ligand")->asString().empty());
}

TEST_F(GatewayFixture, ErrorContract) {
  HttpConn conn(port());
  // Unknown model -> 404.
  conn.post("/v1/models/gamma/dock", "{}");
  EXPECT_EQ(conn.readResponse().status, 404);
  // Unknown action -> 404.
  conn.post("/v1/models/alpha/undock", "{}");
  EXPECT_EQ(conn.readResponse().status, 404);
  // Wrong method on a job route -> 405.
  conn.get("/v1/models/alpha/dock");
  EXPECT_EQ(conn.readResponse().status, 405);
  // Wrong method on a read route -> 405.
  conn.sendRaw("POST /v1/healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(conn.readResponse().status, 405);
  // Malformed JSON body -> 400.
  conn.post("/v1/models/alpha/dock", "{nope");
  EXPECT_EQ(conn.readResponse().status, 400);
  // Non-object body -> 400.
  conn.post("/v1/models/alpha/dock", "[1,2]");
  EXPECT_EQ(conn.readResponse().status, 400);
  // Mistyped field -> 400 (not a silently-applied default).
  conn.post("/v1/models/alpha/dock", R"({"max_steps":"many"})");
  EXPECT_EQ(conn.readResponse().status, 400);
  // Fractional integer field -> 400.
  conn.post("/v1/models/alpha/dock", R"({"max_steps":12.5})");
  EXPECT_EQ(conn.readResponse().status, 400);
  // No route -> 404.
  conn.get("/v2/anything");
  EXPECT_EQ(conn.readResponse().status, 404);
  // All of it on ONE keep-alive connection, which still works:
  conn.get("/v1/healthz");
  EXPECT_EQ(conn.readResponse().status, 200);
}

TEST_F(GatewayFixture, StatsReflectPerModelTraffic) {
  {
    HttpConn conn(port());
    conn.post("/v1/models/alpha/dock", R"({"max_steps":3})");
    ASSERT_EQ(conn.readResponse().status, 200);
    conn.post("/v1/models/alpha/dock", R"({"max_steps":3,"seed":5})");
    ASSERT_EQ(conn.readResponse().status, 200);
  }
  HttpConn conn(port());
  conn.get("/v1/stats");
  const HttpResponse response = conn.readResponse();
  ASSERT_EQ(response.status, 200);
  const JsonValue doc = jsonParse(response.body);

  // The snapshot is taken while the /v1/stats request itself is still in
  // flight, so only the two docks are counted yet.
  const JsonValue* gw = doc.find("gateway");
  ASSERT_NE(gw, nullptr);
  EXPECT_GE(gw->find("requests")->asNumber(), 2.0);
  EXPECT_GE(gw->find("connections")->asNumber(), 2.0);

  const auto& models = doc.find("models")->items();
  ASSERT_EQ(models.size(), 2u);
  const JsonValue& alpha = models[0];
  ASSERT_EQ(alpha.find("name")->asString(), "alpha");
  EXPECT_EQ(alpha.find("dock")->find("requests")->asNumber(), 2.0);
  EXPECT_EQ(alpha.find("dock")->find("errors")->asNumber(), 0.0);
  EXPECT_EQ(alpha.find("dock")->find("latency_samples")->asNumber(), 2.0);
  const JsonValue* latency = alpha.find("dock")->find("latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->find("p50")->asNumber(), 0.0);
  EXPECT_GE(latency->find("p99")->asNumber(), latency->find("p50")->asNumber());
  EXPECT_EQ(alpha.find("jobs")->find("done")->asNumber(), 2.0);
  // Beta saw none of it.
  const JsonValue& beta = models[1];
  ASSERT_EQ(beta.find("name")->asString(), "beta");
  EXPECT_EQ(beta.find("dock")->find("requests")->asNumber(), 0.0);
}

TEST_F(GatewayFixture, PipelinedRequestsAnswerInOrder) {
  HttpConn conn(port());
  conn.sendRaw("GET /v1/healthz HTTP/1.1\r\n\r\nGET /v1/models HTTP/1.1\r\n\r\n");
  const HttpResponse first = conn.readResponse();
  ASSERT_EQ(first.status, 200);
  EXPECT_NE(first.body.find("\"status\":\"ok\""), std::string::npos);
  const HttpResponse second = conn.readResponse();
  ASSERT_EQ(second.status, 200);
  EXPECT_NE(second.body.find("\"models\":["), std::string::npos);
}

TEST_F(GatewayFixture, GarbageBytesGet400AndServerSurvives) {
  {
    HttpConn conn(port());
    conn.sendRaw("\x16\x03\x01 this is not http\r\n\r\n");
    const HttpResponse response = conn.readResponse();
    EXPECT_GE(response.status, 400);
    // After a parse error the gateway closes: next read sees EOF.
    EXPECT_EQ(conn.readResponse().status, 0);
  }
  EXPECT_TRUE(waitFor([&] { return gateway_->stats().parseErrors >= 1; }));
  HttpConn again(port());
  again.get("/v1/healthz");
  EXPECT_EQ(again.readResponse().status, 200);
}

TEST_F(GatewayFixture, MidBodyHangupClosesCleanly) {
  {
    HttpConn conn(port());
    conn.sendRaw("POST /v1/models/alpha/dock HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"max");
    // Hang up with 44 body bytes owed. Nothing to answer; no crash.
  }
  HttpConn again(port());
  again.get("/v1/healthz");
  EXPECT_EQ(again.readResponse().status, 200);
}

TEST_F(GatewayFixture, RstBeforeReplyIsCountedNotFatal) {
  // SIGPIPE regression (ISSUE satellite): the peer submits a dock and
  // vanishes with an RST before the reply. The gateway's send must fail
  // with EPIPE/ECONNRESET — counted as a peer hangup — and the process
  // must stay up. Without SIG_IGN/MSG_NOSIGNAL this test kills the
  // whole test binary with SIGPIPE.
  {
    HttpConn conn(port());
    conn.post("/v1/models/alpha/dock", R"({"max_steps":40})");
    conn.abortiveClose();
  }
  EXPECT_TRUE(waitFor([&] { return gateway_->stats().peerHangups >= 1; }));
  // Alive and serving.
  HttpConn again(port());
  again.post("/v1/models/alpha/dock", R"({"max_steps":3})");
  EXPECT_EQ(again.readResponse().status, 200);
}

TEST_F(GatewayFixture, StopRefusesNewConnections) {
  gateway_->requestStop();
  gateway_->stop();
  EXPECT_TRUE(gateway_->stopRequested());
  // The listener is gone: connect is refused outright, or (if the kernel
  // raced us into the backlog) the connection yields no response.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
    const char probe[] = "GET /v1/healthz HTTP/1.1\r\n\r\n";
    (void)::send(fd, probe, sizeof probe - 1, MSG_NOSIGNAL);
    char buf[256];
    EXPECT_LE(::recv(fd, buf, sizeof buf, 0), 0);
  }
  ::close(fd);
}

TEST(TenantDirectoryTest, RejectsBadRegistrations) {
  const chem::Scenario scenario = chem::buildScenario(chem::ScenarioSpec::tiny());
  const std::size_t dim = scenario.ligand.atomCount() * 3;
  Rng rng(1);
  serve::ModelRegistry registry(
      std::make_unique<rl::MlpQNetwork>(dim, std::vector<std::size_t>{16}, 12, rng));
  serve::DockingService service(scenario, registry);
  serve::TenantDirectory directory;
  directory.add("ok-name_1.2", service, registry);
  EXPECT_THROW(directory.add("", service, registry), std::invalid_argument);
  EXPECT_THROW(directory.add("ok-name_1.2", service, registry), std::invalid_argument);
  EXPECT_THROW(directory.add("has space", service, registry), std::invalid_argument);
  EXPECT_THROW(directory.add("has/slash", service, registry), std::invalid_argument);
  EXPECT_EQ(directory.size(), 1u);
  EXPECT_NE(directory.find("ok-name_1.2"), nullptr);
  EXPECT_EQ(directory.find("nope"), nullptr);
  service.shutdown();
}

TEST(LatencyWindowTest, NearestRankPercentilesAndAging) {
  serve::LatencyWindow window(4);
  EXPECT_EQ(window.percentileSeconds(50), 0.0);  // empty
  window.record(0.010);
  window.record(0.020);
  window.record(0.030);
  window.record(0.040);
  EXPECT_DOUBLE_EQ(window.percentileSeconds(50), 0.020);
  EXPECT_DOUBLE_EQ(window.percentileSeconds(100), 0.040);
  EXPECT_DOUBLE_EQ(window.percentileSeconds(0), 0.010);
  // Ring overwrite: a fifth sample ages the oldest out.
  window.record(0.050);
  EXPECT_DOUBLE_EQ(window.percentileSeconds(0), 0.020);
  EXPECT_DOUBLE_EQ(window.percentileSeconds(100), 0.050);
  EXPECT_EQ(window.count(), 5u);
}

}  // namespace
}  // namespace dqndock::gateway
