// Tests for the versioned model registry: publish bumps versions
// atomically, checkpoint round-trips reproduce predictions, and readers
// holding a snapshot survive concurrent hot-swaps.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "src/common/rng.hpp"
#include "src/rl/checkpoint.hpp"
#include "src/serve/model_registry.hpp"

namespace dqndock::serve {
namespace {

constexpr std::size_t kDim = 12;
constexpr int kActions = 4;

std::unique_ptr<rl::MlpQNetwork> makeNet(std::uint64_t seed) {
  Rng rng(seed);
  return std::make_unique<rl::MlpQNetwork>(kDim, std::vector<std::size_t>{10}, kActions, rng);
}

std::vector<double> predictRow(const rl::QNetwork& net, std::uint64_t seed) {
  Rng r(seed);
  nn::Tensor in(1, kDim);
  for (double& v : in.row(0)) v = r.uniform(-1.0, 1.0);
  nn::Tensor out;
  net.predict(in, out);
  return {out.row(0).begin(), out.row(0).end()};
}

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ModelRegistryTest, SeedsVersionOneAndBumpsOnPublish) {
  ModelRegistry registry(makeNet(1), "seed-net");
  EXPECT_EQ(registry.currentVersion(), 1u);
  EXPECT_EQ(registry.publishCount(), 1u);
  EXPECT_EQ(registry.inputDim(), kDim);
  EXPECT_EQ(registry.actionCount(), kActions);
  EXPECT_EQ(registry.current()->tag, "seed-net");

  const std::uint64_t v2 = registry.publish(makeNet(2), "retrained");
  EXPECT_EQ(v2, 2u);
  EXPECT_EQ(registry.currentVersion(), 2u);
  EXPECT_EQ(registry.publishCount(), 2u);
  EXPECT_EQ(registry.current()->tag, "retrained");
}

TEST(ModelRegistryTest, RejectsNullAndArchitectureMismatch) {
  ModelRegistry registry(makeNet(1));
  EXPECT_THROW(registry.publish(nullptr), std::invalid_argument);
  Rng rng(9);
  EXPECT_THROW(registry.publish(std::make_unique<rl::MlpQNetwork>(
                   kDim + 3, std::vector<std::size_t>{10}, kActions, rng)),
               std::invalid_argument);
  Rng rng2(10);
  EXPECT_THROW(registry.publish(std::make_unique<rl::MlpQNetwork>(
                   kDim, std::vector<std::size_t>{10}, kActions + 1, rng2)),
               std::invalid_argument);
  EXPECT_EQ(registry.currentVersion(), 1u);  // failed publishes change nothing
  EXPECT_THROW(ModelRegistry(nullptr), std::invalid_argument);
}

TEST(ModelRegistryTest, PublishFromFileReproducesCheckpointPredictions) {
  auto trained = makeNet(77);
  const std::vector<double> expected = predictRow(*trained, 5);
  TempFile checkpoint("dqndock_registry_ckpt.bin");
  rl::saveWeightsFile(checkpoint.path(), *trained);

  ModelRegistry registry(makeNet(1));  // different weights, same architecture
  const std::uint64_t v = registry.publishFromFile(checkpoint.path());
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(registry.current()->tag, checkpoint.path());

  const std::vector<double> got = predictRow(*registry.current()->net, 5);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(got[k], expected[k]);  // checkpoints store raw doubles
  }
}

TEST(ModelRegistryTest, PublishFromBadFileLeavesCurrentUntouched) {
  ModelRegistry registry(makeNet(1));
  const std::vector<double> before = predictRow(*registry.current()->net, 3);
  EXPECT_THROW(registry.publishFromFile("/nonexistent/dir/weights.bin"), std::runtime_error);
  EXPECT_EQ(registry.currentVersion(), 1u);
  const std::vector<double> after = predictRow(*registry.current()->net, 3);
  EXPECT_EQ(before, after);
}

TEST(ModelRegistryTest, SnapshotSurvivesHotSwap) {
  ModelRegistry registry(makeNet(1));
  std::shared_ptr<const ModelVersion> pinned = registry.current();
  const std::vector<double> before = predictRow(*pinned->net, 8);
  registry.publish(makeNet(2));
  registry.publish(makeNet(3));
  // The pinned snapshot still answers with the old weights.
  EXPECT_EQ(predictRow(*pinned->net, 8), before);
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_EQ(registry.currentVersion(), 3u);
}

TEST(ModelRegistryTest, ConcurrentLookupsDuringHotSwaps) {
  ModelRegistry registry(makeNet(1));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> predictions{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load()) {
        std::shared_ptr<const ModelVersion> snap = registry.current();
        const std::vector<double> q = predictRow(*snap->net, static_cast<std::uint64_t>(t));
        ASSERT_EQ(q.size(), static_cast<std::size_t>(kActions));
        predictions.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::uint64_t v = 2; v <= 20; ++v) {
    registry.publish(makeNet(v));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(registry.currentVersion(), 20u);
  EXPECT_GT(predictions.load(), 0u);
}

}  // namespace
}  // namespace dqndock::serve
