// Tests for the reward-construction modes (paper Section 3 design
// decision): the paper's sign-clipped delta, raw delta, clipped delta and
// absolute-score rewards.

#include <gtest/gtest.h>

#include <cmath>

#include "src/chem/synthetic.hpp"
#include "src/metadock/docking_env.hpp"

namespace dqndock::metadock {
namespace {

class RewardModeFixture : public ::testing::Test {
 protected:
  RewardModeFixture() : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())) {}

  DockingEnv makeEnv(RewardMode mode) {
    EnvConfig cfg;
    cfg.rewardMode = mode;
    return DockingEnv(scenario_, cfg);
  }

  chem::Scenario scenario_;
};

TEST_F(RewardModeFixture, ModeNames) {
  EXPECT_STREQ(rewardModeName(RewardMode::kSignClip), "sign-clip");
  EXPECT_STREQ(rewardModeName(RewardMode::kRawDelta), "raw-delta");
  EXPECT_STREQ(rewardModeName(RewardMode::kClippedDelta), "clipped-delta");
  EXPECT_STREQ(rewardModeName(RewardMode::kAbsolute), "absolute");
}

TEST_F(RewardModeFixture, SignClipIsPaperBehaviour) {
  auto env = makeEnv(RewardMode::kSignClip);
  for (int i = 0; i < 25 && !env.terminated(); ++i) {
    const StepResult r = env.step(4);
    EXPECT_TRUE(r.reward == 1.0 || r.reward == 0.0 || r.reward == -1.0);
    if (r.scoreDelta > 0) EXPECT_DOUBLE_EQ(r.reward, 1.0);
  }
}

TEST_F(RewardModeFixture, RawDeltaEqualsScoreChange) {
  auto env = makeEnv(RewardMode::kRawDelta);
  double prev = env.score();
  for (int i = 0; i < 20 && !env.terminated(); ++i) {
    const StepResult r = env.step(4);
    EXPECT_DOUBLE_EQ(r.reward, r.score - prev);
    prev = r.score;
  }
}

TEST_F(RewardModeFixture, ClippedDeltaBounded) {
  auto env = makeEnv(RewardMode::kClippedDelta);
  // Drive into the receptor: deltas get huge, rewards stay in [-1, 1].
  for (int i = 0; i < 60 && !env.terminated(); ++i) {
    const StepResult r = env.step(4);
    EXPECT_GE(r.reward, -1.0);
    EXPECT_LE(r.reward, 1.0);
    if (std::fabs(r.scoreDelta) < 1.0) EXPECT_DOUBLE_EQ(r.reward, r.scoreDelta);
  }
}

TEST_F(RewardModeFixture, AbsoluteScalesScore) {
  EnvConfig cfg;
  cfg.rewardMode = RewardMode::kAbsolute;
  cfg.rewardScale = 0.01;
  DockingEnv env(scenario_, cfg);
  for (int i = 0; i < 15 && !env.terminated(); ++i) {
    const StepResult r = env.step(4);
    EXPECT_DOUBLE_EQ(r.reward, r.score * 0.01);
  }
}

TEST_F(RewardModeFixture, ModesShareDynamics) {
  // Reward construction must not alter the trajectory itself.
  auto a = makeEnv(RewardMode::kSignClip);
  auto b = makeEnv(RewardMode::kRawDelta);
  for (int i = 0; i < 20 && !a.terminated(); ++i) {
    const StepResult ra = a.step(4);
    const StepResult rb = b.step(4);
    EXPECT_DOUBLE_EQ(ra.score, rb.score);
    EXPECT_EQ(ra.terminal, rb.terminal);
  }
}

}  // namespace
}  // namespace dqndock::metadock
