// Tests for the virtual-screening pipeline.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/chem/synthetic.hpp"
#include "src/metadock/vs_pipeline.hpp"

namespace dqndock::metadock {
namespace {

class VsPipelineFixture : public ::testing::Test {
 protected:
  VsPipelineFixture() : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())) {
    Rng rng(77);
    library_ = chem::buildLigandLibrary(4, 8, 14, rng);
  }

  ScreeningOptions fastOptions() const {
    ScreeningOptions opts;
    opts.evaluationsPerLigand = 400;
    opts.refineWithGradient = false;
    opts.clusterModes = false;
    return opts;
  }

  chem::Scenario scenario_;
  std::vector<chem::Molecule> library_;
};

TEST_F(VsPipelineFixture, EmptyLibraryGivesEmptyReport) {
  const ScreeningReport report = screenLibrary(scenario_.receptor, {}, fastOptions());
  EXPECT_TRUE(report.ranked.empty());
  EXPECT_EQ(report.hitCount, 0u);
}

TEST_F(VsPipelineFixture, RanksAllLigandsDescending) {
  const ScreeningReport report = screenLibrary(scenario_.receptor, library_, fastOptions());
  ASSERT_EQ(report.ranked.size(), library_.size());
  for (std::size_t i = 1; i < report.ranked.size(); ++i) {
    EXPECT_GE(report.ranked[i - 1].refinedScore, report.ranked[i].refinedScore);
  }
  // Every library member appears exactly once.
  std::vector<char> seen(library_.size(), 0);
  for (const auto& hit : report.ranked) {
    EXPECT_LT(hit.ligandIndex, library_.size());
    EXPECT_FALSE(seen[hit.ligandIndex]);
    seen[hit.ligandIndex] = 1;
    EXPECT_EQ(hit.atoms, library_[hit.ligandIndex].atomCount());
  }
}

TEST_F(VsPipelineFixture, HitAccountingConsistent) {
  ScreeningOptions opts = fastOptions();
  opts.hitThreshold = -1e18;  // everything is a hit
  const ScreeningReport all = screenLibrary(scenario_.receptor, library_, opts);
  EXPECT_EQ(all.hitCount, library_.size());
  EXPECT_DOUBLE_EQ(all.hitRate, 1.0);
  opts.hitThreshold = 1e18;  // nothing is a hit
  const ScreeningReport none = screenLibrary(scenario_.receptor, library_, opts);
  EXPECT_EQ(none.hitCount, 0u);
}

TEST_F(VsPipelineFixture, DeterministicAcrossThreadCounts) {
  ThreadPool pool(4);
  const ScreeningReport serial = screenLibrary(scenario_.receptor, library_, fastOptions(), nullptr);
  const ScreeningReport pooled = screenLibrary(scenario_.receptor, library_, fastOptions(), &pool);
  ASSERT_EQ(serial.ranked.size(), pooled.ranked.size());
  for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
    EXPECT_EQ(serial.ranked[i].ligandIndex, pooled.ranked[i].ligandIndex);
    EXPECT_DOUBLE_EQ(serial.ranked[i].bestScore, pooled.ranked[i].bestScore);
  }
}

TEST_F(VsPipelineFixture, GradientRefinementNeverHurts) {
  ScreeningOptions off = fastOptions();
  ScreeningOptions on = fastOptions();
  on.refineWithGradient = true;
  const ScreeningReport base = screenLibrary(scenario_.receptor, library_, off);
  const ScreeningReport refined = screenLibrary(scenario_.receptor, library_, on);
  // Per-ligand comparison (reports are ranked; match by index).
  auto scoreOf = [](const ScreeningReport& r, std::size_t ligand) {
    for (const auto& hit : r.ranked) {
      if (hit.ligandIndex == ligand) return hit.refinedScore;
    }
    return -1e300;
  };
  for (std::size_t i = 0; i < library_.size(); ++i) {
    EXPECT_GE(scoreOf(refined, i), scoreOf(base, i) - 1e-9) << "ligand " << i;
  }
}

TEST_F(VsPipelineFixture, ClusteringReportsModes) {
  ScreeningOptions opts = fastOptions();
  opts.clusterModes = true;
  const ScreeningReport report = screenLibrary(scenario_.receptor, library_, opts);
  for (const auto& hit : report.ranked) {
    EXPECT_GE(hit.bindingModes, 1u);
  }
}

TEST_F(VsPipelineFixture, KnownBinderRanksFirst) {
  // The scenario's own ligand was built to complement the pocket; small
  // random decoys have far fewer favorable contacts to offer. Screening
  // the mixed library must put the known binder on top.
  Rng rng(5);
  std::vector<chem::Molecule> mixed = chem::buildLigandLibrary(3, 4, 6, rng);
  chem::Molecule binder = scenario_.ligand;
  binder.setName("known-binder");
  mixed.push_back(binder);

  ScreeningOptions opts = fastOptions();
  opts.evaluationsPerLigand = 800;
  const ScreeningReport report = screenLibrary(scenario_.receptor, mixed, opts);
  ASSERT_EQ(report.ranked.size(), mixed.size());
  EXPECT_EQ(report.ranked.front().ligandName, "known-binder");
  EXPECT_EQ(report.ranked.front().ligandIndex, mixed.size() - 1);
  EXPECT_GT(report.ranked.front().refinedScore, report.ranked[1].refinedScore);
}

TEST_F(VsPipelineFixture, StableTotalOrderBreaksScoreTiesByIndex) {
  ScreeningHit a, b;
  a.refinedScore = 1.5;
  b.refinedScore = 1.5;
  a.ligandIndex = 3;
  b.ligandIndex = 7;
  EXPECT_TRUE(hitOrderBefore(a, b));   // tie -> lower index first
  EXPECT_FALSE(hitOrderBefore(b, a));
  b.refinedScore = 2.0;
  EXPECT_TRUE(hitOrderBefore(b, a));   // higher score first
  EXPECT_FALSE(hitOrderBefore(a, a));  // irreflexive (strict weak order)
}

TEST_F(VsPipelineFixture, LigandStreamDependsOnlyOnSeedAndGlobalIndex) {
  // Shard-layout invariance rests on this: the stream for ligand 11 is
  // the same whether it is screened alone, in slice [8,16), or in the
  // whole library.
  Rng a = ligandScreenStream(2020, 11);
  Rng b = ligandScreenStream(2020, 11);
  const std::uint64_t base = a();
  EXPECT_EQ(base, b());
  Rng c = ligandScreenStream(2020, 12);
  Rng d = ligandScreenStream(2021, 11);
  EXPECT_NE(c(), base);
  EXPECT_NE(d(), base);
}

TEST_F(VsPipelineFixture, SliceMergeMatchesWholeLibraryBitForBit) {
  // The distributed-screening keystone: screening the library as one
  // slice must equal screening it as N slices merged, for any N.
  const ScreeningOptions opts = fastOptions();
  const ScreeningReport whole = screenLibrary(scenario_.receptor, library_, opts);

  for (std::size_t slices : {2u, 3u, 4u}) {
    std::vector<ScreeningReport> parts;
    const std::size_t step = (library_.size() + slices - 1) / slices;
    for (std::size_t lo = 0; lo < library_.size(); lo += step) {
      const std::size_t hi = std::min(lo + step, library_.size());
      const std::vector<chem::Molecule> slice(library_.begin() + lo, library_.begin() + hi);
      parts.push_back(screenLibrarySlice(scenario_.receptor, slice, lo, opts));
    }
    const ScreeningReport merged = mergeScreeningReports(parts, library_.size());
    ASSERT_EQ(merged.ranked.size(), whole.ranked.size()) << slices << " slices";
    for (std::size_t i = 0; i < whole.ranked.size(); ++i) {
      EXPECT_EQ(merged.ranked[i].ligandIndex, whole.ranked[i].ligandIndex);
      EXPECT_EQ(merged.ranked[i].ligandName, whole.ranked[i].ligandName);
      // Bit-exact, not approximately equal: same ligand, same stream,
      // same arithmetic regardless of slicing.
      EXPECT_EQ(merged.ranked[i].bestScore, whole.ranked[i].bestScore);
      EXPECT_EQ(merged.ranked[i].refinedScore, whole.ranked[i].refinedScore);
    }
    EXPECT_EQ(merged.hitCount, whole.hitCount);
    EXPECT_EQ(merged.totalEvaluations, whole.totalEvaluations);
    EXPECT_DOUBLE_EQ(merged.hitRate, whole.hitRate);
  }
}

TEST_F(VsPipelineFixture, MergeTruncatesToTopK) {
  const ScreeningOptions opts = fastOptions();
  const ScreeningReport whole = screenLibrary(scenario_.receptor, library_, opts);
  const ScreeningReport top2 = mergeScreeningReports({whole}, library_.size(), 2);
  ASSERT_EQ(top2.ranked.size(), 2u);
  EXPECT_EQ(top2.ranked[0].ligandIndex, whole.ranked[0].ligandIndex);
  EXPECT_EQ(top2.ranked[1].ligandIndex, whole.ranked[1].ligandIndex);
  EXPECT_EQ(top2.hitCount, whole.hitCount);  // counters are library-wide, not top-K
}

TEST_F(VsPipelineFixture, CsvExport) {
  const ScreeningReport report = screenLibrary(scenario_.receptor, library_, fastOptions());
  const auto path = std::filesystem::temp_directory_path() / "dqndock_screen.csv";
  writeScreeningCsv(path.string(), report);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "rank,ligand,atoms,best_score,refined_score,binding_modes,evaluations");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, library_.size());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dqndock::metadock
