// Tests for the analytic scoring gradients and the pose minimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "src/chem/synthetic.hpp"
#include "src/metadock/forces.hpp"

namespace dqndock::metadock {
namespace {

using chem::Element;
using chem::ForceField;

TEST(PairForceTest, ElectrostaticDerivativeMatchesFiniteDifference) {
  const double eps = 1e-6;
  for (double r : {1.0, 2.5, 6.0}) {
    const double numeric =
        (electrostaticEnergy(0.4, -0.3, r + eps) - electrostaticEnergy(0.4, -0.3, r - eps)) /
        (2 * eps);
    EXPECT_NEAR(electrostaticForceDr(0.4, -0.3, r), numeric, 1e-4) << "r = " << r;
  }
}

TEST(PairForceTest, LennardJonesDerivativeMatchesFiniteDifference) {
  const double eps = 1e-7;
  for (double r : {2.8, 3.4, 3.8, 5.0, 9.0}) {
    const double numeric =
        (lennardJonesEnergy(0.1, 3.4, r + eps) - lennardJonesEnergy(0.1, 3.4, r - eps)) /
        (2 * eps);
    EXPECT_NEAR(lennardJonesForceDr(0.1, 3.4, r), numeric,
                1e-3 * std::max(1.0, std::fabs(numeric)))
        << "r = " << r;
  }
}

TEST(PairForceTest, LennardJonesForceZeroAtMinimum) {
  const double sigma = 3.4, epsw = 0.1;
  const double rmin = std::pow(2.0, 1.0 / 6.0) * sigma;
  EXPECT_NEAR(lennardJonesForceDr(epsw, sigma, rmin), 0.0, 1e-10);
  // Repulsive (negative dE/dr means E decreases outward) inside the well.
  EXPECT_LT(lennardJonesForceDr(epsw, sigma, rmin * 0.9), 0.0);
  EXPECT_GT(lennardJonesForceDr(epsw, sigma, rmin * 1.1), 0.0);
}

TEST(PairForceTest, HBondRadialDerivativeMatchesFiniteDifference) {
  const auto hb = ForceField::standard().hbond();
  const double eps = 1e-7;
  for (double cosTheta : {1.0, 0.6, 0.0}) {
    for (double r : {1.7, 1.9, 2.5}) {
      const double numeric = (hbondEnergy(hb, 0.1, 3.0, r + eps, cosTheta) -
                              hbondEnergy(hb, 0.1, 3.0, r - eps, cosTheta)) /
                             (2 * eps);
      EXPECT_NEAR(hbondForceDr(hb, 0.1, 3.0, r, cosTheta), numeric,
                  1e-3 * std::max(1.0, std::fabs(numeric)))
          << "r = " << r << " cos = " << cosTheta;
    }
  }
}

TEST(PairForceTest, ClampedRegionHasZeroForce) {
  EXPECT_DOUBLE_EQ(electrostaticForceDr(1, 1, 0.01), 0.0);
  EXPECT_DOUBLE_EQ(lennardJonesForceDr(0.1, 3.4, 0.01), 0.0);
}

class GradientFixture : public ::testing::Test {
 protected:
  GradientFixture() : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())) {
    // Strip H-bond roles so the analytic gradient (which freezes the
    // angular factor) is exact and finite differences match tightly.
    for (std::size_t i = 0; i < scenario_.receptor.atomCount(); ++i) {
      scenario_.receptor.setHBondRole(i, chem::HBondRole::kNone);
    }
    for (std::size_t i = 0; i < scenario_.ligand.atomCount(); ++i) {
      scenario_.ligand.setHBondRole(i, chem::HBondRole::kNone);
    }
    receptor_ = std::make_unique<ReceptorModel>(scenario_.receptor, 0.0);
    ligand_ = std::make_unique<LigandModel>(scenario_.ligand);
    options_.cutoff = 0.0;  // no cutoff: energy is smooth everywhere
    options_.useGrid = false;
    scoring_ = std::make_unique<ScoringFunction>(*receptor_, *ligand_, options_);
    gradient_ = std::make_unique<ScoringGradient>(*receptor_, *ligand_, options_);
  }

  chem::Scenario scenario_;
  std::unique_ptr<ReceptorModel> receptor_;
  std::unique_ptr<LigandModel> ligand_;
  ScoringOptions options_;
  std::unique_ptr<ScoringFunction> scoring_;
  std::unique_ptr<ScoringGradient> gradient_;
};

TEST_F(GradientFixture, AtomGradientsMatchFiniteDifferences) {
  // Place the ligand near the surface where forces are non-trivial.
  Pose pose(ligand_->torsionCount());
  pose.translation = scenario_.pocketCenter + Vec3{0, 0, 3.0};
  std::vector<Vec3> positions;
  ligand_->applyPose(pose, positions);

  std::vector<Vec3> gradients;
  const double energy = gradient_->atomGradients(positions, gradients);
  ASSERT_EQ(gradients.size(), positions.size());

  // Energy agrees with the scoring function.
  EXPECT_NEAR(energy, -scoring_->score(positions), 1e-9 * std::max(1.0, std::fabs(energy)));

  const double eps = 1e-5;
  for (std::size_t i = 0; i < std::min<std::size_t>(positions.size(), 5); ++i) {
    for (int axis = 0; axis < 3; ++axis) {
      auto perturbed = positions;
      Vec3& p = perturbed[i];
      double* comp = axis == 0 ? &p.x : (axis == 1 ? &p.y : &p.z);
      *comp += eps;
      std::vector<Vec3> dummy;
      const double up = gradient_->atomGradients(perturbed, dummy);
      *comp -= 2 * eps;
      const double down = gradient_->atomGradients(perturbed, dummy);
      const double numeric = (up - down) / (2 * eps);
      const double analytic = axis == 0 ? gradients[i].x
                              : axis == 1 ? gradients[i].y
                                          : gradients[i].z;
      EXPECT_NEAR(analytic, numeric, 1e-3 * std::max(1.0, std::fabs(numeric)))
          << "atom " << i << " axis " << axis;
    }
  }
}

TEST_F(GradientFixture, RigidBodyForcePointsDownhill) {
  // At a pose outside the pocket the net force should have a descent
  // direction: stepping along it must improve the score.
  Pose pose(ligand_->torsionCount());
  pose.translation = scenario_.pocketCenter + Vec3{0, 0, 4.0};
  std::vector<Vec3> positions;
  ligand_->applyPose(pose, positions);
  const RigidBodyForce rb = gradient_->rigidBodyForce(positions);
  ASSERT_GT(rb.force.norm(), 0.0);

  const double before = scoring_->score(positions);
  Pose stepped = pose;
  stepped.translation += rb.force.normalized() * 0.05;
  ligand_->applyPose(stepped, positions);
  EXPECT_GT(scoring_->score(positions), before);
}

TEST_F(GradientFixture, MinimizerImprovesScore) {
  Pose start(ligand_->torsionCount());
  start.translation = scenario_.pocketCenter + Vec3{1.0, -0.5, 4.0};
  const MinimizeResult result = minimizePose(*scoring_, *gradient_, start);
  EXPECT_GT(result.finalScore, result.initialScore);
  EXPECT_GT(result.iterations, 0);
}

TEST_F(GradientFixture, MinimizerIsStableAtAnOptimum) {
  // Run once to (near-)convergence, then restart from the result: the
  // second run must not make things worse.
  Pose start(ligand_->torsionCount());
  start.translation = scenario_.pocketCenter + Vec3{0, 0, 3.0};
  MinimizeOptions opts;
  opts.maxIterations = 400;
  const MinimizeResult first = minimizePose(*scoring_, *gradient_, start, opts);
  const MinimizeResult second = minimizePose(*scoring_, *gradient_, first.pose, opts);
  EXPECT_GE(second.finalScore, first.finalScore - 1e-9);
}

TEST_F(GradientFixture, TorsionRefinementNeverHurtsAndCanHelp) {
  Pose start(ligand_->torsionCount());
  start.translation = scenario_.pocketCenter + Vec3{0.5, 0, 3.5};
  // Kink the torsions away from the template conformation.
  for (auto& t : start.torsions) t = 0.8;

  MinimizeOptions rigid;
  MinimizeOptions flexible;
  flexible.refineTorsions = true;
  const MinimizeResult a = minimizePose(*scoring_, *gradient_, start, rigid);
  const MinimizeResult b = minimizePose(*scoring_, *gradient_, start, flexible);
  // Both descents only accept improvements; the flexible one must also
  // improve, and its extra DOFs typically let it match or beat rigid.
  EXPECT_GT(a.finalScore, a.initialScore);
  EXPECT_GT(b.finalScore, b.initialScore);
  // Torsion moves are only ever accepted when they raise the score, so
  // within a single run the refinement can never make that run worse
  // than its own rigid steps would have at the same iteration.
  EXPECT_TRUE(std::isfinite(b.finalScore));
}

TEST_F(GradientFixture, GradientCountMismatchThrows) {
  std::vector<Vec3> wrong(3);
  std::vector<Vec3> grads;
  EXPECT_THROW(gradient_->atomGradients(wrong, grads), std::invalid_argument);
}

TEST(GradientGridTest, PrunedGradientMatchesBruteWithinCutoff) {
  auto scenario = chem::buildScenario(chem::ScenarioSpec::tiny());
  ReceptorModel receptor(scenario.receptor, 10.0);
  LigandModel ligand(scenario.ligand);
  ScoringOptions brute;
  brute.cutoff = 10.0;
  brute.useGrid = false;
  ScoringOptions pruned;
  pruned.cutoff = 10.0;
  pruned.useGrid = true;
  ScoringGradient a(receptor, ligand, brute);
  ScoringGradient b(receptor, ligand, pruned);

  Pose pose(ligand.torsionCount());
  pose.translation = scenario.pocketCenter + Vec3{0, 0, 2.0};
  std::vector<Vec3> positions;
  ligand.applyPose(pose, positions);
  std::vector<Vec3> ga, gb;
  const double ea = a.atomGradients(positions, ga);
  const double eb = b.atomGradients(positions, gb);
  EXPECT_NEAR(ea, eb, 1e-9 * std::max(1.0, std::fabs(ea)));
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_NEAR(distance(ga[i], gb[i]), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace dqndock::metadock
