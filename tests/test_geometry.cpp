// Unit and property tests for the geometry primitives: Vec3, Mat3, Quat.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/mat3.hpp"
#include "src/common/quat.hpp"
#include "src/common/rng.hpp"
#include "src/common/vec3.hpp"

namespace dqndock {
namespace {

constexpr double kTol = 1e-12;

TEST(Vec3Test, ArithmeticBasics) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1, 1.5}));
}

TEST(Vec3Test, DotAndCross) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
  EXPECT_DOUBLE_EQ((Vec3{1, 2, 3}).dot(Vec3{4, 5, 6}), 32.0);
}

TEST(Vec3Test, NormAndNormalize) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_NEAR(v.normalized().norm(), 1.0, kTol);
  EXPECT_EQ((Vec3{}).normalized(), Vec3{});
}

TEST(Vec3Test, MinMaxComponentwise) {
  const Vec3 a{1, 5, 3}, b{2, 4, 3};
  EXPECT_EQ(a.min(b), (Vec3{1, 4, 3}));
  EXPECT_EQ(a.max(b), (Vec3{2, 5, 3}));
}

TEST(Vec3Test, Distance) {
  EXPECT_DOUBLE_EQ(distance(Vec3{0, 0, 0}, Vec3{0, 3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance2(Vec3{0, 0, 0}, Vec3{0, 3, 4}), 25.0);
}

TEST(Vec3Test, IndexOperator) {
  const Vec3 v{7, 8, 9};
  EXPECT_DOUBLE_EQ(v[0], 7);
  EXPECT_DOUBLE_EQ(v[1], 8);
  EXPECT_DOUBLE_EQ(v[2], 9);
}

TEST(Mat3Test, IdentityByDefault) {
  const Mat3 m;
  const Vec3 v{1, 2, 3};
  const Vec3 r = m * v;
  EXPECT_NEAR(distance(r, v), 0.0, kTol);
  EXPECT_DOUBLE_EQ(m.trace(), 3.0);
}

TEST(Mat3Test, RotationAboutZ90Degrees) {
  const Mat3 r = Mat3::rotationAboutAxis(Vec3{0, 0, 1}, M_PI / 2);
  const Vec3 rotated = r * Vec3{1, 0, 0};
  EXPECT_NEAR(rotated.x, 0.0, kTol);
  EXPECT_NEAR(rotated.y, 1.0, kTol);
  EXPECT_NEAR(rotated.z, 0.0, kTol);
}

TEST(Mat3Test, ZeroAxisGivesIdentity) {
  const Mat3 r = Mat3::rotationAboutAxis(Vec3{}, 1.0);
  EXPECT_NEAR(distance(r * Vec3{1, 2, 3}, Vec3{1, 2, 3}), 0.0, kTol);
}

TEST(Mat3Test, TransposeOfRotationIsInverse) {
  const Mat3 r = Mat3::rotationAboutAxis(Vec3{1, 2, 3}, 0.7);
  const Mat3 rt = r.transposed();
  const Mat3 prod = r * rt;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(QuatTest, IdentityRotatesNothing) {
  const Quat q = Quat::identity();
  const Vec3 v{1, 2, 3};
  EXPECT_NEAR(distance(q.rotate(v), v), 0.0, kTol);
  EXPECT_DOUBLE_EQ(q.angle(), 0.0);
}

TEST(QuatTest, AxisAngleMatchesMatrix) {
  const Vec3 axis{1, -2, 0.5};
  const double angle = 1.234;
  const Quat q = Quat::fromAxisAngle(axis, angle);
  const Mat3 m = Mat3::rotationAboutAxis(axis, angle);
  const Vec3 v{0.3, -1.7, 2.2};
  EXPECT_NEAR(distance(q.rotate(v), m * v), 0.0, 1e-12);
  EXPECT_NEAR(distance(q.toMatrix() * v, m * v), 0.0, 1e-12);
}

TEST(QuatTest, ConjugateInverts) {
  const Quat q = Quat::fromAxisAngle(Vec3{0, 1, 0}, 0.9);
  const Vec3 v{1, 2, 3};
  EXPECT_NEAR(distance(q.conjugate().rotate(q.rotate(v)), v), 0.0, 1e-12);
}

TEST(QuatTest, AngleRecovered) {
  const Quat q = Quat::fromAxisAngle(Vec3{1, 1, 1}, 0.5);
  EXPECT_NEAR(q.angle(), 0.5, 1e-12);
}

TEST(QuatTest, NormalizedDegenerateFallsBackToIdentity) {
  const Quat q{0, 0, 0, 0};
  const Quat n = q.normalized();
  EXPECT_DOUBLE_EQ(n.w, 1.0);
}

// Property sweep: random rotations preserve lengths, angles, and compose.
class QuatPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QuatPropertyTest, RotationPreservesNormAndDot) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Quat q = Quat::fromAxisAngle(rng.unitVector<Vec3>(), rng.uniform(-M_PI, M_PI));
  const Vec3 a{rng.gaussian(), rng.gaussian(), rng.gaussian()};
  const Vec3 b{rng.gaussian(), rng.gaussian(), rng.gaussian()};
  EXPECT_NEAR(q.rotate(a).norm(), a.norm(), 1e-10);
  EXPECT_NEAR(q.rotate(a).dot(q.rotate(b)), a.dot(b), 1e-9);
}

TEST_P(QuatPropertyTest, CompositionMatchesSequentialRotation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const Quat q1 = Quat::fromAxisAngle(rng.unitVector<Vec3>(), rng.uniform(-M_PI, M_PI));
  const Quat q2 = Quat::fromAxisAngle(rng.unitVector<Vec3>(), rng.uniform(-M_PI, M_PI));
  const Vec3 v{rng.gaussian(), rng.gaussian(), rng.gaussian()};
  EXPECT_NEAR(distance((q2 * q1).rotate(v), q2.rotate(q1.rotate(v))), 0.0, 1e-9);
}

TEST_P(QuatPropertyTest, MatrixConversionAgrees) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const Quat q = Quat::fromAxisAngle(rng.unitVector<Vec3>(), rng.uniform(-M_PI, M_PI));
  const Vec3 v{rng.gaussian(), rng.gaussian(), rng.gaussian()};
  EXPECT_NEAR(distance(q.toMatrix() * v, q.rotate(v)), 0.0, 1e-10);
}

TEST_P(QuatPropertyTest, RepeatedSmallRotationsStayUnit) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  Quat q = Quat::identity();
  const Quat stepRot = Quat::fromAxisAngle(rng.unitVector<Vec3>(), 0.5 * M_PI / 180.0);
  // Thousands of 0.5-degree increments (one docking episode of rotations).
  for (int i = 0; i < 2000; ++i) q = (stepRot * q).normalized();
  EXPECT_NEAR(q.norm(), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuatPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace dqndock
