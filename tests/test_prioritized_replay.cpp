// Tests for proportional prioritized experience replay.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/rl/dqn_agent.hpp"
#include "src/rl/prioritized_replay.hpp"

namespace dqndock::rl {
namespace {

std::vector<double> stateOf(double v, std::size_t dim = 2) {
  return std::vector<double>(dim, v);
}

TEST(PrioritizedReplayTest, ConstructionValidation) {
  EXPECT_THROW(PrioritizedReplayBuffer(0, 2), std::invalid_argument);
  EXPECT_THROW(PrioritizedReplayBuffer(4, 0), std::invalid_argument);
}

TEST(PrioritizedReplayTest, PushAndSampleBasics) {
  PrioritizedReplayBuffer rb(8, 2);
  EXPECT_EQ(rb.size(), 0u);
  rb.push(stateOf(1), 3, 0.5, stateOf(2), false);
  EXPECT_EQ(rb.size(), 1u);
  Rng rng(1);
  const Minibatch mb = rb.sample(4, rng);
  ASSERT_EQ(mb.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(mb.actions[b], 3);
    EXPECT_DOUBLE_EQ(mb.states(b, 0), 1.0);
  }
  EXPECT_EQ(rb.lastSampledIndices().size(), 4u);
  EXPECT_EQ(rb.lastImportanceWeights().size(), 4u);
}

TEST(PrioritizedReplayTest, SampleEmptyThrows) {
  PrioritizedReplayBuffer rb(8, 2);
  Rng rng(2);
  EXPECT_THROW(rb.sample(2, rng), std::logic_error);
}

TEST(PrioritizedReplayTest, DimMismatchThrows) {
  PrioritizedReplayBuffer rb(8, 2);
  EXPECT_THROW(rb.push(stateOf(0, 3), 0, 0, stateOf(0, 2), false), std::invalid_argument);
}

TEST(PrioritizedReplayTest, HighTdErrorSampledMoreOften) {
  PrioritizedReplayBuffer rb(4, 2);
  for (int i = 0; i < 4; ++i) rb.push(stateOf(i), i, 0, stateOf(i), false);

  // Assign very different priorities by faking TD feedback: sample once to
  // establish indices, then override priorities directly.
  Rng rng(3);
  rb.sample(4, rng);
  // Feed errors so that slot of action 2 dominates. We need the indices of
  // the last batch; instead bias by pushing repeated updates: sample until
  // we've covered all slots and set |td| accordingly.
  for (int round = 0; round < 50; ++round) {
    const Minibatch mb = rb.sample(4, rng);
    std::vector<double> errs(mb.size());
    for (std::size_t b = 0; b < mb.size(); ++b) {
      errs[b] = (mb.actions[b] == 2) ? 10.0 : 0.01;
    }
    rb.updatePriorities(errs);
  }

  // Now action 2 should dominate the samples.
  int hits2 = 0, total = 0;
  for (int round = 0; round < 200; ++round) {
    const Minibatch mb = rb.sample(4, rng);
    for (int a : mb.actions) {
      ++total;
      if (a == 2) ++hits2;
    }
    // Keep the priorities as they are.
    std::vector<double> errs(mb.size());
    for (std::size_t b = 0; b < mb.size(); ++b) {
      errs[b] = (mb.actions[b] == 2) ? 10.0 : 0.01;
    }
    rb.updatePriorities(errs);
  }
  EXPECT_GT(static_cast<double>(hits2) / total, 0.5);
}

TEST(PrioritizedReplayTest, ImportanceWeightsNormalizedToMaxOne) {
  PrioritizedReplayBuffer rb(8, 2);
  for (int i = 0; i < 8; ++i) rb.push(stateOf(i), i, 0, stateOf(i), false);
  Rng rng(4);
  rb.sample(8, rng);
  double maxW = 0.0;
  for (double w : rb.lastImportanceWeights()) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0 + 1e-12);
    maxW = std::max(maxW, w);
  }
  EXPECT_NEAR(maxW, 1.0, 1e-12);
}

TEST(PrioritizedReplayTest, BetaAnnealsTowardOne) {
  PrioritizedReplayConfig cfg;
  cfg.beta = 0.4;
  cfg.betaIncrement = 0.1;
  PrioritizedReplayBuffer rb(4, 2, cfg);
  rb.push(stateOf(0), 0, 0, stateOf(0), false);
  Rng rng(5);
  EXPECT_DOUBLE_EQ(rb.beta(), 0.4);
  for (int i = 0; i < 10; ++i) rb.sample(2, rng);
  EXPECT_DOUBLE_EQ(rb.beta(), 1.0);  // clamped
}

TEST(PrioritizedReplayTest, UpdateSizeMismatchThrows) {
  PrioritizedReplayBuffer rb(4, 2);
  rb.push(stateOf(0), 0, 0, stateOf(0), false);
  Rng rng(6);
  rb.sample(4, rng);
  std::vector<double> wrong(2, 1.0);
  EXPECT_THROW(rb.updatePriorities(wrong), std::invalid_argument);
}

TEST(PrioritizedReplayTest, AgentLearnsThroughPrioritizedSource) {
  // End-to-end: DqnAgent::learn must detect the PrioritizedSource, apply
  // weights and feed priorities back without error, and still learn the
  // fixed terminal-reward problem.
  Rng rng(7);
  DqnConfig cfg;
  cfg.hiddenSizes = {16};
  cfg.batchSize = 8;
  cfg.optimizer = "adam";
  cfg.learningRate = 0.005;
  DqnAgent agent(2, 2, cfg, rng);

  PrioritizedReplayBuffer rb(256, 2);
  for (int i = 0; i < 128; ++i) {
    const bool good = i % 2 == 0;
    rb.push(stateOf(1), good ? 0 : 1, good ? 1.0 : 0.0, stateOf(1), true);
  }
  for (int i = 0; i < 500; ++i) agent.learn(rb, rng);
  const std::vector<double> s = stateOf(1);
  EXPECT_EQ(agent.greedyAction(s), 0);
  const auto q = agent.qValues(s);
  EXPECT_NEAR(q[0], 1.0, 0.2);
}

}  // namespace
}  // namespace dqndock::rl
