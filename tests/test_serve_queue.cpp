// Tests for the bounded MPMC job queue (backpressure, priorities,
// cancellation) and the docking service worker pool built on it
// (timeouts, cancellation mid-rollout, graceful shutdown).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/chem/synthetic.hpp"
#include "src/serve/docking_service.hpp"
#include "src/serve/job_queue.hpp"

namespace dqndock::serve {
namespace {

std::shared_ptr<Job> makeJob(std::uint64_t id, JobPriority priority,
                             std::function<void(Job&)> work = [](Job&) {}) {
  return std::make_shared<Job>(id, priority, std::move(work));
}

TEST(JobQueueTest, PushPopRunLifecycle) {
  JobQueue queue(4);
  std::atomic<int> ran{0};
  auto job = makeJob(1, JobPriority::kNormal, [&](Job&) { ++ran; });
  ASSERT_TRUE(queue.push(job).accepted());
  EXPECT_EQ(queue.size(), 1u);
  auto popped = queue.pop();
  ASSERT_EQ(popped, job);
  popped->run();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(job->wait(), JobStatus::kDone);
}

TEST(JobQueueTest, BackpressureRejectsWhenFull) {
  JobQueue queue(2);
  ASSERT_TRUE(queue.push(makeJob(1, JobPriority::kNormal)).accepted());
  ASSERT_TRUE(queue.push(makeJob(2, JobPriority::kNormal)).accepted());
  auto overflow = makeJob(3, JobPriority::kHigh);
  const SubmitResult rejected = queue.push(overflow);
  EXPECT_FALSE(rejected.accepted());
  EXPECT_EQ(rejected.status, SubmitStatus::kQueueFull);
  EXPECT_NE(rejected.reason().find("queue full"), std::string::npos);
  // The rejected job resolves immediately: nobody hangs on it.
  EXPECT_EQ(overflow->wait(), JobStatus::kCancelled);
  EXPECT_EQ(overflow->error(), rejected.reason());
  EXPECT_EQ(queue.stats().rejectedFull, 1u);
}

TEST(JobQueueTest, PopHonorsPriorityThenFifo) {
  JobQueue queue(8);
  queue.push(makeJob(1, JobPriority::kLow));
  queue.push(makeJob(2, JobPriority::kNormal));
  queue.push(makeJob(3, JobPriority::kHigh));
  queue.push(makeJob(4, JobPriority::kHigh));
  queue.push(makeJob(5, JobPriority::kNormal));
  EXPECT_EQ(queue.pop()->id(), 3u);
  EXPECT_EQ(queue.pop()->id(), 4u);
  EXPECT_EQ(queue.pop()->id(), 2u);
  EXPECT_EQ(queue.pop()->id(), 5u);
  EXPECT_EQ(queue.pop()->id(), 1u);
}

TEST(JobQueueTest, CancelQueuedJobNeverRuns) {
  JobQueue queue(4);
  std::atomic<int> ran{0};
  auto job = makeJob(9, JobPriority::kNormal, [&](Job&) { ++ran; });
  queue.push(job);
  EXPECT_TRUE(queue.cancelQueued(9));
  EXPECT_EQ(job->status(), JobStatus::kCancelled);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_FALSE(queue.cancelQueued(9));  // already gone
}

TEST(JobQueueTest, PopDiscardsJobsCancelledViaHandle) {
  JobQueue queue(4);
  auto first = makeJob(1, JobPriority::kNormal);
  auto second = makeJob(2, JobPriority::kNormal);
  queue.push(first);
  queue.push(second);
  first->requestCancel();
  EXPECT_EQ(queue.pop()->id(), 2u);  // 1 was skipped and resolved
  EXPECT_EQ(first->wait(), JobStatus::kCancelled);
  EXPECT_EQ(queue.stats().cancelledQueued, 1u);
}

TEST(JobQueueTest, CloseWakesBlockedPopAndRejectsPushes) {
  JobQueue queue(4);
  std::thread popper([&] { EXPECT_EQ(queue.pop(), nullptr); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  popper.join();
  const SubmitResult rejected = queue.push(makeJob(1, JobPriority::kNormal));
  EXPECT_EQ(rejected.status, SubmitStatus::kShutdown);
}

TEST(JobQueueTest, WorkExceptionBecomesFailedStatus) {
  auto job = makeJob(5, JobPriority::kNormal,
                     [](Job&) { throw std::runtime_error("scoring blew up"); });
  job->run();
  EXPECT_EQ(job->status(), JobStatus::kFailed);
  EXPECT_EQ(job->error(), "scoring blew up");
}

// ---------------------------------------------------------------------------

class ServiceFixture : public ::testing::Test {
 protected:
  ServiceFixture() : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())) {}

  std::unique_ptr<ModelRegistry> makeRegistry() {
    Rng rng(11);
    const std::size_t dim = scenario_.ligand.atomCount() * 3;
    return std::make_unique<ModelRegistry>(
        std::make_unique<rl::MlpQNetwork>(dim, std::vector<std::size_t>{16}, 12, rng));
  }

  ServiceOptions fastOptions(std::size_t workers, std::size_t capacity) const {
    ServiceOptions opts;
    opts.workers = workers;
    opts.queueCapacity = capacity;
    opts.batcher.flushDeadline = std::chrono::microseconds(50);
    return opts;
  }

  /// Environment bounds relaxed so a rollout only ends when the service
  /// ends it (for cancellation/timeout tests).
  static void makeEndless(ServiceOptions& opts) {
    opts.env.maxSteps = 1 << 30;
    opts.env.boundaryFactor = 1e9;
    opts.env.floorPatience = 1 << 30;
  }

  chem::Scenario scenario_;
};

TEST_F(ServiceFixture, DockJobCompletes) {
  auto registry = makeRegistry();
  DockingService service(scenario_, *registry, fastOptions(2, 8));
  DockRequest request;
  request.maxSteps = 5;
  const SubmitResult submitted = service.submitDock(request);
  ASSERT_TRUE(submitted.accepted());
  const JobOutcome outcome = service.wait(submitted.jobId);
  EXPECT_EQ(outcome.status, JobStatus::kDone);
  EXPECT_EQ(outcome.kind, JobOutcome::Kind::kDock);
  EXPECT_GT(outcome.dock.steps, 0u);
  EXPECT_LE(outcome.dock.steps, 5u);
  EXPECT_GE(outcome.dock.bestScore, outcome.dock.initialScore);
  EXPECT_GE(outcome.dock.bestScore, outcome.dock.finalScore);
  EXPECT_EQ(outcome.dock.modelVersion, 1u);
  EXPECT_FALSE(outcome.dock.termination.empty());
}

TEST_F(ServiceFixture, ManyConcurrentDocksAllComplete) {
  auto registry = makeRegistry();
  DockingService service(scenario_, *registry, fastOptions(3, 32));
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 12; ++i) {
    DockRequest request;
    request.maxSteps = 8;
    request.epsilon = 0.3;
    request.seed = static_cast<std::uint64_t>(i + 1);
    const SubmitResult submitted = service.submitDock(request);
    ASSERT_TRUE(submitted.accepted());
    ids.push_back(submitted.jobId);
  }
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(service.wait(id).status, JobStatus::kDone);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.done, 12u);
  EXPECT_GE(stats.batcher.requests, 1u);
}

TEST_F(ServiceFixture, ScreenJobCompletes) {
  auto registry = makeRegistry();
  DockingService service(scenario_, *registry, fastOptions(2, 8));
  ScreenRequest request;
  request.librarySize = 2;
  request.minAtoms = 6;
  request.maxAtoms = 8;
  request.evaluationsPerLigand = 50;
  const SubmitResult submitted = service.submitScreen(request);
  ASSERT_TRUE(submitted.accepted());
  const JobOutcome outcome = service.wait(submitted.jobId);
  EXPECT_EQ(outcome.status, JobStatus::kDone);
  EXPECT_EQ(outcome.kind, JobOutcome::Kind::kScreen);
  EXPECT_EQ(outcome.screen.ligands, 2u);
  EXPECT_FALSE(outcome.screen.bestLigand.empty());
  EXPECT_GT(outcome.screen.totalEvaluations, 0u);
}

TEST_F(ServiceFixture, DockTimeoutReportsPartialResult) {
  auto registry = makeRegistry();
  ServiceOptions opts = fastOptions(1, 4);
  makeEndless(opts);
  DockingService service(scenario_, *registry, opts);
  DockRequest request;
  request.maxSteps = 1 << 30;
  request.timeoutSeconds = 0.02;
  const SubmitResult submitted = service.submitDock(request);
  ASSERT_TRUE(submitted.accepted());
  const JobOutcome outcome = service.wait(submitted.jobId);
  EXPECT_EQ(outcome.status, JobStatus::kTimedOut);
  EXPECT_NE(outcome.error.find("budget"), std::string::npos);
  EXPECT_EQ(outcome.dock.termination, "timed_out");
}

TEST_F(ServiceFixture, CancelRunningDock) {
  auto registry = makeRegistry();
  ServiceOptions opts = fastOptions(1, 4);
  makeEndless(opts);
  DockingService service(scenario_, *registry, opts);
  DockRequest request;
  request.maxSteps = 1 << 30;
  const SubmitResult submitted = service.submitDock(request);
  ASSERT_TRUE(submitted.accepted());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // let it start stepping
  EXPECT_TRUE(service.cancel(submitted.jobId));
  const JobOutcome outcome = service.wait(submitted.jobId);
  EXPECT_EQ(outcome.status, JobStatus::kCancelled);
}

TEST_F(ServiceFixture, CancelQueuedJobAndBackpressure) {
  auto registry = makeRegistry();
  ServiceOptions opts = fastOptions(1, 2);
  makeEndless(opts);
  DockingService service(scenario_, *registry, opts);

  DockRequest endless;
  endless.maxSteps = 1 << 30;
  const SubmitResult running = service.submitDock(endless);
  ASSERT_TRUE(running.accepted());
  // Give the single worker time to pop the job so the queue is empty.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  DockRequest quick;
  quick.maxSteps = 3;
  const SubmitResult queuedA = service.submitDock(quick);
  const SubmitResult queuedB = service.submitDock(quick);
  ASSERT_TRUE(queuedA.accepted());
  ASSERT_TRUE(queuedB.accepted());
  const SubmitResult rejected = service.submitDock(quick);
  EXPECT_EQ(rejected.status, SubmitStatus::kQueueFull);

  // Cancel one queued job: it resolves without running.
  EXPECT_TRUE(service.cancel(queuedA.jobId));
  EXPECT_EQ(service.wait(queuedA.jobId).status, JobStatus::kCancelled);

  // Unblock the worker; the remaining queued job then completes.
  EXPECT_TRUE(service.cancel(running.jobId));
  EXPECT_EQ(service.wait(running.jobId).status, JobStatus::kCancelled);
  EXPECT_EQ(service.wait(queuedB.jobId).status, JobStatus::kDone);
}

TEST_F(ServiceFixture, WaitOnUnknownOrCollectedIdThrows) {
  auto registry = makeRegistry();
  DockingService service(scenario_, *registry, fastOptions(1, 4));
  EXPECT_THROW(service.wait(12345), std::out_of_range);
  EXPECT_FALSE(service.cancel(12345));
  DockRequest request;
  request.maxSteps = 2;
  const SubmitResult submitted = service.submitDock(request);
  ASSERT_TRUE(submitted.accepted());
  service.wait(submitted.jobId);
  EXPECT_THROW(service.wait(submitted.jobId), std::out_of_range);  // collect-once
}

TEST_F(ServiceFixture, ShutdownDrainsQueuedJobsAndRejectsNewOnes) {
  auto registry = makeRegistry();
  DockingService service(scenario_, *registry, fastOptions(2, 16));
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    DockRequest request;
    request.maxSteps = 4;
    const SubmitResult submitted = service.submitDock(request);
    ASSERT_TRUE(submitted.accepted());
    ids.push_back(submitted.jobId);
  }
  service.shutdown();
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(service.wait(id).status, JobStatus::kDone);  // drained, not dropped
  }
  DockRequest request;
  const SubmitResult afterShutdown = service.submitDock(request);
  EXPECT_EQ(afterShutdown.status, SubmitStatus::kShutdown);
  service.shutdown();  // idempotent
}

TEST_F(ServiceFixture, RegistryDimensionMismatchThrows) {
  Rng rng(3);
  ModelRegistry wrongDims(
      std::make_unique<rl::MlpQNetwork>(7, std::vector<std::size_t>{8}, 12, rng));
  EXPECT_THROW(DockingService(scenario_, wrongDims, fastOptions(1, 4)), std::invalid_argument);
  const std::size_t dim = scenario_.ligand.atomCount() * 3;
  ModelRegistry wrongActions(
      std::make_unique<rl::MlpQNetwork>(dim, std::vector<std::size_t>{8}, 3, rng));
  EXPECT_THROW(DockingService(scenario_, wrongActions, fastOptions(1, 4)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dqndock::serve
