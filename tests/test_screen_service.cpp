// End-to-end tests for the distributed virtual-screening service: a
// real ScreenCoordinator on a loopback socket with ScreenWorker threads
// pulling shards over the wire. The acceptance bar is bit-identity —
// any shard/worker arrangement, including worker death and coordinator
// checkpoint-resume, must reproduce the single-process VsPipeline run
// exactly.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/chem/library_io.hpp"
#include "src/metadock/vs_pipeline.hpp"
#include "src/screen/coordinator.hpp"
#include "src/screen/protocol.hpp"
#include "src/screen/worker.hpp"

namespace dqndock::screen {
namespace {

class ScreenServiceFixture : public ::testing::Test {
 protected:
  ScreenServiceFixture() {
    // Per-test file names: ctest -j N runs fixture tests concurrently,
    // and a shared library/journal path lets one test's ctor/dtor delete
    // the journal another test is about to load (the historic
    // CheckpointResume flake under parallel ctest load).
    const auto dir = std::filesystem::temp_directory_path();
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string tag = std::string(info->name()) + "_" + std::to_string(::getpid());
    libraryPath_ = (dir / ("dqndock_screen_lib_" + tag + ".smi")).string();
    journalPath_ = (dir / ("dqndock_screen_journal_" + tag + ".txt")).string();
    std::filesystem::remove(journalPath_);
    chem::writeSyntheticLibraryFile(libraryPath_, 24, 6, 12, 7);

    config_.libraryPath = libraryPath_;
    config_.searchPreset = "monte-carlo";
    config_.evaluationsPerLigand = 120;  // small but real screening work
    config_.refineWithGradient = false;
    config_.clusterModes = false;
    config_.hitThreshold = -1e18;  // everything is a hit -> full accounting
    config_.seed = 41;
    config_.topK = 0;  // keep all 24 so reports compare hit-for-hit
    config_.shardSize = 6;
    config_.chunkSize = 2;
    // Generous default: under parallel ctest load a 2-ligand chunk can
    // take longer than a tight timeout, and a spuriously reclaimed lease
    // double-screens its shard (breaking exact-count assertions). Tests
    // that exercise expiry dial this down explicitly.
    config_.leaseTimeoutSeconds = 30.0;
  }

  ~ScreenServiceFixture() override {
    std::filesystem::remove(libraryPath_);
    std::filesystem::remove(journalPath_);
  }

  /// The single-process ground truth for this config.
  metadock::ScreeningReport singleProcess() {
    chem::LigandLibraryReader reader(libraryPath_);
    const chem::Molecule receptor = loadReceptor(config_);
    return metadock::screenLibrary(receptor, reader.readAll(), config_.screeningOptions());
  }

  static void expectSameRanking(const metadock::ScreeningReport& a,
                                const metadock::ScreeningReport& b) {
    ASSERT_EQ(a.ranked.size(), b.ranked.size());
    for (std::size_t i = 0; i < a.ranked.size(); ++i) {
      EXPECT_EQ(a.ranked[i].ligandIndex, b.ranked[i].ligandIndex) << "rank " << i;
      EXPECT_EQ(a.ranked[i].ligandName, b.ranked[i].ligandName);
      EXPECT_EQ(a.ranked[i].bestScore, b.ranked[i].bestScore);      // bit-exact
      EXPECT_EQ(a.ranked[i].refinedScore, b.ranked[i].refinedScore);
      EXPECT_EQ(a.ranked[i].evaluations, b.ranked[i].evaluations);
    }
    EXPECT_EQ(a.hitCount, b.hitCount);
    EXPECT_EQ(a.totalEvaluations, b.totalEvaluations);
    EXPECT_DOUBLE_EQ(a.hitRate, b.hitRate);
  }

  /// Condition-style wait on cross-thread coordinator state: spins on
  /// `pred` instead of sleeping for a fixed wall-clock interval, so a
  /// loaded machine only slows the wait down rather than breaking it.
  static bool pollUntil(const std::function<bool()>& pred, double timeoutSeconds = 30.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(timeoutSeconds));
    while (!pred()) {
      if (std::chrono::steady_clock::now() >= deadline) return pred();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }

  /// Worker options that give up quickly once the coordinator halts,
  /// instead of grinding through the patient default backoff.
  static WorkerOptions quickRetry() {
    WorkerOptions options;
    options.retry.maxAttempts = 2;
    options.retry.initialBackoff = std::chrono::milliseconds(50);
    options.retry.deadline = std::chrono::seconds(5);
    return options;
  }

  std::vector<WorkerStats> runWorkers(std::uint16_t port, std::size_t count,
                                      WorkerOptions base = {}) {
    std::vector<WorkerStats> stats(count);
    std::vector<std::thread> crew;
    for (std::size_t w = 0; w < count; ++w) {
      crew.emplace_back([&, w] {
        WorkerOptions options = base;
        options.id = "w" + std::to_string(w);
        stats[w] = ScreenWorker(port, options).run();
      });
    }
    for (auto& t : crew) t.join();
    return stats;
  }

  std::string libraryPath_;
  std::string journalPath_;
  ScreenJobConfig config_;
};

TEST_F(ScreenServiceFixture, DistributedMatchesSingleProcessBitForBit) {
  const metadock::ScreeningReport reference = singleProcess();

  ScreenCoordinator coordinator(config_);
  const auto stats = runWorkers(coordinator.port(), 3);
  EXPECT_TRUE(coordinator.waitUntilDone(60.0));
  for (const auto& s : stats) {
    EXPECT_TRUE(s.error.empty()) << s.error;
    EXPECT_TRUE(s.finished);
  }
  expectSameRanking(reference, coordinator.report());

  const CoordinatorStats cs = coordinator.stats();
  EXPECT_EQ(cs.ligandsDone, 24u);
  EXPECT_EQ(cs.shardsDone, cs.shardsTotal);
  EXPECT_EQ(cs.workersSeen, 3u);
  coordinator.stop();
}

TEST_F(ScreenServiceFixture, WorkerDeathIsReclaimedByLeaseTimeout) {
  // Expiry is the subject here, so the timeout is tight. Healthy
  // workers can ALSO trip it under load; every assertion below
  // tolerates that (stale results are rejected, the merged report stays
  // bit-identical, and leasesExpired only grows).
  config_.leaseTimeoutSeconds = 0.4;
  const metadock::ScreeningReport reference = singleProcess();

  ScreenCoordinator coordinator(config_);
  // One worker dies mid-shard (after 2 granted chunks, RESULT never
  // sent); a healthy worker must pick up the re-queued range after the
  // lease lapses and finish the whole library.
  std::thread doomed([&] {
    WorkerOptions options;
    options.id = "doomed";
    options.abortAfterChunks = 2;
    const WorkerStats stats = ScreenWorker(coordinator.port(), options).run();
    EXPECT_TRUE(stats.aborted);
    EXPECT_EQ(stats.shardsCompleted, 0u);
  });
  doomed.join();

  const auto stats = runWorkers(coordinator.port(), 2);
  EXPECT_TRUE(coordinator.waitUntilDone(60.0));
  for (const auto& s : stats) EXPECT_TRUE(s.error.empty()) << s.error;

  expectSameRanking(reference, coordinator.report());
  EXPECT_GE(coordinator.stats().leasesExpired, 1u);
  coordinator.stop();
}

TEST_F(ScreenServiceFixture, StragglerShardIsSplitForIdleWorkers) {
  // One giant shard: without work stealing a second worker would idle
  // while the first grinds through all 24 ligands. A larger per-ligand
  // budget keeps each chunk substantial.
  config_.evaluationsPerLigand = 500;
  config_.shardSize = 24;
  config_.leaseTimeoutSeconds = 30.0;  // stealing, not expiry, must kick in
  const metadock::ScreeningReport reference = singleProcess();
  ScreenCoordinator coordinator(config_);

  // Launching both workers at once is a wall-clock race: on a loaded
  // machine the second thread can start late enough for the straggler to
  // have granted itself (almost) the whole shard, closing the steal
  // window. Instead, poll until the straggler has leased the shard and
  // reported progress at least once (HELLO + LEASE + PROGRESS = 3
  // requests, i.e. >= 20 of 24 ligands still un-granted), THEN start the
  // idle worker — its lease request must arrive inside the window.
  std::vector<WorkerStats> stats(2);
  std::thread straggler([&] {
    WorkerOptions options;
    options.id = "w0";
    stats[0] = ScreenWorker(coordinator.port(), options).run();
  });
  ASSERT_TRUE(pollUntil([&] { return coordinator.stats().requests >= 3; }))
      << "straggler never reported progress";
  std::thread idle([&] {
    WorkerOptions options;
    options.id = "w1";
    stats[1] = ScreenWorker(coordinator.port(), options).run();
  });
  straggler.join();
  idle.join();

  EXPECT_TRUE(coordinator.waitUntilDone(60.0));
  for (const auto& s : stats) {
    EXPECT_TRUE(s.error.empty()) << s.error;
    EXPECT_GT(s.ligandsScreened, 0u) << "a worker idled through the whole run";
  }
  expectSameRanking(reference, coordinator.report());
  EXPECT_GE(coordinator.stats().shardsStolen, 1u);
  coordinator.stop();
}

TEST_F(ScreenServiceFixture, CheckpointResumeEqualsUninterruptedRun) {
  const metadock::ScreeningReport reference = singleProcess();

  // Phase 1: coordinator "crashes" (halt, journal left behind) after two
  // shard results.
  std::size_t ligandsFirstRun = 0;
  {
    CoordinatorOptions options;
    options.journalPath = journalPath_;
    options.haltAfterShards = 2;
    ScreenCoordinator coordinator(config_, options);
    const auto stats = runWorkers(coordinator.port(), 2, quickRetry());
    EXPECT_FALSE(coordinator.waitUntilDone(60.0));  // halted, not done
    EXPECT_TRUE(coordinator.halted());
    for (const auto& s : stats) ligandsFirstRun += s.ligandsScreened;
    coordinator.stop();
  }
  const auto journaled = ScreenJournal::load(journalPath_);
  ASSERT_TRUE(journaled.exists);
  EXPECT_EQ(journaled.records.size(), 2u);

  // Phase 2: a fresh coordinator resumes from the journal. Completed
  // shards must not be re-screened: the resumed run's workers screen
  // exactly the complement of the journaled ranges.
  {
    CoordinatorOptions options;
    options.journalPath = journalPath_;
    options.resume = true;
    ScreenCoordinator coordinator(config_, options);
    EXPECT_EQ(coordinator.stats().shardsResumed, 2u);
    const auto stats = runWorkers(coordinator.port(), 2);
    EXPECT_TRUE(coordinator.waitUntilDone(60.0));

    std::size_t ligandsSecondRun = 0;
    for (const auto& s : stats) ligandsSecondRun += s.ligandsScreened;
    EXPECT_EQ(ligandsSecondRun, 24u - 2u * config_.shardSize)
        << "resume re-screened journaled shards";

    expectSameRanking(reference, coordinator.report());
    coordinator.stop();
  }
}

TEST_F(ScreenServiceFixture, ResumeRefusesForeignJournal) {
  {
    CoordinatorOptions options;
    options.journalPath = journalPath_;
    options.haltAfterShards = 1;
    ScreenCoordinator coordinator(config_, options);
    runWorkers(coordinator.port(), 1, quickRetry());
    coordinator.waitUntilDone(60.0);
    coordinator.stop();
  }
  // Same journal, different screening seed: the fingerprint must refuse
  // the resume instead of silently mixing two incompatible runs.
  config_.seed += 1;
  CoordinatorOptions options;
  options.journalPath = journalPath_;
  options.resume = true;
  EXPECT_THROW(ScreenCoordinator(config_, options), std::runtime_error);
}

TEST_F(ScreenServiceFixture, TopKReportIsPrefixOfFullRanking) {
  const metadock::ScreeningReport reference = singleProcess();

  config_.topK = 5;
  ScreenCoordinator coordinator(config_);
  runWorkers(coordinator.port(), 2);
  EXPECT_TRUE(coordinator.waitUntilDone(60.0));
  const metadock::ScreeningReport top = coordinator.report();
  ASSERT_EQ(top.ranked.size(), 5u);
  for (std::size_t i = 0; i < top.ranked.size(); ++i) {
    EXPECT_EQ(top.ranked[i].ligandIndex, reference.ranked[i].ligandIndex);
    EXPECT_EQ(top.ranked[i].refinedScore, reference.ranked[i].refinedScore);
  }
  // Aggregates still cover the whole library, not just the top K.
  EXPECT_EQ(top.hitCount, reference.hitCount);
  EXPECT_EQ(top.totalEvaluations, reference.totalEvaluations);
  coordinator.stop();
}

}  // namespace
}  // namespace dqndock::screen
