// HTTP parser hardening matrix (ISSUE satellite): every malformed input
// class must end in a clean 4xx/5xx kError or a kNeedMore that the
// connection layer turns into a clean close — never a throw, crash, or
// hang. Also covers the good-path framing the gateway depends on:
// incremental (byte-at-a-time) feeding, pipelining, and keep-alive
// semantics.

#include <gtest/gtest.h>

#include <string>

#include "src/gateway/http.hpp"

namespace dqndock::gateway {
namespace {

HttpParser::Status feedAll(HttpParser& parser, std::string_view text) {
  return parser.feed(text);
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            HttpParser::Status::kComplete);
  const HttpRequest& req = parser.request();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/v1/healthz");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.header("host"), "x");  // names lowercased
  EXPECT_TRUE(req.body.empty());
  EXPECT_FALSE(req.wantsClose());
}

TEST(HttpParserTest, ParsesPostWithBody) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("POST /v1/models/alpha/dock HTTP/1.1\r\n"
                        "Content-Type: application/json\r\n"
                        "Content-Length: 16\r\n\r\n"
                        "{\"max_steps\":25}"),
            HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().body, "{\"max_steps\":25}");
  EXPECT_EQ(parser.request().path(), "/v1/models/alpha/dock");
}

TEST(HttpParserTest, ByteAtATimeFeedingCompletes) {
  // The incremental contract: no assumption that a request arrives in
  // one recv(). Feed the worst case — one byte per call.
  const std::string raw =
      "POST /v1/models/beta/screen HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
  HttpParser parser;
  HttpParser::Status status = HttpParser::Status::kNeedMore;
  for (char byte : raw) {
    ASSERT_NE(status, HttpParser::Status::kError);
    status = parser.feed(std::string_view(&byte, 1));
  }
  ASSERT_EQ(status, HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().body, "{}");
}

TEST(HttpParserTest, PipelinedRequestsStayBuffered) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET /v1/healthz HTTP/1.1\r\n\r\nGET /v1/models HTTP/1.1\r\n\r\n"),
            HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().target, "/v1/healthz");
  // reset() re-arms on the surplus and completes WITHOUT another feed().
  parser.reset();
  ASSERT_EQ(parser.status(), HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().target, "/v1/models");
  parser.reset();
  EXPECT_EQ(parser.status(), HttpParser::Status::kNeedMore);
  EXPECT_FALSE(parser.midRequest());  // clean close point
}

TEST(HttpParserTest, TruncatedRequestLineIsNeedMoreNotError) {
  // A mid-request hangup shows up as kNeedMore + midRequest(): the
  // connection layer closes without a response (nothing to answer).
  HttpParser parser;
  EXPECT_EQ(parser.feed("POST /v1/mod"), HttpParser::Status::kNeedMore);
  EXPECT_TRUE(parser.midRequest());
}

TEST(HttpParserTest, MidBodyHangupIsDetectable) {
  HttpParser parser;
  EXPECT_EQ(parser.feed("POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"par"),
            HttpParser::Status::kNeedMore);
  EXPECT_TRUE(parser.midRequest());
}

TEST(HttpParserTest, OversizedRequestLineIs431) {
  HttpParser parser;
  const std::string longTarget = "GET /" + std::string(kMaxRequestLineBytes, 'a');
  ASSERT_EQ(parser.feed(longTarget), HttpParser::Status::kError);
  EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParserTest, OversizedHeaderSectionIs431) {
  HttpParser parser;
  std::string raw = "GET / HTTP/1.1\r\n";
  raw += "X-Padding: " + std::string(kMaxHeaderBytes, 'p') + "\r\n\r\n";
  ASSERT_EQ(parser.feed(raw), HttpParser::Status::kError);
  EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParserTest, TooManyHeadersIs431) {
  std::string raw = "GET / HTTP/1.1\r\n";
  for (std::size_t i = 0; i <= kMaxHeaderCount; ++i) {
    raw += "X-H" + std::to_string(i) + ": v\r\n";
  }
  raw += "\r\n";
  HttpParser parser;
  ASSERT_EQ(parser.feed(raw), HttpParser::Status::kError);
  EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParserTest, BadContentLengthVariantsAre400) {
  const char* bad[] = {
      "POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",          // negative
      "POST / HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n",       // trailing junk
      "POST / HTTP/1.1\r\nContent-Length: 0x10\r\n\r\n",        // hex
      "POST / HTTP/1.1\r\nContent-Length:\r\n\r\n",             // empty
      "POST / HTTP/1.1\r\nContent-Length: 1e3\r\n\r\n",         // exponent
      "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n",  // overflow
      "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n",  // smuggling
  };
  for (const char* raw : bad) {
    HttpParser parser;
    ASSERT_EQ(feedAll(parser, raw), HttpParser::Status::kError) << raw;
    EXPECT_EQ(parser.errorStatus(), 400) << raw;
  }
}

TEST(HttpParserTest, DuplicateIdenticalContentLengthTolerated) {
  // Same value twice is odd but unambiguous — not a smuggling vector.
  HttpParser parser;
  ASSERT_EQ(parser.feed("POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok"),
            HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().body, "ok");
}

TEST(HttpParserTest, BodyOverCapIs413) {
  HttpParser parser;
  const std::string raw = "POST / HTTP/1.1\r\nContent-Length: " +
                          std::to_string(kMaxBodyBytes + 1) + "\r\n\r\n";
  ASSERT_EQ(parser.feed(raw), HttpParser::Status::kError);
  EXPECT_EQ(parser.errorStatus(), 413);
}

TEST(HttpParserTest, ChunkedTransferEncodingIs501) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            HttpParser::Status::kError);
  EXPECT_EQ(parser.errorStatus(), 501);
}

TEST(HttpParserTest, UnsupportedVersionIs505) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET / HTTP/2.0\r\n\r\n"), HttpParser::Status::kError);
  EXPECT_EQ(parser.errorStatus(), 505);
}

TEST(HttpParserTest, GarbageRequestLinesAre400) {
  const char* bad[] = {
      "\r\n\r\n",                          // empty request line
      "GET\r\n\r\n",                       // missing target + version
      "GET /\r\n\r\n",                     // missing version
      "GET / HTTP/1.1 extra\r\n\r\n",      // too many words
      "GE T / HTTP/1.1\r\n\r\n",           // space inside method
      "\x16\x03\x01\x02\x00garbage",       // a TLS ClientHello, say
      "G\x7f T / HTTP/1.1\r\n\r\n",        // control char in method
  };
  for (const char* raw : bad) {
    HttpParser parser;
    const auto status = feedAll(parser, raw);
    if (status == HttpParser::Status::kError) {
      EXPECT_GE(parser.errorStatus(), 400) << raw;
      EXPECT_LT(parser.errorStatus(), 600) << raw;
    } else {
      // Binary junk with no newline yet: kNeedMore is acceptable — the
      // caps guarantee it errors out before buffering unbounded garbage.
      EXPECT_EQ(status, HttpParser::Status::kNeedMore) << raw;
    }
  }
}

TEST(HttpParserTest, MalformedHeaderLinesAre400) {
  const char* bad[] = {
      "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
      "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
      "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",        // space in field name
      "GET / HTTP/1.1\r\nBad\x01Name: v\r\n\r\n",     // ctrl in field name
  };
  for (const char* raw : bad) {
    HttpParser parser;
    ASSERT_EQ(feedAll(parser, raw), HttpParser::Status::kError) << raw;
    EXPECT_EQ(parser.errorStatus(), 400) << raw;
  }
}

TEST(HttpParserTest, BareLfLineEndingsTolerated) {
  // Lenient-but-bounded: some minimal clients send \n only.
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET /v1/models HTTP/1.1\nHost: x\n\n"),
            HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().target, "/v1/models");
}

TEST(HttpParserTest, ConnectionCloseSemantics) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            HttpParser::Status::kComplete);
  EXPECT_TRUE(parser.request().wantsClose());

  HttpParser http10;
  ASSERT_EQ(http10.feed("GET / HTTP/1.0\r\n\r\n"), HttpParser::Status::kComplete);
  EXPECT_TRUE(http10.request().wantsClose());  // 1.0 defaults to close

  HttpParser http10keep;
  ASSERT_EQ(http10keep.feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
            HttpParser::Status::kComplete);
  EXPECT_FALSE(http10keep.request().wantsClose());
}

TEST(HttpParserTest, QueryStringSplitsOffPath) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET /v1/stats?verbose=1 HTTP/1.1\r\n\r\n"),
            HttpParser::Status::kComplete);
  EXPECT_EQ(parser.request().path(), "/v1/stats");
  EXPECT_EQ(parser.request().target, "/v1/stats?verbose=1");
}

TEST(HttpResponseTest, BuildsWellFormedResponses) {
  const std::string ok = buildHttpResponse(200, "application/json", "{\"a\":1}", false);
  EXPECT_EQ(ok.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(ok.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(ok.find("Content-Type: application/json\r\n"), std::string::npos);
  EXPECT_EQ(ok.find("Connection: close"), std::string::npos);
  EXPECT_NE(ok.find("\r\n\r\n{\"a\":1}"), std::string::npos);

  const std::string bad = buildHttpResponse(400, "application/json", "{}", true);
  EXPECT_EQ(bad.find("HTTP/1.1 400 Bad Request\r\n"), 0u);
  EXPECT_NE(bad.find("Connection: close\r\n"), std::string::npos);
}

}  // namespace
}  // namespace dqndock::gateway
