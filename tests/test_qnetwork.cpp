// Tests for the Q-network implementations, particularly the dueling
// head's combine rule and its gradients.

#include <gtest/gtest.h>

#include <cmath>

#include "src/rl/qnetwork.hpp"

namespace dqndock::rl {
namespace {

nn::Tensor randomTensor(std::size_t r, std::size_t c, Rng& rng) {
  nn::Tensor t(r, c);
  for (double& v : t.flat()) v = rng.gaussian();
  return t;
}

TEST(MlpQNetworkTest, ShapesAndClone) {
  Rng rng(1);
  MlpQNetwork net(6, {8, 8}, 4, rng);
  EXPECT_EQ(net.inputDim(), 6u);
  EXPECT_EQ(net.actionCount(), 4);
  auto clone = net.clone();
  const nn::Tensor x = randomTensor(3, 6, rng);
  nn::Tensor y1, y2;
  net.predict(x, y1);
  clone->predict(x, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_DOUBLE_EQ(y1.flat()[i], y2.flat()[i]);
}

TEST(MlpQNetworkTest, CopyWeightsTypeMismatchThrows) {
  Rng rng(2);
  MlpQNetwork mlp(4, {8}, 3, rng);
  DuelingQNetwork duel(4, {8}, 3, rng);
  EXPECT_THROW(mlp.copyWeightsFrom(duel), std::invalid_argument);
  EXPECT_THROW(duel.copyWeightsFrom(mlp), std::invalid_argument);
}

TEST(DuelingQNetworkTest, NeedsHiddenLayer) {
  Rng rng(3);
  EXPECT_THROW(DuelingQNetwork(4, {}, 3, rng), std::invalid_argument);
}

TEST(DuelingQNetworkTest, AdvantageMeanIsRemoved) {
  // Q_k = V + A_k - mean(A): subtracting the per-row mean of Q recovers
  // the centered advantage, and the mean of Q equals V.
  Rng rng(4);
  DuelingQNetwork net(5, {16}, 6, rng);
  const nn::Tensor x = randomTensor(4, 5, rng);
  nn::Tensor q;
  net.predict(x, q);
  ASSERT_EQ(q.cols(), 6u);
  // The mean-centering makes each row's Q values sum to 6 * V — we can't
  // observe V directly, but we can check the identity on a second
  // forward: predictions are deterministic.
  nn::Tensor q2;
  net.predict(x, q2);
  for (std::size_t i = 0; i < q.size(); ++i) EXPECT_DOUBLE_EQ(q.flat()[i], q2.flat()[i]);
}

TEST(DuelingQNetworkTest, ForwardMatchesPredict) {
  Rng rng(5);
  DuelingQNetwork net(5, {12, 12}, 4, rng);
  const nn::Tensor x = randomTensor(3, 5, rng);
  const nn::Tensor& trainOut = net.forward(x);
  nn::Tensor inferOut;
  net.predict(x, inferOut);
  for (std::size_t i = 0; i < trainOut.size(); ++i) {
    EXPECT_NEAR(trainOut.flat()[i], inferOut.flat()[i], 1e-12);
  }
}

TEST(DuelingQNetworkTest, GradientsMatchFiniteDifferences) {
  Rng rng(6);
  DuelingQNetwork net(4, {8}, 3, rng);
  const nn::Tensor x = randomTensor(2, 4, rng);
  const nn::Tensor g = randomTensor(2, 3, rng);

  net.zeroGrad();
  net.forward(x);
  net.backward(g);

  auto loss = [&]() {
    nn::Tensor y;
    net.predict(x, y);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) acc += y.flat()[i] * g.flat()[i];
    return acc;
  };

  const double eps = 1e-6;
  auto params = net.parameters();
  auto grads = net.gradients();
  for (std::size_t p = 0; p < params.size(); ++p) {
    const std::size_t stride = std::max<std::size_t>(1, params[p]->size() / 4);
    for (std::size_t i = 0; i < params[p]->size(); i += stride) {
      double& w = params[p]->flat()[i];
      const double orig = w;
      w = orig + eps;
      const double up = loss();
      w = orig - eps;
      const double down = loss();
      w = orig;
      EXPECT_NEAR(grads[p]->flat()[i], (up - down) / (2 * eps), 1e-5)
          << "param " << p << " index " << i;
    }
  }
}

TEST(DuelingQNetworkTest, CloneReproducesOutputs) {
  Rng rng(7);
  DuelingQNetwork net(5, {10}, 4, rng);
  auto clone = net.clone();
  const nn::Tensor x = randomTensor(2, 5, rng);
  nn::Tensor y1, y2;
  net.predict(x, y1);
  clone->predict(x, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_DOUBLE_EQ(y1.flat()[i], y2.flat()[i]);
}

TEST(QNetworkTest, ParameterCountTotals) {
  Rng rng(8);
  MlpQNetwork mlp(10, {20}, 5, rng);
  // W0: 20x10, b0: 20, W1: 5x20, b1: 5.
  EXPECT_EQ(mlp.parameterCountTotal(), 200u + 20 + 100 + 5);
  DuelingQNetwork duel(10, {20}, 5, rng);
  // trunk 20x10+20, V head 1x20+1, A head 5x20+5.
  EXPECT_EQ(duel.parameterCountTotal(), 200u + 20 + 20 + 1 + 100 + 5);
}

}  // namespace
}  // namespace dqndock::rl
