// Tests for the Tripos MOL2 reader/writer.

#include <gtest/gtest.h>

#include <sstream>

#include "src/chem/mol2_io.hpp"
#include "src/chem/synthetic.hpp"

namespace dqndock::chem {
namespace {

TEST(Mol2IoTest, ParsesMinimalFile) {
  const std::string mol2 =
      "@<TRIPOS>MOLECULE\n"
      "ethanol\n"
      " 3 2 0 0 0\n"
      "SMALL\nUSER_CHARGES\n"
      "@<TRIPOS>ATOM\n"
      "  1 C1  0.0 0.0 0.0 C.3 1 LIG -0.05\n"
      "  2 C2  1.5 0.0 0.0 C.3 1 LIG -0.02\n"
      "  3 O1  2.2 1.1 0.0 O.3 1 LIG -0.40\n"
      "@<TRIPOS>BOND\n"
      " 1 1 2 1\n"
      " 2 2 3 1\n";
  std::istringstream in(mol2);
  const Molecule m = readMol2(in);
  EXPECT_EQ(m.name(), "ethanol");
  ASSERT_EQ(m.atomCount(), 3u);
  EXPECT_EQ(m.bondCount(), 2u);
  EXPECT_EQ(m.element(0), Element::C);
  EXPECT_EQ(m.element(2), Element::O);
  EXPECT_DOUBLE_EQ(m.charge(2), -0.40);
  EXPECT_DOUBLE_EQ(m.position(1).x, 1.5);
}

TEST(Mol2IoTest, SybylTypesParsed) {
  const std::string mol2 =
      "@<TRIPOS>MOLECULE\nx\n 3 0 0 0 0\nSMALL\nNO_CHARGES\n"
      "@<TRIPOS>ATOM\n"
      "  1 N1 0 0 0 N.ar\n"
      "  2 X1 1 0 0 O.co2\n"
      "  3 CL 2 0 0 Cl\n";
  std::istringstream in(mol2);
  const Molecule m = readMol2(in);
  EXPECT_EQ(m.element(0), Element::N);
  EXPECT_EQ(m.element(1), Element::O);
  EXPECT_EQ(m.element(2), Element::Cl);
}

TEST(Mol2IoTest, CommentsAndBlankLinesIgnored) {
  const std::string mol2 =
      "# a comment\n\n@<TRIPOS>MOLECULE\nx\n 1 0 0 0 0\nSMALL\nNO_CHARGES\n"
      "@<TRIPOS>ATOM\n"
      "# atom comment\n"
      "  1 C1 0 0 0 C.3\n";
  std::istringstream in(mol2);
  EXPECT_EQ(readMol2(in).atomCount(), 1u);
}

TEST(Mol2IoTest, MalformedAtomThrows) {
  const std::string mol2 =
      "@<TRIPOS>MOLECULE\nx\n 1 0 0 0 0\nSMALL\nNO_CHARGES\n"
      "@<TRIPOS>ATOM\n"
      "  1 C1 zero 0 0 C.3\n";
  std::istringstream in(mol2);
  EXPECT_THROW(readMol2(in), std::runtime_error);
}

TEST(Mol2IoTest, BondIndexOutOfRangeThrows) {
  const std::string mol2 =
      "@<TRIPOS>MOLECULE\nx\n 1 1 0 0 0\nSMALL\nNO_CHARGES\n"
      "@<TRIPOS>ATOM\n  1 C1 0 0 0 C.3\n"
      "@<TRIPOS>BOND\n 1 1 5 1\n";
  std::istringstream in(mol2);
  EXPECT_THROW(readMol2(in), std::runtime_error);
}

TEST(Mol2IoTest, OnlyFirstMoleculeRead) {
  const std::string mol2 =
      "@<TRIPOS>MOLECULE\nfirst\n 1 0 0 0 0\nSMALL\nNO_CHARGES\n"
      "@<TRIPOS>ATOM\n  1 C1 0 0 0 C.3\n"
      "@<TRIPOS>MOLECULE\nsecond\n 1 0 0 0 0\nSMALL\nNO_CHARGES\n"
      "@<TRIPOS>ATOM\n  1 O1 9 9 9 O.3\n";
  std::istringstream in(mol2);
  const Molecule m = readMol2(in);
  EXPECT_EQ(m.name(), "first");
  EXPECT_EQ(m.atomCount(), 1u);
  EXPECT_EQ(m.element(0), Element::C);
}

TEST(Mol2IoTest, RoundTripSyntheticLigand) {
  Rng rng(5);
  const Molecule original = buildLigand(25, 3, rng);
  std::stringstream ss;
  writeMol2(ss, original);
  const Molecule parsed = readMol2(ss);
  ASSERT_EQ(parsed.atomCount(), original.atomCount());
  ASSERT_EQ(parsed.bondCount(), original.bondCount());
  for (std::size_t i = 0; i < original.atomCount(); ++i) {
    EXPECT_EQ(parsed.element(i), original.element(i));
    EXPECT_NEAR(distance(parsed.position(i), original.position(i)), 0.0, 1e-5);
    EXPECT_NEAR(parsed.charge(i), original.charge(i), 1e-5);
  }
  for (std::size_t i = 0; i < original.bondCount(); ++i) {
    EXPECT_EQ(parsed.bonds()[i].a, original.bonds()[i].a);
    EXPECT_EQ(parsed.bonds()[i].b, original.bonds()[i].b);
  }
}

TEST(Mol2IoTest, MissingFileThrows) {
  EXPECT_THROW(readMol2File("/nonexistent/file.mol2"), std::runtime_error);
}

}  // namespace
}  // namespace dqndock::chem
