// Tests for the precomputed affinity grids: interpolation exactness,
// agreement with the direct sum away from clash regions, and clamping.

#include <gtest/gtest.h>

#include <cmath>

#include "src/chem/synthetic.hpp"
#include "src/metadock/grid_potential.hpp"

namespace dqndock::metadock {
namespace {

TEST(ScalarGridTest, ConstructionValidation) {
  EXPECT_THROW(ScalarGrid(Vec3{}, 0.0, 4, 4, 4), std::invalid_argument);
  EXPECT_THROW(ScalarGrid(Vec3{}, 1.0, 1, 4, 4), std::invalid_argument);
}

TEST(ScalarGridTest, ExactAtGridNodes) {
  ScalarGrid g(Vec3{1, 2, 3}, 0.5, 4, 4, 4);
  g.at(2, 1, 3) = 7.5;
  EXPECT_NEAR(g.sample(Vec3{1 + 2 * 0.5, 2 + 1 * 0.5, 3 + 3 * 0.5 - 1e-12}), 7.5, 1e-6);
}

TEST(ScalarGridTest, TrilinearReproducesLinearField) {
  // Fill with f(x,y,z) = 2x - y + 3z + 1; trilinear interpolation must be
  // exact for affine fields.
  ScalarGrid g(Vec3{0, 0, 0}, 1.0, 5, 5, 5);
  for (int z = 0; z < 5; ++z)
    for (int y = 0; y < 5; ++y)
      for (int x = 0; x < 5; ++x) g.at(x, y, z) = 2.0 * x - y + 3.0 * z + 1.0;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Vec3 p{rng.uniform(0, 4), rng.uniform(0, 4), rng.uniform(0, 4)};
    EXPECT_NEAR(g.sample(p), 2 * p.x - p.y + 3 * p.z + 1, 1e-10);
  }
}

TEST(ScalarGridTest, OutOfBoxReturnsFarFieldZero) {
  ScalarGrid g(Vec3{0, 0, 0}, 1.0, 3, 3, 3);
  for (int z = 0; z < 3; ++z)
    for (int y = 0; y < 3; ++y)
      for (int x = 0; x < 3; ++x) g.at(x, y, z) = 5.0;
  EXPECT_TRUE(g.contains(Vec3{1, 1, 1}));
  EXPECT_FALSE(g.contains(Vec3{100, 1, 1}));
  EXPECT_DOUBLE_EQ(g.sample(Vec3{-100, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(g.sample(Vec3{100, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(g.sample(Vec3{1, 1, 1}), 5.0);
}

class GridPotentialFixture : public ::testing::Test {
 protected:
  GridPotentialFixture()
      : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())),
        receptor_(scenario_.receptor, 12.0),
        ligand_(scenario_.ligand) {}

  chem::Scenario scenario_;
  ReceptorModel receptor_;
  LigandModel ligand_;
};

TEST_F(GridPotentialFixture, BuildsAndReportsMemory) {
  GridPotentialOptions opts;
  opts.spacing = 1.0;
  GridPotential grid(receptor_, opts);
  EXPECT_GT(grid.memoryBytes(), 0u);
  EXPECT_GT(grid.electrostaticMap().valueCount(), 0u);
}

TEST_F(GridPotentialFixture, ApproximatesDirectScoreAwayFromClashes) {
  GridPotentialOptions opts;
  opts.spacing = 0.8;
  GridPotential grid(receptor_, opts);

  ScoringOptions exactOpts;
  exactOpts.cutoff = opts.cutoff;
  exactOpts.useGrid = true;
  ScoringFunction exact(receptor_, ligand_, exactOpts);

  // Probe poses along the approach axis, outside the steric-clash zone.
  std::vector<Vec3> positions;
  for (double z = 18.0; z <= 30.0; z += 2.0) {
    Pose pose(ligand_.torsionCount());
    pose.translation = Vec3{0, 0, z};
    ligand_.applyPose(pose, positions);
    const double exactScore = exact.score(positions);
    const double gridScore = grid.score(ligand_, positions);
    // Interpolation error is bounded; the band is loose near the surface
    // where the Lennard-Jones field is steep relative to the spacing.
    EXPECT_NEAR(gridScore, exactScore, 4.0 + 0.35 * std::fabs(exactScore))
        << "z = " << z;
  }
}

TEST_F(GridPotentialFixture, ParallelFillMatchesSerial) {
  ThreadPool pool(4);
  GridPotentialOptions serial;
  serial.spacing = 1.2;
  GridPotentialOptions parallel = serial;
  parallel.pool = &pool;
  GridPotential a(receptor_, serial);
  GridPotential b(receptor_, parallel);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Vec3 p{rng.uniform(-15, 15), rng.uniform(-15, 15), rng.uniform(-15, 15)};
    EXPECT_DOUBLE_EQ(a.atomEnergy(chem::Element::C, -0.05, p),
                     b.atomEnergy(chem::Element::C, -0.05, p));
  }
}

TEST_F(GridPotentialFixture, EnergiesClampedInsideClashes) {
  GridPotentialOptions opts;
  opts.spacing = 1.0;
  opts.energyClamp = 1e6;
  GridPotential grid(receptor_, opts);
  // At a receptor atom position the raw LJ energy would be astronomical;
  // the map stores the clamp instead.
  const Vec3 clashPoint = receptor_.positions()[0];
  const double e = grid.elementMap(chem::Element::C).sample(clashPoint);
  EXPECT_LE(e, 1e6 + 1e-6);
  EXPECT_GT(e, 1e3);  // still clearly terrible
}

TEST_F(GridPotentialFixture, UnknownElementFallsBackToCarbon) {
  GridPotentialOptions opts;
  opts.spacing = 1.5;
  GridPotential grid(receptor_, opts);
  const Vec3 p{0, 0, 20};
  EXPECT_DOUBLE_EQ(grid.elementMap(chem::Element::I).sample(p),
                   grid.elementMap(chem::Element::C).sample(p));
}

TEST_F(GridPotentialFixture, ScoreCountMismatchThrows) {
  GridPotentialOptions opts;
  opts.spacing = 1.5;
  GridPotential grid(receptor_, opts);
  std::vector<Vec3> wrong(2);
  EXPECT_THROW(grid.score(ligand_, wrong), std::invalid_argument);
}

TEST_F(GridPotentialFixture, GridScoringFunctionRanksLikeExact) {
  // The grid approximation must preserve the qualitative ranking: pocket
  // pose beats far pose beats deep-clash pose.
  GridPotentialOptions opts;
  opts.spacing = 0.5;
  GridPotential grid(receptor_, opts);
  GridScoringFunction gsf(grid, ligand_);
  std::vector<Vec3> scratch;

  Pose far(ligand_.torsionCount());
  far.translation = Vec3{0, 0, 40};
  Pose pocket(ligand_.torsionCount());
  pocket.translation = scenario_.pocketCenter;
  Pose clash(ligand_.torsionCount());
  clash.translation = Vec3{0, 0, 0};  // receptor core

  const double sFar = gsf.scorePose(far, scratch);
  const double sPocket = gsf.scorePose(pocket, scratch);
  const double sClash = gsf.scorePose(clash, scratch);
  EXPECT_GT(sPocket, sFar);
  EXPECT_GT(sFar, sClash);
}

}  // namespace
}  // namespace dqndock::metadock
