// Tests for the synthetic 2BSM-surrogate scenario builder.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/chem/synthetic.hpp"
#include "src/chem/topology.hpp"

namespace dqndock::chem {
namespace {

TEST(SyntheticLigandTest, ExactAtomAndBondCounts) {
  Rng rng(1);
  const Molecule lig = buildLigand(45, 6, rng);
  EXPECT_EQ(lig.atomCount(), 45u);
  EXPECT_EQ(lig.bondCount(), 44u);  // tree topology
}

TEST(SyntheticLigandTest, RequestedRotatableBonds) {
  Rng rng(2);
  Molecule lig = buildLigand(45, 6, rng);
  int rotatable = 0;
  for (const auto& b : lig.bonds()) rotatable += b.rotatable;
  EXPECT_EQ(rotatable, 6);
}

TEST(SyntheticLigandTest, CenteredOnCentroid) {
  Rng rng(3);
  const Molecule lig = buildLigand(30, 3, rng);
  EXPECT_NEAR(lig.centroid().norm(), 0.0, 1e-9);
}

TEST(SyntheticLigandTest, TreeIsConnected) {
  Rng rng(4);
  const Molecule lig = buildLigand(45, 6, rng);
  Topology topo(lig);
  int count = 0;
  topo.connectedComponents(&count);
  EXPECT_EQ(count, 1);
}

TEST(SyntheticLigandTest, NoAtomOverlap) {
  Rng rng(5);
  const Molecule lig = buildLigand(45, 6, rng);
  for (std::size_t i = 0; i < lig.atomCount(); ++i) {
    for (std::size_t j = i + 1; j < lig.atomCount(); ++j) {
      EXPECT_GT(distance(lig.position(i), lig.position(j)), 0.9);
    }
  }
}

TEST(SyntheticLigandTest, ZeroAtomsThrows) {
  Rng rng(6);
  EXPECT_THROW(buildLigand(0, 0, rng), std::invalid_argument);
}

TEST(SyntheticLigandTest, RotatableCappedByEligibility) {
  Rng rng(7);
  // 2 atoms -> a single terminal bond -> 0 rotatable, request 5.
  Molecule lig = buildLigand(2, 5, rng);
  int rotatable = 0;
  for (const auto& b : lig.bonds()) rotatable += b.rotatable;
  EXPECT_EQ(rotatable, 0);
}

TEST(LigandLibraryTest, CountAndSizeRange) {
  Rng rng(8);
  const auto lib = buildLigandLibrary(10, 10, 20, rng);
  ASSERT_EQ(lib.size(), 10u);
  for (const auto& l : lib) {
    EXPECT_GE(l.atomCount(), 10u);
    EXPECT_LE(l.atomCount(), 20u);
  }
}

TEST(LigandLibraryTest, BadRangeThrows) {
  Rng rng(9);
  EXPECT_THROW(buildLigandLibrary(2, 10, 5, rng), std::invalid_argument);
  EXPECT_THROW(buildLigandLibrary(2, 0, 5, rng), std::invalid_argument);
}

class ScenarioTest : public ::testing::Test {
 protected:
  static const Scenario& paper() {
    static const Scenario sc = buildScenario(ScenarioSpec::paper2bsm());
    return sc;
  }
};

TEST_F(ScenarioTest, PaperDimensionsExact) {
  const Scenario& sc = paper();
  EXPECT_EQ(sc.receptor.atomCount(), 3264u);   // paper: 2BSM receptor
  EXPECT_EQ(sc.ligand.atomCount(), 45u);       // paper: hidden size 45x3
  EXPECT_EQ(sc.receptor.bondCount(), 2180u);   // -> state 16,599 reals
  EXPECT_EQ(sc.ligand.bondCount(), 44u);
  int rotatable = 0;
  for (const auto& b : sc.ligand.bonds()) rotatable += b.rotatable;
  EXPECT_EQ(rotatable, 6);  // paper Section 5: ligand folds in 6 bonds
  const std::size_t stateDim =
      3 * (sc.receptor.atomCount() + sc.ligand.atomCount() + sc.receptor.bondCount() +
           sc.ligand.bondCount());
  EXPECT_EQ(stateDim, 16599u);
}

TEST_F(ScenarioTest, DeterministicInSeed) {
  const Scenario a = buildScenario(ScenarioSpec::tiny());
  const Scenario b = buildScenario(ScenarioSpec::tiny());
  ASSERT_EQ(a.receptor.atomCount(), b.receptor.atomCount());
  for (std::size_t i = 0; i < a.receptor.atomCount(); ++i) {
    EXPECT_EQ(a.receptor.position(i), b.receptor.position(i));
  }
  for (std::size_t i = 0; i < a.ligand.atomCount(); ++i) {
    EXPECT_EQ(a.ligand.position(i), b.ligand.position(i));
  }
}

TEST_F(ScenarioTest, DifferentSeedsDiffer) {
  ScenarioSpec s1 = ScenarioSpec::tiny();
  ScenarioSpec s2 = ScenarioSpec::tiny();
  s2.seed = s1.seed + 1;
  const Scenario a = buildScenario(s1);
  const Scenario b = buildScenario(s2);
  bool anyDiff = false;
  for (std::size_t i = 0; i < a.receptor.atomCount() && !anyDiff; ++i) {
    anyDiff = !(a.receptor.position(i) == b.receptor.position(i));
  }
  EXPECT_TRUE(anyDiff);
}

TEST_F(ScenarioTest, PocketIsCarvedOut) {
  const Scenario& sc = paper();
  // No receptor atom should sit right at the pocket center.
  double minDist = 1e9;
  for (const auto& p : sc.receptor.positions()) {
    minDist = std::min(minDist, distance(p, sc.pocketCenter));
  }
  EXPECT_GT(minDist, 2.0);
}

TEST_F(ScenarioTest, InitialPoseOutsideReceptor) {
  const Scenario& sc = paper();
  const auto [lo, hi] = sc.receptor.boundingBox();
  const double receptorRadius = 0.5 * (hi - lo).norm();
  EXPECT_GT(sc.initialComDistance, receptorRadius);
}

TEST_F(ScenarioTest, CrystalPoseInsidePocketRegion) {
  const Scenario& sc = paper();
  Vec3 centroid;
  for (const auto& p : sc.crystalPositions) centroid += p;
  centroid /= static_cast<double>(sc.crystalPositions.size());
  EXPECT_NEAR(distance(centroid, sc.pocketCenter), 0.0, 1e-9);
}

TEST_F(ScenarioTest, MoleculesValidate) {
  EXPECT_NO_THROW(paper().receptor.validate());
  EXPECT_NO_THROW(paper().ligand.validate());
}

TEST_F(ScenarioTest, TinyPresetSmall) {
  const Scenario sc = buildScenario(ScenarioSpec::tiny());
  EXPECT_EQ(sc.receptor.atomCount(), 300u);
  EXPECT_EQ(sc.ligand.atomCount(), 12u);
  EXPECT_EQ(sc.receptor.bondCount(), 150u);
}

}  // namespace
}  // namespace dqndock::chem
