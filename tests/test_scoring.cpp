// Tests for Equation 1's scoring function: pairwise terms, execution-path
// equivalence (brute / grid / parallel), and physical invariances.

#include <gtest/gtest.h>

#include <cmath>

#include "src/chem/synthetic.hpp"
#include "src/metadock/scoring.hpp"

namespace dqndock::metadock {
namespace {

using chem::Element;
using chem::ForceField;

TEST(PairTermsTest, ElectrostaticSignsAndDecay) {
  // Like charges repel (positive energy), opposite attract (negative).
  EXPECT_GT(electrostaticEnergy(0.5, 0.5, 3.0), 0.0);
  EXPECT_LT(electrostaticEnergy(0.5, -0.5, 3.0), 0.0);
  // 1/r decay.
  EXPECT_NEAR(electrostaticEnergy(1, 1, 2.0), electrostaticEnergy(1, 1, 4.0) * 2.0, 1e-9);
  // Coulomb constant at r = 1.
  EXPECT_NEAR(electrostaticEnergy(1, 1, 1.0), chem::kCoulomb, 1e-9);
}

TEST(PairTermsTest, ElectrostaticClampedAtContact) {
  // Distances below the floor clamp rather than diverge to infinity.
  const double atFloor = electrostaticEnergy(1, 1, kMinPairDistance);
  EXPECT_DOUBLE_EQ(electrostaticEnergy(1, 1, 0.0), atFloor);
  EXPECT_TRUE(std::isfinite(atFloor));
}

TEST(PairTermsTest, LennardJonesWellShape) {
  const double sigma = 3.4, eps = 0.1;
  // Zero crossing at r = sigma.
  EXPECT_NEAR(lennardJonesEnergy(eps, sigma, sigma), 0.0, 1e-12);
  // Minimum at r = 2^(1/6) sigma with depth -eps.
  const double rmin = std::pow(2.0, 1.0 / 6.0) * sigma;
  EXPECT_NEAR(lennardJonesEnergy(eps, sigma, rmin), -eps, 1e-12);
  EXPECT_GT(lennardJonesEnergy(eps, sigma, rmin * 0.99), -eps);
  EXPECT_GT(lennardJonesEnergy(eps, sigma, rmin * 1.01), -eps);
  // Strong repulsion at overlap, vanishing tail.
  EXPECT_GT(lennardJonesEnergy(eps, sigma, 1.0), 1e3);
  EXPECT_NEAR(lennardJonesEnergy(eps, sigma, 30.0), 0.0, 1e-6);
}

TEST(PairTermsTest, LennardJonesAstronomicalAtContact) {
  // The paper quotes scores like -4.5e+21 on steric collision; the energy
  // at the clamp floor must be of that magnitude.
  EXPECT_GT(lennardJonesEnergy(0.1, 3.4, 0.0), 1e18);
}

TEST(PairTermsTest, HBondAngularGating) {
  const auto hb = ForceField::standard().hbond();
  const double eps = 0.1, sigma = 3.0, r = 1.9;
  // Perfect alignment: the full 12-10 well (-0.5 kcal/mol).
  EXPECT_NEAR(hbondEnergy(hb, eps, sigma, r, 1.0), -0.5, 1e-9);
  // Orthogonal geometry: falls back to plain LJ.
  EXPECT_NEAR(hbondEnergy(hb, eps, sigma, r, 0.0), lennardJonesEnergy(eps, sigma, r), 1e-12);
  // Anti-aligned clamps to the orthogonal case (no negative-cos wells).
  EXPECT_NEAR(hbondEnergy(hb, eps, sigma, r, -0.7), hbondEnergy(hb, eps, sigma, r, 0.0), 1e-12);
  // Intermediate angles interpolate monotonically at the well distance.
  EXPECT_LT(hbondEnergy(hb, eps, sigma, r, 1.0), hbondEnergy(hb, eps, sigma, r, 0.5));
}

class ScoringFixture : public ::testing::Test {
 protected:
  ScoringFixture() : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())) {}

  chem::Scenario scenario_;
};

TEST_F(ScoringFixture, GridPrunedMatchesBruteForceWithCutoff) {
  const double cutoff = 8.0;
  ReceptorModel receptor(scenario_.receptor, cutoff);
  LigandModel ligand(scenario_.ligand);

  ScoringOptions brute;
  brute.cutoff = cutoff;
  brute.useGrid = false;
  ScoringOptions grid;
  grid.cutoff = cutoff;
  grid.useGrid = true;

  ScoringFunction sfBrute(receptor, ligand, brute);
  ScoringFunction sfGrid(receptor, ligand, grid);

  // Compare on several poses, including ones inside the receptor.
  Rng rng(3);
  std::vector<Vec3> scratch;
  for (int i = 0; i < 20; ++i) {
    const Pose pose = randomPose(receptor.centerOfMass(), 15.0, ligand.torsionCount(), rng);
    const double a = sfBrute.scorePose(pose, scratch);
    const double b = sfGrid.scorePose(pose, scratch);
    EXPECT_NEAR(a, b, std::max(1e-9, std::fabs(a) * 1e-12)) << "pose " << i;
  }
}

TEST_F(ScoringFixture, ParallelMatchesSerial) {
  ThreadPool pool(4);
  ReceptorModel receptor(scenario_.receptor, 0.0);
  LigandModel ligand(scenario_.ligand);

  ScoringOptions serial;
  serial.cutoff = 0.0;
  serial.useGrid = false;
  ScoringOptions parallel = serial;
  parallel.pool = &pool;

  ScoringFunction sfSerial(receptor, ligand, serial);
  ScoringFunction sfParallel(receptor, ligand, parallel);

  Rng rng(4);
  std::vector<Vec3> scratch;
  for (int i = 0; i < 10; ++i) {
    const Pose pose = randomPose(receptor.centerOfMass(), 20.0, ligand.torsionCount(), rng);
    const double a = sfSerial.scorePose(pose, scratch);
    const double b = sfParallel.scorePose(pose, scratch);
    EXPECT_NEAR(a, b, std::max(1e-9, std::fabs(a) * 1e-9));
  }
}

TEST_F(ScoringFixture, TranslationOfWholeComplexIsInvariant) {
  // Scoring must depend only on relative geometry: shift receptor and
  // ligand together and the energy stays identical (no cutoff, so the
  // comparison is exact).
  const Vec3 shift{13.7, -8.1, 4.4};
  chem::Molecule shiftedReceptor = scenario_.receptor;
  shiftedReceptor.translate(shift);
  chem::Molecule shiftedLigand = scenario_.ligand;
  shiftedLigand.translate(shift);

  ScoringOptions opts;
  opts.cutoff = 0.0;
  opts.useGrid = false;

  ReceptorModel r1(scenario_.receptor, 0.0);
  LigandModel l1(scenario_.ligand);
  ScoringFunction s1(r1, l1, opts);

  ReceptorModel r2(shiftedReceptor, 0.0);
  LigandModel l2(shiftedLigand);
  ScoringFunction s2(r2, l2, opts);

  const double a = s1.scorePose(l1.restPose());
  const double b = s2.scorePose(l2.restPose());
  EXPECT_NEAR(a, b, std::max(1e-9, std::fabs(a) * 1e-10));
}

TEST_F(ScoringFixture, EnergyDecompositionSumsToTotal) {
  ReceptorModel receptor(scenario_.receptor, 0.0);
  LigandModel ligand(scenario_.ligand);
  ScoringOptions opts;
  opts.cutoff = 0.0;
  opts.useGrid = false;
  ScoringFunction sf(receptor, ligand, opts);

  std::vector<Vec3> pos;
  ligand.applyPose(ligand.restPose(), pos);
  const ScoreTerms terms = sf.energy(pos);
  EXPECT_DOUBLE_EQ(terms.total(), terms.electrostatic + terms.vdw + terms.hbond);
  EXPECT_DOUBLE_EQ(sf.score(pos), -terms.total());
}

TEST_F(ScoringFixture, ClashProducesHugeNegativeScore) {
  ReceptorModel receptor(scenario_.receptor, 12.0);
  LigandModel ligand(scenario_.ligand);
  ScoringFunction sf(receptor, ligand, {});
  // Park the ligand on top of a receptor atom.
  Pose clash(ligand.torsionCount());
  clash.translation = receptor.positions()[0];
  EXPECT_LT(sf.scorePose(clash), -1e5);
}

TEST_F(ScoringFixture, CrystalBeatsInitialAndRandomFarPose) {
  ReceptorModel receptor(scenario_.receptor, 12.0);
  LigandModel ligand(scenario_.ligand);
  ScoringFunction sf(receptor, ligand, {});
  const double crystal = sf.score(scenario_.crystalPositions);
  const double initial = sf.scorePose(ligand.restPose());
  EXPECT_GT(crystal, initial);
  EXPECT_GT(crystal, 0.0);
}

TEST_F(ScoringFixture, MismatchedPositionCountThrows) {
  ReceptorModel receptor(scenario_.receptor, 12.0);
  LigandModel ligand(scenario_.ligand);
  ScoringFunction sf(receptor, ligand, {});
  std::vector<Vec3> wrong(3);
  EXPECT_THROW(sf.energy(wrong), std::invalid_argument);
}

TEST_F(ScoringFixture, GridRequestWithoutGridThrows) {
  ReceptorModel receptor(scenario_.receptor, 0.0);  // no grid built
  LigandModel ligand(scenario_.ligand);
  ScoringOptions opts;
  opts.useGrid = true;
  opts.cutoff = 8.0;
  EXPECT_THROW(ScoringFunction(receptor, ligand, opts), std::invalid_argument);
}

TEST_F(ScoringFixture, GridCellSmallerThanCutoffThrows) {
  ReceptorModel receptor(scenario_.receptor, 4.0);
  LigandModel ligand(scenario_.ligand);
  ScoringOptions opts;
  opts.useGrid = true;
  opts.cutoff = 8.0;  // cell (4.0) < cutoff: 27-cell coverage would break
  EXPECT_THROW(ScoringFunction(receptor, ligand, opts), std::invalid_argument);
}

TEST_F(ScoringFixture, LargerCutoffCapturesMoreEnergyMagnitude) {
  ReceptorModel receptor(scenario_.receptor, 0.0);
  LigandModel ligand(scenario_.ligand);
  ScoringOptions small;
  small.cutoff = 4.0;
  small.useGrid = false;
  ScoringOptions none;
  none.cutoff = 0.0;
  none.useGrid = false;
  ScoringFunction sfSmall(receptor, ligand, small);
  ScoringFunction sfAll(receptor, ligand, none);
  // With no cutoff every pair contributes; a tiny cutoff sees only a
  // subset, so the two must differ at a pose near the surface.
  Pose pose(ligand.torsionCount());
  pose.translation = scenario_.pocketCenter;
  const double sSmall = sfSmall.scorePose(pose);
  const double sAll = sfAll.scorePose(pose);
  EXPECT_NE(sSmall, sAll);
}

}  // namespace
}  // namespace dqndock::metadock
