// Unit tests for the distributed-screening building blocks: the hit
// codec, the top-K merger, the checkpoint journal, the job-config
// protocol, and the streaming library reader.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/chem/library_io.hpp"
#include "src/chem/synthetic.hpp"
#include "src/screen/hit_codec.hpp"
#include "src/screen/journal.hpp"
#include "src/screen/protocol.hpp"
#include "src/screen/topk.hpp"
#include "src/serve/wire.hpp"

namespace dqndock::screen {
namespace {

metadock::ScreeningHit sampleHit(std::size_t index, double score) {
  metadock::ScreeningHit hit;
  hit.ligandName = "lig-" + std::to_string(index);
  hit.ligandIndex = index;
  hit.atoms = 10 + index;
  hit.bestScore = score - 0.25;
  hit.refinedScore = score;
  hit.bindingModes = 2;
  hit.evaluations = 400;
  hit.bestPose.translation = {0.1 * index, -2.5, 3.75};
  hit.bestPose.orientation = Quat{0.5, 0.5, -0.5, 0.5};
  hit.bestPose.torsions = {0.25, -1.125};
  return hit;
}

// --- hit codec --------------------------------------------------------------

TEST(HitCodec, RoundTripIsBitExact) {
  metadock::ScreeningHit hit = sampleHit(42, 123.456);
  // Awkward doubles: %.17g must reverse them exactly.
  hit.refinedScore = 0.1 + 0.2;
  hit.bestScore = -1.0 / 3.0;
  hit.bestPose.translation.x = 1e-300;
  hit.bestPose.torsions = {3.141592653589793, -2.2250738585072014e-308};

  const metadock::ScreeningHit back = decodeHit(encodeHit(hit));
  EXPECT_EQ(back.ligandName, hit.ligandName);
  EXPECT_EQ(back.ligandIndex, hit.ligandIndex);
  EXPECT_EQ(back.atoms, hit.atoms);
  EXPECT_EQ(back.bestScore, hit.bestScore);        // bit-exact, not near
  EXPECT_EQ(back.refinedScore, hit.refinedScore);
  EXPECT_EQ(back.bindingModes, hit.bindingModes);
  EXPECT_EQ(back.evaluations, hit.evaluations);
  EXPECT_EQ(back.bestPose.translation.x, hit.bestPose.translation.x);
  EXPECT_EQ(back.bestPose.orientation.w, hit.bestPose.orientation.w);
  ASSERT_EQ(back.bestPose.torsions.size(), hit.bestPose.torsions.size());
  EXPECT_EQ(back.bestPose.torsions[0], hit.bestPose.torsions[0]);
  EXPECT_EQ(back.bestPose.torsions[1], hit.bestPose.torsions[1]);
}

TEST(HitCodec, EscapesHostileLigandNames) {
  metadock::ScreeningHit hit = sampleHit(7, 1.0);
  hit.ligandName = "a b,c=d%e\nf\tg";
  const std::string token = encodeHit(hit);
  // The token must stay single-token: no raw separators survive.
  EXPECT_EQ(token.find(' '), std::string::npos);
  EXPECT_EQ(token.find('\n'), std::string::npos);
  EXPECT_EQ(token.find('='), std::string::npos);
  EXPECT_EQ(decodeHit(token).ligandName, hit.ligandName);
}

TEST(HitCodec, RejectsMalformedTokens) {
  EXPECT_THROW(decodeHit(""), std::invalid_argument);
  EXPECT_THROW(decodeHit("1,2,3"), std::invalid_argument);
  EXPECT_THROW(decodeHit("x,name,10,1,1,1,1,0,0,0,1,0,0,0,0"), std::invalid_argument);
  // Torsion count promises more values than the token carries.
  const std::string truncated = "1,name,10,1.0,1.0,1,400,0,0,0,1,0,0,0,3,0.5";
  EXPECT_THROW(decodeHit(truncated), std::invalid_argument);
}

// --- top-K merger -----------------------------------------------------------

TEST(TopKMerger, KeepsBestKInStableOrder) {
  TopKMerger merger(3);
  merger.add(sampleHit(0, 1.0));
  merger.add(sampleHit(1, 5.0));
  merger.add(sampleHit(2, 3.0));
  merger.add(sampleHit(3, 4.0));
  merger.add(sampleHit(4, 2.0));
  const auto top = merger.sorted();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].ligandIndex, 1u);
  EXPECT_EQ(top[1].ligandIndex, 3u);
  EXPECT_EQ(top[2].ligandIndex, 2u);
}

TEST(TopKMerger, DuplicateDeliveriesAreIdempotent) {
  TopKMerger merger(8);
  merger.add(sampleHit(1, 5.0));
  merger.add(sampleHit(1, 5.0));  // re-delivered shard
  merger.add(sampleHit(2, 3.0));
  EXPECT_EQ(merger.size(), 2u);
}

TEST(TopKMerger, PrunedLigandCannotReenter) {
  TopKMerger merger(1);
  merger.add(sampleHit(5, 1.0));
  merger.add(sampleHit(6, 9.0));  // prunes ligand 5
  merger.add(sampleHit(5, 1.0));  // duplicate of a pruned hit
  const auto top = merger.sorted();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].ligandIndex, 6u);
}

TEST(TopKMerger, GroupingInvariant) {
  // One merger fed everything vs. per-shard mergers merged afterwards.
  std::vector<metadock::ScreeningHit> all;
  for (std::size_t i = 0; i < 20; ++i) {
    all.push_back(sampleHit(i, static_cast<double>((i * 7) % 13)));
  }
  TopKMerger direct(5);
  direct.add(all);

  TopKMerger shard1(5), shard2(5), combined(5);
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i < 9 ? shard1 : shard2).add(all[i]);
  }
  combined.add(shard2.sorted());  // reversed arrival order on purpose
  combined.add(shard1.sorted());

  const auto a = direct.sorted();
  const auto b = combined.sorted();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ligandIndex, b[i].ligandIndex);
    EXPECT_EQ(a[i].refinedScore, b[i].refinedScore);
  }
}

// --- journal ----------------------------------------------------------------

class JournalFixture : public ::testing::Test {
 protected:
  JournalFixture() {
    path_ = (std::filesystem::temp_directory_path() / "dqndock_test_journal.txt").string();
    std::filesystem::remove(path_);
  }
  ~JournalFixture() override { std::filesystem::remove(path_); }

  ShardRecord record(std::size_t begin, std::size_t end) {
    ShardRecord r;
    r.begin = begin;
    r.end = end;
    r.hitCount = end - begin;
    r.evaluations = 100 * (end - begin);
    for (std::size_t i = begin; i < end; ++i) r.hits.push_back(sampleHit(i, 1.0 + i));
    return r;
  }

  std::string path_;
};

TEST_F(JournalFixture, MissingFileLoadsAsNotExists) {
  const auto loaded = ScreenJournal::load(path_);
  EXPECT_FALSE(loaded.exists);
  EXPECT_TRUE(loaded.records.empty());
}

TEST_F(JournalFixture, AppendThenLoadRoundTrips) {
  {
    ScreenJournal journal(path_, "fp-abc", /*truncate=*/true);
    journal.append(record(0, 4));
    journal.append(record(8, 12));
  }
  const auto loaded = ScreenJournal::load(path_);
  ASSERT_TRUE(loaded.exists);
  EXPECT_EQ(loaded.fingerprint, "fp-abc");
  EXPECT_EQ(loaded.skippedLines, 0u);
  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.records[0].begin, 0u);
  EXPECT_EQ(loaded.records[0].end, 4u);
  EXPECT_EQ(loaded.records[1].begin, 8u);
  ASSERT_EQ(loaded.records[0].hits.size(), 4u);
  EXPECT_EQ(loaded.records[0].hits[2].refinedScore, 3.0);
}

TEST_F(JournalFixture, TornTailIsSkippedNotFatal) {
  {
    ScreenJournal journal(path_, "fp", /*truncate=*/true);
    journal.append(record(0, 4));
    journal.append(record(4, 8));
  }
  // Simulate a crash mid-append: chop the last line's END sentinel.
  std::string text;
  {
    std::ifstream in(path_);
    text.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  std::ofstream(path_, std::ios::trunc) << text.substr(0, text.size() - 8);

  const auto loaded = ScreenJournal::load(path_);
  ASSERT_TRUE(loaded.exists);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].end, 4u);
  EXPECT_EQ(loaded.skippedLines, 1u);
}

TEST_F(JournalFixture, AppendModePreservesExistingRecords) {
  {
    ScreenJournal journal(path_, "fp", /*truncate=*/true);
    journal.append(record(0, 4));
  }
  {
    ScreenJournal journal(path_, "fp", /*truncate=*/false);  // resume
    journal.append(record(4, 8));
  }
  const auto loaded = ScreenJournal::load(path_);
  ASSERT_EQ(loaded.records.size(), 2u);
}

TEST_F(JournalFixture, GarbageFileIsNotAJournal) {
  std::ofstream(path_) << "not a journal\nat all\n";
  EXPECT_FALSE(ScreenJournal::load(path_).exists);
}

// --- protocol / config ------------------------------------------------------

TEST(ScreenProtocol, ConfigRoundTripsThroughMessage) {
  ScreenJobConfig config;
  config.libraryPath = "lib.smi";
  config.librarySize = 1000;
  config.scenario = "paper2bsm";
  config.scenarioSeed = 7;
  config.searchPreset = "genetic";
  config.evaluationsPerLigand = 123;
  config.refineWithGradient = true;
  config.clusterModes = true;
  config.clusterRmsd = 1.5;
  config.scoringCutoff = 10.0;
  config.hitThreshold = 50.0;
  config.seed = 99;
  config.topK = 17;
  config.shardSize = 32;
  config.chunkSize = 4;
  config.leaseTimeoutSeconds = 2.5;

  const ScreenJobConfig back = configFromMessage(configToMessage(config));
  EXPECT_EQ(back.libraryPath, config.libraryPath);
  EXPECT_EQ(back.librarySize, config.librarySize);
  EXPECT_EQ(back.scenario, config.scenario);
  EXPECT_EQ(back.scenarioSeed, config.scenarioSeed);
  EXPECT_EQ(back.searchPreset, config.searchPreset);
  EXPECT_EQ(back.evaluationsPerLigand, config.evaluationsPerLigand);
  EXPECT_EQ(back.refineWithGradient, config.refineWithGradient);
  EXPECT_EQ(back.clusterModes, config.clusterModes);
  EXPECT_EQ(back.clusterRmsd, config.clusterRmsd);
  EXPECT_EQ(back.hitThreshold, config.hitThreshold);
  EXPECT_EQ(back.seed, config.seed);
  EXPECT_EQ(back.topK, config.topK);
  EXPECT_EQ(back.shardSize, config.shardSize);
  EXPECT_EQ(back.chunkSize, config.chunkSize);
  EXPECT_EQ(configFingerprint(back), configFingerprint(config));
}

TEST(ScreenProtocol, MissingRequiredFieldsAreProtocolErrors) {
  serve::Message msg{kMsgConfig, {}};
  EXPECT_THROW(configFromMessage(msg), serve::ProtocolError);
}

TEST(ScreenProtocol, FingerprintPinsResultAffectingFieldsOnly) {
  ScreenJobConfig a;
  a.libraryPath = "lib.smi";
  a.librarySize = 100;
  ScreenJobConfig b = a;

  // Scheduling knobs may differ between the run that wrote the journal
  // and the resume — they do not change any screening result.
  b.shardSize = 128;
  b.chunkSize = 2;
  b.leaseTimeoutSeconds = 99.0;
  b.libraryPath = "/elsewhere/lib.smi";  // same content, different mount
  EXPECT_EQ(configFingerprint(a), configFingerprint(b));

  b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(configFingerprint(a), configFingerprint(b));
  b = a;
  b.evaluationsPerLigand = a.evaluationsPerLigand + 1;
  EXPECT_NE(configFingerprint(a), configFingerprint(b));
  b = a;
  b.librarySize = a.librarySize + 1;
  EXPECT_NE(configFingerprint(a), configFingerprint(b));
}

TEST(ScreenProtocol, UnknownSearchPresetThrows) {
  EXPECT_THROW(searchPresetByName("simulated-annealing"), std::runtime_error);
  EXPECT_EQ(searchPresetByName("genetic").name, "genetic");
}

// --- library reader ---------------------------------------------------------

class LibraryIoFixture : public ::testing::Test {
 protected:
  LibraryIoFixture() {
    path_ = (std::filesystem::temp_directory_path() / "dqndock_test_lib.smi").string();
    chem::writeSyntheticLibraryFile(path_, 10, 6, 12, 42);
  }
  ~LibraryIoFixture() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(LibraryIoFixture, CountsAndReadsAll) {
  chem::LigandLibraryReader reader(path_);
  EXPECT_EQ(reader.size(), 10u);
  const auto all = reader.readAll();
  ASSERT_EQ(all.size(), 10u);
  for (const auto& mol : all) EXPECT_GT(mol.atomCount(), 0u);
}

TEST_F(LibraryIoFixture, RangeReadsMatchFullReadBitForBit) {
  chem::LigandLibraryReader whole(path_);
  const auto all = whole.readAll();

  chem::LigandLibraryReader ranged(path_);
  // Out-of-order ranges force both forward streaming and rewinds.
  for (const auto& [lo, hi] : std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 7}, {0, 2}, {7, 10}, {2, 4}}) {
    const auto slice = ranged.read(lo, hi);
    ASSERT_EQ(slice.size(), hi - lo);
    for (std::size_t i = 0; i < slice.size(); ++i) {
      const auto& a = slice[i];
      const auto& b = all[lo + i];
      EXPECT_EQ(a.name(), b.name());
      ASSERT_EQ(a.atomCount(), b.atomCount());
      for (std::size_t j = 0; j < a.atomCount(); ++j) {
        // Conformers are embedded from the SMILES with a global-index
        // seed, so any read path yields identical coordinates.
        EXPECT_EQ(a.positions()[j].x, b.positions()[j].x);
        EXPECT_EQ(a.positions()[j].y, b.positions()[j].y);
        EXPECT_EQ(a.positions()[j].z, b.positions()[j].z);
      }
    }
  }
}

TEST_F(LibraryIoFixture, MissingFileThrows) {
  EXPECT_THROW(chem::LigandLibraryReader("/nonexistent/lib.smi"), std::runtime_error);
}

}  // namespace
}  // namespace dqndock::screen
