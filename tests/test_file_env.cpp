// Tests for the file-based DQN <-> METADOCK coupling (paper Section 5).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "src/chem/synthetic.hpp"
#include "src/common/rng.hpp"
#include "src/metadock/file_env.hpp"

namespace dqndock::metadock {
namespace {

namespace fs = std::filesystem;

class FileEnvFixture : public ::testing::Test {
 protected:
  FileEnvFixture()
      : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())), env_(scenario_, {}) {}

  chem::Scenario scenario_;
  DockingEnv env_;
};

TEST_F(FileEnvFixture, StepMatchesDirectEnvironment) {
  DockingEnv direct(scenario_, {});
  FileEnv file(env_);
  direct.reset();
  file.reset();
  const int actions[] = {4, 4, 1, 7, 4, 4};
  for (int a : actions) {
    const StepResult rd = direct.step(a);
    const StepResult rf = file.step(a);
    EXPECT_DOUBLE_EQ(rf.score, rd.score);
    EXPECT_DOUBLE_EQ(rf.reward, rd.reward);
    EXPECT_EQ(rf.terminal, rd.terminal);
    EXPECT_EQ(rf.reason, rd.reason);
  }
}

TEST_F(FileEnvFixture, ExchangeFilesExistAfterStep) {
  FileEnv file(env_);
  file.reset();
  file.step(4);
  EXPECT_TRUE(fs::exists(file.exchangeDir() / "action.txt"));
  EXPECT_TRUE(fs::exists(file.exchangeDir() / "state.txt"));
  EXPECT_TRUE(fs::exists(file.exchangeDir() / "score.txt"));
}

TEST_F(FileEnvFixture, ParsedStateMatchesLigandPositions) {
  FileEnv file(env_);
  file.reset();
  file.step(4);
  const auto& parsed = file.ligandPositionsFromFile();
  const auto direct = env_.ligandPositions();
  ASSERT_EQ(parsed.size(), direct.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_NEAR(distance(parsed[i], direct[i]), 0.0, 1e-12);
  }
}

TEST_F(FileEnvFixture, ResetRoundTripsScore) {
  FileEnv file(env_);
  const double parsed = file.reset();
  EXPECT_DOUBLE_EQ(parsed, env_.score());
}

TEST_F(FileEnvFixture, TemporaryDirectoryCleanedUpOnDestruction) {
  fs::path dir;
  {
    FileEnv file(env_);
    file.reset();
    dir = file.exchangeDir();
    EXPECT_TRUE(fs::exists(dir));
  }
  EXPECT_FALSE(fs::exists(dir));
}

TEST_F(FileEnvFixture, AutoDirectoryNameIsSeedDeterministic) {
  // The auto-generated exchange dir is a pure function of (seed, per-
  // process instance index) — routed through the project Rng, never
  // std::random_device — so a run is reproducible from its seed. The
  // name format is "dqndock-ipc-<rng64>-<instance>"; recompute the rng64
  // part from the recorded instance index and the constructor's mixing
  // formula and it must match exactly.
  FileEnv file(env_, {}, /*seed=*/1234);
  const std::string name = file.exchangeDir().filename().string();
  const std::size_t lastDash = name.rfind('-');
  const std::size_t prevDash = name.rfind('-', lastDash - 1);
  ASSERT_NE(lastDash, std::string::npos);
  ASSERT_NE(prevDash, std::string::npos);
  const std::uint64_t instance = std::stoull(name.substr(lastDash + 1));
  const std::uint64_t token = std::stoull(name.substr(prevDash + 1, lastDash - prevDash - 1));
  Rng expected(1234 ^ (instance * 0x9e3779b97f4a7c15ULL));
  EXPECT_EQ(token, expected());
}

TEST_F(FileEnvFixture, EqualSeedsInOneProcessGetDistinctDirectories) {
  DockingEnv other(scenario_, {});
  FileEnv a(env_, {}, 42);
  FileEnv b(other, {}, 42);
  EXPECT_NE(a.exchangeDir(), b.exchangeDir());
  EXPECT_TRUE(fs::exists(a.exchangeDir()));
  EXPECT_TRUE(fs::exists(b.exchangeDir()));
}

TEST_F(FileEnvFixture, ExplicitDirectoryIsKept) {
  const fs::path dir = fs::temp_directory_path() / "dqndock-fileenv-test";
  {
    FileEnv file(env_, dir);
    file.reset();
  }
  EXPECT_TRUE(fs::exists(dir));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dqndock::metadock
