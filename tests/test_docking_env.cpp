// Tests for the DQN-Docking environment: action semantics, reward
// clipping, and the paper's three termination rules.

#include <gtest/gtest.h>

#include <cmath>

#include "src/chem/synthetic.hpp"
#include "src/metadock/docking_env.hpp"

namespace dqndock::metadock {
namespace {

class DockingEnvFixture : public ::testing::Test {
 protected:
  DockingEnvFixture() : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())) {}

  DockingEnv makeEnv(EnvConfig cfg = {}) { return DockingEnv(scenario_, cfg); }

  chem::Scenario scenario_;
};

TEST_F(DockingEnvFixture, TwelveActionsRigid) {
  auto env = makeEnv();
  EXPECT_EQ(env.actionCount(), 12);  // paper Table 1
}

TEST_F(DockingEnvFixture, FlexibleModeAddsTorsionActions) {
  EnvConfig cfg;
  cfg.flexibleLigand = true;
  auto env = makeEnv(cfg);
  int rotatable = 0;
  for (const auto& b : scenario_.ligand.bonds()) rotatable += b.rotatable;
  EXPECT_EQ(env.actionCount(), 12 + rotatable);  // paper Section 5: 12 + K
}

TEST_F(DockingEnvFixture, ResetRestoresInitialState) {
  auto env = makeEnv();
  const double s0 = env.score();
  const auto p0 = env.ligandPositions();
  const std::vector<Vec3> initial(p0.begin(), p0.end());
  env.step(0);
  env.step(2);
  const double s1 = env.reset();
  EXPECT_DOUBLE_EQ(s1, s0);
  EXPECT_EQ(env.stepCount(), 0);
  const auto p1 = env.ligandPositions();
  for (std::size_t i = 0; i < initial.size(); ++i) {
    EXPECT_NEAR(distance(initial[i], p1[i]), 0.0, 1e-12);
  }
}

TEST_F(DockingEnvFixture, TranslationActionsMoveByShiftStep) {
  EnvConfig cfg;
  cfg.shiftStep = 2.5;
  auto env = makeEnv(cfg);
  const auto before = std::vector<Vec3>(env.ligandPositions().begin(),
                                        env.ligandPositions().end());
  env.step(1);  // +x
  const auto after = env.ligandPositions();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i].x - before[i].x, 2.5, 1e-12);
    EXPECT_NEAR(after[i].y - before[i].y, 0.0, 1e-12);
    EXPECT_NEAR(after[i].z - before[i].z, 0.0, 1e-12);
  }
}

TEST_F(DockingEnvFixture, OppositeTranslationsCancel) {
  auto env = makeEnv();
  const auto before = std::vector<Vec3>(env.ligandPositions().begin(),
                                        env.ligandPositions().end());
  env.step(3);  // +y
  env.step(2);  // -y
  const auto after = env.ligandPositions();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(distance(before[i], after[i]), 0.0, 1e-12);
  }
}

TEST_F(DockingEnvFixture, RotationActionsPreserveShapeAndCentroid) {
  EnvConfig cfg;
  cfg.rotateStepDeg = 15.0;  // bigger angle to make motion visible
  auto env = makeEnv(cfg);
  const auto before = std::vector<Vec3>(env.ligandPositions().begin(),
                                        env.ligandPositions().end());
  env.step(7);  // +x rotation
  const auto after = env.ligandPositions();
  // Internal distances preserved.
  for (std::size_t i = 0; i < before.size(); ++i) {
    for (std::size_t j = i + 1; j < before.size(); ++j) {
      EXPECT_NEAR(distance(after[i], after[j]), distance(before[i], before[j]), 1e-9);
    }
  }
  // Centroid stays fixed (rotation about ligand centroid).
  Vec3 cb, ca;
  for (std::size_t i = 0; i < before.size(); ++i) {
    cb += before[i];
    ca += after[i];
  }
  EXPECT_NEAR(distance(cb, ca) / static_cast<double>(before.size()), 0.0, 1e-9);
}

TEST_F(DockingEnvFixture, RewardIsSignOfScoreChange) {
  auto env = makeEnv();
  // Moving toward the receptor (pocket is along -z from the start pose)
  // eventually improves the score; any single step reward must be one of
  // {-1, 0, +1} and consistent with scoreDelta.
  for (int i = 0; i < 30 && !env.terminated(); ++i) {
    const auto r = env.step(4);
    if (r.scoreDelta > 0) EXPECT_DOUBLE_EQ(r.reward, 1.0);
    if (r.scoreDelta < 0) EXPECT_DOUBLE_EQ(r.reward, -1.0);
    if (r.scoreDelta == 0) EXPECT_DOUBLE_EQ(r.reward, 0.0);
  }
}

TEST_F(DockingEnvFixture, BoundaryTerminationWhenWanderingAway) {
  auto env = makeEnv();
  StepResult last;
  for (int i = 0; i < 200 && !env.terminated(); ++i) last = env.step(5);  // +z away
  EXPECT_TRUE(env.terminated());
  EXPECT_EQ(env.terminationReason(), Termination::kBoundary);
  EXPECT_TRUE(last.terminal);
}

TEST_F(DockingEnvFixture, TimeLimitTermination) {
  EnvConfig cfg;
  cfg.maxSteps = 5;
  auto env = makeEnv(cfg);
  StepResult last;
  // Oscillate in place: +x then -x never hits the boundary.
  for (int i = 0; i < 5; ++i) last = env.step(i % 2);
  EXPECT_TRUE(last.terminal);
  EXPECT_EQ(last.reason, Termination::kTimeLimit);
}

TEST_F(DockingEnvFixture, ScoreFloorTermination) {
  EnvConfig cfg;
  cfg.floorPatience = 3;
  cfg.scoreFloor = -1e5;
  cfg.boundaryFactor = 100.0;  // don't trip the boundary first
  auto env = makeEnv(cfg);
  // Drive the ligand straight through the receptor center: sustained
  // deep-clash scores trip the floor rule.
  StepResult last;
  for (int i = 0; i < 300 && !env.terminated(); ++i) last = env.step(4);  // -z
  EXPECT_TRUE(env.terminated());
  EXPECT_EQ(env.terminationReason(), Termination::kScoreFloor);
}

TEST_F(DockingEnvFixture, SuccessTerminationWhenReachingCrystal) {
  EnvConfig cfg;
  cfg.successRmsd = 1e6;  // any pose counts: first step must succeed
  cfg.successReward = 7.5;
  auto env = makeEnv(cfg);
  const StepResult r = env.step(0);
  EXPECT_TRUE(r.terminal);
  EXPECT_EQ(r.reason, Termination::kSuccess);
  EXPECT_DOUBLE_EQ(r.reward, 7.5);
  EXPECT_STREQ(terminationName(Termination::kSuccess), "success");
}

TEST_F(DockingEnvFixture, SuccessRuleDisabledByDefault) {
  auto env = makeEnv();  // successRmsd = 0: the paper's configuration
  const StepResult r = env.step(4);
  EXPECT_NE(r.reason, Termination::kSuccess);
}

TEST_F(DockingEnvFixture, StepAfterTerminalThrows) {
  EnvConfig cfg;
  cfg.maxSteps = 1;
  auto env = makeEnv(cfg);
  env.step(0);
  EXPECT_THROW(env.step(0), std::logic_error);
  env.reset();
  EXPECT_NO_THROW(env.step(0));
}

TEST_F(DockingEnvFixture, InvalidActionThrows) {
  auto env = makeEnv();
  EXPECT_THROW(env.step(-1), std::out_of_range);
  EXPECT_THROW(env.step(12), std::out_of_range);
}

TEST_F(DockingEnvFixture, TorsionActionOnlyInFlexibleMode) {
  EnvConfig cfg;
  cfg.flexibleLigand = true;
  auto env = makeEnv(cfg);
  ASSERT_GT(env.actionCount(), 12);
  EXPECT_NO_THROW(env.step(12));
  EXPECT_NE(env.pose().torsions[0], 0.0);
}

TEST_F(DockingEnvFixture, DeterministicTrajectories) {
  auto env1 = makeEnv();
  auto env2 = makeEnv();
  const int actions[] = {4, 4, 7, 1, 4, 9, 4, 0};
  for (int a : actions) {
    const auto r1 = env1.step(a);
    const auto r2 = env2.step(a);
    EXPECT_DOUBLE_EQ(r1.score, r2.score);
    EXPECT_DOUBLE_EQ(r1.reward, r2.reward);
  }
}

TEST_F(DockingEnvFixture, SetPoseRestoresState) {
  auto env = makeEnv();
  env.step(4);
  env.step(4);
  const Pose saved = env.pose();
  const double savedScore = env.score();
  env.reset();
  env.setPose(saved);
  EXPECT_DOUBLE_EQ(env.score(), savedScore);
}

TEST_F(DockingEnvFixture, RmsdToCrystalDecreasesApproachingPocket) {
  auto env = makeEnv();
  const double before = env.rmsdToCrystal();
  for (int i = 0; i < 10 && !env.terminated(); ++i) env.step(4);  // toward pocket
  EXPECT_LT(env.rmsdToCrystal(), before);
}

TEST_F(DockingEnvFixture, CrystalScoreBeatsInitial) {
  auto env = makeEnv();
  EXPECT_GT(env.crystalScore(), env.score());
}

TEST_F(DockingEnvFixture, EvaluationCountAdvances) {
  auto env = makeEnv();
  const std::size_t base = env.evaluationCount();
  env.step(0);
  env.step(1);
  EXPECT_EQ(env.evaluationCount(), base + 2);
}

}  // namespace
}  // namespace dqndock::metadock
