// Golden-equivalence suite for the pose-batched SoA kernel
// (ScoringFunction::energyBatch / scoreBatch) against per-pose packed
// scoring, plus the batched path's own determinism guarantees:
// per-pose results must be bit-identical for any batch split (tiling,
// evaluator chunking) and any thread-pool size.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/chem/synthetic.hpp"
#include "src/metadock/evaluator.hpp"
#include "src/metadock/scoring.hpp"
#include "src/metadock/scoring_kernels.hpp"

namespace dqndock::metadock {
namespace {

/// Relative tolerance for batched-vs-per-pose comparisons. The kernels
/// compute identical pair terms but accumulate them in different orders
/// (straight per-lane vs 8-lane-blocked), so exact equality is not
/// expected; 1e-9 relative matches test_scoring_packed.
double tol(double ref) { return std::max(1e-9, std::fabs(ref) * 1e-9); }

std::vector<Pose> randomPoses(const ReceptorModel& receptor, const LigandModel& ligand,
                              int count, double radius, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Pose> poses;
  for (int i = 0; i < count; ++i) {
    poses.push_back(randomPose(receptor.centerOfMass(), radius, ligand.torsionCount(), rng));
  }
  return poses;
}

/// Per-pose packed reference energies (the PR 2 kernel).
std::vector<ScoreTerms> perPoseEnergies(const ScoringFunction& sf, std::span<const Pose> poses) {
  std::vector<ScoreTerms> out;
  std::vector<Vec3> scratch;
  for (const Pose& p : poses) {
    sf.ligand().applyPose(p, scratch);
    out.push_back(sf.energy(scratch));
  }
  return out;
}

void expectBatchMatchesPerPose(const ScoringFunction& sf, std::span<const Pose> poses,
                               const char* what) {
  const std::vector<ScoreTerms> ref = perPoseEnergies(sf, poses);
  ScoringFunction::BatchScratch scratch;
  std::vector<ScoreTerms> got(poses.size());
  sf.energyBatch(poses, scratch, got);
  for (std::size_t i = 0; i < poses.size(); ++i) {
    EXPECT_NEAR(got[i].electrostatic, ref[i].electrostatic, tol(ref[i].electrostatic))
        << what << " pose " << i << " (electrostatic)";
    EXPECT_NEAR(got[i].vdw, ref[i].vdw, tol(ref[i].vdw)) << what << " pose " << i << " (vdw)";
    // The H-bond pass is the literal per-pose code path: bit-identical.
    EXPECT_EQ(got[i].hbond, ref[i].hbond) << what << " pose " << i << " (hbond)";
    EXPECT_NEAR(got[i].total(), ref[i].total(), tol(ref[i].total()))
        << what << " pose " << i << " (total)";
  }
}

class BatchedScoringFixture : public ::testing::Test {
 protected:
  BatchedScoringFixture()
      : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())),
        receptor_(scenario_.receptor, 12.0),
        ligand_(scenario_.ligand) {}

  chem::Scenario scenario_;
  ReceptorModel receptor_;
  LigandModel ligand_;
};

TEST_F(BatchedScoringFixture, MatchesPerPoseAcrossBatchSizes) {
  // 1 (degenerate), 2 (small), 32 (exactly one full tile), 33 (tile + 1
  // remainder lane) — the tile-boundary cases of kMaxBatchLanes = 32.
  ScoringFunction sf(receptor_, ligand_, {});
  for (int count : {1, 2, 32, 33}) {
    const auto poses = randomPoses(receptor_, ligand_, count, 15.0, 100 + count);
    expectBatchMatchesPerPose(sf, poses, "grid");
  }
}

TEST_F(BatchedScoringFixture, MatchesPerPoseOnEveryExecutionPath) {
  // grid (union/subcell sweep), cutoff-no-grid (masked full sweep), brute
  // (no cutoff), and the scalar fallback all honour the same contract.
  ScoringOptions cutoffOnly;
  cutoffOnly.useGrid = false;
  ScoringOptions brute;
  brute.cutoff = 0.0;
  brute.useGrid = false;
  ScoringOptions scalar;
  scalar.packed = false;
  const auto poses = randomPoses(receptor_, ligand_, 12, 15.0, 21);
  expectBatchMatchesPerPose(ScoringFunction(receptor_, ligand_, {}), poses, "grid");
  expectBatchMatchesPerPose(ScoringFunction(receptor_, ligand_, cutoffOnly), poses, "cutoff");
  expectBatchMatchesPerPose(ScoringFunction(receptor_, ligand_, brute), poses, "brute");
  expectBatchMatchesPerPose(ScoringFunction(receptor_, ligand_, scalar), poses, "scalar");
}

TEST_F(BatchedScoringFixture, MixedInAndOutOfBoxPoses) {
  // Poses far outside the receptor's grid box exercise the
  // window-overlap rejection and the divergent-batch fallback; mixing
  // them with in-box poses in one tile must not perturb either group.
  ScoringFunction sf(receptor_, ligand_, {});
  Rng rng(31);
  std::vector<Pose> poses;
  for (int i = 0; i < 12; ++i) {
    Pose p = randomPose(receptor_.centerOfMass(), 10.0, ligand_.torsionCount(), rng);
    if (i % 3 == 1) p.translation.x += 250.0;  // far beyond any cell
    if (i % 3 == 2) p.translation.z -= 400.0;
    poses.push_back(p);
  }
  expectBatchMatchesPerPose(sf, poses, "mixed in/out of box");

  // Out-of-box poses have zero interaction energy on the grid path, same
  // as the per-pose kernel reports.
  ScoringFunction::BatchScratch scratch;
  std::vector<ScoreTerms> got(poses.size());
  sf.energyBatch(poses, scratch, got);
  for (std::size_t i = 0; i < poses.size(); ++i) {
    if (i % 3 != 0) {
      EXPECT_EQ(got[i].total(), 0.0) << "far pose " << i;
    }
  }
}

TEST_F(BatchedScoringFixture, WidelySpreadBatchTriggersFallbackConsistently) {
  // Spread poses across the whole box so the per-atom lane bounding box
  // exceeds kMaxUnionWindowCells and the kernel takes the per-pose
  // fallback: results must stay bit-identical to tight batches of the
  // same poses (the fallback and union paths visit identical nonzero
  // pairs in the same packed order).
  ScoringFunction sf(receptor_, ligand_, {});
  const auto poses = randomPoses(receptor_, ligand_, 16, 60.0, 77);

  ScoringFunction::BatchScratch scratch;
  std::vector<double> wholeBatch(poses.size());
  sf.scoreBatch(poses, scratch, wholeBatch);

  // One pose per call: every atom's "bounding box" is a point, so the
  // union path is taken whenever the pose is near the box.
  for (std::size_t i = 0; i < poses.size(); ++i) {
    double single = 0.0;
    sf.scoreBatch(std::span<const Pose>(&poses[i], 1), scratch,
                  std::span<double>(&single, 1));
    EXPECT_EQ(single, wholeBatch[i]) << "pose " << i << " (batch of 16 vs batch of 1)";
  }
}

TEST_F(BatchedScoringFixture, BitIdenticalAcrossBatchSplits) {
  // Scoring [0, 33) in one call vs arbitrary contiguous splits must give
  // bit-identical per-pose results (the evaluator chunks batches across
  // worker threads, so split-invariance is what makes pool size
  // score-invisible).
  ScoringFunction sf(receptor_, ligand_, {});
  const auto poses = randomPoses(receptor_, ligand_, 33, 15.0, 55);
  ScoringFunction::BatchScratch scratch;
  std::vector<double> whole(poses.size());
  sf.scoreBatch(poses, scratch, whole);

  for (std::size_t split : {1u, 2u, 7u, 32u}) {
    std::vector<double> pieces(poses.size());
    for (std::size_t lo = 0; lo < poses.size(); lo += split) {
      const std::size_t n = std::min(split, poses.size() - lo);
      sf.scoreBatch(std::span<const Pose>(poses).subspan(lo, n), scratch,
                    std::span<double>(pieces).subspan(lo, n));
    }
    for (std::size_t i = 0; i < poses.size(); ++i) {
      EXPECT_EQ(pieces[i], whole[i]) << "pose " << i << " (split " << split << ")";
    }
  }
}

TEST_F(BatchedScoringFixture, EvaluatorBitIdenticalAcrossThreadCounts) {
  // End-to-end: PoseEvaluator::evaluateBatch with 1/2/8-thread pools and
  // no pool at all must return bit-identical scores.
  ScoringFunction sf(receptor_, ligand_, {});
  const auto poses = randomPoses(receptor_, ligand_, 33, 15.0, 99);

  PoseEvaluator serial(sf, nullptr);
  const std::vector<double> reference = serial.evaluateBatch(poses);

  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    PoseEvaluator eval(sf, &pool);
    const std::vector<double> got = eval.evaluateBatch(poses);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < poses.size(); ++i) {
      EXPECT_EQ(got[i], reference[i]) << "pose " << i << ", " << threads << " threads";
    }
  }
}

TEST(BatchedScoringPaperTest, MatchesPerPoseOnPaper2BSM) {
  // The paper's full-size scenario: 3,264 receptor atoms, 45-atom ligand.
  const chem::Scenario sc = chem::buildScenario(chem::ScenarioSpec::paper2bsm());
  ReceptorModel receptor(sc.receptor, 12.0);
  LigandModel ligand(sc.ligand);
  ScoringFunction sf(receptor, ligand, {});
  const auto poses = randomPoses(receptor, ligand, 32, 25.0, 7);
  expectBatchMatchesPerPose(sf, poses, "paper-2BSM");
}

// -- Runtime kernel dispatch matrix ------------------------------------------

/// RAII DQNDOCK_FORCE_KERNEL pin. Tier selection happens once inside the
/// ScoringFunction constructor, so each forced instance must be built
/// while the pin is live. setenv is safe here: these tests spawn no
/// concurrent getenv readers.
class ScopedForceKernel {
 public:
  explicit ScopedForceKernel(const char* value) {
    const char* prev = std::getenv("DQNDOCK_FORCE_KERNEL");
    if (prev != nullptr) {
      hadPrev_ = true;
      prev_ = prev;
    }
    ::setenv("DQNDOCK_FORCE_KERNEL", value, /*overwrite=*/1);
  }
  ~ScopedForceKernel() {
    if (hadPrev_) {
      ::setenv("DQNDOCK_FORCE_KERNEL", prev_.c_str(), 1);
    } else {
      ::unsetenv("DQNDOCK_FORCE_KERNEL");
    }
  }
  ScopedForceKernel(const ScopedForceKernel&) = delete;
  ScopedForceKernel& operator=(const ScopedForceKernel&) = delete;

 private:
  bool hadPrev_ = false;
  std::string prev_;
};

std::vector<KernelTier> supportedTiers() {
  std::vector<KernelTier> tiers{KernelTier::kGeneric};
  if (kernelTierSupported(KernelTier::kAvx512)) tiers.push_back(KernelTier::kAvx512);
  return tiers;
}

class KernelDispatchFixture : public BatchedScoringFixture {};

TEST_F(KernelDispatchFixture, ProbeSelectsBestSupportedTier) {
  ScopedForceKernel unset("");
  ::unsetenv("DQNDOCK_FORCE_KERNEL");
  const KernelTier probed = probeKernelTier();
  EXPECT_EQ(probed, kernelTierSupported(KernelTier::kAvx512) ? KernelTier::kAvx512
                                                             : KernelTier::kGeneric);
  EXPECT_EQ(resolveKernelTier(), probed);
  ScoringFunction sf(receptor_, ligand_, {});
  EXPECT_EQ(sf.kernelTier(), probed);
}

TEST_F(KernelDispatchFixture, EquivalenceSuitePerForcedTier) {
  // The full batched-vs-per-pose contract must hold under every tier the
  // host can run, not just the probed one.
  const auto poses = randomPoses(receptor_, ligand_, 33, 15.0, 41);
  for (const KernelTier tier : supportedTiers()) {
    ScopedForceKernel force(kernelTierName(tier));
    ScoringFunction sf(receptor_, ligand_, {});
    ASSERT_EQ(sf.kernelTier(), tier);
    expectBatchMatchesPerPose(sf, poses, kernelTierName(tier));
  }
}

TEST_F(KernelDispatchFixture, BitDeterministicPerTierAcrossSplits) {
  // Each tier on its own is bit-deterministic: any batch split gives
  // bit-identical per-pose scores (the cross-thread guarantee reduces to
  // this, since worker threads chunk batches).
  const auto poses = randomPoses(receptor_, ligand_, 33, 15.0, 43);
  for (const KernelTier tier : supportedTiers()) {
    ScopedForceKernel force(kernelTierName(tier));
    ScoringFunction sf(receptor_, ligand_, {});
    ScoringFunction::BatchScratch scratch;
    std::vector<double> whole(poses.size());
    sf.scoreBatch(poses, scratch, whole);
    for (std::size_t split : {1u, 5u, 32u}) {
      std::vector<double> pieces(poses.size());
      for (std::size_t lo = 0; lo < poses.size(); lo += split) {
        const std::size_t n = std::min(split, poses.size() - lo);
        sf.scoreBatch(std::span<const Pose>(poses).subspan(lo, n), scratch,
                      std::span<double>(pieces).subspan(lo, n));
      }
      for (std::size_t i = 0; i < poses.size(); ++i) {
        EXPECT_EQ(pieces[i], whole[i])
            << kernelTierName(tier) << " pose " << i << " (split " << split << ")";
      }
    }
  }
}

TEST(KernelDispatchPaperTest, ForcedTiersAgreeOnPaper2BSM) {
  // Acceptance: forced-generic and forced-avx512 agree to <= 1e-9
  // relative on the paper's full-size scenario. The per-pose sweep is
  // bit-identical across tiers; only the batched AVX-512 sweep (rsqrt +
  // Newton-Raphson) may differ from generic in the last bits.
  if (!kernelTierSupported(KernelTier::kAvx512)) {
    GTEST_SKIP() << "host has no AVX-512F; single-tier machine";
  }
  const chem::Scenario sc = chem::buildScenario(chem::ScenarioSpec::paper2bsm());
  ReceptorModel receptor(sc.receptor, 12.0);
  LigandModel ligand(sc.ligand);
  const auto poses = randomPoses(receptor, ligand, 32, 25.0, 11);

  auto scoresForTier = [&](const char* tier) {
    ScopedForceKernel force(tier);
    ScoringFunction sf(receptor, ligand, {});
    ScoringFunction::BatchScratch scratch;
    std::vector<double> out(poses.size());
    sf.scoreBatch(poses, scratch, out);
    return out;
  };
  const std::vector<double> generic = scoresForTier("generic");
  const std::vector<double> avx512 = scoresForTier("avx512");
  for (std::size_t i = 0; i < poses.size(); ++i) {
    EXPECT_NEAR(avx512[i], generic[i], tol(generic[i])) << "pose " << i;
  }

  // The probed tier on an AVX-512 host IS the avx512 tier, dispatched to
  // the same TU the compile-time (-march=native) build used to select —
  // so probed scores are bit-identical to forced-avx512 scores.
  ScopedForceKernel unset("");
  ::unsetenv("DQNDOCK_FORCE_KERNEL");
  ScoringFunction probedSf(receptor, ligand, {});
  ASSERT_EQ(probedSf.kernelTier(), KernelTier::kAvx512);
  ScoringFunction::BatchScratch scratch;
  std::vector<double> probed(poses.size());
  probedSf.scoreBatch(poses, scratch, probed);
  for (std::size_t i = 0; i < poses.size(); ++i) {
    EXPECT_EQ(probed[i], avx512[i]) << "pose " << i << " (probed vs forced avx512)";
  }

  // Per-pose (non-batched) sweeps share one IEEE-only body across tiers:
  // bit-identical, not merely within tolerance.
  auto perPoseForTier = [&](const char* tier) {
    ScopedForceKernel force(tier);
    ScoringFunction sf(receptor, ligand, {});
    std::vector<Vec3> pos;
    std::vector<double> out;
    for (const Pose& p : poses) {
      ligand.applyPose(p, pos);
      out.push_back(sf.score(pos));
    }
    return out;
  };
  const std::vector<double> perPoseGeneric = perPoseForTier("generic");
  const std::vector<double> perPoseAvx512 = perPoseForTier("avx512");
  for (std::size_t i = 0; i < poses.size(); ++i) {
    EXPECT_EQ(perPoseAvx512[i], perPoseGeneric[i]) << "pose " << i << " (per-pose sweep)";
  }
}

TEST(KernelDispatchErrorTest, UnknownForceValueThrows) {
  const chem::Scenario sc = chem::buildScenario(chem::ScenarioSpec::tiny());
  ReceptorModel receptor(sc.receptor, 12.0);
  LigandModel ligand(sc.ligand);
  ScopedForceKernel force("sse9000");
  EXPECT_THROW(ScoringFunction(receptor, ligand, {}), std::runtime_error);
}

TEST(KernelDispatchErrorTest, ForcingUnsupportedTierThrows) {
  // A forced tier must never silently fall back. Only runnable as a
  // real check on non-AVX-512 hosts; elsewhere verify the support query
  // agrees with the compile gate.
  if (kernelTierSupported(KernelTier::kAvx512)) {
    EXPECT_TRUE(kernelTierCompiled(KernelTier::kAvx512));
    GTEST_SKIP() << "host supports avx512; cannot exercise the rejection path";
  }
  const chem::Scenario sc = chem::buildScenario(chem::ScenarioSpec::tiny());
  ReceptorModel receptor(sc.receptor, 12.0);
  LigandModel ligand(sc.ligand);
  ScopedForceKernel force("avx512");
  EXPECT_THROW(ScoringFunction(receptor, ligand, {}), std::runtime_error);
}

TEST(BatchedScoringErrorTest, SizeMismatchThrows) {
  const chem::Scenario sc = chem::buildScenario(chem::ScenarioSpec::tiny());
  ReceptorModel receptor(sc.receptor, 12.0);
  LigandModel ligand(sc.ligand);
  ScoringFunction sf(receptor, ligand, {});
  const auto poses = randomPoses(receptor, ligand, 4, 15.0, 3);
  ScoringFunction::BatchScratch scratch;
  std::vector<ScoreTerms> wrong(3);
  EXPECT_THROW(sf.energyBatch(poses, scratch, wrong), std::invalid_argument);
  std::vector<double> wrongScores(5);
  EXPECT_THROW(sf.scoreBatch(poses, scratch, wrongScores), std::invalid_argument);
}

}  // namespace
}  // namespace dqndock::metadock
