// Wire protocol tests: message encode/decode round-trips, framed I/O
// over a pipe (EOF vs truncation vs oversize), and the full loopback
// integration — a TcpClient docking through a TcpServer backed by a real
// DockingService, ending in a graceful SHUTDOWN.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "src/chem/synthetic.hpp"
#include "src/common/rng.hpp"
#include "src/rl/checkpoint.hpp"
#include "src/serve/tcp.hpp"
#include "src/serve/wire.hpp"

namespace dqndock::serve {
namespace {

TEST(WireMessageTest, EncodeDecodeRoundTrip) {
  Message msg{"DOCK", {}};
  msg.set("max_steps", 25L).set("epsilon", 0.125).set("tag", "run-7");
  msg.set("seed", std::uint64_t{42});

  const std::string payload = encodeMessage(msg);
  const Message back = decodeMessage(payload);
  EXPECT_EQ(back.type, "DOCK");
  EXPECT_EQ(back.getInt("max_steps", -1), 25);
  EXPECT_EQ(back.getDouble("epsilon", 0.0), 0.125);
  EXPECT_EQ(back.get("tag"), "run-7");
  EXPECT_EQ(back.getInt("seed", 0), 42);
  EXPECT_FALSE(back.has("missing"));
  EXPECT_EQ(back.get("missing", "fallback"), "fallback");
}

TEST(WireMessageTest, DoubleFieldsRoundTripExactly) {
  Message msg{"OK", {}};
  msg.set("score", 0.1 + 0.2);  // a value with no short decimal form
  const Message back = decodeMessage(encodeMessage(msg));
  EXPECT_EQ(back.getDouble("score", 0.0), 0.1 + 0.2);  // %.17g is lossless
}

TEST(WireMessageTest, EncodeRejectsUnrepresentableContent) {
  EXPECT_THROW(encodeMessage(Message{"", {}}), std::invalid_argument);
  EXPECT_THROW(encodeMessage(Message{"A\nB", {}}), std::invalid_argument);
  EXPECT_THROW(encodeMessage(Message{"OK", {{"k", "line1\nline2"}}}), std::invalid_argument);
  EXPECT_THROW(encodeMessage(Message{"OK", {{"bad=key", "v"}}}), std::invalid_argument);
  EXPECT_THROW(encodeMessage(Message{"OK", {{"", "v"}}}), std::invalid_argument);
}

TEST(WireMessageTest, DecodeRejectsMalformedPayloads) {
  // Malformed peer payloads are ProtocolError (a runtime_error subtype),
  // so servers can distinguish "peer sent garbage" from transport faults.
  EXPECT_THROW(decodeMessage(""), ProtocolError);
  EXPECT_THROW(decodeMessage("OK\nno-equals-sign"), ProtocolError);
}

class PipeFixture : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_EQ(::pipe(fds_), 0); }
  void TearDown() override {
    closeRead();
    closeWrite();
  }
  void closeRead() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    fds_[0] = -1;
  }
  void closeWrite() {
    if (fds_[1] >= 0) ::close(fds_[1]);
    fds_[1] = -1;
  }
  int readFd() const { return fds_[0]; }
  int writeFd() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

TEST_F(PipeFixture, FrameRoundTripAndCleanEof) {
  writeFrame(writeFd(), "hello frame");
  writeFrame(writeFd(), "");  // empty payloads are legal frames
  closeWrite();
  std::string payload;
  ASSERT_TRUE(readFrame(readFd(), payload));
  EXPECT_EQ(payload, "hello frame");
  ASSERT_TRUE(readFrame(readFd(), payload));
  EXPECT_EQ(payload, "");
  EXPECT_FALSE(readFrame(readFd(), payload));  // clean EOF at frame boundary
}

TEST_F(PipeFixture, TruncatedPrefixAndPayloadThrow) {
  // EOF after a PARTIAL length prefix is a mid-frame hangup, never a
  // clean shutdown: it must throw ProtocolError, not return false.
  const unsigned char partialPrefix[2] = {0, 0};
  ASSERT_EQ(::write(writeFd(), partialPrefix, 2), 2);
  closeWrite();
  std::string payload;
  EXPECT_THROW(readFrame(readFd(), payload), ProtocolError);
}

TEST_F(PipeFixture, TruncatedBodyThrows) {
  const unsigned char prefix[4] = {0, 0, 0, 10};  // announces 10 bytes
  ASSERT_EQ(::write(writeFd(), prefix, 4), 4);
  ASSERT_EQ(::write(writeFd(), "abc", 3), 3);  // delivers 3
  closeWrite();
  std::string payload;
  EXPECT_THROW(readFrame(readFd(), payload), ProtocolError);
}

TEST_F(PipeFixture, SingleByteTruncationThrows) {
  // The tightest truncation: one byte of prefix, then hangup.
  const unsigned char oneByte[1] = {7};
  ASSERT_EQ(::write(writeFd(), oneByte, 1), 1);
  closeWrite();
  std::string payload;
  EXPECT_THROW(readFrame(readFd(), payload), ProtocolError);
}

TEST_F(PipeFixture, OversizedFramesRejectedBothDirections) {
  const std::string huge(kMaxFrameBytes + 1, 'x');
  EXPECT_THROW(writeFrame(writeFd(), huge), std::runtime_error);
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};  // hostile length
  ASSERT_EQ(::write(writeFd(), prefix, 4), 4);
  closeWrite();
  std::string payload;
  EXPECT_THROW(readFrame(readFd(), payload), ProtocolError);
}

TEST_F(PipeFixture, SendRecvMessageOverPipe) {
  Message msg{"STATUS", {}};
  msg.set("probe", 1L);
  sendMessage(writeFd(), msg);
  closeWrite();
  Message back;
  ASSERT_TRUE(recvMessage(readFd(), back));
  EXPECT_EQ(back.type, "STATUS");
  EXPECT_EQ(back.getInt("probe", 0), 1);
  EXPECT_FALSE(recvMessage(readFd(), back));
}

// ---------------------------------------------------------------------------

/// Full stack on loopback: scenario -> registry -> service -> TCP.
class LoopbackFixture : public ::testing::Test {
 protected:
  LoopbackFixture() : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())) {
    Rng rng(2024);
    const std::size_t dim = scenario_.ligand.atomCount() * 3;
    registry_ = std::make_unique<ModelRegistry>(
        std::make_unique<rl::MlpQNetwork>(dim, std::vector<std::size_t>{16}, 12, rng));
    ServiceOptions opts;
    opts.workers = 2;
    opts.queueCapacity = 8;
    opts.batcher.flushDeadline = std::chrono::microseconds(50);
    service_ = std::make_unique<DockingService>(scenario_, *registry_, opts);
    server_ = std::make_unique<TcpServer>(*service_, *registry_);
  }

  ~LoopbackFixture() override {
    server_->stop();
    service_->shutdown();
  }

  chem::Scenario scenario_;
  std::unique_ptr<ModelRegistry> registry_;
  std::unique_ptr<DockingService> service_;
  std::unique_ptr<TcpServer> server_;
};

TEST_F(LoopbackFixture, PingAndStatus) {
  TcpClient client(server_->port());
  EXPECT_EQ(client.request(Message{"PING", {}}).type, "OK");

  const Message status = client.request(Message{"STATUS", {}});
  ASSERT_EQ(status.type, "OK");
  EXPECT_EQ(status.getInt("workers", 0), 2);
  EXPECT_EQ(status.getInt("queue_capacity", 0), 8);
  EXPECT_EQ(status.getInt("model_version", 0), 1);
}

TEST_F(LoopbackFixture, FullDockOverTcp) {
  TcpClient client(server_->port());
  Message dock{"DOCK", {}};
  dock.set("max_steps", 6L).set("seed", 3L).set("priority", "high");
  const Message reply = client.request(dock);
  ASSERT_EQ(reply.type, "OK") << reply.get("error");
  EXPECT_EQ(reply.get("status"), "done");
  EXPECT_GE(reply.getInt("steps", -1), 1);
  EXPECT_LE(reply.getInt("steps", 99), 6);
  EXPECT_EQ(reply.getInt("model_version", 0), 1);
  EXPECT_GE(reply.getDouble("best_score", -1e300), reply.getDouble("final_score", 1e300));
  EXPECT_FALSE(reply.get("termination").empty());
  EXPECT_TRUE(reply.has("best_rmsd"));
}

TEST_F(LoopbackFixture, ScreenOverTcp) {
  TcpClient client(server_->port());
  Message screen{"SCREEN", {}};
  screen.set("library_size", 2L).set("min_atoms", 6L).set("max_atoms", 8L).set("evals", 40L);
  const Message reply = client.request(screen);
  ASSERT_EQ(reply.type, "OK") << reply.get("error");
  EXPECT_EQ(reply.getInt("ligands", 0), 2);
  EXPECT_FALSE(reply.get("best_ligand").empty());
  EXPECT_GT(reply.getInt("evaluations", 0), 0);
}

TEST_F(LoopbackFixture, ConcurrentClientsShareTheService) {
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> okCount{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TcpClient client(server_->port());
      Message dock{"DOCK", {}};
      dock.set("max_steps", 4L).set("seed", static_cast<long>(c + 1));
      if (client.request(dock).type == "OK") okCount.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(okCount.load(), kClients);
  EXPECT_GE(server_->stats().connections, static_cast<std::uint64_t>(kClients));
}

TEST_F(LoopbackFixture, PublishHotSwapsTheServedModel) {
  // Write a matching-architecture checkpoint with different weights.
  Rng rng(777);
  const std::size_t dim = scenario_.ligand.atomCount() * 3;
  rl::MlpQNetwork retrained(dim, std::vector<std::size_t>{16}, 12, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dqndock_publish_test.bin").string();
  rl::saveWeightsFile(path, retrained);

  TcpClient client(server_->port());
  Message publish{"PUBLISH", {}};
  publish.set("path", path);
  const Message reply = client.request(publish);
  ASSERT_EQ(reply.type, "OK") << reply.get("error");
  EXPECT_EQ(reply.getInt("model_version", 0), 2);

  // A dock after the swap reports the new version.
  Message dock{"DOCK", {}};
  dock.set("max_steps", 3L);
  EXPECT_EQ(client.request(dock).getInt("model_version", 0), 2);
  std::remove(path.c_str());
}

TEST_F(LoopbackFixture, BadRequestsComeBackAsErrors) {
  TcpClient client(server_->port());
  const Message unknown = client.request(Message{"FROBNICATE", {}});
  EXPECT_EQ(unknown.type, "ERROR");
  EXPECT_NE(unknown.get("reason").find("unknown request type"), std::string::npos);

  Message publish{"PUBLISH", {}};
  EXPECT_EQ(client.request(publish).type, "ERROR");  // missing path=
  publish.set("path", "/nonexistent/weights.bin");
  EXPECT_EQ(client.request(publish).type, "ERROR");  // unreadable path
  EXPECT_EQ(registry_->currentVersion(), 1u);        // nothing swapped

  // The connection survives all of it.
  EXPECT_EQ(client.request(Message{"PING", {}}).type, "OK");
}

/// Minimal raw loopback listener for simulating a misbehaving server.
class RawListener {
 public:
  RawListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    EXPECT_EQ(::listen(fd_, 1), 0);
    socklen_t len = sizeof addr;
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
  ~RawListener() {
    if (fd_ >= 0) ::close(fd_);
  }
  std::uint16_t port() const { return port_; }
  int acceptOne() { return ::accept(fd_, nullptr, nullptr); }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

TEST(TcpClientFramingTest, ClosesConnectionAfterFramingError) {
  // A "server" that answers with a truncated length prefix then hangs up:
  // the client must throw ProtocolError AND close its fd — after a
  // framing failure the stream position is unknown, so reuse could pair
  // the next request with a stale reply.
  RawListener listener;
  std::thread server([&] {
    const int fd = listener.acceptOne();
    ASSERT_GE(fd, 0);
    char buf[4096];
    ASSERT_GT(::read(fd, buf, sizeof buf), 0);  // drain the request frame
    const unsigned char partial[2] = {0, 9};
    ASSERT_EQ(::write(fd, partial, 2), 2);
    ::close(fd);
  });
  TcpClient client(listener.port());
  EXPECT_THROW(client.request(Message{"PING", {}}), ProtocolError);
  server.join();
  // The fd is gone: later requests fail fast with "closed", they never
  // touch a desynchronised stream.
  try {
    client.request(Message{"PING", {}});
    FAIL() << "expected request() on a closed client to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("closed"), std::string::npos);
  }
}

TEST(TcpClientFramingTest, CleanServerHangupAlsoClosesClient) {
  // Orderly EOF instead of a reply is still a failed request/response
  // exchange from the client's point of view — same close-on-throw rule.
  RawListener listener;
  std::thread server([&] {
    const int fd = listener.acceptOne();
    ASSERT_GE(fd, 0);
    char buf[4096];
    ASSERT_GT(::read(fd, buf, sizeof buf), 0);
    ::close(fd);  // hang up with no reply at all
  });
  TcpClient client(listener.port());
  EXPECT_THROW(client.request(Message{"PING", {}}), std::runtime_error);
  server.join();
  EXPECT_THROW(client.request(Message{"PING", {}}), std::runtime_error);
}

TEST_F(LoopbackFixture, ProtocolErrorStatCountsGarbageNotCleanHangup) {
  // A well-behaved client that connects, pings, and disconnects cleanly
  // must not count as a protocol error.
  {
    TcpClient client(server_->port());
    ASSERT_EQ(client.request(Message{"PING", {}}).type, "OK");
  }
  // A raw peer that sends a truncated frame and hangs up must.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server_->port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    const unsigned char partial[3] = {0, 0, 0};
    ASSERT_EQ(::write(fd, partial, 3), 3);
    ::close(fd);
  }
  // The handler thread processes the hangup asynchronously.
  for (int i = 0; i < 200 && server_->stats().protocolErrors == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->stats().protocolErrors, 1u);
}

TEST_F(LoopbackFixture, ShutdownRequestStopsTheServerGracefully) {
  {
    TcpClient client(server_->port());
    Message dock{"DOCK", {}};
    dock.set("max_steps", 3L);
    ASSERT_EQ(client.request(dock).type, "OK");
    EXPECT_EQ(client.request(Message{"SHUTDOWN", {}}).type, "OK");
  }
  server_->waitUntilStopped();
  server_->stop();  // joins handlers; idempotent with the fixture dtor
  EXPECT_TRUE(server_->stopRequested());
  // New connections are refused once the listener is gone.
  EXPECT_THROW(TcpClient(server_->port()), std::runtime_error);
}

}  // namespace
}  // namespace dqndock::serve
