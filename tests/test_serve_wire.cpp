// Wire protocol tests: message encode/decode round-trips, framed I/O
// over a pipe (EOF vs truncation vs oversize), and the full loopback
// integration — a TcpClient docking through a TcpServer backed by a real
// DockingService, ending in a graceful SHUTDOWN.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "src/chem/synthetic.hpp"
#include "src/common/rng.hpp"
#include "src/rl/checkpoint.hpp"
#include "src/serve/tcp.hpp"
#include "src/serve/wire.hpp"

namespace dqndock::serve {
namespace {

TEST(WireMessageTest, EncodeDecodeRoundTrip) {
  Message msg{"DOCK", {}};
  msg.set("max_steps", 25L).set("epsilon", 0.125).set("tag", "run-7");
  msg.set("seed", std::uint64_t{42});

  const std::string payload = encodeMessage(msg);
  const Message back = decodeMessage(payload);
  EXPECT_EQ(back.type, "DOCK");
  EXPECT_EQ(back.getInt("max_steps", -1), 25);
  EXPECT_EQ(back.getDouble("epsilon", 0.0), 0.125);
  EXPECT_EQ(back.get("tag"), "run-7");
  EXPECT_EQ(back.getInt("seed", 0), 42);
  EXPECT_FALSE(back.has("missing"));
  EXPECT_EQ(back.get("missing", "fallback"), "fallback");
}

TEST(WireMessageTest, DoubleFieldsRoundTripExactly) {
  Message msg{"OK", {}};
  msg.set("score", 0.1 + 0.2);  // a value with no short decimal form
  const Message back = decodeMessage(encodeMessage(msg));
  EXPECT_EQ(back.getDouble("score", 0.0), 0.1 + 0.2);  // %.17g is lossless
}

TEST(WireMessageTest, EncodeRejectsUnrepresentableContent) {
  EXPECT_THROW(encodeMessage(Message{"", {}}), std::invalid_argument);
  EXPECT_THROW(encodeMessage(Message{"A\nB", {}}), std::invalid_argument);
  EXPECT_THROW(encodeMessage(Message{"OK", {{"k", "line1\nline2"}}}), std::invalid_argument);
  EXPECT_THROW(encodeMessage(Message{"OK", {{"bad=key", "v"}}}), std::invalid_argument);
  EXPECT_THROW(encodeMessage(Message{"OK", {{"", "v"}}}), std::invalid_argument);
}

TEST(WireMessageTest, DecodeRejectsMalformedPayloads) {
  EXPECT_THROW(decodeMessage(""), std::runtime_error);
  EXPECT_THROW(decodeMessage("OK\nno-equals-sign"), std::runtime_error);
}

class PipeFixture : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_EQ(::pipe(fds_), 0); }
  void TearDown() override {
    closeRead();
    closeWrite();
  }
  void closeRead() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    fds_[0] = -1;
  }
  void closeWrite() {
    if (fds_[1] >= 0) ::close(fds_[1]);
    fds_[1] = -1;
  }
  int readFd() const { return fds_[0]; }
  int writeFd() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

TEST_F(PipeFixture, FrameRoundTripAndCleanEof) {
  writeFrame(writeFd(), "hello frame");
  writeFrame(writeFd(), "");  // empty payloads are legal frames
  closeWrite();
  std::string payload;
  ASSERT_TRUE(readFrame(readFd(), payload));
  EXPECT_EQ(payload, "hello frame");
  ASSERT_TRUE(readFrame(readFd(), payload));
  EXPECT_EQ(payload, "");
  EXPECT_FALSE(readFrame(readFd(), payload));  // clean EOF at frame boundary
}

TEST_F(PipeFixture, TruncatedPrefixAndPayloadThrow) {
  const unsigned char partialPrefix[2] = {0, 0};
  ASSERT_EQ(::write(writeFd(), partialPrefix, 2), 2);
  closeWrite();
  std::string payload;
  EXPECT_THROW(readFrame(readFd(), payload), std::runtime_error);
}

TEST_F(PipeFixture, TruncatedBodyThrows) {
  const unsigned char prefix[4] = {0, 0, 0, 10};  // announces 10 bytes
  ASSERT_EQ(::write(writeFd(), prefix, 4), 4);
  ASSERT_EQ(::write(writeFd(), "abc", 3), 3);  // delivers 3
  closeWrite();
  std::string payload;
  EXPECT_THROW(readFrame(readFd(), payload), std::runtime_error);
}

TEST_F(PipeFixture, OversizedFramesRejectedBothDirections) {
  const std::string huge(kMaxFrameBytes + 1, 'x');
  EXPECT_THROW(writeFrame(writeFd(), huge), std::runtime_error);
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};  // hostile length
  ASSERT_EQ(::write(writeFd(), prefix, 4), 4);
  closeWrite();
  std::string payload;
  EXPECT_THROW(readFrame(readFd(), payload), std::runtime_error);
}

TEST_F(PipeFixture, SendRecvMessageOverPipe) {
  Message msg{"STATUS", {}};
  msg.set("probe", 1L);
  sendMessage(writeFd(), msg);
  closeWrite();
  Message back;
  ASSERT_TRUE(recvMessage(readFd(), back));
  EXPECT_EQ(back.type, "STATUS");
  EXPECT_EQ(back.getInt("probe", 0), 1);
  EXPECT_FALSE(recvMessage(readFd(), back));
}

// ---------------------------------------------------------------------------

/// Full stack on loopback: scenario -> registry -> service -> TCP.
class LoopbackFixture : public ::testing::Test {
 protected:
  LoopbackFixture() : scenario_(chem::buildScenario(chem::ScenarioSpec::tiny())) {
    Rng rng(2024);
    const std::size_t dim = scenario_.ligand.atomCount() * 3;
    registry_ = std::make_unique<ModelRegistry>(
        std::make_unique<rl::MlpQNetwork>(dim, std::vector<std::size_t>{16}, 12, rng));
    ServiceOptions opts;
    opts.workers = 2;
    opts.queueCapacity = 8;
    opts.batcher.flushDeadline = std::chrono::microseconds(50);
    service_ = std::make_unique<DockingService>(scenario_, *registry_, opts);
    server_ = std::make_unique<TcpServer>(*service_, *registry_);
  }

  ~LoopbackFixture() override {
    server_->stop();
    service_->shutdown();
  }

  chem::Scenario scenario_;
  std::unique_ptr<ModelRegistry> registry_;
  std::unique_ptr<DockingService> service_;
  std::unique_ptr<TcpServer> server_;
};

TEST_F(LoopbackFixture, PingAndStatus) {
  TcpClient client(server_->port());
  EXPECT_EQ(client.request(Message{"PING", {}}).type, "OK");

  const Message status = client.request(Message{"STATUS", {}});
  ASSERT_EQ(status.type, "OK");
  EXPECT_EQ(status.getInt("workers", 0), 2);
  EXPECT_EQ(status.getInt("queue_capacity", 0), 8);
  EXPECT_EQ(status.getInt("model_version", 0), 1);
}

TEST_F(LoopbackFixture, FullDockOverTcp) {
  TcpClient client(server_->port());
  Message dock{"DOCK", {}};
  dock.set("max_steps", 6L).set("seed", 3L).set("priority", "high");
  const Message reply = client.request(dock);
  ASSERT_EQ(reply.type, "OK") << reply.get("error");
  EXPECT_EQ(reply.get("status"), "done");
  EXPECT_GE(reply.getInt("steps", -1), 1);
  EXPECT_LE(reply.getInt("steps", 99), 6);
  EXPECT_EQ(reply.getInt("model_version", 0), 1);
  EXPECT_GE(reply.getDouble("best_score", -1e300), reply.getDouble("final_score", 1e300));
  EXPECT_FALSE(reply.get("termination").empty());
  EXPECT_TRUE(reply.has("best_rmsd"));
}

TEST_F(LoopbackFixture, ScreenOverTcp) {
  TcpClient client(server_->port());
  Message screen{"SCREEN", {}};
  screen.set("library_size", 2L).set("min_atoms", 6L).set("max_atoms", 8L).set("evals", 40L);
  const Message reply = client.request(screen);
  ASSERT_EQ(reply.type, "OK") << reply.get("error");
  EXPECT_EQ(reply.getInt("ligands", 0), 2);
  EXPECT_FALSE(reply.get("best_ligand").empty());
  EXPECT_GT(reply.getInt("evaluations", 0), 0);
}

TEST_F(LoopbackFixture, ConcurrentClientsShareTheService) {
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> okCount{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TcpClient client(server_->port());
      Message dock{"DOCK", {}};
      dock.set("max_steps", 4L).set("seed", static_cast<long>(c + 1));
      if (client.request(dock).type == "OK") okCount.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(okCount.load(), kClients);
  EXPECT_GE(server_->stats().connections, static_cast<std::uint64_t>(kClients));
}

TEST_F(LoopbackFixture, PublishHotSwapsTheServedModel) {
  // Write a matching-architecture checkpoint with different weights.
  Rng rng(777);
  const std::size_t dim = scenario_.ligand.atomCount() * 3;
  rl::MlpQNetwork retrained(dim, std::vector<std::size_t>{16}, 12, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dqndock_publish_test.bin").string();
  rl::saveWeightsFile(path, retrained);

  TcpClient client(server_->port());
  Message publish{"PUBLISH", {}};
  publish.set("path", path);
  const Message reply = client.request(publish);
  ASSERT_EQ(reply.type, "OK") << reply.get("error");
  EXPECT_EQ(reply.getInt("model_version", 0), 2);

  // A dock after the swap reports the new version.
  Message dock{"DOCK", {}};
  dock.set("max_steps", 3L);
  EXPECT_EQ(client.request(dock).getInt("model_version", 0), 2);
  std::remove(path.c_str());
}

TEST_F(LoopbackFixture, BadRequestsComeBackAsErrors) {
  TcpClient client(server_->port());
  const Message unknown = client.request(Message{"FROBNICATE", {}});
  EXPECT_EQ(unknown.type, "ERROR");
  EXPECT_NE(unknown.get("reason").find("unknown request type"), std::string::npos);

  Message publish{"PUBLISH", {}};
  EXPECT_EQ(client.request(publish).type, "ERROR");  // missing path=
  publish.set("path", "/nonexistent/weights.bin");
  EXPECT_EQ(client.request(publish).type, "ERROR");  // unreadable path
  EXPECT_EQ(registry_->currentVersion(), 1u);        // nothing swapped

  // The connection survives all of it.
  EXPECT_EQ(client.request(Message{"PING", {}}).type, "OK");
}

TEST_F(LoopbackFixture, ShutdownRequestStopsTheServerGracefully) {
  {
    TcpClient client(server_->port());
    Message dock{"DOCK", {}};
    dock.set("max_steps", 3L);
    ASSERT_EQ(client.request(dock).type, "OK");
    EXPECT_EQ(client.request(Message{"SHUTDOWN", {}}).type, "OK");
  }
  server_->waitUntilStopped();
  server_->stop();  // joins handlers; idempotent with the fixture dtor
  EXPECT_TRUE(server_->stopRequested());
  // New connections are refused once the listener is gone.
  EXPECT_THROW(TcpClient(server_->port()), std::runtime_error);
}

}  // namespace
}  // namespace dqndock::serve
