// Tests for parallel experience collection across environment replicas.

#include <gtest/gtest.h>

#include <memory>

#include "src/rl/corridor_env.hpp"
#include "src/rl/parallel_collector.hpp"

namespace dqndock::rl {
namespace {

std::vector<std::unique_ptr<Environment>> makeCorridors(std::size_t n, int length = 6) {
  std::vector<std::unique_ptr<Environment>> envs;
  for (std::size_t i = 0; i < n; ++i) {
    envs.push_back(std::make_unique<CorridorEnv>(length, 40));
  }
  return envs;
}

DqnConfig agentConfig() {
  DqnConfig cfg;
  cfg.hiddenSizes = {24, 24};
  cfg.batchSize = 16;
  cfg.targetSyncInterval = 50;
  cfg.optimizer = "adam";
  cfg.learningRate = 0.003;
  cfg.gamma = 0.95;
  return cfg;
}

TEST(LockedSinkTest, ForwardsPushes) {
  ReplayBuffer rb(16, 2);
  LockedSink sink(rb);
  const std::vector<double> s{1.0, 2.0};
  sink.push(s, 1, 0.5, s, false);
  EXPECT_EQ(rb.size(), 1u);
}

TEST(ParallelCollectorTest, EmptyReplicaListIsNoop) {
  std::vector<std::unique_ptr<Environment>> envs;
  Rng rng(1);
  DqnAgent agent(6, 2, agentConfig(), rng);
  ReplayBuffer rb(128, 6);
  const CollectorStats stats = collectParallel(envs, agent, rb, rb, {}, nullptr);
  EXPECT_EQ(stats.totalEpisodes, 0u);
  EXPECT_EQ(stats.totalSteps, 0u);
}

TEST(ParallelCollectorTest, CollectsOneEpisodePerReplicaPerSweep) {
  auto envs = makeCorridors(4);
  Rng rng(2);
  DqnAgent agent(6, 2, agentConfig(), rng);
  ReplayBuffer rb(10000, 6);
  ParallelCollectorConfig cfg;
  cfg.episodesPerReplica = 3;
  cfg.learningStart = 1u << 30;  // acting only
  ThreadPool pool(4);
  const CollectorStats stats = collectParallel(envs, agent, rb, rb, cfg, &pool);
  EXPECT_EQ(stats.totalEpisodes, 12u);
  EXPECT_EQ(stats.metrics.size(), 12u);
  EXPECT_GT(stats.totalSteps, 0u);
  EXPECT_EQ(rb.size(), std::min<std::size_t>(stats.totalSteps, rb.capacity()));
}

TEST(ParallelCollectorTest, SerialAndPooledCollectSameStepCounts) {
  // The transition *set* is deterministic in the seed (per-replica RNG
  // streams); step totals must match across pool sizes when no learning
  // interleaves (weights never change).
  ParallelCollectorConfig cfg;
  cfg.episodesPerReplica = 2;
  cfg.seed = 42;
  cfg.learningStart = 1u << 30;

  auto run = [&](ThreadPool* pool) {
    auto envs = makeCorridors(3);
    Rng rng(7);  // same agent init in both runs
    DqnAgent agent(6, 2, agentConfig(), rng);
    ReplayBuffer rb(10000, 6);
    return collectParallel(envs, agent, rb, rb, cfg, pool).totalSteps;
  };
  ThreadPool pool(4);
  EXPECT_EQ(run(nullptr), run(&pool));
}

TEST(ParallelCollectorTest, BatchedStepsAlwaysZero) {
  // Lockstep batching is owned by Trainer+VectorEnv (vector_env.hpp);
  // the collector's replicas step independently across threads and
  // never form a batch. The counter exists only so both throughput
  // paths expose a uniform stats shape.
  auto envs = makeCorridors(3);
  Rng rng(11);
  DqnAgent agent(6, 2, agentConfig(), rng);
  ReplayBuffer rb(10000, 6);
  ParallelCollectorConfig cfg;
  cfg.episodesPerReplica = 2;
  ThreadPool pool(3);
  const CollectorStats stats = collectParallel(envs, agent, rb, rb, cfg, &pool);
  EXPECT_GT(stats.totalSteps, 0u);
  EXPECT_EQ(stats.batchedSteps, 0u);
}

TEST(ParallelCollectorTest, DedupedActionLoopMatchesSelectAction) {
  // The collector folds maxQ() + selectAction() into one qValues() call
  // per step. This must be bit-preserving: a reference loop using the
  // public maxQ/selectAction pair, with the collector's exact stream
  // construction (root.split() per replica), must reproduce the same
  // episode records and the same replay contents.
  ParallelCollectorConfig cfg;
  cfg.episodesPerReplica = 3;
  cfg.seed = 31;
  cfg.epsilon = EpsilonSchedule(0.8, 0.1, 5e-3, 0);
  cfg.learningStart = 1u << 30;  // acting only: weights stay fixed

  auto envs = makeCorridors(1);
  Rng rng(13);
  DqnAgent agent(6, 2, agentConfig(), rng);
  ReplayBuffer rb(10000, 6);
  const CollectorStats stats = collectParallel(envs, agent, rb, rb, cfg, nullptr);

  Rng refInit(13);
  DqnAgent refAgent(6, 2, agentConfig(), refInit);
  ReplayBuffer refRb(10000, 6);
  Rng root(cfg.seed);
  Rng stream = root.split();
  CorridorEnv env(6, 40);
  std::size_t step = 0;
  ASSERT_EQ(stats.metrics.size(), cfg.episodesPerReplica);
  for (std::size_t episode = 0; episode < cfg.episodesPerReplica; ++episode) {
    std::vector<double> state, next;
    env.reset(state);
    double totalReward = 0.0;
    std::size_t episodeSteps = 0;
    bool terminal = false;
    while (!terminal) {
      const double eps = cfg.epsilon.value(step);
      const int action = refAgent.selectAction(state, eps, stream);
      const EnvStep r = env.step(action, next);
      refRb.push(state, action, r.reward, next, r.terminal);
      state = next;
      terminal = r.terminal;
      totalReward += r.reward;
      ++episodeSteps;
      ++step;
    }
    EXPECT_DOUBLE_EQ(stats.metrics.records()[episode].totalReward, totalReward);
    EXPECT_EQ(stats.metrics.records()[episode].steps, episodeSteps);
  }
  ASSERT_EQ(rb.size(), refRb.size());
  Rng sampleA(99), sampleB(99);
  const Minibatch a = rb.sample(16, sampleA);
  const Minibatch b = refRb.sample(16, sampleB);
  EXPECT_EQ(a.actions, b.actions);
  EXPECT_EQ(a.rewards, b.rewards);
  const auto sa = a.states.flat();
  const auto sb = b.states.flat();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) ASSERT_EQ(sa[i], sb[i]);
}

TEST(ParallelCollectorTest, LearnsCorridorWithReplicas) {
  auto envs = makeCorridors(4);
  Rng rng(3);
  DqnAgent agent(6, 2, agentConfig(), rng);
  ReplayBuffer rb(20000, 6);
  ParallelCollectorConfig cfg;
  cfg.episodesPerReplica = 60;
  cfg.learningStart = 200;
  cfg.epsilon = EpsilonSchedule(1.0, 0.05, 2e-3, 200);
  cfg.seed = 5;
  ThreadPool pool(4);
  const CollectorStats stats = collectParallel(envs, agent, rb, rb, cfg, &pool);
  EXPECT_EQ(stats.totalEpisodes, 240u);

  // Greedy policy must reach the goal from the start state.
  CorridorEnv eval(6, 40);
  std::vector<double> state, next;
  eval.reset(state);
  double total = 0.0;
  for (int t = 0; t < 40; ++t) {
    const EnvStep r = eval.step(agent.greedyAction(state), next);
    total += r.reward;
    state = next;
    if (r.terminal) break;
  }
  EXPECT_GT(total, 0.5);
}

}  // namespace
}  // namespace dqndock::rl
