// Tests for parallel experience collection across environment replicas.

#include <gtest/gtest.h>

#include <memory>

#include "src/rl/corridor_env.hpp"
#include "src/rl/parallel_collector.hpp"

namespace dqndock::rl {
namespace {

std::vector<std::unique_ptr<Environment>> makeCorridors(std::size_t n, int length = 6) {
  std::vector<std::unique_ptr<Environment>> envs;
  for (std::size_t i = 0; i < n; ++i) {
    envs.push_back(std::make_unique<CorridorEnv>(length, 40));
  }
  return envs;
}

DqnConfig agentConfig() {
  DqnConfig cfg;
  cfg.hiddenSizes = {24, 24};
  cfg.batchSize = 16;
  cfg.targetSyncInterval = 50;
  cfg.optimizer = "adam";
  cfg.learningRate = 0.003;
  cfg.gamma = 0.95;
  return cfg;
}

TEST(LockedSinkTest, ForwardsPushes) {
  ReplayBuffer rb(16, 2);
  LockedSink sink(rb);
  const std::vector<double> s{1.0, 2.0};
  sink.push(s, 1, 0.5, s, false);
  EXPECT_EQ(rb.size(), 1u);
}

TEST(ParallelCollectorTest, EmptyReplicaListIsNoop) {
  std::vector<std::unique_ptr<Environment>> envs;
  Rng rng(1);
  DqnAgent agent(6, 2, agentConfig(), rng);
  ReplayBuffer rb(128, 6);
  const CollectorStats stats = collectParallel(envs, agent, rb, rb, {}, nullptr);
  EXPECT_EQ(stats.totalEpisodes, 0u);
  EXPECT_EQ(stats.totalSteps, 0u);
}

TEST(ParallelCollectorTest, CollectsOneEpisodePerReplicaPerSweep) {
  auto envs = makeCorridors(4);
  Rng rng(2);
  DqnAgent agent(6, 2, agentConfig(), rng);
  ReplayBuffer rb(10000, 6);
  ParallelCollectorConfig cfg;
  cfg.episodesPerReplica = 3;
  cfg.learningStart = 1u << 30;  // acting only
  ThreadPool pool(4);
  const CollectorStats stats = collectParallel(envs, agent, rb, rb, cfg, &pool);
  EXPECT_EQ(stats.totalEpisodes, 12u);
  EXPECT_EQ(stats.metrics.size(), 12u);
  EXPECT_GT(stats.totalSteps, 0u);
  EXPECT_EQ(rb.size(), std::min<std::size_t>(stats.totalSteps, rb.capacity()));
}

TEST(ParallelCollectorTest, SerialAndPooledCollectSameStepCounts) {
  // The transition *set* is deterministic in the seed (per-replica RNG
  // streams); step totals must match across pool sizes when no learning
  // interleaves (weights never change).
  ParallelCollectorConfig cfg;
  cfg.episodesPerReplica = 2;
  cfg.seed = 42;
  cfg.learningStart = 1u << 30;

  auto run = [&](ThreadPool* pool) {
    auto envs = makeCorridors(3);
    Rng rng(7);  // same agent init in both runs
    DqnAgent agent(6, 2, agentConfig(), rng);
    ReplayBuffer rb(10000, 6);
    return collectParallel(envs, agent, rb, rb, cfg, pool).totalSteps;
  };
  ThreadPool pool(4);
  EXPECT_EQ(run(nullptr), run(&pool));
}

TEST(ParallelCollectorTest, LearnsCorridorWithReplicas) {
  auto envs = makeCorridors(4);
  Rng rng(3);
  DqnAgent agent(6, 2, agentConfig(), rng);
  ReplayBuffer rb(20000, 6);
  ParallelCollectorConfig cfg;
  cfg.episodesPerReplica = 60;
  cfg.learningStart = 200;
  cfg.epsilon = EpsilonSchedule(1.0, 0.05, 2e-3, 200);
  cfg.seed = 5;
  ThreadPool pool(4);
  const CollectorStats stats = collectParallel(envs, agent, rb, rb, cfg, &pool);
  EXPECT_EQ(stats.totalEpisodes, 240u);

  // Greedy policy must reach the goal from the start state.
  CorridorEnv eval(6, 40);
  std::vector<double> state, next;
  eval.reset(state);
  double total = 0.0;
  for (int t = 0; t < 40; ++t) {
    const EnvStep r = eval.step(agent.greedyAction(state), next);
    total += r.reward;
    state = next;
    if (r.terminal) break;
  }
  EXPECT_GT(total, 0.5);
}

}  // namespace
}  // namespace dqndock::rl
