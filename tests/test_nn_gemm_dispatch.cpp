// GEMM kernel-tier dispatch matrix (mirrors test_scoring_batched's
// KernelDispatch suites): generic-tier bit-identity with the pre-dispatch
// kernels, cross-tier agreement on paper Table 1 shapes, per-tier
// bit-determinism across thread pools and repeated runs, fused-epilogue
// equivalence, the pinned zero-skip semantics on non-finite inputs, and
// the DQNDOCK_FORCE_KERNEL error contract — plus an end-to-end
// DqnAgent::learn weight-trajectory determinism check per tier.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/nn/gemm.hpp"
#include "src/nn/gemm_kernels.hpp"
#include "src/nn/tensor.hpp"
#include "src/rl/dqn_agent.hpp"
#include "src/rl/replay_buffer.hpp"

namespace dqndock::nn {
namespace {

/// Pin a tier for one scope, restoring the previously active tier after.
class TierGuard {
 public:
  explicit TierGuard(GemmTier tier) : previous_(gemmKernelTier()) { setGemmKernelTier(tier); }
  ~TierGuard() { setGemmKernelTier(previous_); }

 private:
  GemmTier previous_;
};

std::vector<GemmTier> supportedTiers() {
  std::vector<GemmTier> tiers = {GemmTier::kGeneric};
  if (gemmTierSupported(GemmTier::kAvx512)) tiers.push_back(GemmTier::kAvx512);
  return tiers;
}

Tensor randomTensor(std::size_t r, std::size_t c, Rng& rng) {
  Tensor t(r, c);
  for (double& v : t.flat()) v = rng.gaussian();
  return t;
}

/// ReLU-like sparsity: zero out ~half the entries exactly (the pattern
/// the backward kernels' zero skip is built for).
Tensor sparseRandomTensor(std::size_t r, std::size_t c, Rng& rng) {
  Tensor t = randomTensor(r, c, rng);
  for (double& v : t.flat()) {
    if (v < 0.0) v = 0.0;
  }
  return t;
}

void expectBitEqual(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.flat()[i], b.flat()[i]) << what << " diverges at flat index " << i;
  }
}

void expectRelClose(const Tensor& a, const Tensor& b, double relTol, const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = a.flat()[i];
    const double y = b.flat()[i];
    const double scale = std::max({std::abs(x), std::abs(y), 1.0});
    ASSERT_LE(std::abs(x - y), relTol * scale) << what << " at flat index " << i;
  }
}

// --- Pre-dispatch reference kernels ----------------------------------------
// Per-element arithmetic of the kernels gemm.cpp shipped before the tier
// split: ascending-p accumulation (ABt), ikj with the zero skip (AB and
// AtB). With -ffp-contract=off these plain loops are bit-identical to
// the old kernels at any optimisation level, so the generic tier must
// reproduce them bit-for-bit.

Tensor refGemmABt(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < a.cols(); ++p) acc += a(i, p) * b(j, p);
      c(i, j) = acc;
    }
  }
  return c;
}

Tensor refGemmAB(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t p = 0; p < a.cols(); ++p) {
      const double av = a(i, p);
      if (av == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += av * b(p, j);
    }
  }
  return c;
}

Tensor refGemmAtBAccum(const Tensor& a, const Tensor& b, const Tensor& base) {
  Tensor c = base;
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t p = 0; p < a.rows(); ++p) {
      const double av = a(p, i);
      if (av == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += av * b(p, j);
    }
  }
  return c;
}

using Shape = std::tuple<std::size_t, std::size_t, std::size_t>;  // m, k, n

// Mixed tiles/remainders/strip tails: 4-row tiles plus remainder rows,
// column counts straddling the avx512 64-col strip and 8-lane groups.
const Shape kSmallShapes[] = {{1, 1, 1},   {2, 3, 4},    {7, 5, 3},
                              {5, 33, 70}, {9, 64, 137}, {32, 135, 12}};

// Paper Table 1 dims (2BSM state 16599, two 135-unit hidden layers,
// batch 32): the three shapes the learn phase actually runs.
const Shape kPaperAbtShapes[] = {{32, 16599, 135}, {32, 135, 135}, {32, 135, 12}};

TEST(GemmKernelDispatchTest, ProbeSelectsBestSupportedTier) {
  const GemmTier probed = probeGemmTier();
  EXPECT_TRUE(gemmTierSupported(probed));
  if (gemmTierSupported(GemmTier::kAvx512)) {
    EXPECT_EQ(probed, GemmTier::kAvx512);
  } else {
    EXPECT_EQ(probed, GemmTier::kGeneric);
  }
  EXPECT_TRUE(gemmTierCompiled(GemmTier::kGeneric));
  EXPECT_STREQ(gemmTierName(GemmTier::kGeneric), "generic");
  EXPECT_STREQ(gemmTierName(GemmTier::kAvx512), "avx512");
}

TEST(GemmKernelDispatchTest, GenericBitIdenticalToPreDispatchKernels) {
  TierGuard guard(GemmTier::kGeneric);
  ThreadPool pool(2);
  int seed = 100;
  for (const auto& [m, k, n] : kSmallShapes) {
    Rng rng(static_cast<std::uint64_t>(seed++));
    const Tensor x = randomTensor(m, k, rng);
    const Tensor w = randomTensor(n, k, rng);
    Tensor c;
    gemmABt(x, w, c);
    expectBitEqual(c, refGemmABt(x, w), "generic gemmABt");
    gemmABt(x, w, c, &pool);
    expectBitEqual(c, refGemmABt(x, w), "generic gemmABt (pooled)");

    const Tensor dy = sparseRandomTensor(m, k, rng);
    const Tensor wB = randomTensor(k, n, rng);
    Tensor dx;
    gemmAB(dy, wB, dx);
    expectBitEqual(dx, refGemmAB(dy, wB), "generic gemmAB");

    const Tensor at = sparseRandomTensor(k, m, rng);
    const Tensor bt = randomTensor(k, n, rng);
    Tensor base = randomTensor(m, n, rng);
    Tensor accum = base;
    gemmAtBAccum(at, bt, accum);
    expectBitEqual(accum, refGemmAtBAccum(at, bt, base), "generic gemmAtBAccum");
  }
}

TEST(GemmKernelDispatchTest, FusedEpilogueMatchesSeparatePasses) {
  for (GemmTier tier : supportedTiers()) {
    TierGuard guard(tier);
    Rng rng(41);
    const Tensor x = randomTensor(9, 33, rng);
    const Tensor w = randomTensor(70, 33, rng);
    const Tensor bias = randomTensor(1, 70, rng);

    // Unfused reference: plain GEMM, then bias, then the v > 0 clamp.
    Tensor plain;
    gemmABt(x, w, plain);
    Tensor expect = plain;
    Tensor expectMask(expect.rows(), expect.cols());
    for (std::size_t r = 0; r < expect.rows(); ++r) {
      for (std::size_t c = 0; c < expect.cols(); ++c) {
        double v = expect(r, c) + bias(0, c);
        const bool keep = v > 0.0;
        expect(r, c) = keep ? v : 0.0;
        expectMask(r, c) = keep ? 1.0 : 0.0;
      }
    }

    Tensor fused, mask;
    GemmEpilogue epilogue;
    epilogue.bias = &bias;
    epilogue.relu = true;
    epilogue.reluMask = &mask;
    gemmABt(x, w, fused, nullptr, epilogue);
    const std::string tag = std::string("fused epilogue, tier ") + gemmTierName(tier);
    expectBitEqual(fused, expect, tag);
    expectBitEqual(mask, expectMask, tag + " (mask)");

    // Fused ReLU-backward gate on gemmAB == separate multiply.
    const Tensor dy = sparseRandomTensor(9, 70, rng);
    const Tensor wB = randomTensor(70, 33, rng);
    Tensor gateMask(9, 33);
    for (std::size_t i = 0; i < gateMask.size(); ++i) {
      gateMask.flat()[i] = expectMask.flat()[i % expectMask.size()];
    }
    Tensor dxPlain;
    gemmAB(dy, wB, dxPlain);
    for (std::size_t i = 0; i < dxPlain.size(); ++i) dxPlain.flat()[i] *= gateMask.flat()[i];
    Tensor dxFused;
    gemmAB(dy, wB, dxFused, nullptr, &gateMask);
    expectBitEqual(dxFused, dxPlain, tag + " (gemmAB mask)");
  }
}

TEST(GemmKernelDispatchTest, ForcedTiersAgreeOnPaperShapes) {
  if (!gemmTierSupported(GemmTier::kAvx512)) {
    GTEST_SKIP() << "host cannot run the avx512 tier";
  }
  int seed = 7;
  for (const auto& [m, k, n] : kPaperAbtShapes) {
    Rng rng(static_cast<std::uint64_t>(seed++));
    const Tensor x = randomTensor(m, k, rng);
    const Tensor w = randomTensor(n, k, rng);
    Tensor generic, avx512;
    {
      TierGuard guard(GemmTier::kGeneric);
      gemmABt(x, w, generic);
    }
    {
      TierGuard guard(GemmTier::kAvx512);
      gemmABt(x, w, avx512);
    }
    expectRelClose(generic, avx512, 1e-12, "gemmABt tier agreement");
  }
  // Backward shapes at paper dims: dX = dY * W (n = 16599 streams the
  // big weight matrix) and dW += dY^T * X.
  Rng rng(77);
  const Tensor dy = sparseRandomTensor(32, 135, rng);
  const Tensor w0 = randomTensor(135, 16599, rng);
  const Tensor xin = randomTensor(32, 16599, rng);
  Tensor dxG, dxV, dwG(135, 16599, 0.25), dwV(135, 16599, 0.25);
  {
    TierGuard guard(GemmTier::kGeneric);
    gemmAB(dy, w0, dxG);
    gemmAtBAccum(dy, xin, dwG);
  }
  {
    TierGuard guard(GemmTier::kAvx512);
    gemmAB(dy, w0, dxV);
    gemmAtBAccum(dy, xin, dwV);
  }
  expectRelClose(dxG, dxV, 1e-12, "gemmAB tier agreement");
  expectRelClose(dwG, dwV, 1e-12, "gemmAtBAccum tier agreement");
}

TEST(GemmKernelDispatchTest, BitIdenticalAcrossThreadCountsAndRuns) {
  for (GemmTier tier : supportedTiers()) {
    TierGuard guard(tier);
    Rng rng(500 + static_cast<int>(tier));
    // 33 rows: 8 full 4-row tiles + remainder; 137/70 columns straddle
    // the avx512 64-col strips and masked 8-lane tails.
    const Tensor x = randomTensor(33, 300, rng);
    const Tensor w = randomTensor(137, 300, rng);
    const Tensor bias = randomTensor(1, 137, rng);
    const Tensor dy = sparseRandomTensor(33, 137, rng);
    const Tensor wB = randomTensor(137, 70, rng);
    const Tensor at = sparseRandomTensor(33, 64, rng);
    const Tensor bt = randomTensor(33, 70, rng);

    GemmEpilogue epilogue;
    epilogue.bias = &bias;
    epilogue.relu = true;

    Tensor refAbt, refAb, refAtb(64, 70, 0.5);
    gemmABt(x, w, refAbt, nullptr, epilogue);
    gemmAB(dy, wB, refAb);
    gemmAtBAccum(at, bt, refAtb);

    const std::string tag = std::string("thread determinism, tier ") + gemmTierName(tier);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      for (int repeat = 0; repeat < 2; ++repeat) {
        Tensor abt, ab, atb(64, 70, 0.5);
        gemmABt(x, w, abt, &pool, epilogue);
        gemmAB(dy, wB, ab, &pool);
        gemmAtBAccum(at, bt, atb, &pool);
        expectBitEqual(abt, refAbt, tag + " (ABt)");
        expectBitEqual(ab, refAb, tag + " (AB)");
        expectBitEqual(atb, refAtb, tag + " (AtB)");
      }
    }
  }
}

TEST(GemmKernelDispatchTest, ProbedMatchesForcedAvx512) {
  if (probeGemmTier() != GemmTier::kAvx512) {
    GTEST_SKIP() << "probe does not select avx512 on this host";
  }
  Rng rng(9);
  const Tensor x = randomTensor(13, 200, rng);
  const Tensor w = randomTensor(30, 200, rng);
  Tensor probed, forced;
  {
    TierGuard guard(probeGemmTier());
    gemmABt(x, w, probed);
  }
  {
    TierGuard guard(GemmTier::kAvx512);
    gemmABt(x, w, forced);
  }
  expectBitEqual(probed, forced, "probed vs forced avx512");
}

// The zero-skip contract (documented in gemm.hpp): A elements that are
// exactly 0.0 skip their B row entirely, so non-finite B values behind
// zero weights do NOT poison the output (no 0 x Inf = NaN) — on every
// tier. Non-zero A elements still propagate non-finite B normally.
TEST(GemmKernelDispatchTest, ZeroSkipShieldsNonFiniteRows) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  for (GemmTier tier : supportedTiers()) {
    TierGuard guard(tier);
    const std::string tag = std::string("zero-skip, tier ") + gemmTierName(tier);

    // Row 0 of A is all zero; row 1 hits the poisoned B row with 2.0.
    Tensor a(2, 3);
    a(1, 0) = 2.0;
    a(1, 2) = 1.0;
    Tensor b(3, 70, 1.0);
    for (std::size_t j = 0; j < b.cols(); ++j) b(0, j) = (j % 2 == 0) ? kInf : kNan;

    Tensor c;
    gemmAB(a, b, c);
    ASSERT_EQ(c.rows(), 2u);
    for (std::size_t j = 0; j < c.cols(); ++j) {
      EXPECT_EQ(c(0, j), 0.0) << tag << ": zero row must skip non-finite B";
      EXPECT_FALSE(std::isfinite(c(1, j))) << tag << ": non-zero row must propagate";
    }

    // Same contract on the accumulating transpose kernel: column 0 of A
    // is zero, column 1 reaches the poisoned row.
    Tensor at(3, 2);
    at(0, 1) = 2.0;
    at(2, 1) = 1.0;
    Tensor ct(2, 70, 0.0);
    gemmAtBAccum(at, b, ct);
    for (std::size_t j = 0; j < ct.cols(); ++j) {
      EXPECT_EQ(ct(0, j), 0.0) << tag << ": zero column must skip non-finite B";
      EXPECT_FALSE(std::isfinite(ct(1, j))) << tag << ": non-zero column must propagate";
    }
  }
}

TEST(GemmKernelDispatchErrorTest, UnknownForceValueThrows) {
  const char* old = std::getenv("DQNDOCK_FORCE_KERNEL");
  const std::string saved = old != nullptr ? old : "";
  setenv("DQNDOCK_FORCE_KERNEL", "turbo9000", 1);
  EXPECT_THROW(resolveGemmTier(), std::runtime_error);
  if (old != nullptr) {
    setenv("DQNDOCK_FORCE_KERNEL", saved.c_str(), 1);
  } else {
    unsetenv("DQNDOCK_FORCE_KERNEL");
  }
}

TEST(GemmKernelDispatchErrorTest, ForcingUnsupportedTierThrows) {
  if (gemmTierSupported(GemmTier::kAvx512)) {
    GTEST_SKIP() << "host supports avx512; cannot exercise the unsupported-force path";
  }
  const char* old = std::getenv("DQNDOCK_FORCE_KERNEL");
  const std::string saved = old != nullptr ? old : "";
  setenv("DQNDOCK_FORCE_KERNEL", "avx512", 1);
  EXPECT_THROW(resolveGemmTier(), std::runtime_error);
  if (old != nullptr) {
    setenv("DQNDOCK_FORCE_KERNEL", saved.c_str(), 1);
  } else {
    unsetenv("DQNDOCK_FORCE_KERNEL");
  }
  EXPECT_THROW(setGemmKernelTier(GemmTier::kAvx512), std::runtime_error);
}

// --- End-to-end learn-phase determinism ------------------------------------

/// Run a fixed seeded DQN training schedule and return the flattened
/// final online-network weights.
std::vector<double> learnTrajectory(std::size_t poolThreads) {
  std::unique_ptr<ThreadPool> pool;
  if (poolThreads > 0) pool = std::make_unique<ThreadPool>(poolThreads);
  Rng initRng(2018);
  rl::DqnConfig cfg;
  cfg.hiddenSizes = {32, 32};
  cfg.batchSize = 16;
  cfg.targetSyncInterval = 5;
  const std::size_t stateDim = 201;
  const int actions = 5;
  rl::DqnAgent agent(stateDim, actions, cfg, initRng, pool.get());

  rl::ReplayBuffer buffer(256, stateDim);
  Rng dataRng(7);
  std::vector<double> s(stateDim), s2(stateDim);
  for (int t = 0; t < 64; ++t) {
    for (double& v : s) v = dataRng.gaussian();
    for (double& v : s2) v = dataRng.gaussian();
    buffer.push(s, static_cast<int>(dataRng.uniformInt(actions)), dataRng.uniform(), s2,
                t % 13 == 0);
  }

  Rng learnRng(99);
  for (int step = 0; step < 12; ++step) agent.learn(buffer, learnRng);

  std::vector<double> weights;
  for (nn::Tensor* t : agent.online().parameters()) {
    weights.insert(weights.end(), t->flat().begin(), t->flat().end());
  }
  return weights;
}

TEST(GemmKernelDispatchLearnTest, WeightTrajectoryDeterministicPerTier) {
  for (GemmTier tier : supportedTiers()) {
    TierGuard guard(tier);
    const std::vector<double> serial = learnTrajectory(0);
    ASSERT_FALSE(serial.empty());
    for (const std::size_t threads : {0u, 2u, 8u}) {
      const std::vector<double> run = learnTrajectory(threads);
      ASSERT_EQ(run.size(), serial.size());
      for (std::size_t i = 0; i < run.size(); ++i) {
        ASSERT_EQ(run[i], serial[i])
            << "tier " << gemmTierName(tier) << ", threads " << threads
            << ": weight trajectory diverged at parameter " << i;
      }
    }
  }
}

}  // namespace
}  // namespace dqndock::nn
