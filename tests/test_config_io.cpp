// Tests for the INI config reader/writer.

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/config_io.hpp"

namespace dqndock::core {
namespace {

TEST(ConfigIoTest, RoundTripPaperConfig) {
  const DqnDockingConfig original = DqnDockingConfig::paper2bsm();
  std::stringstream ss;
  writeConfig(ss, original);
  const DqnDockingConfig parsed = readConfig(ss, DqnDockingConfig::scaled());

  EXPECT_EQ(parsed.scenario.receptorAtoms, original.scenario.receptorAtoms);
  EXPECT_EQ(parsed.scenario.ligandAtoms, original.scenario.ligandAtoms);
  EXPECT_EQ(parsed.scenario.receptorBondFeatures, original.scenario.receptorBondFeatures);
  EXPECT_DOUBLE_EQ(parsed.env.shiftStep, original.env.shiftStep);
  EXPECT_DOUBLE_EQ(parsed.env.rotateStepDeg, original.env.rotateStepDeg);
  EXPECT_EQ(parsed.env.maxSteps, original.env.maxSteps);
  EXPECT_DOUBLE_EQ(parsed.env.scoreFloor, original.env.scoreFloor);
  EXPECT_EQ(parsed.stateMode, original.stateMode);
  EXPECT_DOUBLE_EQ(parsed.agent.gamma, original.agent.gamma);
  EXPECT_DOUBLE_EQ(parsed.agent.learningRate, original.agent.learningRate);
  EXPECT_EQ(parsed.agent.optimizer, original.agent.optimizer);
  EXPECT_EQ(parsed.agent.hiddenSizes, original.agent.hiddenSizes);
  EXPECT_EQ(parsed.trainer.episodes, original.trainer.episodes);
  EXPECT_EQ(parsed.replayCapacity, original.replayCapacity);
  EXPECT_EQ(parsed.compactReplay, original.compactReplay);
  EXPECT_EQ(parsed.nStep, original.nStep);
  EXPECT_EQ(parsed.vectorEnvs, original.vectorEnvs);
}

TEST(ConfigIoTest, VectorEnvsRoundTrip) {
  DqnDockingConfig cfg = DqnDockingConfig::scaled();
  cfg.vectorEnvs = 32;
  std::stringstream ss;
  writeConfig(ss, cfg);
  EXPECT_NE(ss.str().find("vector_envs = 32"), std::string::npos);
  EXPECT_EQ(readConfig(ss).vectorEnvs, 32u);

  std::istringstream in("[trainer]\nvector_envs = 8\n");
  EXPECT_EQ(readConfig(in).vectorEnvs, 8u);
}

TEST(ConfigIoTest, PartialFileOverridesOnlyStatedKeys) {
  std::istringstream in(
      "[trainer]\n"
      "episodes = 99\n"
      "[agent]\n"
      "dueling = true\n");
  const DqnDockingConfig base = DqnDockingConfig::scaled();
  const DqnDockingConfig parsed = readConfig(in, base);
  EXPECT_EQ(parsed.trainer.episodes, 99u);
  EXPECT_TRUE(parsed.agent.dueling);
  // Untouched keys keep the base values.
  EXPECT_EQ(parsed.scenario.receptorAtoms, base.scenario.receptorAtoms);
  EXPECT_EQ(parsed.agent.hiddenSizes, base.agent.hiddenSizes);
}

TEST(ConfigIoTest, CommentsAndBlanksIgnored) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "; alt comment\n"
      "[replay]\n"
      "capacity = 1234\n");
  EXPECT_EQ(readConfig(in).replayCapacity, 1234u);
}

TEST(ConfigIoTest, UnknownKeyRejectedWithLineNumber) {
  std::istringstream in("[agent]\nlerning_rate = 0.1\n");
  try {
    readConfig(in);
    FAIL() << "expected error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("lerning_rate"), std::string::npos);
  }
}

TEST(ConfigIoTest, SyntaxErrorsRejected) {
  std::istringstream noEq("[env]\nmax_steps 7\n");
  EXPECT_THROW(readConfig(noEq), std::runtime_error);
  std::istringstream badSection("[env\nmax_steps = 7\n");
  EXPECT_THROW(readConfig(badSection), std::runtime_error);
  std::istringstream badNumber("[env]\nmax_steps = seven\n");
  EXPECT_THROW(readConfig(badNumber), std::runtime_error);
  std::istringstream badBool("[env]\nflexible = maybe\n");
  EXPECT_THROW(readConfig(badBool), std::runtime_error);
  std::istringstream badList("[agent]\nhidden = ,\n");
  EXPECT_THROW(readConfig(badList), std::runtime_error);
}

TEST(ConfigIoTest, HiddenListParsed) {
  std::istringstream in("[agent]\nhidden = 10, 20 ,30\n");
  const auto cfg = readConfig(in);
  ASSERT_EQ(cfg.agent.hiddenSizes.size(), 3u);
  EXPECT_EQ(cfg.agent.hiddenSizes[1], 20u);
}

TEST(ConfigIoTest, StateModeParsed) {
  std::istringstream in("[state]\nmode = full-with-bonds\n");
  EXPECT_EQ(readConfig(in).stateMode, StateMode::kFullWithBonds);
  std::istringstream bad("[state]\nmode = bogus\n");
  EXPECT_THROW(readConfig(bad), std::invalid_argument);
}

TEST(ConfigIoTest, MissingFileThrows) {
  EXPECT_THROW(readConfigFile("/nonexistent/cfg.ini"), std::runtime_error);
}

}  // namespace
}  // namespace dqndock::core
