// Tests for the work-sharing thread pool and its nested parallelFor.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/common/thread_pool.hpp"

namespace dqndock {
namespace {

TEST(ThreadPoolTest, DefaultHasAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPoolTest, ExplicitThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.threadCount(), 3u);
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.waitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(0, hits.size(), [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallelFor(5, 5, [&called](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallelFor(7, 8, [&calls](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 7u);
    EXPECT_EQ(hi, 8u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<double> data(100000);
  std::iota(data.begin(), data.end(), 0.0);
  std::atomic<long long> acc{0};
  pool.parallelFor(0, data.size(), [&](std::size_t lo, std::size_t hi) {
    long long part = 0;
    for (std::size_t i = lo; i < hi; ++i) part += static_cast<long long>(data[i]);
    acc.fetch_add(part);
  });
  const long long expected = 100000LL * 99999LL / 2;
  EXPECT_EQ(acc.load(), expected);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);  // few threads stress the helping path
  std::atomic<int> counter{0};
  pool.parallelFor(0, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      pool.parallelFor(0, 16, [&counter](std::size_t l2, std::size_t h2) {
        counter.fetch_add(static_cast<int>(h2 - l2));
      });
    }
  });
  EXPECT_EQ(counter.load(), 8 * 16);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPoolTest, ManyConcurrentParallelFors) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallelFor(0, 64, [&total](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));
    });
  }
  EXPECT_EQ(total.load(), 50 * 64);
}

}  // namespace
}  // namespace dqndock
