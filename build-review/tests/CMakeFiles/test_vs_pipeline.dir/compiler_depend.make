# Empty compiler generated dependencies file for test_vs_pipeline.
# This may be replaced when dependencies are built.
