file(REMOVE_RECURSE
  "CMakeFiles/test_vs_pipeline.dir/test_vs_pipeline.cpp.o"
  "CMakeFiles/test_vs_pipeline.dir/test_vs_pipeline.cpp.o.d"
  "test_vs_pipeline"
  "test_vs_pipeline.pdb"
  "test_vs_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vs_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
