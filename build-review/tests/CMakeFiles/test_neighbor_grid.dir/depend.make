# Empty dependencies file for test_neighbor_grid.
# This may be replaced when dependencies are built.
