file(REMOVE_RECURSE
  "CMakeFiles/test_neighbor_grid.dir/test_neighbor_grid.cpp.o"
  "CMakeFiles/test_neighbor_grid.dir/test_neighbor_grid.cpp.o.d"
  "test_neighbor_grid"
  "test_neighbor_grid.pdb"
  "test_neighbor_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neighbor_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
