file(REMOVE_RECURSE
  "CMakeFiles/test_c51.dir/test_c51.cpp.o"
  "CMakeFiles/test_c51.dir/test_c51.cpp.o.d"
  "test_c51"
  "test_c51.pdb"
  "test_c51[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_c51.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
