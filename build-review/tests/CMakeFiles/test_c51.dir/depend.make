# Empty dependencies file for test_c51.
# This may be replaced when dependencies are built.
