# Empty dependencies file for test_prioritized_replay.
# This may be replaced when dependencies are built.
