file(REMOVE_RECURSE
  "CMakeFiles/test_prioritized_replay.dir/test_prioritized_replay.cpp.o"
  "CMakeFiles/test_prioritized_replay.dir/test_prioritized_replay.cpp.o.d"
  "test_prioritized_replay"
  "test_prioritized_replay.pdb"
  "test_prioritized_replay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prioritized_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
