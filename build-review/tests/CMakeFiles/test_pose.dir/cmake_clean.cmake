file(REMOVE_RECURSE
  "CMakeFiles/test_pose.dir/test_pose.cpp.o"
  "CMakeFiles/test_pose.dir/test_pose.cpp.o.d"
  "test_pose"
  "test_pose.pdb"
  "test_pose[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
