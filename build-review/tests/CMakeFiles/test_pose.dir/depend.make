# Empty dependencies file for test_pose.
# This may be replaced when dependencies are built.
