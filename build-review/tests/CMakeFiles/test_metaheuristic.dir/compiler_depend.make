# Empty compiler generated dependencies file for test_metaheuristic.
# This may be replaced when dependencies are built.
