file(REMOVE_RECURSE
  "CMakeFiles/test_metaheuristic.dir/test_metaheuristic.cpp.o"
  "CMakeFiles/test_metaheuristic.dir/test_metaheuristic.cpp.o.d"
  "test_metaheuristic"
  "test_metaheuristic.pdb"
  "test_metaheuristic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metaheuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
