file(REMOVE_RECURSE
  "CMakeFiles/test_docking_env.dir/test_docking_env.cpp.o"
  "CMakeFiles/test_docking_env.dir/test_docking_env.cpp.o.d"
  "test_docking_env"
  "test_docking_env.pdb"
  "test_docking_env[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_docking_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
