# Empty dependencies file for test_docking_env.
# This may be replaced when dependencies are built.
