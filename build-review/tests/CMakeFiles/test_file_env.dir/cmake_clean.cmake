file(REMOVE_RECURSE
  "CMakeFiles/test_file_env.dir/test_file_env.cpp.o"
  "CMakeFiles/test_file_env.dir/test_file_env.cpp.o.d"
  "test_file_env"
  "test_file_env.pdb"
  "test_file_env[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_file_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
