# Empty compiler generated dependencies file for test_file_env.
# This may be replaced when dependencies are built.
