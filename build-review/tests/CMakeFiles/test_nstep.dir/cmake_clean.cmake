file(REMOVE_RECURSE
  "CMakeFiles/test_nstep.dir/test_nstep.cpp.o"
  "CMakeFiles/test_nstep.dir/test_nstep.cpp.o.d"
  "test_nstep"
  "test_nstep.pdb"
  "test_nstep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nstep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
