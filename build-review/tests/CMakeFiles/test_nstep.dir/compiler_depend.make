# Empty compiler generated dependencies file for test_nstep.
# This may be replaced when dependencies are built.
