file(REMOVE_RECURSE
  "CMakeFiles/test_reward_modes.dir/test_reward_modes.cpp.o"
  "CMakeFiles/test_reward_modes.dir/test_reward_modes.cpp.o.d"
  "test_reward_modes"
  "test_reward_modes.pdb"
  "test_reward_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reward_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
