# Empty dependencies file for test_reward_modes.
# This may be replaced when dependencies are built.
