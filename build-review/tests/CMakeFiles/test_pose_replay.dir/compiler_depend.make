# Empty compiler generated dependencies file for test_pose_replay.
# This may be replaced when dependencies are built.
