file(REMOVE_RECURSE
  "CMakeFiles/test_pose_replay.dir/test_pose_replay.cpp.o"
  "CMakeFiles/test_pose_replay.dir/test_pose_replay.cpp.o.d"
  "test_pose_replay"
  "test_pose_replay.pdb"
  "test_pose_replay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pose_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
