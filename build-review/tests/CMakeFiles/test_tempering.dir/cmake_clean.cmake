file(REMOVE_RECURSE
  "CMakeFiles/test_tempering.dir/test_tempering.cpp.o"
  "CMakeFiles/test_tempering.dir/test_tempering.cpp.o.d"
  "test_tempering"
  "test_tempering.pdb"
  "test_tempering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tempering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
