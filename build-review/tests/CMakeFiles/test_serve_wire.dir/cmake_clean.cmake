file(REMOVE_RECURSE
  "CMakeFiles/test_serve_wire.dir/test_serve_wire.cpp.o"
  "CMakeFiles/test_serve_wire.dir/test_serve_wire.cpp.o.d"
  "test_serve_wire"
  "test_serve_wire.pdb"
  "test_serve_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serve_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
