# Empty dependencies file for test_serve_wire.
# This may be replaced when dependencies are built.
