# Empty dependencies file for test_kabsch.
# This may be replaced when dependencies are built.
