file(REMOVE_RECURSE
  "CMakeFiles/test_kabsch.dir/test_kabsch.cpp.o"
  "CMakeFiles/test_kabsch.dir/test_kabsch.cpp.o.d"
  "test_kabsch"
  "test_kabsch.pdb"
  "test_kabsch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kabsch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
