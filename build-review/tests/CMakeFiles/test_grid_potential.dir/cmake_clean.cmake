file(REMOVE_RECURSE
  "CMakeFiles/test_grid_potential.dir/test_grid_potential.cpp.o"
  "CMakeFiles/test_grid_potential.dir/test_grid_potential.cpp.o.d"
  "test_grid_potential"
  "test_grid_potential.pdb"
  "test_grid_potential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
