# Empty compiler generated dependencies file for test_grid_potential.
# This may be replaced when dependencies are built.
