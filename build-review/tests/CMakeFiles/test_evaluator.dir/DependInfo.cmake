
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_evaluator.cpp" "tests/CMakeFiles/test_evaluator.dir/test_evaluator.cpp.o" "gcc" "tests/CMakeFiles/test_evaluator.dir/test_evaluator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/serve/CMakeFiles/dqndock_serve.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/dqndock_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rl/CMakeFiles/dqndock_rl.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/dqndock_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/metadock/CMakeFiles/dqndock_metadock.dir/DependInfo.cmake"
  "/root/repo/build-review/src/chem/CMakeFiles/dqndock_chem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/dqndock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
