file(REMOVE_RECURSE
  "CMakeFiles/test_corridor.dir/test_corridor.cpp.o"
  "CMakeFiles/test_corridor.dir/test_corridor.cpp.o.d"
  "test_corridor"
  "test_corridor.pdb"
  "test_corridor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corridor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
