# Empty compiler generated dependencies file for test_corridor.
# This may be replaced when dependencies are built.
