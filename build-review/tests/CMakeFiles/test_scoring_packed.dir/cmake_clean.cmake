file(REMOVE_RECURSE
  "CMakeFiles/test_scoring_packed.dir/test_scoring_packed.cpp.o"
  "CMakeFiles/test_scoring_packed.dir/test_scoring_packed.cpp.o.d"
  "test_scoring_packed"
  "test_scoring_packed.pdb"
  "test_scoring_packed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scoring_packed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
