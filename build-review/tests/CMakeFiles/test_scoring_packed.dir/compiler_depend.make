# Empty compiler generated dependencies file for test_scoring_packed.
# This may be replaced when dependencies are built.
