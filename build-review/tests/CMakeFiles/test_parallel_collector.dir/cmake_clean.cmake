file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_collector.dir/test_parallel_collector.cpp.o"
  "CMakeFiles/test_parallel_collector.dir/test_parallel_collector.cpp.o.d"
  "test_parallel_collector"
  "test_parallel_collector.pdb"
  "test_parallel_collector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
