# Empty dependencies file for test_smiles.
# This may be replaced when dependencies are built.
