file(REMOVE_RECURSE
  "CMakeFiles/test_smiles.dir/test_smiles.cpp.o"
  "CMakeFiles/test_smiles.dir/test_smiles.cpp.o.d"
  "test_smiles"
  "test_smiles.pdb"
  "test_smiles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
