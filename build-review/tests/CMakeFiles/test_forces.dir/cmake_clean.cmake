file(REMOVE_RECURSE
  "CMakeFiles/test_forces.dir/test_forces.cpp.o"
  "CMakeFiles/test_forces.dir/test_forces.cpp.o.d"
  "test_forces"
  "test_forces.pdb"
  "test_forces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
