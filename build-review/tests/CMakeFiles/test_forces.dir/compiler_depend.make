# Empty compiler generated dependencies file for test_forces.
# This may be replaced when dependencies are built.
