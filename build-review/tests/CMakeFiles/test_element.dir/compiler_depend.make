# Empty compiler generated dependencies file for test_element.
# This may be replaced when dependencies are built.
