file(REMOVE_RECURSE
  "CMakeFiles/test_element.dir/test_element.cpp.o"
  "CMakeFiles/test_element.dir/test_element.cpp.o.d"
  "test_element"
  "test_element.pdb"
  "test_element[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_element.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
