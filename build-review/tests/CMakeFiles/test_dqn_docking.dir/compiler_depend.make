# Empty compiler generated dependencies file for test_dqn_docking.
# This may be replaced when dependencies are built.
