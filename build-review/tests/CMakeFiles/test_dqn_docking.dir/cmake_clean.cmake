file(REMOVE_RECURSE
  "CMakeFiles/test_dqn_docking.dir/test_dqn_docking.cpp.o"
  "CMakeFiles/test_dqn_docking.dir/test_dqn_docking.cpp.o.d"
  "test_dqn_docking"
  "test_dqn_docking.pdb"
  "test_dqn_docking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dqn_docking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
