file(REMOVE_RECURSE
  "CMakeFiles/test_mol2.dir/test_mol2.cpp.o"
  "CMakeFiles/test_mol2.dir/test_mol2.cpp.o.d"
  "test_mol2"
  "test_mol2.pdb"
  "test_mol2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mol2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
