# Empty dependencies file for test_mol2.
# This may be replaced when dependencies are built.
