# Empty dependencies file for test_rl_extensions.
# This may be replaced when dependencies are built.
