file(REMOVE_RECURSE
  "CMakeFiles/test_rl_extensions.dir/test_rl_extensions.cpp.o"
  "CMakeFiles/test_rl_extensions.dir/test_rl_extensions.cpp.o.d"
  "test_rl_extensions"
  "test_rl_extensions.pdb"
  "test_rl_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
