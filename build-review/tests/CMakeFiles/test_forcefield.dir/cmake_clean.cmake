file(REMOVE_RECURSE
  "CMakeFiles/test_forcefield.dir/test_forcefield.cpp.o"
  "CMakeFiles/test_forcefield.dir/test_forcefield.cpp.o.d"
  "test_forcefield"
  "test_forcefield.pdb"
  "test_forcefield[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forcefield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
