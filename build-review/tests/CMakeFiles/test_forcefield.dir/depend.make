# Empty dependencies file for test_forcefield.
# This may be replaced when dependencies are built.
