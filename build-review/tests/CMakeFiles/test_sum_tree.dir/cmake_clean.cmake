file(REMOVE_RECURSE
  "CMakeFiles/test_sum_tree.dir/test_sum_tree.cpp.o"
  "CMakeFiles/test_sum_tree.dir/test_sum_tree.cpp.o.d"
  "test_sum_tree"
  "test_sum_tree.pdb"
  "test_sum_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sum_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
