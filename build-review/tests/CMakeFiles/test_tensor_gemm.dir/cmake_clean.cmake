file(REMOVE_RECURSE
  "CMakeFiles/test_tensor_gemm.dir/test_tensor_gemm.cpp.o"
  "CMakeFiles/test_tensor_gemm.dir/test_tensor_gemm.cpp.o.d"
  "test_tensor_gemm"
  "test_tensor_gemm.pdb"
  "test_tensor_gemm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
