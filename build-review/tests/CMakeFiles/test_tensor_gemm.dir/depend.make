# Empty dependencies file for test_tensor_gemm.
# This may be replaced when dependencies are built.
