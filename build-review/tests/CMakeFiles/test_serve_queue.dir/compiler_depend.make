# Empty compiler generated dependencies file for test_serve_queue.
# This may be replaced when dependencies are built.
