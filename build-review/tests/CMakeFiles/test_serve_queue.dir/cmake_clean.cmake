file(REMOVE_RECURSE
  "CMakeFiles/test_serve_queue.dir/test_serve_queue.cpp.o"
  "CMakeFiles/test_serve_queue.dir/test_serve_queue.cpp.o.d"
  "test_serve_queue"
  "test_serve_queue.pdb"
  "test_serve_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serve_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
