file(REMOVE_RECURSE
  "CMakeFiles/test_state_encoder.dir/test_state_encoder.cpp.o"
  "CMakeFiles/test_state_encoder.dir/test_state_encoder.cpp.o.d"
  "test_state_encoder"
  "test_state_encoder.pdb"
  "test_state_encoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
