# Empty dependencies file for test_state_encoder.
# This may be replaced when dependencies are built.
