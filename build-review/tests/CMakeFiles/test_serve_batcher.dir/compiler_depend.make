# Empty compiler generated dependencies file for test_serve_batcher.
# This may be replaced when dependencies are built.
