file(REMOVE_RECURSE
  "CMakeFiles/test_serve_batcher.dir/test_serve_batcher.cpp.o"
  "CMakeFiles/test_serve_batcher.dir/test_serve_batcher.cpp.o.d"
  "test_serve_batcher"
  "test_serve_batcher.pdb"
  "test_serve_batcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serve_batcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
