# Empty compiler generated dependencies file for test_ligand_model.
# This may be replaced when dependencies are built.
