file(REMOVE_RECURSE
  "CMakeFiles/test_ligand_model.dir/test_ligand_model.cpp.o"
  "CMakeFiles/test_ligand_model.dir/test_ligand_model.cpp.o.d"
  "test_ligand_model"
  "test_ligand_model.pdb"
  "test_ligand_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ligand_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
