# Empty compiler generated dependencies file for test_surface_spots.
# This may be replaced when dependencies are built.
