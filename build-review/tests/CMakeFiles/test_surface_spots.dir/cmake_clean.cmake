file(REMOVE_RECURSE
  "CMakeFiles/test_surface_spots.dir/test_surface_spots.cpp.o"
  "CMakeFiles/test_surface_spots.dir/test_surface_spots.cpp.o.d"
  "test_surface_spots"
  "test_surface_spots.pdb"
  "test_surface_spots[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surface_spots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
