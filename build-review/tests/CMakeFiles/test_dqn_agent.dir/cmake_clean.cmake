file(REMOVE_RECURSE
  "CMakeFiles/test_dqn_agent.dir/test_dqn_agent.cpp.o"
  "CMakeFiles/test_dqn_agent.dir/test_dqn_agent.cpp.o.d"
  "test_dqn_agent"
  "test_dqn_agent.pdb"
  "test_dqn_agent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dqn_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
