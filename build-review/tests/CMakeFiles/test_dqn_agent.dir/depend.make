# Empty dependencies file for test_dqn_agent.
# This may be replaced when dependencies are built.
