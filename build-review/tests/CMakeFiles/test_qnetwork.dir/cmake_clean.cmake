file(REMOVE_RECURSE
  "CMakeFiles/test_qnetwork.dir/test_qnetwork.cpp.o"
  "CMakeFiles/test_qnetwork.dir/test_qnetwork.cpp.o.d"
  "test_qnetwork"
  "test_qnetwork.pdb"
  "test_qnetwork[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qnetwork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
