# Empty dependencies file for test_qnetwork.
# This may be replaced when dependencies are built.
