file(REMOVE_RECURSE
  "CMakeFiles/test_common_util.dir/test_common_util.cpp.o"
  "CMakeFiles/test_common_util.dir/test_common_util.cpp.o.d"
  "test_common_util"
  "test_common_util.pdb"
  "test_common_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
