file(REMOVE_RECURSE
  "CMakeFiles/test_tabular_q.dir/test_tabular_q.cpp.o"
  "CMakeFiles/test_tabular_q.dir/test_tabular_q.cpp.o.d"
  "test_tabular_q"
  "test_tabular_q.pdb"
  "test_tabular_q[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tabular_q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
