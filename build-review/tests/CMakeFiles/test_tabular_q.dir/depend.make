# Empty dependencies file for test_tabular_q.
# This may be replaced when dependencies are built.
