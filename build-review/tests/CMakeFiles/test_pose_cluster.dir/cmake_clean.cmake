file(REMOVE_RECURSE
  "CMakeFiles/test_pose_cluster.dir/test_pose_cluster.cpp.o"
  "CMakeFiles/test_pose_cluster.dir/test_pose_cluster.cpp.o.d"
  "test_pose_cluster"
  "test_pose_cluster.pdb"
  "test_pose_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pose_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
