# Empty dependencies file for test_pose_cluster.
# This may be replaced when dependencies are built.
