file(REMOVE_RECURSE
  "CMakeFiles/test_landscape.dir/test_landscape.cpp.o"
  "CMakeFiles/test_landscape.dir/test_landscape.cpp.o.d"
  "test_landscape"
  "test_landscape.pdb"
  "test_landscape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
