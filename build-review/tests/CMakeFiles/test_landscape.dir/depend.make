# Empty dependencies file for test_landscape.
# This may be replaced when dependencies are built.
