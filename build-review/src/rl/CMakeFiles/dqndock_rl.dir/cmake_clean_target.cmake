file(REMOVE_RECURSE
  "libdqndock_rl.a"
)
