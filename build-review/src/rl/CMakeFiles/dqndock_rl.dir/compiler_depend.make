# Empty compiler generated dependencies file for dqndock_rl.
# This may be replaced when dependencies are built.
