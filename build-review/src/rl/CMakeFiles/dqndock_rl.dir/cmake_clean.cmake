file(REMOVE_RECURSE
  "CMakeFiles/dqndock_rl.dir/c51_agent.cpp.o"
  "CMakeFiles/dqndock_rl.dir/c51_agent.cpp.o.d"
  "CMakeFiles/dqndock_rl.dir/checkpoint.cpp.o"
  "CMakeFiles/dqndock_rl.dir/checkpoint.cpp.o.d"
  "CMakeFiles/dqndock_rl.dir/corridor_env.cpp.o"
  "CMakeFiles/dqndock_rl.dir/corridor_env.cpp.o.d"
  "CMakeFiles/dqndock_rl.dir/dqn_agent.cpp.o"
  "CMakeFiles/dqndock_rl.dir/dqn_agent.cpp.o.d"
  "CMakeFiles/dqndock_rl.dir/metrics.cpp.o"
  "CMakeFiles/dqndock_rl.dir/metrics.cpp.o.d"
  "CMakeFiles/dqndock_rl.dir/nstep.cpp.o"
  "CMakeFiles/dqndock_rl.dir/nstep.cpp.o.d"
  "CMakeFiles/dqndock_rl.dir/parallel_collector.cpp.o"
  "CMakeFiles/dqndock_rl.dir/parallel_collector.cpp.o.d"
  "CMakeFiles/dqndock_rl.dir/prioritized_replay.cpp.o"
  "CMakeFiles/dqndock_rl.dir/prioritized_replay.cpp.o.d"
  "CMakeFiles/dqndock_rl.dir/qnetwork.cpp.o"
  "CMakeFiles/dqndock_rl.dir/qnetwork.cpp.o.d"
  "CMakeFiles/dqndock_rl.dir/replay_buffer.cpp.o"
  "CMakeFiles/dqndock_rl.dir/replay_buffer.cpp.o.d"
  "CMakeFiles/dqndock_rl.dir/tabular_q.cpp.o"
  "CMakeFiles/dqndock_rl.dir/tabular_q.cpp.o.d"
  "CMakeFiles/dqndock_rl.dir/trainer.cpp.o"
  "CMakeFiles/dqndock_rl.dir/trainer.cpp.o.d"
  "libdqndock_rl.a"
  "libdqndock_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqndock_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
