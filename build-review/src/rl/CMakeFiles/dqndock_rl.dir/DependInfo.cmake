
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/c51_agent.cpp" "src/rl/CMakeFiles/dqndock_rl.dir/c51_agent.cpp.o" "gcc" "src/rl/CMakeFiles/dqndock_rl.dir/c51_agent.cpp.o.d"
  "/root/repo/src/rl/checkpoint.cpp" "src/rl/CMakeFiles/dqndock_rl.dir/checkpoint.cpp.o" "gcc" "src/rl/CMakeFiles/dqndock_rl.dir/checkpoint.cpp.o.d"
  "/root/repo/src/rl/corridor_env.cpp" "src/rl/CMakeFiles/dqndock_rl.dir/corridor_env.cpp.o" "gcc" "src/rl/CMakeFiles/dqndock_rl.dir/corridor_env.cpp.o.d"
  "/root/repo/src/rl/dqn_agent.cpp" "src/rl/CMakeFiles/dqndock_rl.dir/dqn_agent.cpp.o" "gcc" "src/rl/CMakeFiles/dqndock_rl.dir/dqn_agent.cpp.o.d"
  "/root/repo/src/rl/metrics.cpp" "src/rl/CMakeFiles/dqndock_rl.dir/metrics.cpp.o" "gcc" "src/rl/CMakeFiles/dqndock_rl.dir/metrics.cpp.o.d"
  "/root/repo/src/rl/nstep.cpp" "src/rl/CMakeFiles/dqndock_rl.dir/nstep.cpp.o" "gcc" "src/rl/CMakeFiles/dqndock_rl.dir/nstep.cpp.o.d"
  "/root/repo/src/rl/parallel_collector.cpp" "src/rl/CMakeFiles/dqndock_rl.dir/parallel_collector.cpp.o" "gcc" "src/rl/CMakeFiles/dqndock_rl.dir/parallel_collector.cpp.o.d"
  "/root/repo/src/rl/prioritized_replay.cpp" "src/rl/CMakeFiles/dqndock_rl.dir/prioritized_replay.cpp.o" "gcc" "src/rl/CMakeFiles/dqndock_rl.dir/prioritized_replay.cpp.o.d"
  "/root/repo/src/rl/qnetwork.cpp" "src/rl/CMakeFiles/dqndock_rl.dir/qnetwork.cpp.o" "gcc" "src/rl/CMakeFiles/dqndock_rl.dir/qnetwork.cpp.o.d"
  "/root/repo/src/rl/replay_buffer.cpp" "src/rl/CMakeFiles/dqndock_rl.dir/replay_buffer.cpp.o" "gcc" "src/rl/CMakeFiles/dqndock_rl.dir/replay_buffer.cpp.o.d"
  "/root/repo/src/rl/tabular_q.cpp" "src/rl/CMakeFiles/dqndock_rl.dir/tabular_q.cpp.o" "gcc" "src/rl/CMakeFiles/dqndock_rl.dir/tabular_q.cpp.o.d"
  "/root/repo/src/rl/trainer.cpp" "src/rl/CMakeFiles/dqndock_rl.dir/trainer.cpp.o" "gcc" "src/rl/CMakeFiles/dqndock_rl.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/nn/CMakeFiles/dqndock_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/dqndock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
