file(REMOVE_RECURSE
  "CMakeFiles/dqndock_chem.dir/element.cpp.o"
  "CMakeFiles/dqndock_chem.dir/element.cpp.o.d"
  "CMakeFiles/dqndock_chem.dir/forcefield.cpp.o"
  "CMakeFiles/dqndock_chem.dir/forcefield.cpp.o.d"
  "CMakeFiles/dqndock_chem.dir/kabsch.cpp.o"
  "CMakeFiles/dqndock_chem.dir/kabsch.cpp.o.d"
  "CMakeFiles/dqndock_chem.dir/mol2_io.cpp.o"
  "CMakeFiles/dqndock_chem.dir/mol2_io.cpp.o.d"
  "CMakeFiles/dqndock_chem.dir/molecule.cpp.o"
  "CMakeFiles/dqndock_chem.dir/molecule.cpp.o.d"
  "CMakeFiles/dqndock_chem.dir/pdb_io.cpp.o"
  "CMakeFiles/dqndock_chem.dir/pdb_io.cpp.o.d"
  "CMakeFiles/dqndock_chem.dir/protein.cpp.o"
  "CMakeFiles/dqndock_chem.dir/protein.cpp.o.d"
  "CMakeFiles/dqndock_chem.dir/smiles.cpp.o"
  "CMakeFiles/dqndock_chem.dir/smiles.cpp.o.d"
  "CMakeFiles/dqndock_chem.dir/synthetic.cpp.o"
  "CMakeFiles/dqndock_chem.dir/synthetic.cpp.o.d"
  "CMakeFiles/dqndock_chem.dir/topology.cpp.o"
  "CMakeFiles/dqndock_chem.dir/topology.cpp.o.d"
  "CMakeFiles/dqndock_chem.dir/xyz_io.cpp.o"
  "CMakeFiles/dqndock_chem.dir/xyz_io.cpp.o.d"
  "libdqndock_chem.a"
  "libdqndock_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqndock_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
