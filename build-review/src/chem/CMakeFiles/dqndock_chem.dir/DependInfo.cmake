
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chem/element.cpp" "src/chem/CMakeFiles/dqndock_chem.dir/element.cpp.o" "gcc" "src/chem/CMakeFiles/dqndock_chem.dir/element.cpp.o.d"
  "/root/repo/src/chem/forcefield.cpp" "src/chem/CMakeFiles/dqndock_chem.dir/forcefield.cpp.o" "gcc" "src/chem/CMakeFiles/dqndock_chem.dir/forcefield.cpp.o.d"
  "/root/repo/src/chem/kabsch.cpp" "src/chem/CMakeFiles/dqndock_chem.dir/kabsch.cpp.o" "gcc" "src/chem/CMakeFiles/dqndock_chem.dir/kabsch.cpp.o.d"
  "/root/repo/src/chem/mol2_io.cpp" "src/chem/CMakeFiles/dqndock_chem.dir/mol2_io.cpp.o" "gcc" "src/chem/CMakeFiles/dqndock_chem.dir/mol2_io.cpp.o.d"
  "/root/repo/src/chem/molecule.cpp" "src/chem/CMakeFiles/dqndock_chem.dir/molecule.cpp.o" "gcc" "src/chem/CMakeFiles/dqndock_chem.dir/molecule.cpp.o.d"
  "/root/repo/src/chem/pdb_io.cpp" "src/chem/CMakeFiles/dqndock_chem.dir/pdb_io.cpp.o" "gcc" "src/chem/CMakeFiles/dqndock_chem.dir/pdb_io.cpp.o.d"
  "/root/repo/src/chem/protein.cpp" "src/chem/CMakeFiles/dqndock_chem.dir/protein.cpp.o" "gcc" "src/chem/CMakeFiles/dqndock_chem.dir/protein.cpp.o.d"
  "/root/repo/src/chem/smiles.cpp" "src/chem/CMakeFiles/dqndock_chem.dir/smiles.cpp.o" "gcc" "src/chem/CMakeFiles/dqndock_chem.dir/smiles.cpp.o.d"
  "/root/repo/src/chem/synthetic.cpp" "src/chem/CMakeFiles/dqndock_chem.dir/synthetic.cpp.o" "gcc" "src/chem/CMakeFiles/dqndock_chem.dir/synthetic.cpp.o.d"
  "/root/repo/src/chem/topology.cpp" "src/chem/CMakeFiles/dqndock_chem.dir/topology.cpp.o" "gcc" "src/chem/CMakeFiles/dqndock_chem.dir/topology.cpp.o.d"
  "/root/repo/src/chem/xyz_io.cpp" "src/chem/CMakeFiles/dqndock_chem.dir/xyz_io.cpp.o" "gcc" "src/chem/CMakeFiles/dqndock_chem.dir/xyz_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/dqndock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
