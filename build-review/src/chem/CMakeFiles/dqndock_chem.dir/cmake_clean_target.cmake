file(REMOVE_RECURSE
  "libdqndock_chem.a"
)
