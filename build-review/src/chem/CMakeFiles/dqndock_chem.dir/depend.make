# Empty dependencies file for dqndock_chem.
# This may be replaced when dependencies are built.
