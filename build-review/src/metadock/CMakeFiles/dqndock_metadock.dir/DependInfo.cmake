
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metadock/docking_env.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/docking_env.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/docking_env.cpp.o.d"
  "/root/repo/src/metadock/evaluator.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/evaluator.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/evaluator.cpp.o.d"
  "/root/repo/src/metadock/file_env.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/file_env.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/file_env.cpp.o.d"
  "/root/repo/src/metadock/forces.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/forces.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/forces.cpp.o.d"
  "/root/repo/src/metadock/grid_potential.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/grid_potential.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/grid_potential.cpp.o.d"
  "/root/repo/src/metadock/landscape.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/landscape.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/landscape.cpp.o.d"
  "/root/repo/src/metadock/ligand_model.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/ligand_model.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/ligand_model.cpp.o.d"
  "/root/repo/src/metadock/metaheuristic.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/metaheuristic.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/metaheuristic.cpp.o.d"
  "/root/repo/src/metadock/neighbor_grid.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/neighbor_grid.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/neighbor_grid.cpp.o.d"
  "/root/repo/src/metadock/pose.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/pose.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/pose.cpp.o.d"
  "/root/repo/src/metadock/pose_cluster.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/pose_cluster.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/pose_cluster.cpp.o.d"
  "/root/repo/src/metadock/receptor_model.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/receptor_model.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/receptor_model.cpp.o.d"
  "/root/repo/src/metadock/scoring.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/scoring.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/scoring.cpp.o.d"
  "/root/repo/src/metadock/surface_spots.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/surface_spots.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/surface_spots.cpp.o.d"
  "/root/repo/src/metadock/tempering.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/tempering.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/tempering.cpp.o.d"
  "/root/repo/src/metadock/trajectory.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/trajectory.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/trajectory.cpp.o.d"
  "/root/repo/src/metadock/vs_pipeline.cpp" "src/metadock/CMakeFiles/dqndock_metadock.dir/vs_pipeline.cpp.o" "gcc" "src/metadock/CMakeFiles/dqndock_metadock.dir/vs_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/chem/CMakeFiles/dqndock_chem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/dqndock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
