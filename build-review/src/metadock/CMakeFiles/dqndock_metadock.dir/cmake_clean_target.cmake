file(REMOVE_RECURSE
  "libdqndock_metadock.a"
)
