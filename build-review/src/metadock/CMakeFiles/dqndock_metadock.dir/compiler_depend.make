# Empty compiler generated dependencies file for dqndock_metadock.
# This may be replaced when dependencies are built.
