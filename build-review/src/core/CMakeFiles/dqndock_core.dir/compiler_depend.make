# Empty compiler generated dependencies file for dqndock_core.
# This may be replaced when dependencies are built.
