file(REMOVE_RECURSE
  "libdqndock_core.a"
)
