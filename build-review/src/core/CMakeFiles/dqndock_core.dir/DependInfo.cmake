
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/dqndock_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/dqndock_core.dir/config.cpp.o.d"
  "/root/repo/src/core/config_io.cpp" "src/core/CMakeFiles/dqndock_core.dir/config_io.cpp.o" "gcc" "src/core/CMakeFiles/dqndock_core.dir/config_io.cpp.o.d"
  "/root/repo/src/core/docking_task.cpp" "src/core/CMakeFiles/dqndock_core.dir/docking_task.cpp.o" "gcc" "src/core/CMakeFiles/dqndock_core.dir/docking_task.cpp.o.d"
  "/root/repo/src/core/dqn_docking.cpp" "src/core/CMakeFiles/dqndock_core.dir/dqn_docking.cpp.o" "gcc" "src/core/CMakeFiles/dqndock_core.dir/dqn_docking.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/dqndock_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/dqndock_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/pose_replay.cpp" "src/core/CMakeFiles/dqndock_core.dir/pose_replay.cpp.o" "gcc" "src/core/CMakeFiles/dqndock_core.dir/pose_replay.cpp.o.d"
  "/root/repo/src/core/state_encoder.cpp" "src/core/CMakeFiles/dqndock_core.dir/state_encoder.cpp.o" "gcc" "src/core/CMakeFiles/dqndock_core.dir/state_encoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/metadock/CMakeFiles/dqndock_metadock.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rl/CMakeFiles/dqndock_rl.dir/DependInfo.cmake"
  "/root/repo/build-review/src/chem/CMakeFiles/dqndock_chem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/dqndock_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/dqndock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
