file(REMOVE_RECURSE
  "CMakeFiles/dqndock_core.dir/config.cpp.o"
  "CMakeFiles/dqndock_core.dir/config.cpp.o.d"
  "CMakeFiles/dqndock_core.dir/config_io.cpp.o"
  "CMakeFiles/dqndock_core.dir/config_io.cpp.o.d"
  "CMakeFiles/dqndock_core.dir/docking_task.cpp.o"
  "CMakeFiles/dqndock_core.dir/docking_task.cpp.o.d"
  "CMakeFiles/dqndock_core.dir/dqn_docking.cpp.o"
  "CMakeFiles/dqndock_core.dir/dqn_docking.cpp.o.d"
  "CMakeFiles/dqndock_core.dir/evaluation.cpp.o"
  "CMakeFiles/dqndock_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/dqndock_core.dir/pose_replay.cpp.o"
  "CMakeFiles/dqndock_core.dir/pose_replay.cpp.o.d"
  "CMakeFiles/dqndock_core.dir/state_encoder.cpp.o"
  "CMakeFiles/dqndock_core.dir/state_encoder.cpp.o.d"
  "libdqndock_core.a"
  "libdqndock_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqndock_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
