# Empty dependencies file for dqndock_nn.
# This may be replaced when dependencies are built.
