
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gemm.cpp" "src/nn/CMakeFiles/dqndock_nn.dir/gemm.cpp.o" "gcc" "src/nn/CMakeFiles/dqndock_nn.dir/gemm.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/nn/CMakeFiles/dqndock_nn.dir/mlp.cpp.o" "gcc" "src/nn/CMakeFiles/dqndock_nn.dir/mlp.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/dqndock_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/dqndock_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/dqndock_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/dqndock_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/dqndock_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/dqndock_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/dqndock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
