file(REMOVE_RECURSE
  "CMakeFiles/dqndock_nn.dir/gemm.cpp.o"
  "CMakeFiles/dqndock_nn.dir/gemm.cpp.o.d"
  "CMakeFiles/dqndock_nn.dir/mlp.cpp.o"
  "CMakeFiles/dqndock_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/dqndock_nn.dir/optimizer.cpp.o"
  "CMakeFiles/dqndock_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/dqndock_nn.dir/serialize.cpp.o"
  "CMakeFiles/dqndock_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/dqndock_nn.dir/tensor.cpp.o"
  "CMakeFiles/dqndock_nn.dir/tensor.cpp.o.d"
  "libdqndock_nn.a"
  "libdqndock_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqndock_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
