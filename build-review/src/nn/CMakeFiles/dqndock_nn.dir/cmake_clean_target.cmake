file(REMOVE_RECURSE
  "libdqndock_nn.a"
)
