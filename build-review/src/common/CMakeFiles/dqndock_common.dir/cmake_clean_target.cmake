file(REMOVE_RECURSE
  "libdqndock_common.a"
)
