# Empty dependencies file for dqndock_common.
# This may be replaced when dependencies are built.
