file(REMOVE_RECURSE
  "CMakeFiles/dqndock_common.dir/cli.cpp.o"
  "CMakeFiles/dqndock_common.dir/cli.cpp.o.d"
  "CMakeFiles/dqndock_common.dir/csv.cpp.o"
  "CMakeFiles/dqndock_common.dir/csv.cpp.o.d"
  "CMakeFiles/dqndock_common.dir/logging.cpp.o"
  "CMakeFiles/dqndock_common.dir/logging.cpp.o.d"
  "CMakeFiles/dqndock_common.dir/thread_pool.cpp.o"
  "CMakeFiles/dqndock_common.dir/thread_pool.cpp.o.d"
  "libdqndock_common.a"
  "libdqndock_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqndock_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
