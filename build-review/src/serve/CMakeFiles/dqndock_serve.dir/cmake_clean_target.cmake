file(REMOVE_RECURSE
  "libdqndock_serve.a"
)
