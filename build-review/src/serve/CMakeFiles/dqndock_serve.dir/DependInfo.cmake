
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serve/docking_service.cpp" "src/serve/CMakeFiles/dqndock_serve.dir/docking_service.cpp.o" "gcc" "src/serve/CMakeFiles/dqndock_serve.dir/docking_service.cpp.o.d"
  "/root/repo/src/serve/inference_batcher.cpp" "src/serve/CMakeFiles/dqndock_serve.dir/inference_batcher.cpp.o" "gcc" "src/serve/CMakeFiles/dqndock_serve.dir/inference_batcher.cpp.o.d"
  "/root/repo/src/serve/job_queue.cpp" "src/serve/CMakeFiles/dqndock_serve.dir/job_queue.cpp.o" "gcc" "src/serve/CMakeFiles/dqndock_serve.dir/job_queue.cpp.o.d"
  "/root/repo/src/serve/model_registry.cpp" "src/serve/CMakeFiles/dqndock_serve.dir/model_registry.cpp.o" "gcc" "src/serve/CMakeFiles/dqndock_serve.dir/model_registry.cpp.o.d"
  "/root/repo/src/serve/tcp.cpp" "src/serve/CMakeFiles/dqndock_serve.dir/tcp.cpp.o" "gcc" "src/serve/CMakeFiles/dqndock_serve.dir/tcp.cpp.o.d"
  "/root/repo/src/serve/wire.cpp" "src/serve/CMakeFiles/dqndock_serve.dir/wire.cpp.o" "gcc" "src/serve/CMakeFiles/dqndock_serve.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/dqndock_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/metadock/CMakeFiles/dqndock_metadock.dir/DependInfo.cmake"
  "/root/repo/build-review/src/chem/CMakeFiles/dqndock_chem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rl/CMakeFiles/dqndock_rl.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/dqndock_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/dqndock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
