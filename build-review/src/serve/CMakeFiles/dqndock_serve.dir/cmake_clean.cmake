file(REMOVE_RECURSE
  "CMakeFiles/dqndock_serve.dir/docking_service.cpp.o"
  "CMakeFiles/dqndock_serve.dir/docking_service.cpp.o.d"
  "CMakeFiles/dqndock_serve.dir/inference_batcher.cpp.o"
  "CMakeFiles/dqndock_serve.dir/inference_batcher.cpp.o.d"
  "CMakeFiles/dqndock_serve.dir/job_queue.cpp.o"
  "CMakeFiles/dqndock_serve.dir/job_queue.cpp.o.d"
  "CMakeFiles/dqndock_serve.dir/model_registry.cpp.o"
  "CMakeFiles/dqndock_serve.dir/model_registry.cpp.o.d"
  "CMakeFiles/dqndock_serve.dir/tcp.cpp.o"
  "CMakeFiles/dqndock_serve.dir/tcp.cpp.o.d"
  "CMakeFiles/dqndock_serve.dir/wire.cpp.o"
  "CMakeFiles/dqndock_serve.dir/wire.cpp.o.d"
  "libdqndock_serve.a"
  "libdqndock_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqndock_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
