# Empty dependencies file for dqndock_serve.
# This may be replaced when dependencies are built.
