file(REMOVE_RECURSE
  "../bench/bench_serve"
  "../bench/bench_serve.pdb"
  "CMakeFiles/bench_serve.dir/bench_serve.cpp.o"
  "CMakeFiles/bench_serve.dir/bench_serve.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
