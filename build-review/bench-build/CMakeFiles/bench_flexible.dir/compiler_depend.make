# Empty compiler generated dependencies file for bench_flexible.
# This may be replaced when dependencies are built.
