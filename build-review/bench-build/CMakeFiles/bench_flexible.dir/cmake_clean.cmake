file(REMOVE_RECURSE
  "../bench/bench_flexible"
  "../bench/bench_flexible.pdb"
  "CMakeFiles/bench_flexible.dir/bench_flexible.cpp.o"
  "CMakeFiles/bench_flexible.dir/bench_flexible.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flexible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
