# Empty dependencies file for bench_fig4_training.
# This may be replaced when dependencies are built.
