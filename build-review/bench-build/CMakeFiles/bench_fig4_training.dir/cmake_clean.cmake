file(REMOVE_RECURSE
  "../bench/bench_fig4_training"
  "../bench/bench_fig4_training.pdb"
  "CMakeFiles/bench_fig4_training.dir/bench_fig4_training.cpp.o"
  "CMakeFiles/bench_fig4_training.dir/bench_fig4_training.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
