# Empty dependencies file for bench_grid_potential.
# This may be replaced when dependencies are built.
