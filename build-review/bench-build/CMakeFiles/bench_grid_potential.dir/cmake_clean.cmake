file(REMOVE_RECURSE
  "../bench/bench_grid_potential"
  "../bench/bench_grid_potential.pdb"
  "CMakeFiles/bench_grid_potential.dir/bench_grid_potential.cpp.o"
  "CMakeFiles/bench_grid_potential.dir/bench_grid_potential.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grid_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
