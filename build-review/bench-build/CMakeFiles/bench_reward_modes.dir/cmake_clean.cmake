file(REMOVE_RECURSE
  "../bench/bench_reward_modes"
  "../bench/bench_reward_modes.pdb"
  "CMakeFiles/bench_reward_modes.dir/bench_reward_modes.cpp.o"
  "CMakeFiles/bench_reward_modes.dir/bench_reward_modes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reward_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
