# Empty dependencies file for bench_reward_modes.
# This may be replaced when dependencies are built.
