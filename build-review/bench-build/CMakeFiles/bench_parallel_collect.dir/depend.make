# Empty dependencies file for bench_parallel_collect.
# This may be replaced when dependencies are built.
