file(REMOVE_RECURSE
  "../bench/bench_parallel_collect"
  "../bench/bench_parallel_collect.pdb"
  "CMakeFiles/bench_parallel_collect.dir/bench_parallel_collect.cpp.o"
  "CMakeFiles/bench_parallel_collect.dir/bench_parallel_collect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
