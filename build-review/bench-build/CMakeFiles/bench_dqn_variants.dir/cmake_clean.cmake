file(REMOVE_RECURSE
  "../bench/bench_dqn_variants"
  "../bench/bench_dqn_variants.pdb"
  "CMakeFiles/bench_dqn_variants.dir/bench_dqn_variants.cpp.o"
  "CMakeFiles/bench_dqn_variants.dir/bench_dqn_variants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dqn_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
