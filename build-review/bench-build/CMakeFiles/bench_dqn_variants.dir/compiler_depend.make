# Empty compiler generated dependencies file for bench_dqn_variants.
# This may be replaced when dependencies are built.
