# Empty compiler generated dependencies file for bench_minimizer.
# This may be replaced when dependencies are built.
