file(REMOVE_RECURSE
  "../bench/bench_minimizer"
  "../bench/bench_minimizer.pdb"
  "CMakeFiles/bench_minimizer.dir/bench_minimizer.cpp.o"
  "CMakeFiles/bench_minimizer.dir/bench_minimizer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
