file(REMOVE_RECURSE
  "../bench/bench_nn"
  "../bench/bench_nn.pdb"
  "CMakeFiles/bench_nn.dir/bench_nn.cpp.o"
  "CMakeFiles/bench_nn.dir/bench_nn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
