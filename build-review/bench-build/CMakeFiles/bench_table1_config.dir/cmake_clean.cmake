file(REMOVE_RECURSE
  "../bench/bench_table1_config"
  "../bench/bench_table1_config.pdb"
  "CMakeFiles/bench_table1_config.dir/bench_table1_config.cpp.o"
  "CMakeFiles/bench_table1_config.dir/bench_table1_config.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
