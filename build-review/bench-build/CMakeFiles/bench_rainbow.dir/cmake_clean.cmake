file(REMOVE_RECURSE
  "../bench/bench_rainbow"
  "../bench/bench_rainbow.pdb"
  "CMakeFiles/bench_rainbow.dir/bench_rainbow.cpp.o"
  "CMakeFiles/bench_rainbow.dir/bench_rainbow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rainbow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
