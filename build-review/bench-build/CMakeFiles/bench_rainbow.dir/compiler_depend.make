# Empty compiler generated dependencies file for bench_rainbow.
# This may be replaced when dependencies are built.
