file(REMOVE_RECURSE
  "../bench/bench_env_comm"
  "../bench/bench_env_comm.pdb"
  "CMakeFiles/bench_env_comm.dir/bench_env_comm.cpp.o"
  "CMakeFiles/bench_env_comm.dir/bench_env_comm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_env_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
