# Empty dependencies file for bench_env_comm.
# This may be replaced when dependencies are built.
