file(REMOVE_RECURSE
  "../bench/bench_blind_docking"
  "../bench/bench_blind_docking.pdb"
  "CMakeFiles/bench_blind_docking.dir/bench_blind_docking.cpp.o"
  "CMakeFiles/bench_blind_docking.dir/bench_blind_docking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blind_docking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
