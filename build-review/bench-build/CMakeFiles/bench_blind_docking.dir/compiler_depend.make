# Empty compiler generated dependencies file for bench_blind_docking.
# This may be replaced when dependencies are built.
