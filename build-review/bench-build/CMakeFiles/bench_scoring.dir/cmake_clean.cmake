file(REMOVE_RECURSE
  "../bench/bench_scoring"
  "../bench/bench_scoring.pdb"
  "CMakeFiles/bench_scoring.dir/bench_scoring.cpp.o"
  "CMakeFiles/bench_scoring.dir/bench_scoring.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
