// Ablation A6a (paper Sections 2.2 and 5): experience replay cost. The
// paper stores full state vectors per memory; the compact pose replay
// (the "RAM-based" refinement) stores 7+K pose DOFs and re-encodes on
// sampling. Measures push/sample throughput of both and prints the
// resident-memory ratio at the paper's N = 400,000 capacity.

#include "bench/benchkit.hpp"

#include <cstdio>
#include <memory>

#include "src/core/pose_replay.hpp"

using namespace dqndock;

namespace {

struct World {
  chem::Scenario scenario;
  metadock::DockingEnv env;
  core::StateEncoder encoder;
  core::DockingTask task;
  std::vector<double> state;

  World()
      : scenario(chem::buildScenario(chem::ScenarioSpec::tiny())),
        env(scenario, {}),
        encoder(scenario, core::StateMode::kLigandPositions),
        task(env, encoder) {
    task.reset(state);
  }
};

World& world() {
  static World w;
  return w;
}

}  // namespace

static void BM_RawReplayPush(benchmark::State& state) {
  World& w = world();
  rl::ReplayBuffer rb(100000, w.encoder.dim());
  for (auto _ : state) {
    rb.push(w.state, 3, 1.0, w.state, false);
  }
  state.SetLabel("raw float32 states, dim=" + std::to_string(w.encoder.dim()));
}
BENCHMARK(BM_RawReplayPush);

static void BM_PoseReplayPush(benchmark::State& state) {
  World& w = world();
  core::PoseReplayBuffer rb(100000, w.task);
  for (auto _ : state) {
    rb.push(w.state, 3, 1.0, w.state, false);
  }
  state.SetLabel("compact pose storage");
}
BENCHMARK(BM_PoseReplayPush);

static void BM_RawReplaySample(benchmark::State& state) {
  World& w = world();
  rl::ReplayBuffer rb(4096, w.encoder.dim());
  for (int i = 0; i < 4096; ++i) rb.push(w.state, i % 12, 0.0, w.state, false);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rb.sample(32, rng));
  }
  state.SetLabel("no decode work at sample time");
}
BENCHMARK(BM_RawReplaySample);

static void BM_PoseReplaySample(benchmark::State& state) {
  World& w = world();
  core::PoseReplayBuffer rb(4096, w.task);
  const metadock::Pose p = w.env.pose();
  for (int i = 0; i < 4096; ++i) rb.pushPose(p, i % 12, 0.0, p, false);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rb.sample(32, rng));
  }
  state.SetLabel("re-encodes states on sample");
}
BENCHMARK(BM_PoseReplaySample);

int main(int argc, char** argv) {
  // Memory comparison at the paper's capacity (no benchmark loop needed).
  {
    const auto paper = chem::buildScenario(chem::ScenarioSpec::paper2bsm());
    metadock::DockingEnv env(paper, {});
    core::StateEncoder encoder(paper, core::StateMode::kFullWithBonds);
    core::DockingTask task(env, encoder);
    const std::size_t capacity = 400000;  // Table 1: N
    // Raw: 2 float arrays of capacity x 16,599.
    const double rawGiB = 2.0 * capacity * encoder.dim() * sizeof(float) / (1024.0 * 1024 * 1024);
    core::PoseReplayBuffer pose(capacity, task);
    const double poseGiB = static_cast<double>(pose.memoryBytes()) / (1024.0 * 1024 * 1024);
    std::printf("# replay memory at paper capacity N=400,000, state dim 16,599:\n");
    std::printf("#   raw state storage (paper design): %8.2f GiB\n", rawGiB);
    std::printf("#   compact pose storage:             %8.4f GiB  (%.0fx smaller)\n", poseGiB,
                rawGiB / poseGiB);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
