// Ablation A3 (paper Section 5, limitation 3): the paper docks a rigid
// ligand (12 actions) and notes that a flexible ligand with 6 rotatable
// bonds would need 18 actions. Trains DQN-Docking in both modes on the
// same scenario and compares learning metrics and best scores, and also
// compares the metaheuristic baselines rigid-vs-flexible.
//
// Usage: bench_flexible [--episodes=60] [--seed=4]

#include <cstdio>

#include "src/common/cli.hpp"
#include "src/common/stopwatch.hpp"
#include "src/core/dqn_docking.hpp"
#include "src/metadock/metaheuristic.hpp"

using namespace dqndock;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto episodes = static_cast<std::size_t>(args.getInt("episodes", 60));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 4));

  ThreadPool pool;
  std::printf("# rigid (12 actions) vs flexible (12+K actions) ligand ablation\n");
  std::printf("%-10s %8s %12s %12s %12s %10s %8s\n", "mode", "actions", "lateQ", "bestScore",
              "greedyBest", "steps", "sec");

  for (bool flexible : {false, true}) {
    core::DqnDockingConfig cfg = core::DqnDockingConfig::scaled();
    cfg.trainer.episodes = episodes;
    cfg.trainer.seed = seed;
    cfg.env.flexibleLigand = flexible;

    Stopwatch clock;
    core::DqnDocking system(cfg, &pool);
    system.train();
    const rl::MetricsLog& log = system.metrics();
    const std::size_t n = log.size();
    const rl::EpisodeRecord greedy = system.evaluateGreedy();
    std::printf("%-10s %8d %12.4f %12.2f %12.2f %10zu %8.1f\n",
                flexible ? "flexible" : "rigid", system.actionCount(),
                log.meanAvgMaxQ(3 * n / 4, n), log.bestScoreOverall(), greedy.bestScore,
                system.trainer().globalStep(), clock.seconds());
  }

  // The metaheuristic side of the same question: do torsional DOFs help
  // the classical optimizers find better poses?
  std::printf("\n# Monte Carlo baseline, rigid vs flexible torsion sampling\n");
  const chem::Scenario scenario = chem::buildScenario(chem::ScenarioSpec::tiny());
  metadock::ReceptorModel receptor(scenario.receptor, 12.0);
  for (bool flexible : {false, true}) {
    // Rigid mode: a ligand copy with every torsion DOF stripped, so the
    // optimiser genuinely has 6 rigid-body DOFs only.
    chem::Molecule ligMol = scenario.ligand;
    if (!flexible) {
      for (auto& b : ligMol.mutableBonds()) b.rotatable = false;
    }
    metadock::LigandModel ligand(ligMol);
    metadock::ScoringFunction scoring(receptor, ligand, {});
    metadock::MetaheuristicParams params = metadock::MetaheuristicParams::monteCarlo();
    params.maxEvaluations = 8000;
    metadock::PoseEvaluator evaluator(scoring, &pool);
    metadock::MetaheuristicEngine engine(evaluator, params);
    Rng rng(seed);
    const auto result = engine.runFrom(ligand.restPose(), rng);
    std::printf("#   %-9s dofs=%zu bestScore=%.2f evaluations=%zu\n",
                flexible ? "flexible" : "rigid", 6 + ligand.torsionCount(), result.best.score,
                result.evaluations);
  }
  std::printf("# paper expectation: flexible mode enlarges the action space (harder RL\n"
              "# exploration) but gives optimizers access to better-scoring conformations.\n");
  return 0;
}
