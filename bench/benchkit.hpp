#pragma once

/// \file benchkit.hpp
/// In-tree benchmark harness, drop-in compatible with the subset of the
/// google-benchmark API our benches use (State range/items/label loops,
/// BENCHMARK()->Arg()->UseRealTime(), JSON/console reporters, the
/// --benchmark_filter/--benchmark_min_time/--benchmark_format flags).
///
/// Why not the system libbenchmark: the only binary available in the
/// image was built without NDEBUG and self-reports
/// "library_build_type": "debug", which the result-publishing scripts
/// now refuse (a debug harness library adds per-iteration overhead that
/// pollutes published numbers). This library is always compiled -O3
/// -DNDEBUG regardless of the harness build type (see bench/CMakeLists)
/// and stamps library_build_type from its own compile mode, so the JSON
/// context stays honest if anyone un-forces the flags.
///
/// Timing protocol, kept deliberately close to google-benchmark: each
/// benchmark is re-run with a growing iteration count until the timed
/// region exceeds --benchmark_min_time, and only the final run is
/// reported. real_time/cpu_time are per-iteration nanoseconds;
/// items_per_second divides total items by total cpu (or real, with
/// UseRealTime) seconds.

#include <cstdint>
#include <string>
#include <vector>

namespace benchmark {

class State {
 public:
  State(std::size_t maxIterations, std::vector<std::int64_t> args);

  /// `for (auto _ : state)` — begin() starts the timer, the final
  /// iterator comparison stops it.
  class Iterator {
   public:
    Iterator(State* state, std::size_t remaining) : state_(state), remaining_(remaining) {}
    bool operator!=(const Iterator&) {
      if (remaining_ != 0) return true;
      state_->finishTiming();
      return false;
    }
    Iterator& operator++() {
      --remaining_;
      return *this;
    }
    // Non-trivial so `for (auto _ : state)` doesn't warn set-but-unused.
    struct Value {
      Value() {}
      ~Value() {}
    };
    Value operator*() const { return {}; }

   private:
    State* state_;
    std::size_t remaining_;
  };

  Iterator begin() {
    startTiming();
    return Iterator(this, maxIterations_);
  }
  Iterator end() { return Iterator(this, 0); }

  std::int64_t range(std::size_t i = 0) const;
  std::size_t iterations() const { return maxIterations_; }
  void SetItemsProcessed(std::int64_t items) { items_ = items; }
  void SetLabel(const std::string& label) { label_ = label; }

  // -- harness-side accessors (not part of the user-facing API) ----------
  double realSeconds() const { return realSeconds_; }
  double cpuSeconds() const { return cpuSeconds_; }
  std::int64_t itemsProcessed() const { return items_; }
  const std::string& label() const { return label_; }

 private:
  void startTiming();
  void finishTiming();

  std::size_t maxIterations_;
  std::vector<std::int64_t> args_;
  std::int64_t items_ = 0;
  std::string label_;
  double realSeconds_ = 0.0;
  double cpuSeconds_ = 0.0;
  double realStart_ = 0.0;
  double cpuStart_ = 0.0;
  bool timing_ = false;
};

using Function = void (*)(State&);

namespace internal {

/// One registered benchmark; Arg() fan-out and reporting options chain
/// off the BENCHMARK() macro like google-benchmark's builder.
class Benchmark {
 public:
  Benchmark(std::string name, Function fn) : name_(std::move(name)), fn_(fn) {}

  Benchmark* Arg(std::int64_t value) {
    args_.push_back({value});
    return this;
  }
  Benchmark* UseRealTime() {
    useRealTime_ = true;
    return this;
  }

  const std::string& name() const { return name_; }
  Function function() const { return fn_; }
  /// One entry per run: the Arg list (empty -> single no-arg run).
  std::vector<std::vector<std::int64_t>> runs() const {
    return args_.empty() ? std::vector<std::vector<std::int64_t>>{{}} : args_;
  }
  bool useRealTime() const { return useRealTime_; }

 private:
  std::string name_;
  Function fn_;
  std::vector<std::vector<std::int64_t>> args_;
  bool useRealTime_ = false;
};

Benchmark* RegisterBenchmark(const char* name, Function fn);

}  // namespace internal

/// Prevents the optimizer from deleting a benchmarked computation.
template <class T>
inline void DoNotOptimize(T&& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

void Initialize(int* argc, char** argv);
bool ReportUnrecognizedArguments(int argc, char** argv);
void AddCustomContext(const std::string& key, const std::string& value);
std::size_t RunSpecifiedBenchmarks();
void Shutdown();

}  // namespace benchmark

#define BENCHKIT_CONCAT2(a, b) a##b
#define BENCHKIT_CONCAT(a, b) BENCHKIT_CONCAT2(a, b)

#define BENCHMARK(func)                                                  \
  static ::benchmark::internal::Benchmark* BENCHKIT_CONCAT(bk_reg_, __LINE__) \
      [[maybe_unused]] = ::benchmark::internal::RegisterBenchmark(#func, func)

#define BENCHMARK_MAIN()                                                \
  int main(int argc, char** argv) {                                     \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }
