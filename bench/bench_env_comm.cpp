// Ablation A1 (paper Section 5, limitation 1): the paper's DQN-Docking
// exchanges state/score with METADOCK through files on disk and names the
// move to RAM-based communication as its first planned refinement.
// Measures per-step latency of both couplings on the full-size scenario.

#include "bench/benchkit.hpp"

#include <memory>

#include "src/chem/synthetic.hpp"
#include "src/metadock/file_env.hpp"

using namespace dqndock;

namespace {

chem::Scenario& scenario() {
  static chem::Scenario sc = chem::buildScenario(chem::ScenarioSpec::paper2bsm());
  return sc;
}

/// Cycle through a fixed in-place action pattern so neither env ever
/// terminates during timing.
int nextAction(int i) {
  static const int pattern[] = {1, 0, 3, 2, 5, 4};  // +x,-x,+y,-y,+z,-z
  return pattern[i % 6];
}

}  // namespace

static void BM_RamEnvStep(benchmark::State& state) {
  metadock::DockingEnv env(scenario(), {});
  int i = 0;
  for (auto _ : state) {
    if (env.terminated()) env.reset();
    benchmark::DoNotOptimize(env.step(nextAction(i++)));
  }
  state.SetLabel("direct RAM coupling");
}
BENCHMARK(BM_RamEnvStep);

static void BM_FileEnvStep(benchmark::State& state) {
  metadock::DockingEnv env(scenario(), {});
  metadock::FileEnv file(env);
  file.reset();
  int i = 0;
  for (auto _ : state) {
    if (env.terminated()) file.reset();
    benchmark::DoNotOptimize(file.step(nextAction(i++)));
  }
  state.SetLabel("file-based coupling (paper Section 5)");
}
BENCHMARK(BM_FileEnvStep);

BENCHMARK_MAIN();
