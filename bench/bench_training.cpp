// Vectorized training-loop throughput on the paper-2BSM task: V lockstep
// envs feeding the pose-batched scoring kernel and one tiled Q-forward
// per step, vs the paper's sequential one-env loop. Reports training
// transitions/second (one candidate pose is scored per transition, so
// this is also pose-evals/second) for sequential and V in {1, 8, 32}
// during the collect phase (epsilon = 0.05, no SGD: the learn call is
// identical per transition in both schedules, so collect throughput is
// where the speedup lives), plus a short learning-phase row at V = 32
// and a built-in sequential-vs-V=1 bit-identity check.
//
// Output is a single JSON object on stdout; scripts/bench_training.py
// wraps it into BENCH_training.json with the acceptance gate.
//
// Usage: bench_training [--episodes=8] [--max-steps=50] [--seed=2018]
//                       [--replay=512] [--learn-max-steps=10] [--skip-identity]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/cli.hpp"
#include "src/common/stopwatch.hpp"
#include "src/core/dqn_docking.hpp"
#include "src/metadock/scoring_kernels.hpp"
#include "src/nn/gemm_kernels.hpp"
#include "src/nn/mlp.hpp"

using namespace dqndock;

namespace {

core::DqnDockingConfig benchConfig(std::size_t vectorEnvs, std::size_t episodes,
                                   std::size_t maxSteps, std::uint64_t seed,
                                   std::size_t replayCapacity, bool learning) {
  core::DqnDockingConfig cfg = core::DqnDockingConfig::paper2bsm();
  cfg.env.maxSteps = maxSteps;
  cfg.trainer.episodes = episodes;
  cfg.trainer.seed = seed;
  // Constant Table-1 floor epsilon: mostly-greedy acting exercises the
  // Q-forward on every step, which is what vectorization amortizes.
  cfg.trainer.epsilon = rl::EpsilonSchedule(0.05, 0.05, 0.0, 0);
  cfg.trainer.learningStart = learning ? cfg.agent.batchSize : (1ull << 40);
  // Raw-state replay (the vectorized path's storage); a small ring keeps
  // the 16,599-double states bounded (~0.27 MB/transition).
  cfg.replayCapacity = replayCapacity;
  cfg.compactReplay = false;
  cfg.vectorEnvs = vectorEnvs;
  return cfg;
}

struct ModeResult {
  std::string label;
  std::size_t vectorEnvs = 0;
  std::size_t episodes = 0;
  std::size_t steps = 0;
  std::size_t batchedSteps = 0;
  std::size_t learnCalls = 0;
  double seconds = 0.0;
};

ModeResult runMode(const std::string& label, const chem::Scenario& scenario,
                   const core::DqnDockingConfig& cfg, ThreadPool* pool) {
  core::DqnDocking system(cfg, scenario, pool);
  Stopwatch clock;
  system.train();
  ModeResult r;
  r.label = label;
  r.vectorEnvs = cfg.vectorEnvs;
  r.episodes = system.metrics().size();
  r.steps = system.trainer().globalStep();
  r.batchedSteps = system.vectorEnv() ? system.vectorEnv()->batchedSteps() : 0;
  r.learnCalls = system.agent().learnSteps();
  r.seconds = clock.seconds();
  std::fprintf(stderr, "  %-16s episodes=%zu steps=%zu learns=%zu %.2fs (%.0f steps/s)\n",
               label.c_str(), r.episodes, r.steps, r.learnCalls, r.seconds,
               static_cast<double>(r.steps) / r.seconds);
  return r;
}

void printMode(const ModeResult& r, bool last) {
  const double stepsPerSec = static_cast<double>(r.steps) / r.seconds;
  const double batchedFraction =
      r.steps ? static_cast<double>(r.batchedSteps) * static_cast<double>(r.vectorEnvs) /
                    static_cast<double>(r.steps)
              : 0.0;
  std::printf("    {\"label\": \"%s\", \"vector_envs\": %zu, \"episodes\": %zu, "
              "\"steps\": %zu, \"learn_calls\": %zu, \"seconds\": %.4f, "
              "\"steps_per_second\": %.1f, \"pose_evals_per_second\": %.1f, "
              "\"batched_steps\": %zu, \"batched_fraction\": %.4f}%s\n",
              r.label.c_str(), r.vectorEnvs, r.episodes, r.steps, r.learnCalls, r.seconds,
              stepsPerSec, stepsPerSec, r.batchedSteps, batchedFraction, last ? "" : ",");
}

/// Sequential vs V=1 must match bit-for-bit: same episode records, same
/// final weights (test_vector_env proves it on the scaled task; this
/// reruns the check on the paper-2BSM geometry the numbers ship from).
bool v1BitIdentical(const chem::Scenario& scenario, std::uint64_t seed, ThreadPool* pool) {
  core::DqnDockingConfig seqCfg = benchConfig(0, 2, 30, seed, 512, /*learning=*/true);
  core::DqnDockingConfig vecCfg = seqCfg;
  vecCfg.vectorEnvs = 1;
  core::DqnDocking seq(seqCfg, scenario, pool);
  core::DqnDocking vec(vecCfg, scenario, pool);
  seq.train();
  vec.train();

  const auto& sr = seq.metrics().records();
  const auto& vr = vec.metrics().records();
  if (sr.size() != vr.size()) return false;
  for (std::size_t i = 0; i < sr.size(); ++i) {
    if (sr[i].totalReward != vr[i].totalReward || sr[i].steps != vr[i].steps ||
        sr[i].finalScore != vr[i].finalScore || sr[i].avgMaxQ != vr[i].avgMaxQ) {
      return false;
    }
  }
  auto sp = seq.agent().online().parameters();
  auto vp = vec.agent().online().parameters();
  if (sp.size() != vp.size()) return false;
  for (std::size_t t = 0; t < sp.size(); ++t) {
    const auto a = sp[t]->flat();
    const auto b = vp[t]->flat();
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto episodes = static_cast<std::size_t>(args.getInt("episodes", 8));
  const auto maxSteps = static_cast<std::size_t>(args.getInt("max-steps", 50));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2018));
  const auto replayCapacity = static_cast<std::size_t>(args.getInt("replay", 512));
  const auto learnMaxSteps = static_cast<std::size_t>(args.getInt("learn-max-steps", 10));
  const bool skipIdentity = args.has("skip-identity");

  const core::DqnDockingConfig base = core::DqnDockingConfig::paper2bsm();
  const chem::Scenario scenario = chem::buildScenario(base.scenario);
  ThreadPool pool;

  // --- Collect phase: sequential baseline, then V in {1, 8, 32}. -------
  std::vector<ModeResult> modes;
  modes.push_back(runMode("sequential", scenario,
                          benchConfig(0, episodes, maxSteps, seed, replayCapacity, false),
                          &pool));
  for (std::size_t v : {1u, 8u, 32u}) {
    // Episode quota >= V keeps the lockstep full for most of the run.
    const std::size_t quota = std::max(episodes, v);
    modes.push_back(runMode("V=" + std::to_string(v), scenario,
                            benchConfig(v, quota, maxSteps, seed, replayCapacity, false),
                            &pool));
  }

  // --- Learning phase at V=32 vs sequential. SGD cost is per-transition
  // identical in both schedules, so this row shows how much of the
  // collect speedup survives end to end. Both rows run the same episode
  // quota (32 x learn-max-steps transitions) so the learn-call counts
  // match and the comparison is apples to apples.
  ModeResult learnSeq = runMode(
      "learn-sequential", scenario,
      benchConfig(0, 32, learnMaxSteps, seed, replayCapacity, true), &pool);
  ModeResult learnVec = runMode(
      "learn-V=32", scenario,
      benchConfig(32, 32, learnMaxSteps, seed, replayCapacity, true), &pool);

  const bool identical = skipIdentity || v1BitIdentical(scenario, seed, &pool);
  if (!skipIdentity) {
    std::fprintf(stderr, "  v1 bit-identity: %s\n", identical ? "PASS" : "FAIL");
  }

  std::printf("{\n");
#ifdef NDEBUG
  std::printf("  \"dqndock_bench_asserts\": \"off\",\n");
#else
  std::printf("  \"dqndock_bench_asserts\": \"on\",\n");
#endif
  std::printf("  \"dqndock_bench_build_type\": \"%s\",\n", DQNDOCK_BENCH_BUILD_TYPE);
  std::printf("  \"dqndock_kernel_tier\": \"%s\",\n",
              metadock::kernelTierName(metadock::resolveKernelTier()));
  std::printf("  \"dqndock_gemm_kernel_tier\": \"%s\",\n",
              nn::gemmTierName(nn::resolveGemmTier()));
  // Which way the DQNDOCK_FOLD_STATIC gate resolved for these runs: the
  // learn rows fold the receptor prefix out of the input layer iff "on".
  std::printf("  \"dqndock_fold_static\": \"%s\",\n",
              nn::foldStaticEnabled() ? "on" : "off");
  std::printf("  \"scenario\": \"paper-2BSM (%zu receptor atoms x %zu-atom ligand)\",\n",
              base.scenario.receptorAtoms, base.scenario.ligandAtoms);
  std::printf("  \"max_steps\": %zu,\n", maxSteps);
  std::printf("  \"v1_bit_identity_checked\": %s,\n", skipIdentity ? "false" : "true");
  std::printf("  \"v1_bit_identical\": %s,\n", identical ? "true" : "false");
  std::printf("  \"collect_phase\": [\n");
  for (std::size_t i = 0; i < modes.size(); ++i) printMode(modes[i], i + 1 == modes.size());
  std::printf("  ],\n");
  std::printf("  \"learn_phase\": [\n");
  printMode(learnSeq, false);
  printMode(learnVec, true);
  std::printf("  ]\n}\n");
  return identical ? 0 : 1;
}
