// Ablation A9: gradient-based local refinement. Production docking
// engines follow global search with energy minimization; this bench
// measures what the minimizer adds on top of each metaheuristic preset
// under a fixed evaluation budget, and the per-call cost of the analytic
// gradient vs a plain score.
//
// Usage: bench_minimizer [--budget=4000] [--seed=6]

#include <cstdio>

#include "src/chem/synthetic.hpp"
#include "src/common/cli.hpp"
#include "src/common/stopwatch.hpp"
#include "src/metadock/forces.hpp"
#include "src/metadock/metaheuristic.hpp"

using namespace dqndock;
using namespace dqndock::metadock;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto budget = static_cast<std::size_t>(args.getInt("budget", 4000));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 6));

  const chem::Scenario scenario = chem::buildScenario(chem::ScenarioSpec::tiny());
  ReceptorModel receptor(scenario.receptor, 12.0);
  LigandModel ligand(scenario.ligand);
  ScoringFunction scoring(receptor, ligand, {});
  ScoringGradient gradient(receptor, ligand, {});
  ThreadPool pool;

  // Per-call cost comparison.
  {
    Pose probe(ligand.torsionCount());
    probe.translation = scenario.pocketCenter + Vec3{0, 0, 2.0};
    std::vector<Vec3> positions, grads;
    ligand.applyPose(probe, positions);
    Stopwatch clock;
    const int reps = 2000;
    double sink = 0.0;
    for (int i = 0; i < reps; ++i) sink += scoring.score(positions);
    const double scoreUs = clock.micros() / reps;
    clock.reset();
    for (int i = 0; i < reps; ++i) sink += gradient.atomGradients(positions, grads);
    const double gradUs = clock.micros() / reps;
    std::printf("# per-call cost: score=%.1f us, analytic gradient=%.1f us (%.2fx)%s\n",
                scoreUs, gradUs, gradUs / scoreUs, sink == 12345.0 ? "!" : "");
  }

  std::printf("%-16s %14s %16s %10s\n", "method", "searchBest", "afterMinimize", "minIters");
  for (auto params :
       {MetaheuristicParams::randomSearch(), MetaheuristicParams::monteCarlo(),
        MetaheuristicParams::genetic()}) {
    params.maxEvaluations = budget;
    PoseEvaluator evaluator(scoring, &pool);
    MetaheuristicEngine engine(evaluator, params);
    Rng rng(seed);
    const auto search = engine.runFrom(ligand.restPose(), rng);
    const MinimizeResult refined = minimizePose(scoring, gradient, search.best.pose);
    std::printf("%-16s %14.2f %16.2f %10d\n", params.name.c_str(), search.best.score,
                refined.finalScore, refined.iterations);
  }
  std::printf("# expectation: minimization adds a consistent score improvement on top of\n"
              "# every search method at negligible cost (a few hundred scoring calls).\n");
  return 0;
}
