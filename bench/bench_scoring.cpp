// Ablation A5 (paper Sections 2.1/3): the scoring function dominates
// docking cost and METADOCK parallelises it. Measures Equation 1
// throughput across the execution paths the library provides:
//   * brute force, no cutoff (Algorithm 1 of the paper),
//   * cutoff without grid,
//   * cutoff + neighbour-grid pruning,
//   * each of the above for the packed SoA kernel (default) and the
//     scalar AoS fallback (`ScoringOptions::packed = false`, the pre-PR
//     kernel) — the A/B pair scripts/bench_scoring.py turns into
//     BENCH_scoring.json,
//   * the pose-batched kernel (one receptor sweep scores a whole tile of
//     poses; subcell cutoff-sphere slicing) over a batch-size sweep,
//   * a thread-count sweep over a batch of poses.
//
// google-benchmark harness; reports pairs/second where meaningful.

#include "bench/benchkit.hpp"

#include <memory>

#include "src/chem/synthetic.hpp"
#include "src/metadock/evaluator.hpp"
#include "src/metadock/scoring_kernels.hpp"

using namespace dqndock;
using metadock::LigandModel;
using metadock::Pose;
using metadock::ReceptorModel;
using metadock::ScoringFunction;
using metadock::ScoringOptions;

namespace {

struct Problem {
  chem::Scenario scenario;
  std::unique_ptr<ReceptorModel> receptor;
  std::unique_ptr<LigandModel> ligand;
  Pose surfacePose;

  explicit Problem(double gridCell) : scenario(chem::buildScenario(chem::ScenarioSpec::paper2bsm())) {
    receptor = std::make_unique<ReceptorModel>(scenario.receptor, gridCell);
    ligand = std::make_unique<LigandModel>(scenario.ligand);
    surfacePose = Pose(ligand->torsionCount());
    surfacePose.translation = scenario.pocketCenter;
  }
};

Problem& problemWithGrid() {
  static Problem p(12.0);
  return p;
}

Problem& problemNoGrid() {
  static Problem p(0.0);
  return p;
}

/// Shared body: scores the surface pose repeatedly under `opts`.
void scoreLoop(benchmark::State& state, Problem& p, const ScoringOptions& opts) {
  ScoringFunction sf(*p.receptor, *p.ligand, opts);
  std::vector<Vec3> scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sf.scorePose(p.surfacePose, scratch));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(p.receptor->atomCount() * p.ligand->atomCount()));
  state.SetLabel(opts.packed ? "packed" : "scalar");
}

ScoringOptions makeOptions(double cutoff, bool useGrid, bool packed) {
  ScoringOptions opts;
  opts.cutoff = cutoff;
  opts.useGrid = useGrid;
  opts.packed = packed;
  return opts;
}

}  // namespace

static void BM_ScoreBruteForceNoCutoff(benchmark::State& state) {
  scoreLoop(state, problemNoGrid(), makeOptions(0.0, false, true));
}
BENCHMARK(BM_ScoreBruteForceNoCutoff);

static void BM_ScoreBruteForceNoCutoffScalar(benchmark::State& state) {
  scoreLoop(state, problemNoGrid(), makeOptions(0.0, false, false));
}
BENCHMARK(BM_ScoreBruteForceNoCutoffScalar);

static void BM_ScoreCutoffNoGrid(benchmark::State& state) {
  scoreLoop(state, problemNoGrid(), makeOptions(12.0, false, true));
}
BENCHMARK(BM_ScoreCutoffNoGrid);

static void BM_ScoreCutoffNoGridScalar(benchmark::State& state) {
  scoreLoop(state, problemNoGrid(), makeOptions(12.0, false, false));
}
BENCHMARK(BM_ScoreCutoffNoGridScalar);

static void BM_ScoreCutoffWithGrid(benchmark::State& state) {
  scoreLoop(state, problemWithGrid(), makeOptions(12.0, true, true));
}
BENCHMARK(BM_ScoreCutoffWithGrid);

static void BM_ScoreCutoffWithGridScalar(benchmark::State& state) {
  scoreLoop(state, problemWithGrid(), makeOptions(12.0, true, false));
}
BENCHMARK(BM_ScoreCutoffWithGridScalar);

/// Pose-batched kernel at batch size B: the local-search shape, B jitters
/// of one pocket pose scored in one receptor sweep. Items are normalised
/// the same way as the per-pose paths (receptor atoms x ligand atoms per
/// pose), so pairs/s here are directly comparable with
/// BM_ScoreCutoffWithGrid: both the receptor-load amortisation and the
/// subcell pruning count toward the ratio.
static void BM_ScorePoseBatched(benchmark::State& state) {
  Problem& p = problemWithGrid();
  const auto batch = static_cast<std::size_t>(state.range(0));
  ScoringFunction sf(*p.receptor, *p.ligand, makeOptions(12.0, true, true));

  Rng rng(11);
  std::vector<Pose> poses;
  for (std::size_t i = 0; i < batch; ++i) {
    // The default Improve-move scale (1 A / 10 deg / 15 deg): the batch a
    // local-search step actually evaluates around one incumbent.
    poses.push_back(metadock::perturbPose(p.surfacePose, 1.0, 0.1745, 0.2618, rng));
  }
  ScoringFunction::BatchScratch scratch;
  std::vector<double> scores(batch);
  for (auto _ : state) {
    sf.scoreBatch(poses, scratch, scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(batch) *
                          static_cast<long>(p.receptor->atomCount() * p.ligand->atomCount()));
  state.SetLabel("B=" + std::to_string(batch));
}
BENCHMARK(BM_ScorePoseBatched)->Arg(1)->Arg(8)->Arg(32);

/// Same measurement for a population spread over the whole receptor
/// (random poses, 25 A radius): the global-search shape where lanes
/// diverge and the kernel leans on the fallback heuristic.
static void BM_ScorePoseBatchedSpread(benchmark::State& state) {
  Problem& p = problemWithGrid();
  const auto batch = static_cast<std::size_t>(state.range(0));
  ScoringFunction sf(*p.receptor, *p.ligand, makeOptions(12.0, true, true));

  Rng rng(13);
  std::vector<Pose> poses;
  for (std::size_t i = 0; i < batch; ++i) {
    poses.push_back(metadock::randomPose(p.receptor->centerOfMass(), 25.0,
                                         p.ligand->torsionCount(), rng));
  }
  ScoringFunction::BatchScratch scratch;
  std::vector<double> scores(batch);
  for (auto _ : state) {
    sf.scoreBatch(poses, scratch, scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(batch) *
                          static_cast<long>(p.receptor->atomCount() * p.ligand->atomCount()));
  state.SetLabel("B=" + std::to_string(batch));
}
BENCHMARK(BM_ScorePoseBatchedSpread)->Arg(32);

/// Batch of poses fanned across the pool: the METADOCK screening shape.
static void BM_BatchEvaluateThreads(benchmark::State& state) {
  Problem& p = problemWithGrid();
  const auto threads = static_cast<std::size_t>(state.range(0));
  ScoringOptions opts;  // cutoff 12, grid on, packed
  ScoringFunction sf(*p.receptor, *p.ligand, opts);
  std::unique_ptr<ThreadPool> pool =
      threads > 0 ? std::make_unique<ThreadPool>(threads) : nullptr;
  metadock::PoseEvaluator eval(sf, pool.get());

  Rng rng(7);
  std::vector<Pose> poses;
  for (int i = 0; i < 256; ++i) {
    poses.push_back(metadock::randomPose(p.receptor->centerOfMass(), 25.0,
                                         p.ligand->torsionCount(), rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluateBatch(poses));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * 256);
  state.SetLabel(threads == 0 ? "serial" : std::to_string(threads) + " threads");
}
// UseRealTime: wall-clock is what matters for a parallel sweep (on a
// single-core host all thread counts tie; on a multi-core host the
// speedup shows directly).
BENCHMARK(BM_BatchEvaluateThreads)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Pose application alone (torsions + rigid transform, no scoring).
static void BM_ApplyPose(benchmark::State& state) {
  Problem& p = problemWithGrid();
  Pose pose(p.ligand->torsionCount());
  for (std::size_t k = 0; k < pose.torsions.size(); ++k) pose.torsions[k] = 0.3 * (1.0 + k);
  pose.orientation = Quat::fromAxisAngle(Vec3{1, 2, 3}, 0.7);
  pose.translation = {5, 6, 7};
  std::vector<Vec3> out;
  for (auto _ : state) {
    p.ligand->applyPose(pose, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ApplyPose);

/// Custom main: report the harness build type (and whether asserts were
/// compiled in) in the benchmark context, so scripts/bench_scoring.py can
/// refuse to publish numbers measured from a debug build.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
#ifdef DQNDOCK_BENCH_BUILD_TYPE
  benchmark::AddCustomContext("dqndock_bench_build_type", DQNDOCK_BENCH_BUILD_TYPE);
#endif
#ifdef NDEBUG
  benchmark::AddCustomContext("dqndock_bench_asserts", "off");
#else
  benchmark::AddCustomContext("dqndock_bench_asserts", "on");
#endif
  // Which Eq. 1 sweep-kernel tier the runs dispatched to (CPUID probe,
  // or the DQNDOCK_FORCE_KERNEL override) — resolves exactly the way the
  // benchmarked ScoringFunction instances do, and fails loudly here if a
  // forced tier is unavailable rather than publishing mislabelled rows.
  benchmark::AddCustomContext("dqndock_kernel_tier",
                              metadock::kernelTierName(metadock::resolveKernelTier()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
