// Ablation A12 (paper Section 3): the reward-construction decision.
// The paper deliberates between taking the score directly and taking the
// clipped score *change*, settling on sign-clipped deltas for gradient
// robustness. Trains DQN-Docking under each reward mode on the same task
// and compares outcomes.
//
// Usage: bench_reward_modes [--episodes=60] [--seed=12]

#include <cstdio>

#include "src/common/cli.hpp"
#include "src/common/stopwatch.hpp"
#include "src/core/dqn_docking.hpp"

using namespace dqndock;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto episodes = static_cast<std::size_t>(args.getInt("episodes", 60));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 12));

  const metadock::RewardMode modes[] = {
      metadock::RewardMode::kSignClip,     // the paper's choice
      metadock::RewardMode::kClippedDelta,
      metadock::RewardMode::kRawDelta,
      metadock::RewardMode::kAbsolute,
  };

  ThreadPool pool;
  std::printf("# reward-construction ablation (paper Section 3), %zu episodes\n", episodes);
  std::printf("%-16s %12s %12s %12s %12s %8s\n", "reward", "earlyQ", "lateQ", "bestScore",
              "greedyBest", "sec");
  for (const auto mode : modes) {
    core::DqnDockingConfig cfg = core::DqnDockingConfig::scaled();
    cfg.trainer.episodes = episodes;
    cfg.trainer.seed = seed;
    cfg.env.rewardMode = mode;

    Stopwatch clock;
    core::DqnDocking system(cfg, &pool);
    system.train();
    const rl::MetricsLog& log = system.metrics();
    const std::size_t n = log.size();
    const rl::EpisodeRecord greedy = system.evaluateGreedy();
    std::printf("%-16s %12.4f %12.4f %12.2f %12.2f %8.1f\n",
                metadock::rewardModeName(mode), log.meanAvgMaxQ(0, n / 4),
                log.meanAvgMaxQ(3 * n / 4, n), log.bestScoreOverall(), greedy.bestScore,
                clock.seconds());
  }
  std::printf("# the paper argues sign-clipping gives 'more robust gradients' against the\n"
              "# astronomically scaled clash penalties; raw-delta rows expose exactly that\n"
              "# failure mode (Q-values blow up with unclipped 1e6+ rewards).\n");
  return 0;
}
