// Reproduces paper Table 1 (hyper-parameters of DQN-Docking) and the
// geometry of Figures 1/3 (the 2BSM setting): resolves the Paper2BSM
// configuration against the synthetic scenario and prints every value the
// table lists, asserting the state/action dimensions match the paper.
//
// Usage: bench_table1_config

#include <cstdio>
#include <cstdlib>

#include "src/core/dqn_docking.hpp"

using namespace dqndock;

namespace {
void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "MISMATCH: %s\n", what);
    std::exit(1);
  }
}
}  // namespace

int main() {
  const auto cfg = core::DqnDockingConfig::paper2bsm();
  const auto scenario = chem::buildScenario(cfg.scenario);
  const core::StateEncoder encoder(scenario, cfg.stateMode, cfg.normalizeStates);
  metadock::DockingEnv env(scenario, cfg.env);

  std::printf("=== Table 1: RL hyperparameters (paper value in brackets) ===\n");
  std::printf("%-34s %10zu  [1,800]\n", "Number of episodes M", cfg.trainer.episodes);
  std::printf("%-34s %10d  [1,000]\n", "Maximum time-steps limit T", cfg.env.maxSteps);
  std::printf("%-34s %10zu  [16,599]\n", "State space", encoder.dim());
  std::printf("%-34s %10d  [12]\n", "Action space", env.actionCount());
  std::printf("%-34s %10.1f  [1]\n", "Shifting length per step", cfg.env.shiftStep);
  std::printf("%-34s %10.1f  [0.5]\n", "Rotating angle per step", cfg.env.rotateStepDeg);
  std::printf("%-34s %10zu  [20,000]\n", "Initial exploration steps",
              cfg.trainer.epsilon.pureExplorationSteps());
  std::printf("%-34s %10.2f  [1]\n", "epsilon initial value", cfg.trainer.epsilon.start());
  std::printf("%-34s %10.2f  [0.05]\n", "epsilon final value", cfg.trainer.epsilon.end());
  std::printf("%-34s %10s  [4.5e-5]\n", "epsilon decay", "4.5e-5");
  std::printf("%-34s %10.2f  [0.99]\n", "gamma discount rate", cfg.agent.gamma);
  std::printf("%-34s %10zu  [400,000]\n", "Experience replay pool size N", cfg.replayCapacity);
  std::printf("%-34s %10zu  [10,000]\n", "Learning start", cfg.trainer.learningStart);
  std::printf("%-34s %10zu  [1,000]\n", "Steps C to update target network",
              cfg.agent.targetSyncInterval);

  std::printf("\n=== Table 1: DL hyperparameters ===\n");
  std::printf("%-34s %10zu  [2]\n", "Number of hidden layers", cfg.agent.hiddenSizes.size());
  std::printf("%-34s %10zu  [135 = 45x3]\n", "Hidden layer size", cfg.agent.hiddenSizes[0]);
  std::printf("%-34s %10s  [ReLU]\n", "Activation function", "ReLU");
  std::printf("%-34s %10s  [RMSprop]\n", "Update rule", cfg.agent.optimizer.c_str());
  std::printf("%-34s %10.5f  [0.00025]\n", "Learning rate", cfg.agent.learningRate);
  std::printf("%-34s %10zu  [32]\n", "Minibatch size", cfg.agent.batchSize);

  std::printf("\n=== Figures 1/3: 2BSM scenario geometry ===\n");
  std::printf("%-34s %10zu  [3,264]\n", "Receptor atoms", scenario.receptor.atomCount());
  std::printf("%-34s %10zu  [45]\n", "Ligand atoms", scenario.ligand.atomCount());
  int rotatable = 0;
  for (const auto& b : scenario.ligand.bonds()) rotatable += b.rotatable;
  std::printf("%-34s %10d  [6]\n", "Ligand rotatable bonds", rotatable);
  std::printf("%-34s %10.2f\n", "Initial COM distance (A) [Fig 3 A]", scenario.initialComDistance);
  std::printf("%-34s %10.2f\n", "Initial-pose score", env.score());
  std::printf("%-34s %10.2f\n", "Crystallographic-pose score [Fig 3 B]", env.crystalScore());
  std::printf("%-34s %10.2f\n", "Initial RMSD to crystal (A)", env.rmsdToCrystal());

  // Hard checks: the reproduction must match the paper's dimensions.
  check(encoder.dim() == 16599, "state space != 16,599");
  check(env.actionCount() == 12, "action space != 12");
  check(scenario.receptor.atomCount() == 3264, "receptor atoms != 3,264");
  check(scenario.ligand.atomCount() == 45, "ligand atoms != 45");
  check(rotatable == 6, "rotatable bonds != 6");
  check(env.crystalScore() > env.score(), "crystal pose does not beat initial pose");
  std::printf("\nAll Table 1 dimensions match the paper.\n");
  return 0;
}
