// Reproduces paper Figure 4: "Training curve tracking the average
// predicted action-value" — the average maximum predicted Q per episode
// over the whole training run.
//
// Paper result (GPU, 1,800 episodes, 2BSM): the series rises to ~35,000
// around episode 500 and then declines to ~27,000 by episode 1,800 — i.e.
// learning clearly happens but convergence is not established.
//
// Expected reproduction shape (CPU, scaled preset): avgMaxQ rises from ~0
// during the pure-exploration phase, peaks after learning kicks in, and
// then plateaus or declines rather than converging monotonically. The
// absolute magnitude differs (it is set by the reward scale and episode
// lengths), but rise-then-non-convergence is the Figure 4 signature.
//
// Usage:
//   bench_fig4_training                    # scaled preset (seconds)
//   bench_fig4_training --episodes=300     # longer run
//   bench_fig4_training --paper-scale      # full Table 1 configuration
//   bench_fig4_training --vector-envs=8    # lockstep vectorized trainer
//   bench_fig4_training --csv=fig4.csv     # dump the series

#include <cstdio>

#include "src/common/cli.hpp"
#include "src/common/stopwatch.hpp"
#include "src/core/dqn_docking.hpp"

using namespace dqndock;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  core::DqnDockingConfig cfg = args.getBool("paper-scale", false)
                                   ? core::DqnDockingConfig::paper2bsm()
                                   : core::DqnDockingConfig::scaled();
  cfg.trainer.episodes =
      static_cast<std::size_t>(args.getInt("episodes", static_cast<long>(cfg.trainer.episodes)));
  cfg.trainer.seed = static_cast<std::uint64_t>(args.getInt("seed", 2018));
  cfg.vectorEnvs =
      static_cast<std::size_t>(args.getInt("vector-envs", static_cast<long>(cfg.vectorEnvs)));
  if (cfg.vectorEnvs >= 1) cfg.compactReplay = false;  // vectorized needs raw-state replay

  std::printf("# Figure 4 reproduction: avg max predicted Q per episode\n");
  std::printf("# preset=%s episodes=%zu stateDim mode=%s\n",
              args.getBool("paper-scale", false) ? "paper2bsm" : "scaled", cfg.trainer.episodes,
              core::stateModeName(cfg.stateMode));

  ThreadPool pool;
  core::DqnDocking system(cfg, &pool);
  std::printf("# state=%zu actions=%d agentParams=%zu\n", system.stateDim(),
              system.actionCount(), system.agent().online().parameterCountTotal());

  Stopwatch clock;
  const std::size_t logEvery = std::max<std::size_t>(1, cfg.trainer.episodes / 30);
  std::printf("%8s %14s %14s %12s %10s %8s\n", "episode", "avgMaxQ", "reward", "bestScore",
              "steps", "eps");
  const auto printRecord = [&](const rl::EpisodeRecord& r) {
    if (r.episode % logEvery == 0 || r.episode + 1 == cfg.trainer.episodes) {
      std::printf("%8zu %14.4f %14.2f %12.2f %10zu %8.3f\n", r.episode, r.avgMaxQ, r.totalReward,
                  r.bestScore, r.steps, r.epsilon);
    }
  };
  if (cfg.vectorEnvs >= 1) {
    // The lockstep schedule has no single-episode granularity; records
    // stream out of run() in completion order via the callback.
    system.trainer().setEpisodeCallback(printRecord);
    system.train();
  } else {
    for (std::size_t e = 0; e < cfg.trainer.episodes; ++e) printRecord(system.trainEpisode());
  }
  const double elapsed = clock.seconds();

  const rl::MetricsLog& log = system.metrics();
  const std::size_t n = log.size();
  const double early = log.meanAvgMaxQ(0, n / 4);
  const double mid = log.meanAvgMaxQ(n / 4, 3 * n / 4);
  const double late = log.meanAvgMaxQ(3 * n / 4, n);
  std::printf("\n# Figure 4 shape summary (quartile means of avgMaxQ):\n");
  std::printf("#   early  (first quarter): %10.4f\n", early);
  std::printf("#   middle (mid half):      %10.4f\n", mid);
  std::printf("#   late   (last quarter):  %10.4f\n", late);
  std::printf("#   paper shape: rise from start, then plateau/decline (no convergence)\n");
  std::printf("#   reproduced rise:        %s (middle > early)\n", mid > early ? "yes" : "no");
  std::printf("#   non-monotone tail:      %s (late <= middle or decline observed)\n",
              late <= mid * 1.5 ? "yes" : "no");
  std::printf("# best docking score over training: %.2f\n", log.bestScoreOverall());

  const rl::EpisodeRecord greedy = system.evaluateGreedy();
  std::printf("# greedy policy after training: steps=%zu bestScore=%.2f reward=%.1f\n",
              greedy.steps, greedy.bestScore, greedy.totalReward);
  std::printf("# wall-clock: %.1f s (%zu env steps)\n", elapsed, system.trainer().globalStep());

  const std::string csv = args.getString("csv", "");
  if (!csv.empty()) {
    log.writeCsv(csv);
    std::printf("# series written to %s\n", csv.c_str());
  }
  return 0;
}
