// Ablation A2 (paper Section 1): DQN-Docking's stated goal is to find
// "positions with similar scores as those obtained with state-of-the-art
// Monte Carlo optimization methods". This harness runs every docking
// strategy on the same scenario under the same scoring-evaluation budget
// and reports best score and RMSD to the crystallographic pose:
//
//   * random search            (schema instantiation)
//   * multi-start local search (schema instantiation)
//   * Monte Carlo annealing    (the paper's comparator)
//   * genetic algorithm        (schema instantiation)
//   * DQN-Docking              (trained, then greedy rollout)
//
// Usage: bench_baselines [--budget=20000] [--episodes=60] [--seed=1]

#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/cli.hpp"
#include "src/common/stopwatch.hpp"
#include "src/core/dqn_docking.hpp"
#include "src/metadock/metaheuristic.hpp"
#include "src/metadock/tempering.hpp"

using namespace dqndock;

namespace {

struct Row {
  std::string name;
  double bestScore;
  double rmsd;
  std::size_t evaluations;
  double seconds;
};

double rmsdOfPose(const metadock::LigandModel& ligand, const metadock::Pose& pose,
                  const std::vector<Vec3>& crystal) {
  std::vector<Vec3> pos;
  ligand.applyPose(pose, pos);
  return chem::rmsd(std::span<const Vec3>(pos), crystal);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto budget = static_cast<std::size_t>(args.getInt("budget", 20000));
  const auto episodes = static_cast<std::size_t>(args.getInt("episodes", 60));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

  // Everyone faces the same scaled scenario (CPU budget); --paper-scale
  // escalates to the 2BSM-sized instance.
  core::DqnDockingConfig cfg = args.getBool("paper-scale", false)
                                   ? core::DqnDockingConfig::paper2bsm()
                                   : core::DqnDockingConfig::scaled();
  cfg.trainer.episodes = episodes;
  cfg.trainer.seed = seed;
  const chem::Scenario scenario = chem::buildScenario(cfg.scenario);

  metadock::ReceptorModel receptor(scenario.receptor, cfg.env.scoring.cutoff);
  metadock::LigandModel ligand(scenario.ligand);
  metadock::ScoringFunction scoring(receptor, ligand, cfg.env.scoring);
  ThreadPool pool;

  std::vector<Row> rows;

  // ---- Metaheuristic baselines through the METADOCK schema. ------------
  for (auto params :
       {metadock::MetaheuristicParams::randomSearch(), metadock::MetaheuristicParams::localSearch(),
        metadock::MetaheuristicParams::monteCarlo(), metadock::MetaheuristicParams::genetic()}) {
    params.maxEvaluations = budget;
    metadock::PoseEvaluator evaluator(scoring, &pool);
    metadock::MetaheuristicEngine engine(evaluator, params);
    Rng rng(seed);
    Stopwatch clock;
    const auto result = engine.runFrom(ligand.restPose(), rng);
    rows.push_back({params.name, result.best.score,
                    rmsdOfPose(ligand, result.best.pose, scenario.crystalPositions),
                    result.evaluations, clock.seconds()});
  }

  // ---- Parallel tempering (replica exchange). ---------------------------
  {
    metadock::TemperingParams params;
    params.maxEvaluations = budget;
    metadock::PoseEvaluator evaluator(scoring, &pool);
    metadock::ParallelTempering pt(evaluator, params);
    Rng rng(seed);
    Stopwatch clock;
    const auto result = pt.runFrom(ligand.restPose(), rng);
    rows.push_back({"tempering", result.best.score,
                    rmsdOfPose(ligand, result.best.pose, scenario.crystalPositions),
                    result.evaluations, clock.seconds()});
  }

  // ---- DQN-Docking: train, then greedy rollout. -------------------------
  {
    Stopwatch clock;
    core::DqnDocking system(cfg, &pool);
    system.train();
    const rl::EpisodeRecord greedy = system.evaluateGreedy();
    rows.push_back({"dqn-docking", system.metrics().bestScoreOverall(),
                    system.env().rmsdToCrystal(), system.env().evaluationCount(),
                    clock.seconds()});
    std::printf("# dqn-docking greedy rollout: steps=%zu bestScore=%.2f\n", greedy.steps,
                greedy.bestScore);
  }

  const double crystalScore = scoring.score(scenario.crystalPositions);
  std::printf("# scenario: receptor=%zu atoms, ligand=%zu atoms, crystal score=%.2f\n",
              scenario.receptor.atomCount(), scenario.ligand.atomCount(), crystalScore);
  std::printf("%-16s %14s %12s %14s %10s\n", "method", "bestScore", "rmsd(A)", "evaluations",
              "seconds");
  for (const auto& r : rows) {
    std::printf("%-16s %14.2f %12.2f %14zu %10.2f\n", r.name.c_str(), r.bestScore, r.rmsd,
                r.evaluations, r.seconds);
  }
  std::printf("# paper expectation: DQN-Docking reaches scores in the same band as the\n"
              "# Monte Carlo comparator (it is 'an early approach', not yet superior).\n");
  return 0;
}
