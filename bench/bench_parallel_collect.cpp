// Ablation A11 (ICPP context): parallel experience collection. The
// paper's loop is one sequential METADOCK instance; with E environment
// replicas feeding one replay buffer, acting throughput scales with
// cores (on this CI host, scaling shows as per-replica CPU sharing; on a
// multi-core node, as wall-clock). Reports collected env-steps/second
// and the learning outcome at equal episode counts.
//
// Usage: bench_parallel_collect [--episodes-per-replica=15] [--seed=8]

#include <cstdio>
#include <memory>

#include "src/common/cli.hpp"
#include "src/common/stopwatch.hpp"
#include "src/core/dqn_docking.hpp"
#include "src/rl/parallel_collector.hpp"

using namespace dqndock;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto episodesPerReplica =
      static_cast<std::size_t>(args.getInt("episodes-per-replica", 15));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 8));

  const core::DqnDockingConfig cfg = core::DqnDockingConfig::scaled();
  const chem::Scenario scenario = chem::buildScenario(cfg.scenario);
  ThreadPool pool;

  std::printf("# parallel experience collection on the scaled docking task\n");
  std::printf("%-10s %12s %12s %14s %12s %8s\n", "replicas", "episodes", "steps", "steps/s",
              "bestScore", "sec");

  for (std::size_t replicas : {1u, 2u, 4u, 8u}) {
    // Each replica owns an env + encoder + task (no shared mutable state).
    std::vector<std::unique_ptr<metadock::DockingEnv>> envStore;
    std::vector<std::unique_ptr<core::StateEncoder>> encStore;
    std::vector<std::unique_ptr<rl::Environment>> envs;
    for (std::size_t i = 0; i < replicas; ++i) {
      envStore.push_back(std::make_unique<metadock::DockingEnv>(scenario, cfg.env));
      encStore.push_back(std::make_unique<core::StateEncoder>(scenario, cfg.stateMode,
                                                              cfg.normalizeStates));
      envs.push_back(std::make_unique<core::DockingTask>(*envStore.back(), *encStore.back()));
    }

    Rng rng(seed);
    rl::DqnAgent agent(encStore.front()->dim(),
                       envStore.front()->actionCount(), cfg.agent, rng);
    rl::ReplayBuffer replay(cfg.replayCapacity, encStore.front()->dim());

    rl::ParallelCollectorConfig pcfg;
    // Equal total episodes across rows: replicas * episodesPerReplica'.
    pcfg.episodesPerReplica = episodesPerReplica * 8 / replicas;
    pcfg.epsilon = cfg.trainer.epsilon;
    pcfg.learningStart = cfg.trainer.learningStart;
    pcfg.seed = seed;

    Stopwatch clock;
    const rl::CollectorStats stats =
        rl::collectParallel(envs, agent, replay, replay, pcfg, &pool);
    const double secs = clock.seconds();
    std::printf("%-10zu %12zu %12zu %14.0f %12.2f %8.1f\n", replicas, stats.totalEpisodes,
                stats.totalSteps, stats.totalSteps / secs, stats.bestScore, secs);
  }
  std::printf("# equal total episodes per row; on a multi-core host steps/s rises with\n"
              "# replicas (acting dominates the scaled preset's cost).\n");
  return 0;
}
