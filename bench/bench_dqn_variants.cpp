// Ablation A4 (paper Section 5, limitation 4): "there exists new versions
// of this algorithm ... such as DDQN, distributional DQN, dueling DDQN";
// the authors leave exploring them as future work. Trains each variant on
// the same scaled docking task and reports the Figure 4 quartile shape,
// best docking score and greedy-policy outcome per variant.
//
// Usage: bench_dqn_variants [--episodes=60] [--seed=3]

#include <algorithm>
#include <cstdio>

#include "src/common/cli.hpp"
#include "src/common/running_stats.hpp"
#include "src/common/stopwatch.hpp"
#include "src/core/dqn_docking.hpp"
#include "src/rl/c51_agent.hpp"

using namespace dqndock;

namespace {

/// C51 does not share DqnAgent's class, so it gets a hand-rolled episode
/// loop over the same DockingTask with the same schedule.
void runC51Row(const core::DqnDockingConfig& cfg, ThreadPool* pool) {
  const chem::Scenario scenario = chem::buildScenario(cfg.scenario);
  metadock::DockingEnv env(scenario, cfg.env);
  core::StateEncoder encoder(scenario, cfg.stateMode, cfg.normalizeStates);
  core::DockingTask task(env, encoder);

  Rng rng(cfg.trainer.seed);
  rl::C51Config c51;
  c51.hiddenSizes = cfg.agent.hiddenSizes;
  c51.batchSize = cfg.agent.batchSize;
  c51.gamma = cfg.agent.gamma;
  c51.targetSyncInterval = cfg.agent.targetSyncInterval;
  c51.optimizer = "adam";
  c51.learningRate = 0.001;
  c51.vMin = -10.0;
  c51.vMax = 10.0;
  rl::C51Agent agent(encoder.dim(), env.actionCount(), c51, rng, pool);
  rl::ReplayBuffer replay(cfg.replayCapacity, encoder.dim());

  Stopwatch clock;
  rl::MetricsLog log;
  std::vector<double> state, next;
  std::size_t step = 0;
  double bestScore = -1e300;
  for (std::size_t episode = 0; episode < cfg.trainer.episodes; ++episode) {
    task.reset(state);
    rl::EpisodeRecord record;
    record.episode = episode;
    RunningStats maxQ;
    bool terminal = false;
    while (!terminal) {
      maxQ.add(agent.maxQ(state));
      const int action =
          agent.selectAction(state, cfg.trainer.epsilon.value(step), rng);
      const rl::EnvStep r = task.step(action, next);
      replay.push(state, action, r.reward, next, r.terminal);
      state = next;
      terminal = r.terminal;
      ++step;
      ++record.steps;
      record.totalReward += r.reward;
      bestScore = std::max(bestScore, task.score());
      if (step >= cfg.trainer.learningStart) agent.learn(replay, rng);
    }
    record.avgMaxQ = maxQ.mean();
    log.add(record);
  }
  const std::size_t n = log.size();
  // Greedy rollout.
  task.reset(state);
  double greedyBest = task.score();
  for (int t = 0; t < cfg.env.maxSteps; ++t) {
    const rl::EnvStep r = task.step(agent.greedyAction(state), next);
    state = next;
    greedyBest = std::max(greedyBest, task.score());
    if (r.terminal) break;
  }
  std::printf("%-14s %12.4f %12.4f %12.4f %12.2f %12.2f %8.1f\n", "c51",
              log.meanAvgMaxQ(0, n / 4), log.meanAvgMaxQ(n / 4, 3 * n / 4),
              log.meanAvgMaxQ(3 * n / 4, n), bestScore, greedyBest, clock.seconds());
}

}  // namespace

namespace {

struct VariantSpec {
  const char* name;
  rl::DqnVariant variant;
  bool dueling;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto episodes = static_cast<std::size_t>(args.getInt("episodes", 60));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 3));

  const VariantSpec variants[] = {
      {"dqn (paper)", rl::DqnVariant::kVanilla, false},
      {"double-dqn", rl::DqnVariant::kDouble, false},
      {"dueling-dqn", rl::DqnVariant::kVanilla, true},
      {"dueling-ddqn", rl::DqnVariant::kDouble, true},
  };

  ThreadPool pool;
  std::printf("# DQN variant ablation on the scaled docking task (%zu episodes, seed %zu)\n",
              episodes, static_cast<std::size_t>(seed));
  std::printf("%-14s %12s %12s %12s %12s %12s %8s\n", "variant", "earlyQ", "midQ", "lateQ",
              "bestScore", "greedyBest", "sec");

  for (const auto& spec : variants) {
    core::DqnDockingConfig cfg = core::DqnDockingConfig::scaled();
    cfg.trainer.episodes = episodes;
    cfg.trainer.seed = seed;
    cfg.agent.variant = spec.variant;
    cfg.agent.dueling = spec.dueling;

    Stopwatch clock;
    core::DqnDocking system(cfg, &pool);
    system.train();
    const rl::MetricsLog& log = system.metrics();
    const std::size_t n = log.size();
    const rl::EpisodeRecord greedy = system.evaluateGreedy();
    std::printf("%-14s %12.4f %12.4f %12.4f %12.2f %12.2f %8.1f\n", spec.name,
                log.meanAvgMaxQ(0, n / 4), log.meanAvgMaxQ(n / 4, 3 * n / 4),
                log.meanAvgMaxQ(3 * n / 4, n), log.bestScoreOverall(), greedy.bestScore,
                clock.seconds());
  }
  // Distributional DQN (the third Section 5 variant) via its own loop.
  {
    core::DqnDockingConfig cfg = core::DqnDockingConfig::scaled();
    cfg.trainer.episodes = episodes;
    cfg.trainer.seed = seed;
    runC51Row(cfg, &pool);
  }

  std::printf("# paper context: only vanilla DQN was evaluated; the variants are the\n"
              "# Section 5 future-work candidates, reproduced here as an ablation.\n");
  return 0;
}
