// Ablation A7: precomputed affinity grids vs the direct Equation 1 sum.
// AutoDock-style maps trade a one-time tabulation cost (and memory) for
// per-pose scoring that is independent of receptor size — the classic
// docking-engine optimisation, quantified here on the 2BSM-sized
// scenario: build time, map memory, per-pose latency and accuracy drift.

#include "bench/benchkit.hpp"

#include <cstdio>
#include <memory>

#include "src/chem/synthetic.hpp"
#include "src/common/stopwatch.hpp"
#include "src/metadock/grid_potential.hpp"

using namespace dqndock;
using namespace dqndock::metadock;

namespace {

struct World {
  chem::Scenario scenario;
  std::unique_ptr<ReceptorModel> receptor;
  std::unique_ptr<LigandModel> ligand;
  std::unique_ptr<ScoringFunction> exact;
  std::unique_ptr<GridPotential> grid;
  Pose pocketPose;

  World() : scenario(chem::buildScenario(chem::ScenarioSpec::paper2bsm())) {
    receptor = std::make_unique<ReceptorModel>(scenario.receptor, 12.0);
    ligand = std::make_unique<LigandModel>(scenario.ligand);
    exact = std::make_unique<ScoringFunction>(*receptor, *ligand, ScoringOptions{});
    GridPotentialOptions opts;
    opts.spacing = 1.0;  // coarser than AutoDock's default to bound build cost
    grid = std::make_unique<GridPotential>(*receptor, opts);
    pocketPose = Pose(ligand->torsionCount());
    pocketPose.translation = scenario.pocketCenter + Vec3{0, 0, 2.0};
  }
};

World& world() {
  static World w;
  return w;
}

}  // namespace

static void BM_ExactScorePose(benchmark::State& state) {
  World& w = world();
  std::vector<Vec3> scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.exact->scorePose(w.pocketPose, scratch));
  }
  state.SetLabel("direct Eq.1 sum (grid-pruned)");
}
BENCHMARK(BM_ExactScorePose);

static void BM_GridMapScorePose(benchmark::State& state) {
  World& w = world();
  GridScoringFunction gsf(*w.grid, *w.ligand);
  std::vector<Vec3> scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gsf.scorePose(w.pocketPose, scratch));
  }
  state.SetLabel("trilinear affinity-map lookup");
}
BENCHMARK(BM_GridMapScorePose);

int main(int argc, char** argv) {
  Stopwatch buildClock;
  World& w = world();  // forces the one-time map build
  const double buildSeconds = buildClock.seconds();

  std::vector<Vec3> scratch;
  const double exactScore = w.exact->scorePose(w.pocketPose, scratch);
  GridScoringFunction gsf(*w.grid, *w.ligand);
  const double gridScore = gsf.scorePose(w.pocketPose, scratch);

  std::printf("# affinity-map ablation (2BSM-sized receptor, spacing %.2f A):\n",
              w.grid->options().spacing);
  std::printf("#   one-time build: %.1f s, map memory: %.1f MiB\n", buildSeconds,
              static_cast<double>(w.grid->memoryBytes()) / (1024.0 * 1024.0));
  std::printf("#   pocket-pose score: exact=%.2f grid=%.2f (drift %.2f%%)\n", exactScore,
              gridScore, 100.0 * (gridScore - exactScore) / exactScore);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
