// Ablation A6b: throughput of the Q-network at the paper's architecture
// (Table 1: input 16,599 / hidden 135x135 / output 12, minibatch 32) and
// at the scaled preset's dimensions, across thread counts.

#include "bench/benchkit.hpp"

#include <memory>
#include <stdexcept>

#include "src/nn/gemm_kernels.hpp"
#include "src/nn/mlp.hpp"

using namespace dqndock;
using nn::Mlp;
using nn::Tensor;

namespace {

Tensor randomBatch(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor t(rows, cols);
  for (double& v : t.flat()) v = rng.gaussian();
  return t;
}

void runForward(benchmark::State& state, std::vector<std::size_t> dims, std::size_t batch,
                std::size_t threads) {
  Rng rng(1);
  std::unique_ptr<ThreadPool> pool = threads ? std::make_unique<ThreadPool>(threads) : nullptr;
  Mlp net(dims, rng, pool.get());
  Tensor x = randomBatch(batch, dims.front(), rng);
  Tensor y;
  for (auto _ : state) {
    net.predict(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(batch));
}

void runTrainStep(benchmark::State& state, std::vector<std::size_t> dims, std::size_t batch,
                  std::size_t threads) {
  Rng rng(2);
  std::unique_ptr<ThreadPool> pool = threads ? std::make_unique<ThreadPool>(threads) : nullptr;
  Mlp net(dims, rng, pool.get());
  Tensor x = randomBatch(batch, dims.front(), rng);
  Tensor g = randomBatch(batch, dims.back(), rng);
  for (auto _ : state) {
    net.zeroGrad();
    net.forward(x);
    net.backward(g);
    benchmark::DoNotOptimize(net.gradients()[0]->data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(batch));
}

// --- Static-prefix fold (paper 2BSM: 16,332 of 16,599 inputs constant) ----

constexpr std::size_t kPaperStaticPrefix = 16332;

std::vector<double> foldPrefix(std::size_t s, Rng& rng) {
  std::vector<double> prefix(s);
  for (double& v : prefix) v = rng.gaussian();
  return prefix;
}

/// Folded forward fed dynamic-width rows — exactly what the trainer's
/// collect phase and the serve batcher materialise once the fold is on.
void runForwardFolded(benchmark::State& state, std::vector<std::size_t> dims, std::size_t batch,
                      std::size_t threads) {
  Rng rng(1);
  std::unique_ptr<ThreadPool> pool = threads ? std::make_unique<ThreadPool>(threads) : nullptr;
  Mlp net(dims, rng, pool.get());
  if (!net.configureStaticPrefix(foldPrefix(kPaperStaticPrefix, rng))) {
    throw std::runtime_error("configureStaticPrefix rejected the paper prefix");
  }
  Tensor xd = randomBatch(batch, net.dynamicInputDim(), rng);
  Tensor y;
  net.predict(xd, y);  // fold once outside the timed loop
  for (auto _ : state) {
    net.predict(xd, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(batch));
}

/// Folded forward+backward: the packed dynamic gradient plus the rank-1
/// bias-grad coefficient replace the full-width weight-grad GEMM.
void runTrainStepFolded(benchmark::State& state, std::vector<std::size_t> dims,
                        std::size_t batch, std::size_t threads) {
  Rng rng(2);
  std::unique_ptr<ThreadPool> pool = threads ? std::make_unique<ThreadPool>(threads) : nullptr;
  Mlp net(dims, rng, pool.get());
  if (!net.configureStaticPrefix(foldPrefix(kPaperStaticPrefix, rng))) {
    throw std::runtime_error("configureStaticPrefix rejected the paper prefix");
  }
  Tensor xd = randomBatch(batch, net.dynamicInputDim(), rng);
  Tensor g = randomBatch(batch, dims.back(), rng);
  for (auto _ : state) {
    net.zeroGrad();
    net.forward(xd);
    net.backward(g);
    benchmark::DoNotOptimize(net.gradients()[0]->data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(batch));
}

}  // namespace

// Paper architecture: 16,599 -> 135 -> 135 -> 12.
static void BM_PaperNetForward(benchmark::State& state) {
  runForward(state, {16599, 135, 135, 12}, 32, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_PaperNetForward)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

static void BM_PaperNetTrainStep(benchmark::State& state) {
  runTrainStep(state, {16599, 135, 135, 12}, 32, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_PaperNetTrainStep)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Scaled preset: ligand-only state of the tiny scenario (36 -> 64 -> 64 -> 12).
static void BM_ScaledNetForward(benchmark::State& state) {
  runForward(state, {36, 64, 64, 12}, 32, 0);
}
BENCHMARK(BM_ScaledNetForward);

static void BM_ScaledNetTrainStep(benchmark::State& state) {
  runTrainStep(state, {36, 64, 64, 12}, 32, 0);
}
BENCHMARK(BM_ScaledNetTrainStep);

// Single-state inference: the per-env-step action-selection cost.
static void BM_PaperNetSingleInference(benchmark::State& state) {
  runForward(state, {16599, 135, 135, 12}, 1, 0);
}
BENCHMARK(BM_PaperNetSingleInference);

// Folded counterparts (DQNDOCK_FOLD_STATIC default-on path): the input
// layer runs as a 267-column GEMM + cached folded bias.
static void BM_PaperNetForwardFolded(benchmark::State& state) {
  runForwardFolded(state, {16599, 135, 135, 12}, 32, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_PaperNetForwardFolded)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

static void BM_PaperNetTrainStepFolded(benchmark::State& state) {
  runTrainStepFolded(state, {16599, 135, 135, 12}, 32, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_PaperNetTrainStepFolded)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

static void BM_PaperNetSingleInferenceFolded(benchmark::State& state) {
  runForwardFolded(state, {16599, 135, 135, 12}, 1, 0);
}
BENCHMARK(BM_PaperNetSingleInferenceFolded);

/// Custom main: stamp the harness build type, assert state, and the GEMM
/// kernel tier the runs dispatch to, so scripts/bench_nn.py can refuse
/// debug harnesses and label BENCH_nn.json rows with the tier that
/// actually produced them.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
#ifdef DQNDOCK_BENCH_BUILD_TYPE
  benchmark::AddCustomContext("dqndock_bench_build_type", DQNDOCK_BENCH_BUILD_TYPE);
#endif
#ifdef NDEBUG
  benchmark::AddCustomContext("dqndock_bench_asserts", "off");
#else
  benchmark::AddCustomContext("dqndock_bench_asserts", "on");
#endif
  // Resolves exactly the way Mlp::forward/backward will (CPUID probe or
  // the DQNDOCK_FORCE_KERNEL override) and fails loudly here if a forced
  // tier is unavailable rather than publishing mislabelled rows.
  benchmark::AddCustomContext("dqndock_gemm_kernel_tier",
                              nn::gemmTierName(nn::resolveGemmTier()));
  // The folded benchmarks configure the fold explicitly, but the stamp
  // records what the DQNDOCK_FOLD_STATIC gate would give the trainers.
  benchmark::AddCustomContext("dqndock_fold_static",
                              nn::foldStaticEnabled() ? "on" : "off");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
