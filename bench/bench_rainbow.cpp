// Ablation A8 (paper Section 5 / reference [17] Rainbow): the Rainbow
// components implemented here — prioritized replay and n-step returns —
// trained on the same scaled docking task against the paper's vanilla
// configuration. Complements bench_dqn_variants (Double/dueling heads).
//
// Usage: bench_rainbow [--episodes=60] [--seed=5]

#include <cstdio>

#include "src/common/cli.hpp"
#include "src/common/stopwatch.hpp"
#include "src/core/dqn_docking.hpp"

using namespace dqndock;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto episodes = static_cast<std::size_t>(args.getInt("episodes", 60));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 5));

  struct Setup {
    const char* name;
    bool prioritized;
    int nStep;
  };
  const Setup setups[] = {
      {"uniform-1step (paper)", false, 1},
      {"prioritized-1step", true, 1},
      {"uniform-3step", false, 3},
      {"prioritized-3step", true, 3},
  };

  ThreadPool pool;
  std::printf("# Rainbow-component ablation on the scaled docking task (%zu episodes)\n",
              episodes);
  std::printf("%-22s %12s %12s %12s %12s %8s\n", "setup", "earlyQ", "lateQ", "bestScore",
              "greedyBest", "sec");
  for (const auto& setup : setups) {
    core::DqnDockingConfig cfg = core::DqnDockingConfig::scaled();
    cfg.trainer.episodes = episodes;
    cfg.trainer.seed = seed;
    cfg.compactReplay = false;  // PER/n-step need raw storage
    cfg.prioritizedReplay = setup.prioritized;
    cfg.nStep = setup.nStep;

    Stopwatch clock;
    core::DqnDocking system(cfg, &pool);
    system.train();
    const rl::MetricsLog& log = system.metrics();
    const std::size_t n = log.size();
    const rl::EpisodeRecord greedy = system.evaluateGreedy();
    std::printf("%-22s %12.4f %12.4f %12.2f %12.2f %8.1f\n", setup.name,
                log.meanAvgMaxQ(0, n / 4), log.meanAvgMaxQ(3 * n / 4, n),
                log.bestScoreOverall(), greedy.bestScore, clock.seconds());
  }
  std::printf("# paper context: vanilla DQN only; these are the Rainbow ingredients the\n"
              "# authors cite ([17]) as candidate improvements for the PLDP setting.\n");
  return 0;
}
