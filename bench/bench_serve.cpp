// Serving-layer benchmark: how much throughput does micro-batching the
// Q-network forward pass buy over single-request inference? N concurrent
// clients push 1-row requests through the InferenceBatcher, which
// coalesces them into GEMM-friendly batches; the baseline is the same
// request stream served one row at a time. Run with the paper's network
// (16,599 -> 135 -> 135 -> 12) by default:
//
//   ./bench_serve [--dim=16599] [--hidden=135,135] [--actions=12]
//                 [--rows=2048] [--batch=32] [--flush-us=200]
//
// Prints rows/s for the single-row baseline and for client counts
// 1..batch, plus per-request latency percentiles — the speedup column is
// the number the serving layer exists for.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "src/common/cli.hpp"
#include "src/common/rng.hpp"
#include "src/common/stopwatch.hpp"
#include "src/rl/qnetwork.hpp"
#include "src/serve/inference_batcher.hpp"

using namespace dqndock;

namespace {

std::vector<std::size_t> parseHidden(const std::string& spec) {
  std::vector<std::size_t> layers;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) layers.push_back(static_cast<std::size_t>(std::stoul(item)));
  }
  return layers;
}

std::vector<double> makeState(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> s(dim);
  for (double& v : s) v = rng.uniform(-1.0, 1.0);
  return s;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::size_t dim = static_cast<std::size_t>(args.getInt("dim", 16599));
  const std::vector<std::size_t> hidden = parseHidden(args.getString("hidden", "135,135"));
  const int actions = static_cast<int>(args.getInt("actions", 12));
  const std::size_t rows = static_cast<std::size_t>(args.getInt("rows", 2048));
  const std::size_t maxBatch = static_cast<std::size_t>(args.getInt("batch", 32));
  const long flushUs = args.getInt("flush-us", 200);

  Rng rng(2018);
  rl::MlpQNetwork net(dim, hidden, actions, rng);
  std::printf("bench_serve: %zu", dim);
  for (std::size_t h : hidden) std::printf(" -> %zu", h);
  std::printf(" -> %d, %zu rows per run\n\n", actions, rows);

  // Baseline: the same rows served one forward pass per request.
  double singleRowsPerSec = 0.0;
  {
    nn::Tensor in(1, dim), out;
    Stopwatch clock;
    for (std::size_t i = 0; i < rows; ++i) {
      const std::vector<double> s = makeState(dim, i);
      std::copy(s.begin(), s.end(), in.row(0).begin());
      net.predict(in, out);
    }
    singleRowsPerSec = static_cast<double>(rows) / clock.seconds();
    std::printf("%-28s %12.0f rows/s  (speedup 1.00x)\n", "single-request baseline",
                singleRowsPerSec);
  }

  // Micro-batched: `clients` threads feed the batcher concurrently.
  std::printf("%-28s %12s          %8s %8s %8s\n", "", "", "p50", "p99", "max");
  for (std::size_t clients : {1ul, 4ul, 8ul, 16ul, maxBatch}) {
    serve::BatcherOptions opts;
    opts.maxBatch = maxBatch;
    opts.flushDeadline = std::chrono::microseconds(flushUs);
    serve::InferenceBatcher batcher(
        [&](const nn::Tensor& states, nn::Tensor& q) { net.predict(states, q); }, dim, actions,
        opts);

    const std::size_t perClient = rows / clients;
    std::vector<std::vector<double>> latencies(clients);
    Stopwatch clock;
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        latencies[c].reserve(perClient);
        for (std::size_t i = 0; i < perClient; ++i) {
          const std::vector<double> s = makeState(dim, c * perClient + i);
          const auto t0 = std::chrono::steady_clock::now();
          batcher.infer(s);
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                  .count());
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = clock.seconds();
    batcher.shutdown();

    std::vector<double> all;
    for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
    std::sort(all.begin(), all.end());
    const double rowsPerSec = static_cast<double>(all.size()) / seconds;
    const serve::BatcherStats stats = batcher.stats();
    char label[64];
    std::snprintf(label, sizeof label, "batched, %2zu clients", clients);
    std::printf("%-28s %12.0f rows/s  (speedup %.2fx) %7.2fms %7.2fms %7.2fms  mean batch %.1f\n",
                label, rowsPerSec, rowsPerSec / singleRowsPerSec, percentile(all, 0.50),
                percentile(all, 0.99), all.empty() ? 0.0 : all.back(), stats.meanBatchRows());
  }

  std::printf("\nmicro-batching turns %zu concurrent 1-row requests into one GEMM of up to\n"
              "%zu rows — the speedup column is the serving layer's reason to exist.\n",
              maxBatch, maxBatch);
  return 0;
}
