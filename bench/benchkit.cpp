#include "bench/benchkit.hpp"

#include <ctime>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

namespace benchmark {
namespace {

struct Flags {
  std::string filter;
  double minTimeSeconds = 0.5;
  std::string format = "console";  // "console" | "json"
};

Flags& flags() {
  static Flags f;
  return f;
}

std::vector<internal::Benchmark*>& registry() {
  static std::vector<internal::Benchmark*> r;
  return r;
}

std::vector<std::pair<std::string, std::string>>& customContext() {
  static std::vector<std::pair<std::string, std::string>> c;
  return c;
}

double wallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double processCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return wallSeconds();
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// "0.5" or "0.5s" -> 0.5; mirrors google-benchmark's flag syntax.
double parseMinTime(const std::string& text) {
  std::string trimmed = text;
  if (!trimmed.empty() && (trimmed.back() == 's' || trimmed.back() == 'x')) {
    if (trimmed.back() == 'x')
      throw std::invalid_argument("benchkit: --benchmark_min_time=<N>x is not supported");
    trimmed.pop_back();
  }
  std::size_t consumed = 0;
  const double value = std::stod(trimmed, &consumed);
  if (consumed != trimmed.size() || value < 0.0)
    throw std::invalid_argument("benchkit: bad --benchmark_min_time value: " + text);
  return value;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string localDate() {
  const std::time_t now = std::time(nullptr);
  char buf[64];
  std::tm tm{};
  localtime_r(&now, &tm);
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S%z", &tm);
  return buf;
}

struct RunResult {
  std::string name;
  std::size_t iterations = 0;
  double realNsPerIter = 0.0;
  double cpuNsPerIter = 0.0;
  double itemsPerSecond = 0.0;  // 0 when SetItemsProcessed was not called
  std::string label;
};

/// Runs one (benchmark, arg-set) pair, growing the iteration count until
/// the timed region covers --benchmark_min_time; reports the final run.
RunResult runOne(internal::Benchmark* bench, const std::vector<std::int64_t>& args) {
  std::string name = bench->name();
  for (const std::int64_t a : args) name += "/" + std::to_string(a);
  if (bench->useRealTime()) name += "/real_time";

  std::size_t iterations = 1;
  for (;;) {
    State state(iterations, args);
    bench->function()(state);
    const double measured = bench->useRealTime() ? state.realSeconds() : state.cpuSeconds();
    if (measured >= flags().minTimeSeconds || iterations >= (1ull << 30)) {
      RunResult result;
      result.name = std::move(name);
      result.iterations = iterations;
      const double iters = static_cast<double>(iterations);
      result.realNsPerIter = state.realSeconds() * 1e9 / iters;
      result.cpuNsPerIter = state.cpuSeconds() * 1e9 / iters;
      if (state.itemsProcessed() > 0 && measured > 0.0)
        result.itemsPerSecond = static_cast<double>(state.itemsProcessed()) / measured;
      result.label = state.label();
      return result;
    }
    // Aim ~1.4x past the target so the final run rarely undershoots.
    const double grow = measured > 0.0
                            ? 1.4 * flags().minTimeSeconds / measured
                            : 10.0;
    iterations = std::max(iterations + 1,
                          static_cast<std::size_t>(static_cast<double>(iterations) *
                                                   std::min(grow, 10.0)));
  }
}

void printJson(const std::vector<RunResult>& results) {
  std::ostringstream out;
  out << "{\n  \"context\": {\n";
  out << "    \"date\": \"" << jsonEscape(localDate()) << "\",\n";
  out << "    \"num_cpus\": " << std::thread::hardware_concurrency() << ",\n";
  out << "    \"cpu_scaling_enabled\": false,\n";
#ifdef NDEBUG
  out << "    \"library_build_type\": \"release\"";
#else
  out << "    \"library_build_type\": \"debug\"";
#endif
  for (const auto& [key, value] : customContext())
    out << ",\n    \"" << jsonEscape(key) << "\": \"" << jsonEscape(value) << "\"";
  out << "\n  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\n";
    out << "      \"name\": \"" << jsonEscape(r.name) << "\",\n";
    out << "      \"run_name\": \"" << jsonEscape(r.name) << "\",\n";
    out << "      \"run_type\": \"iteration\",\n";
    out << "      \"iterations\": " << r.iterations << ",\n";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", r.realNsPerIter);
    out << "      \"real_time\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6g", r.cpuNsPerIter);
    out << "      \"cpu_time\": " << buf << ",\n";
    out << "      \"time_unit\": \"ns\"";
    if (r.itemsPerSecond > 0.0) {
      std::snprintf(buf, sizeof buf, "%.6g", r.itemsPerSecond);
      out << ",\n      \"items_per_second\": " << buf;
    }
    if (!r.label.empty()) out << ",\n      \"label\": \"" << jsonEscape(r.label) << "\"";
    out << "\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fputs(out.str().c_str(), stdout);
}

void printConsole(const std::vector<RunResult>& results) {
  std::printf("%-44s %14s %14s %12s\n", "Benchmark", "Time", "CPU", "Iterations");
  std::printf("%s\n", std::string(88, '-').c_str());
  for (const RunResult& r : results) {
    std::printf("%-44s %11.0f ns %11.0f ns %12zu", r.name.c_str(), r.realNsPerIter,
                r.cpuNsPerIter, r.iterations);
    if (r.itemsPerSecond > 0.0) std::printf("  items/s=%.4g", r.itemsPerSecond);
    if (!r.label.empty()) std::printf("  %s", r.label.c_str());
    std::printf("\n");
  }
}

}  // namespace

State::State(std::size_t maxIterations, std::vector<std::int64_t> args)
    : maxIterations_(maxIterations), args_(std::move(args)) {}

std::int64_t State::range(std::size_t i) const {
  if (i >= args_.size())
    throw std::out_of_range("benchkit: State::range(" + std::to_string(i) +
                            ") but benchmark has " + std::to_string(args_.size()) + " arg(s)");
  return args_[i];
}

void State::startTiming() {
  timing_ = true;
  cpuStart_ = processCpuSeconds();
  realStart_ = wallSeconds();
}

void State::finishTiming() {
  if (!timing_) return;
  realSeconds_ = wallSeconds() - realStart_;
  cpuSeconds_ = processCpuSeconds() - cpuStart_;
  timing_ = false;
}

namespace internal {

Benchmark* RegisterBenchmark(const char* name, Function fn) {
  // Leaked intentionally: registration objects live for the process.
  auto* bench = new Benchmark(name, fn);
  registry().push_back(bench);
  return bench;
}

}  // namespace internal

void Initialize(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    const auto valueOf = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = valueOf("--benchmark_filter=")) {
      flags().filter = v;
    } else if (const char* v = valueOf("--benchmark_min_time=")) {
      flags().minTimeSeconds = parseMinTime(v);
    } else if (const char* v = valueOf("--benchmark_format=")) {
      if (std::string(v) != "console" && std::string(v) != "json")
        throw std::invalid_argument("benchkit: unsupported --benchmark_format: " + std::string(v));
      flags().format = v;
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
}

bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    std::fprintf(stderr, "benchkit: unrecognized argument: %s\n", argv[i]);
  return argc > 1;
}

void AddCustomContext(const std::string& key, const std::string& value) {
  customContext().emplace_back(key, value);
}

std::size_t RunSpecifiedBenchmarks() {
  std::vector<RunResult> results;
  const std::regex filter(flags().filter.empty() ? std::string(".") : flags().filter);
  for (internal::Benchmark* bench : registry()) {
    for (const std::vector<std::int64_t>& args : bench->runs()) {
      std::string fullName = bench->name();
      for (const std::int64_t a : args) fullName += "/" + std::to_string(a);
      if (!std::regex_search(fullName, filter)) continue;
      results.push_back(runOne(bench, args));
    }
  }
  if (flags().format == "json")
    printJson(results);
  else
    printConsole(results);
  return results.size();
}

void Shutdown() {}

}  // namespace benchmark
