// Ablation A10 (paper Section 2.1): METADOCK/BINDSURF-style blind
// docking — decompose the receptor surface into independent spots and
// dock into all of them in parallel, without being told where the pocket
// is. The headline check: the top-ranked spot should be the carved
// binding pocket, and whole-surface spot search should beat an equal-
// budget global search at localising it.
//
// Usage: bench_blind_docking [--per-spot=800] [--seed=9]

#include <cstdio>

#include "src/chem/synthetic.hpp"
#include "src/common/cli.hpp"
#include "src/common/stopwatch.hpp"
#include "src/metadock/surface_spots.hpp"

using namespace dqndock;
using namespace dqndock::metadock;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto perSpot = static_cast<std::size_t>(args.getInt("per-spot", 800));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 9));

  const chem::Scenario scenario = chem::buildScenario(chem::ScenarioSpec::paper2bsm());
  ReceptorModel receptor(scenario.receptor, 12.0);
  LigandModel ligand(scenario.ligand);
  ScoringFunction scoring(receptor, ligand, {});
  ThreadPool pool;

  Stopwatch clock;
  const auto spots = findSurfaceSpots(receptor);
  std::printf("# surface decomposition: %zu spots over %zu receptor atoms (%.2f s)\n",
              spots.size(), receptor.atomCount(), clock.seconds());

  MetaheuristicParams params = MetaheuristicParams::monteCarlo();
  params.maxEvaluations = perSpot;
  clock.reset();
  const auto results = dockAllSpots(scoring, spots, params, seed, &pool);
  const double spotSeconds = clock.seconds();

  std::printf("%-6s %12s %14s %16s %10s\n", "rank", "spotAtoms", "bestScore",
              "distToPocket(A)", "evals");
  for (std::size_t i = 0; i < std::min<std::size_t>(results.size(), 8); ++i) {
    const auto& r = results[i];
    std::printf("%-6zu %12zu %14.2f %16.2f %10zu\n", i + 1, r.spot.atoms.size(),
                r.best.score, distance(r.spot.center, scenario.pocketCenter), r.evaluations);
  }
  const double winnerDist = distance(results.front().spot.center, scenario.pocketCenter);
  std::printf("# winning spot sits %.2f A from the carved pocket centre (%.1f s total)\n",
              winnerDist, spotSeconds);

  // Equal total budget, single global search for comparison.
  MetaheuristicParams global = MetaheuristicParams::monteCarlo();
  global.maxEvaluations = perSpot * results.size();
  PoseEvaluator evaluator(scoring, &pool);
  MetaheuristicEngine engine(evaluator, global);
  Rng rng(seed);
  clock.reset();
  const auto globalResult = engine.run(rng);
  std::printf("# equal-budget global search: best %.2f in %.1f s (spot sweep best: %.2f)\n",
              globalResult.best.score, clock.seconds(), results.front().best.score);
  std::printf("# expectation: spot-parallel sweep localises the pocket and matches or beats\n"
              "# the unguided global search at the same evaluation budget.\n");
  return 0;
}
