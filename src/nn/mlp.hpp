#pragma once

/// \file mlp.hpp
/// Multilayer perceptron with ReLU hidden activations and a linear output
/// layer — the Q-network architecture of DQN-Docking (paper Table 1:
/// two hidden layers of 135 units). Implements explicit forward/backward
/// passes; optimizers consume the accumulated gradients.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/nn/tensor.hpp"

namespace dqndock::nn {

/// DQNDOCK_FOLD_STATIC gate for the static-prefix input-layer fold.
/// Unset / "" / "on" / "1" / "true" enable it (the default); "off" /
/// "0" / "false" disable it (the escape hatch whose code path is
/// byte-identical to the pre-fold implementation); anything else
/// throws. Read from the environment on every call — build sites query
/// it once at wiring time.
bool foldStaticEnabled();

/// Fully-connected layer: Y = X * W^T + b.
/// W is (out x in); X is (batch x in); Y is (batch x out).
///
/// Static-prefix folding (configureStaticPrefix): when the leading S
/// input columns are known to carry the same values x_s on every call,
///   h = W_s * x_s + W_d * x_d + b
/// is served as a (batch x (in-S)) GEMM against the packed dynamic
/// columns W_d plus a cached folded bias c = W_s * x_s + b. The cache is
/// keyed by a weight-version counter that every non-const weights() /
/// bias() access bumps, so optimizer steps, target syncs,
/// copyWeightsFrom, checkpoint restores and registry hot-swaps all
/// invalidate it without bespoke hooks; the refold is lazy, serialized
/// by a mutex, and published with acquire/release so concurrent const
/// forwardFolded() callers (parallel collectors, the serve batcher)
/// fold exactly once per weight version.
class DenseLayer {
 public:
  DenseLayer(std::size_t inDim, std::size_t outDim);

  // The fold cache holds a mutex/atomic, so the compiler-generated
  // copies/moves are gone; these preserve weights, gradients and the
  // fold *configuration* while dropping the cache (it refolds lazily).
  DenseLayer(const DenseLayer& other);
  DenseLayer& operator=(const DenseLayer& other);
  DenseLayer(DenseLayer&& other) noexcept;
  DenseLayer& operator=(DenseLayer&& other) noexcept;

  /// He-normal weight init (suits the ReLU trunk), zero bias.
  void initHe(Rng& rng);

  /// Y = X*W^T + b, with the bias fused into the GEMM output sweep.
  /// When `relu`, the ReLU clamp (and optional keep-mask capture into
  /// `reluMask`) is fused too — one pass over Y instead of three.
  void forward(const Tensor& x, Tensor& y, ThreadPool* pool, bool relu = false,
               Tensor* reluMask = nullptr) const;

  /// Given dL/dY, accumulate dL/dW and dL/db and produce dL/dX.
  /// `xCache` must be the input of the matching forward call. When
  /// `dxMask` is given it is multiplied elementwise into dX inside the
  /// GEMM (the ReLU gate of the layer below), replacing a separate
  /// reluBackward pass. A null `dx` skips the dL/dX GEMM entirely — the
  /// input layer's callers never read it, and at paper dims that GEMM
  /// streams the full 135 x 16,599 weight matrix for nothing.
  void backward(const Tensor& xCache, const Tensor& dy, Tensor* dx, ThreadPool* pool,
                const Tensor* dxMask = nullptr);

  void zeroGrad();

  std::size_t inDim() const { return weights_.cols(); }
  std::size_t outDim() const { return weights_.rows(); }

  /// Non-const parameter access bumps the weight version: every
  /// mutation path in the codebase (optimizer steps via parameters(),
  /// polyak updates, copyWeightsFrom, checkpoint/serialize restores)
  /// reaches the tensors through these accessors, so the fold cache
  /// can never serve stale weights. Spurious bumps (read-only callers
  /// holding a non-const layer) only cost an extra refold.
  Tensor& weights() {
    ++version_;
    return weights_;
  }
  Tensor& bias() {
    ++version_;
    return bias_;
  }
  const Tensor& weights() const { return weights_; }
  const Tensor& bias() const { return bias_; }
  const Tensor& weightGrad() const { return gradW_; }
  const Tensor& biasGrad() const { return gradB_; }
  Tensor& weightGrad() { return gradW_; }
  Tensor& biasGrad() { return gradB_; }

  /// Monotone counter identifying the current weight/bias contents.
  std::uint64_t weightVersion() const { return version_; }

  // --- Static-prefix folding -------------------------------------------

  /// Declare the leading staticPrefix.size() input columns constant with
  /// these values. Resizes the weight-gradient tensor to the packed
  /// (out x dynamicDim) shape: the static-column gradient is the rank-1
  /// outer product biasGrad ⊗ staticPrefix, reconstructed on the fly by
  /// the optimizer (FactoredPrefixGrad) instead of materialised.
  /// Throws unless 0 < S < inDim().
  void configureStaticPrefix(std::vector<double> staticPrefix);

  bool foldActive() const { return fold_ != nullptr; }
  std::size_t staticLen() const;
  std::size_t dynamicDim() const { return inDim() - staticLen(); }
  std::span<const double> staticPrefix() const;
  /// Number of fold-cache rebuilds so far (test/bench observability:
  /// "folds once per weight version").
  std::uint64_t foldCount() const;

  /// Y = Xd * Wd^T + c, Xd being the (batch x dynamicDim) dynamic
  /// suffix. Same fused epilogue as forward(); ≤1e-12 rel of the
  /// unfolded result (the static partial sums are pre-accumulated) and
  /// bit-deterministic across thread counts and runs per kernel tier.
  void forwardFolded(const Tensor& xd, Tensor& y, ThreadPool* pool, bool relu = false,
                     Tensor* reluMask = nullptr) const;

  /// Folded input-layer backward: accumulates the packed dynamic-column
  /// weight gradient and the bias gradient (which doubles as the
  /// rank-1 coefficient for the static columns). Never produces dX —
  /// nothing consumes dL/dState.
  void backwardFolded(const Tensor& xdCache, const Tensor& dy, ThreadPool* pool);

 private:
  struct Fold {
    std::vector<double> staticPrefix;  ///< the S constant input values
    Tensor wd;                         ///< out x dynamicDim packed dynamic columns
    Tensor c;                          ///< 1 x out folded bias W_s*x_s + b
    mutable std::mutex rebuild;
    std::atomic<std::uint64_t> cachedVersion{0};  ///< 0 = never folded
    std::atomic<std::uint64_t> folds{0};
  };

  /// Bring the fold cache up to weightVersion() (lazy, thread-safe).
  void refold() const;

  Tensor weights_;  // out x in
  Tensor bias_;     // 1 x out
  Tensor gradW_;    // out x in; out x dynamicDim when folding is active
  Tensor gradB_;
  std::uint64_t version_ = 1;
  std::unique_ptr<Fold> fold_;
};

/// In-place ReLU with mask capture for the backward pass.
void reluForward(Tensor& x, Tensor& mask);
void reluBackward(Tensor& grad, const Tensor& mask);

/// MLP: Dense -> ReLU -> ... -> Dense (linear output).
class Mlp {
 public:
  /// `dims` = {input, hidden..., output}; at least {in, out}.
  Mlp(std::vector<std::size_t> dims, Rng& rng, ThreadPool* pool = nullptr);

  std::size_t inputDim() const { return layers_.front().inDim(); }
  std::size_t outputDim() const { return layers_.back().outDim(); }
  const std::vector<std::size_t>& dims() const { return dims_; }
  std::size_t parameterCount() const;

  /// Enable static-prefix folding of the input layer (see DenseLayer).
  /// Once active, forward()/predict() accept inputs of either the full
  /// inputDim() width (the suffix is packed out) or the dynamicInputDim()
  /// width (callers that materialise only the changing reals). Returns
  /// false (and leaves the net unfolded) when the prefix is empty or
  /// covers the whole input.
  bool configureStaticPrefix(std::span<const double> staticPrefix);

  bool foldActive() const { return layers_.front().foldActive(); }
  std::size_t staticPrefixLen() const { return layers_.front().staticLen(); }
  std::size_t dynamicInputDim() const { return layers_.front().dynamicDim(); }
  const DenseLayer& inputLayer() const { return layers_.front(); }

  /// Forward pass; caches activations for a subsequent backward().
  const Tensor& forward(const Tensor& x);

  /// Forward without caching (inference-only; reentrant-safe scratch must
  /// be supplied by the caller).
  void predict(const Tensor& x, Tensor& y) const;

  /// Backprop dL/dOutput through the cached activations; accumulates
  /// parameter gradients (call zeroGrad() between optimizer steps).
  void backward(const Tensor& dLossDOut);

  void zeroGrad();

  /// Stable parameter/gradient pointer lists for optimizers
  /// (order: W0, b0, W1, b1, ...).
  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();

  /// Copy weights from an identically-shaped network (target-network
  /// sync). Throws on shape mismatch.
  void copyWeightsFrom(const Mlp& other);

  std::vector<DenseLayer>& layers() { return layers_; }
  const std::vector<DenseLayer>& layers() const { return layers_; }

  ThreadPool* pool() const { return pool_; }

 private:
  std::vector<std::size_t> dims_;
  std::vector<DenseLayer> layers_;
  ThreadPool* pool_ = nullptr;

  // Forward caches: inputs_[i] fed layer i (post-ReLU for i > 0);
  // reluMasks_[i] masks the ReLU after layer i. forward() writes hidden
  // activations directly into inputs_[i + 1], so the buffers (and the
  // backward ping-pong pair below) are reused across calls instead of
  // reallocated per minibatch.
  std::vector<Tensor> inputs_;
  std::vector<Tensor> reluMasks_;
  Tensor output_;
  Tensor bwdGrad_, bwdDx_;  // backward() gradient ping-pong scratch
};

}  // namespace dqndock::nn
