#pragma once

/// \file mlp.hpp
/// Multilayer perceptron with ReLU hidden activations and a linear output
/// layer — the Q-network architecture of DQN-Docking (paper Table 1:
/// two hidden layers of 135 units). Implements explicit forward/backward
/// passes; optimizers consume the accumulated gradients.

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/nn/tensor.hpp"

namespace dqndock::nn {

/// Fully-connected layer: Y = X * W^T + b.
/// W is (out x in); X is (batch x in); Y is (batch x out).
class DenseLayer {
 public:
  DenseLayer(std::size_t inDim, std::size_t outDim);

  /// He-normal weight init (suits the ReLU trunk), zero bias.
  void initHe(Rng& rng);

  /// Y = X*W^T + b, with the bias fused into the GEMM output sweep.
  /// When `relu`, the ReLU clamp (and optional keep-mask capture into
  /// `reluMask`) is fused too — one pass over Y instead of three.
  void forward(const Tensor& x, Tensor& y, ThreadPool* pool, bool relu = false,
               Tensor* reluMask = nullptr) const;

  /// Given dL/dY, accumulate dL/dW and dL/db and produce dL/dX.
  /// `xCache` must be the input of the matching forward call. When
  /// `dxMask` is given it is multiplied elementwise into dX inside the
  /// GEMM (the ReLU gate of the layer below), replacing a separate
  /// reluBackward pass. A null `dx` skips the dL/dX GEMM entirely — the
  /// input layer's callers never read it, and at paper dims that GEMM
  /// streams the full 135 x 16,599 weight matrix for nothing.
  void backward(const Tensor& xCache, const Tensor& dy, Tensor* dx, ThreadPool* pool,
                const Tensor* dxMask = nullptr);

  void zeroGrad();

  std::size_t inDim() const { return weights_.cols(); }
  std::size_t outDim() const { return weights_.rows(); }

  Tensor& weights() { return weights_; }
  Tensor& bias() { return bias_; }
  const Tensor& weights() const { return weights_; }
  const Tensor& bias() const { return bias_; }
  const Tensor& weightGrad() const { return gradW_; }
  const Tensor& biasGrad() const { return gradB_; }
  Tensor& weightGrad() { return gradW_; }
  Tensor& biasGrad() { return gradB_; }

 private:
  Tensor weights_;  // out x in
  Tensor bias_;     // 1 x out
  Tensor gradW_;
  Tensor gradB_;
};

/// In-place ReLU with mask capture for the backward pass.
void reluForward(Tensor& x, Tensor& mask);
void reluBackward(Tensor& grad, const Tensor& mask);

/// MLP: Dense -> ReLU -> ... -> Dense (linear output).
class Mlp {
 public:
  /// `dims` = {input, hidden..., output}; at least {in, out}.
  Mlp(std::vector<std::size_t> dims, Rng& rng, ThreadPool* pool = nullptr);

  std::size_t inputDim() const { return layers_.front().inDim(); }
  std::size_t outputDim() const { return layers_.back().outDim(); }
  const std::vector<std::size_t>& dims() const { return dims_; }
  std::size_t parameterCount() const;

  /// Forward pass; caches activations for a subsequent backward().
  const Tensor& forward(const Tensor& x);

  /// Forward without caching (inference-only; reentrant-safe scratch must
  /// be supplied by the caller).
  void predict(const Tensor& x, Tensor& y) const;

  /// Backprop dL/dOutput through the cached activations; accumulates
  /// parameter gradients (call zeroGrad() between optimizer steps).
  void backward(const Tensor& dLossDOut);

  void zeroGrad();

  /// Stable parameter/gradient pointer lists for optimizers
  /// (order: W0, b0, W1, b1, ...).
  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();

  /// Copy weights from an identically-shaped network (target-network
  /// sync). Throws on shape mismatch.
  void copyWeightsFrom(const Mlp& other);

  std::vector<DenseLayer>& layers() { return layers_; }
  const std::vector<DenseLayer>& layers() const { return layers_; }

  ThreadPool* pool() const { return pool_; }

 private:
  std::vector<std::size_t> dims_;
  std::vector<DenseLayer> layers_;
  ThreadPool* pool_ = nullptr;

  // Forward caches: inputs_[i] fed layer i (post-ReLU for i > 0);
  // reluMasks_[i] masks the ReLU after layer i. forward() writes hidden
  // activations directly into inputs_[i + 1], so the buffers (and the
  // backward ping-pong pair below) are reused across calls instead of
  // reallocated per minibatch.
  std::vector<Tensor> inputs_;
  std::vector<Tensor> reluMasks_;
  Tensor output_;
  Tensor bwdGrad_, bwdDx_;  // backward() gradient ping-pong scratch
};

}  // namespace dqndock::nn
