#include "src/nn/gemm.hpp"

#include <stdexcept>

#include "src/nn/gemm_kernels.hpp"

namespace dqndock::nn {

namespace {
constexpr std::size_t kParallelThreshold = 8192;  // skip pool dispatch for tiny products
}

void gemmABt(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool,
             const GemmEpilogue& epilogue) {
  if (a.cols() != b.cols()) throw std::invalid_argument("gemmABt: inner dimension mismatch");
  const std::size_t m = a.rows(), n = b.rows(), k = a.cols();
  if (epilogue.bias != nullptr &&
      (epilogue.bias->rows() != 1 || epilogue.bias->cols() != n)) {
    throw std::invalid_argument("gemmABt: bias must be 1 x n");
  }
  if (epilogue.reluMask != nullptr && !epilogue.relu) {
    throw std::invalid_argument("gemmABt: reluMask requires relu");
  }
  // The kernel writes every element of C (and of the mask), so skip the
  // zero-fill resize() would pay.
  c.resizeOverwrite(m, n);
  double* maskPtr = nullptr;
  if (epilogue.reluMask != nullptr) {
    epilogue.reluMask->resizeOverwrite(m, n);
    maskPtr = epilogue.reluMask->data();
  }
  const double* biasPtr = epilogue.bias != nullptr ? epilogue.bias->data() : nullptr;
  const auto& ops = detail::gemmKernelOps(gemmKernelTier());
  auto body = [&](std::size_t lo, std::size_t hi) {
    ops.abtRows(a.data(), b.data(), c.data(), lo, hi, n, k, biasPtr, epilogue.relu, maskPtr);
  };
  if (pool && m * n * k >= kParallelThreshold) {
    pool->parallelFor(0, m, body);
  } else {
    body(0, m);
  }
}

void gemmAB(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool, const Tensor* mask) {
  if (a.cols() != b.rows()) throw std::invalid_argument("gemmAB: inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (mask != nullptr && (mask->rows() != m || mask->cols() != n)) {
    throw std::invalid_argument("gemmAB: mask shape mismatch");
  }
  c.resize(m, n);  // zero base: the kernel accumulates into C
  const double* maskPtr = mask != nullptr ? mask->data() : nullptr;
  const auto& ops = detail::gemmKernelOps(gemmKernelTier());
  auto body = [&](std::size_t lo, std::size_t hi) {
    ops.abRows(a.data(), b.data(), c.data(), lo, hi, n, k, maskPtr);
  };
  if (pool && m * n * k >= kParallelThreshold) {
    pool->parallelFor(0, m, body);
  } else {
    body(0, m);
  }
}

void gemmAtBAccum(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool) {
  if (a.rows() != b.rows()) throw std::invalid_argument("gemmAtBAccum: outer dimension mismatch");
  if (c.rows() != a.cols() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemmAtBAccum: output shape mismatch");
  }
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  const auto& ops = detail::gemmKernelOps(gemmKernelTier());
  // Parallelize over rows of C (columns of A) so threads never share an
  // output cache line region.
  auto body = [&](std::size_t lo, std::size_t hi) {
    ops.atbRows(a.data(), b.data(), c.data(), lo, hi, m, n, k);
  };
  if (pool && m * n * k >= kParallelThreshold) {
    pool->parallelFor(0, m, body);
  } else {
    body(0, m);
  }
}

}  // namespace dqndock::nn
