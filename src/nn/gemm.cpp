#include "src/nn/gemm.hpp"

#include <stdexcept>

namespace dqndock::nn {

namespace {
constexpr std::size_t kParallelThreshold = 8192;  // skip pool dispatch for tiny products
}

void gemmABt(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool) {
  if (a.cols() != b.cols()) throw std::invalid_argument("gemmABt: inner dimension mismatch");
  const std::size_t m = a.rows(), n = b.rows(), k = a.cols();
  c.resize(m, n);
  auto body = [&](std::size_t lo, std::size_t hi) {
    // 4-row register tile: four independent accumulator chains hide the
    // FP-add latency a single serial dot is bound by, and each B row is
    // streamed once per 4 output rows instead of once per row. Every
    // c[i][j] still accumulates over p in ascending order, so results are
    // bit-identical to the plain loop at any batch height. (Wider tiles
    // spill accumulators out of registers and run slower.)
    std::size_t i = lo;
    for (; i + 4 <= hi; i += 4) {
      const double* a0 = a.data() + i * k;
      const double* a1 = a0 + k;
      const double* a2 = a1 + k;
      const double* a3 = a2 + k;
      double* ci = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const double* bj = b.data() + j * k;
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        for (std::size_t p = 0; p < k; ++p) {
          const double bv = bj[p];
          s0 += a0[p] * bv;
          s1 += a1[p] * bv;
          s2 += a2[p] * bv;
          s3 += a3[p] * bv;
        }
        ci[j] = s0;
        ci[n + j] = s1;
        ci[2 * n + j] = s2;
        ci[3 * n + j] = s3;
      }
    }
    for (; i < hi; ++i) {
      const double* ai = a.data() + i * k;
      double* ci = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const double* bj = b.data() + j * k;
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
        ci[j] = acc;
      }
    }
  };
  if (pool && m * n * k >= kParallelThreshold) {
    pool->parallelFor(0, m, body);
  } else {
    body(0, m);
  }
}

void gemmAB(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool) {
  if (a.cols() != b.rows()) throw std::invalid_argument("gemmAB: inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  c.resize(m, n);
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const double* ai = a.data() + i * k;
      double* ci = c.data() + i * n;
      // ikj loop order: streams B row-wise, accumulates into C row.
      for (std::size_t p = 0; p < k; ++p) {
        const double av = ai[p];
        if (av == 0.0) continue;
        const double* bp = b.data() + p * n;
        for (std::size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
      }
    }
  };
  if (pool && m * n * k >= kParallelThreshold) {
    pool->parallelFor(0, m, body);
  } else {
    body(0, m);
  }
}

void gemmAtBAccum(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool) {
  if (a.rows() != b.rows()) throw std::invalid_argument("gemmAtBAccum: outer dimension mismatch");
  if (c.rows() != a.cols() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemmAtBAccum: output shape mismatch");
  }
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  // Parallelize over rows of C (columns of A) so threads never share an
  // output cache line region.
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      double* ci = c.data() + i * n;
      for (std::size_t p = 0; p < k; ++p) {
        const double av = a(p, i);
        if (av == 0.0) continue;
        const double* bp = b.data() + p * n;
        for (std::size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
      }
    }
  };
  if (pool && m * n * k >= kParallelThreshold) {
    pool->parallelFor(0, m, body);
  } else {
    body(0, m);
  }
}

}  // namespace dqndock::nn
