#include "src/nn/gemm.hpp"

#include <stdexcept>

#include "src/nn/gemm_kernels.hpp"

namespace dqndock::nn {

namespace {
/// Min multiply-adds per worker before fanning a GEMM out. Every worker
/// re-streams its full share of the B matrix plus fan-out/join overhead,
/// so splitting a product below this floor is a net loss — the measured
/// paper-shape forward (m=32, n=135, k=16,599 → 71.7M madds) ran ~1.5x
/// SLOWER on 2 threads than serial. The cap keeps Table-1-sized GEMMs
/// serial while large batches (virtual-screening sweeps, wide replay
/// batches) still split across the pool.
constexpr std::size_t kMinWorkPerWorker = 48u * 1024u * 1024u;

/// Max partitions for an m*n*k product; <= 1 means run serial.
std::size_t partitionCap(std::size_t m, std::size_t n, std::size_t k) {
  return (m * n * k) / kMinWorkPerWorker;
}
}  // namespace

void gemmABt(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool,
             const GemmEpilogue& epilogue) {
  if (a.cols() != b.cols()) throw std::invalid_argument("gemmABt: inner dimension mismatch");
  const std::size_t m = a.rows(), n = b.rows(), k = a.cols();
  if (epilogue.bias != nullptr &&
      (epilogue.bias->rows() != 1 || epilogue.bias->cols() != n)) {
    throw std::invalid_argument("gemmABt: bias must be 1 x n");
  }
  if (epilogue.reluMask != nullptr && !epilogue.relu) {
    throw std::invalid_argument("gemmABt: reluMask requires relu");
  }
  // The kernel writes every element of C (and of the mask), so skip the
  // zero-fill resize() would pay.
  c.resizeOverwrite(m, n);
  double* maskPtr = nullptr;
  if (epilogue.reluMask != nullptr) {
    epilogue.reluMask->resizeOverwrite(m, n);
    maskPtr = epilogue.reluMask->data();
  }
  const double* biasPtr = epilogue.bias != nullptr ? epilogue.bias->data() : nullptr;
  const auto& ops = detail::gemmKernelOps(gemmKernelTier());
  auto body = [&](std::size_t lo, std::size_t hi) {
    ops.abtRows(a.data(), b.data(), c.data(), lo, hi, n, k, biasPtr, epilogue.relu, maskPtr);
  };
  const std::size_t maxParts = partitionCap(m, n, k);
  if (pool && maxParts > 1) {
    pool->parallelFor(0, m, maxParts, body);
  } else {
    body(0, m);
  }
}

void gemmAB(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool, const Tensor* mask) {
  if (a.cols() != b.rows()) throw std::invalid_argument("gemmAB: inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (mask != nullptr && (mask->rows() != m || mask->cols() != n)) {
    throw std::invalid_argument("gemmAB: mask shape mismatch");
  }
  c.resize(m, n);  // zero base: the kernel accumulates into C
  const double* maskPtr = mask != nullptr ? mask->data() : nullptr;
  const auto& ops = detail::gemmKernelOps(gemmKernelTier());
  auto body = [&](std::size_t lo, std::size_t hi) {
    ops.abRows(a.data(), b.data(), c.data(), lo, hi, n, k, maskPtr);
  };
  const std::size_t maxParts = partitionCap(m, n, k);
  if (pool && maxParts > 1) {
    pool->parallelFor(0, m, maxParts, body);
  } else {
    body(0, m);
  }
}

void gemmAtBAccum(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool) {
  if (a.rows() != b.rows()) throw std::invalid_argument("gemmAtBAccum: outer dimension mismatch");
  if (c.rows() != a.cols() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemmAtBAccum: output shape mismatch");
  }
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  const auto& ops = detail::gemmKernelOps(gemmKernelTier());
  // Parallelize over rows of C (columns of A) so threads never share an
  // output cache line region.
  auto body = [&](std::size_t lo, std::size_t hi) {
    ops.atbRows(a.data(), b.data(), c.data(), lo, hi, m, n, k);
  };
  const std::size_t maxParts = partitionCap(m, n, k);
  if (pool && maxParts > 1) {
    pool->parallelFor(0, m, maxParts, body);
  } else {
    body(0, m);
  }
}

}  // namespace dqndock::nn
