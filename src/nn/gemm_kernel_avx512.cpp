/// \file gemm_kernel_avx512.cpp
/// AVX-512F/FMA tier of the training GEMM kernels. This translation
/// unit is compiled with an explicit `-mavx512f` (plus the shared kernel
/// flags) — NOT gated on `-march=native` — so every build of the library
/// carries it; the dispatch table only routes here after the CPUID probe
/// (or a forced DQNDOCK_FORCE_KERNEL=avx512) says the host can execute
/// it. Nothing in this TU runs at static-initialisation time except
/// storing plain function pointers.
///
/// Determinism layout (the "fixed lane-reduction order" contract):
///  * gemmABt: each output element is one dot product accumulated in
///    8-lane chunks over p ascending, reduced by the fixed pairwise hsum
///    tree below. The 4-row register tile gives each row its own
///    accumulator running the exact same per-element sequence as the
///    1-row remainder path, so tile membership, row partition (thread
///    count) and the outer j-block all leave every element's arithmetic
///    untouched.
///  * gemmAB / gemmAtBAccum: output columns are processed in 8-lane
///    strips at absolute column positions (j-blocks anchored at
///    multiples of 64 from column 0), each lane accumulating
///    C[i][j] += a*b over p ascending via lane-local FMA. No horizontal
///    reduction exists on this path, so strip membership cannot change a
///    value and row-partitioned threads are bit-identical to serial.
///
/// Cross-tier: FMA carries one rounding per multiply-add where the
/// generic tier carries two, so this tier agrees with generic to ~1e-12
/// relative on paper Table 1 shapes rather than bit-wise.

#include "src/nn/gemm_kernels.hpp"

#ifdef DQNDOCK_GEMM_HAVE_AVX512

#include <immintrin.h>

#include "src/nn/gemm_kernel_impl.hpp"

#if defined(__GNUC__) && !defined(__clang__)
// GCC 12 trips -Wmaybe-uninitialized on the masked-load builtins through
// the always_inline chain (header placeholder arguments). False
// positive; every masked lane below is explicitly zero-sourced.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace dqndock::nn::detail {

namespace {

/// Fixed-order horizontal sum: 512 -> 256 -> 128 pairwise halves, then
/// one scalar add. Pinned (instead of _mm512_reduce_add_pd, whose
/// reduction order is the compiler's choice) so every dot product on
/// this tier sums its lanes identically on every call.
inline double hsum(__m512d v) {
  const __m256d lo = _mm512_castpd512_pd256(v);
  const __m256d hi = _mm512_extractf64x4_pd(v, 1);
  const __m256d s4 = _mm256_add_pd(lo, hi);  // {0+4, 1+5, 2+6, 3+7}
  const __m128d lo2 = _mm256_castpd256_pd128(s4);
  const __m128d hi2 = _mm256_extractf128_pd(s4, 1);
  const __m128d s2 = _mm_add_pd(lo2, hi2);   // {0+4+2+6, 1+5+3+7}
  return _mm_cvtsd_f64(_mm_add_sd(s2, _mm_unpackhi_pd(s2, s2)));
}

// ---------------------------------------------------------------------------
// C = A * B^T (+ fused bias/ReLU epilogue)
// ---------------------------------------------------------------------------

/// B rows (C columns) per cache block: the block stays cache-resident
/// while every A row tile streams past it, so B is read from DRAM once
/// per sweep instead of once per 4-row tile — and, symmetrically, A is
/// re-streamed only ceil(n / kAbtJBlock) times. At paper dims (A 32 x
/// 16,599 = 4.25 MB, B 135 x 16,599 = 18 MB) the sweep is bandwidth-
/// bound, so the block is sized to cut A passes (32 B rows = 4.2 MB,
/// comfortably L3-resident) rather than to fit L2. Block membership
/// never touches arithmetic: each element owns its accumulator and
/// reduction regardless of which block visits it.
constexpr std::size_t kAbtJBlock = 32;

void gemmABtRowsAvx512(const double* a, const double* b, double* c, std::size_t lo, std::size_t hi,
                       std::size_t n, std::size_t k, const double* bias, bool relu,
                       double* reluMask) {
  const __m512d vzero = _mm512_setzero_pd();
  const std::size_t kTail = k % 8;
  const __mmask8 tailMask = kTail != 0 ? static_cast<__mmask8>((1u << kTail) - 1u) : 0;
  const std::size_t kMain = k - kTail;
  for (std::size_t j0 = 0; j0 < n; j0 += kAbtJBlock) {
    const std::size_t j1 = j0 + kAbtJBlock < n ? j0 + kAbtJBlock : n;
    std::size_t i = lo;
    for (; i + 4 <= hi; i += 4) {
      const double* a0 = a + i * k;
      const double* a1 = a0 + k;
      const double* a2 = a1 + k;
      const double* a3 = a2 + k;
      double* ci = c + i * n;
      double* mi = reluMask != nullptr ? reluMask + i * n : nullptr;
      std::size_t j = j0;
      // 4-row x 2-column register tile: 8 independent FMA chains off 6
      // loads per k-vector (4 A rows shared across both columns) — the
      // single-column tile's 4 chains x 5 loads leave the FMA ports
      // half idle behind the load ports. Each element still owns one
      // accumulator summing p ascending through the same hsum tree, so
      // column pairing changes scheduling only, never arithmetic.
      for (; j + 2 <= j1; j += 2) {
        const double* bj = b + j * k;
        const double* bj2 = bj + k;
        __m512d acc0 = vzero, acc1 = vzero, acc2 = vzero, acc3 = vzero;
        __m512d acc4 = vzero, acc5 = vzero, acc6 = vzero, acc7 = vzero;
        std::size_t p = 0;
        for (; p < kMain; p += 8) {
          const __m512d bv = _mm512_loadu_pd(bj + p);
          const __m512d bw = _mm512_loadu_pd(bj2 + p);
          const __m512d av0 = _mm512_loadu_pd(a0 + p);
          const __m512d av1 = _mm512_loadu_pd(a1 + p);
          const __m512d av2 = _mm512_loadu_pd(a2 + p);
          const __m512d av3 = _mm512_loadu_pd(a3 + p);
          acc0 = _mm512_fmadd_pd(av0, bv, acc0);
          acc1 = _mm512_fmadd_pd(av1, bv, acc1);
          acc2 = _mm512_fmadd_pd(av2, bv, acc2);
          acc3 = _mm512_fmadd_pd(av3, bv, acc3);
          acc4 = _mm512_fmadd_pd(av0, bw, acc4);
          acc5 = _mm512_fmadd_pd(av1, bw, acc5);
          acc6 = _mm512_fmadd_pd(av2, bw, acc6);
          acc7 = _mm512_fmadd_pd(av3, bw, acc7);
        }
        if (kTail != 0) {
          // Zero-sourced masked loads: inactive lanes contribute 0*0.
          const __m512d bv = _mm512_mask_loadu_pd(vzero, tailMask, bj + p);
          const __m512d bw = _mm512_mask_loadu_pd(vzero, tailMask, bj2 + p);
          const __m512d av0 = _mm512_mask_loadu_pd(vzero, tailMask, a0 + p);
          const __m512d av1 = _mm512_mask_loadu_pd(vzero, tailMask, a1 + p);
          const __m512d av2 = _mm512_mask_loadu_pd(vzero, tailMask, a2 + p);
          const __m512d av3 = _mm512_mask_loadu_pd(vzero, tailMask, a3 + p);
          acc0 = _mm512_fmadd_pd(av0, bv, acc0);
          acc1 = _mm512_fmadd_pd(av1, bv, acc1);
          acc2 = _mm512_fmadd_pd(av2, bv, acc2);
          acc3 = _mm512_fmadd_pd(av3, bv, acc3);
          acc4 = _mm512_fmadd_pd(av0, bw, acc4);
          acc5 = _mm512_fmadd_pd(av1, bw, acc5);
          acc6 = _mm512_fmadd_pd(av2, bw, acc6);
          acc7 = _mm512_fmadd_pd(av3, bw, acc7);
        }
        storeWithEpilogue(ci + j, hsum(acc0), bias, j, relu, mi != nullptr ? mi + j : nullptr);
        storeWithEpilogue(ci + n + j, hsum(acc1), bias, j, relu,
                          mi != nullptr ? mi + n + j : nullptr);
        storeWithEpilogue(ci + 2 * n + j, hsum(acc2), bias, j, relu,
                          mi != nullptr ? mi + 2 * n + j : nullptr);
        storeWithEpilogue(ci + 3 * n + j, hsum(acc3), bias, j, relu,
                          mi != nullptr ? mi + 3 * n + j : nullptr);
        storeWithEpilogue(ci + j + 1, hsum(acc4), bias, j + 1, relu,
                          mi != nullptr ? mi + j + 1 : nullptr);
        storeWithEpilogue(ci + n + j + 1, hsum(acc5), bias, j + 1, relu,
                          mi != nullptr ? mi + n + j + 1 : nullptr);
        storeWithEpilogue(ci + 2 * n + j + 1, hsum(acc6), bias, j + 1, relu,
                          mi != nullptr ? mi + 2 * n + j + 1 : nullptr);
        storeWithEpilogue(ci + 3 * n + j + 1, hsum(acc7), bias, j + 1, relu,
                          mi != nullptr ? mi + 3 * n + j + 1 : nullptr);
      }
      for (; j < j1; ++j) {
        const double* bj = b + j * k;
        __m512d acc0 = vzero, acc1 = vzero, acc2 = vzero, acc3 = vzero;
        std::size_t p = 0;
        for (; p < kMain; p += 8) {
          const __m512d bv = _mm512_loadu_pd(bj + p);
          acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a0 + p), bv, acc0);
          acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(a1 + p), bv, acc1);
          acc2 = _mm512_fmadd_pd(_mm512_loadu_pd(a2 + p), bv, acc2);
          acc3 = _mm512_fmadd_pd(_mm512_loadu_pd(a3 + p), bv, acc3);
        }
        if (kTail != 0) {
          const __m512d bv = _mm512_mask_loadu_pd(vzero, tailMask, bj + p);
          acc0 = _mm512_fmadd_pd(_mm512_mask_loadu_pd(vzero, tailMask, a0 + p), bv, acc0);
          acc1 = _mm512_fmadd_pd(_mm512_mask_loadu_pd(vzero, tailMask, a1 + p), bv, acc1);
          acc2 = _mm512_fmadd_pd(_mm512_mask_loadu_pd(vzero, tailMask, a2 + p), bv, acc2);
          acc3 = _mm512_fmadd_pd(_mm512_mask_loadu_pd(vzero, tailMask, a3 + p), bv, acc3);
        }
        storeWithEpilogue(ci + j, hsum(acc0), bias, j, relu, mi != nullptr ? mi + j : nullptr);
        storeWithEpilogue(ci + n + j, hsum(acc1), bias, j, relu,
                          mi != nullptr ? mi + n + j : nullptr);
        storeWithEpilogue(ci + 2 * n + j, hsum(acc2), bias, j, relu,
                          mi != nullptr ? mi + 2 * n + j : nullptr);
        storeWithEpilogue(ci + 3 * n + j, hsum(acc3), bias, j, relu,
                          mi != nullptr ? mi + 3 * n + j : nullptr);
      }
    }
    for (; i < hi; ++i) {
      const double* ai = a + i * k;
      double* ci = c + i * n;
      double* mi = reluMask != nullptr ? reluMask + i * n : nullptr;
      for (std::size_t j = j0; j < j1; ++j) {
        const double* bj = b + j * k;
        __m512d acc = vzero;
        std::size_t p = 0;
        for (; p < kMain; p += 8) {
          acc = _mm512_fmadd_pd(_mm512_loadu_pd(ai + p), _mm512_loadu_pd(bj + p), acc);
        }
        if (kTail != 0) {
          acc = _mm512_fmadd_pd(_mm512_mask_loadu_pd(vzero, tailMask, ai + p),
                                _mm512_mask_loadu_pd(vzero, tailMask, bj + p), acc);
        }
        storeWithEpilogue(ci + j, hsum(acc), bias, j, relu, mi != nullptr ? mi + j : nullptr);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// C += A * B  and  C += A^T * B (row-local column strips)
// ---------------------------------------------------------------------------

/// One 64-column strip of one C row: 8 zmm accumulators seeded from C,
/// FMA over p ascending with the ReLU-sparsity zero skip, optional
/// elementwise mask multiply, store back. `av(p)` abstracts the A
/// element so the dense (gemmAB) and strided (gemmAtBAccum) walks share
/// the body. B is read in 64-column slices that stay cache-resident
/// across every C row of the sweep — the whole point of this ordering:
/// the scalar ikj kernels re-stream all of B once per C row.
template <typename AvFn>
inline void accumRowStrip64(AvFn av, const double* b, double* ci, std::size_t n, std::size_t k,
                            std::size_t j0, const double* mi) {
  const double* bBase = b + j0;
  double* cp = ci + j0;
  __m512d acc0 = _mm512_loadu_pd(cp);
  __m512d acc1 = _mm512_loadu_pd(cp + 8);
  __m512d acc2 = _mm512_loadu_pd(cp + 16);
  __m512d acc3 = _mm512_loadu_pd(cp + 24);
  __m512d acc4 = _mm512_loadu_pd(cp + 32);
  __m512d acc5 = _mm512_loadu_pd(cp + 40);
  __m512d acc6 = _mm512_loadu_pd(cp + 48);
  __m512d acc7 = _mm512_loadu_pd(cp + 56);
  for (std::size_t p = 0; p < k; ++p) {
    const double a = av(p);
    if (a == 0.0) continue;  // ReLU-sparsity skip — semantics pinned in gemm.hpp
    const __m512d va = _mm512_set1_pd(a);
    const double* bp = bBase + p * n;
    acc0 = _mm512_fmadd_pd(va, _mm512_loadu_pd(bp), acc0);
    acc1 = _mm512_fmadd_pd(va, _mm512_loadu_pd(bp + 8), acc1);
    acc2 = _mm512_fmadd_pd(va, _mm512_loadu_pd(bp + 16), acc2);
    acc3 = _mm512_fmadd_pd(va, _mm512_loadu_pd(bp + 24), acc3);
    acc4 = _mm512_fmadd_pd(va, _mm512_loadu_pd(bp + 32), acc4);
    acc5 = _mm512_fmadd_pd(va, _mm512_loadu_pd(bp + 40), acc5);
    acc6 = _mm512_fmadd_pd(va, _mm512_loadu_pd(bp + 48), acc6);
    acc7 = _mm512_fmadd_pd(va, _mm512_loadu_pd(bp + 56), acc7);
  }
  if (mi != nullptr) {
    const double* mp = mi + j0;
    acc0 = _mm512_mul_pd(acc0, _mm512_loadu_pd(mp));
    acc1 = _mm512_mul_pd(acc1, _mm512_loadu_pd(mp + 8));
    acc2 = _mm512_mul_pd(acc2, _mm512_loadu_pd(mp + 16));
    acc3 = _mm512_mul_pd(acc3, _mm512_loadu_pd(mp + 24));
    acc4 = _mm512_mul_pd(acc4, _mm512_loadu_pd(mp + 32));
    acc5 = _mm512_mul_pd(acc5, _mm512_loadu_pd(mp + 40));
    acc6 = _mm512_mul_pd(acc6, _mm512_loadu_pd(mp + 48));
    acc7 = _mm512_mul_pd(acc7, _mm512_loadu_pd(mp + 56));
  }
  _mm512_storeu_pd(cp, acc0);
  _mm512_storeu_pd(cp + 8, acc1);
  _mm512_storeu_pd(cp + 16, acc2);
  _mm512_storeu_pd(cp + 24, acc3);
  _mm512_storeu_pd(cp + 32, acc4);
  _mm512_storeu_pd(cp + 40, acc5);
  _mm512_storeu_pd(cp + 48, acc6);
  _mm512_storeu_pd(cp + 56, acc7);
}

/// Partial strip of up to 8 columns (masked). Lane arithmetic is
/// positional, so splitting a narrow block into 8-column groups computes
/// the same per-element sequences as the wide strip.
template <typename AvFn>
inline void accumRowStripTail(AvFn av, const double* b, double* ci, std::size_t n, std::size_t k,
                              std::size_t j0, std::size_t width, const double* mi) {
  const __m512d vzero = _mm512_setzero_pd();
  const __mmask8 m = static_cast<__mmask8>((1u << width) - 1u);
  double* cp = ci + j0;
  __m512d acc = _mm512_mask_loadu_pd(vzero, m, cp);
  for (std::size_t p = 0; p < k; ++p) {
    const double a = av(p);
    if (a == 0.0) continue;  // ReLU-sparsity skip — semantics pinned in gemm.hpp
    const __m512d va = _mm512_set1_pd(a);
    acc = _mm512_fmadd_pd(va, _mm512_mask_loadu_pd(vzero, m, b + p * n + j0), acc);
  }
  if (mi != nullptr) acc = _mm512_mul_pd(acc, _mm512_mask_loadu_pd(vzero, m, mi + j0));
  _mm512_mask_storeu_pd(cp, m, acc);
}

/// Column-strip driver: j-blocks OUTER (at absolute multiples of 64
/// from column 0), C rows inner, so the k x 64 slice of B a strip reads
/// stays cache-resident across every C row of the sweep instead of B
/// being re-streamed once per row. Block anchoring at absolute columns
/// plus lane-positional arithmetic keeps every element's op sequence
/// independent of the row partition. `rowAv(i)` yields the per-row A
/// accessor (dense for gemmAB, column-strided for gemmAtBAccum).
template <typename RowAvFn>
inline void accumRowsByStrips(RowAvFn rowAv, const double* b, double* c, std::size_t lo,
                              std::size_t hi, std::size_t n, std::size_t k, const double* mask) {
  std::size_t j0 = 0;
  for (; j0 + 64 <= n; j0 += 64) {
    for (std::size_t i = lo; i < hi; ++i) {
      accumRowStrip64(rowAv(i), b, c + i * n, n, k, j0,
                      mask != nullptr ? mask + i * n : nullptr);
    }
  }
  for (; j0 < n; j0 += 8) {
    const std::size_t width = n - j0 < 8 ? n - j0 : 8;
    for (std::size_t i = lo; i < hi; ++i) {
      accumRowStripTail(rowAv(i), b, c + i * n, n, k, j0, width,
                        mask != nullptr ? mask + i * n : nullptr);
    }
  }
}

void gemmABRowsAvx512(const double* a, const double* b, double* c, std::size_t lo, std::size_t hi,
                      std::size_t n, std::size_t k, const double* mask) {
  accumRowsByStrips(
      [a, k](std::size_t i) {
        const double* ai = a + i * k;
        return [ai](std::size_t p) { return ai[p]; };
      },
      b, c, lo, hi, n, k, mask);
}

void gemmAtBRowsAvx512(const double* a, const double* b, double* c, std::size_t lo, std::size_t hi,
                       std::size_t m, std::size_t n, std::size_t k) {
  accumRowsByStrips(
      [a, m](std::size_t i) {
        return [a, m, i](std::size_t p) { return a[p * m + i]; };
      },
      b, c, lo, hi, n, k, nullptr);
}

}  // namespace

const GemmKernelOps kAvx512GemmOps = {GemmTier::kAvx512, &gemmABtRowsAvx512, &gemmABRowsAvx512,
                                      &gemmAtBRowsAvx512};

}  // namespace dqndock::nn::detail

#endif  // DQNDOCK_GEMM_HAVE_AVX512
