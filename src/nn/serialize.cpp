#include "src/nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace dqndock::nn {

namespace {
constexpr std::uint64_t kMagic = 0x44514e444f434b31ULL;  // "DQNDOCK1"

void writeU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint64_t readU64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("loadMlp: truncated header");
  return v;
}

void writeTensor(std::ostream& out, const Tensor& t) {
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(double)));
}

void readTensor(std::istream& in, Tensor& t) {
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(double)));
  if (!in) throw std::runtime_error("loadMlp: truncated weights");
}
}  // namespace

void saveMlp(std::ostream& out, const Mlp& net) {
  writeU64(out, kMagic);
  writeU64(out, net.dims().size());
  for (std::size_t d : net.dims()) writeU64(out, d);
  for (const auto& layer : net.layers()) {
    writeTensor(out, layer.weights());
    writeTensor(out, layer.bias());
  }
  if (!out) throw std::runtime_error("saveMlp: write failure");
}

void saveMlpFile(const std::string& path, const Mlp& net) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("saveMlpFile: cannot open " + path);
  saveMlp(out, net);
}

Mlp loadMlp(std::istream& in, ThreadPool* pool) {
  if (readU64(in) != kMagic) throw std::runtime_error("loadMlp: bad magic");
  const std::uint64_t ndims = readU64(in);
  if (ndims < 2 || ndims > 64) throw std::runtime_error("loadMlp: implausible layer count");
  std::vector<std::size_t> dims(ndims);
  for (auto& d : dims) d = readU64(in);
  Rng rng(0);
  Mlp net(dims, rng, pool);
  for (auto& layer : net.layers()) {
    readTensor(in, layer.weights());
    readTensor(in, layer.bias());
  }
  return net;
}

Mlp loadMlpFile(const std::string& path, ThreadPool* pool) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("loadMlpFile: cannot open " + path);
  return loadMlp(in, pool);
}

}  // namespace dqndock::nn
