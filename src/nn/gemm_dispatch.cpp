/// \file gemm_dispatch.cpp
/// CPUID probe + DQNDOCK_FORCE_KERNEL resolution for the GEMM kernel
/// tiers. Compiled with the plain target flags (no ISA extensions): it
/// must be executable before any probing happened.

#include "src/nn/gemm_kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dqndock::nn {

namespace {

bool cpuHasAvx512f() {
#if defined(__x86_64__) || defined(__i386__)
  // GCC/Clang builtin: CPUID-backed, independent of the build's -march.
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

// Active tier, -1 until the first GEMM call (or setGemmKernelTier)
// resolves it. Plain atomic: a benign race on first use resolves to the
// same value on every thread (env + CPUID are process-constant).
std::atomic<int> gActiveGemmTier{-1};

}  // namespace

const char* gemmTierName(GemmTier tier) {
  switch (tier) {
    case GemmTier::kGeneric:
      return "generic";
    case GemmTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool gemmTierCompiled(GemmTier tier) {
  switch (tier) {
    case GemmTier::kGeneric:
      return true;
    case GemmTier::kAvx512:
#ifdef DQNDOCK_GEMM_HAVE_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool gemmTierSupported(GemmTier tier) {
  if (!gemmTierCompiled(tier)) return false;
  return tier != GemmTier::kAvx512 || cpuHasAvx512f();
}

GemmTier probeGemmTier() {
  static const GemmTier best =
      gemmTierSupported(GemmTier::kAvx512) ? GemmTier::kAvx512 : GemmTier::kGeneric;
  return best;
}

GemmTier resolveGemmTier() {
  const char* env = std::getenv("DQNDOCK_FORCE_KERNEL");
  if (env == nullptr || *env == '\0') return probeGemmTier();
  const std::string name(env);
  GemmTier forced;
  if (name == "generic") {
    forced = GemmTier::kGeneric;
  } else if (name == "avx512") {
    forced = GemmTier::kAvx512;
  } else {
    throw std::runtime_error("DQNDOCK_FORCE_KERNEL: unknown kernel tier '" + name +
                             "' (expected 'generic' or 'avx512')");
  }
  // A forced run must never silently fall back — a benchmark reporting
  // generic numbers as avx512 (or a test suite quietly skipping the tier
  // it was asked to pin) is worse than an error.
  if (!gemmTierSupported(forced)) {
    throw std::runtime_error(std::string("DQNDOCK_FORCE_KERNEL=") + name +
                             (gemmTierCompiled(forced)
                                  ? ": this CPU does not support the tier"
                                  : ": tier not compiled into this binary"));
  }
  return forced;
}

GemmTier gemmKernelTier() {
  const int cur = gActiveGemmTier.load(std::memory_order_acquire);
  if (cur >= 0) return static_cast<GemmTier>(cur);
  const GemmTier resolved = resolveGemmTier();
  gActiveGemmTier.store(static_cast<int>(resolved), std::memory_order_release);
  return resolved;
}

void setGemmKernelTier(GemmTier tier) {
  if (!gemmTierSupported(tier)) {
    throw std::runtime_error(std::string("setGemmKernelTier: tier '") + gemmTierName(tier) +
                             (gemmTierCompiled(tier) ? "' not supported by this CPU"
                                                     : "' not compiled into this binary"));
  }
  gActiveGemmTier.store(static_cast<int>(tier), std::memory_order_release);
}

namespace detail {

const GemmKernelOps& gemmKernelOps(GemmTier tier) {
#ifdef DQNDOCK_GEMM_HAVE_AVX512
  if (tier == GemmTier::kAvx512) return kAvx512GemmOps;
#endif
  if (tier != GemmTier::kGeneric) {
    throw std::logic_error("gemmKernelOps: tier not compiled into this binary");
  }
  return kGenericGemmOps;
}

}  // namespace detail

}  // namespace dqndock::nn
