/// \file gemm_kernel_generic.cpp
/// Portable GEMM kernel tier — the pre-dispatch scalar kernels moved
/// verbatim behind the ops table, plus the fused epilogues. Loop order
/// and per-element accumulation sequences are unchanged (and the global
/// `-ffp-contract=off` forbids compiler FMA fusion), so this tier is
/// bit-identical to the kernels it replaced: the epilogue ops are
/// element-local, so applying them at store time instead of in separate
/// full-tensor passes cannot change any value.

#include <cstddef>

#include "src/nn/gemm_kernel_impl.hpp"
#include "src/nn/gemm_kernels.hpp"

namespace dqndock::nn::detail {

namespace {

void gemmABtRowsGeneric(const double* a, const double* b, double* c, std::size_t lo, std::size_t hi,
                        std::size_t n, std::size_t k, const double* bias, bool relu,
                        double* reluMask) {
  // 4-row register tile: four independent accumulator chains hide the
  // FP-add latency a single serial dot is bound by, and each B row is
  // streamed once per 4 output rows instead of once per row. Every
  // c[i][j] still accumulates over p in ascending order, so results are
  // bit-identical to the plain loop at any batch height or row split.
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    double* ci = c + i * n;
    double* mi = reluMask != nullptr ? reluMask + i * n : nullptr;
    for (std::size_t j = 0; j < n; ++j) {
      const double* bj = b + j * k;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double bv = bj[p];
        s0 += a0[p] * bv;
        s1 += a1[p] * bv;
        s2 += a2[p] * bv;
        s3 += a3[p] * bv;
      }
      storeWithEpilogue(ci + j, s0, bias, j, relu, mi != nullptr ? mi + j : nullptr);
      storeWithEpilogue(ci + n + j, s1, bias, j, relu, mi != nullptr ? mi + n + j : nullptr);
      storeWithEpilogue(ci + 2 * n + j, s2, bias, j, relu,
                        mi != nullptr ? mi + 2 * n + j : nullptr);
      storeWithEpilogue(ci + 3 * n + j, s3, bias, j, relu,
                        mi != nullptr ? mi + 3 * n + j : nullptr);
    }
  }
  for (; i < hi; ++i) {
    const double* ai = a + i * k;
    double* ci = c + i * n;
    double* mi = reluMask != nullptr ? reluMask + i * n : nullptr;
    for (std::size_t j = 0; j < n; ++j) {
      const double* bj = b + j * k;
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      storeWithEpilogue(ci + j, acc, bias, j, relu, mi != nullptr ? mi + j : nullptr);
    }
  }
}

void gemmABRowsGeneric(const double* a, const double* b, double* c, std::size_t lo, std::size_t hi,
                       std::size_t n, std::size_t k, const double* mask) {
  for (std::size_t i = lo; i < hi; ++i) {
    const double* ai = a + i * k;
    double* ci = c + i * n;
    // ikj loop order: streams B row-wise, accumulates into C row.
    for (std::size_t p = 0; p < k; ++p) {
      const double av = ai[p];
      if (av == 0.0) continue;
      const double* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
    if (mask != nullptr) {
      const double* mi = mask + i * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] *= mi[j];
    }
  }
}

void gemmAtBRowsGeneric(const double* a, const double* b, double* c, std::size_t lo, std::size_t hi,
                        std::size_t m, std::size_t n, std::size_t k) {
  for (std::size_t i = lo; i < hi; ++i) {
    double* ci = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = a[p * m + i];
      if (av == 0.0) continue;
      const double* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

}  // namespace

const GemmKernelOps kGenericGemmOps = {GemmTier::kGeneric, &gemmABtRowsGeneric, &gemmABRowsGeneric,
                                       &gemmAtBRowsGeneric};

}  // namespace dqndock::nn::detail
