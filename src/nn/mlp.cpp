#include "src/nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

#include "src/nn/gemm.hpp"

namespace dqndock::nn {

DenseLayer::DenseLayer(std::size_t inDim, std::size_t outDim)
    : weights_(outDim, inDim), bias_(1, outDim), gradW_(outDim, inDim), gradB_(1, outDim) {}

void DenseLayer::initHe(Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(inDim()));
  for (double& w : weights_.flat()) w = rng.gaussian(0.0, stddev);
  bias_.fill(0.0);
}

void DenseLayer::forward(const Tensor& x, Tensor& y, ThreadPool* pool) const {
  if (x.cols() != inDim()) throw std::invalid_argument("DenseLayer::forward: input dim mismatch");
  gemmABt(x, weights_, y, pool);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    double* row = y.data() + r * y.cols();
    for (std::size_t c = 0; c < y.cols(); ++c) row[c] += bias_(0, c);
  }
}

void DenseLayer::backward(const Tensor& xCache, const Tensor& dy, Tensor& dx, ThreadPool* pool) {
  if (dy.cols() != outDim()) throw std::invalid_argument("DenseLayer::backward: grad dim mismatch");
  // dW += dY^T * X ; db += column sums of dY ; dX = dY * W.
  gemmAtBAccum(dy, xCache, gradW_, pool);
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const double* row = dy.data() + r * dy.cols();
    for (std::size_t c = 0; c < dy.cols(); ++c) gradB_(0, c) += row[c];
  }
  gemmAB(dy, weights_, dx, pool);
}

void DenseLayer::zeroGrad() {
  gradW_.fill(0.0);
  gradB_.fill(0.0);
}

void reluForward(Tensor& x, Tensor& mask) {
  mask.resize(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x.flat()[i] > 0.0) {
      mask.flat()[i] = 1.0;
    } else {
      x.flat()[i] = 0.0;
    }
  }
}

void reluBackward(Tensor& grad, const Tensor& mask) {
  if (!grad.sameShape(mask)) throw std::invalid_argument("reluBackward: shape mismatch");
  for (std::size_t i = 0; i < grad.size(); ++i) grad.flat()[i] *= mask.flat()[i];
}

Mlp::Mlp(std::vector<std::size_t> dims, Rng& rng, ThreadPool* pool)
    : dims_(std::move(dims)), pool_(pool) {
  if (dims_.size() < 2) throw std::invalid_argument("Mlp: need at least input and output dims");
  for (std::size_t d : dims_) {
    if (d == 0) throw std::invalid_argument("Mlp: zero-sized layer");
  }
  layers_.reserve(dims_.size() - 1);
  for (std::size_t i = 0; i + 1 < dims_.size(); ++i) {
    layers_.emplace_back(dims_[i], dims_[i + 1]);
    layers_.back().initHe(rng);
  }
  inputs_.resize(layers_.size());
  reluMasks_.resize(layers_.size() - 1);
}

std::size_t Mlp::parameterCount() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.weights().size() + layer.bias().size();
  return n;
}

const Tensor& Mlp::forward(const Tensor& x) {
  inputs_[0] = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Tensor y;
    layers_[i].forward(inputs_[i], y, pool_);
    if (i + 1 < layers_.size()) {
      reluForward(y, reluMasks_[i]);
      inputs_[i + 1] = std::move(y);  // input of the next layer
    } else {
      output_ = std::move(y);
    }
  }
  return output_;
}

void Mlp::predict(const Tensor& x, Tensor& y) const {
  Tensor buf = x;
  Tensor next;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].forward(buf, next, pool_);
    if (i + 1 < layers_.size()) {
      for (double& v : next.flat()) {
        if (v < 0.0) v = 0.0;
      }
    }
    buf = std::move(next);
    next = Tensor{};
  }
  y = std::move(buf);
}

void Mlp::backward(const Tensor& dLossDOut) {
  Tensor grad = dLossDOut;
  Tensor dx;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    layers_[i].backward(inputs_[i], grad, dx, pool_);
    if (i > 0) {
      reluBackward(dx, reluMasks_[i - 1]);
    }
    grad = std::move(dx);
    dx = Tensor{};
  }
}

void Mlp::zeroGrad() {
  for (auto& layer : layers_) layer.zeroGrad();
}

std::vector<Tensor*> Mlp::parameters() {
  std::vector<Tensor*> out;
  out.reserve(layers_.size() * 2);
  for (auto& layer : layers_) {
    out.push_back(&layer.weights());
    out.push_back(&layer.bias());
  }
  return out;
}

std::vector<Tensor*> Mlp::gradients() {
  std::vector<Tensor*> out;
  out.reserve(layers_.size() * 2);
  for (auto& layer : layers_) {
    out.push_back(&layer.weightGrad());
    out.push_back(&layer.biasGrad());
  }
  return out;
}

void Mlp::copyWeightsFrom(const Mlp& other) {
  if (other.layers_.size() != layers_.size()) {
    throw std::invalid_argument("Mlp::copyWeightsFrom: layer count mismatch");
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (!layers_[i].weights().sameShape(other.layers_[i].weights())) {
      throw std::invalid_argument("Mlp::copyWeightsFrom: shape mismatch");
    }
    layers_[i].weights() = other.layers_[i].weights();
    layers_[i].bias() = other.layers_[i].bias();
  }
}

}  // namespace dqndock::nn
