#include "src/nn/mlp.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "src/nn/gemm.hpp"

namespace dqndock::nn {

bool foldStaticEnabled() {
  const char* v = std::getenv("DQNDOCK_FOLD_STATIC");
  if (v == nullptr || *v == '\0') return true;
  const std::string s(v);
  if (s == "on" || s == "1" || s == "true") return true;
  if (s == "off" || s == "0" || s == "false") return false;
  throw std::invalid_argument("DQNDOCK_FOLD_STATIC: expected on|off, got '" + s + "'");
}

DenseLayer::DenseLayer(std::size_t inDim, std::size_t outDim)
    : weights_(outDim, inDim), bias_(1, outDim), gradW_(outDim, inDim), gradB_(1, outDim) {}

DenseLayer::DenseLayer(const DenseLayer& other)
    : weights_(other.weights_),
      bias_(other.bias_),
      gradW_(other.gradW_),
      gradB_(other.gradB_),
      version_(other.version_) {
  if (other.fold_) {
    fold_ = std::make_unique<Fold>();
    fold_->staticPrefix = other.fold_->staticPrefix;
  }
}

DenseLayer& DenseLayer::operator=(const DenseLayer& other) {
  if (this == &other) return *this;
  weights_ = other.weights_;
  bias_ = other.bias_;
  gradW_ = other.gradW_;
  gradB_ = other.gradB_;
  version_ = other.version_ + 1;  // contents changed relative to our old cache
  if (other.fold_) {
    fold_ = std::make_unique<Fold>();
    fold_->staticPrefix = other.fold_->staticPrefix;
  } else {
    fold_.reset();
  }
  return *this;
}

DenseLayer::DenseLayer(DenseLayer&& other) noexcept
    : weights_(std::move(other.weights_)),
      bias_(std::move(other.bias_)),
      gradW_(std::move(other.gradW_)),
      gradB_(std::move(other.gradB_)),
      version_(other.version_),
      fold_(std::move(other.fold_)) {}

DenseLayer& DenseLayer::operator=(DenseLayer&& other) noexcept {
  weights_ = std::move(other.weights_);
  bias_ = std::move(other.bias_);
  gradW_ = std::move(other.gradW_);
  gradB_ = std::move(other.gradB_);
  version_ = other.version_;
  fold_ = std::move(other.fold_);
  return *this;
}

void DenseLayer::initHe(Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(inDim()));
  for (double& w : weights_.flat()) w = rng.gaussian(0.0, stddev);
  bias_.fill(0.0);
}

void DenseLayer::forward(const Tensor& x, Tensor& y, ThreadPool* pool, bool relu,
                         Tensor* reluMask) const {
  if (x.cols() != inDim()) throw std::invalid_argument("DenseLayer::forward: input dim mismatch");
  GemmEpilogue epilogue;
  epilogue.bias = &bias_;
  epilogue.relu = relu;
  epilogue.reluMask = reluMask;
  gemmABt(x, weights_, y, pool, epilogue);
}

void DenseLayer::backward(const Tensor& xCache, const Tensor& dy, Tensor* dx, ThreadPool* pool,
                          const Tensor* dxMask) {
  if (dy.cols() != outDim()) throw std::invalid_argument("DenseLayer::backward: grad dim mismatch");
  // dW += dY^T * X ; db += column sums of dY ; dX = (dY * W) .* dxMask.
  gemmAtBAccum(dy, xCache, gradW_, pool);
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const double* row = dy.data() + r * dy.cols();
    for (std::size_t c = 0; c < dy.cols(); ++c) gradB_(0, c) += row[c];
  }
  if (dx != nullptr) gemmAB(dy, weights_, *dx, pool, dxMask);
}

void DenseLayer::zeroGrad() {
  gradW_.fill(0.0);
  gradB_.fill(0.0);
}

void DenseLayer::configureStaticPrefix(std::vector<double> staticPrefix) {
  const std::size_t s = staticPrefix.size();
  if (s == 0 || s >= inDim()) {
    throw std::invalid_argument("DenseLayer::configureStaticPrefix: need 0 < S < inDim");
  }
  fold_ = std::make_unique<Fold>();
  fold_->staticPrefix = std::move(staticPrefix);
  // Packed gradient: only the dynamic columns are materialised; the
  // static-column gradient is biasGrad ⊗ staticPrefix by construction.
  gradW_ = Tensor(outDim(), inDim() - s);
}

std::size_t DenseLayer::staticLen() const { return fold_ ? fold_->staticPrefix.size() : 0; }

std::span<const double> DenseLayer::staticPrefix() const {
  return fold_ ? std::span<const double>(fold_->staticPrefix) : std::span<const double>();
}

std::uint64_t DenseLayer::foldCount() const {
  return fold_ ? fold_->folds.load(std::memory_order_relaxed) : 0;
}

void DenseLayer::refold() const {
  Fold& f = *fold_;
  const std::uint64_t v = version_;
  if (f.cachedVersion.load(std::memory_order_acquire) == v) return;
  std::lock_guard lock(f.rebuild);
  if (f.cachedVersion.load(std::memory_order_relaxed) == v) return;
  const std::size_t s = f.staticPrefix.size();
  const std::size_t d = inDim() - s;
  const std::size_t out = outDim();
  f.wd.resizeOverwrite(out, d);
  f.c.resizeOverwrite(1, out);
  const double* xs = f.staticPrefix.data();
  for (std::size_t r = 0; r < out; ++r) {
    const double* wrow = weights_.data() + r * inDim();
    // Fixed serial accumulation order: the refold itself is
    // bit-deterministic regardless of pool size or kernel tier.
    double acc = 0.0;
    for (std::size_t j = 0; j < s; ++j) acc += wrow[j] * xs[j];
    f.c(0, r) = acc + bias_(0, r);
    std::memcpy(f.wd.data() + r * d, wrow + s, d * sizeof(double));
  }
  f.folds.fetch_add(1, std::memory_order_relaxed);
  f.cachedVersion.store(v, std::memory_order_release);
}

void DenseLayer::forwardFolded(const Tensor& xd, Tensor& y, ThreadPool* pool, bool relu,
                               Tensor* reluMask) const {
  if (!fold_) throw std::logic_error("DenseLayer::forwardFolded: folding not configured");
  if (xd.cols() != dynamicDim()) {
    throw std::invalid_argument("DenseLayer::forwardFolded: input dim != dynamicDim");
  }
  refold();
  GemmEpilogue epilogue;
  epilogue.bias = &fold_->c;
  epilogue.relu = relu;
  epilogue.reluMask = reluMask;
  gemmABt(xd, fold_->wd, y, pool, epilogue);
}

void DenseLayer::backwardFolded(const Tensor& xdCache, const Tensor& dy, ThreadPool* pool) {
  if (!fold_) throw std::logic_error("DenseLayer::backwardFolded: folding not configured");
  if (dy.cols() != outDim()) {
    throw std::invalid_argument("DenseLayer::backwardFolded: grad dim mismatch");
  }
  // Packed dW_d += dY^T * Xd ; db += column sums of dY (db doubles as
  // the rank-1 static-column coefficient: dW_s = db ⊗ x_s).
  gemmAtBAccum(dy, xdCache, gradW_, pool);
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const double* row = dy.data() + r * dy.cols();
    for (std::size_t c = 0; c < dy.cols(); ++c) gradB_(0, c) += row[c];
  }
}

void reluForward(Tensor& x, Tensor& mask) {
  mask.resizeOverwrite(x.rows(), x.cols());  // every element written below
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x.flat()[i] > 0.0) {
      mask.flat()[i] = 1.0;
    } else {
      x.flat()[i] = 0.0;
      mask.flat()[i] = 0.0;
    }
  }
}

void reluBackward(Tensor& grad, const Tensor& mask) {
  if (!grad.sameShape(mask)) throw std::invalid_argument("reluBackward: shape mismatch");
  for (std::size_t i = 0; i < grad.size(); ++i) grad.flat()[i] *= mask.flat()[i];
}

Mlp::Mlp(std::vector<std::size_t> dims, Rng& rng, ThreadPool* pool)
    : dims_(std::move(dims)), pool_(pool) {
  if (dims_.size() < 2) throw std::invalid_argument("Mlp: need at least input and output dims");
  for (std::size_t d : dims_) {
    if (d == 0) throw std::invalid_argument("Mlp: zero-sized layer");
  }
  layers_.reserve(dims_.size() - 1);
  for (std::size_t i = 0; i + 1 < dims_.size(); ++i) {
    layers_.emplace_back(dims_[i], dims_[i + 1]);
    layers_.back().initHe(rng);
  }
  inputs_.resize(layers_.size());
  reluMasks_.resize(layers_.size() - 1);
}

std::size_t Mlp::parameterCount() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.weights().size() + layer.bias().size();
  return n;
}

bool Mlp::configureStaticPrefix(std::span<const double> staticPrefix) {
  if (staticPrefix.empty() || staticPrefix.size() >= inputDim()) return false;
  layers_.front().configureStaticPrefix(
      std::vector<double>(staticPrefix.begin(), staticPrefix.end()));
  return true;
}

namespace {
/// Copy the dynamic suffix (columns [s, s+d)) of a full-width input into
/// a packed (rows x d) tensor.
void packDynamicSuffix(const Tensor& x, std::size_t s, std::size_t d, Tensor& xd) {
  xd.resizeOverwrite(x.rows(), d);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    std::copy(x.data() + r * x.cols() + s, x.data() + (r + 1) * x.cols(), xd.data() + r * d);
  }
}
}  // namespace

const Tensor& Mlp::forward(const Tensor& x) {
  if (foldActive()) {
    // Dual-width contract: full-width callers get the suffix packed out
    // here; dynamic-width callers (the folded trainer/replay paths) are
    // cached as-is. Either way inputs_[0] holds exactly the dynamic
    // columns the folded backward needs.
    const std::size_t s = staticPrefixLen();
    const std::size_t d = dynamicInputDim();
    if (x.cols() == d) {
      inputs_[0] = x;
    } else if (x.cols() == inputDim()) {
      packDynamicSuffix(x, s, d, inputs_[0]);
    } else {
      throw std::invalid_argument("Mlp::forward: input dim matches neither full nor dynamic");
    }
  } else {
    inputs_[0] = x;
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const bool hidden = i + 1 < layers_.size();
    // Hidden layers fuse bias + ReLU + mask capture into the GEMM sweep
    // and land directly in the next layer's cached input slot — no
    // per-call tensor allocation, no separate activation pass.
    Tensor& y = hidden ? inputs_[i + 1] : output_;
    if (i == 0 && foldActive()) {
      layers_[0].forwardFolded(inputs_[0], y, pool_, hidden, hidden ? &reluMasks_[0] : nullptr);
    } else {
      layers_[i].forward(inputs_[i], y, pool_, hidden, hidden ? &reluMasks_[i] : nullptr);
    }
  }
  return output_;
}

void Mlp::predict(const Tensor& x, Tensor& y) const {
  // Reentrancy: concurrent predict() calls share only the immutable
  // weights and the fold cache (whose lazy rebuild is internally
  // synchronized), so hidden-layer scratch stays on the stack (two
  // ping-pong buffers; a full-width input is packed at most once).
  const bool folded = foldActive();
  Tensor packScratch;
  const Tensor* in = &x;
  if (folded) {
    const std::size_t d = dynamicInputDim();
    if (x.cols() == inputDim()) {
      packDynamicSuffix(x, staticPrefixLen(), d, packScratch);
      in = &packScratch;
    } else if (x.cols() != d) {
      throw std::invalid_argument("Mlp::predict: input dim matches neither full nor dynamic");
    }
  }
  if (layers_.size() == 1) {
    Tensor out;  // guard against y aliasing x
    if (folded) {
      layers_.front().forwardFolded(*in, out, pool_);
    } else {
      layers_.front().forward(*in, out, pool_);
    }
    y = std::move(out);
    return;
  }
  Tensor ping, pong;
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    Tensor& out = (i % 2 == 0) ? ping : pong;
    if (i == 0 && folded) {
      layers_[0].forwardFolded(*in, out, pool_, /*relu=*/true);
    } else {
      layers_[i].forward(*in, out, pool_, /*relu=*/true);
    }
    in = &out;
  }
  layers_.back().forward(*in, y, pool_);
}

void Mlp::backward(const Tensor& dLossDOut) {
  bwdGrad_ = dLossDOut;
  Tensor* grad = &bwdGrad_;
  Tensor* dx = &bwdDx_;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    // The ReLU gate below layer i is fused into the dX GEMM; grad/dx
    // ping-pong between two member buffers reused across calls. The
    // input layer (i == 0) produces no dX: nothing consumes dL/dInput.
    if (i == 0 && foldActive()) {
      layers_[0].backwardFolded(inputs_[0], *grad, pool_);
    } else {
      layers_[i].backward(inputs_[i], *grad, i > 0 ? dx : nullptr, pool_,
                          i > 0 ? &reluMasks_[i - 1] : nullptr);
    }
    std::swap(grad, dx);
  }
}

void Mlp::zeroGrad() {
  for (auto& layer : layers_) layer.zeroGrad();
}

std::vector<Tensor*> Mlp::parameters() {
  std::vector<Tensor*> out;
  out.reserve(layers_.size() * 2);
  for (auto& layer : layers_) {
    out.push_back(&layer.weights());
    out.push_back(&layer.bias());
  }
  return out;
}

std::vector<Tensor*> Mlp::gradients() {
  std::vector<Tensor*> out;
  out.reserve(layers_.size() * 2);
  for (auto& layer : layers_) {
    out.push_back(&layer.weightGrad());
    out.push_back(&layer.biasGrad());
  }
  return out;
}

void Mlp::copyWeightsFrom(const Mlp& other) {
  if (other.layers_.size() != layers_.size()) {
    throw std::invalid_argument("Mlp::copyWeightsFrom: layer count mismatch");
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (!layers_[i].weights().sameShape(other.layers_[i].weights())) {
      throw std::invalid_argument("Mlp::copyWeightsFrom: shape mismatch");
    }
    layers_[i].weights() = other.layers_[i].weights();
    layers_[i].bias() = other.layers_[i].bias();
  }
}

}  // namespace dqndock::nn
