#include "src/nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

#include "src/nn/gemm.hpp"

namespace dqndock::nn {

DenseLayer::DenseLayer(std::size_t inDim, std::size_t outDim)
    : weights_(outDim, inDim), bias_(1, outDim), gradW_(outDim, inDim), gradB_(1, outDim) {}

void DenseLayer::initHe(Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(inDim()));
  for (double& w : weights_.flat()) w = rng.gaussian(0.0, stddev);
  bias_.fill(0.0);
}

void DenseLayer::forward(const Tensor& x, Tensor& y, ThreadPool* pool, bool relu,
                         Tensor* reluMask) const {
  if (x.cols() != inDim()) throw std::invalid_argument("DenseLayer::forward: input dim mismatch");
  GemmEpilogue epilogue;
  epilogue.bias = &bias_;
  epilogue.relu = relu;
  epilogue.reluMask = reluMask;
  gemmABt(x, weights_, y, pool, epilogue);
}

void DenseLayer::backward(const Tensor& xCache, const Tensor& dy, Tensor* dx, ThreadPool* pool,
                          const Tensor* dxMask) {
  if (dy.cols() != outDim()) throw std::invalid_argument("DenseLayer::backward: grad dim mismatch");
  // dW += dY^T * X ; db += column sums of dY ; dX = (dY * W) .* dxMask.
  gemmAtBAccum(dy, xCache, gradW_, pool);
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const double* row = dy.data() + r * dy.cols();
    for (std::size_t c = 0; c < dy.cols(); ++c) gradB_(0, c) += row[c];
  }
  if (dx != nullptr) gemmAB(dy, weights_, *dx, pool, dxMask);
}

void DenseLayer::zeroGrad() {
  gradW_.fill(0.0);
  gradB_.fill(0.0);
}

void reluForward(Tensor& x, Tensor& mask) {
  mask.resizeOverwrite(x.rows(), x.cols());  // every element written below
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x.flat()[i] > 0.0) {
      mask.flat()[i] = 1.0;
    } else {
      x.flat()[i] = 0.0;
      mask.flat()[i] = 0.0;
    }
  }
}

void reluBackward(Tensor& grad, const Tensor& mask) {
  if (!grad.sameShape(mask)) throw std::invalid_argument("reluBackward: shape mismatch");
  for (std::size_t i = 0; i < grad.size(); ++i) grad.flat()[i] *= mask.flat()[i];
}

Mlp::Mlp(std::vector<std::size_t> dims, Rng& rng, ThreadPool* pool)
    : dims_(std::move(dims)), pool_(pool) {
  if (dims_.size() < 2) throw std::invalid_argument("Mlp: need at least input and output dims");
  for (std::size_t d : dims_) {
    if (d == 0) throw std::invalid_argument("Mlp: zero-sized layer");
  }
  layers_.reserve(dims_.size() - 1);
  for (std::size_t i = 0; i + 1 < dims_.size(); ++i) {
    layers_.emplace_back(dims_[i], dims_[i + 1]);
    layers_.back().initHe(rng);
  }
  inputs_.resize(layers_.size());
  reluMasks_.resize(layers_.size() - 1);
}

std::size_t Mlp::parameterCount() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.weights().size() + layer.bias().size();
  return n;
}

const Tensor& Mlp::forward(const Tensor& x) {
  inputs_[0] = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const bool hidden = i + 1 < layers_.size();
    // Hidden layers fuse bias + ReLU + mask capture into the GEMM sweep
    // and land directly in the next layer's cached input slot — no
    // per-call tensor allocation, no separate activation pass.
    Tensor& y = hidden ? inputs_[i + 1] : output_;
    layers_[i].forward(inputs_[i], y, pool_, hidden, hidden ? &reluMasks_[i] : nullptr);
  }
  return output_;
}

void Mlp::predict(const Tensor& x, Tensor& y) const {
  // Reentrancy: concurrent predict() calls share only the immutable
  // weights, so hidden-layer scratch stays on the stack (two ping-pong
  // buffers; the input itself is never copied).
  if (layers_.size() == 1) {
    Tensor out;  // guard against y aliasing x
    layers_.front().forward(x, out, pool_);
    y = std::move(out);
    return;
  }
  Tensor ping, pong;
  const Tensor* in = &x;
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    Tensor& out = (i % 2 == 0) ? ping : pong;
    layers_[i].forward(*in, out, pool_, /*relu=*/true);
    in = &out;
  }
  layers_.back().forward(*in, y, pool_);
}

void Mlp::backward(const Tensor& dLossDOut) {
  bwdGrad_ = dLossDOut;
  Tensor* grad = &bwdGrad_;
  Tensor* dx = &bwdDx_;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    // The ReLU gate below layer i is fused into the dX GEMM; grad/dx
    // ping-pong between two member buffers reused across calls. The
    // input layer (i == 0) produces no dX: nothing consumes dL/dInput.
    layers_[i].backward(inputs_[i], *grad, i > 0 ? dx : nullptr, pool_,
                        i > 0 ? &reluMasks_[i - 1] : nullptr);
    std::swap(grad, dx);
  }
}

void Mlp::zeroGrad() {
  for (auto& layer : layers_) layer.zeroGrad();
}

std::vector<Tensor*> Mlp::parameters() {
  std::vector<Tensor*> out;
  out.reserve(layers_.size() * 2);
  for (auto& layer : layers_) {
    out.push_back(&layer.weights());
    out.push_back(&layer.bias());
  }
  return out;
}

std::vector<Tensor*> Mlp::gradients() {
  std::vector<Tensor*> out;
  out.reserve(layers_.size() * 2);
  for (auto& layer : layers_) {
    out.push_back(&layer.weightGrad());
    out.push_back(&layer.biasGrad());
  }
  return out;
}

void Mlp::copyWeightsFrom(const Mlp& other) {
  if (other.layers_.size() != layers_.size()) {
    throw std::invalid_argument("Mlp::copyWeightsFrom: layer count mismatch");
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (!layers_[i].weights().sameShape(other.layers_[i].weights())) {
      throw std::invalid_argument("Mlp::copyWeightsFrom: shape mismatch");
    }
    layers_[i].weights() = other.layers_[i].weights();
    layers_[i].bias() = other.layers_[i].bias();
  }
}

}  // namespace dqndock::nn
