#pragma once

/// \file tensor.hpp
/// Dense row-major 2-D tensor of doubles — the only array type the NN
/// stack needs (vectors are 1xN tensors). Contiguous storage keeps the
/// GEMM kernels cache-friendly and makes serialization trivial.

#include <cstddef>
#include <span>
#include <vector>

namespace dqndock::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }

  void fill(double v) { data_.assign(data_.size(), v); }

  /// Resize without preserving contents (values are zeroed).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  /// Resize for outputs the caller overwrites entirely (gemmABt's C,
  /// ReLU masks): contents after the call are unspecified — stale
  /// values survive when the element count matches. Skips resize()'s
  /// full zero pass, which costs a whole extra write sweep per call on
  /// learn-phase scratch tensors. Keep resize() wherever accumulate
  /// semantics need a zero base (gemmAB's dx, gemmAtBAccum's C).
  void resizeOverwrite(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  bool sameShape(const Tensor& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Frobenius-style helpers used by tests and optimizers.
double maxAbs(const Tensor& t);
double l2Norm(const Tensor& t);

}  // namespace dqndock::nn
