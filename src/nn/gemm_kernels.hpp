#pragma once

/// \file gemm_kernels.hpp
/// Runtime-dispatched GEMM kernel tiers for the Q-network hot path.
///
/// The three training GEMM shapes (forward X*W^T, input gradient dY*W,
/// weight gradient dY^T*X) live in per-ISA translation units compiled
/// with explicit per-file flags (`gemm_kernel_generic.cpp` portable,
/// `gemm_kernel_avx512.cpp` with `-mavx512f`), mirroring the Eq. 1
/// scoring dispatch in src/metadock/scoring_kernels.hpp. A CPUID-probed
/// function-pointer table is resolved lazily on the first GEMM call, so
/// one portable Release binary runs the AVX-512/FMA microkernels on
/// capable hosts.
///
/// Tier contract:
///  * Each tier is bit-deterministic: for a fixed tier, every output
///    element accumulates its products in the same order regardless of
///    thread count, row partition, or register-tile membership, so
///    repeated runs and 1/2/8-thread pools produce bit-identical
///    tensors (and bit-identical DqnAgent::learn weight trajectories).
///  * The generic tier is bit-identical to the pre-dispatch scalar
///    kernels: same loop order, same per-element mul/add sequence, and
///    the global `-ffp-contract=off` keeps the compiler from fusing.
///  * The AVX-512 tier uses FMA with a fixed 8-lane reduction order
///    (pairwise 512->256->128->scalar tree) and agrees with the generic
///    tier to ~1e-12 relative on paper Table 1 shapes.
///
/// `DQNDOCK_FORCE_KERNEL=generic|avx512` pins the tier (shared with the
/// scoring kernels, so one env var pins the whole binary); unknown names
/// and unsupported forced tiers throw — a pinned run must never silently
/// fall back.

#include <cstddef>

namespace dqndock::nn {

/// ISA tier of the GEMM kernels, ordered worst to best.
enum class GemmTier : unsigned char {
  kGeneric = 0,  ///< portable C++ (register-tiled scalar, auto-vectorised)
  kAvx512 = 1,   ///< AVX-512F + FMA microkernels, fixed lane-reduction order
};

/// Stable lowercase name ("generic", "avx512") — the value accepted by
/// DQNDOCK_FORCE_KERNEL and reported as `gemm_kernel_tier` in bench JSON.
const char* gemmTierName(GemmTier tier);

/// True when this binary contains the tier's translation unit.
bool gemmTierCompiled(GemmTier tier);

/// True when the tier is compiled in AND the running CPU can execute it.
bool gemmTierSupported(GemmTier tier);

/// Best CPU-supported tier (CPUID probe, cached).
GemmTier probeGemmTier();

/// probeGemmTier() unless DQNDOCK_FORCE_KERNEL names a tier; throws
/// std::runtime_error for an unknown name or an unsupported forced tier.
GemmTier resolveGemmTier();

/// The tier the GEMM entry points currently dispatch to. Resolved (env
/// override or CPUID probe) on first use and cached for the process.
GemmTier gemmKernelTier();

/// Re-pin the active tier (tests/benchmarks). Throws std::runtime_error
/// when `tier` is not supported on this binary/host.
void setGemmKernelTier(GemmTier tier);

namespace detail {

/// Rows [lo, hi) of C = A * B^T with optional fused epilogue. A is
/// (m x k), B is (n x k), C is (m x n); pointers address full matrices
/// and the kernel offsets by absolute row index, so any row partition
/// computes identical per-element sequences. `bias` (length n) is added
/// to every row when non-null; when `relu`, C is clamped at zero after
/// the bias and `reluMask` (m x n, may be null) records 1.0/0.0 per kept
/// element.
using GemmABtRowsFn = void (*)(const double* a, const double* b, double* c, std::size_t lo,
                               std::size_t hi, std::size_t n, std::size_t k, const double* bias,
                               bool relu, double* reluMask);

/// Rows [lo, hi) of C += A * B. A is (m x k), B is (k x n), C is
/// (m x n) and must hold the accumulation base (zeros for a plain
/// product). `mask` (m x n, may be null) is multiplied elementwise into
/// the finished rows — the fused ReLU-backward gate.
using GemmABRowsFn = void (*)(const double* a, const double* b, double* c, std::size_t lo,
                              std::size_t hi, std::size_t n, std::size_t k, const double* mask);

/// Rows [lo, hi) of C += A^T * B. A is (k x m), B is (k x n), C is
/// (m x n); row i of C reads column i of A (stride m).
using GemmAtBRowsFn = void (*)(const double* a, const double* b, double* c, std::size_t lo,
                               std::size_t hi, std::size_t m, std::size_t n, std::size_t k);

/// One tier's dispatch table. Instances live in the per-ISA TUs; the
/// AVX-512 table must only be invoked after gemmTierSupported() agrees.
struct GemmKernelOps {
  GemmTier tier;
  GemmABtRowsFn abtRows;
  GemmABRowsFn abRows;
  GemmAtBRowsFn atbRows;
};

extern const GemmKernelOps kGenericGemmOps;
#ifdef DQNDOCK_GEMM_HAVE_AVX512
extern const GemmKernelOps kAvx512GemmOps;
#endif

/// Table for `tier`; the tier must be compiled in.
const GemmKernelOps& gemmKernelOps(GemmTier tier);

}  // namespace detail

}  // namespace dqndock::nn
