#include "src/nn/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace dqndock::nn {

double maxAbs(const Tensor& t) {
  double m = 0.0;
  for (double v : t.flat()) m = std::max(m, std::fabs(v));
  return m;
}

double l2Norm(const Tensor& t) {
  double acc = 0.0;
  for (double v : t.flat()) acc += v * v;
  return std::sqrt(acc);
}

}  // namespace dqndock::nn
