#pragma once

/// \file serialize.hpp
/// Binary checkpointing of MLP weights (little-endian host format with a
/// magic header). Lets a trained Q-network be reloaded for greedy-policy
/// evaluation — the paper's motivation of "reducing the computational
/// cost once the NN is already trained".

#include <iosfwd>
#include <string>

#include "src/nn/mlp.hpp"

namespace dqndock::nn {

void saveMlp(std::ostream& out, const Mlp& net);
void saveMlpFile(const std::string& path, const Mlp& net);

/// Reconstructs the architecture from the header; `rng` seeds nothing
/// (weights are overwritten) but is required by the Mlp constructor.
Mlp loadMlp(std::istream& in, ThreadPool* pool = nullptr);
Mlp loadMlpFile(const std::string& path, ThreadPool* pool = nullptr);

}  // namespace dqndock::nn
