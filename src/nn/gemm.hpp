#pragma once

/// \file gemm.hpp
/// Runtime-dispatched, optionally thread-parallel matrix multiply
/// kernels — the entire FLOP budget of DQN training flows through these
/// three shapes: forward (X*W^T), input gradient (dY*W) and weight
/// gradient (dY^T*X). Per-ISA kernel tiers live behind the dispatch
/// table in gemm_kernels.hpp (`DQNDOCK_FORCE_KERNEL` pins a tier; every
/// tier is bit-deterministic across thread counts and runs).
///
/// Zero-skip semantics (gemmAB / gemmAtBAccum): rows of B whose matching
/// A element is exactly 0.0 are skipped entirely. In backprop A is a
/// ReLU-gated gradient, typically 50%+ exact zeros, so the skip removes
/// half the memory traffic of the two big backward GEMMs. The trade-off
/// is deliberate and pinned by test: a skipped row contributes nothing
/// even where B holds non-finite values, i.e. 0 x Inf yields 0, not the
/// IEEE NaN a literal multiply would produce. Weights and activations
/// that have gone Inf/NaN have already destroyed training, so
/// propagating NaN through zero-gradient lanes buys nothing — both
/// kernel tiers implement the same skip, keeping them equivalent on
/// non-finite inputs too.

#include "src/common/thread_pool.hpp"
#include "src/nn/tensor.hpp"

namespace dqndock::nn {

/// Optional epilogue fused into gemmABt's output sweep: Y = act(A*B^T
/// + bias). Fusing runs the bias add and ReLU clamp while the freshly
/// computed element is still in a register, replacing the separate
/// full-tensor passes DenseLayer/Mlp used to make. Element-local ops,
/// applied in the fixed order (bias, then clamp), so fused results are
/// bit-identical to the unfused sequence on every tier.
struct GemmEpilogue {
  const Tensor* bias = nullptr;  ///< 1 x n row added to every output row
  bool relu = false;             ///< clamp at zero after the bias
  /// When `relu`, optionally capture the keep mask (resized to m x n,
  /// 1.0 where the output stayed positive, 0.0 where it was clamped).
  Tensor* reluMask = nullptr;
};

/// C = A * B^T (+ fused epilogue). A is (m x k), B is (n x k), C
/// becomes (m x n). Rows of C are distributed over `pool` when given.
void gemmABt(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool = nullptr,
             const GemmEpilogue& epilogue = {});

/// C = A * B. A is (m x k), B is (k x n), C becomes (m x n). `mask`
/// (m x n) is multiplied elementwise into the finished product — the
/// fused ReLU-backward gate, bit-identical to a separate reluBackward
/// pass over the result.
void gemmAB(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool = nullptr,
            const Tensor* mask = nullptr);

/// C += A^T * B. A is (k x m), B is (k x n), C must be (m x n).
/// (Accumulating form: weight gradients sum over the minibatch.)
void gemmAtBAccum(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool = nullptr);

}  // namespace dqndock::nn
