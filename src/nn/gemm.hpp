#pragma once

/// \file gemm.hpp
/// Blocked, optionally thread-parallel matrix multiply kernels — the
/// entire FLOP budget of DQN training flows through these three shapes:
/// forward (X*W^T), input gradient (dY*W) and weight gradient (dY^T*X).

#include "src/common/thread_pool.hpp"
#include "src/nn/tensor.hpp"

namespace dqndock::nn {

/// C = A * B^T. A is (m x k), B is (n x k), C becomes (m x n).
/// Rows of C are distributed over `pool` when given.
void gemmABt(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool = nullptr);

/// C = A * B. A is (m x k), B is (k x n), C becomes (m x n).
void gemmAB(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool = nullptr);

/// C += A^T * B. A is (k x m), B is (k x n), C must be (m x n).
/// (Accumulating form: weight gradients sum over the minibatch.)
void gemmAtBAccum(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool = nullptr);

}  // namespace dqndock::nn
