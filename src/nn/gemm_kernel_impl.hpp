#pragma once

/// \file gemm_kernel_impl.hpp
/// Shared helpers for the per-ISA GEMM translation units. Everything
/// here is plain scalar IEEE arithmetic (adds/compares, no dot-product
/// reductions), so including it from differently-flagged TUs cannot
/// introduce cross-tier drift: the epilogue applied after an avx512
/// accumulation is bit-identical to the one applied after a generic
/// accumulation.

#include <cstddef>

namespace dqndock::nn::detail {

/// Fused gemmABt epilogue for one output element: bias add, then the
/// ReLU clamp with optional mask capture. The `v > 0` form matches
/// reluForward() (a ReLU output is never -0.0) and every tier applies
/// exactly this sequence, so fusing is bit-identical to the former
/// separate bias/ReLU passes.
inline void storeWithEpilogue(double* cPtr, double v, const double* bias, std::size_t j, bool relu,
                              double* maskPtr) {
  if (bias != nullptr) v += bias[j];
  if (relu) {
    if (v > 0.0) {
      if (maskPtr != nullptr) *maskPtr = 1.0;
    } else {
      v = 0.0;
      if (maskPtr != nullptr) *maskPtr = 0.0;
    }
  }
  *cPtr = v;
}

}  // namespace dqndock::nn::detail
