#include "src/nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace dqndock::nn {

namespace {
void ensureState(std::vector<Tensor>& state, const std::vector<Tensor*>& params) {
  if (state.size() == params.size()) return;
  state.clear();
  state.reserve(params.size());
  for (const Tensor* p : params) state.emplace_back(p->rows(), p->cols());
}

void checkPairs(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads,
                const FactoredPrefixGrad* factored) {
  if (params.size() != grads.size()) {
    throw std::invalid_argument("Optimizer::step: params/grads size mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (factored && i == factored->paramIndex) {
      const std::size_t s = factored->staticPrefix.size();
      if (grads[i]->rows() != params[i]->rows() || grads[i]->cols() + s != params[i]->cols()) {
        throw std::invalid_argument("Optimizer::step: factored param/grad shape mismatch");
      }
      if (factored->coeff == nullptr || factored->coeff->rows() != 1 ||
          factored->coeff->cols() != params[i]->rows()) {
        throw std::invalid_argument("Optimizer::step: factored coeff shape mismatch");
      }
      continue;
    }
    if (!params[i]->sameShape(*grads[i])) {
      throw std::invalid_argument("Optimizer::step: param/grad shape mismatch");
    }
  }
}

/// Drive the per-element update `f(flatIdx, g)` over a factored parameter:
/// the leading S columns of each row get the rank-1 reconstruction
/// g = coeff[r] * staticPrefix[c]; the trailing d columns read the packed
/// gradient tensor. flatIdx indexes the full (out x in) parameter/state.
template <class F>
void forEachFactoredElem(const Tensor& param, const Tensor& packedGrad,
                         const FactoredPrefixGrad& fp, F&& f) {
  const std::size_t rows = param.rows();
  const std::size_t full = param.cols();
  const std::size_t s = fp.staticPrefix.size();
  const std::size_t d = full - s;
  const double* xs = fp.staticPrefix.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const double cr = (*fp.coeff)(0, r);
    const double* gd = packedGrad.data() + r * d;
    const std::size_t base = r * full;
    for (std::size_t j = 0; j < s; ++j) f(base + j, cr * xs[j]);
    for (std::size_t j = 0; j < d; ++j) f(base + s + j, gd[j]);
  }
}
}  // namespace

void Sgd::step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads,
               const FactoredPrefixGrad* factored) {
  checkPairs(params, grads, factored);
  ensureState(velocity_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params[i]->flat();
    auto v = velocity_[i].flat();
    if (factored && i == factored->paramIndex) {
      forEachFactoredElem(*params[i], *grads[i], *factored, [&](std::size_t j, double g) {
        v[j] = momentum_ * v[j] - lr_ * g;
        p[j] += v[j];
      });
      continue;
    }
    auto g = grads[i]->flat();
    for (std::size_t j = 0; j < p.size(); ++j) {
      v[j] = momentum_ * v[j] - lr_ * g[j];
      p[j] += v[j];
    }
  }
}

void RmsProp::step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads,
                   const FactoredPrefixGrad* factored) {
  checkPairs(params, grads, factored);
  ensureState(meanSquare_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params[i]->flat();
    auto ms = meanSquare_[i].flat();
    if (factored && i == factored->paramIndex) {
      forEachFactoredElem(*params[i], *grads[i], *factored, [&](std::size_t j, double g) {
        ms[j] = decay_ * ms[j] + (1.0 - decay_) * g * g;
        p[j] -= lr_ * g / std::sqrt(ms[j] + epsilon_);
      });
      continue;
    }
    auto g = grads[i]->flat();
    for (std::size_t j = 0; j < p.size(); ++j) {
      ms[j] = decay_ * ms[j] + (1.0 - decay_) * g[j] * g[j];
      p[j] -= lr_ * g[j] / std::sqrt(ms[j] + epsilon_);
    }
  }
}

void Adam::step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads,
                const FactoredPrefixGrad* factored) {
  checkPairs(params, grads, factored);
  ensureState(m_, params);
  ensureState(v_, params);
  ++t_;
  const double correction1 = 1.0 - std::pow(beta1_, t_);
  const double correction2 = 1.0 - std::pow(beta2_, t_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params[i]->flat();
    auto m = m_[i].flat();
    auto v = v_[i].flat();
    if (factored && i == factored->paramIndex) {
      forEachFactoredElem(*params[i], *grads[i], *factored, [&](std::size_t j, double g) {
        m[j] = beta1_ * m[j] + (1.0 - beta1_) * g;
        v[j] = beta2_ * v[j] + (1.0 - beta2_) * g * g;
        const double mhat = m[j] / correction1;
        const double vhat = v[j] / correction2;
        p[j] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
      });
      continue;
    }
    auto g = grads[i]->flat();
    for (std::size_t j = 0; j < p.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      const double mhat = m[j] / correction1;
      const double vhat = v[j] / correction2;
      p[j] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
    }
  }
}

std::unique_ptr<Optimizer> makeOptimizer(const std::string& name, double lr) {
  if (name == "sgd") return std::make_unique<Sgd>(lr);
  if (name == "rmsprop") return std::make_unique<RmsProp>(lr);
  if (name == "adam") return std::make_unique<Adam>(lr);
  throw std::invalid_argument("makeOptimizer: unknown optimizer '" + name + "'");
}

}  // namespace dqndock::nn
