#include "src/nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace dqndock::nn {

namespace {
void ensureState(std::vector<Tensor>& state, const std::vector<Tensor*>& params) {
  if (state.size() == params.size()) return;
  state.clear();
  state.reserve(params.size());
  for (const Tensor* p : params) state.emplace_back(p->rows(), p->cols());
}

void checkPairs(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads) {
  if (params.size() != grads.size()) {
    throw std::invalid_argument("Optimizer::step: params/grads size mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!params[i]->sameShape(*grads[i])) {
      throw std::invalid_argument("Optimizer::step: param/grad shape mismatch");
    }
  }
}
}  // namespace

void Sgd::step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads) {
  checkPairs(params, grads);
  ensureState(velocity_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params[i]->flat();
    auto g = grads[i]->flat();
    auto v = velocity_[i].flat();
    for (std::size_t j = 0; j < p.size(); ++j) {
      v[j] = momentum_ * v[j] - lr_ * g[j];
      p[j] += v[j];
    }
  }
}

void RmsProp::step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads) {
  checkPairs(params, grads);
  ensureState(meanSquare_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params[i]->flat();
    auto g = grads[i]->flat();
    auto ms = meanSquare_[i].flat();
    for (std::size_t j = 0; j < p.size(); ++j) {
      ms[j] = decay_ * ms[j] + (1.0 - decay_) * g[j] * g[j];
      p[j] -= lr_ * g[j] / std::sqrt(ms[j] + epsilon_);
    }
  }
}

void Adam::step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads) {
  checkPairs(params, grads);
  ensureState(m_, params);
  ensureState(v_, params);
  ++t_;
  const double correction1 = 1.0 - std::pow(beta1_, t_);
  const double correction2 = 1.0 - std::pow(beta2_, t_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params[i]->flat();
    auto g = grads[i]->flat();
    auto m = m_[i].flat();
    auto v = v_[i].flat();
    for (std::size_t j = 0; j < p.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      const double mhat = m[j] / correction1;
      const double vhat = v[j] / correction2;
      p[j] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
    }
  }
}

std::unique_ptr<Optimizer> makeOptimizer(const std::string& name, double lr) {
  if (name == "sgd") return std::make_unique<Sgd>(lr);
  if (name == "rmsprop") return std::make_unique<RmsProp>(lr);
  if (name == "adam") return std::make_unique<Adam>(lr);
  throw std::invalid_argument("makeOptimizer: unknown optimizer '" + name + "'");
}

}  // namespace dqndock::nn
