#pragma once

/// \file optimizer.hpp
/// First-order optimizers. The paper trains with RMSprop (following the
/// original DQN) and names Adam as the alternative; both are provided,
/// plus plain SGD with momentum as a baseline.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/nn/tensor.hpp"

namespace dqndock::nn {

/// Describes one parameter whose gradient arrives factored: the tensor in
/// `grads` holds only the packed dynamic columns (out x d), and the
/// gradient of the leading `staticPrefix.size()` columns is the rank-1
/// outer product coeff ⊗ staticPrefix (coeff is the 1 x out bias
/// gradient, which the folded input-layer backward computes anyway).
/// Optimizers reconstruct g = coeff[r] * staticPrefix[c] on the fly, so
/// the full (out x in) gradient is never materialised, zeroed, or
/// streamed — the payoff of the static-prefix fold on the learn phase.
/// Per-parameter optimizer state stays full-shaped (keyed by the param).
struct FactoredPrefixGrad {
  std::size_t paramIndex = 0;            ///< position of the weight tensor in params/grads
  std::span<const double> staticPrefix;  ///< the S constant input values
  const Tensor* coeff = nullptr;         ///< 1 x out rank-1 coefficient (= bias grad)
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update: params[i] -= f(grads[i]). The two lists must pair
  /// up one-to-one with stable ordering across calls (per-parameter state
  /// is keyed by list position). When `factored` is non-null, the one
  /// parameter it names carries a packed dynamic-column gradient plus the
  /// rank-1 static part (see FactoredPrefixGrad); all other parameters
  /// update exactly as before.
  virtual void step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads,
                    const FactoredPrefixGrad* factored) = 0;

  /// Dense-gradient convenience overload (the pre-fold call shape).
  void step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads) {
    step(params, grads, nullptr);
  }

  virtual std::string name() const = 0;

  double learningRate() const { return lr_; }
  void setLearningRate(double lr) { lr_ = lr; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  double lr_;
};

/// SGD with classical momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0) : Optimizer(lr), momentum_(momentum) {}
  using Optimizer::step;
  void step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads,
            const FactoredPrefixGrad* factored) override;
  std::string name() const override { return "sgd"; }

 private:
  double momentum_;
  std::vector<Tensor> velocity_;
};

/// RMSprop as used by DQN (Mnih et al. 2015): squared-gradient moving
/// average with decay 0.95 and epsilon inside the square root.
class RmsProp final : public Optimizer {
 public:
  explicit RmsProp(double lr = 0.00025, double decay = 0.95, double epsilon = 0.01)
      : Optimizer(lr), decay_(decay), epsilon_(epsilon) {}
  using Optimizer::step;
  void step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads,
            const FactoredPrefixGrad* factored) override;
  std::string name() const override { return "rmsprop"; }

 private:
  double decay_;
  double epsilon_;
  std::vector<Tensor> meanSquare_;
};

/// Adam (Kingma & Ba 2015).
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr = 0.001, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8)
      : Optimizer(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}
  using Optimizer::step;
  void step(const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads,
            const FactoredPrefixGrad* factored) override;
  std::string name() const override { return "adam"; }

 private:
  double beta1_, beta2_, epsilon_;
  std::vector<Tensor> m_, v_;
  long t_ = 0;
};

/// Factory by name ("sgd" | "rmsprop" | "adam"); throws on unknown names.
std::unique_ptr<Optimizer> makeOptimizer(const std::string& name, double lr);

}  // namespace dqndock::nn
