#pragma once

/// \file corridor_env.hpp
/// Deterministic 1-D corridor MDP used to validate the DQN machinery
/// independently of the docking stack: the agent starts at cell 0 of a
/// corridor of length N and must walk right; reaching the last cell pays
/// +1 and terminates, stepping off the left edge pays -1 and terminates,
/// every other move pays a small negative step cost. Optimal behaviour
/// (always right) is learnable within a few hundred episodes, so tests
/// can assert that the full agent+replay+trainer loop actually learns.

#include "src/rl/env.hpp"

namespace dqndock::rl {

class CorridorEnv final : public Environment {
 public:
  explicit CorridorEnv(int length = 8, int maxSteps = 64);

  std::size_t stateDim() const override { return static_cast<std::size_t>(length_); }
  int actionCount() const override { return 2; }  // 0 = left, 1 = right

  void reset(std::vector<double>& state) override;
  EnvStep step(int action, std::vector<double>& nextState) override;

  double score() const override { return static_cast<double>(position_); }
  int position() const { return position_; }

 private:
  void encode(std::vector<double>& state) const;

  int length_;
  int maxSteps_;
  int position_ = 0;
  int steps_ = 0;
};

}  // namespace dqndock::rl
