#pragma once

/// \file sum_tree.hpp
/// Binary-indexed sum tree supporting O(log n) priority updates and
/// prefix-sum sampling — the data structure behind proportional
/// prioritized experience replay (Schaul et al. 2016; part of the
/// Rainbow line of DQN improvements the paper cites as future work).

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace dqndock::rl {

class SumTree {
 public:
  explicit SumTree(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("SumTree: capacity must be > 0");
    // Full binary tree over the next power of two of capacity.
    leafBase_ = 1;
    while (leafBase_ < capacity) leafBase_ <<= 1;
    nodes_.assign(2 * leafBase_, 0.0);
  }

  std::size_t capacity() const { return capacity_; }
  double total() const { return nodes_[1]; }

  double priority(std::size_t index) const {
    checkIndex(index);
    return nodes_[leafBase_ + index];
  }

  /// Set the priority of leaf `index` (>= 0) and propagate.
  void update(std::size_t index, double priority) {
    checkIndex(index);
    if (priority < 0.0) throw std::invalid_argument("SumTree: negative priority");
    std::size_t node = leafBase_ + index;
    const double delta = priority - nodes_[node];
    while (node >= 1) {
      nodes_[node] += delta;
      node >>= 1;
    }
  }

  /// Find the leaf whose prefix-sum interval contains `mass` in
  /// [0, total()). Throws std::logic_error when total() is 0.
  std::size_t find(double mass) const {
    if (total() <= 0.0) throw std::logic_error("SumTree: find on empty tree");
    if (mass < 0.0) mass = 0.0;
    if (mass >= total()) mass = total() * (1.0 - 1e-12);
    std::size_t node = 1;
    while (node < leafBase_) {
      const std::size_t left = node * 2;
      if (mass < nodes_[left]) {
        node = left;
      } else {
        mass -= nodes_[left];
        node = left + 1;
      }
    }
    std::size_t leaf = node - leafBase_;
    // Numerical drift can land on a zero-priority or out-of-range leaf;
    // walk back to the nearest valid one.
    if (leaf >= capacity_) leaf = capacity_ - 1;
    while (leaf > 0 && nodes_[leafBase_ + leaf] <= 0.0) --leaf;
    return leaf;
  }

 private:
  void checkIndex(std::size_t index) const {
    if (index >= capacity_) throw std::out_of_range("SumTree: index out of range");
  }

  std::size_t capacity_;
  std::size_t leafBase_;
  std::vector<double> nodes_;
};

}  // namespace dqndock::rl
