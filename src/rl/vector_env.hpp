#pragma once

/// \file vector_env.hpp
/// Lockstep vectorized environments. A VectorEnv owns V independent
/// episode streams advanced together: the trainer hands it one action
/// per env and receives one transition per env, with all next states
/// written into rows of a single V x stateDim tensor — the shape the
/// batched Q-forward (gemmABt register tiles) consumes directly.
///
/// Ownership contract: lockstep multi-env stepping belongs to
/// VectorEnv + the vectorized Trainer schedule. ParallelCollector is the
/// *thread-parallel* alternative (independent replicas on worker
/// threads, no batching); the two are not composed. CollectorStats and
/// VectorEnv both expose a `batchedSteps` counter so tests can assert
/// which path did the stepping.
///
/// Episode boundaries: step() does NOT auto-reset. When results[i]
/// reports terminal, the caller records the episode and calls
/// reset(i, row) before the next lockstep step — the same env call
/// order the sequential trainer produces (reset at episode start), which
/// is part of why V=1 reproduces the sequential run bit-for-bit.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "src/nn/tensor.hpp"
#include "src/rl/env.hpp"

namespace dqndock::rl {

class VectorEnv {
 public:
  virtual ~VectorEnv() = default;

  /// Number of lockstep envs V.
  virtual std::size_t size() const = 0;
  virtual std::size_t stateDim() const = 0;
  virtual int actionCount() const = 0;

  /// Start a new episode in env i; writes its initial state into `state`
  /// (exactly stateDim() doubles — typically a row of the state tensor).
  virtual void reset(std::size_t i, std::span<double> state) = 0;

  /// Lockstep step: apply actions[i] to env i for all i. `nextStates`
  /// must be pre-shaped size() x stateDim(); row i receives env i's next
  /// state. `results` must hold size() entries.
  virtual void step(std::span<const int> actions, nn::Tensor& nextStates,
                    std::span<EnvStep> results) = 0;

  /// Step a single env outside the lockstep batch (greedy evaluation
  /// plays env 0 on its own; at V=1 this is also the bit-identity path).
  virtual EnvStep stepOne(std::size_t i, int action, std::span<double> nextState) = 0;

  /// Domain metric of env i (docking: the METADOCK score).
  virtual double score(std::size_t i) const = 0;

  /// Number of step() calls that actually batched work across envs
  /// (implementations that fall back to per-env stepping report 0).
  virtual std::size_t batchedSteps() const { return 0; }
};

/// Generic lockstep wrapper over scalar Environments: steps each env
/// sequentially inside step(). No batching (batchedSteps() stays 0) —
/// this is the reference semantics used by tests and by envs without a
/// batched fast path.
class LockstepVectorEnv final : public VectorEnv {
 public:
  explicit LockstepVectorEnv(std::vector<std::unique_ptr<Environment>> envs);

  std::size_t size() const override { return envs_.size(); }
  std::size_t stateDim() const override;
  int actionCount() const override;

  void reset(std::size_t i, std::span<double> state) override;
  void step(std::span<const int> actions, nn::Tensor& nextStates,
            std::span<EnvStep> results) override;
  EnvStep stepOne(std::size_t i, int action, std::span<double> nextState) override;
  double score(std::size_t i) const override { return envs_[i]->score(); }

  Environment& env(std::size_t i) { return *envs_[i]; }

 private:
  std::vector<std::unique_ptr<Environment>> envs_;
  std::vector<double> scratch_;  ///< bridges the vector-based Environment API
};

}  // namespace dqndock::rl
