#pragma once

/// \file noisy_env.hpp
/// Observation-noise decorator.
///
/// The paper notes (Section 3) that DQN-Docking faces an MDP — "a
/// particularization of the POMDP setting" — because METADOCK's internal
/// state is fully observed. Real pipelines observe through imperfect
/// structure determination, so this decorator injects zero-mean Gaussian
/// noise into every observation (never into the underlying dynamics),
/// turning the task into a genuine POMDP for robustness studies.

#include "src/common/rng.hpp"
#include "src/rl/env.hpp"

namespace dqndock::rl {

class NoisyObservationEnv final : public Environment {
 public:
  /// Wraps `inner`; every state component is perturbed by N(0, stddev).
  /// Deterministic in `seed` (independent of the agent's RNG).
  NoisyObservationEnv(Environment& inner, double stddev, std::uint64_t seed = 1234)
      : inner_(inner), stddev_(stddev), rng_(seed) {}

  std::size_t stateDim() const override { return inner_.stateDim(); }
  int actionCount() const override { return inner_.actionCount(); }
  double score() const override { return inner_.score(); }

  void reset(std::vector<double>& state) override {
    inner_.reset(state);
    corrupt(state);
  }

  EnvStep step(int action, std::vector<double>& nextState) override {
    const EnvStep r = inner_.step(action, nextState);
    corrupt(nextState);
    return r;
  }

  double stddev() const { return stddev_; }
  Environment& inner() { return inner_; }

 private:
  void corrupt(std::vector<double>& state) {
    if (stddev_ <= 0.0) return;
    for (double& v : state) v += rng_.gaussian(0.0, stddev_);
  }

  Environment& inner_;
  double stddev_;
  Rng rng_;
};

}  // namespace dqndock::rl
