#include "src/rl/corridor_env.hpp"

#include <stdexcept>

namespace dqndock::rl {

CorridorEnv::CorridorEnv(int length, int maxSteps) : length_(length), maxSteps_(maxSteps) {
  if (length < 2) throw std::invalid_argument("CorridorEnv: length must be >= 2");
}

void CorridorEnv::encode(std::vector<double>& state) const {
  state.assign(static_cast<std::size_t>(length_), 0.0);
  if (position_ >= 0 && position_ < length_) {
    state[static_cast<std::size_t>(position_)] = 1.0;
  }
}

void CorridorEnv::reset(std::vector<double>& state) {
  position_ = 0;
  steps_ = 0;
  encode(state);
}

EnvStep CorridorEnv::step(int action, std::vector<double>& nextState) {
  if (action != 0 && action != 1) throw std::out_of_range("CorridorEnv: bad action");
  EnvStep result;
  position_ += action == 1 ? 1 : -1;
  ++steps_;
  if (position_ < 0) {
    position_ = 0;
    result.reward = -1.0;
    result.terminal = true;
  } else if (position_ >= length_ - 1) {
    position_ = length_ - 1;
    result.reward = 1.0;
    result.terminal = true;
  } else {
    result.reward = -0.01;
    result.terminal = steps_ >= maxSteps_;
  }
  encode(nextState);
  return result;
}

}  // namespace dqndock::rl
