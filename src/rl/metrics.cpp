#include "src/rl/metrics.hpp"

#include <algorithm>
#include <limits>

#include "src/common/csv.hpp"

namespace dqndock::rl {

std::vector<double> MetricsLog::smoothedAvgMaxQ(std::size_t window) const {
  std::vector<double> out;
  if (window == 0 || records_.empty()) return out;
  out.reserve(records_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    acc += records_[i].avgMaxQ;
    if (i >= window) acc -= records_[i - window].avgMaxQ;
    const std::size_t denom = std::min(i + 1, window);
    out.push_back(acc / static_cast<double>(denom));
  }
  return out;
}

double MetricsLog::meanAvgMaxQ(std::size_t from, std::size_t to) const {
  to = std::min(to, records_.size());
  if (from >= to) return 0.0;
  double acc = 0.0;
  for (std::size_t i = from; i < to; ++i) acc += records_[i].avgMaxQ;
  return acc / static_cast<double>(to - from);
}

double MetricsLog::bestScoreOverall() const {
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& r : records_) best = std::max(best, r.bestScore);
  return best;
}

void MetricsLog::writeCsv(const std::string& path) const {
  CsvWriter csv(path, {"episode", "steps", "total_reward", "avg_max_q", "final_score",
                       "best_score", "epsilon", "termination"});
  for (const auto& r : records_) {
    csv.row({static_cast<double>(r.episode), static_cast<double>(r.steps), r.totalReward,
             r.avgMaxQ, r.finalScore, r.bestScore, r.epsilon,
             static_cast<double>(r.terminationCode)});
  }
}

}  // namespace dqndock::rl
