#pragma once

/// \file schedule.hpp
/// Epsilon-greedy exploration schedule (paper Table 1): epsilon starts at
/// 1.0, decays linearly by `decayPerStep` per environment step down to
/// `end`, and is pinned at 1.0 during the initial pure-exploration phase.

#include <algorithm>
#include <cstddef>

namespace dqndock::rl {

class EpsilonSchedule {
 public:
  EpsilonSchedule(double start = 1.0, double end = 0.05, double decayPerStep = 4.5e-5,
                  std::size_t pureExplorationSteps = 20000)
      : start_(start), end_(end), decay_(decayPerStep), pure_(pureExplorationSteps) {}

  /// Epsilon at global environment step `step`.
  double value(std::size_t step) const {
    if (step < pure_) return 1.0;
    const double decayed = start_ - decay_ * static_cast<double>(step - pure_);
    return std::max(end_, std::min(start_, decayed));
  }

  double start() const { return start_; }
  double end() const { return end_; }
  std::size_t pureExplorationSteps() const { return pure_; }

 private:
  double start_, end_, decay_;
  std::size_t pure_;
};

}  // namespace dqndock::rl
