#include "src/rl/tabular_q.hpp"

#include <algorithm>
#include <stdexcept>

namespace dqndock::rl {

TabularQAgent::TabularQAgent(std::size_t stateCount, int actionCount, TabularQConfig config)
    : states_(stateCount), actions_(actionCount), config_(config) {
  if (stateCount == 0) throw std::invalid_argument("TabularQAgent: stateCount must be > 0");
  if (actionCount <= 0) throw std::invalid_argument("TabularQAgent: actionCount must be > 0");
  table_.assign(stateCount * static_cast<std::size_t>(actionCount), 0.0);
}

void TabularQAgent::check(std::size_t state, int action) const {
  if (state >= states_) throw std::out_of_range("TabularQAgent: state out of range");
  if (action < 0 || action >= actions_) throw std::out_of_range("TabularQAgent: action out of range");
}

double TabularQAgent::q(std::size_t state, int action) const {
  check(state, action);
  return table_[state * static_cast<std::size_t>(actions_) + static_cast<std::size_t>(action)];
}

double TabularQAgent::maxQ(std::size_t state) const {
  check(state, 0);
  const double* row = table_.data() + state * static_cast<std::size_t>(actions_);
  return *std::max_element(row, row + actions_);
}

int TabularQAgent::greedyAction(std::size_t state) const {
  check(state, 0);
  const double* row = table_.data() + state * static_cast<std::size_t>(actions_);
  return static_cast<int>(std::max_element(row, row + actions_) - row);
}

int TabularQAgent::selectAction(std::size_t state, double epsilon, Rng& rng) const {
  if (rng.uniform() < epsilon) {
    return static_cast<int>(rng.uniformInt(static_cast<std::uint64_t>(actions_)));
  }
  return greedyAction(state);
}

void TabularQAgent::update(std::size_t state, int action, double reward, std::size_t nextState,
                           bool terminal) {
  check(state, action);
  if (!terminal) check(nextState, 0);
  const double bootstrap = terminal ? 0.0 : maxQ(nextState);
  double& cell =
      table_[state * static_cast<std::size_t>(actions_) + static_cast<std::size_t>(action)];
  cell += config_.alpha * (reward + config_.gamma * bootstrap - cell);
}

}  // namespace dqndock::rl
