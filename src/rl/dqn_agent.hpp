#pragma once

/// \file dqn_agent.hpp
/// Deep Q-Network agent (Mnih et al. 2013/2015) with the paper's
/// Section 5 variants: Double DQN target computation (van Hasselt 2016)
/// and the dueling architecture. Owns the online and frozen target
/// networks and performs one gradient step per learn() call on a
/// minibatch drawn from an ExperienceSource.

#include <memory>
#include <span>
#include <vector>

#include "src/rl/qnetwork.hpp"
#include "src/rl/replay_buffer.hpp"
#include "src/nn/optimizer.hpp"

namespace dqndock::rl {

enum class DqnVariant : unsigned char {
  kVanilla = 0,  ///< y = r + g * max_a Q_target(s', a)            (the paper)
  kDouble,       ///< y = r + g * Q_target(s', argmax_a Q_online)  (DDQN)
};

const char* dqnVariantName(DqnVariant v);

struct DqnConfig {
  double gamma = 0.99;                       ///< discount (Table 1)
  double learningRate = 0.00025;             ///< RMSprop lr (Table 1)
  std::string optimizer = "rmsprop";         ///< "rmsprop" | "adam" | "sgd"
  std::size_t batchSize = 32;                ///< minibatch (Table 1)
  std::size_t targetSyncInterval = 1000;     ///< C steps (Table 1)
  std::vector<std::size_t> hiddenSizes = {135, 135};  ///< hidden layers (Table 1)
  DqnVariant variant = DqnVariant::kVanilla;
  bool dueling = false;                      ///< dueling head (Section 5)
  /// Clip the temporal-difference error to [-1, 1] before backprop
  /// (the DQN "reward clipping"/robust-gradient trick).
  bool clipTdError = true;
  /// Multi-step return length n: transitions from an NStepSink carry
  /// n-step rewards, so the bootstrap discount becomes gamma^n. Keep 1
  /// for ordinary one-step replay.
  int nStep = 1;
  /// Soft (Polyak) target updates: when tau > 0 the target tracks
  /// target <- (1 - tau) * target + tau * online after every learn()
  /// call instead of the hard copy every `targetSyncInterval` steps.
  double polyakTau = 0.0;
};

class DqnAgent {
 public:
  DqnAgent(std::size_t stateDim, int actionCount, DqnConfig config, Rng& rng,
           ThreadPool* pool = nullptr);

  std::size_t stateDim() const { return online_->inputDim(); }
  int actionCount() const { return online_->actionCount(); }
  const DqnConfig& config() const { return config_; }

  /// Fold the constant state prefix out of both the online and target
  /// input layers (nn::Mlp::configureStaticPrefix). Returns false — and
  /// leaves both nets unfolded — when the architecture doesn't support
  /// it (dueling) or the prefix is degenerate. Once active, every
  /// state-taking entry point accepts either full-width states or just
  /// the dynamicStateDim() suffix, and learn() routes the input-layer
  /// weight update through the rank-1 factored path.
  bool enableStaticPrefixFold(std::span<const double> staticPrefix);
  bool foldActive() const { return online_->foldActive(); }
  std::size_t dynamicStateDim() const { return online_->dynamicInputDim(); }

  /// Epsilon-greedy action for one state.
  int selectAction(std::span<const double> state, double epsilon, Rng& rng) const;

  /// Boltzmann (softmax) exploration: sample an action with probability
  /// proportional to exp(Q / temperature). temperature -> 0 approaches
  /// greedy; large temperatures approach uniform.
  int selectActionSoftmax(std::span<const double> state, double temperature, Rng& rng) const;

  /// Greedy action (epsilon = 0).
  int greedyAction(std::span<const double> state) const;

  /// Q-values predicted by the online network for one state.
  std::vector<double> qValues(std::span<const double> state) const;

  /// Online-network Q-values for a batch of states (one row per state,
  /// q resized to rows x actionCount). Bit-identical per row to
  /// qValues(): predict() routes any row count through the same gemmABt
  /// register-tile path. The vectorized trainer folds all V per-env
  /// maxQ/greedy lookups into one of these calls.
  void qValuesBatch(const nn::Tensor& states, nn::Tensor& q) const;

  /// max_a Q(s, a) — the quantity Figure 4 tracks per time-step.
  double maxQ(std::span<const double> state) const;

  /// One DQN update from `source`; returns the minibatch loss. No-op
  /// (returns 0) when the source holds fewer than batchSize transitions.
  /// Automatically syncs the target network every C calls. When `source`
  /// is a PrioritizedSource, importance weights are applied to the loss
  /// and |TD| errors are fed back as new priorities.
  double learn(ExperienceSource& source, Rng& rng);

  /// Force target <- online.
  void syncTarget();

  std::size_t learnSteps() const { return learnSteps_; }

  QNetwork& online() { return *online_; }
  const QNetwork& online() const { return *online_; }
  const QNetwork& target() const { return *target_; }

 private:
  DqnConfig config_;
  std::unique_ptr<QNetwork> online_;
  std::unique_ptr<QNetwork> target_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  std::size_t learnSteps_ = 0;

  // learn() scratch, reused across calls (shapes are steady-state
  // constant, so after the first call these never reallocate).
  Minibatch mbScratch_;
  nn::Tensor nextQTarget_, nextQOnline_, dq_;
  std::vector<double> targets_, tdErrors_;
};

}  // namespace dqndock::rl
