#include "src/rl/nstep.hpp"

#include <cmath>
#include <stdexcept>

namespace dqndock::rl {

NStepSink::NStepSink(ExperienceSink& inner, int n, double gamma)
    : inner_(inner), n_(n), gamma_(gamma) {
  if (n < 1) throw std::invalid_argument("NStepSink: n must be >= 1");
  if (gamma < 0.0 || gamma > 1.0) throw std::invalid_argument("NStepSink: gamma out of range");
}

void NStepSink::emitFront(std::span<const double> bootstrapState, bool terminal) {
  Pending& front = pending_.front();
  inner_.push(front.state, front.action, front.accumulatedReward, bootstrapState, terminal);
  pending_.pop_front();
}

void NStepSink::push(std::span<const double> state, int action, double reward,
                     std::span<const double> nextState, bool terminal) {
  pending_.push_back(
      Pending{std::vector<double>(state.begin(), state.end()), action, 0.0, 0});
  for (auto& p : pending_) {
    p.accumulatedReward += std::pow(gamma_, p.stepsAccumulated) * reward;
    ++p.stepsAccumulated;
  }
  lastNextState_.assign(nextState.begin(), nextState.end());

  if (terminal) {
    // Every pending transition sees the terminal within its n-step
    // window: emit all as terminal (no bootstrap).
    while (!pending_.empty()) emitFront(lastNextState_, true);
    return;
  }
  if (pending_.front().stepsAccumulated >= n_) {
    emitFront(lastNextState_, false);
  }
}

void NStepSink::flush() {
  while (!pending_.empty()) emitFront(lastNextState_, true);
}

}  // namespace dqndock::rl
