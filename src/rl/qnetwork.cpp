#include "src/rl/qnetwork.hpp"

#include <stdexcept>

namespace dqndock::rl {

std::size_t QNetwork::parameterCountTotal() const {
  std::size_t n = 0;
  for (const nn::Tensor* t : const_cast<QNetwork*>(this)->parameters()) n += t->size();
  return n;
}

// ---------------------------------------------------------------------------
// MlpQNetwork
// ---------------------------------------------------------------------------

namespace {
std::vector<std::size_t> mlpDims(std::size_t inputDim, const std::vector<std::size_t>& hidden,
                                 int actions) {
  std::vector<std::size_t> dims;
  dims.push_back(inputDim);
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  dims.push_back(static_cast<std::size_t>(actions));
  return dims;
}
}  // namespace

MlpQNetwork::MlpQNetwork(std::size_t inputDim, const std::vector<std::size_t>& hidden, int actions,
                         Rng& rng, ThreadPool* pool)
    : net_(mlpDims(inputDim, hidden, actions), rng, pool) {}

MlpQNetwork::MlpQNetwork(nn::Mlp net) : net_(std::move(net)) {}

std::unique_ptr<QNetwork> MlpQNetwork::clone() const {
  auto copy = std::make_unique<MlpQNetwork>(net_);
  return copy;
}

const nn::FactoredPrefixGrad* MlpQNetwork::factoredGrad() const {
  if (!net_.foldActive()) return nullptr;
  const nn::DenseLayer& input = net_.inputLayer();
  factoredGrad_.paramIndex = 0;  // parameters() order: W0, b0, W1, b1, ...
  factoredGrad_.staticPrefix = input.staticPrefix();
  factoredGrad_.coeff = &input.biasGrad();
  return &factoredGrad_;
}

void MlpQNetwork::copyWeightsFrom(const QNetwork& other) {
  const auto* src = dynamic_cast<const MlpQNetwork*>(&other);
  if (!src) throw std::invalid_argument("MlpQNetwork::copyWeightsFrom: type mismatch");
  net_.copyWeightsFrom(src->net_);
}

// ---------------------------------------------------------------------------
// DuelingQNetwork
// ---------------------------------------------------------------------------

DuelingQNetwork::DuelingQNetwork(std::size_t inputDim, const std::vector<std::size_t>& hidden,
                                 int actions, Rng& rng, ThreadPool* pool)
    : pool_(pool) {
  if (hidden.empty()) {
    throw std::invalid_argument("DuelingQNetwork: need at least one hidden layer");
  }
  std::size_t in = inputDim;
  for (std::size_t h : hidden) {
    trunk_.emplace_back(in, h);
    trunk_.back().initHe(rng);
    in = h;
  }
  valueHead_ = std::make_unique<nn::DenseLayer>(in, 1);
  valueHead_->initHe(rng);
  advHead_ = std::make_unique<nn::DenseLayer>(in, static_cast<std::size_t>(actions));
  advHead_->initHe(rng);
}

void DuelingQNetwork::trunkForward(const nn::Tensor& x, nn::Tensor& out,
                                   std::vector<nn::Tensor>* inputs,
                                   std::vector<nn::Tensor>* masks) const {
  // Bias + ReLU + mask capture are fused into each layer's GEMM sweep.
  nn::Tensor buf = x;
  if (inputs) inputs->clear();
  if (masks) masks->resize(trunk_.size());
  std::size_t li = 0;
  for (const auto& layer : trunk_) {
    if (inputs) inputs->push_back(buf);
    nn::Tensor y;
    layer.forward(buf, y, pool_, /*relu=*/true, masks ? &(*masks)[li] : nullptr);
    buf = std::move(y);
    ++li;
  }
  out = std::move(buf);
}

void DuelingQNetwork::combineHeads(const nn::Tensor& v, const nn::Tensor& a, nn::Tensor& q) {
  q.resizeOverwrite(a.rows(), a.cols());  // every element assigned below
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double mean = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) mean += a(r, c);
    mean /= static_cast<double>(a.cols());
    for (std::size_t c = 0; c < a.cols(); ++c) q(r, c) = v(r, 0) + a(r, c) - mean;
  }
}

const nn::Tensor& DuelingQNetwork::forward(const nn::Tensor& states) {
  trunkForward(states, trunkOut_, &trunkInputs_, &trunkMasks_);
  valueHead_->forward(trunkOut_, value_, pool_);
  advHead_->forward(trunkOut_, advantage_, pool_);
  combineHeads(value_, advantage_, q_);
  return q_;
}

void DuelingQNetwork::predict(const nn::Tensor& states, nn::Tensor& q) const {
  nn::Tensor trunkOut, v, a;
  trunkForward(states, trunkOut, nullptr, nullptr);
  valueHead_->forward(trunkOut, v, pool_);
  advHead_->forward(trunkOut, a, pool_);
  combineHeads(v, a, q);
}

void DuelingQNetwork::backward(const nn::Tensor& dq) {
  const std::size_t batch = dq.rows();
  const std::size_t actions = dq.cols();
  // Q_k = V + A_k - mean_j(A_j):
  //   dV   = sum_k dQ_k
  //   dA_k = dQ_k - mean_j(dQ_j)
  nn::Tensor dv(batch, 1);
  nn::Tensor da(batch, actions);
  for (std::size_t r = 0; r < batch; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < actions; ++c) sum += dq(r, c);
    dv(r, 0) = sum;
    const double mean = sum / static_cast<double>(actions);
    for (std::size_t c = 0; c < actions; ++c) da(r, c) = dq(r, c) - mean;
  }

  nn::Tensor dTrunkFromV, dTrunkFromA;
  valueHead_->backward(trunkOut_, dv, &dTrunkFromV, pool_);
  advHead_->backward(trunkOut_, da, &dTrunkFromA, pool_);
  nn::Tensor grad = std::move(dTrunkFromV);
  for (std::size_t i = 0; i < grad.size(); ++i) grad.flat()[i] += dTrunkFromA.flat()[i];

  // Top trunk mask gates the summed head gradients explicitly; every
  // lower mask is fused into the producing layer's dX GEMM.
  nn::reluBackward(grad, trunkMasks_.back());
  for (std::size_t i = trunk_.size(); i-- > 0;) {
    // The bottom trunk layer (i == 0) produces no dX: nothing consumes
    // dL/dState, and at paper dims that GEMM streams the full input
    // weight matrix for nothing.
    nn::Tensor dx;
    trunk_[i].backward(trunkInputs_[i], grad, i > 0 ? &dx : nullptr, pool_,
                       i > 0 ? &trunkMasks_[i - 1] : nullptr);
    grad = std::move(dx);
  }
}

void DuelingQNetwork::zeroGrad() {
  for (auto& layer : trunk_) layer.zeroGrad();
  valueHead_->zeroGrad();
  advHead_->zeroGrad();
}

std::vector<nn::Tensor*> DuelingQNetwork::parameters() {
  std::vector<nn::Tensor*> out;
  for (auto& layer : trunk_) {
    out.push_back(&layer.weights());
    out.push_back(&layer.bias());
  }
  out.push_back(&valueHead_->weights());
  out.push_back(&valueHead_->bias());
  out.push_back(&advHead_->weights());
  out.push_back(&advHead_->bias());
  return out;
}

std::vector<nn::Tensor*> DuelingQNetwork::gradients() {
  std::vector<nn::Tensor*> out;
  for (auto& layer : trunk_) {
    out.push_back(&layer.weightGrad());
    out.push_back(&layer.biasGrad());
  }
  out.push_back(&valueHead_->weightGrad());
  out.push_back(&valueHead_->biasGrad());
  out.push_back(&advHead_->weightGrad());
  out.push_back(&advHead_->biasGrad());
  return out;
}

std::unique_ptr<QNetwork> DuelingQNetwork::clone() const {
  // Rebuild with the same shapes, then overwrite the weights.
  std::vector<std::size_t> hidden;
  for (const auto& layer : trunk_) hidden.push_back(layer.outDim());
  Rng rng(0);
  auto copy = std::make_unique<DuelingQNetwork>(inputDim(), hidden, actionCount(), rng, pool_);
  copy->copyWeightsFrom(*this);
  return copy;
}

void DuelingQNetwork::copyWeightsFrom(const QNetwork& other) {
  const auto* src = dynamic_cast<const DuelingQNetwork*>(&other);
  if (!src) throw std::invalid_argument("DuelingQNetwork::copyWeightsFrom: type mismatch");
  auto dstParams = parameters();
  auto srcParams = const_cast<DuelingQNetwork*>(src)->parameters();
  if (dstParams.size() != srcParams.size()) {
    throw std::invalid_argument("DuelingQNetwork::copyWeightsFrom: layer mismatch");
  }
  for (std::size_t i = 0; i < dstParams.size(); ++i) {
    if (!dstParams[i]->sameShape(*srcParams[i])) {
      throw std::invalid_argument("DuelingQNetwork::copyWeightsFrom: shape mismatch");
    }
    *dstParams[i] = *srcParams[i];
  }
}

}  // namespace dqndock::rl
