#pragma once

/// \file replay_buffer.hpp
/// Experience replay (Lin 1993; Mnih et al. 2015): a fixed-capacity ring
/// of (s, a, r, s', terminal) tuples sampled uniformly in minibatches to
/// decorrelate consecutive docking steps.
///
/// Two implementations share the ExperienceSource interface:
///  * ReplayBuffer — stores raw state vectors (float32), the paper's
///    design; memory scales with stateDim (16,599 reals for 2BSM).
///  * Compact, pose-based storage lives in core/pose_replay.hpp: it
///    stores only the 7+K pose DOFs and re-encodes states at sample time
///    — the "RAM-based" refinement of paper Section 5.

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/tensor.hpp"

namespace dqndock::rl {

/// A sampled minibatch in the layout the DQN update consumes.
struct Minibatch {
  nn::Tensor states;      ///< B x stateDim
  nn::Tensor nextStates;  ///< B x stateDim
  std::vector<int> actions;
  std::vector<double> rewards;
  std::vector<char> terminals;

  std::size_t size() const { return actions.size(); }
};

/// Anything minibatches can be drawn from.
class ExperienceSource {
 public:
  virtual ~ExperienceSource() = default;
  virtual std::size_t size() const = 0;
  virtual Minibatch sample(std::size_t batch, Rng& rng) const = 0;

  /// Sample into a caller-owned minibatch so learn-phase callers can
  /// reuse the (batch x stateDim) tensors across calls instead of
  /// reallocating and zero-filling per minibatch. The default routes
  /// through sample(); implementations that can fill in place (the raw
  /// ReplayBuffer) override it. Draws the same RNG sequence as
  /// sample(), so switching call styles never perturbs a seeded run.
  virtual void sampleInto(Minibatch& mb, std::size_t batch, Rng& rng) const {
    mb = sample(batch, rng);
  }
};

/// Anything transitions can be pushed into (the trainer writes here).
class ExperienceSink {
 public:
  virtual ~ExperienceSink() = default;
  virtual void push(std::span<const double> state, int action, double reward,
                    std::span<const double> nextState, bool terminal) = 0;
};

/// Uniform ring-buffer replay storing raw states as float32.
class ReplayBuffer final : public ExperienceSource, public ExperienceSink {
 public:
  ReplayBuffer(std::size_t capacity, std::size_t stateDim);

  void push(std::span<const double> state, int action, double reward,
            std::span<const double> nextState, bool terminal) override;

  std::size_t size() const override { return count_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t stateDim() const { return stateDim_; }

  Minibatch sample(std::size_t batch, Rng& rng) const override;

  /// In-place fill: reuses mb's tensors/vectors when the batch shape
  /// matches (no allocation, no zero pass).
  void sampleInto(Minibatch& mb, std::size_t batch, Rng& rng) const override;

  /// Approximate resident bytes of the stored experience.
  std::size_t memoryBytes() const;

 private:
  std::size_t capacity_;
  std::size_t stateDim_;
  std::size_t count_ = 0;
  std::size_t head_ = 0;

  // SoA slots: states/nextStates are flattened (capacity x stateDim).
  std::vector<float> states_;
  std::vector<float> nextStates_;
  std::vector<int> actions_;
  std::vector<float> rewards_;
  std::vector<char> terminals_;
};

}  // namespace dqndock::rl
