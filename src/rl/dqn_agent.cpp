#include "src/rl/dqn_agent.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/rl/prioritized_replay.hpp"

namespace dqndock::rl {

const char* dqnVariantName(DqnVariant v) {
  switch (v) {
    case DqnVariant::kVanilla: return "dqn";
    case DqnVariant::kDouble: return "double-dqn";
  }
  return "?";
}

DqnAgent::DqnAgent(std::size_t stateDim, int actionCount, DqnConfig config, Rng& rng,
                   ThreadPool* pool)
    : config_(std::move(config)) {
  if (actionCount <= 0) throw std::invalid_argument("DqnAgent: actionCount must be > 0");
  if (config_.dueling) {
    online_ = std::make_unique<DuelingQNetwork>(stateDim, config_.hiddenSizes, actionCount, rng,
                                                pool);
  } else {
    online_ = std::make_unique<MlpQNetwork>(stateDim, config_.hiddenSizes, actionCount, rng, pool);
  }
  target_ = online_->clone();
  optimizer_ = nn::makeOptimizer(config_.optimizer, config_.learningRate);
}

int DqnAgent::selectAction(std::span<const double> state, double epsilon, Rng& rng) const {
  if (rng.uniform() < epsilon) {
    return static_cast<int>(rng.uniformInt(static_cast<std::uint64_t>(actionCount())));
  }
  return greedyAction(state);
}

bool DqnAgent::enableStaticPrefixFold(std::span<const double> staticPrefix) {
  if (!online_->configureStaticPrefix(staticPrefix)) return false;
  if (!target_->configureStaticPrefix(staticPrefix)) {
    throw std::logic_error("DqnAgent: target net rejected fold the online net accepted");
  }
  return true;
}

std::vector<double> DqnAgent::qValues(std::span<const double> state) const {
  if (state.size() != stateDim() &&
      !(online_->foldActive() && state.size() == online_->dynamicInputDim())) {
    throw std::invalid_argument("DqnAgent: state dim mismatch");
  }
  // Local buffers: inference must be callable concurrently from parallel
  // experience collectors (predict() itself touches no shared caches).
  nn::Tensor in(1, state.size());
  std::copy(state.begin(), state.end(), in.data());
  nn::Tensor out;
  online_->predict(in, out);
  return std::vector<double>(out.data(), out.data() + out.cols());
}

void DqnAgent::qValuesBatch(const nn::Tensor& states, nn::Tensor& q) const {
  if (states.cols() != stateDim() &&
      !(online_->foldActive() && states.cols() == online_->dynamicInputDim())) {
    throw std::invalid_argument("DqnAgent::qValuesBatch: state dim mismatch");
  }
  online_->predict(states, q);
}

int DqnAgent::greedyAction(std::span<const double> state) const {
  const auto q = qValues(state);
  return static_cast<int>(std::max_element(q.begin(), q.end()) - q.begin());
}

double DqnAgent::maxQ(std::span<const double> state) const {
  const auto q = qValues(state);
  return *std::max_element(q.begin(), q.end());
}

int DqnAgent::selectActionSoftmax(std::span<const double> state, double temperature,
                                  Rng& rng) const {
  if (temperature <= 0.0) return greedyAction(state);
  const auto q = qValues(state);
  const double maxQ = *std::max_element(q.begin(), q.end());
  std::vector<double> weights(q.size());
  double total = 0.0;
  for (std::size_t a = 0; a < q.size(); ++a) {
    weights[a] = std::exp((q[a] - maxQ) / temperature);
    total += weights[a];
  }
  double mass = rng.uniform() * total;
  for (std::size_t a = 0; a < q.size(); ++a) {
    mass -= weights[a];
    if (mass <= 0.0) return static_cast<int>(a);
  }
  return static_cast<int>(q.size()) - 1;
}

void DqnAgent::syncTarget() { target_->copyWeightsFrom(*online_); }

namespace {
void polyakUpdate(QNetwork& target, QNetwork& online, double tau) {
  const auto dst = target.parameters();
  const auto src = online.parameters();
  for (std::size_t i = 0; i < dst.size(); ++i) {
    auto d = dst[i]->flat();
    auto s = src[i]->flat();
    for (std::size_t j = 0; j < d.size(); ++j) d[j] = (1.0 - tau) * d[j] + tau * s[j];
  }
}
}  // namespace

double DqnAgent::learn(ExperienceSource& source, Rng& rng) {
  if (source.size() < config_.batchSize) return 0.0;
  auto* prioritized = dynamic_cast<PrioritizedSource*>(&source);
  // Scratch reuse: the minibatch tensors, target-Q buffers and dQ are
  // members filled in place each call — at paper dims the per-call
  // alloc+zero+copy this replaces was ~9 MB of pure overhead.
  source.sampleInto(mbScratch_, config_.batchSize, rng);
  const Minibatch& mb = mbScratch_;
  const std::size_t batch = mb.size();
  // n-step transitions bootstrap with gamma^n.
  const double bootstrapGamma = std::pow(config_.gamma, std::max(1, config_.nStep));

  // Q-learning targets from the frozen network (Algorithm 2):
  //   y = r                        for terminal s'
  //   y = r + gamma * max_a' Qhat  otherwise (vanilla)
  //   y = r + gamma * Qhat(s', argmax_a' Q_online(s', a'))  (double DQN)
  target_->predict(mb.nextStates, nextQTarget_);
  if (config_.variant == DqnVariant::kDouble) {
    online_->predict(mb.nextStates, nextQOnline_);
  }
  targets_.resize(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    double bootstrap = 0.0;
    if (!mb.terminals[b]) {
      if (config_.variant == DqnVariant::kDouble) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < nextQOnline_.cols(); ++c) {
          if (nextQOnline_(b, c) > nextQOnline_(b, best)) best = c;
        }
        bootstrap = nextQTarget_(b, best);
      } else {
        bootstrap = nextQTarget_(b, 0);
        for (std::size_t c = 1; c < nextQTarget_.cols(); ++c) {
          bootstrap = std::max(bootstrap, nextQTarget_(b, c));
        }
      }
    }
    targets_[b] = mb.rewards[b] + bootstrapGamma * bootstrap;
  }

  // Forward online network and build dL/dQ: squared error on the taken
  // action only, averaged over the batch. dq_ needs the zero-fill
  // resize: only the taken-action entries are written.
  const nn::Tensor& q = online_->forward(mb.states);
  dq_.resize(batch, static_cast<std::size_t>(actionCount()));
  double loss = 0.0;
  const double invBatch = 1.0 / static_cast<double>(batch);
  tdErrors_.resize(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto a = static_cast<std::size_t>(mb.actions[b]);
    double err = q(b, a) - targets_[b];
    tdErrors_[b] = err;
    const double weight =
        prioritized ? prioritized->lastImportanceWeights()[b] : 1.0;
    loss += 0.5 * err * err * weight * invBatch;
    if (config_.clipTdError) err = std::clamp(err, -1.0, 1.0);
    dq_(b, a) = err * weight * invBatch;
  }
  if (prioritized) prioritized->updatePriorities(tdErrors_);

  online_->zeroGrad();
  online_->backward(dq_);
  optimizer_->step(online_->parameters(), online_->gradients(), online_->factoredGrad());

  ++learnSteps_;
  if (config_.polyakTau > 0.0) {
    polyakUpdate(*target_, *online_, config_.polyakTau);
  } else if (config_.targetSyncInterval > 0 && learnSteps_ % config_.targetSyncInterval == 0) {
    syncTarget();
  }
  return loss;
}

}  // namespace dqndock::rl
