#pragma once

/// \file env.hpp
/// Abstract reinforcement-learning environment (Figure 2 of the paper):
/// the agent observes a flat real-valued state, takes one of K discrete
/// actions, and receives a reward plus a terminal flag. DQN-Docking's
/// METADOCK wrapper, the file-based wrapper and the toy test environments
/// all implement this.

#include <cstddef>
#include <vector>

namespace dqndock::rl {

struct EnvStep {
  double reward = 0.0;
  bool terminal = false;
};

class Environment {
 public:
  virtual ~Environment() = default;

  virtual std::size_t stateDim() const = 0;
  virtual int actionCount() const = 0;

  /// Start a new episode; fills `state` (resized to stateDim()).
  virtual void reset(std::vector<double>& state) = 0;

  /// Apply `action`; fills `nextState` and returns reward/terminal.
  virtual EnvStep step(int action, std::vector<double>& nextState) = 0;

  /// Optional domain metric for logging (docking: the METADOCK score).
  virtual double score() const { return 0.0; }
};

}  // namespace dqndock::rl
