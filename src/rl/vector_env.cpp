#include "src/rl/vector_env.hpp"

#include <algorithm>
#include <stdexcept>

namespace dqndock::rl {

LockstepVectorEnv::LockstepVectorEnv(std::vector<std::unique_ptr<Environment>> envs)
    : envs_(std::move(envs)) {
  if (envs_.empty()) throw std::invalid_argument("LockstepVectorEnv: need at least one env");
  for (const auto& e : envs_) {
    if (!e) throw std::invalid_argument("LockstepVectorEnv: null env");
    if (e->stateDim() != envs_.front()->stateDim() ||
        e->actionCount() != envs_.front()->actionCount()) {
      throw std::invalid_argument("LockstepVectorEnv: envs must share stateDim/actionCount");
    }
  }
}

std::size_t LockstepVectorEnv::stateDim() const { return envs_.front()->stateDim(); }

int LockstepVectorEnv::actionCount() const { return envs_.front()->actionCount(); }

void LockstepVectorEnv::reset(std::size_t i, std::span<double> state) {
  if (state.size() != stateDim()) {
    throw std::invalid_argument("LockstepVectorEnv::reset: state span size != stateDim()");
  }
  envs_[i]->reset(scratch_);
  std::copy(scratch_.begin(), scratch_.end(), state.begin());
}

void LockstepVectorEnv::step(std::span<const int> actions, nn::Tensor& nextStates,
                             std::span<EnvStep> results) {
  if (actions.size() != envs_.size() || results.size() != envs_.size()) {
    throw std::invalid_argument("LockstepVectorEnv::step: actions/results size != size()");
  }
  if (nextStates.rows() != envs_.size() || nextStates.cols() != stateDim()) {
    throw std::invalid_argument("LockstepVectorEnv::step: nextStates shape mismatch");
  }
  for (std::size_t i = 0; i < envs_.size(); ++i) {
    results[i] = stepOne(i, actions[i], nextStates.row(i));
  }
}

EnvStep LockstepVectorEnv::stepOne(std::size_t i, int action, std::span<double> nextState) {
  if (nextState.size() != stateDim()) {
    throw std::invalid_argument("LockstepVectorEnv::stepOne: state span size != stateDim()");
  }
  const EnvStep result = envs_[i]->step(action, scratch_);
  std::copy(scratch_.begin(), scratch_.end(), nextState.begin());
  return result;
}

}  // namespace dqndock::rl
