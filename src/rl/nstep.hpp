#pragma once

/// \file nstep.hpp
/// n-step return accumulation (Sutton & Barto ch. 7; a Rainbow component
/// the paper cites as future work). Sits between the trainer and any
/// ExperienceSink: buffers the last n transitions and emits
/// (s_t, a_t, sum_{k<n} gamma^k r_{t+k}, s_{t+n}, terminal) tuples. The
/// consuming agent must bootstrap with gamma^n (DqnConfig::nStep).

#include <deque>

#include "src/rl/replay_buffer.hpp"

namespace dqndock::rl {

class NStepSink final : public ExperienceSink {
 public:
  /// Forwards aggregated transitions into `inner`. n >= 1; n == 1 is a
  /// pass-through.
  NStepSink(ExperienceSink& inner, int n, double gamma);

  void push(std::span<const double> state, int action, double reward,
            std::span<const double> nextState, bool terminal) override;

  /// Emit the remaining pending transitions as truncated returns (called
  /// automatically when a terminal transition arrives; call manually if
  /// an episode is abandoned without a terminal flag).
  void flush();

  std::size_t pendingCount() const { return pending_.size(); }
  int n() const { return n_; }

 private:
  struct Pending {
    std::vector<double> state;
    int action;
    double accumulatedReward;
    int stepsAccumulated;
  };

  void emitFront(std::span<const double> bootstrapState, bool terminal);

  ExperienceSink& inner_;
  int n_;
  double gamma_;
  std::deque<Pending> pending_;
  std::vector<double> lastNextState_;
};

}  // namespace dqndock::rl
