#include "src/rl/replay_buffer.hpp"

#include <stdexcept>

namespace dqndock::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity, std::size_t stateDim)
    : capacity_(capacity), stateDim_(stateDim) {
  if (capacity == 0) throw std::invalid_argument("ReplayBuffer: capacity must be > 0");
  if (stateDim == 0) throw std::invalid_argument("ReplayBuffer: stateDim must be > 0");
  states_.resize(capacity * stateDim);
  nextStates_.resize(capacity * stateDim);
  actions_.resize(capacity);
  rewards_.resize(capacity);
  terminals_.resize(capacity);
}

void ReplayBuffer::push(std::span<const double> state, int action, double reward,
                        std::span<const double> nextState, bool terminal) {
  if (state.size() != stateDim_ || nextState.size() != stateDim_) {
    throw std::invalid_argument("ReplayBuffer::push: state dim mismatch");
  }
  float* s = states_.data() + head_ * stateDim_;
  float* s2 = nextStates_.data() + head_ * stateDim_;
  for (std::size_t i = 0; i < stateDim_; ++i) {
    s[i] = static_cast<float>(state[i]);
    s2[i] = static_cast<float>(nextState[i]);
  }
  actions_[head_] = action;
  rewards_[head_] = static_cast<float>(reward);
  terminals_[head_] = terminal ? 1 : 0;
  head_ = (head_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
}

Minibatch ReplayBuffer::sample(std::size_t batch, Rng& rng) const {
  Minibatch mb;
  sampleInto(mb, batch, rng);
  return mb;
}

void ReplayBuffer::sampleInto(Minibatch& mb, std::size_t batch, Rng& rng) const {
  if (count_ == 0) throw std::logic_error("ReplayBuffer::sample: buffer is empty");
  // Overwrite-resize: every row is filled below, and a steady-state
  // learn loop passes the same-shaped minibatch back in, so this is
  // pure reuse — no allocation, no zero sweep over 2 x B x stateDim.
  mb.states.resizeOverwrite(batch, stateDim_);
  mb.nextStates.resizeOverwrite(batch, stateDim_);
  mb.actions.resize(batch);
  mb.rewards.resize(batch);
  mb.terminals.resize(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t idx = rng.uniformInt(count_);
    const float* s = states_.data() + idx * stateDim_;
    const float* s2 = nextStates_.data() + idx * stateDim_;
    double* ms = mb.states.data() + b * stateDim_;
    double* ms2 = mb.nextStates.data() + b * stateDim_;
    for (std::size_t i = 0; i < stateDim_; ++i) {
      ms[i] = s[i];
      ms2[i] = s2[i];
    }
    mb.actions[b] = actions_[idx];
    mb.rewards[b] = rewards_[idx];
    mb.terminals[b] = terminals_[idx];
  }
}

std::size_t ReplayBuffer::memoryBytes() const {
  return states_.size() * sizeof(float) + nextStates_.size() * sizeof(float) +
         actions_.size() * sizeof(int) + rewards_.size() * sizeof(float) + terminals_.size();
}

}  // namespace dqndock::rl
