#include "src/rl/parallel_collector.hpp"

#include <algorithm>
#include <atomic>

#include "src/common/running_stats.hpp"

namespace dqndock::rl {

CollectorStats collectParallel(std::vector<std::unique_ptr<Environment>>& envs, DqnAgent& agent,
                               ExperienceSink& sink, ExperienceSource& source,
                               ParallelCollectorConfig config, ThreadPool* pool) {
  CollectorStats stats;
  if (envs.empty()) return stats;

  LockedSink locked(sink);
  Rng root(config.seed);
  std::vector<Rng> streams;
  streams.reserve(envs.size());
  for (std::size_t i = 0; i < envs.size(); ++i) streams.push_back(root.split());
  Rng learnRng = root.split();

  std::atomic<std::size_t> globalStep{0};
  std::mutex metricsMu;
  double bestScore = -1e300;

  for (std::size_t sweep = 0; sweep < config.episodesPerReplica; ++sweep) {
    // --- Acting phase: one episode per replica, in parallel. ------------
    auto playReplica = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t e = lo; e < hi; ++e) {
        Environment& env = *envs[e];
        Rng& rng = streams[e];
        std::vector<double> state, next;
        env.reset(state);
        EpisodeRecord record;
        record.episode = sweep * envs.size() + e;
        RunningStats maxQ;
        double replicaBest = env.score();
        bool terminal = false;
        while (!terminal) {
          // One Q-forward serves both the Figure-4 maxQ sample and the
          // greedy arm of epsilon-greedy (maxQ() + selectAction() would
          // run the same forward twice). RNG draw order matches
          // selectAction exactly — uniform() always, uniformInt() only
          // when exploring — so collected transitions are bit-identical
          // to the pre-dedup loop.
          const std::vector<double> q = agent.qValues(state);
          maxQ.add(*std::max_element(q.begin(), q.end()));
          const double eps = config.epsilon.value(globalStep.load(std::memory_order_relaxed));
          int action;
          if (rng.uniform() < eps) {
            action = static_cast<int>(
                rng.uniformInt(static_cast<std::uint64_t>(agent.actionCount())));
          } else {
            action = static_cast<int>(std::max_element(q.begin(), q.end()) - q.begin());
          }
          const EnvStep r = env.step(action, next);
          locked.push(state, action, r.reward, next, r.terminal);
          state = next;
          terminal = r.terminal;
          record.totalReward += r.reward;
          ++record.steps;
          record.epsilon = eps;
          replicaBest = std::max(replicaBest, env.score());
          globalStep.fetch_add(1, std::memory_order_relaxed);
        }
        record.avgMaxQ = maxQ.count() ? maxQ.mean() : 0.0;
        record.finalScore = env.score();
        record.bestScore = replicaBest;
        std::lock_guard lock(metricsMu);
        stats.metrics.add(record);
        bestScore = std::max(bestScore, replicaBest);
        ++stats.totalEpisodes;
      }
    };
    if (pool) {
      pool->parallelFor(0, envs.size(), playReplica);
    } else {
      playReplica(0, envs.size());
    }

    // --- Learning phase (synchronous): one gradient step per collected
    // step of this sweep, once warm.
    const std::size_t collected = globalStep.load(std::memory_order_relaxed);
    if (collected >= config.learningStart && config.learnEvery > 0) {
      const std::size_t sweepSteps =
          collected - stats.totalSteps;  // steps added by this sweep
      const std::size_t updates = std::max<std::size_t>(1, sweepSteps / config.learnEvery);
      for (std::size_t u = 0; u < updates; ++u) agent.learn(source, learnRng);
    }
    stats.totalSteps = collected;
  }

  stats.bestScore = bestScore;
  return stats;
}

}  // namespace dqndock::rl
