#pragma once

/// \file qnetwork.hpp
/// Q-value function approximators. MlpQNetwork is the paper's
/// architecture (plain MLP, linear output per action). DuelingQNetwork
/// is the paper's Section 5 future-work variant: a shared trunk feeding
/// separate state-value and advantage heads recombined as
/// Q = V + A - mean(A) (Wang et al. 2016).

#include <memory>
#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/mlp.hpp"
#include "src/nn/optimizer.hpp"

namespace dqndock::rl {

class QNetwork {
 public:
  virtual ~QNetwork() = default;

  virtual std::size_t inputDim() const = 0;
  virtual int actionCount() const = 0;

  /// Training forward: caches activations; the returned reference stays
  /// valid until the next forward call.
  virtual const nn::Tensor& forward(const nn::Tensor& states) = 0;

  /// Inference forward, no caches touched.
  virtual void predict(const nn::Tensor& states, nn::Tensor& q) const = 0;

  /// Backprop dLoss/dQ through the cached forward pass, accumulating
  /// parameter gradients.
  virtual void backward(const nn::Tensor& dq) = 0;

  virtual void zeroGrad() = 0;
  virtual std::vector<nn::Tensor*> parameters() = 0;
  virtual std::vector<nn::Tensor*> gradients() = 0;

  /// Deep copy with identical weights (target-network construction).
  virtual std::unique_ptr<QNetwork> clone() const = 0;
  virtual void copyWeightsFrom(const QNetwork& other) = 0;

  // --- Static-prefix folding (nn::Mlp::configureStaticPrefix) ----------
  // Base defaults: no fold support. Architectures that can fold their
  // input layer override; callers must handle a false return (e.g.
  // DuelingQNetwork stays unfolded and the agent keeps full-width states).

  /// Try to fold the given constant input prefix. Returns false when the
  /// architecture doesn't support folding or the prefix is degenerate.
  virtual bool configureStaticPrefix(std::span<const double> /*staticPrefix*/) { return false; }
  virtual bool foldActive() const { return false; }
  /// Width of the inputs forward()/predict() require when folded
  /// (== inputDim() otherwise; folded nets also still accept full width).
  virtual std::size_t dynamicInputDim() const { return inputDim(); }
  /// Rank-1 factored gradient descriptor for Optimizer::step, or nullptr
  /// when not folding. Valid until the next mutation of this network.
  virtual const nn::FactoredPrefixGrad* factoredGrad() const { return nullptr; }

  std::size_t parameterCountTotal() const;
};

/// Paper architecture: input -> hidden ReLU layers -> linear Q per action.
class MlpQNetwork final : public QNetwork {
 public:
  MlpQNetwork(std::size_t inputDim, const std::vector<std::size_t>& hidden, int actions, Rng& rng,
              ThreadPool* pool = nullptr);
  explicit MlpQNetwork(nn::Mlp net);

  std::size_t inputDim() const override { return net_.inputDim(); }
  int actionCount() const override { return static_cast<int>(net_.outputDim()); }

  const nn::Tensor& forward(const nn::Tensor& states) override { return net_.forward(states); }
  void predict(const nn::Tensor& states, nn::Tensor& q) const override {
    net_.predict(states, q);
  }
  void backward(const nn::Tensor& dq) override { net_.backward(dq); }
  void zeroGrad() override { net_.zeroGrad(); }
  std::vector<nn::Tensor*> parameters() override { return net_.parameters(); }
  std::vector<nn::Tensor*> gradients() override { return net_.gradients(); }
  std::unique_ptr<QNetwork> clone() const override;
  void copyWeightsFrom(const QNetwork& other) override;

  bool configureStaticPrefix(std::span<const double> staticPrefix) override {
    return net_.configureStaticPrefix(staticPrefix);
  }
  bool foldActive() const override { return net_.foldActive(); }
  std::size_t dynamicInputDim() const override { return net_.dynamicInputDim(); }
  const nn::FactoredPrefixGrad* factoredGrad() const override;

  nn::Mlp& net() { return net_; }
  const nn::Mlp& net() const { return net_; }

 private:
  nn::Mlp net_;
  // Refreshed by factoredGrad() so the spans/pointers always track the
  // current net_ (clone/copy would otherwise leave them dangling).
  mutable nn::FactoredPrefixGrad factoredGrad_;
};

/// Dueling head: shared ReLU trunk, then V (1 unit) and A (K units)
/// linear heads, Q_k = V + A_k - mean_j A_j.
class DuelingQNetwork final : public QNetwork {
 public:
  DuelingQNetwork(std::size_t inputDim, const std::vector<std::size_t>& hidden, int actions,
                  Rng& rng, ThreadPool* pool = nullptr);

  std::size_t inputDim() const override { return trunk_.front().inDim(); }
  int actionCount() const override { return static_cast<int>(advHead_->outDim()); }

  const nn::Tensor& forward(const nn::Tensor& states) override;
  void predict(const nn::Tensor& states, nn::Tensor& q) const override;
  void backward(const nn::Tensor& dq) override;
  void zeroGrad() override;
  std::vector<nn::Tensor*> parameters() override;
  std::vector<nn::Tensor*> gradients() override;
  std::unique_ptr<QNetwork> clone() const override;
  void copyWeightsFrom(const QNetwork& other) override;

 private:
  void trunkForward(const nn::Tensor& x, nn::Tensor& out, std::vector<nn::Tensor>* inputs,
                    std::vector<nn::Tensor>* masks) const;
  static void combineHeads(const nn::Tensor& v, const nn::Tensor& a, nn::Tensor& q);

  std::vector<nn::DenseLayer> trunk_;  ///< every trunk layer is ReLU-activated
  std::unique_ptr<nn::DenseLayer> valueHead_;
  std::unique_ptr<nn::DenseLayer> advHead_;
  ThreadPool* pool_ = nullptr;

  // Forward caches.
  std::vector<nn::Tensor> trunkInputs_;
  std::vector<nn::Tensor> trunkMasks_;
  nn::Tensor trunkOut_;
  nn::Tensor value_, advantage_, q_;
};

}  // namespace dqndock::rl
