#include "src/rl/trainer.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/common/logging.hpp"
#include "src/common/running_stats.hpp"

namespace dqndock::rl {

Rng trainerEnvStream(std::uint64_t seed, std::uint64_t envIndex) {
  // Per-index derivation (not sequential split()), the same idiom as
  // metadock::ligandScreenStream: the stream is a pure function of
  // (seed, env index), never of V or scheduling.
  return Rng(seed ^ (0x9e3779b97f4a7c15ULL * (envIndex + 1)));
}

Trainer::Trainer(Environment& env, DqnAgent& agent, ExperienceSink& sink,
                 ExperienceSource& source, TrainerConfig config)
    : env_(&env), agent_(agent), sink_(sink), source_(source), config_(config),
      rng_(config.seed) {}

Trainer::Trainer(VectorEnv& envs, DqnAgent& agent, ExperienceSink& sink,
                 ExperienceSource& source, TrainerConfig config)
    : venv_(&envs), agent_(agent), sink_(sink), source_(source), config_(config),
      rng_(config.seed) {
  if (envs.size() > 1) {
    envRngs_.reserve(envs.size());
    for (std::size_t i = 0; i < envs.size(); ++i) {
      envRngs_.push_back(trainerEnvStream(config_.seed, i));
    }
  }
}

Rng& Trainer::actionRng(std::size_t i) { return envRngs_.empty() ? rng_ : envRngs_[i]; }

namespace {
/// Presents one env of a VectorEnv as a scalar Environment so
/// playEpisode can drive it (greedy evaluation plays env 0 outside the
/// lockstep batch).
class VectorEnvSlice final : public Environment {
 public:
  VectorEnvSlice(VectorEnv& envs, std::size_t index) : envs_(envs), index_(index) {}

  std::size_t stateDim() const override { return envs_.stateDim(); }
  int actionCount() const override { return envs_.actionCount(); }

  void reset(std::vector<double>& state) override {
    state.resize(envs_.stateDim());
    envs_.reset(index_, state);
  }

  EnvStep step(int action, std::vector<double>& nextState) override {
    nextState.resize(envs_.stateDim());
    return envs_.stepOne(index_, action, nextState);
  }

  double score() const override { return envs_.score(index_); }

 private:
  VectorEnv& envs_;
  std::size_t index_;
};
}  // namespace

EpisodeRecord Trainer::playEpisode(bool exploring, bool learning) {
  std::vector<double> state;
  std::vector<double> nextState;
  env_->reset(state);

  EpisodeRecord record;
  record.episode = episodeIndex_;
  record.finalScore = env_->score();
  record.bestScore = env_->score();
  RunningStats maxQ;

  bool terminal = false;
  while (!terminal) {
    const double epsilon = exploring ? config_.epsilon.value(globalStep_) : 0.0;
    record.epsilon = epsilon;

    // Figure 4 metric: the maximum predicted Q for the current state.
    maxQ.add(agent_.maxQ(state));

    const int action = agent_.selectAction(state, epsilon, rng_);
    const EnvStep result = env_->step(action, nextState);
    record.totalReward += result.reward;
    terminal = result.terminal;

    if (learning) {
      sink_.push(state, action, result.reward, nextState, terminal);
    }

    state = nextState;
    ++record.steps;
    if (learning) {
      ++globalStep_;
      if (globalStep_ >= config_.learningStart && config_.learnEvery > 0 &&
          globalStep_ % config_.learnEvery == 0) {
        agent_.learn(source_, rng_);
      }
    }

    const double score = env_->score();
    record.finalScore = score;
    record.bestScore = std::max(record.bestScore, score);
  }

  record.avgMaxQ = maxQ.count() ? maxQ.mean() : 0.0;
  return record;
}

EpisodeRecord Trainer::runEpisode() {
  if (venv_) {
    throw std::logic_error(
        "Trainer::runEpisode: not available in vectorized mode (lockstep envs have no "
        "single-episode granularity); use run()");
  }
  EpisodeRecord record = playEpisode(/*exploring=*/true, /*learning=*/true);
  record.episode = episodeIndex_++;
  metrics_.add(record);
  if (episodeCallback_) episodeCallback_(record);
  logEpisode(record);
  return record;
}

void Trainer::logEpisode(const EpisodeRecord& record) const {
  if (config_.logEveryEpisodes > 0 && record.episode % config_.logEveryEpisodes == 0) {
    logInfo() << "episode " << record.episode << ": steps=" << record.steps
              << " avgMaxQ=" << record.avgMaxQ << " reward=" << record.totalReward
              << " score=" << record.finalScore << " eps=" << record.epsilon;
  }
}

EpisodeRecord Trainer::evaluateGreedy() {
  if (venv_) {
    VectorEnvSlice slice(*venv_, 0);
    Environment* saved = env_;
    env_ = &slice;
    const EpisodeRecord record = playEpisode(/*exploring=*/false, /*learning=*/false);
    env_ = saved;
    return record;
  }
  return playEpisode(/*exploring=*/false, /*learning=*/false);
}

const MetricsLog& Trainer::run() {
  if (venv_) return runVectorized();
  for (std::size_t e = 0; e < config_.episodes; ++e) runEpisode();
  return metrics_;
}

const MetricsLog& Trainer::runVectorized() {
  const std::size_t v = venv_->size();
  const std::size_t dim = venv_->stateDim();
  const auto actionCount = static_cast<std::uint64_t>(venv_->actionCount());
  // run() adds config.episodes more episodes each call, like the
  // sequential schedule does.
  const std::size_t targetEpisodes = metrics_.size() + config_.episodes;

  nn::Tensor states(v, dim);
  nn::Tensor nextStates(v, dim);
  nn::Tensor q;
  std::vector<int> actions(v);
  std::vector<EnvStep> results(v);
  std::vector<EpisodeRecord> records(v);
  std::vector<RunningStats> maxQ(v);

  const auto beginEpisode = [&](std::size_t i) {
    venv_->reset(i, states.row(i));
    records[i] = EpisodeRecord{};
    records[i].finalScore = venv_->score(i);
    records[i].bestScore = records[i].finalScore;
    maxQ[i] = RunningStats{};
  };
  for (std::size_t i = 0; i < v; ++i) beginEpisode(i);

  while (metrics_.size() < targetEpisodes) {
    // One batched Q-forward for all V current states. predict() tiles
    // any row count through the same gemmABt path, bit-identical per
    // row to the scalar qValues() call.
    agent_.qValuesBatch(states, q);

    for (std::size_t i = 0; i < v; ++i) {
      // Transition-counted epsilon: env i is about to commit transition
      // number globalStep_ + i, exactly the step index the sequential
      // schedule would use for it.
      const double epsilon = config_.epsilon.value(globalStep_ + i);
      records[i].epsilon = epsilon;
      const auto row = q.row(i);
      const auto best = std::max_element(row.begin(), row.end());
      maxQ[i].add(*best);
      Rng& rng = actionRng(i);
      // Same draw order as DqnAgent::selectAction: one uniform() always,
      // one uniformInt() only when exploring.
      if (rng.uniform() < epsilon) {
        actions[i] = static_cast<int>(rng.uniformInt(actionCount));
      } else {
        actions[i] = static_cast<int>(best - row.begin());
      }
    }

    // Lockstep env step: the docking VectorEnv scores all V candidate
    // poses in one batched receptor sweep.
    venv_->step(actions, nextStates, results);

    // Commit the V transitions in env-index order; replay pushes, the
    // learn cadence, and target syncs all advance per transition.
    for (std::size_t i = 0; i < v; ++i) {
      records[i].totalReward += results[i].reward;
      sink_.push(states.row(i), actions[i], results[i].reward, nextStates.row(i),
                 results[i].terminal);
      const auto next = nextStates.row(i);
      std::copy(next.begin(), next.end(), states.row(i).begin());
      ++records[i].steps;
      ++globalStep_;
      if (globalStep_ >= config_.learningStart && config_.learnEvery > 0 &&
          globalStep_ % config_.learnEvery == 0) {
        agent_.learn(source_, rng_);
      }

      const double score = venv_->score(i);
      records[i].finalScore = score;
      records[i].bestScore = std::max(records[i].bestScore, score);

      if (results[i].terminal && metrics_.size() < targetEpisodes) {
        records[i].avgMaxQ = maxQ[i].count() ? maxQ[i].mean() : 0.0;
        records[i].episode = episodeIndex_++;
        metrics_.add(records[i]);
        if (episodeCallback_) episodeCallback_(records[i]);
        logEpisode(records[i]);
        // Start the next episode in this slot unless the quota is now
        // filled (the remaining envs of this lockstep pass still commit
        // their transitions above; the loop then exits).
        if (metrics_.size() < targetEpisodes) beginEpisode(i);
      }
    }
  }
  return metrics_;
}

}  // namespace dqndock::rl
