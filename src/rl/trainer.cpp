#include "src/rl/trainer.hpp"

#include <algorithm>

#include "src/common/logging.hpp"
#include "src/common/running_stats.hpp"

namespace dqndock::rl {

Trainer::Trainer(Environment& env, DqnAgent& agent, ExperienceSink& sink,
                 ExperienceSource& source, TrainerConfig config)
    : env_(env), agent_(agent), sink_(sink), source_(source), config_(config), rng_(config.seed) {}

EpisodeRecord Trainer::playEpisode(bool exploring, bool learning) {
  std::vector<double> state;
  std::vector<double> nextState;
  env_.reset(state);

  EpisodeRecord record;
  record.episode = episodeIndex_;
  record.finalScore = env_.score();
  record.bestScore = env_.score();
  RunningStats maxQ;

  bool terminal = false;
  while (!terminal) {
    const double epsilon = exploring ? config_.epsilon.value(globalStep_) : 0.0;
    record.epsilon = epsilon;

    // Figure 4 metric: the maximum predicted Q for the current state.
    maxQ.add(agent_.maxQ(state));

    const int action = agent_.selectAction(state, epsilon, rng_);
    const EnvStep result = env_.step(action, nextState);
    record.totalReward += result.reward;
    terminal = result.terminal;

    if (learning) {
      sink_.push(state, action, result.reward, nextState, terminal);
    }

    state = nextState;
    ++record.steps;
    if (learning) {
      ++globalStep_;
      if (globalStep_ >= config_.learningStart && config_.learnEvery > 0 &&
          globalStep_ % config_.learnEvery == 0) {
        agent_.learn(source_, rng_);
      }
    }

    const double score = env_.score();
    record.finalScore = score;
    record.bestScore = std::max(record.bestScore, score);
  }

  record.avgMaxQ = maxQ.count() ? maxQ.mean() : 0.0;
  return record;
}

EpisodeRecord Trainer::runEpisode() {
  EpisodeRecord record = playEpisode(/*exploring=*/true, /*learning=*/true);
  record.episode = episodeIndex_++;
  metrics_.add(record);
  if (episodeCallback_) episodeCallback_(record);
  if (config_.logEveryEpisodes > 0 && record.episode % config_.logEveryEpisodes == 0) {
    logInfo() << "episode " << record.episode << ": steps=" << record.steps
              << " avgMaxQ=" << record.avgMaxQ << " reward=" << record.totalReward
              << " score=" << record.finalScore << " eps=" << record.epsilon;
  }
  return record;
}

EpisodeRecord Trainer::evaluateGreedy() {
  return playEpisode(/*exploring=*/false, /*learning=*/false);
}

const MetricsLog& Trainer::run() {
  for (std::size_t e = 0; e < config_.episodes; ++e) runEpisode();
  return metrics_;
}

}  // namespace dqndock::rl
