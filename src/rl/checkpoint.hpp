#pragma once

/// \file checkpoint.hpp
/// Weight checkpointing for any QNetwork (MLP or dueling): a flat,
/// shape-checked parameter blob. Enables the paper's stated pay-off —
/// "reducing the computational cost once the NN is already trained" —
/// by training once and reloading the policy for cheap greedy docking
/// (see examples/evaluate_policy.cpp).

#include <iosfwd>
#include <string>

#include "src/rl/dqn_agent.hpp"

namespace dqndock::rl {

/// Serialize every parameter tensor of `net` (order and shapes as
/// returned by parameters()).
void saveWeights(std::ostream& out, QNetwork& net);
void saveWeightsFile(const std::string& path, QNetwork& net);

/// Restore into an identically-architected network. Throws
/// std::runtime_error on magic/shape mismatch or truncation.
void loadWeights(std::istream& in, QNetwork& net);
void loadWeightsFile(const std::string& path, QNetwork& net);

/// Agent-level convenience: saves the online network; load restores the
/// online network and re-syncs the target.
void saveAgent(const std::string& path, DqnAgent& agent);
void loadAgent(const std::string& path, DqnAgent& agent);

}  // namespace dqndock::rl
