#include "src/rl/prioritized_replay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dqndock::rl {

PrioritizedReplayBuffer::PrioritizedReplayBuffer(std::size_t capacity, std::size_t stateDim,
                                                 PrioritizedReplayConfig config)
    : capacity_(capacity),
      stateDim_(stateDim),
      config_(config),
      beta_(config.beta),
      tree_(capacity) {
  if (capacity == 0) throw std::invalid_argument("PrioritizedReplayBuffer: capacity must be > 0");
  if (stateDim == 0) throw std::invalid_argument("PrioritizedReplayBuffer: stateDim must be > 0");
  states_.resize(capacity * stateDim);
  nextStates_.resize(capacity * stateDim);
  actions_.resize(capacity);
  rewards_.resize(capacity);
  terminals_.resize(capacity);
}

void PrioritizedReplayBuffer::push(std::span<const double> state, int action, double reward,
                                   std::span<const double> nextState, bool terminal) {
  if (state.size() != stateDim_ || nextState.size() != stateDim_) {
    throw std::invalid_argument("PrioritizedReplayBuffer::push: state dim mismatch");
  }
  float* s = states_.data() + head_ * stateDim_;
  float* s2 = nextStates_.data() + head_ * stateDim_;
  for (std::size_t i = 0; i < stateDim_; ++i) {
    s[i] = static_cast<float>(state[i]);
    s2[i] = static_cast<float>(nextState[i]);
  }
  actions_[head_] = action;
  rewards_[head_] = static_cast<float>(reward);
  terminals_[head_] = terminal ? 1 : 0;
  tree_.update(head_, std::pow(maxSeenPriority_, config_.alpha));
  head_ = (head_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
}

Minibatch PrioritizedReplayBuffer::sample(std::size_t batch, Rng& rng) const {
  if (count_ == 0) throw std::logic_error("PrioritizedReplayBuffer::sample: buffer is empty");
  Minibatch mb;
  mb.states.resize(batch, stateDim_);
  mb.nextStates.resize(batch, stateDim_);
  mb.actions.resize(batch);
  mb.rewards.resize(batch);
  mb.terminals.resize(batch);

  lastIndices_.assign(batch, 0);
  lastWeights_.assign(batch, 1.0);
  const double total = tree_.total();
  const double segment = total / static_cast<double>(batch);

  double maxWeight = 1e-12;
  for (std::size_t b = 0; b < batch; ++b) {
    // Stratified sampling: one draw per equal-mass segment.
    const double mass = segment * (static_cast<double>(b) + rng.uniform());
    const std::size_t idx = std::min(tree_.find(mass), count_ - 1);
    lastIndices_[b] = idx;

    const double p = tree_.priority(idx) / total;
    const double w = std::pow(static_cast<double>(count_) * std::max(p, 1e-12), -beta_);
    lastWeights_[b] = w;
    maxWeight = std::max(maxWeight, w);

    const float* s = states_.data() + idx * stateDim_;
    const float* s2 = nextStates_.data() + idx * stateDim_;
    double* ms = mb.states.data() + b * stateDim_;
    double* ms2 = mb.nextStates.data() + b * stateDim_;
    for (std::size_t i = 0; i < stateDim_; ++i) {
      ms[i] = s[i];
      ms2[i] = s2[i];
    }
    mb.actions[b] = actions_[idx];
    mb.rewards[b] = rewards_[idx];
    mb.terminals[b] = terminals_[idx];
  }
  // Normalise weights by the max (standard PER stabilisation).
  for (double& w : lastWeights_) w /= maxWeight;
  beta_ = std::min(1.0, beta_ + config_.betaIncrement);
  return mb;
}

void PrioritizedReplayBuffer::updatePriorities(std::span<const double> tdErrors) {
  if (tdErrors.size() != lastIndices_.size()) {
    throw std::invalid_argument(
        "PrioritizedReplayBuffer::updatePriorities: size mismatch with last minibatch");
  }
  for (std::size_t b = 0; b < tdErrors.size(); ++b) {
    const double magnitude =
        std::min(std::fabs(tdErrors[b]), config_.maxPriority) + config_.epsilon;
    maxSeenPriority_ = std::max(maxSeenPriority_, magnitude);
    tree_.update(lastIndices_[b], std::pow(magnitude, config_.alpha));
  }
}

}  // namespace dqndock::rl
