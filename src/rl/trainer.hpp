#pragma once

/// \file trainer.hpp
/// Episode loop of Algorithm 2 (DQN-Docking): for each episode, reset the
/// environment, act epsilon-greedily, store transitions in replay, and
/// take one gradient step per environment step once `learningStart` steps
/// have elapsed. Produces the MetricsLog that Figure 4 is drawn from.

#include <functional>

#include "src/common/rng.hpp"
#include "src/rl/dqn_agent.hpp"
#include "src/rl/env.hpp"
#include "src/rl/metrics.hpp"
#include "src/rl/replay_buffer.hpp"
#include "src/rl/schedule.hpp"

namespace dqndock::rl {

struct TrainerConfig {
  std::size_t episodes = 1800;        ///< M (Table 1)
  std::size_t learningStart = 10000;  ///< steps before SGD begins (Table 1)
  std::size_t learnEvery = 1;         ///< gradient step per this many env steps
  EpsilonSchedule epsilon{};          ///< includes the 20k pure-exploration steps
  std::uint64_t seed = 42;
  std::size_t logEveryEpisodes = 0;   ///< progress log cadence; 0 = silent
};

class Trainer {
 public:
  /// `replay` is used both as sink (push) and source (sample); pass the
  /// same object twice when using a plain ReplayBuffer.
  Trainer(Environment& env, DqnAgent& agent, ExperienceSink& sink, ExperienceSource& source,
          TrainerConfig config);

  /// Run config.episodes episodes; returns the accumulated metrics.
  const MetricsLog& run();

  /// Run a single episode and append its record to the metrics.
  EpisodeRecord runEpisode();

  /// Evaluate the greedy policy (no exploration, no learning) for one
  /// episode; returns its record without touching the training metrics.
  EpisodeRecord evaluateGreedy();

  std::size_t globalStep() const { return globalStep_; }
  const MetricsLog& metrics() const { return metrics_; }

  /// Optional callback invoked after every episode (progress reporting).
  void setEpisodeCallback(std::function<void(const EpisodeRecord&)> cb) {
    episodeCallback_ = std::move(cb);
  }

 private:
  EpisodeRecord playEpisode(bool exploring, bool learning);

  Environment& env_;
  DqnAgent& agent_;
  ExperienceSink& sink_;
  ExperienceSource& source_;
  TrainerConfig config_;
  Rng rng_;
  MetricsLog metrics_;
  std::size_t globalStep_ = 0;
  std::size_t episodeIndex_ = 0;
  std::function<void(const EpisodeRecord&)> episodeCallback_;
};

}  // namespace dqndock::rl
