#pragma once

/// \file trainer.hpp
/// Episode loop of Algorithm 2 (DQN-Docking): for each episode, reset the
/// environment, act epsilon-greedily, store transitions in replay, and
/// take one gradient step per environment step once `learningStart` steps
/// have elapsed. Produces the MetricsLog that Figure 4 is drawn from.
///
/// Two schedules share one Trainer:
///  * sequential — one Environment, one episode at a time (the paper's
///    loop, and the bit-identity reference);
///  * vectorized — a VectorEnv of V lockstep envs. Each lockstep step
///    runs ONE batched Q-forward over all V states (gemmABt register
///    tiles), selects V epsilon-greedy actions, steps all envs (the
///    docking VectorEnv scores all candidate poses in one batched
///    receptor sweep), then commits V transitions in env-index order.
///    Epsilon and the replay/target-sync cadences are counted in
///    *transitions* (globalStep_), not lockstep iterations, so learning
///    dynamics match the sequential baseline and V=1 reproduces it
///    bit-for-bit (single shared RNG stream, scalar scoring path, and
///    per-row-identical batched predict).

#include <functional>

#include "src/common/rng.hpp"
#include "src/rl/dqn_agent.hpp"
#include "src/rl/env.hpp"
#include "src/rl/metrics.hpp"
#include "src/rl/replay_buffer.hpp"
#include "src/rl/schedule.hpp"
#include "src/rl/vector_env.hpp"

namespace dqndock::rl {

struct TrainerConfig {
  std::size_t episodes = 1800;        ///< M (Table 1)
  std::size_t learningStart = 10000;  ///< steps before SGD begins (Table 1)
  std::size_t learnEvery = 1;         ///< gradient step per this many env steps
  EpsilonSchedule epsilon{};          ///< includes the 20k pure-exploration steps
  std::uint64_t seed = 42;
  std::size_t logEveryEpisodes = 0;   ///< progress log cadence; 0 = silent
};

/// Exploration stream for one env of the vectorized schedule, derived
/// from (seed, env index) only — the ligandScreenStream idiom — so a
/// V-env run is reproducible regardless of thread count or scheduling.
/// Only used when V > 1: a single-env run keeps the sequential trainer's
/// one shared stream so it stays bit-identical to the baseline.
Rng trainerEnvStream(std::uint64_t seed, std::uint64_t envIndex);

class Trainer {
 public:
  /// `replay` is used both as sink (push) and source (sample); pass the
  /// same object twice when using a plain ReplayBuffer.
  Trainer(Environment& env, DqnAgent& agent, ExperienceSink& sink, ExperienceSource& source,
          TrainerConfig config);

  /// Vectorized schedule over envs.size() lockstep envs. Episode records
  /// enter the metrics in completion order; run() stops once
  /// config.episodes episodes have completed (transitions from the other
  /// envs' unfinished episodes still train the agent).
  Trainer(VectorEnv& envs, DqnAgent& agent, ExperienceSink& sink, ExperienceSource& source,
          TrainerConfig config);

  /// Run config.episodes episodes; returns the accumulated metrics.
  const MetricsLog& run();

  /// Run a single episode and append its record to the metrics.
  /// Sequential schedule only (throws in vectorized mode — lockstep envs
  /// have no single-episode granularity; use run()).
  EpisodeRecord runEpisode();

  /// Evaluate the greedy policy (no exploration, no learning) for one
  /// episode; returns its record without touching the training metrics.
  /// In vectorized mode this plays env 0 on its own, outside the batch.
  EpisodeRecord evaluateGreedy();

  bool vectorized() const { return venv_ != nullptr; }

  std::size_t globalStep() const { return globalStep_; }
  const MetricsLog& metrics() const { return metrics_; }

  /// Optional callback invoked after every episode (progress reporting).
  void setEpisodeCallback(std::function<void(const EpisodeRecord&)> cb) {
    episodeCallback_ = std::move(cb);
  }

 private:
  EpisodeRecord playEpisode(bool exploring, bool learning);
  const MetricsLog& runVectorized();
  /// Stream for env i's action selection. V=1 reuses the sequential
  /// trainer's single stream (also used by learn()) for bit-identity;
  /// V>1 keys one independent stream per env.
  Rng& actionRng(std::size_t i);
  void logEpisode(const EpisodeRecord& record) const;

  Environment* env_ = nullptr;
  VectorEnv* venv_ = nullptr;
  DqnAgent& agent_;
  ExperienceSink& sink_;
  ExperienceSource& source_;
  TrainerConfig config_;
  Rng rng_;
  std::vector<Rng> envRngs_;  ///< per-env streams, only populated for V > 1
  MetricsLog metrics_;
  std::size_t globalStep_ = 0;
  std::size_t episodeIndex_ = 0;
  std::function<void(const EpisodeRecord&)> episodeCallback_;
};

}  // namespace dqndock::rl
