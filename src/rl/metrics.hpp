#pragma once

/// \file metrics.hpp
/// Per-episode training metrics. The headline series is the average
/// maximum predicted Q-value per episode — exactly what the paper's
/// Figure 4 plots to judge training quality.

#include <string>
#include <vector>

namespace dqndock::rl {

struct EpisodeRecord {
  std::size_t episode = 0;
  std::size_t steps = 0;
  double totalReward = 0.0;
  double avgMaxQ = 0.0;      ///< mean over steps of max_a Q(s_t, a)  (Figure 4)
  double finalScore = 0.0;   ///< env score at episode end
  double bestScore = 0.0;    ///< best env score seen during the episode
  double epsilon = 0.0;      ///< epsilon at the episode's last step
  int terminationCode = 0;   ///< env-specific reason
};

class MetricsLog {
 public:
  void add(const EpisodeRecord& r) { records_.push_back(r); }
  const std::vector<EpisodeRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }

  /// Moving average of avgMaxQ with the given window (Figure 4 smoothing).
  std::vector<double> smoothedAvgMaxQ(std::size_t window) const;

  /// Mean avgMaxQ over episode index range [from, to).
  double meanAvgMaxQ(std::size_t from, std::size_t to) const;

  /// Best score across all recorded episodes.
  double bestScoreOverall() const;

  /// Dump all records to CSV.
  void writeCsv(const std::string& path) const;

 private:
  std::vector<EpisodeRecord> records_;
};

}  // namespace dqndock::rl
