#include "src/rl/c51_agent.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dqndock::rl {

namespace {
std::vector<std::size_t> netDims(std::size_t stateDim, const std::vector<std::size_t>& hidden,
                                 int actions, int atoms) {
  std::vector<std::size_t> dims;
  dims.push_back(stateDim);
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  dims.push_back(static_cast<std::size_t>(actions) * static_cast<std::size_t>(atoms));
  return dims;
}

nn::Mlp makeNet(std::size_t stateDim, const C51Config& cfg, int actions, Rng& rng,
                ThreadPool* pool) {
  return nn::Mlp(netDims(stateDim, cfg.hiddenSizes, actions, cfg.atoms), rng, pool);
}
}  // namespace

C51Agent::C51Agent(std::size_t stateDim, int actionCount, C51Config config, Rng& rng,
                   ThreadPool* pool)
    : stateDim_(stateDim),
      actions_(actionCount),
      config_(std::move(config)),
      online_(makeNet(stateDim, config_, actionCount, rng, pool)),
      target_(makeNet(stateDim, config_, actionCount, rng, pool)) {
  if (actionCount <= 0) throw std::invalid_argument("C51Agent: actionCount must be > 0");
  if (config_.atoms < 2) throw std::invalid_argument("C51Agent: need at least 2 atoms");
  if (config_.vMax <= config_.vMin) throw std::invalid_argument("C51Agent: vMax must be > vMin");
  deltaZ_ = (config_.vMax - config_.vMin) / (config_.atoms - 1);
  support_.resize(static_cast<std::size_t>(config_.atoms));
  for (int i = 0; i < config_.atoms; ++i) support_[static_cast<std::size_t>(i)] = config_.vMin + i * deltaZ_;
  target_.copyWeightsFrom(online_);
  optimizer_ = nn::makeOptimizer(config_.optimizer, config_.learningRate);
}

void C51Agent::softmaxBlocks(const nn::Tensor& logits, nn::Tensor& probs) const {
  const std::size_t atoms = static_cast<std::size_t>(config_.atoms);
  probs.resizeOverwrite(logits.rows(), logits.cols());  // every element written
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    for (int a = 0; a < actions_; ++a) {
      const std::size_t base = static_cast<std::size_t>(a) * atoms;
      double maxLogit = logits(r, base);
      for (std::size_t i = 1; i < atoms; ++i) {
        maxLogit = std::max(maxLogit, logits(r, base + i));
      }
      double sum = 0.0;
      for (std::size_t i = 0; i < atoms; ++i) {
        const double e = std::exp(logits(r, base + i) - maxLogit);
        probs(r, base + i) = e;
        sum += e;
      }
      for (std::size_t i = 0; i < atoms; ++i) probs(r, base + i) /= sum;
    }
  }
}

bool C51Agent::enableStaticPrefixFold(std::span<const double> staticPrefix) {
  if (!online_.configureStaticPrefix(staticPrefix)) return false;
  if (!target_.configureStaticPrefix(staticPrefix)) {
    throw std::logic_error("C51Agent: target net rejected fold the online net accepted");
  }
  return true;
}

std::vector<double> C51Agent::expectedQ(std::span<const double> state) const {
  if (state.size() != stateDim_ &&
      !(online_.foldActive() && state.size() == online_.dynamicInputDim())) {
    throw std::invalid_argument("C51Agent: state dim mismatch");
  }
  scratchState_.resize(1, state.size());
  std::copy(state.begin(), state.end(), scratchState_.data());
  online_.predict(scratchState_, scratchLogits_);
  softmaxBlocks(scratchLogits_, scratchProbs_);
  const std::size_t atoms = static_cast<std::size_t>(config_.atoms);
  std::vector<double> q(static_cast<std::size_t>(actions_), 0.0);
  for (int a = 0; a < actions_; ++a) {
    for (std::size_t i = 0; i < atoms; ++i) {
      q[static_cast<std::size_t>(a)] +=
          scratchProbs_(0, static_cast<std::size_t>(a) * atoms + i) * support_[i];
    }
  }
  return q;
}

std::vector<double> C51Agent::distribution(std::span<const double> state, int action) const {
  if (action < 0 || action >= actions_) throw std::out_of_range("C51Agent: bad action");
  if (state.size() != stateDim_ &&
      !(online_.foldActive() && state.size() == online_.dynamicInputDim())) {
    throw std::invalid_argument("C51Agent: state dim mismatch");
  }
  scratchState_.resize(1, state.size());
  std::copy(state.begin(), state.end(), scratchState_.data());
  online_.predict(scratchState_, scratchLogits_);
  softmaxBlocks(scratchLogits_, scratchProbs_);
  const std::size_t atoms = static_cast<std::size_t>(config_.atoms);
  const std::size_t base = static_cast<std::size_t>(action) * atoms;
  return std::vector<double>(scratchProbs_.data() + base, scratchProbs_.data() + base + atoms);
}

int C51Agent::greedyAction(std::span<const double> state) const {
  const auto q = expectedQ(state);
  return static_cast<int>(std::max_element(q.begin(), q.end()) - q.begin());
}

double C51Agent::maxQ(std::span<const double> state) const {
  const auto q = expectedQ(state);
  return *std::max_element(q.begin(), q.end());
}

int C51Agent::selectAction(std::span<const double> state, double epsilon, Rng& rng) const {
  if (rng.uniform() < epsilon) {
    return static_cast<int>(rng.uniformInt(static_cast<std::uint64_t>(actions_)));
  }
  return greedyAction(state);
}

double C51Agent::learn(ExperienceSource& source, Rng& rng) {
  if (source.size() < config_.batchSize) return 0.0;
  // Scratch reuse: minibatch, logits/probs and the projected target are
  // members filled in place each call.
  source.sampleInto(mbScratch_, config_.batchSize, rng);
  const Minibatch& mb = mbScratch_;
  const std::size_t batch = mb.size();
  const std::size_t atoms = static_cast<std::size_t>(config_.atoms);

  // --- Target distribution: categorical projection of r + gamma z. ------
  target_.predict(mb.nextStates, nextLogits_);
  softmaxBlocks(nextLogits_, nextProbs_);
  const nn::Tensor& nextProbs = nextProbs_;

  // Greedy next action under the target net's expected values.
  mProj_.resize(batch, atoms);  // zero base: the projection accumulates
  nn::Tensor& m = mProj_;       // projected target distribution per row
  for (std::size_t b = 0; b < batch; ++b) {
    std::size_t bestA = 0;
    double bestQ = -1e300;
    for (int a = 0; a < actions_; ++a) {
      double q = 0.0;
      for (std::size_t i = 0; i < atoms; ++i) {
        q += nextProbs(b, static_cast<std::size_t>(a) * atoms + i) * support_[i];
      }
      if (q > bestQ) {
        bestQ = q;
        bestA = static_cast<std::size_t>(a);
      }
    }
    // Project each target support point onto the fixed support.
    for (std::size_t i = 0; i < atoms; ++i) {
      const double p = mb.terminals[b] ? (i == 0 ? 1.0 : 0.0)
                                       : nextProbs(b, bestA * atoms + i);
      if (p == 0.0) continue;
      const double z = mb.terminals[b] ? 0.0 : support_[i];
      const double tz = std::clamp(mb.rewards[b] + (mb.terminals[b] ? 0.0 : config_.gamma * z),
                                   config_.vMin, config_.vMax);
      const double pos = (tz - config_.vMin) / deltaZ_;
      const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
      const std::size_t hi = std::min(lo + 1, atoms - 1);
      const double frac = pos - static_cast<double>(lo);
      m(b, lo) += p * (1.0 - frac);
      m(b, hi) += p * frac;
      if (mb.terminals[b]) break;  // the whole mass was at one pseudo-atom
    }
  }

  // --- Cross-entropy step on the online network. -------------------------
  const nn::Tensor& logits = online_.forward(mb.states);
  softmaxBlocks(logits, probs_);
  const nn::Tensor& probs = probs_;

  // Zero-fill resize: only the taken action's atom block is written.
  dLogits_.resize(batch, logits.cols());
  nn::Tensor& dLogits = dLogits_;
  double loss = 0.0;
  const double invBatch = 1.0 / static_cast<double>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t base = static_cast<std::size_t>(mb.actions[b]) * atoms;
    for (std::size_t i = 0; i < atoms; ++i) {
      const double p = probs(b, base + i);
      const double target = m(b, i);
      if (target > 0.0) loss -= target * std::log(std::max(p, 1e-12)) * invBatch;
      // d(-sum m log softmax)/dlogit = p - m.
      dLogits(b, base + i) = (p - target) * invBatch;
    }
  }

  online_.zeroGrad();
  online_.backward(dLogits);
  nn::FactoredPrefixGrad fg;
  const nn::FactoredPrefixGrad* factored = nullptr;
  if (online_.foldActive()) {
    fg.paramIndex = 0;  // parameters() order: W0, b0, W1, b1, ...
    fg.staticPrefix = online_.inputLayer().staticPrefix();
    fg.coeff = &online_.inputLayer().biasGrad();
    factored = &fg;
  }
  optimizer_->step(online_.parameters(), online_.gradients(), factored);

  ++learnSteps_;
  if (config_.targetSyncInterval > 0 && learnSteps_ % config_.targetSyncInterval == 0) {
    syncTarget();
  }
  return loss;
}

}  // namespace dqndock::rl
