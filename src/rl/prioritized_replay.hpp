#pragma once

/// \file prioritized_replay.hpp
/// Proportional prioritized experience replay (Schaul et al. 2016):
/// transitions are sampled with probability proportional to
/// (|TD error| + eps)^alpha instead of uniformly, and importance weights
/// (1 / (N P))^beta correct the induced bias. One of the Rainbow
/// components (paper reference [17]) the authors name as future work.
///
/// Implements the same ExperienceSource/Sink interfaces as the uniform
/// buffer so the trainer and agent are unchanged; the agent additionally
/// feeds TD errors back through updatePriorities() when the source
/// supports it (see DqnAgent::learn).

#include "src/common/rng.hpp"
#include "src/rl/replay_buffer.hpp"
#include "src/rl/sum_tree.hpp"

namespace dqndock::rl {

/// Extension interface: sources that track priorities receive the TD
/// errors of the transitions they handed out.
class PrioritizedSource : public ExperienceSource {
 public:
  /// Indices of the transitions in the most recent minibatch (aligned
  /// with its rows) and their importance weights.
  virtual const std::vector<std::size_t>& lastSampledIndices() const = 0;
  virtual const std::vector<double>& lastImportanceWeights() const = 0;
  /// Feed back |TD error| per row of the last minibatch.
  virtual void updatePriorities(std::span<const double> tdErrors) = 0;
};

struct PrioritizedReplayConfig {
  double alpha = 0.6;          ///< prioritization strength (0 = uniform)
  double beta = 0.4;           ///< importance-correction strength
  double betaIncrement = 1e-5; ///< beta anneals toward 1 per sample() call
  double epsilon = 1e-3;       ///< keeps priorities strictly positive
  double maxPriority = 100.0;  ///< clamp on |TD| feedback
};

class PrioritizedReplayBuffer final : public PrioritizedSource, public ExperienceSink {
 public:
  PrioritizedReplayBuffer(std::size_t capacity, std::size_t stateDim,
                          PrioritizedReplayConfig config = {});

  // ExperienceSink: new transitions enter at the current max priority so
  // every transition is replayed at least once with high probability.
  void push(std::span<const double> state, int action, double reward,
            std::span<const double> nextState, bool terminal) override;

  std::size_t size() const override { return count_; }
  std::size_t capacity() const { return capacity_; }
  double beta() const { return beta_; }

  Minibatch sample(std::size_t batch, Rng& rng) const override;

  const std::vector<std::size_t>& lastSampledIndices() const override { return lastIndices_; }
  const std::vector<double>& lastImportanceWeights() const override { return lastWeights_; }
  void updatePriorities(std::span<const double> tdErrors) override;

  double priorityOf(std::size_t slot) const { return tree_.priority(slot); }

 private:
  std::size_t capacity_;
  std::size_t stateDim_;
  PrioritizedReplayConfig config_;
  std::size_t count_ = 0;
  std::size_t head_ = 0;
  double maxSeenPriority_ = 1.0;
  mutable double beta_;

  std::vector<float> states_;
  std::vector<float> nextStates_;
  std::vector<int> actions_;
  std::vector<float> rewards_;
  std::vector<char> terminals_;
  SumTree tree_;

  mutable std::vector<std::size_t> lastIndices_;
  mutable std::vector<double> lastWeights_;
};

}  // namespace dqndock::rl
