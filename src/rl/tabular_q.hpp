#pragma once

/// \file tabular_q.hpp
/// Classic tabular Q-learning (Watkins & Dayan 1992) — the exact update
/// rule the paper quotes in Section 2.2:
///
///   Q(s,a) <- Q(s,a) + alpha ( r + gamma max_a' Q(s',a') - Q(s,a) )
///
/// Included as the didactic baseline: it solves small discrete tasks
/// (the corridor MDP) exactly, and its impossibility at 16,599-dimensional
/// docking states is the reason DQN-Docking exists.

#include <cstddef>
#include <vector>

#include "src/common/rng.hpp"

namespace dqndock::rl {

struct TabularQConfig {
  double alpha = 0.1;   ///< learning rate (paper Section 2.2)
  double gamma = 0.99;  ///< discount factor
};

class TabularQAgent {
 public:
  TabularQAgent(std::size_t stateCount, int actionCount, TabularQConfig config = {});

  std::size_t stateCount() const { return states_; }
  int actionCount() const { return actions_; }

  double q(std::size_t state, int action) const;
  double maxQ(std::size_t state) const;
  int greedyAction(std::size_t state) const;
  int selectAction(std::size_t state, double epsilon, Rng& rng) const;

  /// One Bellman update; terminal transitions bootstrap with 0.
  void update(std::size_t state, int action, double reward, std::size_t nextState, bool terminal);

 private:
  void check(std::size_t state, int action) const;

  std::size_t states_;
  int actions_;
  TabularQConfig config_;
  std::vector<double> table_;  ///< states x actions, row-major
};

}  // namespace dqndock::rl
