#pragma once

/// \file parallel_collector.hpp
/// Parallel experience collection.
///
/// The paper's training loop is strictly sequential: one METADOCK
/// instance, one transition per step. Because the environment is
/// CPU-bound (scoring) and the replay buffer decouples acting from
/// learning, experience can instead be gathered from E independent
/// environment replicas in parallel — the standard distributed-DQN
/// (Gorila-style) data layout, and the natural "parallel processing"
/// extension for an ICPP venue. Each replica acts with the shared online
/// network under its own RNG stream; transitions funnel into one
/// thread-safe sink; the learner consumes minibatches on the caller's
/// thread.
///
/// Determinism: replica i always uses stream split(i) of the root seed,
/// and transitions are pushed under a mutex, so the *set* of collected
/// transitions is reproducible; their interleaving order is not (uniform
/// replay sampling makes order immaterial).
///
/// Ownership vs the vectorized trainer (vector_env.hpp): these are the
/// two alternative throughput paths and they do NOT compose. The
/// collector runs E replicas on E *threads*, each stepping its own env
/// at its own pace with per-state (rows=1) Q-forwards and per-pose
/// scoring — episodes of different lengths never wait on each other.
/// Trainer+VectorEnv instead step V envs in *lockstep on one thread*,
/// batching the V Q-forwards into one gemmABt call and the V pose
/// evaluations into one receptor sweep. Lockstep batching is owned
/// exclusively by Trainer+VectorEnv; the collector's per-replica loop
/// intentionally stays scalar (batching across threads would force the
/// very barrier the collector exists to avoid), which is why
/// CollectorStats::batchedSteps is always 0 here.

#include <memory>
#include <mutex>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/rl/dqn_agent.hpp"
#include "src/rl/env.hpp"
#include "src/rl/metrics.hpp"
#include "src/rl/replay_buffer.hpp"
#include "src/rl/schedule.hpp"

namespace dqndock::rl {

/// Wraps any ExperienceSink with a mutex.
class LockedSink final : public ExperienceSink {
 public:
  explicit LockedSink(ExperienceSink& inner) : inner_(inner) {}
  void push(std::span<const double> state, int action, double reward,
            std::span<const double> nextState, bool terminal) override {
    std::lock_guard lock(mu_);
    inner_.push(state, action, reward, nextState, terminal);
  }

 private:
  ExperienceSink& inner_;
  std::mutex mu_;
};

struct ParallelCollectorConfig {
  std::size_t episodesPerReplica = 10;
  EpsilonSchedule epsilon{};
  std::size_t learningStart = 1000;  ///< total steps before learning begins
  std::size_t learnEvery = 1;        ///< learner steps per collected step (approx.)
  std::uint64_t seed = 99;
};

struct CollectorStats {
  std::size_t totalSteps = 0;
  std::size_t totalEpisodes = 0;
  /// Lockstep batched-step count, mirroring VectorEnv::batchedSteps().
  /// Always 0 for collectParallel: replicas step independently across
  /// threads and never form a lockstep batch (see file comment). The
  /// field exists so schedulers reading either path's stats can compute
  /// batched fraction uniformly.
  std::size_t batchedSteps = 0;
  double bestScore = 0.0;
  MetricsLog metrics;  ///< per-episode records from every replica
};

/// Collect experience from `envs` in parallel (one task per replica) and
/// train `agent` from `source` on the calling thread between sweeps.
///
/// The agent's network is shared read-only by the replicas during a
/// sweep; learning happens between sweeps (synchronous epochs), so there
/// are no torn weight reads. One sweep = every replica plays one episode.
CollectorStats collectParallel(std::vector<std::unique_ptr<Environment>>& envs, DqnAgent& agent,
                               ExperienceSink& sink, ExperienceSource& source,
                               ParallelCollectorConfig config, ThreadPool* pool);

}  // namespace dqndock::rl
