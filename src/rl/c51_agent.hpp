#pragma once

/// \file c51_agent.hpp
/// Categorical / distributional DQN ("C51", Bellemare et al. 2017) —
/// explicitly named by the paper (Section 5, via the Rainbow survey
/// [17]) as a future-work variant for DQN-Docking.
///
/// Instead of a scalar Q per action the network outputs a categorical
/// distribution over `atoms` fixed support points z_i in [vMin, vMax];
/// actions are ranked by the distribution's expectation, and learning
/// minimizes the cross-entropy against the Bellman-projected target
/// distribution.

#include <memory>
#include <span>
#include <vector>

#include "src/nn/mlp.hpp"
#include "src/nn/optimizer.hpp"
#include "src/rl/replay_buffer.hpp"

namespace dqndock::rl {

struct C51Config {
  double gamma = 0.99;
  double learningRate = 0.00025;
  std::string optimizer = "adam";
  std::size_t batchSize = 32;
  std::size_t targetSyncInterval = 1000;
  std::vector<std::size_t> hiddenSizes = {135, 135};
  int atoms = 51;        ///< support resolution (the "51" in C51)
  double vMin = -10.0;   ///< support lower bound (return units)
  double vMax = 10.0;    ///< support upper bound
};

class C51Agent {
 public:
  C51Agent(std::size_t stateDim, int actionCount, C51Config config, Rng& rng,
           ThreadPool* pool = nullptr);

  std::size_t stateDim() const { return stateDim_; }
  int actionCount() const { return actions_; }
  const C51Config& config() const { return config_; }
  const std::vector<double>& support() const { return support_; }

  /// Fold the constant state prefix out of both nets' input layers (see
  /// DqnAgent::enableStaticPrefixFold). Once active, state-taking entry
  /// points accept full-width states or just the dynamic suffix.
  bool enableStaticPrefixFold(std::span<const double> staticPrefix);
  bool foldActive() const { return online_.foldActive(); }
  std::size_t dynamicStateDim() const { return online_.dynamicInputDim(); }

  /// Expected Q per action (the distribution means).
  std::vector<double> expectedQ(std::span<const double> state) const;

  /// Categorical distribution for one state-action (sums to 1).
  std::vector<double> distribution(std::span<const double> state, int action) const;

  int greedyAction(std::span<const double> state) const;
  int selectAction(std::span<const double> state, double epsilon, Rng& rng) const;
  double maxQ(std::span<const double> state) const;

  /// One C51 update (categorical projection + cross-entropy step).
  /// Returns the minibatch loss; no-op below batchSize transitions.
  double learn(ExperienceSource& source, Rng& rng);

  void syncTarget() { target_.copyWeightsFrom(online_); }
  std::size_t learnSteps() const { return learnSteps_; }

 private:
  /// Per-(row, action) softmax over the atom block of `logits`.
  void softmaxBlocks(const nn::Tensor& logits, nn::Tensor& probs) const;

  std::size_t stateDim_;
  int actions_;
  C51Config config_;
  std::vector<double> support_;
  double deltaZ_;
  nn::Mlp online_;
  nn::Mlp target_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  std::size_t learnSteps_ = 0;
  mutable nn::Tensor scratchState_, scratchLogits_, scratchProbs_;

  // learn() scratch, reused across calls.
  Minibatch mbScratch_;
  nn::Tensor nextLogits_, nextProbs_, mProj_, probs_, dLogits_;
};

}  // namespace dqndock::rl
