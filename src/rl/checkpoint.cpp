#include "src/rl/checkpoint.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace dqndock::rl {

namespace {
constexpr std::uint64_t kMagic = 0x44514e574549ULL;  // "DQNWEI"

void writeU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint64_t readU64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("loadWeights: truncated stream");
  return v;
}
}  // namespace

void saveWeights(std::ostream& out, QNetwork& net) {
  const auto params = net.parameters();
  writeU64(out, kMagic);
  writeU64(out, params.size());
  for (const nn::Tensor* t : params) {
    writeU64(out, t->rows());
    writeU64(out, t->cols());
    out.write(reinterpret_cast<const char*>(t->data()),
              static_cast<std::streamsize>(t->size() * sizeof(double)));
  }
  if (!out) throw std::runtime_error("saveWeights: write failure");
}

void loadWeights(std::istream& in, QNetwork& net) {
  if (readU64(in) != kMagic) throw std::runtime_error("loadWeights: bad magic");
  const auto params = net.parameters();
  if (readU64(in) != params.size()) {
    throw std::runtime_error("loadWeights: parameter-count mismatch");
  }
  for (nn::Tensor* t : params) {
    const std::uint64_t rows = readU64(in);
    const std::uint64_t cols = readU64(in);
    if (rows != t->rows() || cols != t->cols()) {
      throw std::runtime_error("loadWeights: tensor shape mismatch");
    }
    in.read(reinterpret_cast<char*>(t->data()),
            static_cast<std::streamsize>(t->size() * sizeof(double)));
    if (!in) throw std::runtime_error("loadWeights: truncated weights");
  }
}

void saveWeightsFile(const std::string& path, QNetwork& net) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("saveWeightsFile: cannot open " + path);
  saveWeights(out, net);
}

void loadWeightsFile(const std::string& path, QNetwork& net) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("loadWeightsFile: cannot open " + path);
  loadWeights(in, net);
}

void saveAgent(const std::string& path, DqnAgent& agent) {
  saveWeightsFile(path, agent.online());
}

void loadAgent(const std::string& path, DqnAgent& agent) {
  loadWeightsFile(path, agent.online());
  agent.syncTarget();
}

}  // namespace dqndock::rl
