#pragma once

/// \file tenant.hpp
/// Multi-tenant routing for the serving layer: one front-end (the HTTP
/// gateway, or any future transport) hosts many named models, each
/// backed by its own DockingService worker pool and versioned
/// ModelRegistry. The directory is the route table — "scenario name" ->
/// {service, registry} — plus per-tenant, per-route observability:
/// request/error counters and a sliding latency window with
/// percentile queries, so a later PR can autoscale pool sizes and
/// batcher flush deadlines from observed load (ROADMAP item).
///
/// Registration happens once, before traffic: add() every tenant, then
/// hand the directory to the front-end. Lookups after that point are
/// lock-free reads of an immutable map; only the stats counters take a
/// per-tenant mutex.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/serve/docking_service.hpp"
#include "src/serve/model_registry.hpp"

namespace dqndock::serve {

/// Fixed-capacity ring of recent request latencies. record() overwrites
/// the oldest sample once full, so percentiles always describe the last
/// `capacity` requests — stale startup latencies age out instead of
/// dragging the tail forever.
class LatencyWindow {
 public:
  explicit LatencyWindow(std::size_t capacity = 512);

  void record(double seconds);
  std::uint64_t count() const { return total_; }

  /// Nearest-rank percentile (p in [0, 100]) over the retained window;
  /// 0.0 when no sample has been recorded yet.
  double percentileSeconds(double p) const;

 private:
  std::vector<double> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

/// One route's counters, snapshotted.
struct RouteStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;  ///< rejected, failed, or timed-out outcomes
  std::uint64_t latencySamples = 0;
  double p50Seconds = 0.0;
  double p90Seconds = 0.0;
  double p99Seconds = 0.0;
};

/// Per-tenant snapshot for /v1/stats: gateway-side route counters plus
/// the backing pool's live queue depth (the autoscaling signals).
struct TenantStats {
  std::string name;
  RouteStats dock;
  RouteStats screen;
  std::size_t queueDepth = 0;
  std::size_t queueCapacity = 0;
  std::size_t workers = 0;
  ServiceStats service;
};

class TenantDirectory {
 public:
  struct Tenant {
    std::string name;
    DockingService* service = nullptr;
    ModelRegistry* registry = nullptr;

    void recordDock(double seconds, bool ok);
    void recordScreen(double seconds, bool ok);
    TenantStats stats() const;

   private:
    friend class TenantDirectory;
    mutable std::mutex mu_;
    std::uint64_t dockRequests_ = 0, dockErrors_ = 0;
    std::uint64_t screenRequests_ = 0, screenErrors_ = 0;
    LatencyWindow dockLatency_;
    LatencyWindow screenLatency_;
  };

  /// Register a named model pool. Throws std::invalid_argument on an
  /// empty/duplicate name or a name with characters that cannot appear
  /// verbatim in a URL path segment. Not thread-safe — call before
  /// serving traffic.
  void add(const std::string& name, DockingService& service, ModelRegistry& registry);

  /// nullptr when the name is not registered. The pointer stays valid
  /// for the directory's lifetime (tenants are never removed).
  Tenant* find(const std::string& name) const;

  std::size_t size() const { return tenants_.size(); }
  /// Registered names in lexicographic order (stable discovery output).
  std::vector<std::string> names() const;
  std::vector<TenantStats> stats() const;

 private:
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace dqndock::serve
