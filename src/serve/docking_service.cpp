#include "src/serve/docking_service.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/chem/synthetic.hpp"
#include "src/common/logging.hpp"
#include "src/common/stopwatch.hpp"

namespace dqndock::serve {

namespace {
/// Worker threads park their environment here so job closures (which
/// only see the Job) can reach it.
thread_local metadock::DockingEnv* t_workerEnv = nullptr;

int argmax(const std::vector<double>& q) {
  return static_cast<int>(std::max_element(q.begin(), q.end()) - q.begin());
}
}  // namespace

DockingService::DockingService(const chem::Scenario& scenario, ModelRegistry& registry,
                               ServiceOptions options, ThreadPool* pool)
    : scenario_(scenario),
      registry_(registry),
      options_(options),
      pool_(pool),
      encoder_(scenario_, options_.stateMode, options_.normalizeStates),
      // Fold the constant receptor block out of every published network
      // before any worker serves traffic: batched and single-state
      // inference then both ride the small dynamic-column GEMM, and each
      // hot-swapped model version folds lazily exactly once.
      foldActive_(options_.foldStatic.value_or(nn::foldStaticEnabled()) &&
                  encoder_.staticPrefixLen() > 0 &&
                  registry.enableStaticPrefixFold(encoder_.staticPrefix())),
      batcher_(
          [this](const nn::Tensor& states, nn::Tensor& q) {
            registry_.current()->net->predict(states, q);
          },
          foldActive_ ? encoder_.dynamicDim() : registry.inputDim(), registry.actionCount(),
          options.batcher),
      queue_(options.queueCapacity) {
  if (options_.workers == 0) options_.workers = 1;
  options_.env.scoring.pool = pool;
  if (encoder_.dim() != registry_.inputDim()) {
    throw std::invalid_argument("DockingService: registry input dim " +
                                std::to_string(registry_.inputDim()) +
                                " != encoder dim " + std::to_string(encoder_.dim()));
  }
  // One environment per worker: envs are stateful and not thread-safe.
  envs_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    envs_.push_back(std::make_unique<metadock::DockingEnv>(scenario_, options_.env));
  }
  if (envs_.front()->actionCount() != registry_.actionCount()) {
    throw std::invalid_argument("DockingService: registry action count " +
                                std::to_string(registry_.actionCount()) + " != env actions " +
                                std::to_string(envs_.front()->actionCount()));
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

DockingService::~DockingService() { shutdown(); }

void DockingService::shutdown() {
  {
    std::lock_guard lock(ticketsMu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // After the workers (the only batcher clients) are gone.
  batcher_.shutdown();
  logInfo() << "DockingService: shut down (" << done_ << " done, " << failed_ << " failed, "
            << cancelled_ << " cancelled, " << timedOut_ << " timed out)";
}

SubmitResult DockingService::submit(std::shared_ptr<Job> job,
                                    std::shared_ptr<JobOutcome> outcome) {
  // Id grabbed up front: the assignment's RHS moves `job` out before the
  // subscript would run (RHS is sequenced first since C++17).
  const std::uint64_t id = job->id();
  const SubmitResult result = queue_.push(job);
  if (result.accepted()) {
    std::lock_guard lock(ticketsMu_);
    tickets_[id] = Ticket{std::move(job), std::move(outcome)};
  }
  return result;
}

SubmitResult DockingService::submitDock(const DockRequest& request) {
  auto outcome = std::make_shared<JobOutcome>();
  outcome->kind = JobOutcome::Kind::kDock;
  std::uint64_t id;
  {
    std::lock_guard lock(ticketsMu_);
    id = nextJobId_++;
  }
  outcome->jobId = id;
  auto job = std::make_shared<Job>(
      id, request.priority,
      [this, request, outcome](Job& j) {
        if (t_workerEnv == nullptr) {
          throw std::runtime_error("dock jobs must run on a service worker thread");
        }
        runDock(j, request, *outcome, *t_workerEnv);
      },
      request.timeoutSeconds);
  return submit(std::move(job), std::move(outcome));
}

SubmitResult DockingService::submitScreen(const ScreenRequest& request) {
  auto outcome = std::make_shared<JobOutcome>();
  outcome->kind = JobOutcome::Kind::kScreen;
  std::uint64_t id;
  {
    std::lock_guard lock(ticketsMu_);
    id = nextJobId_++;
  }
  outcome->jobId = id;
  auto job = std::make_shared<Job>(
      id, request.priority, [this, request, outcome](Job& j) { runScreen(j, request, *outcome); },
      request.timeoutSeconds);
  return submit(std::move(job), std::move(outcome));
}

JobOutcome DockingService::wait(std::uint64_t jobId) {
  Ticket ticket;
  {
    std::lock_guard lock(ticketsMu_);
    auto it = tickets_.find(jobId);
    if (it == tickets_.end()) {
      throw std::out_of_range("DockingService::wait: unknown job id " + std::to_string(jobId));
    }
    ticket = it->second;
    tickets_.erase(it);
  }
  const JobStatus status = ticket.job->wait();
  JobOutcome outcome = *ticket.outcome;  // worker writes happen-before terminal status
  outcome.status = status;
  outcome.error = ticket.job->error();
  recordTerminal(status);
  return outcome;
}

bool DockingService::cancel(std::uint64_t jobId) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard lock(ticketsMu_);
    auto it = tickets_.find(jobId);
    if (it == tickets_.end()) return false;
    job = it->second.job;
  }
  // Remove from the queue when still waiting; otherwise flag the running
  // job and let its worker observe the flag between steps.
  if (!queue_.cancelQueued(jobId)) job->requestCancel();
  return true;
}

void DockingService::recordTerminal(JobStatus status) {
  std::lock_guard lock(ticketsMu_);
  switch (status) {
    case JobStatus::kDone: ++done_; break;
    case JobStatus::kFailed: ++failed_; break;
    case JobStatus::kCancelled: ++cancelled_; break;
    case JobStatus::kTimedOut: ++timedOut_; break;
    default: break;
  }
}

ServiceStats DockingService::stats() const {
  ServiceStats s;
  s.queue = queue_.stats();
  s.batcher = batcher_.stats();
  s.workers = workers_.size();
  s.queueDepth = queue_.size();
  std::lock_guard lock(ticketsMu_);
  s.done = done_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.timedOut = timedOut_;
  return s;
}

void DockingService::workerLoop(std::size_t workerIndex) {
  t_workerEnv = envs_[workerIndex].get();
  while (std::shared_ptr<Job> job = queue_.pop()) {
    job->run();
  }
  t_workerEnv = nullptr;
}

void DockingService::runDock(Job& job, const DockRequest& request, JobOutcome& outcome,
                             metadock::DockingEnv& env) {
  Stopwatch clock;
  Rng rng(request.seed);
  DockResult& r = outcome.dock;
  r.modelVersion = registry_.currentVersion();

  env.reset();
  r.initialScore = env.score();
  r.bestScore = r.initialScore;
  r.finalScore = r.initialScore;
  r.bestRmsd = env.rmsdToCrystal();

  std::vector<double> state;
  int t = 0;
  for (; t < request.maxSteps && !env.terminated(); ++t) {
    if (job.cancelRequested()) {
      finishPartial(job, r, clock, t, env, JobStatus::kCancelled, "cancelled mid-rollout");
      return;
    }
    if (request.timeoutSeconds > 0.0 && clock.seconds() > request.timeoutSeconds) {
      finishPartial(job, r, clock, t, env, JobStatus::kTimedOut,
                    "exceeded " + std::to_string(request.timeoutSeconds) + " s budget");
      return;
    }
    int action;
    if (request.epsilon > 0.0 && rng.uniform() < request.epsilon) {
      action = static_cast<int>(rng.uniformInt(static_cast<std::uint64_t>(env.actionCount())));
    } else {
      if (foldActive_) {
        encoder_.encodeDynamicFromPositions(env.ligandPositions(), state);
      } else {
        encoder_.encodeFromPositions(env.ligandPositions(), state);
      }
      action = argmax(batcher_.infer(state));
    }
    const metadock::StepResult step = env.step(action);
    r.bestScore = std::max(r.bestScore, step.score);
    r.bestRmsd = std::min(r.bestRmsd, env.rmsdToCrystal());
  }
  r.finalScore = env.score();
  r.steps = static_cast<std::size_t>(t);
  r.termination =
      env.terminated() ? metadock::terminationName(env.terminationReason()) : "step_budget";
  r.seconds = clock.seconds();
}

void DockingService::finishPartial(Job& job, DockResult& r, const Stopwatch& clock, int steps,
                                   metadock::DockingEnv& env, JobStatus status,
                                   std::string error) {
  r.finalScore = env.score();
  r.steps = static_cast<std::size_t>(steps);
  r.termination = jobStatusName(status);
  r.seconds = clock.seconds();
  job.finish(status, std::move(error));
}

void DockingService::runScreen(Job& job, const ScreenRequest& request, JobOutcome& outcome) {
  Stopwatch clock;
  if (job.cancelRequested()) {
    job.finish(JobStatus::kCancelled, "cancelled before screen start");
    return;
  }
  Rng rng(request.seed);
  const std::vector<chem::Molecule> library = chem::buildLigandLibrary(
      request.librarySize, request.minAtoms, std::max(request.minAtoms, request.maxAtoms), rng);
  metadock::ScreeningOptions opts;
  opts.evaluationsPerLigand = request.evaluationsPerLigand;
  opts.refineWithGradient = false;
  opts.clusterModes = false;
  opts.seed = request.seed;
  const metadock::ScreeningReport report =
      metadock::screenLibrary(scenario_.receptor, library, opts, pool_);

  ScreenResult& r = outcome.screen;
  r.ligands = report.ranked.size();
  r.hitCount = report.hitCount;
  r.totalEvaluations = report.totalEvaluations;
  if (!report.ranked.empty()) {
    r.bestScore = report.ranked.front().refinedScore;
    r.bestLigand = report.ranked.front().ligandName;
  }
  r.seconds = clock.seconds();
}

}  // namespace dqndock::serve
