#include "src/serve/tenant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dqndock::serve {

LatencyWindow::LatencyWindow(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void LatencyWindow::record(double seconds) {
  if (ring_.size() < capacity_) {
    ring_.push_back(seconds);
  } else {
    ring_[next_] = seconds;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

double LatencyWindow::percentileSeconds(double p) const {
  if (ring_.empty()) return 0.0;
  std::vector<double> sorted(ring_);
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: ceil(p/100 * N), 1-based; p=0 maps to the minimum.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

void TenantDirectory::Tenant::recordDock(double seconds, bool ok) {
  std::lock_guard lock(mu_);
  ++dockRequests_;
  if (!ok) ++dockErrors_;
  dockLatency_.record(seconds);
}

void TenantDirectory::Tenant::recordScreen(double seconds, bool ok) {
  std::lock_guard lock(mu_);
  ++screenRequests_;
  if (!ok) ++screenErrors_;
  screenLatency_.record(seconds);
}

TenantStats TenantDirectory::Tenant::stats() const {
  TenantStats out;
  out.name = name;
  {
    std::lock_guard lock(mu_);
    out.dock.requests = dockRequests_;
    out.dock.errors = dockErrors_;
    out.dock.latencySamples = dockLatency_.count();
    out.dock.p50Seconds = dockLatency_.percentileSeconds(50.0);
    out.dock.p90Seconds = dockLatency_.percentileSeconds(90.0);
    out.dock.p99Seconds = dockLatency_.percentileSeconds(99.0);
    out.screen.requests = screenRequests_;
    out.screen.errors = screenErrors_;
    out.screen.latencySamples = screenLatency_.count();
    out.screen.p50Seconds = screenLatency_.percentileSeconds(50.0);
    out.screen.p90Seconds = screenLatency_.percentileSeconds(90.0);
    out.screen.p99Seconds = screenLatency_.percentileSeconds(99.0);
  }
  out.service = service->stats();
  out.queueDepth = out.service.queueDepth;
  out.queueCapacity = service->options().queueCapacity;
  out.workers = out.service.workers;
  return out;
}

void TenantDirectory::add(const std::string& name, DockingService& service,
                          ModelRegistry& registry) {
  if (name.empty()) throw std::invalid_argument("TenantDirectory: empty model name");
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) {
      throw std::invalid_argument("TenantDirectory: model name \"" + name +
                                  "\" has characters unusable in a URL path segment");
    }
  }
  if (tenants_.count(name) != 0) {
    throw std::invalid_argument("TenantDirectory: duplicate model name \"" + name + "\"");
  }
  auto tenant = std::make_unique<Tenant>();
  tenant->name = name;
  tenant->service = &service;
  tenant->registry = &registry;
  tenants_.emplace(name, std::move(tenant));
}

TenantDirectory::Tenant* TenantDirectory::find(const std::string& name) const {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

std::vector<std::string> TenantDirectory::names() const {
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) out.push_back(name);
  return out;
}

std::vector<TenantStats> TenantDirectory::stats() const {
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) out.push_back(tenant->stats());
  return out;
}

}  // namespace dqndock::serve
