#pragma once

/// \file tcp.hpp
/// Localhost TCP transport for the docking service: a threaded
/// accept-loop server that speaks the wire.hpp framed protocol and a
/// blocking request/response client. POSIX sockets only — no new
/// dependencies. Request types:
///
///   PING                          liveness probe -> OK
///   STATUS                        queue/worker/model stats -> OK
///   DOCK     max_steps epsilon seed priority timeout_s -> OK(result)
///   SCREEN   library_size min_atoms max_atoms evals seed ... -> OK(result)
///   PUBLISH  path                 hot-swap weights from checkpoint -> OK
///   SHUTDOWN                      graceful stop -> OK, server drains
///
/// Rejections (queue full, shutdown) come back as ERROR with the
/// backpressure reason — the client is expected to retry later.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/docking_service.hpp"
#include "src/serve/wire.hpp"

namespace dqndock::serve {

struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t protocolErrors = 0;
  /// Peers that hung up mid-exchange (EPIPE/ECONNRESET while replying).
  /// A hangup is the client's prerogative — it is never a protocol
  /// error and must never kill the server (the PR-10 SIGPIPE fix).
  std::uint64_t peerHangups = 0;
};

class TcpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; read the chosen one via
  /// port()) and starts accepting. Throws std::runtime_error on bind
  /// failure.
  TcpServer(DockingService& service, ModelRegistry& registry, std::uint16_t port = 0);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Block until a client sent SHUTDOWN or stop() was called.
  void waitUntilStopped();
  bool stopRequested() const;

  /// Graceful stop: close the listener, unblock connection reads, join
  /// every handler thread. Idempotent; also run by the destructor. Must
  /// not be called from a handler thread (the dtor/owner calls it).
  void stop();

  /// Non-joining half of stop(): refuse new connections and wake
  /// waitUntilStopped(). Safe from any thread (SHUTDOWN handlers use it);
  /// the owner still calls stop() to join.
  void requestStop();

  ServerStats stats() const;

 private:
  void acceptLoop();
  void handleConnection(int fd);
  Message handleRequest(const Message& request);
  Message handleDock(const Message& request);
  Message handleScreen(const Message& request);
  Message handleStatus() const;

  DockingService& service_;
  ModelRegistry& registry_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;

  mutable std::mutex mu_;
  std::condition_variable stopCv_;
  bool stopRequested_ = false;
  bool stopped_ = false;
  std::vector<std::thread> handlers_;
  std::vector<int> connectionFds_;
  ServerStats stats_;

  std::thread acceptThread_;
};

/// Retry schedule for connect/request: capped exponential backoff under
/// an overall deadline. The default (one attempt, no waiting) preserves
/// fail-fast behaviour.
struct RetryPolicy {
  int maxAttempts = 1;  ///< total attempts, including the first (>= 1)
  std::chrono::milliseconds initialBackoff{100};
  double backoffMultiplier = 2.0;
  std::chrono::milliseconds maxBackoff{2000};
  /// Overall wall-clock budget across all attempts and backoff sleeps;
  /// zero means no deadline (attempts alone bound the retries).
  std::chrono::milliseconds deadline{0};

  /// A patient default for workers joining a service that may still be
  /// starting up or briefly unreachable: 8 attempts, 100 ms → 2 s capped
  /// backoff, 30 s overall deadline.
  static RetryPolicy patient();
};

/// Blocking request/response client for the framed protocol.
class TcpClient {
 public:
  /// Connects to host:port (host default 127.0.0.1). Throws
  /// std::runtime_error on connection failure.
  explicit TcpClient(std::uint16_t port, const std::string& host = "127.0.0.1");

  /// Connects with retry: failed connect attempts back off per `retry`
  /// until the attempt count or deadline is exhausted, then throw the
  /// last error.
  TcpClient(std::uint16_t port, const std::string& host, const RetryPolicy& retry);
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Send one request, block for the response. Throws on I/O failure,
  /// framing violation (ProtocolError), or server hangup. Any throw
  /// closes the connection — the stream position is unknown after a
  /// failure, so reusing it could pair a request with the wrong reply;
  /// subsequent request() calls fail fast until a new client is made
  /// (or the retrying overload below reconnects).
  Message request(const Message& msg);

  /// request() with retry: each failed exchange closes the socket (a
  /// desynced stream is never reused — the PR-4 rule), backs off, opens
  /// a FRESH connection and resends. Only safe for idempotent requests:
  /// a lost reply means the server may have executed the request once
  /// already when the resend arrives. Throws the last error when the
  /// attempt count or deadline is exhausted.
  Message request(const Message& msg, const RetryPolicy& retry);

  void close();

 private:
  /// One connect attempt; throws std::runtime_error on failure.
  void connectOnce();

  std::string host_;
  std::uint16_t port_ = 0;
  int fd_ = -1;
};

}  // namespace dqndock::serve
