#pragma once

/// \file inference_batcher.hpp
/// Micro-batching scheduler for Q-network inference — the serving hot
/// path. Concurrent callers each need Q-values for one encoded state;
/// issuing a 1-row GEMM per caller re-reads the full weight matrices per
/// request. The batcher coalesces waiting requests into one
/// (batch x dim) forward pass: a dispatcher thread collects up to
/// `maxBatch` rows, waiting at most `flushDeadline` after the first
/// request arrives, then runs one batched predict() and distributes the
/// rows. Row results are bit-for-bit identical to per-row calls because
/// the GEMM kernels accumulate each output element in a fixed k-order
/// regardless of batch height.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/nn/tensor.hpp"

namespace dqndock::serve {

struct BatcherOptions {
  /// Rows per dispatched forward pass (paper minibatch: 32).
  std::size_t maxBatch = 32;
  /// How long the dispatcher waits for the batch to fill, measured from
  /// when the batch's first request was ENQUEUED (not from when the
  /// dispatcher got around to looking) — a request never waits more than
  /// flushDeadline beyond the dispatcher being free. 0 dispatches
  /// whatever is queued immediately.
  std::chrono::microseconds flushDeadline{200};
};

struct BatcherStats {
  std::uint64_t requests = 0;        ///< rows served
  std::uint64_t batches = 0;         ///< forward passes dispatched
  std::uint64_t fullBatches = 0;     ///< dispatched because maxBatch filled
  std::uint64_t deadlineFlushes = 0; ///< dispatched by deadline/drain
  std::size_t maxBatchRows = 0;      ///< largest batch observed
  double meanBatchRows() const {
    return batches == 0 ? 0.0 : static_cast<double>(requests) / static_cast<double>(batches);
  }
};

class InferenceBatcher {
 public:
  /// Batched forward: fills `q` (rows x actions) from `states`
  /// (rows x inputDim). Must be reentrant-safe w.r.t. the dispatcher
  /// thread only (the batcher serialises calls itself).
  using ForwardFn = std::function<void(const nn::Tensor& states, nn::Tensor& q)>;

  InferenceBatcher(ForwardFn forward, std::size_t inputDim, int actionCount,
                   BatcherOptions options = {});
  ~InferenceBatcher();

  InferenceBatcher(const InferenceBatcher&) = delete;
  InferenceBatcher& operator=(const InferenceBatcher&) = delete;

  /// Blocking: enqueue one state row, wait for the batch it lands in, and
  /// return that row's Q-values. Thread-safe. Throws std::runtime_error
  /// after shutdown() and rethrows any exception the forward fn raised
  /// for the batch.
  std::vector<double> infer(std::span<const double> state);

  /// Drain pending requests (they complete) and stop the dispatcher.
  /// Subsequent infer() calls throw. Idempotent; also run by the dtor.
  void shutdown();

  std::size_t inputDim() const { return inputDim_; }
  int actionCount() const { return actionCount_; }
  const BatcherOptions& options() const { return options_; }
  BatcherStats stats() const;

 private:
  struct Request {
    std::vector<double> state;
    std::vector<double> result;
    std::exception_ptr error;
    /// When the row entered pending_ — the flush deadline for a batch is
    /// anchored to its OLDEST row, so time the dispatcher spent busy in a
    /// previous forward pass counts against the wait.
    std::chrono::steady_clock::time_point enqueuedAt;
    bool done = false;
    std::condition_variable cv;
  };

  void dispatchLoop();
  void runBatch(std::vector<Request*>& batch);

  ForwardFn forward_;
  std::size_t inputDim_;
  int actionCount_;
  BatcherOptions options_;

  mutable std::mutex mu_;
  std::condition_variable pendingCv_;  ///< wakes the dispatcher
  std::vector<Request*> pending_;
  bool stop_ = false;
  BatcherStats stats_;

  std::thread dispatcher_;
};

}  // namespace dqndock::serve
