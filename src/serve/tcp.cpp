#include "src/serve/tcp.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/common/logging.hpp"

namespace dqndock::serve {

namespace {

JobPriority priorityFromName(const std::string& name) {
  if (name == "high") return JobPriority::kHigh;
  if (name == "low") return JobPriority::kLow;
  return JobPriority::kNormal;
}

void fillDockFields(Message& reply, const JobOutcome& outcome) {
  reply.set("job_id", outcome.jobId)
      .set("status", std::string(jobStatusName(outcome.status)))
      .set("initial_score", outcome.dock.initialScore)
      .set("best_score", outcome.dock.bestScore)
      .set("final_score", outcome.dock.finalScore)
      .set("best_rmsd", outcome.dock.bestRmsd)
      .set("steps", static_cast<std::uint64_t>(outcome.dock.steps))
      .set("termination", outcome.dock.termination)
      .set("model_version", outcome.dock.modelVersion)
      .set("seconds", outcome.dock.seconds);
  if (!outcome.error.empty()) reply.set("error", outcome.error);
}

void fillScreenFields(Message& reply, const JobOutcome& outcome) {
  reply.set("job_id", outcome.jobId)
      .set("status", std::string(jobStatusName(outcome.status)))
      .set("ligands", static_cast<std::uint64_t>(outcome.screen.ligands))
      .set("hit_count", static_cast<std::uint64_t>(outcome.screen.hitCount))
      .set("best_score", outcome.screen.bestScore)
      .set("best_ligand", outcome.screen.bestLigand)
      .set("evaluations", static_cast<std::uint64_t>(outcome.screen.totalEvaluations))
      .set("seconds", outcome.screen.seconds);
  if (!outcome.error.empty()) reply.set("error", outcome.error);
}

}  // namespace

TcpServer::TcpServer(DockingService& service, ModelRegistry& registry, std::uint16_t port)
    : service_(service), registry_(registry) {
  // A client that hangs up mid-reply must surface as EPIPE on the send,
  // never as a process-killing SIGPIPE (MSG_NOSIGNAL covers socket sends;
  // this covers every other fd path for the process lifetime).
  ignoreSigpipe();
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) throw std::runtime_error("TcpServer: socket() failed");
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only, by design
  addr.sin_port = htons(port);
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listenFd_);
    throw std::runtime_error(std::string("TcpServer: bind failed: ") + std::strerror(errno));
  }
  if (::listen(listenFd_, 16) != 0) {
    ::close(listenFd_);
    throw std::runtime_error("TcpServer: listen failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  acceptThread_ = std::thread([this] { acceptLoop(); });
  logInfo() << "TcpServer: listening on 127.0.0.1:" << port_;
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::acceptLoop() {
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    std::lock_guard lock(mu_);
    if (stopRequested_) {
      ::close(fd);
      continue;  // drain until the listener actually closes
    }
    ++stats_.connections;
    connectionFds_.push_back(fd);
    handlers_.emplace_back([this, fd] { handleConnection(fd); });
  }
}

void TcpServer::handleConnection(int fd) {
  Message request;
  for (;;) {
    try {
      if (!recvMessage(fd, request)) break;  // client hung up cleanly
    } catch (const ProtocolError&) {
      std::lock_guard lock(mu_);
      ++stats_.protocolErrors;
      break;
    } catch (const std::exception&) {
      break;  // transport failure (reset, stop() shutdown) — not the peer's fault
    }
    Message reply;
    try {
      reply = handleRequest(request);
    } catch (const std::exception& e) {
      reply = Message::error(e.what());
    }
    {
      std::lock_guard lock(mu_);
      ++stats_.requests;
    }
    try {
      sendMessage(fd, reply);
    } catch (const PeerClosedError&) {
      // EPIPE/ECONNRESET: the client sent a request and hung up without
      // reading the reply. Same clean-hangup path as an orderly EOF.
      std::lock_guard lock(mu_);
      ++stats_.peerHangups;
      break;
    } catch (const std::exception&) {
      break;  // transport fault mid-response
    }
    if (request.type == "SHUTDOWN") break;
  }
  // Deregister before close so stop() never touches a recycled fd.
  {
    std::lock_guard lock(mu_);
    std::erase(connectionFds_, fd);
  }
  ::close(fd);
}

Message TcpServer::handleRequest(const Message& request) {
  if (request.type == "PING") return Message::ok();
  if (request.type == "STATUS") return handleStatus();
  if (request.type == "DOCK") return handleDock(request);
  if (request.type == "SCREEN") return handleScreen(request);
  if (request.type == "PUBLISH") {
    const std::string path = request.get("path");
    if (path.empty()) return Message::error("PUBLISH requires path=");
    const std::uint64_t version = registry_.publishFromFile(path);
    Message reply = Message::ok();
    reply.set("model_version", version);
    return reply;
  }
  if (request.type == "SHUTDOWN") {
    requestStop();
    return Message::ok();
  }
  return Message::error("unknown request type: " + request.type);
}

Message TcpServer::handleDock(const Message& request) {
  DockRequest dock;
  dock.maxSteps = static_cast<int>(request.getInt("max_steps", dock.maxSteps));
  dock.epsilon = request.getDouble("epsilon", dock.epsilon);
  dock.seed = static_cast<std::uint64_t>(request.getInt("seed", 1));
  dock.priority = priorityFromName(request.get("priority", "normal"));
  dock.timeoutSeconds = request.getDouble("timeout_s", 0.0);

  const SubmitResult submitted = service_.submitDock(dock);
  if (!submitted.accepted()) {
    Message reply = Message::error(submitted.reason());
    reply.set("code", std::string(submitStatusName(submitted.status)));
    return reply;
  }
  const JobOutcome outcome = service_.wait(submitted.jobId);
  Message reply = outcome.status == JobStatus::kDone ? Message::ok()
                                                     : Message{"ERROR", {}};
  fillDockFields(reply, outcome);
  return reply;
}

Message TcpServer::handleScreen(const Message& request) {
  ScreenRequest screen;
  screen.librarySize =
      static_cast<std::size_t>(request.getInt("library_size", static_cast<long>(screen.librarySize)));
  screen.minAtoms = static_cast<std::size_t>(request.getInt("min_atoms", 8));
  screen.maxAtoms = static_cast<std::size_t>(request.getInt("max_atoms", 14));
  screen.evaluationsPerLigand = static_cast<std::size_t>(request.getInt("evals", 400));
  screen.seed = static_cast<std::uint64_t>(request.getInt("seed", 2020));
  screen.priority = priorityFromName(request.get("priority", "normal"));
  screen.timeoutSeconds = request.getDouble("timeout_s", 0.0);

  const SubmitResult submitted = service_.submitScreen(screen);
  if (!submitted.accepted()) {
    Message reply = Message::error(submitted.reason());
    reply.set("code", std::string(submitStatusName(submitted.status)));
    return reply;
  }
  const JobOutcome outcome = service_.wait(submitted.jobId);
  Message reply = outcome.status == JobStatus::kDone ? Message::ok()
                                                     : Message{"ERROR", {}};
  fillScreenFields(reply, outcome);
  return reply;
}

Message TcpServer::handleStatus() const {
  const ServiceStats stats = service_.stats();
  Message reply = Message::ok();
  reply.set("workers", static_cast<std::uint64_t>(stats.workers))
      .set("queue_depth", static_cast<std::uint64_t>(stats.queueDepth))
      .set("queue_capacity", static_cast<std::uint64_t>(service_.options().queueCapacity))
      .set("model_version", registry_.currentVersion())
      .set("jobs_done", stats.done)
      .set("jobs_failed", stats.failed)
      .set("jobs_cancelled", stats.cancelled)
      .set("jobs_timed_out", stats.timedOut)
      .set("batches", stats.batcher.batches)
      .set("mean_batch_rows", stats.batcher.meanBatchRows());
  return reply;
}

void TcpServer::requestStop() {
  std::lock_guard lock(mu_);
  if (stopRequested_) return;
  stopRequested_ = true;
  // Break the accept loop; handler threads finish their current
  // connection naturally (SHUTDOWN handlers break after replying).
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
  stopCv_.notify_all();
}

void TcpServer::waitUntilStopped() {
  std::unique_lock lock(mu_);
  stopCv_.wait(lock, [&] { return stopRequested_; });
}

bool TcpServer::stopRequested() const {
  std::lock_guard lock(mu_);
  return stopRequested_;
}

void TcpServer::stop() {
  requestStop();
  {
    std::lock_guard lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    // Unblock reads on still-open connections so handlers exit.
    for (int fd : connectionFds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  for (auto& t : handlers_) {
    if (t.joinable()) t.join();
  }
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  logInfo() << "TcpServer: stopped after " << stats_.requests << " requests on "
            << stats_.connections << " connections";
}

ServerStats TcpServer::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

RetryPolicy RetryPolicy::patient() {
  RetryPolicy p;
  p.maxAttempts = 8;
  p.initialBackoff = std::chrono::milliseconds(100);
  p.backoffMultiplier = 2.0;
  p.maxBackoff = std::chrono::milliseconds(2000);
  p.deadline = std::chrono::milliseconds(30000);
  return p;
}

namespace {

/// Shared attempt loop for connect and request retries: runs `attempt`
/// up to policy.maxAttempts times under the overall deadline, sleeping a
/// capped exponential backoff between failures. Rethrows the last error.
template <typename Fn>
auto retryLoop(const RetryPolicy& policy, const char* what, Fn&& attempt) {
  const auto start = std::chrono::steady_clock::now();
  const int attempts = std::max(1, policy.maxAttempts);
  std::chrono::milliseconds backoff =
      std::max(policy.initialBackoff, std::chrono::milliseconds(1));
  for (int i = 1;; ++i) {
    try {
      return attempt();
    } catch (...) {
      if (i >= attempts) throw;
      if (policy.deadline.count() > 0) {
        const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
        if (elapsed + backoff >= policy.deadline) {
          // Sleeping would blow the budget; surface the last failure now
          // rather than returning later than the caller allowed.
          throw;
        }
      }
      logDebug() << "TcpClient: " << what << " attempt " << i << "/" << attempts
                 << " failed; retrying in " << backoff.count() << " ms";
      std::this_thread::sleep_for(backoff);
      const auto next = static_cast<long>(static_cast<double>(backoff.count()) *
                                          std::max(1.0, policy.backoffMultiplier));
      backoff = std::min(policy.maxBackoff, std::chrono::milliseconds(next));
    }
  }
}

}  // namespace

TcpClient::TcpClient(std::uint16_t port, const std::string& host) : host_(host), port_(port) {
  connectOnce();
}

TcpClient::TcpClient(std::uint16_t port, const std::string& host, const RetryPolicy& retry)
    : host_(host), port_(port) {
  retryLoop(retry, "connect", [&] { connectOnce(); return 0; });
}

void TcpClient::connectOnce() {
  ignoreSigpipe();  // a server that dies mid-exchange must not kill us
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("TcpClient: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("TcpClient: bad host address " + host_);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("TcpClient: connect to " + host_ + ":" + std::to_string(port_) +
                             " failed: " + err);
  }
  fd_ = fd;
}

TcpClient::~TcpClient() { close(); }

Message TcpClient::request(const Message& msg) {
  if (fd_ < 0) throw std::runtime_error("TcpClient::request: closed");
  // After any failure the stream position is unknown (a request may be
  // half-written, a reply half-read) — reusing the fd would pair the next
  // request with a stale or misaligned reply. Close so every later
  // request() fails fast instead of desyncing silently.
  try {
    sendMessage(fd_, msg);
    Message reply;
    if (!recvMessage(fd_, reply)) {
      throw std::runtime_error("TcpClient::request: server closed the connection");
    }
    return reply;
  } catch (...) {
    close();
    throw;
  }
}

Message TcpClient::request(const Message& msg, const RetryPolicy& retry) {
  return retryLoop(retry, "request", [&] {
    // A failed exchange already closed the desynced socket (request()'s
    // close-on-throw rule); every retry therefore starts from a fresh
    // connection, never a reused stream.
    if (fd_ < 0) connectOnce();
    return request(msg);
  });
}

void TcpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace dqndock::serve
