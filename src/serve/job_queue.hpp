#pragma once

/// \file job_queue.hpp
/// Bounded multi-producer/multi-consumer job queue with priorities,
/// backpressure and cancellation — the admission control in front of the
/// docking worker pool. A full queue *rejects* new work with a reason
/// instead of blocking the producer (a serving front-end must shed load,
/// not stall its accept loop). Jobs are shared handles: the submitter
/// keeps one to wait/cancel, the worker keeps one while running, so a
/// cancelled or timed-out job can be reported without lifetime hazards.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

namespace dqndock::serve {

enum class JobPriority : unsigned char { kHigh = 0, kNormal = 1, kLow = 2 };
const char* jobPriorityName(JobPriority p);

enum class JobStatus : unsigned char {
  kQueued = 0,
  kRunning,
  kDone,
  kFailed,     ///< work threw; error() holds the message
  kCancelled,  ///< cancel observed before or during execution
  kTimedOut,   ///< per-job time budget exhausted mid-run
};
const char* jobStatusName(JobStatus s);

/// One unit of work plus its completion channel.
class Job {
 public:
  Job(std::uint64_t id, JobPriority priority, std::function<void(Job&)> work,
      double timeoutSeconds = 0.0);

  std::uint64_t id() const { return id_; }
  JobPriority priority() const { return priority_; }
  /// 0 = no limit. Workers check this between rollout steps.
  double timeoutSeconds() const { return timeoutSeconds_; }

  /// Cooperative cancellation flag; running workers poll it.
  void requestCancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancelRequested() const { return cancel_.load(std::memory_order_relaxed); }

  /// Worker-side transitions.
  void markRunning();
  void finish(JobStatus terminal, std::string error = "");

  /// Submitter-side: block until the job reaches a terminal status.
  JobStatus wait() const;
  JobStatus status() const;
  bool terminal() const { return status() >= JobStatus::kDone; }
  std::string error() const;

  /// The queue/worker invokes this; public so tests can drive jobs
  /// directly.
  void run();

 private:
  std::uint64_t id_;
  JobPriority priority_;
  double timeoutSeconds_;
  std::function<void(Job&)> work_;
  std::atomic<bool> cancel_{false};

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  JobStatus status_ = JobStatus::kQueued;
  std::string error_;
};

/// Why a push was refused.
enum class SubmitStatus : unsigned char { kAccepted = 0, kQueueFull, kShutdown };
const char* submitStatusName(SubmitStatus s);

struct SubmitResult {
  SubmitStatus status = SubmitStatus::kAccepted;
  std::uint64_t jobId = 0;
  bool accepted() const { return status == SubmitStatus::kAccepted; }
  /// Human-readable rejection reason ("" when accepted) — wire responses
  /// forward it to the client.
  std::string reason() const;
};

struct JobQueueStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejectedFull = 0;
  std::uint64_t rejectedShutdown = 0;
  std::uint64_t popped = 0;
  std::uint64_t cancelledQueued = 0;  ///< cancelled before a worker saw them
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  /// Non-blocking admission: rejects with kQueueFull when `capacity`
  /// jobs are already queued (running jobs do not count) and with
  /// kShutdown after close(). Rejected jobs are finished as kCancelled
  /// with the reason in error() so waiters never hang.
  SubmitResult push(std::shared_ptr<Job> job);

  /// Highest-priority FIFO pop; blocks until a job arrives or the queue
  /// is closed and drained (then returns nullptr). Jobs cancelled while
  /// queued are discarded here (finished as kCancelled, not returned).
  std::shared_ptr<Job> pop();

  /// Cancel by id. Queued jobs are finished immediately; for running
  /// jobs this only raises the flag (the worker finishes the status).
  /// Returns false when the id is unknown to the queue (already popped
  /// jobs must be cancelled through their Job handle).
  bool cancelQueued(std::uint64_t id);

  /// Stop admitting; wakes blocked pop() calls once drained.
  void close();
  bool closed() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  JobQueueStats stats() const;

 private:
  std::size_t totalQueuedLocked() const;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> lanes_[3];  ///< indexed by JobPriority
  bool closed_ = false;
  JobQueueStats stats_;
};

}  // namespace dqndock::serve
