#include "src/serve/job_queue.hpp"

#include <stdexcept>
#include <utility>

namespace dqndock::serve {

const char* jobPriorityName(JobPriority p) {
  switch (p) {
    case JobPriority::kHigh: return "high";
    case JobPriority::kNormal: return "normal";
    case JobPriority::kLow: return "low";
  }
  return "?";
}

const char* jobStatusName(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kTimedOut: return "timed_out";
  }
  return "?";
}

const char* submitStatusName(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFull: return "queue_full";
    case SubmitStatus::kShutdown: return "shutdown";
  }
  return "?";
}

std::string SubmitResult::reason() const {
  switch (status) {
    case SubmitStatus::kAccepted: return "";
    case SubmitStatus::kQueueFull: return "queue full: server is at capacity, retry later";
    case SubmitStatus::kShutdown: return "server is shutting down";
  }
  return "";
}

Job::Job(std::uint64_t id, JobPriority priority, std::function<void(Job&)> work,
         double timeoutSeconds)
    : id_(id), priority_(priority), timeoutSeconds_(timeoutSeconds), work_(std::move(work)) {
  if (!work_) throw std::invalid_argument("Job: null work");
}

void Job::markRunning() {
  std::lock_guard lock(mu_);
  if (status_ == JobStatus::kQueued) status_ = JobStatus::kRunning;
}

void Job::finish(JobStatus terminal, std::string error) {
  std::lock_guard lock(mu_);
  if (status_ >= JobStatus::kDone) return;  // first terminal status wins
  status_ = terminal;
  error_ = std::move(error);
  cv_.notify_all();
}

JobStatus Job::wait() const {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return status_ >= JobStatus::kDone; });
  return status_;
}

JobStatus Job::status() const {
  std::lock_guard lock(mu_);
  return status_;
}

std::string Job::error() const {
  std::lock_guard lock(mu_);
  return error_;
}

void Job::run() {
  if (cancelRequested()) {
    finish(JobStatus::kCancelled, "cancelled before start");
    return;
  }
  markRunning();
  try {
    work_(*this);
    finish(JobStatus::kDone);  // no-op when work already set a status
  } catch (const std::exception& e) {
    finish(JobStatus::kFailed, e.what());
  } catch (...) {
    finish(JobStatus::kFailed, "unknown error");
  }
}

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

std::size_t JobQueue::totalQueuedLocked() const {
  return lanes_[0].size() + lanes_[1].size() + lanes_[2].size();
}

SubmitResult JobQueue::push(std::shared_ptr<Job> job) {
  if (!job) throw std::invalid_argument("JobQueue::push: null job");
  SubmitResult result;
  result.jobId = job->id();
  {
    std::lock_guard lock(mu_);
    if (closed_) {
      result.status = SubmitStatus::kShutdown;
      ++stats_.rejectedShutdown;
    } else if (totalQueuedLocked() >= capacity_) {
      result.status = SubmitStatus::kQueueFull;
      ++stats_.rejectedFull;
    } else {
      lanes_[static_cast<std::size_t>(job->priority())].push_back(job);
      ++stats_.submitted;
      cv_.notify_one();
      return result;
    }
  }
  // Rejected: resolve the job so any waiter unblocks with the reason.
  job->finish(JobStatus::kCancelled, result.reason());
  return result;
}

std::shared_ptr<Job> JobQueue::pop() {
  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return closed_ || totalQueuedLocked() > 0; });
    for (auto& lane : lanes_) {
      while (!lane.empty()) {
        std::shared_ptr<Job> job = std::move(lane.front());
        lane.pop_front();
        if (job->cancelRequested()) {
          ++stats_.cancelledQueued;
          lock.unlock();
          job->finish(JobStatus::kCancelled, "cancelled while queued");
          lock.lock();
          continue;
        }
        ++stats_.popped;
        return job;
      }
    }
    if (closed_) return nullptr;
  }
}

bool JobQueue::cancelQueued(std::uint64_t id) {
  std::shared_ptr<Job> found;
  {
    std::lock_guard lock(mu_);
    for (auto& lane : lanes_) {
      for (auto it = lane.begin(); it != lane.end(); ++it) {
        if ((*it)->id() == id) {
          found = std::move(*it);
          lane.erase(it);
          ++stats_.cancelledQueued;
          break;
        }
      }
      if (found) break;
    }
  }
  if (!found) return false;
  found->requestCancel();
  found->finish(JobStatus::kCancelled, "cancelled while queued");
  return true;
}

void JobQueue::close() {
  std::lock_guard lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t JobQueue::size() const {
  std::lock_guard lock(mu_);
  return totalQueuedLocked();
}

JobQueueStats JobQueue::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace dqndock::serve
