#include "src/serve/model_registry.hpp"

#include <stdexcept>
#include <utility>

#include "src/rl/checkpoint.hpp"

namespace dqndock::serve {

ModelRegistry::ModelRegistry(std::unique_ptr<rl::QNetwork> initial, std::string tag) {
  if (!initial) throw std::invalid_argument("ModelRegistry: null initial network");
  inputDim_ = initial->inputDim();
  actionCount_ = initial->actionCount();
  auto entry = std::make_shared<ModelVersion>();
  entry->version = nextVersion_++;
  entry->tag = std::move(tag);
  entry->net = std::move(initial);
  current_ = std::move(entry);
  publishes_ = 1;
}

bool ModelRegistry::enableStaticPrefixFold(std::span<const double> staticPrefix) {
  std::lock_guard lock(mu_);
  // current_->net is shared as const with readers, but the fold
  // configuration is not weight state: predictions are unchanged (≤1e-12
  // reassociation) and the lazy refold is internally synchronized. Call
  // before serving traffic regardless — concurrent readers mid-predict
  // would race the input-width change.
  auto* net = const_cast<rl::QNetwork*>(current_->net.get());
  if (!net->configureStaticPrefix(staticPrefix)) return false;
  foldPrefix_.assign(staticPrefix.begin(), staticPrefix.end());
  return true;
}

bool ModelRegistry::foldActive() const {
  std::lock_guard lock(mu_);
  return !foldPrefix_.empty();
}

std::size_t ModelRegistry::dynamicInputDim() const {
  std::lock_guard lock(mu_);
  return foldPrefix_.empty() ? inputDim_ : inputDim_ - foldPrefix_.size();
}

std::uint64_t ModelRegistry::publish(std::unique_ptr<rl::QNetwork> net, std::string tag) {
  if (!net) throw std::invalid_argument("ModelRegistry::publish: null network");
  if (net->inputDim() != inputDim_ || net->actionCount() != actionCount_) {
    throw std::invalid_argument("ModelRegistry::publish: architecture mismatch");
  }
  {
    std::lock_guard lock(mu_);
    if (!foldPrefix_.empty() && !net->foldActive()) {
      // Propagate the fold to every published generation; the clone in
      // publishFromFile already carries it (Mlp copies keep the fold
      // configuration), so this only fires for externally-built nets.
      if (!net->configureStaticPrefix(foldPrefix_)) {
        throw std::invalid_argument(
            "ModelRegistry::publish: network rejected the registry's static-prefix fold");
      }
    }
  }
  auto entry = std::make_shared<ModelVersion>();
  entry->tag = std::move(tag);
  entry->net = std::move(net);
  std::lock_guard lock(mu_);
  entry->version = nextVersion_++;
  current_ = std::move(entry);
  ++publishes_;
  return nextVersion_ - 1;
}

std::uint64_t ModelRegistry::publishFromFile(const std::string& path) {
  // Clone outside the lock; loadWeightsFile validates shapes and throws
  // before anything is published.
  std::unique_ptr<rl::QNetwork> net = current()->net->clone();
  rl::loadWeightsFile(path, *net);
  return publish(std::move(net), path);
}

std::shared_ptr<const ModelVersion> ModelRegistry::current() const {
  std::lock_guard lock(mu_);
  return current_;
}

std::uint64_t ModelRegistry::currentVersion() const {
  std::lock_guard lock(mu_);
  return current_->version;
}

std::size_t ModelRegistry::publishCount() const {
  std::lock_guard lock(mu_);
  return publishes_;
}

}  // namespace dqndock::serve
