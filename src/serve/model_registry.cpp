#include "src/serve/model_registry.hpp"

#include <stdexcept>
#include <utility>

#include "src/rl/checkpoint.hpp"

namespace dqndock::serve {

ModelRegistry::ModelRegistry(std::unique_ptr<rl::QNetwork> initial, std::string tag) {
  if (!initial) throw std::invalid_argument("ModelRegistry: null initial network");
  inputDim_ = initial->inputDim();
  actionCount_ = initial->actionCount();
  auto entry = std::make_shared<ModelVersion>();
  entry->version = nextVersion_++;
  entry->tag = std::move(tag);
  entry->net = std::move(initial);
  current_ = std::move(entry);
  publishes_ = 1;
}

std::uint64_t ModelRegistry::publish(std::unique_ptr<rl::QNetwork> net, std::string tag) {
  if (!net) throw std::invalid_argument("ModelRegistry::publish: null network");
  if (net->inputDim() != inputDim_ || net->actionCount() != actionCount_) {
    throw std::invalid_argument("ModelRegistry::publish: architecture mismatch");
  }
  auto entry = std::make_shared<ModelVersion>();
  entry->tag = std::move(tag);
  entry->net = std::move(net);
  std::lock_guard lock(mu_);
  entry->version = nextVersion_++;
  current_ = std::move(entry);
  ++publishes_;
  return nextVersion_ - 1;
}

std::uint64_t ModelRegistry::publishFromFile(const std::string& path) {
  // Clone outside the lock; loadWeightsFile validates shapes and throws
  // before anything is published.
  std::unique_ptr<rl::QNetwork> net = current()->net->clone();
  rl::loadWeightsFile(path, *net);
  return publish(std::move(net), path);
}

std::shared_ptr<const ModelVersion> ModelRegistry::current() const {
  std::lock_guard lock(mu_);
  return current_;
}

std::uint64_t ModelRegistry::currentVersion() const {
  std::lock_guard lock(mu_);
  return current_->version;
}

std::size_t ModelRegistry::publishCount() const {
  std::lock_guard lock(mu_);
  return publishes_;
}

}  // namespace dqndock::serve
