#pragma once

/// \file wire.hpp
/// Minimal wire protocol for remote docking: every frame on the socket
/// is a 4-byte big-endian payload length followed by the payload. A
/// payload is a text message — first line the type ("DOCK", "OK", ...),
/// then one "key=value" line per field. Language-agnostic (a dozen lines
/// of Python speaks it), debuggable with hexdump, and free of
/// serialization dependencies.
///
///   +--------+--------------------------+
///   | u32 BE |  TYPE\nkey=value\n...    |
///   +--------+--------------------------+

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dqndock::serve {

/// Frames larger than this are a protocol violation (protects the server
/// from hostile or corrupt length prefixes).
inline constexpr std::uint32_t kMaxFrameBytes = 1 << 20;

/// The peer violated the framing/message contract: EOF in the middle of
/// a frame (truncated length prefix or payload), a length prefix beyond
/// kMaxFrameBytes, or a payload that does not decode. Distinct from the
/// plain std::runtime_error used for transport failures (errno I/O
/// errors) so callers can tell "the peer sent garbage" from "the socket
/// broke", and so a stream in an unknown position is never mistaken for
/// an orderly shutdown.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The peer closed its end while we were mid-exchange: EPIPE/ECONNRESET
/// on a send, ECONNRESET on a read. Not a framing violation (the peer
/// sent nothing malformed) and not a local transport fault — servers map
/// it onto the same clean-hangup path as an orderly EOF instead of
/// counting a protocol error or crashing.
class PeerClosedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Process-wide, one-time SIGPIPE -> SIG_IGN. Socket sends already pass
/// MSG_NOSIGNAL, but the ::write fallback (pipes in tests) and any
/// future raw-fd path would still die by signal when the peer hangs up
/// mid-reply; every server front-end calls this from its constructor so
/// a client hangup can only ever surface as EPIPE. Idempotent and
/// thread-safe; never overrides a handler the application installed.
void ignoreSigpipe();

struct Message {
  std::string type;
  std::map<std::string, std::string> fields;

  bool has(const std::string& key) const { return fields.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback = "") const;
  long getInt(const std::string& key, long fallback) const;
  double getDouble(const std::string& key, double fallback) const;
  Message& set(const std::string& key, const std::string& value);
  Message& set(const std::string& key, long value);
  Message& set(const std::string& key, std::uint64_t value);
  Message& set(const std::string& key, double value);

  static Message ok() { return Message{"OK", {}}; }
  static Message error(const std::string& reason);
};

/// Message <-> payload text. encode throws std::invalid_argument when a
/// type/key/value contains '\n' or a key contains '='; decode throws
/// ProtocolError on malformed payloads (empty type, missing '=').
std::string encodeMessage(const Message& msg);
Message decodeMessage(std::string_view payload);

// -- Framed socket I/O (POSIX fds) ------------------------------------------

/// Write one length-prefixed frame; loops over partial writes. Throws
/// std::runtime_error on I/O failure or oversized payloads.
void writeFrame(int fd, std::string_view payload);

/// Read one frame. Returns false ONLY on clean EOF at a frame boundary
/// (the peer hung up with zero bytes of the next frame on the wire).
/// EOF after a partial length prefix or mid-payload throws ProtocolError
/// — a truncated stream must never read as an orderly shutdown. I/O
/// failures throw std::runtime_error; oversized length prefixes throw
/// ProtocolError.
bool readFrame(int fd, std::string& payload);

/// Convenience: frame + encode/decode in one call.
void sendMessage(int fd, const Message& msg);
bool recvMessage(int fd, Message& msg);

}  // namespace dqndock::serve
