#pragma once

/// \file wire.hpp
/// Minimal wire protocol for remote docking: every frame on the socket
/// is a 4-byte big-endian payload length followed by the payload. A
/// payload is a text message — first line the type ("DOCK", "OK", ...),
/// then one "key=value" line per field. Language-agnostic (a dozen lines
/// of Python speaks it), debuggable with hexdump, and free of
/// serialization dependencies.
///
///   +--------+--------------------------+
///   | u32 BE |  TYPE\nkey=value\n...    |
///   +--------+--------------------------+

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace dqndock::serve {

/// Frames larger than this are a protocol violation (protects the server
/// from hostile or corrupt length prefixes).
inline constexpr std::uint32_t kMaxFrameBytes = 1 << 20;

struct Message {
  std::string type;
  std::map<std::string, std::string> fields;

  bool has(const std::string& key) const { return fields.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback = "") const;
  long getInt(const std::string& key, long fallback) const;
  double getDouble(const std::string& key, double fallback) const;
  Message& set(const std::string& key, const std::string& value);
  Message& set(const std::string& key, long value);
  Message& set(const std::string& key, std::uint64_t value);
  Message& set(const std::string& key, double value);

  static Message ok() { return Message{"OK", {}}; }
  static Message error(const std::string& reason);
};

/// Message <-> payload text. encode throws std::invalid_argument when a
/// type/key/value contains '\n' or a key contains '='; decode throws
/// std::runtime_error on malformed payloads (empty type, missing '=').
std::string encodeMessage(const Message& msg);
Message decodeMessage(std::string_view payload);

// -- Framed socket I/O (POSIX fds) ------------------------------------------

/// Write one length-prefixed frame; loops over partial writes. Throws
/// std::runtime_error on I/O failure or oversized payloads.
void writeFrame(int fd, std::string_view payload);

/// Read one frame. Returns false on clean EOF at a frame boundary;
/// throws std::runtime_error on I/O failure, mid-frame EOF, or an
/// oversized length prefix.
bool readFrame(int fd, std::string& payload);

/// Convenience: frame + encode/decode in one call.
void sendMessage(int fd, const Message& msg);
bool recvMessage(int fd, Message& msg);

}  // namespace dqndock::serve
