#include "src/serve/wire.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include <sys/socket.h>
#include <unistd.h>

namespace dqndock::serve {

namespace {

[[noreturn]] void throwErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

void checkToken(const std::string& s, bool isKey, const char* what) {
  if (s.find('\n') != std::string::npos) {
    throw std::invalid_argument(std::string("encodeMessage: newline in ") + what);
  }
  if (isKey && (s.empty() || s.find('=') != std::string::npos)) {
    throw std::invalid_argument("encodeMessage: bad key");
  }
}

/// write() with SIGPIPE suppressed — a peer that hangs up mid-response
/// must surface as an error, not kill the server process.
ssize_t writeSome(int fd, const char* buf, std::size_t n) {
#ifdef MSG_NOSIGNAL
  ssize_t w = ::send(fd, buf, n, MSG_NOSIGNAL);
  if (w < 0 && errno == ENOTSOCK) w = ::write(fd, buf, n);  // pipes in tests
  return w;
#else
  return ::write(fd, buf, n);
#endif
}

void writeAll(int fd, const char* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = writeSome(fd, buf + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        // The peer hung up while we were replying — their prerogative,
        // not a transport fault of ours; callers route this to the same
        // clean-hangup path as an orderly EOF.
        throw PeerClosedError(std::string("writeFrame: peer closed: ") +
                              std::strerror(errno));
      }
      throwErrno("writeFrame");
    }
    off += static_cast<std::size_t>(w);
  }
}

/// Returns bytes read (0 on EOF); loops on EINTR only.
std::size_t readAll(int fd, char* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, buf + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        throw PeerClosedError("readFrame: peer reset the connection");
      }
      throwErrno("readFrame");
    }
    if (r == 0) break;  // EOF
    off += static_cast<std::size_t>(r);
  }
  return off;
}

}  // namespace

void ignoreSigpipe() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction current {};
    if (::sigaction(SIGPIPE, nullptr, &current) == 0 && current.sa_handler == SIG_DFL) {
      struct sigaction ignore {};
      ignore.sa_handler = SIG_IGN;
      ::sigaction(SIGPIPE, &ignore, nullptr);
    }
  });
}

std::string Message::get(const std::string& key, const std::string& fallback) const {
  const auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

long Message::getInt(const std::string& key, long fallback) const {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  try {
    return std::stol(it->second);
  } catch (...) {
    return fallback;
  }
}

double Message::getDouble(const std::string& key, double fallback) const {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return fallback;
  }
}

Message& Message::set(const std::string& key, const std::string& value) {
  fields[key] = value;
  return *this;
}

Message& Message::set(const std::string& key, long value) {
  fields[key] = std::to_string(value);
  return *this;
}

Message& Message::set(const std::string& key, std::uint64_t value) {
  fields[key] = std::to_string(value);
  return *this;
}

Message& Message::set(const std::string& key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  fields[key] = buf;
  return *this;
}

Message Message::error(const std::string& reason) {
  Message m{"ERROR", {}};
  m.set("reason", reason);
  return m;
}

std::string encodeMessage(const Message& msg) {
  checkToken(msg.type, /*isKey=*/false, "type");
  if (msg.type.empty()) throw std::invalid_argument("encodeMessage: empty type");
  std::string out = msg.type;
  out.push_back('\n');
  for (const auto& [key, value] : msg.fields) {
    checkToken(key, /*isKey=*/true, "key");
    checkToken(value, /*isKey=*/false, "value");
    out += key;
    out.push_back('=');
    out += value;
    out.push_back('\n');
  }
  return out;
}

Message decodeMessage(std::string_view payload) {
  Message msg;
  std::size_t pos = 0;
  bool first = true;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (first) {
      msg.type.assign(line);
      first = false;
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw ProtocolError("decodeMessage: malformed field line");
    }
    msg.fields.emplace(line.substr(0, eq), line.substr(eq + 1));
  }
  if (msg.type.empty()) throw ProtocolError("decodeMessage: empty message");
  return msg;
}

void writeFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::runtime_error("writeFrame: payload exceeds frame limit");
  }
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(n >> 24), static_cast<unsigned char>(n >> 16),
      static_cast<unsigned char>(n >> 8), static_cast<unsigned char>(n)};
  writeAll(fd, reinterpret_cast<const char*>(header), sizeof header);
  writeAll(fd, payload.data(), payload.size());
}

bool readFrame(int fd, std::string& payload) {
  unsigned char header[4];
  const std::size_t got = readAll(fd, reinterpret_cast<char*>(header), sizeof header);
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof header) throw ProtocolError("readFrame: truncated length prefix");
  const std::uint32_t n = (static_cast<std::uint32_t>(header[0]) << 24) |
                          (static_cast<std::uint32_t>(header[1]) << 16) |
                          (static_cast<std::uint32_t>(header[2]) << 8) |
                          static_cast<std::uint32_t>(header[3]);
  if (n > kMaxFrameBytes) throw ProtocolError("readFrame: frame exceeds limit");
  payload.resize(n);
  if (n > 0 && readAll(fd, payload.data(), n) < n) {
    throw ProtocolError("readFrame: truncated payload");
  }
  return true;
}

void sendMessage(int fd, const Message& msg) { writeFrame(fd, encodeMessage(msg)); }

bool recvMessage(int fd, Message& msg) {
  std::string payload;
  if (!readFrame(fd, payload)) return false;
  msg = decodeMessage(payload);
  return true;
}

}  // namespace dqndock::serve
