#pragma once

/// \file model_registry.hpp
/// Versioned Q-network storage for the serving layer. A long-running
/// docking server must pick up freshly-trained weights without dropping
/// in-flight requests; the registry gives every reader an immutable
/// snapshot (shared_ptr pin) and swaps the "current" pointer atomically
/// under a mutex, so a hot-swap never invalidates a network another
/// thread is predicting with.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/rl/qnetwork.hpp"

namespace dqndock::serve {

/// One published model. Immutable after publish(); the network is only
/// ever used through const predict(), which is reentrant.
struct ModelVersion {
  std::uint64_t version = 0;
  std::string tag;  ///< free-form provenance (checkpoint path, run id, ...)
  std::unique_ptr<rl::QNetwork> net;
};

class ModelRegistry {
 public:
  /// Seeds version 1 with `initial` (must be non-null).
  ModelRegistry(std::unique_ptr<rl::QNetwork> initial, std::string tag = "initial");

  /// Publish new weights; becomes current() immediately. Readers holding
  /// the previous snapshot keep it alive until they drop it. Throws
  /// std::invalid_argument on null or architecture mismatch with the
  /// seed network.
  std::uint64_t publish(std::unique_ptr<rl::QNetwork> net, std::string tag = "");

  /// Clone the current architecture, load a weight checkpoint
  /// (rl::saveWeightsFile format) into the clone, publish it. Throws on
  /// I/O or shape errors, leaving current() untouched.
  std::uint64_t publishFromFile(const std::string& path);

  /// Snapshot of the newest model; never null. The caller may use
  /// ->net->predict() concurrently with publishes.
  std::shared_ptr<const ModelVersion> current() const;

  std::uint64_t currentVersion() const;
  std::size_t publishCount() const;

  std::size_t inputDim() const { return inputDim_; }
  int actionCount() const { return actionCount_; }

  /// Fold the given constant input prefix out of the current network and
  /// every future publish (nn::Mlp static-prefix factorization). Each
  /// published network folds its own weights lazily on first predict, so
  /// a hot-swap folds exactly once per model version. Returns false (and
  /// stores nothing) when the current architecture rejects the fold;
  /// subsequent publishes of foldable architectures then stay unfolded
  /// too. Call before serving traffic: it mutates the current network's
  /// fold configuration (not its weights).
  bool enableStaticPrefixFold(std::span<const double> staticPrefix);
  bool foldActive() const;
  /// Input width folded networks accept in addition to inputDim().
  std::size_t dynamicInputDim() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ModelVersion> current_;
  std::uint64_t nextVersion_ = 1;
  std::size_t publishes_ = 0;
  std::size_t inputDim_ = 0;
  int actionCount_ = 0;
  std::vector<double> foldPrefix_;  ///< non-empty once folding is enabled
};

}  // namespace dqndock::serve
